(* The MILO benchmark harness.

   One sub-command per experiment of DESIGN.md's index (E1-E8), each
   printing the same rows/series the paper reports, plus a Bechamel
   micro-benchmark section (one Test.make per experiment kernel).

     dune exec bench/main.exe            -- all experiments + bechamel
     dune exec bench/main.exe fig19      -- just the Figure 19 table
     dune exec bench/main.exe abadd      -- the Figure 16/18 walkthrough
     dune exec bench/main.exe metarules  -- the [CoBa85] lookahead study
     dune exec bench/main.exe scaling    -- the [JoTr86] linearity study
     dune exec bench/main.exe strategies -- strategy gain/cost profiles
     dune exec bench/main.exe microcritic| estimator | dagon
     dune exec bench/main.exe bechamel   -- timing micro-benchmarks
     dune exec bench/main.exe smoke      -- 0-step-budget flow smoke run *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Every BENCH_*.json artifact goes through this emitter: keys sorted,
   one per line — so checked-in artifacts diff cleanly across runs and
   branches regardless of the order fields were computed in. *)
let bench_json fields =
  let fields = List.sort (fun (a, _) (b, _) -> compare a b) fields in
  "{\n"
  ^ String.concat ",\n"
      (List.map (fun (k, v) -> Printf.sprintf "  %S: %s" k v) fields)
  ^ "\n}\n"

let write_bench file fields =
  try
    let oc = open_out file in
    output_string oc (bench_json fields);
    close_out oc;
    Printf.printf "wrote %s\n%!" file
  with Sys_error msg -> Printf.printf "could not write %s: %s\n%!" file msg

(* --- E1: Figure 19 ---------------------------------------------------- *)

let fig19 () =
  section "E1 / Figure 19: eight designs, human baseline vs MILO (ECL)";
  let rows =
    List.map
      (fun (c : Milo_designs.Suite.case) ->
        let human =
          Milo.Flow.baseline_stats ~technology:Milo.Flow.Ecl
            ~input_arrivals:
              c.Milo_designs.Suite.constraints.Milo.Constraints.input_arrivals
            c.Milo_designs.Suite.case_design
        in
        let res =
          Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
            ~constraints:c.Milo_designs.Suite.constraints
            c.Milo_designs.Suite.case_design
        in
        ( Milo.Report.row_of_stats ~name:c.Milo_designs.Suite.case_name ~human
            ~milo:res.Milo.Flow.final,
          c ))
      (Milo_designs.Suite.all ())
  in
  Milo.Report.print_table (List.map fst rows);
  Printf.printf "\npaper reference (Figure 19): delay improvements ";
  List.iter
    (fun (_, (c : Milo_designs.Suite.case)) ->
      Printf.printf "%.0f%% " c.Milo_designs.Suite.paper_delay_impr)
    rows;
  Printf.printf "\n                             area  improvements ";
  List.iter
    (fun (_, (c : Milo_designs.Suite.case)) ->
      Printf.printf "%.0f%% " c.Milo_designs.Suite.paper_area_impr)
    rows;
  print_newline ()

(* --- E2: the ABADD walkthrough ---------------------------------------- *)

let abadd () =
  section "E2 / Figures 16+18: the ABADD walkthrough";
  let design = Milo_designs.Abadd.design () in
  let db = Milo_compilers.Database.create () in
  let lib = Milo_library.Generic.get () in
  let expanded = Milo_compilers.Compile.expand_design db lib design in
  Printf.printf "compiled hierarchy: %s\n"
    (String.concat ", " (Milo_compilers.Database.names db));
  let target = Milo_techmap.Table_map.ecl_target () in
  let optimized, report =
    Milo_optimizer.Logic_optimizer.optimize ~required:6.5 db target expanded
  in
  List.iter
    (fun (e : Milo_optimizer.Logic_optimizer.report_entry) ->
      Printf.printf "  level %-22s rules=%d area %.1f -> %.1f\n"
        e.Milo_optimizer.Logic_optimizer.level_design
        e.Milo_optimizer.Logic_optimizer.applications
        e.Milo_optimizer.Logic_optimizer.area_before
        e.Milo_optimizer.Logic_optimizer.area_after)
    report.Milo_optimizer.Logic_optimizer.entries;
  let muxffs =
    List.length
      (List.filter
         (fun (c : D.comp) ->
           match c.D.kind with
           | T.Macro m -> String.length m >= 7 && String.sub m 0 7 = "E_MUXFF"
           | _ -> false)
         (D.comps optimized))
  in
  let human = Milo.Flow.baseline_stats ~technology:Milo.Flow.Ecl design in
  let final = Milo.Flow.stats_of target optimized in
  Printf.printf "mux+flip-flop merges: %d\n" muxffs;
  Printf.printf "baseline: delay %.2f ns, area %.1f cells\n"
    human.Milo.Flow.delay human.Milo.Flow.area;
  Printf.printf "MILO:     delay %.2f ns, area %.1f cells\n" final.Milo.Flow.delay
    final.Milo.Flow.area

(* --- E3: metarules (CoBa85) ------------------------------------------- *)

let metarules () =
  section "E3 / [CoBa85]: lookahead with and without metarules";
  Printf.printf
    "%-14s %10s %10s %12s %8s\n" "control" "time(s)" "rel.time" "area gain" "evals";
  let workloads =
    List.map
      (fun seed ->
        let src = Milo_designs.Workload.random_logic ~gates:120 ~seed () in
        let target = Milo_techmap.Table_map.ecl_target () in
        Milo_techmap.Table_map.map_design target src)
      [ 101; 102; 103 ]
  in
  let run_config name params =
    let stats = { Milo_rules.Search.nodes = 0; evals = 0 } in
    let (gain, base_area), t =
      time (fun () ->
          List.fold_left
            (fun (g, base) w ->
              let d = D.copy w in
              let ctx =
                R.make_context (Milo_library.Ecl.get ())
                  (Milo_compilers.Gate_comp.named_set ~prefix:"E_"
                     (Milo_library.Ecl.get ()))
                  d
              in
              let env name =
                Milo_library.Technology.find (Milo_library.Ecl.get ()) name
              in
              let cost () = Milo_estimate.Estimate.area env d in
              let before = cost () in
              let g' =
                Milo_rules.Search.run ~params ~stats ctx ~cost
                  ~cleanups:Milo_critic.Critic.cleanup
                  (Milo_critic.Critic.logic @ Milo_critic.Critic.area)
              in
              (g +. g', base +. before))
            (0.0, 0.0) workloads)
    in
    (name, t, gain, base_area, stats.Milo_rules.Search.evals)
  in
  let greedy = run_config "greedy" Milo_rules.Metarules.fixed_greedy in
  let full = run_config "full-lookahead" Milo_rules.Metarules.fixed_full in
  let meta =
    run_config "metarules"
      (Milo_rules.Metarules.params_for ~cls:R.Area
         ~phase:Milo_rules.Metarules.Recovering_area)
  in
  let _, greedy_t, _, _, _ = greedy in
  List.iter
    (fun (name, t, gain, base, evals) ->
      Printf.printf "%-14s %10.2f %9.1fx %11.1f%% %8d\n" name t
        (t /. Float.max 1e-9 greedy_t)
        (100.0 *. gain /. base)
        evals)
    [ greedy; full; meta ];
  Printf.printf
    "paper reference: lookahead ~4x runtime for ~12%% more area gain;\n\
    \                 metarules cut that to ~2x with the same gain.\n"

(* --- E4: scaling (JoTr86) --------------------------------------------- *)

let scaling () =
  section "E4 / [JoTr86]: local-transformation synthesis time vs size";
  Printf.printf "%8s | %10s %10s | %10s %10s\n" "gates" "naive(s)" "gates/s"
    "rete(s)" "gates/s";
  List.iter
    (fun gates ->
      let src = Milo_designs.Workload.random_logic ~inputs:16 ~outputs:8 ~gates ~seed:7 () in
      let target = Milo_techmap.Table_map.ecl_target () in
      let run engine =
        let d = Milo_techmap.Table_map.map_design target src in
        let ctx =
          R.make_context (Milo_library.Ecl.get ())
            (Milo_compilers.Gate_comp.named_set ~prefix:"E_"
               (Milo_library.Ecl.get ()))
            d
        in
        let _, t = time (fun () -> engine ctx) in
        t
      in
      let rules = Milo_critic.Critic.logic @ Milo_critic.Critic.cleanup in
      let naive = run (fun ctx -> Milo_rules.Engine.ops_run ctx rules) in
      let rete =
        run (fun ctx -> Milo_rules.Engine.ops_run_incremental ctx rules)
      in
      Printf.printf "%8d | %10.3f %10.0f | %10.3f %10.0f\n" gates naive
        (float_of_int gates /. Float.max 1e-9 naive)
        rete
        (float_of_int gates /. Float.max 1e-9 rete))
    [ 200; 400; 800; 1200; 1600; 2000 ];
  Printf.printf
    "paper reference: LSS reports ~9 gates/s on an IBM 3081, roughly linear;\n\
     the naive matcher rescans every site per cycle (superlinear), the\n\
     Rete-style incremental matcher restores near-linear behaviour.\n"

(* --- E5: strategy profiles -------------------------------------------- *)

let strategies () =
  section "E5 / Figure 9: per-strategy gain and cost profile";
  Printf.printf "%2s %-18s %10s %10s %10s %10s\n" "#" "strategy" "dDelay(ns)"
    "dArea" "dPower" "time(ms)";
  let target = Milo_techmap.Table_map.ecl_target () in
  let env name = Milo_library.Technology.find (Milo_library.Ecl.get ()) name in
  List.iter
    (fun (s : Milo_optimizer.Strategies.strategy) ->
      (* average over several workloads; a strategy may not apply
         everywhere *)
      let applied = ref 0 in
      let dd = ref 0.0 and da = ref 0.0 and dp = ref 0.0 and tt = ref 0.0 in
      List.iter
        (fun seed ->
          let src = Milo_designs.Workload.random_logic ~gates:60 ~seed () in
          let d = Milo_techmap.Table_map.map_design target src in
          let ctx =
            R.make_context (Milo_library.Ecl.get ())
              (Milo_compilers.Gate_comp.named_set ~prefix:"E_"
                 (Milo_library.Ecl.get ()))
              d
          in
          let sta = Milo_timing.Sta.analyze env d in
          match Milo_timing.Paths.most_critical sta with
          | None -> ()
          | Some path ->
              let delay0 = Milo_timing.Sta.worst_delay sta in
              let area0 = Milo_estimate.Estimate.area env d in
              let power0 = Milo_estimate.Estimate.power env d in
              let log = D.new_log () in
              let result, t =
                time (fun () -> s.Milo_optimizer.Strategies.run ctx sta path log)
              in
              (match result with
              | Milo_optimizer.Strategies.Applied _ ->
                  Milo_rules.Engine.run_cleanups ctx Milo_critic.Critic.cleanup
                    log;
                  let sta' = Milo_timing.Sta.analyze env d in
                  incr applied;
                  dd := !dd +. (delay0 -. Milo_timing.Sta.worst_delay sta');
                  da := !da +. (Milo_estimate.Estimate.area env d -. area0);
                  dp := !dp +. (Milo_estimate.Estimate.power env d -. power0);
                  tt := !tt +. t
              | Milo_optimizer.Strategies.Not_applicable -> D.undo d log))
        [ 201; 202; 203; 204; 205; 206 ];
      if !applied > 0 then
        let n = float_of_int !applied in
        Printf.printf "%2d %-18s %10.2f %10.2f %10.2f %10.2f\n"
          s.Milo_optimizer.Strategies.id s.Milo_optimizer.Strategies.strat_name
          (!dd /. n) (!da /. n) (!dp /. n)
          (1000.0 *. !tt /. n)
      else
        Printf.printf "%2d %-18s %10s\n" s.Milo_optimizer.Strategies.id
          s.Milo_optimizer.Strategies.strat_name "n/a")
    Milo_optimizer.Strategies.all;
  Printf.printf
    "paper reference: 1-2 free/tiny, 3-6 moderate, 7-8 large gain at cost.\n"

(* --- E6: the microarchitecture critic --------------------------------- *)

let microcritic () =
  section "E6 / Figures 14-15: adder+register -> counter";
  Printf.printf "%6s %12s %12s %12s %12s\n" "bits" "base delay" "MILO delay"
    "base area" "MILO area";
  List.iter
    (fun bits ->
      let design = Milo_designs.Suite.accumulator ~bits () in
      let human = Milo.Flow.baseline_stats ~technology:Milo.Flow.Ecl design in
      let res =
        Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
          ~constraints:(Milo.Constraints.delay (human.Milo.Flow.delay *. 0.8))
          design
      in
      Printf.printf "%6d %12.2f %12.2f %12.1f %12.1f   (%s)\n" bits
        human.Milo.Flow.delay res.Milo.Flow.final.Milo.Flow.delay
        human.Milo.Flow.area res.Milo.Flow.final.Milo.Flow.area
        (String.concat "," (List.map fst res.Milo.Flow.micro_applications)))
    [ 4; 8; 12; 16 ]

(* --- E7: the formula estimator ----------------------------------------- *)

let estimator () =
  section "E7 / Section 5: formula estimator vs compiled measurement (ECL)";
  Printf.printf "%-28s %9s %9s %7s %9s %9s %7s\n" "component" "est.area"
    "meas.area" "err%" "est.pwr" "meas.pwr" "err%";
  let kinds =
    [
      T.Gate (T.And, 4);
      T.Gate (T.Xor, 3);
      T.Multiplexor { bits = 4; inputs = 4; enable = false };
      T.Multiplexor { bits = 8; inputs = 2; enable = false };
      T.Decoder { bits = 3; enable = false };
      T.Comparator { bits = 8; fns = [ T.Eq; T.Lt; T.Gt ] };
      T.Arith_unit { bits = 8; fns = [ T.Add ]; mode = T.Ripple };
      T.Arith_unit { bits = 8; fns = [ T.Add ]; mode = T.Lookahead };
      T.Arith_unit { bits = 16; fns = [ T.Add; T.Sub ]; mode = T.Ripple };
      T.Register
        { bits = 8; kind = T.Edge_triggered; fns = [ T.Load ];
          controls = [ T.Reset ]; inverting = false };
      T.Register
        { bits = 8; kind = T.Edge_triggered; fns = [ T.Load; T.Shift_right ];
          controls = [ T.Reset ]; inverting = false };
      T.Counter { bits = 8; fns = [ T.Count_up ]; controls = [ T.Reset ] };
    ]
  in
  let db = Milo_compilers.Database.create () in
  let lib = Milo_library.Generic.get () in
  let target = Milo_techmap.Table_map.ecl_target () in
  let env name = Milo_library.Technology.find (Milo_library.Ecl.get ()) name in
  List.iter
    (fun kind ->
      let est =
        Milo_estimate.Estimate.micro
          ~coefficients:Milo_estimate.Estimate.ecl_coefficients kind
      in
      let flat = Milo_compilers.Compile.compile_flat db lib kind in
      let mapped = Milo_techmap.Table_map.map_design target flat in
      let area = Milo_estimate.Estimate.area env mapped in
      let power = Milo_estimate.Estimate.power env mapped in
      let err e m = 100.0 *. (e -. m) /. m in
      Printf.printf "%-28s %9.1f %9.1f %6.0f%% %9.1f %9.1f %6.0f%%\n"
        (T.kind_name kind) est.Milo_estimate.Estimate.est_area area
        (err est.Milo_estimate.Estimate.est_area area)
        est.Milo_estimate.Estimate.est_power power
        (err est.Milo_estimate.Estimate.est_power power))
    kinds

(* --- E8: DAGON vs the table mapper ------------------------------------- *)

let dagon () =
  section "E8 / [Ke87]: DAGON tree covering vs the MILO table mapper";
  Printf.printf "%-14s %12s %12s %12s %12s\n" "workload" "table area"
    "dagon area" "table delay" "dagon delay";
  let genv name = Milo_library.Technology.find (Milo_library.Generic.get ()) name in
  let env name = Milo_library.Technology.find (Milo_library.Ecl.get ()) name in
  let target = Milo_techmap.Table_map.ecl_target () in
  let measure d =
    ( Milo_estimate.Estimate.area env d,
      Milo_timing.Sta.worst_delay (Milo_timing.Sta.analyze env d) )
  in
  let row name src =
    let table = Milo_techmap.Table_map.map_design target src in
    let dag = Milo_techmap.Dagon.map_design target genv src in
    let ta, td = measure table in
    let da, dd = measure dag in
    Printf.printf "%-14s %12.1f %12.1f %12.2f %12.2f\n" name ta da td dd
  in
  List.iter
    (fun seed ->
      row
        (Printf.sprintf "random-%d" seed)
        (Milo_designs.Workload.random_logic ~gates:80 ~seed ()))
    [ 301; 302 ];
  row "msi-rich" (Milo_designs.Workload.msi_rich ());
  Printf.printf
    "paper reference: DAGON is locally optimal over gate patterns, but\n\
     MILO's retained MSI macros win where the library has them (Sec 6.4).\n"

(* --- E9: the three control disciplines --------------------------------- *)

let disciplines () =
  section
    "E9 / Figure 6: rules-only multi-level (LSS) vs mixed (MILO) vs \
     algorithms-only (DAGON) on the Figure 19 designs";
  Printf.printf "%-8s %10s | %10s %10s %10s\n" "design" "baseline" "LSS" "MILO"
    "DAGON";
  let env name = Milo_library.Technology.find (Milo_library.Ecl.get ()) name in
  let genv name =
    Milo_library.Technology.find (Milo_library.Generic.get ()) name
  in
  let target = Milo_techmap.Table_map.ecl_target () in
  List.iter
    (fun (c : Milo_designs.Suite.case) ->
      let design = c.Milo_designs.Suite.case_design in
      let area d = Milo_estimate.Estimate.area env d in
      let baseline, db0 =
        Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl design
      in
      let lss, _ =
        Milo_baselines.Lss.optimize (Milo_compilers.Database.create ()) design
      in
      let milo =
        (Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
           ~constraints:c.Milo_designs.Suite.constraints design)
          .Milo.Flow.optimized
      in
      let dagon =
        let expanded =
          Milo_compilers.Compile.expand_design db0
            (Milo_library.Generic.get ())
            design
        in
        let flat = Milo_compilers.Database.flatten db0 expanded in
        Milo_techmap.Dagon.map_design target genv flat
      in
      Printf.printf "%-8s %10.1f | %10.1f %10.1f %10.1f\n"
        c.Milo_designs.Suite.case_name (area baseline) (area lss) (area milo)
        (area dagon))
    (Milo_designs.Suite.all ());
  Printf.printf
    "paper reference: decomposing MSI macros into gates loses high-level\n\
     information (Section 2.1.2 / 6.4); MILO keeps it and wins on the\n\
     structured designs.\n"

(* --- Bechamel micro-benchmarks ----------------------------------------- *)

let bechamel () =
  section "Bechamel micro-benchmarks (one kernel per experiment)";
  let open Bechamel in
  let design3 = (Milo_designs.Suite.design3 ()).Milo_designs.Suite.case_design in
  let d3c = (Milo_designs.Suite.design3 ()).Milo_designs.Suite.constraints in
  let mapped =
    let src = Milo_designs.Workload.random_logic ~gates:60 ~seed:71 () in
    Milo_techmap.Table_map.map_design (Milo_techmap.Table_map.ecl_target ()) src
  in
  let env name = Milo_library.Technology.find (Milo_library.Ecl.get ()) name in
  let genv name = Milo_library.Technology.find (Milo_library.Generic.get ()) name in
  let dagon_src = Milo_designs.Workload.random_logic ~gates:40 ~seed:72 () in
  let tests =
    [
      Test.make ~name:"E1-flow-design3"
        (Staged.stage (fun () ->
             ignore
               (Milo.Flow.run_exn ~technology:Milo.Flow.Ecl ~constraints:d3c design3)));
      Test.make ~name:"E4-ops-pass"
        (Staged.stage (fun () ->
             let d = D.copy mapped in
             let ctx =
               R.make_context (Milo_library.Ecl.get ())
                 (Milo_compilers.Gate_comp.named_set ~prefix:"E_"
                    (Milo_library.Ecl.get ()))
                 d
             in
             ignore
               (Milo_rules.Engine.ops_run ctx
                  (Milo_critic.Critic.logic @ Milo_critic.Critic.cleanup))));
      Test.make ~name:"E5-sta"
        (Staged.stage (fun () ->
             ignore (Milo_timing.Sta.analyze env mapped)));
      Test.make ~name:"E7-quine-5var"
        (Staged.stage (fun () ->
             ignore
               (Milo_minimize.Quine.minimize ~vars:5
                  ~on:[ 0; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31 ]
                  ~dc:[ 2; 8 ])));
      Test.make ~name:"E8-dagon-map"
        (Staged.stage (fun () ->
             ignore
               (Milo_techmap.Dagon.map_design
                  (Milo_techmap.Table_map.ecl_target ())
                  genv dagon_src)));
      Test.make ~name:"E8-table-map"
        (Staged.stage (fun () ->
             ignore
               (Milo_techmap.Table_map.map_design
                  (Milo_techmap.Table_map.ecl_target ())
                  dagon_src)));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:Measure.[| run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Printf.printf "  %-20s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-20s (no estimate)\n%!" name)
        results)
    tests

(* --- Budgeted smoke run ------------------------------------------------ *)

(* A tight-budget flow over design3: exercises the checkpoint/budget
   machinery end to end in milliseconds.  Wired into the runtest alias
   so every test run proves a 0-step budget still yields a mapped
   design. *)
let smoke () =
  section "smoke: design3 flow under a 0-step budget";
  let c = Milo_designs.Suite.design3 () in
  let budget = Milo_rules.Budget.make ~max_steps:0 () in
  match
    Milo.Flow.run ~technology:Milo.Flow.Ecl
      ~constraints:c.Milo_designs.Suite.constraints ~budget
      c.Milo_designs.Suite.case_design
  with
  | Milo.Flow.Complete res ->
      let b = res.Milo.Flow.budget in
      Printf.printf "complete: %d comps mapped, %s\n"
        (D.num_comps res.Milo.Flow.optimized)
        (Format.asprintf "%a" Milo_rules.Budget.pp_status b);
      if not b.Milo_rules.Budget.budget_exhausted then begin
        Printf.printf "smoke: budget_exhausted not set\n";
        exit 1
      end
  | Milo.Flow.Partial p ->
      Printf.printf "smoke: degraded at %s: %s\n"
        (Milo.Flow.stage_name p.Milo.Flow.failed_stage)
        p.Milo.Flow.failure.Milo.Flow.err_message;
      exit 1

(* --- E9: incremental measurement throughput ---------------------------- *)

(* Full-vs-incremental candidate-evaluation throughput over the largest
   mapped suite design: the same candidate set is evaluated by
   [Engine.evaluate] with a full recompute per candidate
   ([Engine.measure_fn]) and with the incremental measurer (delta-STA +
   streaming estimates), after a differential-oracle pass proving both
   agree.  Results land in BENCH_measure.json so the perf trajectory is
   tracked.  `measure smoke` is the runtest-wired variant: tiny design,
   conservative threshold. *)

module Measure = Milo_measure.Measure

let median = function
  | [] -> 0.0
  | xs ->
      let s = List.sort compare xs in
      List.nth s (List.length s / 2)

let measure_bench ~smoke_mode () =
  section
    (if smoke_mode then "E9 / measure smoke: incremental vs full evaluation"
     else "E9 / measure: incremental vs full evaluation throughput");
  Milo_rules.Engine.quarantine_reset ();
  let ecl = Milo_library.Ecl.get () in
  let name, mapped =
    if smoke_mode then begin
      let d = Milo_designs.Workload.random_logic ~gates:40 ~seed:17 () in
      let target = Milo_techmap.Table_map.ecl_target () in
      ("workload_g40_s17", Milo_techmap.Table_map.map_design target d)
    end
    else
      (* the largest suite design by mapped component count *)
      List.fold_left
        (fun acc (c : Milo_designs.Suite.case) ->
          let m, _ =
            Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl
              c.Milo_designs.Suite.case_design
          in
          match acc with
          | _, best when D.num_comps best >= D.num_comps m -> acc
          | _ -> (c.Milo_designs.Suite.case_name, m))
        ("design1",
         fst
           (Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl
              (Milo_designs.Suite.design1 ()).Milo_designs.Suite.case_design))
        (Milo_designs.Suite.all ())
  in
  Printf.printf "design %s: %d comps\n%!" name (D.num_comps mapped);
  let rules =
    Milo_critic.Critic.logic @ Milo_critic.Critic.area
    @ Milo_critic.Critic.power
  in
  let max_cands = if smoke_mode then 30 else 150 in
  let trials = if smoke_mode then 3 else 5 in
  let fresh () =
    let d = D.copy mapped in
    let ctx =
      R.make_context ecl
        (Milo_compilers.Gate_comp.named_set ~prefix:"E_" ecl)
        d
    in
    (d, ctx)
  in
  let candidates ctx =
    let all =
      List.concat_map
        (fun (r : R.t) ->
          List.map (fun s -> (r, s)) (Milo_rules.Engine.guarded_find ctx r))
        rules
    in
    List.filteri (fun i _ -> i < max_cands) all
  in
  (* Oracle phase: every advance/retreat of a limited candidate sweep is
     cross-checked against a full recompute; any disagreement raises. *)
  let oracle_checks =
    let d, ctx = fresh () in
    let m = Measure.create ~input_arrivals:[] ecl d in
    ctx.R.measurer := Some m;
    Measure.set_debug_check true;
    let cost () = Milo_rules.Engine.weighted () (Measure.current m) in
    let n = if smoke_mode then 10 else 40 in
    let result =
      try
        List.iteri
          (fun i (r, s) ->
            if i < n then
              ignore (Milo_rules.Engine.evaluate ctx ~cost ~cleanups:[] r s))
          (candidates ctx);
        Ok (Measure.stats m).Measure.oracle_checks
      with Measure.Divergence msg -> Error msg
    in
    Measure.set_debug_check false;
    match result with
    | Ok checks ->
        Printf.printf "oracle: %d checks, 0 divergences\n%!" checks;
        checks
    | Error msg ->
        Printf.printf "measure: oracle divergence: %s\n" msg;
        exit 1
  in
  let eval_all ctx ~cleanups cost cands =
    let (), t =
      time (fun () ->
          List.iter
            (fun (r, s) ->
              ignore (Milo_rules.Engine.evaluate ctx ~cost ~cleanups r s))
            cands)
    in
    Float.max t 1e-9
  in
  let run_full ~cleanups () =
    let _, ctx = fresh () in
    let cost () =
      Milo_rules.Engine.weighted ()
        (Milo_rules.Engine.measure_fn ctx ~input_arrivals:[] ())
    in
    let cands = candidates ctx in
    (List.length cands, eval_all ctx ~cleanups cost cands)
  in
  let last_stats = ref None in
  let run_incr ~cleanups () =
    let d, ctx = fresh () in
    let m = Measure.create ~input_arrivals:[] ecl d in
    ctx.R.measurer := Some m;
    let cost () = Milo_rules.Engine.weighted () (Measure.current m) in
    let cands = candidates ctx in
    let t = eval_all ctx ~cleanups cost cands in
    last_stats := Some (Measure.stats m);
    (List.length cands, t)
  in
  let speedups = ref [] in
  let full_times = ref [] and incr_times = ref [] in
  let n_cands = ref 0 in
  for _ = 1 to trials do
    let nf, tf = run_full ~cleanups:[] () in
    let _, ti = run_incr ~cleanups:[] () in
    n_cands := nf;
    full_times := tf :: !full_times;
    incr_times := ti :: !incr_times;
    speedups := (tf /. ti) :: !speedups
  done;
  let nf, tfc = run_full ~cleanups:Milo_critic.Critic.cleanup () in
  let _, tic = run_incr ~cleanups:Milo_critic.Critic.cleanup () in
  ignore nf;
  let speedup_cleanups = tfc /. tic in
  let speedup_median = median !speedups in
  let tf_med = median !full_times and ti_med = median !incr_times in
  let full_eps = float_of_int !n_cands /. tf_med in
  let incr_eps = float_of_int !n_cands /. ti_med in
  let stats =
    match !last_stats with
    | Some s -> s
    | None ->
        {
          Measure.advances = 0; retreats = 0; commits = 0; resyncs = 0;
          env_hits = 0; env_misses = 0; oracle_checks = 0;
        }
  in
  let hit_rate =
    let total = stats.Measure.env_hits + stats.Measure.env_misses in
    if total = 0 then 0.0
    else float_of_int stats.Measure.env_hits /. float_of_int total
  in
  Printf.printf
    "%d candidates x %d trials\n\
     full:        %8.1f evals/s (median)\n\
     incremental: %8.1f evals/s (median)\n\
     speedup (median, pure measurement): %.2fx\n\
     speedup (with cleanup lookahead):   %.2fx\n\
     env cache hit rate: %.3f\n%!"
    !n_cands trials full_eps incr_eps speedup_median speedup_cleanups hit_rate;
  write_bench "BENCH_measure.json"
    [
      ("design", Printf.sprintf "%S" name);
      ("comps", string_of_int (D.num_comps mapped));
      ("candidates", string_of_int !n_cands);
      ("trials", string_of_int trials);
      ("smoke", string_of_bool smoke_mode);
      ("full_evals_per_sec", Printf.sprintf "%.2f" full_eps);
      ("incremental_evals_per_sec", Printf.sprintf "%.2f" incr_eps);
      ("speedup_median", Printf.sprintf "%.3f" speedup_median);
      ( "speedups",
        "["
        ^ String.concat ", "
            (List.map (Printf.sprintf "%.3f") (List.rev !speedups))
        ^ "]" );
      ("speedup_with_cleanups", Printf.sprintf "%.3f" speedup_cleanups);
      ("env_cache_hit_rate", Printf.sprintf "%.4f" hit_rate);
      ("advances", string_of_int stats.Measure.advances);
      ("retreats", string_of_int stats.Measure.retreats);
      ("oracle_checks", string_of_int oracle_checks);
      ("divergences", "0");
    ];
  if smoke_mode && speedup_median < 1.2 then begin
    Printf.printf
      "measure smoke: incremental slower than full (%.2fx < 1.2x)\n"
      speedup_median;
    exit 1
  end

(* --- E10: tracing overhead --------------------------------------------- *)

(* Wall-time of the full flow with tracing off, with a plain in-memory
   tracer, and with a JSONL streaming sink attached.  Min-of-trials keeps
   scheduler noise out of the comparison.  `trace-overhead smoke` runs on
   the small design3 case and asserts the in-memory tracer costs < 5%
   (plus a 5 ms absolute slack for sub-100ms runs); it lives on its own
   @trace_overhead alias rather than runtest so timing jitter can never
   fail the tier-1 suite. *)

let trace_overhead ~smoke_mode () =
  section
    (if smoke_mode then "E10 / trace-overhead smoke: tracing cost on design3"
     else "E10 / trace-overhead: tracing cost on the largest suite design");
  Milo_rules.Engine.quarantine_reset ();
  let case =
    if smoke_mode then Milo_designs.Suite.design3 ()
    else
      (* largest suite case by mapped component count *)
      List.fold_left
        (fun (acc : Milo_designs.Suite.case) (c : Milo_designs.Suite.case) ->
          let m, _ =
            Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl
              c.Milo_designs.Suite.case_design
          in
          let ma, _ =
            Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl
              acc.Milo_designs.Suite.case_design
          in
          if D.num_comps m > D.num_comps ma then c else acc)
        (Milo_designs.Suite.design1 ())
        (Milo_designs.Suite.all ())
  in
  let name = case.Milo_designs.Suite.case_name in
  let trials = if smoke_mode then 3 else 5 in
  let max_steps = if smoke_mode then 10 else 200 in
  let run_flow ?trace () =
    let budget = Milo_rules.Budget.make ~max_steps () in
    match
      Milo.Flow.run ?trace ~technology:Milo.Flow.Ecl
        ~constraints:case.Milo_designs.Suite.constraints ~budget
        case.Milo_designs.Suite.case_design
    with
    | Milo.Flow.Complete _ -> ()
    | Milo.Flow.Partial p ->
        Printf.printf "trace-overhead: flow degraded at %s: %s\n"
          (Milo.Flow.stage_name p.Milo.Flow.failed_stage)
          p.Milo.Flow.failure.Milo.Flow.err_message;
        exit 1
  in
  let min_of f =
    let best = ref infinity in
    for _ = 1 to trials do
      let (), t = time f in
      if t < !best then best := t
    done;
    !best
  in
  (* warm-up: libraries, compiler memo tables, suite laziness *)
  run_flow ();
  let off_min = min_of (fun () -> run_flow ()) in
  let last_events = ref 0 in
  let mem_min =
    min_of (fun () ->
        let t = Milo_trace.Trace.create () in
        run_flow ~trace:t ();
        last_events := Milo_trace.Trace.event_count t)
  in
  let jsonl_min =
    min_of (fun () ->
        let path = Filename.temp_file "milo_trace" ".jsonl" in
        let oc = open_out path in
        let t = Milo_trace.Trace.create () in
        Milo_trace.Trace.add_sink t (Milo_trace.Export.jsonl_sink oc);
        run_flow ~trace:t ();
        close_out oc;
        Sys.remove path)
  in
  let pct base v = (v -. base) /. base *. 100.0 in
  Printf.printf
    "design %s, %d trials (min), %d events per traced run\n\
     off:       %8.2f ms\n\
     in-memory: %8.2f ms  (%+.1f%%)\n\
     jsonl:     %8.2f ms  (%+.1f%%)\n%!"
    name trials !last_events (off_min *. 1e3) (mem_min *. 1e3)
    (pct off_min mem_min) (jsonl_min *. 1e3) (pct off_min jsonl_min);
  write_bench "BENCH_trace.json"
    [
      ("design", Printf.sprintf "%S" name);
      ("trials", string_of_int trials);
      ("smoke", string_of_bool smoke_mode);
      ("events", string_of_int !last_events);
      ("off_ms", Printf.sprintf "%.3f" (off_min *. 1e3));
      ("in_memory_ms", Printf.sprintf "%.3f" (mem_min *. 1e3));
      ("jsonl_ms", Printf.sprintf "%.3f" (jsonl_min *. 1e3));
      ("in_memory_overhead_pct", Printf.sprintf "%.2f" (pct off_min mem_min));
      ("jsonl_overhead_pct", Printf.sprintf "%.2f" (pct off_min jsonl_min));
    ];
  if smoke_mode && mem_min >= (off_min *. 1.05) +. 0.005 then begin
    Printf.printf
      "trace-overhead smoke: in-memory tracer too slow (%.2f ms vs %.2f ms)\n"
      (mem_min *. 1e3) (off_min *. 1e3);
    exit 1
  end

(* --- E14: trajectory-recording overhead --------------------------------- *)

(* Wall-time of the full flow with the provenance recorder off, on
   (in-memory), and with the trajectory JSONL sink streaming.  Same
   min-of-trials discipline as trace-overhead.  `trajectory smoke`
   asserts the in-memory recorder costs < 5% (plus a 5 ms absolute
   slack for sub-100ms runs) and writes BENCH_trajectory.json; it lives
   on its own @trajectory_overhead alias rather than runtest so timing
   jitter can never fail the tier-1 suite. *)

let trajectory_bench ~smoke_mode () =
  section
    (if smoke_mode then
       "E14 / trajectory smoke: provenance recording cost on design3"
     else
       "E14 / trajectory: provenance recording cost on the largest suite \
        design");
  Milo_rules.Engine.quarantine_reset ();
  let case =
    if smoke_mode then Milo_designs.Suite.design3 ()
    else
      List.fold_left
        (fun (acc : Milo_designs.Suite.case) (c : Milo_designs.Suite.case) ->
          let m, _ =
            Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl
              c.Milo_designs.Suite.case_design
          in
          let ma, _ =
            Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl
              acc.Milo_designs.Suite.case_design
          in
          if D.num_comps m > D.num_comps ma then c else acc)
        (Milo_designs.Suite.design1 ())
        (Milo_designs.Suite.all ())
  in
  let name = case.Milo_designs.Suite.case_name in
  let trials = if smoke_mode then 3 else 5 in
  let max_steps = if smoke_mode then 10 else 200 in
  let run_flow ?provenance () =
    let budget = Milo_rules.Budget.make ~max_steps () in
    match
      Milo.Flow.run ?provenance ~technology:Milo.Flow.Ecl
        ~constraints:case.Milo_designs.Suite.constraints ~budget
        case.Milo_designs.Suite.case_design
    with
    | Milo.Flow.Complete _ -> ()
    | Milo.Flow.Partial p ->
        Printf.printf "trajectory: flow degraded at %s: %s\n"
          (Milo.Flow.stage_name p.Milo.Flow.failed_stage)
          p.Milo.Flow.failure.Milo.Flow.err_message;
        exit 1
  in
  let min_of f =
    let best = ref infinity in
    for _ = 1 to trials do
      let (), t = time f in
      if t < !best then best := t
    done;
    !best
  in
  (* warm-up: libraries, compiler memo tables, suite laziness *)
  run_flow ();
  let off_min = min_of (fun () -> run_flow ()) in
  let last_events = ref 0 in
  let on_min =
    min_of (fun () ->
        let p = Milo_provenance.Provenance.create () in
        run_flow ~provenance:p ();
        last_events := List.length (Milo_provenance.Provenance.events p))
  in
  let jsonl_min =
    min_of (fun () ->
        let path = Filename.temp_file "milo_traj" ".jsonl" in
        let oc = open_out path in
        let p = Milo_provenance.Provenance.create () in
        Milo_provenance.Provenance.add_sink p
          (Milo_provenance.Trajectory.sink oc);
        run_flow ~provenance:p ();
        close_out oc;
        Sys.remove path)
  in
  let pct base v = (v -. base) /. base *. 100.0 in
  Printf.printf
    "design %s, %d trials (min), %d events per recorded run\n\
     off:      %8.2f ms\n\
     recorded: %8.2f ms  (%+.1f%%)\n\
     jsonl:    %8.2f ms  (%+.1f%%)\n%!"
    name trials !last_events (off_min *. 1e3) (on_min *. 1e3)
    (pct off_min on_min) (jsonl_min *. 1e3) (pct off_min jsonl_min);
  write_bench "BENCH_trajectory.json"
    [
      ("design", Printf.sprintf "%S" name);
      ("trials", string_of_int trials);
      ("smoke", string_of_bool smoke_mode);
      ("events", string_of_int !last_events);
      ("off_ms", Printf.sprintf "%.3f" (off_min *. 1e3));
      ("recorded_ms", Printf.sprintf "%.3f" (on_min *. 1e3));
      ("jsonl_ms", Printf.sprintf "%.3f" (jsonl_min *. 1e3));
      ("recorded_overhead_pct", Printf.sprintf "%.2f" (pct off_min on_min));
      ("jsonl_overhead_pct", Printf.sprintf "%.2f" (pct off_min jsonl_min));
    ];
  if smoke_mode && on_min >= (off_min *. 1.05) +. 0.005 then begin
    Printf.printf
      "trajectory smoke: provenance recorder too slow (%.2f ms vs %.2f ms)\n"
      (on_min *. 1e3) (off_min *. 1e3);
    exit 1
  end

(* --- E11: semantic-guard overhead --------------------------------------- *)

(* Wall-time of the full flow with the semantic guard off, sampled and
   full.  Min-of-trials, like trace-overhead.  `guard-overhead smoke`
   runs on the small design3 case and asserts the sampled tier costs
   < 10% (plus a 5 ms absolute slack for sub-100ms runs); it lives on
   its own @guard_overhead alias rather than runtest so timing jitter
   can never fail the tier-1 suite. *)

let guard_overhead ~smoke_mode () =
  section
    (if smoke_mode then
       "E11 / guard-overhead smoke: semantic-guard cost, combinational \
        suite designs"
     else "E11 / guard-overhead: semantic-guard cost on the example suite");
  Milo_rules.Engine.quarantine_reset ();
  let cases =
    (* combinational subset for smoke: enough work to amortize the
       fixed per-stage checking cost, no lock-step sequential runs *)
    if smoke_mode then
      [
        Milo_designs.Suite.design1 ();
        Milo_designs.Suite.design2 ();
        Milo_designs.Suite.design3 ();
        Milo_designs.Suite.design5 ();
      ]
    else Milo_designs.Suite.all ()
  in
  let name =
    String.concat ","
      (List.map
         (fun (c : Milo_designs.Suite.case) -> c.Milo_designs.Suite.case_name)
         cases)
  in
  let trials = if smoke_mode then 3 else 5 in
  let max_steps = if smoke_mode then 10 else 200 in
  let guard_stats = ref (Milo_guard.Guard.fresh_stats ()) in
  let run_flow guard () =
    List.iter
      (fun (case : Milo_designs.Suite.case) ->
        let budget = Milo_rules.Budget.make ~max_steps () in
        match
          (* [~certify:false]: this experiment measures the dynamic
             guard alone; the certification win is E12's subject. *)
          Milo.Flow.run ~technology:Milo.Flow.Ecl
            ~constraints:case.Milo_designs.Suite.constraints ~budget ~guard
            ~certify:false case.Milo_designs.Suite.case_design
        with
        | Milo.Flow.Complete res -> guard_stats := res.Milo.Flow.guard_stats
        | Milo.Flow.Partial p ->
            Printf.printf "guard-overhead: flow degraded at %s: %s\n"
              (Milo.Flow.stage_name p.Milo.Flow.failed_stage)
              p.Milo.Flow.failure.Milo.Flow.err_message;
            exit 1)
      cases
  in
  let min_of f =
    let best = ref infinity in
    for _ = 1 to trials do
      let (), t = time f in
      if t < !best then best := t
    done;
    !best
  in
  (* warm-up: libraries, compiler memo tables, suite laziness *)
  run_flow Milo_guard.Guard.Off ();
  let off_min = min_of (run_flow Milo_guard.Guard.Off) in
  let sampled_min = min_of (run_flow Milo_guard.Guard.Sampled) in
  let sampled_stats = !guard_stats in
  let full_min = min_of (run_flow Milo_guard.Guard.Full) in
  let full_stats = !guard_stats in
  let pct base v = (v -. base) /. base *. 100.0 in
  let pp_guard (s : Milo_guard.Guard.stats) =
    Printf.sprintf "%d stage + %d rule checks, %d skipped"
      s.Milo_guard.Guard.stage_checks s.Milo_guard.Guard.rule_checks
      s.Milo_guard.Guard.rule_skipped
  in
  Printf.printf
    "designs %s, %d trials (min)\n\
     off:     %8.2f ms\n\
     sampled: %8.2f ms  (%+.1f%%)  last run: %s\n\
     full:    %8.2f ms  (%+.1f%%)  last run: %s\n%!"
    name trials (off_min *. 1e3) (sampled_min *. 1e3)
    (pct off_min sampled_min)
    (pp_guard sampled_stats) (full_min *. 1e3) (pct off_min full_min)
    (pp_guard full_stats);
  write_bench "BENCH_guard.json"
    [
      ("designs", Printf.sprintf "%S" name);
      ("trials", string_of_int trials);
      ("smoke", string_of_bool smoke_mode);
      ("off_ms", Printf.sprintf "%.3f" (off_min *. 1e3));
      ("sampled_ms", Printf.sprintf "%.3f" (sampled_min *. 1e3));
      ("full_ms", Printf.sprintf "%.3f" (full_min *. 1e3));
      ("sampled_overhead_pct", Printf.sprintf "%.2f" (pct off_min sampled_min));
      ("full_overhead_pct", Printf.sprintf "%.2f" (pct off_min full_min));
      ( "sampled_stage_checks",
        string_of_int sampled_stats.Milo_guard.Guard.stage_checks );
      ( "sampled_rule_checks",
        string_of_int sampled_stats.Milo_guard.Guard.rule_checks );
      ( "sampled_rule_skipped",
        string_of_int sampled_stats.Milo_guard.Guard.rule_skipped );
      ( "full_stage_checks",
        string_of_int full_stats.Milo_guard.Guard.stage_checks );
      ( "full_rule_checks",
        string_of_int full_stats.Milo_guard.Guard.rule_checks );
    ];
  if smoke_mode && sampled_min >= (off_min *. 1.10) +. 0.005 then begin
    Printf.printf
      "guard-overhead smoke: sampled tier too slow (%.2f ms vs %.2f ms)\n"
      (sampled_min *. 1e3) (off_min *. 1e3);
    exit 1
  end

(* --- E13: journal overhead + crash recovery ----------------------------- *)

(* Wall-time of the flow with and without the write-ahead journal, plus
   the cost of recovery: the journaled flow is killed after every
   checkpoint record and resumed, and the resume wall-time reported.
   Min-of-trials for the throughput comparison, like trace-overhead.
   `journal smoke` runs on design3 and asserts journaling costs < 10%
   (plus a 5 ms absolute slack for sub-100ms runs); it lives on its own
   @journal_overhead alias rather than runtest so timing jitter can
   never fail the tier-1 suite. *)

let journal_bench ~smoke_mode () =
  section
    (if smoke_mode then
       "E13 / journal smoke: write-ahead journal cost + crash recovery"
     else "E13 / journal: write-ahead journal cost on the suite designs");
  Milo_rules.Engine.quarantine_reset ();
  let module J = Milo_journal.Journal in
  let cases =
    if smoke_mode then [ Milo_designs.Suite.design3 () ]
    else Milo_designs.Suite.all ()
  in
  let name =
    String.concat ","
      (List.map
         (fun (c : Milo_designs.Suite.case) -> c.Milo_designs.Suite.case_name)
         cases)
  in
  let trials = if smoke_mode then 3 else 5 in
  let max_steps = if smoke_mode then 10 else 200 in
  let journal_path = Filename.temp_file "milo_bench_journal" ".mjl" in
  let run_flow ?journal ?journal_fault () =
    List.iter
      (fun (case : Milo_designs.Suite.case) ->
        let budget = Milo_rules.Budget.make ~max_steps () in
        match
          Milo.Flow.run ~technology:Milo.Flow.Ecl
            ~constraints:case.Milo_designs.Suite.constraints ~budget ?journal
            ?journal_fault case.Milo_designs.Suite.case_design
        with
        | Milo.Flow.Complete _ -> ()
        | Milo.Flow.Partial p ->
            Printf.printf "journal: flow degraded at %s: %s\n"
              (Milo.Flow.stage_name p.Milo.Flow.failed_stage)
              p.Milo.Flow.failure.Milo.Flow.err_message;
            exit 1)
      cases
  in
  let min_of f =
    let best = ref infinity in
    for _ = 1 to trials do
      let (), t = time f in
      if t < !best then best := t
    done;
    !best
  in
  (* warm-up: libraries, compiler memo tables, suite laziness *)
  run_flow ();
  let off_min = min_of (fun () -> run_flow ()) in
  let on_min = min_of (fun () -> run_flow ~journal:journal_path ()) in
  let journal_bytes = (Unix.stat journal_path).Unix.st_size in
  let records = List.length (J.recover journal_path).J.r_records in
  (* Recovery: kill the first case's journaled run after every
     checkpoint record, resume each time, and report the mean resume
     wall-time. *)
  let case = List.hd cases in
  let single n =
    let budget = Milo_rules.Budget.make ~max_steps () in
    match
      Milo.Flow.run ~technology:Milo.Flow.Ecl
        ~constraints:case.Milo_designs.Suite.constraints ~budget
        ~journal:journal_path
        ~journal_fault:(fun c -> if c >= n then raise (J.Crash c))
        case.Milo_designs.Suite.case_design
    with
    | _ -> false
    | exception J.Crash _ -> true
  in
  ignore (single max_int);
  let ck_indices =
    List.filteri (fun _ r -> match r with J.Checkpoint _ -> true | _ -> false)
      (J.recover journal_path).J.r_records
    |> List.length
  in
  let resumes = ref 0 and resume_total = ref 0.0 in
  List.iteri
    (fun i r ->
      match r with
      | J.Checkpoint _ ->
          if single (i + 1) then begin
            let (), t = time (fun () -> ignore (Milo.Flow.resume journal_path)) in
            incr resumes;
            resume_total := !resume_total +. t
          end
      | _ -> ())
    (J.recover journal_path).J.r_records;
  Sys.remove journal_path;
  let resume_mean =
    if !resumes = 0 then 0.0 else !resume_total /. float_of_int !resumes
  in
  let pct base v = (v -. base) /. base *. 100.0 in
  Printf.printf
    "designs %s, %d trials (min), %d records (%d bytes), %d checkpoints\n\
     off:       %8.2f ms\n\
     journaled: %8.2f ms  (%+.1f%%)\n\
     resume:    %8.2f ms mean over %d crash points\n%!"
    name trials records journal_bytes ck_indices (off_min *. 1e3)
    (on_min *. 1e3) (pct off_min on_min) (resume_mean *. 1e3) !resumes;
  write_bench "BENCH_journal.json"
    [
      ("designs", Printf.sprintf "%S" name);
      ("trials", string_of_int trials);
      ("smoke", string_of_bool smoke_mode);
      ("records", string_of_int records);
      ("journal_bytes", string_of_int journal_bytes);
      ("checkpoints", string_of_int ck_indices);
      ("off_ms", Printf.sprintf "%.3f" (off_min *. 1e3));
      ("journaled_ms", Printf.sprintf "%.3f" (on_min *. 1e3));
      ("journal_overhead_pct", Printf.sprintf "%.2f" (pct off_min on_min));
      ("resume_points", string_of_int !resumes);
      ("resume_mean_ms", Printf.sprintf "%.3f" (resume_mean *. 1e3));
    ];
  if smoke_mode && on_min >= (off_min *. 1.10) +. 0.005 then begin
    Printf.printf "journal smoke: journaling too slow (%.2f ms vs %.2f ms)\n"
      (on_min *. 1e3) (off_min *. 1e3);
    exit 1
  end

(* --- E12: abstract interpretation + static rule certification ----------- *)

(* Three measurements: (a) the abstract-interpretation fixpoint
   wall-time per mapped suite design; (b) the certified fraction of the
   logic-level rule set (with the one-off proving cost); (c) the
   Full-guard flow overhead with and without static certification — the
   point of the certificates is to collapse (c).  `analyze smoke` runs
   on every test sweep and asserts certification recovers at least 3x
   of the Full-guard overhead, with an absolute slack so sub-2ms
   overheads (nothing left to recover) can never fail tier-1 on a noisy
   machine. *)

let analyze_bench ~smoke_mode () =
  section
    (if smoke_mode then
       "E12 / analyze smoke: absint fixpoint + rule-certification payoff"
     else "E12 / analyze: absint fixpoint + rule-certification payoff");
  Milo_rules.Engine.quarantine_reset ();
  let cases =
    (* Rule-check-heavy subset for smoke: certification removes the
       per-application cone checks, not the stage-boundary equivalence
       checks, so designs whose guard cost is mostly lock-step
       sequential stage checks (design2) would drown the measured
       payoff in a cost that is out of certification's reach. *)
    if smoke_mode then
      [
        Milo_designs.Suite.design1 ();
        Milo_designs.Suite.design3 ();
        Milo_designs.Suite.design5 ();
      ]
    else Milo_designs.Suite.all ()
  in
  let name =
    String.concat ","
      (List.map
         (fun (c : Milo_designs.Suite.case) -> c.Milo_designs.Suite.case_name)
         cases)
  in
  let trials = if smoke_mode then 3 else 5 in
  (* More steps than the guard-overhead smoke: the per-application cone
     checks are what certification removes, so the headroom of the 3x
     assert grows with the number of applications. *)
  let max_steps = if smoke_mode then 60 else 200 in
  let min_of f =
    let best = ref infinity in
    for _ = 1 to trials do
      let (), t = time f in
      if t < !best then best := t
    done;
    !best
  in
  let target = Milo.Flow.target_of Milo.Flow.Ecl in
  let techs =
    [ target.Milo_techmap.Table_map.tech; Milo_library.Generic.get () ]
  in
  let env = Milo_absint.Absint.env_of_techs techs in
  (* (a) full fixpoint (constants + liveness + observability) per
     mapped design; [summary] forces it *)
  let fixpoints =
    List.map
      (fun (case : Milo_designs.Suite.case) ->
        let mapped, _ =
          Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl
            case.Milo_designs.Suite.case_design
        in
        let t =
          min_of (fun () ->
              ignore (Milo_absint.Absint.summary
                        (Milo_absint.Absint.analyze env mapped)))
        in
        (case.Milo_designs.Suite.case_name, D.num_comps mapped, t))
      cases
  in
  (* (b) one-off proving cost into a fresh cache, then the verdicts *)
  let cache = Milo_absint.Certify.create_cache () in
  let rules = Milo_critic.Critic.all_logic_level in
  let certs = ref [] in
  let (), prove_time =
    time (fun () ->
        certs := Milo_absint.Certify.certify_rules ~cache target rules)
  in
  let certs = !certs in
  let count v =
    List.length
      (List.filter
         (fun (c : Milo_absint.Certify.certificate) ->
           c.Milo_absint.Certify.cert_verdict = v)
         certs)
  in
  let n_cert = count Milo_absint.Certify.Certified in
  let n_prob = count Milo_absint.Certify.Probabilistic in
  let n_total = List.length certs in
  let certified_fraction =
    if n_total = 0 then 0.0
    else float_of_int (n_cert + n_prob) /. float_of_int n_total
  in
  (* (c) flow cost: guard off, Full without certificates, Full with.
     The warm-up also fills the shared certificate cache, so the
     certified runs measure the amortized (cached) path. *)
  let run_flow ~guard ~certify () =
    List.iter
      (fun (case : Milo_designs.Suite.case) ->
        let budget = Milo_rules.Budget.make ~max_steps () in
        match
          Milo.Flow.run ~technology:Milo.Flow.Ecl
            ~constraints:case.Milo_designs.Suite.constraints ~budget ~guard
            ~certify case.Milo_designs.Suite.case_design
        with
        | Milo.Flow.Complete _ -> ()
        | Milo.Flow.Partial p ->
            Printf.printf "analyze: flow degraded at %s: %s\n"
              (Milo.Flow.stage_name p.Milo.Flow.failed_stage)
              p.Milo.Flow.failure.Milo.Flow.err_message;
            exit 1)
      cases
  in
  run_flow ~guard:Milo_guard.Guard.Off ~certify:false ();
  run_flow ~guard:Milo_guard.Guard.Full ~certify:true ();
  let off_min = min_of (run_flow ~guard:Milo_guard.Guard.Off ~certify:false) in
  let nocert_min =
    min_of (run_flow ~guard:Milo_guard.Guard.Full ~certify:false)
  in
  let cert_min =
    min_of (run_flow ~guard:Milo_guard.Guard.Full ~certify:true)
  in
  let over_nocert = nocert_min -. off_min in
  let over_cert = cert_min -. off_min in
  let ratio =
    if over_cert > 0.0 then over_nocert /. over_cert else infinity
  in
  List.iter
    (fun (n, comps, t) ->
      Printf.printf "fixpoint %-10s %4d comps  %8.3f ms\n" n comps (t *. 1e3))
    fixpoints;
  Printf.printf
    "certification: %d/%d certified, %d probabilistic (%.0f%% static) in \
     %.1f ms\n"
    n_cert n_total n_prob
    (certified_fraction *. 100.0)
    (prove_time *. 1e3);
  Printf.printf
    "designs %s, %d trials (min)\n\
     off:            %8.2f ms\n\
     full, no certs: %8.2f ms  (overhead %8.2f ms)\n\
     full, certs:    %8.2f ms  (overhead %8.2f ms, %.1fx reduction)\n%!"
    name trials (off_min *. 1e3) (nocert_min *. 1e3) (over_nocert *. 1e3)
    (cert_min *. 1e3) (over_cert *. 1e3) ratio;
  write_bench "BENCH_absint.json"
    [
      ("designs", Printf.sprintf "%S" name);
      ("trials", string_of_int trials);
      ("smoke", string_of_bool smoke_mode);
      ( "fixpoints",
        "["
        ^ String.concat ", "
            (List.map
               (fun (n, comps, t) ->
                 Printf.sprintf
                   "{\"comps\": %d, \"design\": %S, \"fixpoint_ms\": %.3f}"
                   comps n (t *. 1e3))
               fixpoints)
        ^ "]" );
      ("rules_total", string_of_int n_total);
      ("rules_certified", string_of_int n_cert);
      ("rules_probabilistic", string_of_int n_prob);
      ("certified_fraction", Printf.sprintf "%.3f" certified_fraction);
      ("prove_ms", Printf.sprintf "%.3f" (prove_time *. 1e3));
      ("off_ms", Printf.sprintf "%.3f" (off_min *. 1e3));
      ("full_nocert_ms", Printf.sprintf "%.3f" (nocert_min *. 1e3));
      ("full_cert_ms", Printf.sprintf "%.3f" (cert_min *. 1e3));
      ("overhead_nocert_ms", Printf.sprintf "%.3f" (over_nocert *. 1e3));
      ("overhead_cert_ms", Printf.sprintf "%.3f" (over_cert *. 1e3));
      ( "overhead_reduction",
        Printf.sprintf "%.2f" (if ratio = infinity then 999.0 else ratio) );
    ];
  (* The payoff assert: certification must recover >= 3x of the
     Full-guard overhead — unless the certified overhead is already
     under the 2 ms absolute slack, in which case there is nothing
     meaningful left to recover and jitter dominates. *)
  if smoke_mode && over_cert > 0.002 && ratio < 3.0 then begin
    Printf.printf
      "analyze smoke: certification payoff too small (%.2f ms -> %.2f ms, \
       %.1fx < 3x)\n"
      (over_nocert *. 1e3) (over_cert *. 1e3) ratio;
    exit 1
  end

(* --- E14: bit-parallel simulation throughput --------------------------- *)

(* Packed-vs-scalar settle throughput on the mapped suite datapaths
   (design6-8: the sequential workloads where the guard's cost is
   paid), plus the end-to-end equivalence-check cost — what `milo
   verify` and the Full stage guard pay — before/after the packed
   engine.  The "before" reference re-implements the pre-packed
   one-vector-per-settle check on the scalar path; "after" is
   Guard.check as shipped.  `sim smoke` lives on runtest and asserts
   the packed engine clears a 10x throughput floor on every measured
   design: the floor is architectural (a ~63-lane engine measuring
   well above it), not a jitter-prone few-percent margin. *)

let sim_bench ~smoke_mode () =
  section
    (if smoke_mode then
       "E14 / sim smoke: bit-parallel vs scalar simulation throughput"
     else "E14 / sim: bit-parallel vs scalar simulation + verify cost");
  let lanes = Milo_sim.Simulator.lanes in
  let trials = if smoke_mode then 3 else 5 in
  let min_of f =
    let best = ref infinity in
    for _ = 1 to trials do
      let (), t = time f in
      if t < !best then best := t
    done;
    !best
  in
  let env_mapped () =
    Milo_sim.Simulator.env_of_techs
      [ Milo_library.Ecl.get (); Milo_library.Generic.get () ]
  in
  let input_ports d =
    List.filter_map
      (fun (p, dir, _) -> if dir = T.Input then Some p else None)
      (D.ports d)
  in
  let word rng =
    Random.State.bits rng
    lor (Random.State.bits rng lsl 30)
    lor (Random.State.bits rng lsl 60)
  in
  (* Throughput: vectors/second through settle, same design, same
     stimulus discipline, stimulus pre-generated outside the timed
     region. *)
  let scalar_settles = if smoke_mode then 128 else 512 in
  let packed_settles = if smoke_mode then 64 else 256 in
  let eval_rows =
    List.map
      (fun (case : Milo_designs.Suite.case) ->
        let name = "design" ^ case.Milo_designs.Suite.case_name in
        let mapped, _ =
          Milo.Flow.human_baseline case.Milo_designs.Suite.case_design
        in
        let s = Milo_sim.Simulator.create (env_mapped ()) mapped in
        let ins = input_ports mapped in
        let rng = Random.State.make [| 0xbe9c |] in
        let scalar_vecs =
          Array.init scalar_settles (fun _ ->
              List.map (fun p -> (p, Random.State.bool rng)) ins)
        in
        let packed_vecs =
          Array.init packed_settles (fun _ ->
              List.map (fun p -> (p, word rng)) ins)
        in
        ignore (Milo_sim.Simulator.outputs s scalar_vecs.(0));
        ignore (Milo_sim.Simulator.outputs_packed s packed_vecs.(0));
        let t_scalar =
          min_of (fun () ->
              Array.iter
                (fun v -> ignore (Milo_sim.Simulator.outputs s v))
                scalar_vecs)
        in
        let t_packed =
          min_of (fun () ->
              Array.iter
                (fun w -> ignore (Milo_sim.Simulator.outputs_packed s w))
                packed_vecs)
        in
        let scalar_vps = float_of_int scalar_settles /. t_scalar in
        let packed_vps = float_of_int (packed_settles * lanes) /. t_packed in
        let speedup = packed_vps /. scalar_vps in
        Printf.printf
          "%-9s %4d comps: scalar %10.0f vec/s, packed %12.0f vec/s \
           (%5.1fx)\n%!"
          name (D.num_comps mapped) scalar_vps packed_vps speedup;
        (name, D.num_comps mapped, scalar_vps, packed_vps, speedup))
      [
        Milo_designs.Suite.design6 ();
        Milo_designs.Suite.design7 ();
        Milo_designs.Suite.design8 ();
      ]
  in
  (* Equivalence-check cost, raw vs mapped design8 (sequential
     lock-step, the expensive tier): the pre-packed one-vector scalar
     loop against Guard.check as shipped. *)
  let params =
    if smoke_mode then Milo_guard.Guard.sampled_params
    else Milo_guard.Guard.full_params
  in
  let raw = (Milo_designs.Suite.design8 ()).Milo_designs.Suite.case_design in
  let mapped, _ = Milo.Flow.human_baseline raw in
  let env_raw =
    Milo_sim.Simulator.env_of_techs [ Milo_library.Generic.get () ]
  in
  let scalar_reference_check () =
    let ins = input_ports raw in
    let rng = Random.State.make [| params.Milo_guard.Guard.seed |] in
    let clean = ref true in
    for _ = 1 to params.Milo_guard.Guard.runs do
      let s1 = Milo_sim.Simulator.create env_raw raw in
      let s2 = Milo_sim.Simulator.create (env_mapped ()) mapped in
      Milo_sim.Simulator.reset s1;
      Milo_sim.Simulator.reset s2;
      for _ = 1 to params.Milo_guard.Guard.cycles do
        let inputs = List.map (fun p -> (p, Random.State.bool rng)) ins in
        let o1 = Milo_sim.Simulator.outputs s1 inputs
        and o2 = Milo_sim.Simulator.outputs s2 inputs in
        if List.sort compare o1 <> List.sort compare o2 then clean := false;
        Milo_sim.Simulator.step s1 inputs;
        Milo_sim.Simulator.step s2 inputs
      done
    done;
    if not !clean then begin
      Printf.printf "sim bench: scalar reference check found a mismatch\n";
      exit 1
    end
  in
  let is_seq =
    Milo.Flow.seq_classifier
      [ Milo_library.Ecl.get (); Milo_library.Generic.get () ]
  in
  let packed_check () =
    match
      Milo_guard.Guard.check ~params ~is_seq env_raw raw (env_mapped ())
        mapped
    with
    | None -> ()
    | Some d ->
        Printf.printf "sim bench: guard found a mismatch: %s\n"
          (Milo_guard.Guard.describe d);
        exit 1
  in
  scalar_reference_check ();
  packed_check ();
  let before_min = min_of scalar_reference_check in
  let after_min = min_of packed_check in
  let verify_speedup = before_min /. after_min in
  Printf.printf
    "verify design8 vs mapped (%dx%d cycles): scalar %8.2f ms, packed \
     %8.2f ms (%.1fx)\n%!"
    params.Milo_guard.Guard.runs params.Milo_guard.Guard.cycles
    (before_min *. 1e3) (after_min *. 1e3) verify_speedup;
  let min_speedup =
    List.fold_left (fun acc (_, _, _, _, s) -> Float.min acc s) infinity
      eval_rows
  in
  write_bench "BENCH_sim.json"
    [
      ("lanes", string_of_int lanes);
      ("trials", string_of_int trials);
      ("smoke", string_of_bool smoke_mode);
      ( "eval",
        "[\n"
        ^ String.concat ",\n"
            (List.map
               (fun (n, comps, svps, pvps, sp) ->
                 Printf.sprintf
                   "    {\"comps\": %d, \"design\": %S, \"packed_vps\": \
                    %.0f, \"scalar_vps\": %.0f, \"speedup\": %.2f}"
                   comps n pvps svps sp)
               eval_rows)
        ^ "\n  ]" );
      ("min_eval_speedup", Printf.sprintf "%.2f" min_speedup);
      ( "verify",
        Printf.sprintf
          "{\"cycles\": %d, \"design\": \"design8\", \"packed_ms\": %.3f, \
           \"runs\": %d, \"scalar_ms\": %.3f, \"speedup\": %.2f}"
          params.Milo_guard.Guard.cycles (after_min *. 1e3)
          params.Milo_guard.Guard.runs (before_min *. 1e3) verify_speedup );
    ];
  if smoke_mode && min_speedup < 10.0 then begin
    Printf.printf "sim smoke: packed engine below the 10x floor (%.1fx)\n"
      min_speedup;
    exit 1
  end;
  if smoke_mode && after_min >= before_min +. 0.005 then begin
    Printf.printf
      "sim smoke: packed verify not faster than scalar reference (%.2f ms \
       vs %.2f ms)\n"
      (after_min *. 1e3) (before_min *. 1e3);
    exit 1
  end

(* --- E16: supervised parallel runtime ----------------------------------- *)

(* The domain-pool runtime must be observably invisible — bit-identical
   final designs and costs at [--domains 1] and [--domains n] — and
   fault-isolated: an injected task fault becomes a typed
   [Task_failed], never an escaped exception or a hang.  This bench
   measures both, plus honest wall-clock numbers, and writes
   BENCH_parallel.json.  A host without a second core cannot show real
   speedup (forced extra domains just oversubscribe the one core), so
   the smoke gate there is identity + graceful degradation: the
   unforced pooled run must carry the Degraded_to_sequential note and
   match the inline run bit-for-bit.  The speedup floor is asserted
   only on hosts with >= 4 cores, and the bench lives on its own
   @parallel_overhead alias rather than runtest so timing jitter can
   never fail the tier-1 suite. *)

module Pool = Milo_parallel.Pool

let parallel_bench ~smoke_mode () =
  section
    (if smoke_mode then
       "E16 / parallel smoke: domain-pool identity, faults, degradation"
     else "E16 / parallel: domain-pool speedup on the largest suite design");
  Milo_rules.Engine.quarantine_reset ();
  let host_cores = Domain.recommended_domain_count () in
  let case =
    if smoke_mode then Milo_designs.Suite.design3 ()
    else
      List.fold_left
        (fun (acc : Milo_designs.Suite.case) (c : Milo_designs.Suite.case) ->
          let m, _ =
            Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl
              c.Milo_designs.Suite.case_design
          in
          let ma, _ =
            Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl
              acc.Milo_designs.Suite.case_design
          in
          if D.num_comps m > D.num_comps ma then c else acc)
        (Milo_designs.Suite.design1 ())
        (Milo_designs.Suite.all ())
  in
  let name = case.Milo_designs.Suite.case_name in
  let trials = if smoke_mode then 3 else 5 in
  let domains = if host_cores >= 2 then min 4 host_cores else 4 in
  let run_flow ?(force = true) ~domains () =
    match
      Milo.Flow.run ~technology:Milo.Flow.Ecl
        ~constraints:case.Milo_designs.Suite.constraints ~domains
        ~force_domains:force case.Milo_designs.Suite.case_design
    with
    | Milo.Flow.Complete res -> res
    | Milo.Flow.Partial p ->
        Printf.printf "parallel: flow degraded at %s: %s\n"
          (Milo.Flow.stage_name p.Milo.Flow.failed_stage)
          p.Milo.Flow.failure.Milo.Flow.err_message;
        exit 1
  in
  let min_of f =
    let best = ref infinity in
    for _ = 1 to trials do
      let (), t = time f in
      if t < !best then best := t
    done;
    !best
  in
  (* Identity: the inline supervised path vs a real forced pool.  The
     hash covers the full netlist structure; stats cover the cost
     triple the flow reports. *)
  let r1 = run_flow ~domains:1 () in
  let rn = run_flow ~domains () in
  let hash r = Milo_journal.Journal.design_hash r.Milo.Flow.optimized in
  let divergences = ref 0 in
  if hash r1 <> hash rn then begin
    Printf.printf "parallel: domains 1 vs %d final design hashes differ\n"
      domains;
    incr divergences
  end;
  if r1.Milo.Flow.final <> rn.Milo.Flow.final then begin
    Printf.printf "parallel: domains 1 vs %d final costs differ\n" domains;
    incr divergences
  end;
  (* Degradation: without [force_domains], pool construction on a
     single-core host must refuse and fall back inline — identical
     results, note recorded.  On a multi-core host it must NOT refuse. *)
  let ru = run_flow ~force:false ~domains () in
  let degraded = List.mem "Degraded_to_sequential" ru.Milo.Flow.notes in
  if hash ru <> hash r1 then begin
    Printf.printf "parallel: unforced run diverges from inline run\n";
    incr divergences
  end;
  (* Timing: min-of-trials wall clock, inline vs forced pool.  Honest
     numbers — on a single-core host the pool is pure overhead and the
     speedup lands below 1.0. *)
  let seq_min = min_of (fun () -> ignore (run_flow ~domains:1 ())) in
  let par_min =
    Float.max (min_of (fun () -> ignore (run_flow ~domains ()))) 1e-9
  in
  let speedup = seq_min /. par_min in
  (* Fault containment: a pooled batch where every fourth task raises.
     Each injected fault must come back as [Task_failed (Raised _)] in
     its own slot; every healthy task must return its value. *)
  let fault_tasks = 16 in
  let injected i = i mod 4 = 1 in
  let outcomes =
    let tasks =
      List.init fault_tasks (fun i () ->
          Pool.poll ();
          if injected i then failwith (Printf.sprintf "injected fault %d" i);
          i * i)
    in
    match Pool.create ~force:true ~domains () with
    | Some p ->
        let o = Pool.run p tasks in
        Pool.shutdown p;
        o
    | None -> Pool.run_inline tasks
  in
  let fault_failures = ref 0 in
  Array.iteri
    (fun i o ->
      match (o, injected i) with
      | Pool.Done v, false when v = i * i -> ()
      | Pool.Task_failed (Pool.Raised _), true -> incr fault_failures
      | _ ->
          Printf.printf "parallel: task %d misclassified (%s)\n" i
            (match o with
            | Pool.Done _ -> "Done"
            | Pool.Task_failed f -> Pool.fault_message f);
          exit 1)
    outcomes;
  let fault_rate = float_of_int !fault_failures /. float_of_int fault_tasks in
  Printf.printf
    "design %s, %d trials (min), host_cores=%d, domains=%d\n\
     inline (domains 1): %8.2f ms\n\
     pooled (domains %d): %8.2f ms  (%.2fx)\n\
     divergences: %d, unforced degraded: %b\n\
     faults: %d/%d contained (rate %.3f)\n%!"
    name trials host_cores domains (seq_min *. 1e3) domains (par_min *. 1e3)
    speedup !divergences degraded !fault_failures fault_tasks fault_rate;
  write_bench "BENCH_parallel.json"
    [
      ("design", Printf.sprintf "%S" name);
      ("smoke", string_of_bool smoke_mode);
      ("trials", string_of_int trials);
      ("domains", string_of_int domains);
      ("host_cores", string_of_int host_cores);
      ("degraded_unforced", string_of_bool degraded);
      ("seq_ms", Printf.sprintf "%.3f" (seq_min *. 1e3));
      ("par_ms", Printf.sprintf "%.3f" (par_min *. 1e3));
      ("speedup", Printf.sprintf "%.2f" speedup);
      ("divergences", string_of_int !divergences);
      ("fault_tasks", string_of_int fault_tasks);
      ("fault_failures", string_of_int !fault_failures);
      ("fault_rate", Printf.sprintf "%.3f" fault_rate);
    ];
  if !divergences > 0 then begin
    Printf.printf "parallel: %d divergence(s) between domain counts\n"
      !divergences;
    exit 1
  end;
  if !fault_failures <> fault_tasks / 4 then begin
    Printf.printf "parallel: expected %d injected faults, saw %d\n"
      (fault_tasks / 4) !fault_failures;
    exit 1
  end;
  if host_cores < 2 && not degraded then begin
    Printf.printf
      "parallel: single-core host but unforced pooled run did not degrade\n";
    exit 1
  end;
  if host_cores >= 2 && degraded then begin
    Printf.printf
      "parallel: %d-core host but unforced pooled run degraded\n" host_cores;
    exit 1
  end;
  if smoke_mode && host_cores >= 4 && speedup < 1.2 then begin
    Printf.printf
      "parallel smoke: %d-core host below the 1.2x floor (%.2fx)\n" host_cores
      speedup;
    exit 1
  end

let all () =
  fig19 ();
  abadd ();
  metarules ();
  scaling ();
  strategies ();
  microcritic ();
  estimator ();
  dagon ();
  disciplines ();
  bechamel ()

let () =
  match if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None with
  | None -> all ()
  | Some "fig19" -> fig19 ()
  | Some "abadd" -> abadd ()
  | Some "metarules" -> metarules ()
  | Some "scaling" -> scaling ()
  | Some "strategies" -> strategies ()
  | Some "microcritic" -> microcritic ()
  | Some "estimator" -> estimator ()
  | Some "dagon" -> dagon ()
  | Some "disciplines" -> disciplines ()
  | Some "bechamel" -> bechamel ()
  | Some "smoke" -> smoke ()
  | Some "measure" ->
      let smoke_mode =
        Array.length Sys.argv > 2 && Sys.argv.(2) = "smoke"
      in
      measure_bench ~smoke_mode ()
  | Some "trace-overhead" ->
      let smoke_mode =
        Array.length Sys.argv > 2 && Sys.argv.(2) = "smoke"
      in
      trace_overhead ~smoke_mode ()
  | Some "guard-overhead" ->
      let smoke_mode =
        Array.length Sys.argv > 2 && Sys.argv.(2) = "smoke"
      in
      guard_overhead ~smoke_mode ()
  | Some "analyze" ->
      let smoke_mode =
        Array.length Sys.argv > 2 && Sys.argv.(2) = "smoke"
      in
      analyze_bench ~smoke_mode ()
  | Some "journal" ->
      let smoke_mode =
        Array.length Sys.argv > 2 && Sys.argv.(2) = "smoke"
      in
      journal_bench ~smoke_mode ()
  | Some "sim" ->
      let smoke_mode =
        Array.length Sys.argv > 2 && Sys.argv.(2) = "smoke"
      in
      sim_bench ~smoke_mode ()
  | Some "trajectory" ->
      let smoke_mode =
        Array.length Sys.argv > 2 && Sys.argv.(2) = "smoke"
      in
      trajectory_bench ~smoke_mode ()
  | Some "parallel" ->
      let smoke_mode =
        Array.length Sys.argv > 2 && Sys.argv.(2) = "smoke"
      in
      parallel_bench ~smoke_mode ()
  | Some other ->
      Printf.eprintf
        "unknown experiment %s \
         (fig19|abadd|metarules|scaling|strategies|microcritic|estimator|dagon|disciplines|bechamel|smoke|measure|trace-overhead|guard-overhead|analyze|journal|sim|trajectory|parallel)\n"
        other;
      exit 1
