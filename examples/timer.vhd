-- An 8-bit timer, entered through the structural VHDL front end
-- (Figure 11's "VHDL" input path).  Try:
--
--   dune exec bin/milo_cli.exe -- optimize examples/timer.vhd -t ecl --delay 5.0
--
entity timer8 is
  port ( clk  : in bit;
         rst  : in bit;
         en   : in bit;
         lim  : in bit_vector(7 downto 0);
         q    : out bit_vector(7 downto 0);
         hit  : out bit );
end timer8;

architecture structural of timer8 is
  signal count : bit_vector(7 downto 0);
begin
  cnt0 : counter generic map (bits => 8, fns => "up", controls => "reset,enable")
         port map (clk => clk, rst => rst, en => en, q => count, cout => open);

  cmp0 : comparator generic map (bits => 8, fns => "eq")
         port map (a => count, b => lim, eq => hit);

  q <= count;
end structural;
