(* The microarchitecture critic in action: the Figure 14/15 rule.

   A designer enters a timer as an adder accumulating +1 into a
   register.  The critic recognizes the pattern (adder whose second
   operand is the constant one, feeding a resettable register that loops
   back), calls the counter compiler, and replaces both components — the
   exact transformation of the paper's Figures 14 and 15.

   Run with:  dune exec examples/counter_rewrite.exe *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule

let () =
  let design = Milo_designs.Suite.accumulator ~bits:8 () in
  Printf.printf "as entered:\n%s\n" (Milo_netlist.Writer.to_string design);

  (* Show the match the critic finds. *)
  let ctx =
    R.make_context (Milo_library.Generic.get ())
      (Milo_compilers.Gate_comp.generic_set (Milo_library.Generic.get ()))
      design
  in
  let rule = Milo_critic.Micro_critic.adder_register_to_counter in
  (match rule.R.find ctx with
  | [ site ] ->
      Printf.printf "critic match: %s (components %s)\n\n" site.R.descr
        (String.concat ", "
           (List.map
              (fun cid -> (D.comp design cid).D.cname)
              site.R.site_comps))
  | sites -> Printf.printf "unexpected: %d sites\n" (List.length sites));

  (* Run the full flow; the critic fires and the counter compiler builds
     the replacement from CNT4 MSI macros. *)
  let human = Milo.Flow.baseline_stats ~technology:Milo.Flow.Ecl design in
  let res =
    Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
      ~constraints:(Milo.Constraints.delay (human.Milo.Flow.delay *. 0.8))
      design
  in
  Printf.printf "after the critic:\n%s\n"
    (Milo_netlist.Writer.to_string res.Milo.Flow.micro_design);
  Printf.printf "baseline: delay %.2f ns, area %.1f cells\n" human.Milo.Flow.delay
    human.Milo.Flow.area;
  Printf.printf "MILO:     delay %.2f ns, area %.1f cells\n"
    res.Milo.Flow.final.Milo.Flow.delay res.Milo.Flow.final.Milo.Flow.area;

  (* Behaviour is preserved. *)
  let baseline, _ = Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl design in
  let env = Milo_sim.Simulator.env_of_techs [ Milo_library.Ecl.get () ] in
  Format.printf "equivalence: %a@." Milo_sim.Equiv.pp_result
    (Milo_sim.Equiv.sequential env baseline env res.Milo.Flow.optimized)
