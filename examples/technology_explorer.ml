(* Technology exploration: the same captured design mapped and optimized
   onto the ECL gate array and the CMOS standard-cell library, with the
   carry-mode tradeoff examined through the microarchitecture critic's
   compile-and-measure feedback loop (Section 6.3).

   Run with:  dune exec examples/technology_explorer.exe *)

module T = Milo_netlist.Types

let () =
  let case = Milo_designs.Suite.design6 () in
  let design = case.Milo_designs.Suite.case_design in
  Printf.printf "design: %s\n\n" (Milo_netlist.Writer.summary design);

  (* Compare the two technologies end to end. *)
  Printf.printf "%-6s %12s %12s %12s | %12s %12s %12s\n" "tech" "base delay"
    "base area" "base power" "MILO delay" "MILO area" "MILO power";
  List.iter
    (fun (name, tech) ->
      let human = Milo.Flow.baseline_stats ~technology:tech design in
      let res =
        Milo.Flow.run_exn ~technology:tech
          ~constraints:case.Milo_designs.Suite.constraints design
      in
      Printf.printf "%-6s %12.2f %12.1f %12.1f | %12.2f %12.1f %12.1f\n" name
        human.Milo.Flow.delay human.Milo.Flow.area human.Milo.Flow.power
        res.Milo.Flow.final.Milo.Flow.delay res.Milo.Flow.final.Milo.Flow.area
        res.Milo.Flow.final.Milo.Flow.power)
    [ ("ECL", Milo.Flow.Ecl); ("CMOS", Milo.Flow.Cmos) ];

  (* The carry-mode tradeoff, measured through the critic's feedback
     loop: compile both parameterizations down and compare. *)
  print_endline "\ncarry-mode tradeoff on the 8-bit ALU (Section 6.3 feedback):";
  let db = Milo_compilers.Database.create () in
  let lib = Milo_library.Generic.get () in
  let target = Milo_techmap.Table_map.ecl_target () in
  List.iter
    (fun mode ->
      let kind = T.Arith_unit { bits = 8; fns = [ T.Add; T.Sub ]; mode } in
      let d = Milo_netlist.Design.create ("probe_" ^ T.kind_name kind) in
      let cid = Milo_netlist.Design.add_comp d kind in
      List.iter
        (fun (p, dir) ->
          let nid = Milo_netlist.Design.add_port d p dir in
          Milo_netlist.Design.connect d cid p nid)
        (T.pins_of_kind kind);
      let stats = Milo_critic.Micro_critic.evaluate_design db lib target d in
      Printf.printf "  %-12s delay %.2f ns, area %.1f cells, power %.1f mW\n"
        (T.carry_mode_name mode) stats.Milo_critic.Micro_critic.stat_delay
        stats.Milo_critic.Micro_critic.stat_area
        stats.Milo_critic.Micro_critic.stat_power)
    [ T.Ripple; T.Lookahead ]
