(* Quickstart: capture a small microarchitecture design, run the full
   MILO flow against a delay constraint, and print the report.

   Run with:  dune exec examples/quickstart.exe *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let () =
  (* 1. Capture: a 4-bit add-accumulate datapath, entered the way a
     schematic would draw it. *)
  let d = D.create "quickstart" in
  let a = List.init 4 (fun i -> D.add_port d (Printf.sprintf "A%d" i) T.Input) in
  let clk = D.add_port d "CLK" T.Input in
  let rst = D.add_port d "RST" T.Input in
  let q = List.init 4 (fun i -> D.add_port d (Printf.sprintf "Q%d" i) T.Output) in

  let adder =
    D.add_comp d ~name:"adder"
      (T.Arith_unit { bits = 4; fns = [ T.Add ]; mode = T.Ripple })
  in
  let reg =
    D.add_comp d ~name:"reg"
      (T.Register
         { bits = 4; kind = T.Edge_triggered; fns = [ T.Load ];
           controls = [ T.Reset ]; inverting = false })
  in
  (* wire: reg.Q -> adder.A (accumulate), ports A -> adder.B,
     adder.S -> reg.D, reg.Q -> output ports *)
  List.iteri
    (fun i qp ->
      D.connect d reg (Printf.sprintf "Q%d" i) qp;
      D.connect d adder (Printf.sprintf "A%d" i) qp)
    q;
  List.iteri (fun i an -> D.connect d adder (Printf.sprintf "B%d" i) an) a;
  let zero = D.add_comp d (T.Constant T.Vss) in
  let zn = D.new_net d in
  D.connect d zero "Y" zn;
  D.connect d adder "CIN" zn;
  List.iteri
    (fun i _ ->
      let n = D.new_net d in
      D.connect d adder (Printf.sprintf "S%d" i) n;
      D.connect d reg (Printf.sprintf "D%d" i) n)
    a;
  D.connect d reg "CLK" clk;
  D.connect d reg "RST" rst;

  (* 2. The symbol compiler renders what schematic capture would show. *)
  print_endline "--- symbols ---";
  print_string
    (Milo_compilers.Symbol.render
       (Milo_compilers.Symbol.generate
          (T.Arith_unit { bits = 4; fns = [ T.Add ]; mode = T.Ripple })));

  (* 3. Run the flow with a 6 ns constraint on the ECL library. *)
  let constraints = Milo.Constraints.delay 6.0 in
  let human = Milo.Flow.baseline_stats ~technology:Milo.Flow.Ecl d in
  let res = Milo.Flow.run_exn ~technology:Milo.Flow.Ecl ~constraints d in

  print_endline "--- result ---";
  Printf.printf "human baseline: delay %.2f ns, area %.1f cells, power %.1f mW\n"
    human.Milo.Flow.delay human.Milo.Flow.area human.Milo.Flow.power;
  print_string (Milo.Report.summary res);

  (* 4. Every transformation is verified: the optimized design is
     sequentially equivalent to the baseline. *)
  let baseline, _ = Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl d in
  let env = Milo_sim.Simulator.env_of_techs [ Milo_library.Ecl.get () ] in
  Format.printf "equivalence check: %a@." Milo_sim.Equiv.pp_result
    (Milo_sim.Equiv.sequential env baseline env res.Milo.Flow.optimized)
