(* Shared test helpers. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let generic () = Milo_library.Generic.get ()
let ecl () = Milo_library.Ecl.get ()
let cmos () = Milo_library.Cmos.get ()
let env_gen () = Milo_sim.Simulator.env_of_techs [ generic () ]
let env_ecl () = Milo_sim.Simulator.env_of_techs [ ecl () ]
let env_cmos () = Milo_sim.Simulator.env_of_techs [ cmos () ]

(* A behavioural reference design: one micro component wired straight to
   ports. *)
let micro_reference kind =
  let d = D.create ("ref_" ^ T.kind_name kind) in
  let cid = D.add_comp d kind in
  List.iter
    (fun (p, dir) ->
      let nid = D.add_port d p dir in
      D.connect d cid p nid)
    (T.pins_of_kind kind);
  d

let check_equiv ?(seq = false) ?(cycles = 64) ?(runs = 4) env1 d1 env2 d2 =
  let r =
    if seq then Milo_sim.Equiv.sequential ~cycles ~runs env1 d1 env2 d2
    else Milo_sim.Equiv.combinational env1 d1 env2 d2
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s ~ %s: %s" (D.name d1) (D.name d2)
       (Format.asprintf "%a" Milo_sim.Equiv.pp_result r))
    true
    (Milo_sim.Equiv.is_equivalent r)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Compile a kind fully flat over the generic library. *)
let compile_flat kind =
  let db = Milo_compilers.Database.create () in
  Milo_compilers.Compile.compile_flat db (generic ()) kind

let ctx_for tech design =
  let prefix =
    match Milo_library.Technology.name tech with
    | "ecl" -> "E_"
    | "cmos" -> "C_"
    | _ -> ""
  in
  Milo_rules.Rule.make_context tech
    (Milo_compilers.Gate_comp.named_set ~prefix tech)
    design

let mapped_workload ~gates ~seed =
  let d = Milo_designs.Workload.random_logic ~gates ~seed () in
  let target = Milo_techmap.Table_map.ecl_target () in
  Milo_techmap.Table_map.map_design target d
