(* Macro library tests: well-formedness of all three libraries, the
   truth-table function index, power variants. *)

module T = Milo_netlist.Types
module Macro = Milo_library.Macro
module Tech = Milo_library.Technology
open Milo_boolfunc

let libs () = [ Util.generic (); Util.ecl (); Util.cmos () ]

let test_macro_wellformed () =
  List.iter
    (fun tech ->
      List.iter
        (fun (m : Macro.t) ->
          let name = Printf.sprintf "%s/%s" (Tech.name tech) m.Macro.mname in
          (* pin names unique *)
          let pins = List.map fst m.Macro.pins in
          Alcotest.(check int) (name ^ " unique pins")
            (List.length pins)
            (List.length (List.sort_uniq compare pins));
          (* every arc references real pins *)
          List.iter
            (fun ((i, o), d) ->
              Alcotest.(check bool) (name ^ " arc pins") true
                (List.mem i m.Macro.inputs && List.mem o m.Macro.outputs);
              Alcotest.(check bool) (name ^ " arc delay >= 0") true (d >= 0.0))
            m.Macro.arcs;
          Alcotest.(check bool) (name ^ " area >= 0") true (m.Macro.area >= 0.0);
          Alcotest.(check bool) (name ^ " power >= 0") true (m.Macro.power >= 0.0);
          (* combinational macros must have an arc from every input *)
          if not (Macro.is_sequential m) then
            List.iter
              (fun i ->
                Alcotest.(check bool)
                  (name ^ " input " ^ i ^ " has arc")
                  true
                  (List.exists (fun ((i', _), _) -> i' = i) m.Macro.arcs
                  || m.Macro.inputs = []))
              m.Macro.inputs)
        (Tech.all tech))
    (libs ())

let test_behavior_arity () =
  (* eval_comb accepts exactly the declared inputs and produces the
     declared outputs. *)
  List.iter
    (fun tech ->
      List.iter
        (fun (m : Macro.t) ->
          if not (Macro.is_sequential m) then begin
            let input = Array.make (List.length m.Macro.inputs) false in
            let out = Macro.eval_comb m input in
            Alcotest.(check int)
              (Printf.sprintf "%s output arity" m.Macro.mname)
              (List.length m.Macro.outputs)
              (Array.length out)
          end)
        (Tech.all tech))
    (libs ())

let test_single_output_tt_consistent () =
  List.iter
    (fun tech ->
      List.iter
        (fun (m : Macro.t) ->
          match Macro.single_output_tt m with
          | None -> ()
          | Some tt ->
              let n = List.length m.Macro.inputs in
              for v = 0 to (1 lsl n) - 1 do
                let input = Array.init n (fun i -> v land (1 lsl i) <> 0) in
                Alcotest.(check bool)
                  (Printf.sprintf "%s tt vs eval" m.Macro.mname)
                  (Macro.eval_comb m input).(0)
                  (Truth_table.eval tt input)
              done)
        (Tech.all tech))
    (libs ())

let test_power_variants () =
  let ecl = Util.ecl () in
  (* every high-power variant is strictly faster and hungrier *)
  List.iter
    (fun (m : Macro.t) ->
      match Tech.high_power_variant ecl m.Macro.mname with
      | None -> ()
      | Some hv ->
          Alcotest.(check bool)
            (m.Macro.mname ^ " H faster")
            true
            (Macro.worst_delay hv < Macro.worst_delay m);
          Alcotest.(check bool)
            (m.Macro.mname ^ " H hungrier")
            true
            (hv.Macro.power > m.Macro.power);
          (* same function *)
          (match (Macro.single_output_tt m, Macro.single_output_tt hv) with
          | Some a, Some b ->
              Alcotest.(check bool) (m.Macro.mname ^ " same fn") true
                (Truth_table.equal a b)
          | _ -> ());
          (* and the variant maps back *)
          (match Tech.standard_variant ecl hv.Macro.mname with
          | Some back ->
              Alcotest.(check string) "round trip" m.Macro.mname back.Macro.mname
          | None -> Alcotest.fail "missing standard variant"))
    (Tech.all ecl)

let test_cmos_has_no_variants () =
  let cmos = Util.cmos () in
  List.iter
    (fun (m : Macro.t) ->
      Alcotest.(check bool) (m.Macro.mname ^ " no HP in CMOS") true
        (Tech.high_power_variant cmos m.Macro.mname = None))
    (Tech.all cmos)

let test_matches_for () =
  let ecl = Util.ecl () in
  (* 2-input OR matches E_OR2 (and its variants) with some permutation *)
  let or2 = Truth_table.of_fun 2 (fun a -> a.(0) || a.(1)) in
  let ms = Tech.matches_for ecl or2 in
  Alcotest.(check bool) "or2 found" true
    (List.exists (fun (m, _) -> m.Macro.mname = "E_OR2") ms);
  (* asymmetric function: (a + b) c, matches E_OA21 under permutation *)
  let oa = Truth_table.of_fun 3 (fun a -> (a.(1) || a.(2)) && a.(0)) in
  let ms = Tech.matches_for ecl oa in
  (match List.find_opt (fun (m, _) -> m.Macro.mname = "E_OA21") ms with
  | Some (m, perm) ->
      (* applying the permutation must reproduce the macro's table *)
      let mtt = Option.get (Macro.single_output_tt m) in
      Alcotest.(check bool) "perm correct" true
        (Truth_table.equal (Truth_table.permute oa perm) mtt)
  | None -> Alcotest.fail "OA21 not matched")

let test_gate_arities () =
  let ecl = Util.ecl () in
  Alcotest.(check (list int)) "E_OR arities" [ 2; 3; 4; 5 ]
    (Tech.gate_arities ecl "E_OR");
  let cmos = Util.cmos () in
  Alcotest.(check (list int)) "C_NAND arities" [ 2; 3; 4 ]
    (Tech.gate_arities cmos "C_NAND")

let test_figure13_coverage () =
  (* The generic library carries everything Figure 13 lists. *)
  let lib = Util.generic () in
  let required =
    [ "AND2"; "AND3"; "AND4"; "OR2"; "OR3"; "OR4"; "NAND2"; "NAND3"; "NAND4";
      "NOR2"; "NOR3"; "NOR4"; "XOR2"; "XOR3"; "XOR4"; "XNOR2"; "XNOR3";
      "XNOR4"; "INV"; "BUF"; "VDD"; "VSS"; "MUX2"; "MUX4"; "DEC1x2"; "DEC2x4";
      "ADD1"; "ADD4"; "ADD4CLA"; "CMP2"; "CMP4"; "CNT2"; "CNT4"; "DFF";
      "DFF_R"; "DFF_S"; "DFF_SR"; "DFFN"; "DLATCH"; "DLATCH_R" ]
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (Tech.mem lib name))
    required

let () =
  Alcotest.run "library"
    [
      ( "wellformed",
        [
          Alcotest.test_case "pins/arcs/areas" `Quick test_macro_wellformed;
          Alcotest.test_case "behavior arity" `Quick test_behavior_arity;
          Alcotest.test_case "tt consistency" `Quick
            test_single_output_tt_consistent;
          Alcotest.test_case "figure 13 coverage" `Quick test_figure13_coverage;
        ] );
      ( "variants",
        [
          Alcotest.test_case "high power (ECL)" `Quick test_power_variants;
          Alcotest.test_case "none in CMOS" `Quick test_cmos_has_no_variants;
        ] );
      ( "function-index",
        [
          Alcotest.test_case "matches_for" `Quick test_matches_for;
          Alcotest.test_case "gate arities" `Quick test_gate_arities;
        ] );
    ]
