test/test_minimize.ml: Alcotest Array Cover Cube Int64 List Milo_boolfunc Milo_minimize QCheck2 Truth_table Util
