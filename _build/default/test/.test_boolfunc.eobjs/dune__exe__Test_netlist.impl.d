test/test_netlist.ml: Alcotest Array List Milo_designs Milo_library Milo_netlist Printf QCheck2 Random String Util
