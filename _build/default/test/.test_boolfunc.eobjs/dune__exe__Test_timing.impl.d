test/test_timing.ml: Alcotest Float Hashtbl List Milo_library Milo_netlist Milo_timing Printf Util
