test/test_flow.ml: Alcotest Float Format List Milo Milo_designs Milo_library Milo_netlist Milo_sim Printf String Util
