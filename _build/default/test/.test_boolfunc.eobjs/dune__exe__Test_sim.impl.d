test/test_sim.ml: Alcotest List Milo_netlist Milo_sim Printf Util
