test/test_techmap.ml: Alcotest List Milo_compilers Milo_designs Milo_estimate Milo_library Milo_netlist Milo_sim Milo_techmap Printf Util
