test/test_vhdl.ml: Alcotest List Milo Milo_library Milo_netlist Milo_sim Milo_vhdl Printf Random String Util
