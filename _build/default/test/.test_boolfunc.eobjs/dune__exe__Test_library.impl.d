test/test_library.ml: Alcotest Array List Milo_boolfunc Milo_library Milo_netlist Option Printf Truth_table Util
