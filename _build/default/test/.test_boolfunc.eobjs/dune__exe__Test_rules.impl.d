test/test_rules.ml: Alcotest Format Hashtbl List Milo_compilers Milo_critic Milo_designs Milo_estimate Milo_library Milo_netlist Milo_rules Milo_sim Milo_techmap Printf Util
