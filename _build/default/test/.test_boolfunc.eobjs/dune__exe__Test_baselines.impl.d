test/test_baselines.ml: Alcotest Format List Milo Milo_baselines Milo_compilers Milo_critic Milo_designs Milo_estimate Milo_library Milo_netlist Milo_rules Milo_sim Printf Util
