test/test_pla.ml: Alcotest Array Cover List Milo Milo_boolfunc Milo_netlist Milo_pla Milo_sim Option Printf QCheck2 Random Util
