test/test_boolfunc.mli:
