test/test_compilers.ml: Alcotest List Milo_compilers Milo_designs Milo_netlist Milo_sim QCheck2 String Util
