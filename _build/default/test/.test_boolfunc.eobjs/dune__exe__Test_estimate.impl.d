test/test_estimate.ml: Alcotest List Milo_compilers Milo_designs Milo_estimate Milo_library Milo_netlist Milo_techmap Milo_timing Printf Util
