test/util.ml: Alcotest Format List Milo_compilers Milo_designs Milo_library Milo_netlist Milo_rules Milo_sim Milo_techmap Printf QCheck2 QCheck_alcotest
