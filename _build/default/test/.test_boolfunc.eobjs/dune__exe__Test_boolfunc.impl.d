test/test_boolfunc.ml: Alcotest Array Cover Cube Int64 List Milo_boolfunc QCheck2 Truth_table Util
