(* Estimator tests: the microarchitecture formula estimator against
   compiled-and-mapped measurements (Section 5's "reasonable estimate"
   requirement), and basic area/power accounting. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module E = Milo_estimate.Estimate

let measure kind =
  let db = Milo_compilers.Database.create () in
  let lib = Util.generic () in
  let flat = Milo_compilers.Compile.compile_flat db lib kind in
  let target = Milo_techmap.Table_map.ecl_target () in
  let mapped = Milo_techmap.Table_map.map_design target flat in
  let env name = Milo_library.Technology.find (Util.ecl ()) name in
  let sta = Milo_timing.Sta.analyze env mapped in
  (Milo_timing.Sta.worst_delay sta, E.area env mapped, E.power env mapped)

let kinds =
  [
    T.Gate (T.And, 4);
    T.Multiplexor { bits = 4; inputs = 4; enable = false };
    T.Decoder { bits = 3; enable = false };
    T.Comparator { bits = 8; fns = [ T.Eq; T.Lt; T.Gt ] };
    T.Arith_unit { bits = 8; fns = [ T.Add ]; mode = T.Ripple };
    T.Arith_unit { bits = 8; fns = [ T.Add ]; mode = T.Lookahead };
    T.Register
      { bits = 8; kind = T.Edge_triggered; fns = [ T.Load ];
        controls = [ T.Reset ]; inverting = false };
    T.Counter { bits = 8; fns = [ T.Count_up ]; controls = [ T.Reset ] };
  ]

let test_estimates_within_band () =
  (* The formula estimate is within a factor of 3.5 of the measured
     value — good enough to steer tradeoffs, as the paper requires. *)
  List.iter
    (fun kind ->
      let est = E.micro ~coefficients:E.ecl_coefficients kind in
      let _delay, area, power = measure kind in
      let band name est meas factor =
        Alcotest.(check bool)
          (Printf.sprintf "%s %s: est %.1f vs meas %.1f" (T.kind_name kind)
             name est meas)
          true
          (est > meas /. factor && est < meas *. factor)
      in
      band "area" est.E.est_area area 3.5;
      band "power" est.E.est_power power 3.5)
    kinds

let test_estimator_ordering () =
  (* The estimator preserves the orderings the critic's tradeoffs rely
     on: CLA is bigger but faster than ripple; wider components are
     bigger. *)
  let ripple =
    E.micro (T.Arith_unit { bits = 8; fns = [ T.Add ]; mode = T.Ripple })
  in
  let cla =
    E.micro (T.Arith_unit { bits = 8; fns = [ T.Add ]; mode = T.Lookahead })
  in
  Alcotest.(check bool) "CLA bigger" true (cla.E.est_area > ripple.E.est_area);
  Alcotest.(check bool) "CLA faster" true (cla.E.est_delay < ripple.E.est_delay);
  let w4 = E.micro (T.Arith_unit { bits = 4; fns = [ T.Add ]; mode = T.Ripple }) in
  let w16 = E.micro (T.Arith_unit { bits = 16; fns = [ T.Add ]; mode = T.Ripple }) in
  Alcotest.(check bool) "wider is bigger" true (w16.E.est_area > w4.E.est_area);
  Alcotest.(check bool) "wider ripple is slower" true
    (w16.E.est_delay > w4.E.est_delay)

let test_design_estimate () =
  let case = Milo_designs.Suite.design6 () in
  let est =
    E.micro_design ~coefficients:E.ecl_coefficients
      case.Milo_designs.Suite.case_design
  in
  Alcotest.(check bool) "positive area" true (est.E.est_area > 0.0);
  Alcotest.(check bool) "positive delay" true (est.E.est_delay > 0.0);
  Alcotest.(check bool) "positive power" true (est.E.est_power > 0.0)

let test_mapped_accounting () =
  let _, d = (fun () ->
    let src = Milo_designs.Workload.random_logic ~gates:20 ~seed:3 () in
    let target = Milo_techmap.Table_map.ecl_target () in
    (src, Milo_techmap.Table_map.map_design target src)) ()
  in
  let env name = Milo_library.Technology.find (Util.ecl ()) name in
  let total = E.area env d in
  let by_comp =
    List.fold_left (fun acc c -> acc +. E.comp_area env c) 0.0 (D.comps d)
  in
  Alcotest.(check (float 1e-9)) "area additive" by_comp total;
  Alcotest.(check bool) "rejects unmapped" true
    (match E.area env (Util.micro_reference (T.Gate (T.And, 2))) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "estimate"
    [
      ( "micro-estimator",
        [
          Alcotest.test_case "within band of measurement" `Quick
            test_estimates_within_band;
          Alcotest.test_case "tradeoff ordering" `Quick test_estimator_ordering;
          Alcotest.test_case "whole design" `Quick test_design_estimate;
        ] );
      ( "accounting",
        [ Alcotest.test_case "additivity" `Quick test_mapped_accounting ] );
    ]
