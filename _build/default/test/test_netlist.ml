(* Netlist IR tests: design graph operations, the undo log, the textual
   format round-trip, structural statistics. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let test_pins_of_kind () =
  let pins = T.pins_of_kind (T.Gate (T.And, 3)) in
  Alcotest.(check int) "and3 pins" 4 (List.length pins);
  let pins = T.pins_of_kind (T.Multiplexor { bits = 2; inputs = 4; enable = true }) in
  (* 4*2 data + 2 sel + en + 2 out *)
  Alcotest.(check int) "mux pins" 13 (List.length pins);
  let pins =
    T.pins_of_kind
      (T.Register
         { bits = 4; kind = T.Edge_triggered; fns = [ T.Load; T.Shift_right ];
           controls = [ T.Reset ]; inverting = false })
  in
  (* 4 D + SIR + M0 + CLK + RST + 4 Q *)
  Alcotest.(check int) "reg pins" 12 (List.length pins);
  Alcotest.(check bool) "inv arity" true
    (List.length (T.pins_of_kind (T.Gate (T.Inv, 5))) = 2)

let test_kind_name_unique () =
  let kinds =
    [
      T.Gate (T.And, 2); T.Gate (T.And, 3); T.Gate (T.Nand, 2);
      T.Multiplexor { bits = 1; inputs = 2; enable = false };
      T.Multiplexor { bits = 1; inputs = 2; enable = true };
      T.Arith_unit { bits = 4; fns = [ T.Add ]; mode = T.Ripple };
      T.Arith_unit { bits = 4; fns = [ T.Add ]; mode = T.Lookahead };
      T.Counter { bits = 4; fns = [ T.Count_up ]; controls = [ T.Reset ] };
    ]
  in
  let names = List.map T.kind_name kinds in
  Alcotest.(check int) "unique names" (List.length kinds)
    (List.length (List.sort_uniq compare names))

let test_design_basic () =
  let d = D.create "t" in
  let a = D.add_port d "A" T.Input in
  let y = D.add_port d "Y" T.Output in
  let g = D.add_comp d (T.Macro "INV") in
  D.connect d g "A0" a;
  D.connect d g "Y" y;
  Alcotest.(check int) "comps" 1 (D.num_comps d);
  Alcotest.(check int) "nets" 2 (D.num_nets d);
  let resolve = Milo_library.Technology.resolver (Util.generic ()) in
  Alcotest.(check bool) "check ok" true (D.check ~resolve d = Ok ());
  (match D.driver ~resolve d y with
  | D.Src_comp (cid, "Y") -> Alcotest.(check int) "driver" g cid
  | D.Src_comp _ | D.Src_port _ | D.Src_none -> Alcotest.fail "wrong driver");
  Alcotest.(check int) "fanout of A" 1 (D.fanout ~resolve d a)

let test_check_catches_multiple_drivers () =
  let d = D.create "bad" in
  let a = D.add_port d "A" T.Input in
  let g1 = D.add_comp d (T.Macro "INV") in
  let g2 = D.add_comp d (T.Macro "INV") in
  let n = D.new_net d in
  D.connect d g1 "A0" a;
  D.connect d g2 "A0" a;
  D.connect d g1 "Y" n;
  D.connect d g2 "Y" n;
  let resolve = Milo_library.Technology.resolver (Util.generic ()) in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  (match D.check ~resolve d with
  | Error msgs ->
      Alcotest.(check bool) "mentions drivers" true
        (List.exists (fun m -> contains m "multiple drivers") msgs)
  | Ok () -> Alcotest.fail "expected check failure")

let test_undo_simple () =
  let d = D.create "u" in
  let a = D.add_port d "A" T.Input in
  let y = D.add_port d "Y" T.Output in
  let g = D.add_comp d (T.Macro "INV") in
  D.connect d g "A0" a;
  D.connect d g "Y" y;
  let snap = D.copy d in
  let log = D.new_log () in
  let g2 = D.add_comp ~log d (T.Macro "BUF") in
  let n = D.new_net ~log d in
  D.connect ~log d g2 "A0" a;
  D.connect ~log d g2 "Y" n;
  D.disconnect ~log d g "A0";
  D.connect ~log d g "A0" n;
  D.set_kind ~log d g (T.Macro "BUF");
  D.remove_comp ~log d g2;
  D.undo d log;
  Alcotest.(check bool) "undo restores" true (D.equal_structure snap d)

(* Random edit scripts followed by undo restore the design exactly. *)
let prop_undo_random =
  let gen = QCheck2.Gen.(pair (int_bound 1000) (int_range 1 30)) in
  Util.qtest ~count:60 "random edits undo" gen (fun (seed, steps) ->
      let rng = Random.State.make [| seed |] in
      let d = D.create "r" in
      let a = D.add_port d "A" T.Input in
      let _y = D.add_port d "Y" T.Output in
      let g = D.add_comp d (T.Macro "INV") in
      D.connect d g "A0" a;
      let snap = D.copy d in
      let log = D.new_log () in
      let macros = [| "INV"; "BUF"; "AND2"; "OR2"; "NAND2" |] in
      for _ = 1 to steps do
        match Random.State.int rng 5 with
        | 0 ->
            ignore
              (D.add_comp ~log d
                 (T.Macro macros.(Random.State.int rng (Array.length macros))))
        | 1 -> ignore (D.new_net ~log d)
        | 2 ->
            (* connect a random comp pin to a random net *)
            let comps = D.comps d in
            let nets = D.nets d in
            if comps <> [] && nets <> [] then begin
              let c = List.nth comps (Random.State.int rng (List.length comps)) in
              let n = List.nth nets (Random.State.int rng (List.length nets)) in
              D.connect ~log d c.D.id "A0" n.D.nid
            end
        | 3 ->
            let comps = D.comps d in
            if List.length comps > 1 then begin
              let c = List.nth comps (Random.State.int rng (List.length comps)) in
              D.remove_comp ~log d c.D.id
            end
        | _ ->
            let comps = D.comps d in
            if comps <> [] then begin
              let c = List.nth comps (Random.State.int rng (List.length comps)) in
              D.set_kind ~log d c.D.id (T.Macro "BUF")
            end
      done;
      D.undo d log;
      D.equal_structure snap d)

let test_roundtrip () =
  let case = Milo_designs.Suite.design6 () in
  let d = case.Milo_designs.Suite.case_design in
  let text = Milo_netlist.Writer.to_string d in
  let d2 = Milo_netlist.Parser.of_string text in
  (* Round-trip designs simulate identically. *)
  Util.check_equiv ~seq:true (Util.env_gen ()) d (Util.env_gen ()) d2

let test_parser_errors () =
  let bad s =
    match Milo_netlist.Parser.of_string s with
    | exception Milo_netlist.Parser.Parse_error (_, _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "no design stmt" true (bad "port in A\n");
  Alcotest.(check bool) "bad kind" true (bad "design d\ncomp x frobnicator\n");
  Alcotest.(check bool) "unknown comp in join" true
    (bad "design d\nport in A\njoin A nothere.P\n")

let test_kind_spec_roundtrip () =
  let kinds =
    [
      T.Gate (T.Xnor, 4);
      T.Multiplexor { bits = 3; inputs = 4; enable = true };
      T.Decoder { bits = 2; enable = false };
      T.Comparator { bits = 4; fns = [ T.Eq; T.Le ] };
      T.Logic_unit { bits = 2; fn = T.Or; inputs = 3 };
      T.Arith_unit { bits = 8; fns = [ T.Add; T.Sub ]; mode = T.Lookahead };
      T.Register
        { bits = 4; kind = T.Latch; fns = [ T.Load; T.Shift_left ];
          controls = [ T.Set; T.Enable ]; inverting = true };
      T.Counter
        { bits = 6; fns = [ T.Count_load; T.Count_down ];
          controls = [ T.Reset ] };
      T.Constant T.Vdd;
      T.Macro "E_OR3";
      T.Instance "SUB1";
    ]
  in
  List.iter
    (fun k ->
      let spec = Milo_netlist.Writer.kind_spec k in
      let text = Printf.sprintf "design t\ncomp x %s\n" spec in
      let d = Milo_netlist.Parser.of_string text in
      let c = D.find_comp d "x" in
      Alcotest.(check string)
        (Printf.sprintf "roundtrip %s" spec)
        (T.kind_name k) (T.kind_name c.D.kind))
    kinds

let test_stats () =
  let case = Milo_designs.Suite.design1 () in
  let d = case.Milo_designs.Suite.case_design in
  let hist = Milo_netlist.Stats.kind_histogram d in
  Alcotest.(check bool) "histogram nonempty" true (hist <> []);
  Alcotest.(check bool) "gate equiv positive" true
    (Milo_netlist.Stats.two_input_equiv d > 0);
  let resolve = Milo_library.Technology.resolver (Util.generic ()) in
  Alcotest.(check bool) "max fanout sane" true
    (Milo_netlist.Stats.max_fanout ~resolve d >= 1)

let () =
  Alcotest.run "netlist"
    [
      ( "types",
        [
          Alcotest.test_case "pins_of_kind" `Quick test_pins_of_kind;
          Alcotest.test_case "kind names unique" `Quick test_kind_name_unique;
        ] );
      ( "design",
        [
          Alcotest.test_case "basics" `Quick test_design_basic;
          Alcotest.test_case "check multiple drivers" `Quick
            test_check_catches_multiple_drivers;
        ] );
      ( "undo",
        [ Alcotest.test_case "scripted" `Quick test_undo_simple; prop_undo_random ]
      );
      ( "text-format",
        [
          Alcotest.test_case "design round-trip" `Quick test_roundtrip;
          Alcotest.test_case "parser errors" `Quick test_parser_errors;
          Alcotest.test_case "kind specs" `Quick test_kind_spec_roundtrip;
        ] );
      ("stats", [ Alcotest.test_case "basics" `Quick test_stats ]);
    ]
