(* Technology mapper tests: the lookup-table mapper and the DAGON
   tree-covering baseline both preserve function on both targets. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let kinds =
  [
    T.Gate (T.Xnor, 4);
    T.Gate (T.And, 4);
    T.Multiplexor { bits = 2; inputs = 4; enable = true };
    T.Decoder { bits = 3; enable = true };
    T.Comparator { bits = 4; fns = [ T.Eq; T.Lt; T.Gt ] };
    T.Arith_unit { bits = 6; fns = [ T.Add; T.Sub ]; mode = T.Ripple };
    T.Arith_unit { bits = 4; fns = [ T.Add ]; mode = T.Lookahead };
  ]

let seq_kinds =
  [
    T.Register
      { bits = 4; kind = T.Edge_triggered; fns = [ T.Load; T.Shift_left ];
        controls = [ T.Reset; T.Enable ]; inverting = false };
    T.Counter
      { bits = 6; fns = [ T.Count_load; T.Count_up ]; controls = [ T.Reset ] };
  ]

let check_map target env_t kind ~seq =
  let flat = Util.compile_flat kind in
  let mapped = Milo_techmap.Table_map.map_design target flat in
  let r =
    if seq then
      Milo_sim.Equiv.sequential ~cycles:48 ~runs:3 (Util.env_gen ())
        (Util.micro_reference kind) env_t mapped
    else
      Milo_sim.Equiv.combinational (Util.env_gen ())
        (Util.micro_reference kind) env_t mapped
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s on %s" (T.kind_name kind)
       (Milo_library.Technology.name target.Milo_techmap.Table_map.tech))
    true
    (Milo_sim.Equiv.is_equivalent r)

let test_table_map_ecl () =
  let target = Milo_techmap.Table_map.ecl_target () in
  List.iter (fun k -> check_map target (Util.env_ecl ()) k ~seq:false) kinds;
  List.iter (fun k -> check_map target (Util.env_ecl ()) k ~seq:true) seq_kinds

let test_table_map_cmos () =
  let target = Milo_techmap.Table_map.cmos_target () in
  List.iter (fun k -> check_map target (Util.env_cmos ()) k ~seq:false) kinds;
  List.iter (fun k -> check_map target (Util.env_cmos ()) k ~seq:true) seq_kinds

let test_map_rejects_hierarchy () =
  let db = Milo_compilers.Database.create () in
  let lib = Util.generic () in
  let d =
    Milo_compilers.Compile.compile db lib
      (T.Multiplexor { bits = 4; inputs = 2; enable = false })
  in
  let target = Milo_techmap.Table_map.ecl_target () in
  Alcotest.(check bool) "raises on hierarchy" true
    (match Milo_techmap.Table_map.map_design target d with
    | _ -> false
    | exception Milo_techmap.Table_map.Unmappable _ -> true);
  (* keep_instances tolerates it *)
  let kept = Milo_techmap.Table_map.map_design ~keep_instances:true target d in
  Alcotest.(check bool) "instances kept" true
    (List.exists
       (fun (c : D.comp) ->
         match c.D.kind with T.Instance _ -> true | _ -> false)
       (D.comps kept))

let test_parse_gate_name () =
  let open Milo_techmap.Table_map in
  Alcotest.(check bool) "NAND3" true (parse_gate_name "NAND3" = Some (T.Nand, 3));
  Alcotest.(check bool) "AND2" true (parse_gate_name "AND2" = Some (T.And, 2));
  Alcotest.(check bool) "XNOR4" true (parse_gate_name "XNOR4" = Some (T.Xnor, 4));
  Alcotest.(check bool) "INV" true (parse_gate_name "INV" = Some (T.Inv, 1));
  Alcotest.(check bool) "MUX2 is not a gate" true (parse_gate_name "MUX2" = None);
  Alcotest.(check bool) "DFF is not a gate" true (parse_gate_name "DFF" = None)

let test_dagon_equiv_random () =
  let env name = Milo_library.Technology.find (Util.generic ()) name in
  List.iter
    (fun seed ->
      let d = Milo_designs.Workload.random_logic ~gates:40 ~seed () in
      let target = Milo_techmap.Table_map.ecl_target () in
      let mapped = Milo_techmap.Dagon.map_design target env d in
      let r = Milo_sim.Equiv.combinational (Util.env_gen ()) d (Util.env_ecl ()) mapped in
      Alcotest.(check bool)
        (Printf.sprintf "dagon seed %d" seed)
        true
        (Milo_sim.Equiv.is_equivalent r))
    [ 1; 2; 3; 7; 42 ]

let test_dagon_vs_table_on_msi () =
  (* The table mapper keeps the MUX4 macros; DAGON re-covers the logic
     from gate patterns and cannot rebuild a 6-input macro — MILO's
     high-level-macros argument (Section 6.4). *)
  let d = Milo_designs.Workload.msi_rich () in
  let env name = Milo_library.Technology.find (Util.generic ()) name in
  let target = Milo_techmap.Table_map.ecl_target () in
  let table = Milo_techmap.Table_map.map_design target d in
  let dagon = Milo_techmap.Dagon.map_design target env d in
  let tech_env name = Milo_library.Technology.find (Util.ecl ()) name in
  let area dd = Milo_estimate.Estimate.area tech_env dd in
  Alcotest.(check bool) "both equivalent to source" true
    (Milo_sim.Equiv.is_equivalent
       (Milo_sim.Equiv.combinational (Util.env_gen ()) d (Util.env_ecl ()) table)
    && Milo_sim.Equiv.is_equivalent
         (Milo_sim.Equiv.combinational (Util.env_gen ()) d (Util.env_ecl ()) dagon));
  Alcotest.(check bool)
    (Printf.sprintf "table (%.1f) beats dagon (%.1f) on MSI-rich logic"
       (area table) (area dagon))
    true
    (area table < area dagon)

let test_dagon_mapped_structure () =
  let env name = Milo_library.Technology.find (Util.generic ()) name in
  let d = Milo_designs.Workload.random_logic ~gates:30 ~seed:5 () in
  let target = Milo_techmap.Table_map.cmos_target () in
  let mapped = Milo_techmap.Dagon.map_design target env d in
  (* all components are CMOS macros *)
  List.iter
    (fun (c : D.comp) ->
      match c.D.kind with
      | T.Macro m ->
          Alcotest.(check bool) (m ^ " in CMOS lib") true
            (Milo_library.Technology.mem (Util.cmos ()) m)
      | k -> Alcotest.failf "unexpected kind %s" (T.kind_name k))
    (D.comps mapped)

let () =
  Alcotest.run "techmap"
    [
      ( "table-map",
        [
          Alcotest.test_case "to ECL" `Slow test_table_map_ecl;
          Alcotest.test_case "to CMOS" `Slow test_table_map_cmos;
          Alcotest.test_case "hierarchy handling" `Quick test_map_rejects_hierarchy;
          Alcotest.test_case "gate-name parser" `Quick test_parse_gate_name;
        ] );
      ( "dagon",
        [
          Alcotest.test_case "equivalence on random logic" `Slow
            test_dagon_equiv_random;
          Alcotest.test_case "table beats dagon on MSI" `Quick
            test_dagon_vs_table_on_msi;
          Alcotest.test_case "mapped structure" `Quick test_dagon_mapped_structure;
        ] );
    ]
