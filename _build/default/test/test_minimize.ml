(* Two-level minimization and algebraic factoring tests. *)

open Milo_boolfunc

let tt_gen vars =
  QCheck2.Gen.map
    (fun bits -> Truth_table.create vars (Int64.of_int bits))
    (QCheck2.Gen.int_bound ((1 lsl min 30 (1 lsl vars)) - 1))

let small_tt = QCheck2.Gen.(int_range 1 5 >>= fun v -> tt_gen v)

let on_set tt =
  let vars = Truth_table.vars tt in
  List.filter (Truth_table.eval_index tt) (List.init (1 lsl vars) (fun m -> m))

let test_qm_known () =
  (* f = x'y' + xy over 2 vars: both minterms prime, cover size 2 *)
  let cover = Milo_minimize.Quine.minimize ~vars:2 ~on:[ 0; 3 ] ~dc:[] in
  Alcotest.(check int) "xnor cover" 2 (Cover.size cover);
  (* f = sum of all minterms = constant 1: one empty cube *)
  let cover = Milo_minimize.Quine.minimize ~vars:2 ~on:[ 0; 1; 2; 3 ] ~dc:[] in
  Alcotest.(check int) "tautology 1 cube" 1 (Cover.size cover);
  Alcotest.(check int) "tautology 0 lits" 0 (Cover.literal_count cover)

let test_qm_dontcare () =
  (* 7-segment style: dc shrinks the cover *)
  let without = Milo_minimize.Quine.minimize ~vars:3 ~on:[ 1; 3 ] ~dc:[] in
  let with_dc = Milo_minimize.Quine.minimize ~vars:3 ~on:[ 1; 3 ] ~dc:[ 5; 7 ] in
  Alcotest.(check bool) "dc no worse" true
    (Cover.literal_count with_dc <= Cover.literal_count without)

let prop_qm_equivalent =
  Util.qtest ~count:150 "QM minimization preserves function" small_tt (fun tt ->
      let vars = Truth_table.vars tt in
      let cover = Milo_minimize.Quine.minimize ~vars ~on:(on_set tt) ~dc:[] in
      List.for_all
        (fun m -> Cover.eval_index cover m = Truth_table.eval_index tt m)
        (List.init (1 lsl vars) (fun m -> m)))

let prop_qm_primes_cover =
  Util.qtest ~count:100 "every on-minterm is in some prime" small_tt (fun tt ->
      let vars = Truth_table.vars tt in
      let on = on_set tt in
      let primes = Milo_minimize.Quine.primes ~vars ~on ~dc:[] in
      List.for_all
        (fun m -> List.exists (fun p -> Cube.eval_index p m) primes)
        on)

let prop_qm_minimal_vs_naive =
  Util.qtest ~count:100 "QM no bigger than the minterm cover" small_tt
    (fun tt ->
      let vars = Truth_table.vars tt in
      let on = on_set tt in
      let cover = Milo_minimize.Quine.minimize ~vars ~on ~dc:[] in
      Cover.size cover <= List.length on)

let prop_espresso_equivalent =
  Util.qtest ~count:100 "espresso heuristic preserves function" small_tt
    (fun tt ->
      let c = Cover.of_truth_table tt in
      let m = Milo_minimize.Espresso.minimize c in
      let vars = Truth_table.vars tt in
      List.for_all
        (fun i -> Cover.eval_index m i = Truth_table.eval_index tt i)
        (List.init (1 lsl vars) (fun i -> i)))

let prop_espresso_no_growth =
  Util.qtest ~count:100 "espresso never grows the cover" small_tt (fun tt ->
      let c = Cover.of_truth_table tt in
      let m = Milo_minimize.Espresso.minimize c in
      Cover.size m <= Cover.size c)

(* --- Algebraic division ------------------------------------------------ *)

let alg_of_cubes n cubess =
  ignore n;
  List.map Milo_minimize.Division.cube_of_list cubess

let test_divide_known () =
  let open Milo_minimize.Division in
  (* f = ab + ac + d ; divide by (b + c): q = a, r = d *)
  let a = lit_pos 0 and b = lit_pos 1 and c = lit_pos 2 and d = lit_pos 3 in
  let f = alg_of_cubes 4 [ [ a; b ]; [ a; c ]; [ d ] ] in
  let dv = alg_of_cubes 4 [ [ b ]; [ c ] ] in
  let q, r = divide f dv in
  Alcotest.(check bool) "quotient a" true (q = [ [ a ] ]);
  Alcotest.(check bool) "remainder d" true (r = [ [ d ] ])

let test_kernels_known () =
  let open Milo_minimize.Division in
  (* f = ab + ac: kernel {b + c} with co-kernel a *)
  let a = lit_pos 0 and b = lit_pos 1 and c = lit_pos 2 in
  let f = alg_of_cubes 3 [ [ a; b ]; [ a; c ] ] in
  let ks = kernels f in
  Alcotest.(check bool) "found b+c kernel" true
    (List.exists (fun (_, k) -> dedup k = [ [ b ]; [ c ] ]) ks)

let prop_divide_recompose =
  (* f = d*q + r algebraically: every cube of d*q and r is a cube of f *)
  Util.qtest ~count:100 "division recomposes" small_tt (fun tt ->
      let cover = Milo_minimize.Espresso.minimize (Cover.of_truth_table tt) in
      let f = Milo_minimize.Division.of_cover cover in
      match Milo_minimize.Division.best_kernel f with
      | None -> true
      | Some d ->
          let q, r = Milo_minimize.Division.divide f d in
          let products =
            List.concat_map
              (fun qc ->
                List.map (fun dc -> Milo_minimize.Division.cube_union qc dc) d)
              q
          in
          List.for_all (fun c -> List.mem c f) (products @ r)
          && List.length products + List.length r = List.length f)

let prop_factor_equivalent =
  Util.qtest ~count:150 "factored expression preserves function" small_tt
    (fun tt ->
      let cover = Milo_minimize.Espresso.minimize (Cover.of_truth_table tt) in
      let expr = Milo_minimize.Factor.of_cover cover in
      let vars = Truth_table.vars tt in
      List.for_all
        (fun m ->
          let a = Array.init vars (fun i -> m land (1 lsl i) <> 0) in
          Milo_minimize.Factor.eval (fun v -> a.(v)) expr
          = Truth_table.eval_index tt m)
        (List.init (1 lsl vars) (fun m -> m)))

let prop_factor_no_more_literals =
  Util.qtest ~count:100 "factoring never adds literals" small_tt (fun tt ->
      let cover = Milo_minimize.Espresso.minimize (Cover.of_truth_table tt) in
      let expr = Milo_minimize.Factor.of_cover cover in
      Milo_minimize.Factor.literal_count expr <= Cover.literal_count cover)

let test_covering_exact_beats_greedy () =
  (* Covering problem where greedy is suboptimal is hard to set up with
     cubes; just check exact solves a simple instance minimally. *)
  let c01 = Cube.of_literals 2 [ (1, false) ] in
  (* covers minterms 0,1 *)
  let c23 = Cube.of_literals 2 [ (1, true) ] in
  let sol =
    Milo_minimize.Covering.solve ~candidates:[ c01; c23 ] ~targets:[ 0; 1; 2; 3 ] ()
  in
  Alcotest.(check int) "two cubes" 2 (List.length sol)

let () =
  Alcotest.run "minimize"
    [
      ( "quine",
        [
          Alcotest.test_case "known" `Quick test_qm_known;
          Alcotest.test_case "dontcare" `Quick test_qm_dontcare;
          prop_qm_equivalent;
          prop_qm_primes_cover;
          prop_qm_minimal_vs_naive;
        ] );
      ("espresso", [ prop_espresso_equivalent; prop_espresso_no_growth ]);
      ( "division",
        [
          Alcotest.test_case "divide" `Quick test_divide_known;
          Alcotest.test_case "kernels" `Quick test_kernels_known;
          prop_divide_recompose;
        ] );
      ( "factor",
        [ prop_factor_equivalent; prop_factor_no_more_literals ] );
      ( "covering",
        [ Alcotest.test_case "exact" `Quick test_covering_exact_beats_greedy ]
      );
    ]
