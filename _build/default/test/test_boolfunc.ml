(* Boolean substrate tests: truth tables, cubes, covers. *)

open Milo_boolfunc

let tt_gen vars =
  QCheck2.Gen.map
    (fun bits -> Truth_table.create vars (Int64.of_int bits))
    (QCheck2.Gen.int_bound ((1 lsl min 30 (1 lsl vars)) - 1))

let small_tt = QCheck2.Gen.(int_range 1 5 >>= fun v -> tt_gen v)

let input_of_index vars m = Array.init vars (fun i -> m land (1 lsl i) <> 0)

let test_tt_basic () =
  let t = Truth_table.of_fun 2 (fun a -> a.(0) && a.(1)) in
  Alcotest.(check bool) "and 11" true (Truth_table.eval t [| true; true |]);
  Alcotest.(check bool) "and 01" false (Truth_table.eval t [| false; true |]);
  Alcotest.(check int) "vars" 2 (Truth_table.vars t);
  Alcotest.(check bool) "const none" true (Truth_table.is_const t = None);
  Alcotest.(check bool) "const true" true
    (Truth_table.is_const (Truth_table.const 3 true) = Some true)

let test_tt_ops () =
  let a = Truth_table.var 3 0 and b = Truth_table.var 3 1 in
  let t = Truth_table.logand a b in
  Alcotest.(check bool) "a&b" true
    (Truth_table.equal t (Truth_table.of_fun 3 (fun x -> x.(0) && x.(1))));
  let n = Truth_table.lognot t in
  Alcotest.(check bool) "double not" true
    (Truth_table.equal (Truth_table.lognot n) t);
  Alcotest.(check bool) "xor self" true
    (Truth_table.is_const (Truth_table.logxor a a) = Some false)

let test_tt_cofactor () =
  let t = Truth_table.of_fun 3 (fun a -> (a.(0) && a.(1)) || a.(2)) in
  let c1 = Truth_table.cofactor t 2 true in
  Alcotest.(check bool) "cofactor 1" true
    (Truth_table.is_const c1 = Some true);
  Alcotest.(check bool) "support" true (Truth_table.support t = [ 0; 1; 2 ]);
  Alcotest.(check bool) "depends" true (Truth_table.depends_on t 0);
  let u = Truth_table.of_fun 3 (fun a -> a.(1)) in
  Alcotest.(check bool) "no depend" false (Truth_table.depends_on u 0)

let test_key32 () =
  (* Same function seen at different arities keys identically. *)
  let f2 = Truth_table.of_fun 2 (fun a -> a.(0) && a.(1)) in
  let f3 = Truth_table.of_fun 3 (fun a -> a.(0) && a.(1)) in
  Alcotest.(check int) "arity-insensitive key" (Truth_table.key32 f2)
    (Truth_table.key32 f3)

let test_canonical () =
  (* mux(d0,d1,s) under the two data orders canonize identically after
     also permuting the select sense?  No — permutation only, so check a
     symmetric function instead and a permuted pair. *)
  let f = Truth_table.of_fun 3 (fun a -> (a.(0) && a.(1)) || a.(2)) in
  let g = Truth_table.of_fun 3 (fun a -> (a.(2) && a.(1)) || a.(0)) in
  Alcotest.(check bool) "permuted pair canonizes equal" true
    (Truth_table.equal (Truth_table.canonical f) (Truth_table.canonical g))

let prop_permute_preserves =
  Util.qtest "permute preserves function" small_tt (fun tt ->
      let vars = Truth_table.vars tt in
      let perm = List.init vars (fun i -> (i + 1) mod vars) in
      let p = Truth_table.permute tt perm in
      List.for_all
        (fun m ->
          let a = input_of_index vars m in
          let orig = Array.make vars false in
          List.iteri (fun i v -> orig.(v) <- a.(i)) perm;
          Truth_table.eval p a = Truth_table.eval tt orig)
        (List.init (1 lsl vars) (fun m -> m)))

let prop_canonical_idempotent =
  Util.qtest "canonical is idempotent" small_tt (fun tt ->
      let c = Truth_table.canonical tt in
      Truth_table.equal c (Truth_table.canonical c))

let prop_cover_roundtrip =
  Util.qtest "cover of tt evaluates like tt" small_tt (fun tt ->
      let c = Cover.of_truth_table tt in
      let vars = Truth_table.vars tt in
      List.for_all
        (fun m -> Cover.eval_index c m = Truth_table.eval_index tt m)
        (List.init (1 lsl vars) (fun m -> m)))

let prop_complement =
  Util.qtest "complement is pointwise negation" small_tt (fun tt ->
      let c = Cover.of_truth_table tt in
      let nc = Cover.complement c in
      let vars = Truth_table.vars tt in
      List.for_all
        (fun m -> Cover.eval_index nc m = not (Cover.eval_index c m))
        (List.init (1 lsl vars) (fun m -> m)))

let prop_tautology =
  Util.qtest "tautology iff constant true" small_tt (fun tt ->
      let c = Cover.of_truth_table tt in
      Cover.is_tautology c = (Truth_table.is_const tt = Some true))

let test_cube_ops () =
  let c = Cube.of_literals 4 [ (0, true); (2, false) ] in
  Alcotest.(check int) "lits" 2 (Cube.literal_count c);
  Alcotest.(check bool) "eval" true (Cube.eval c [| true; false; false; true |]);
  Alcotest.(check bool) "eval f" false (Cube.eval c [| true; false; true; true |]);
  let u = Cube.universe 4 in
  Alcotest.(check bool) "universe contains" true (Cube.contains u c);
  Alcotest.(check bool) "not contains" false (Cube.contains c u);
  let d = Cube.of_literals 4 [ (0, false) ] in
  Alcotest.(check bool) "disjoint" true (Cube.intersect c d = None)

let test_consensus () =
  let a = Cube.of_literals 3 [ (0, true); (1, true) ] in
  let b = Cube.of_literals 3 [ (0, true); (1, false) ] in
  (match Cube.consensus_merge a b with
  | Some m ->
      Alcotest.(check bool) "merged drops var" true
        (Cube.equal m (Cube.of_literals 3 [ (0, true) ]))
  | None -> Alcotest.fail "expected merge");
  let c = Cube.of_literals 3 [ (0, true); (2, true) ] in
  Alcotest.(check bool) "no merge different support" true
    (Cube.consensus_merge a c = None)

let test_minterms () =
  let c = Cube.of_literals 3 [ (1, true) ] in
  Alcotest.(check (list int)) "minterms of x1" [ 2; 3; 6; 7 ]
    (List.sort compare (Cube.minterms c))

let prop_cube_index_eval =
  Util.qtest "eval_index consistent with eval"
    QCheck2.Gen.(
      pair (int_range 1 5)
        (pair (int_bound 1023) (int_bound 1023)))
    (fun (n, (posr, negr)) ->
      let mask = (1 lsl n) - 1 in
      let pos = posr land mask in
      let neg = negr land mask land lnot pos in
      let lits =
        List.concat
          (List.init n (fun v ->
               (if pos land (1 lsl v) <> 0 then [ (v, true) ] else [])
               @ if neg land (1 lsl v) <> 0 then [ (v, false) ] else []))
      in
      let c = Milo_boolfunc.Cube.of_literals n lits in
      List.for_all
        (fun m ->
          Milo_boolfunc.Cube.eval_index c m
          = Milo_boolfunc.Cube.eval c (input_of_index n m))
        (List.init (1 lsl n) (fun m -> m)))

let () =
  Alcotest.run "boolfunc"
    [
      ( "truth-table",
        [
          Alcotest.test_case "basics" `Quick test_tt_basic;
          Alcotest.test_case "ops" `Quick test_tt_ops;
          Alcotest.test_case "cofactor/support" `Quick test_tt_cofactor;
          Alcotest.test_case "key32" `Quick test_key32;
          Alcotest.test_case "canonical" `Quick test_canonical;
          prop_permute_preserves;
          prop_canonical_idempotent;
        ] );
      ( "cube",
        [
          Alcotest.test_case "ops" `Quick test_cube_ops;
          Alcotest.test_case "consensus" `Quick test_consensus;
          Alcotest.test_case "minterms" `Quick test_minterms;
          prop_cube_index_eval;
        ] );
      ( "cover",
        [ prop_cover_roundtrip; prop_complement; prop_tautology ] );
    ]
