(* Logic compiler tests: every compiled component matches its
   behavioural semantics, the database caches and flattens correctly,
   gate trees respect available arities. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let check_comb kind =
  let flat = Util.compile_flat kind in
  Util.check_equiv (Util.env_gen ()) (Util.micro_reference kind)
    (Util.env_gen ()) flat

let check_seq kind =
  let flat = Util.compile_flat kind in
  Util.check_equiv ~seq:true (Util.env_gen ()) (Util.micro_reference kind)
    (Util.env_gen ()) flat

let test_gates () =
  List.iter
    (fun fn ->
      List.iter (fun n -> check_comb (T.Gate (fn, n))) [ 1; 2; 3; 5; 9 ])
    [ T.And; T.Or; T.Nand; T.Nor; T.Xor; T.Xnor ];
  check_comb (T.Gate (T.Inv, 1));
  check_comb (T.Gate (T.Buf, 1))

let test_muxes () =
  List.iter
    (fun (bits, inputs, enable) ->
      check_comb (T.Multiplexor { bits; inputs; enable }))
    [ (1, 2, false); (1, 3, false); (1, 4, true); (1, 5, false); (1, 8, false);
      (1, 16, false); (2, 2, false); (4, 4, true); (3, 6, false) ]

let test_decoders () =
  List.iter
    (fun (bits, enable) -> check_comb (T.Decoder { bits; enable }))
    [ (1, false); (1, true); (2, false); (2, true); (3, false); (4, true) ]

let test_comparators () =
  List.iter
    (fun (bits, fns) -> check_comb (T.Comparator { bits; fns }))
    [
      (1, [ T.Eq ]);
      (2, [ T.Eq; T.Ne ]);
      (3, [ T.Lt; T.Gt ]);
      (4, [ T.Eq; T.Lt; T.Gt; T.Le; T.Ge; T.Ne ]);
      (5, [ T.Le ]);
      (8, [ T.Eq; T.Lt ]);
    ]

let test_logic_units () =
  List.iter
    (fun (bits, fn, inputs) -> check_comb (T.Logic_unit { bits; fn; inputs }))
    [ (1, T.And, 2); (4, T.Or, 2); (2, T.Xor, 3); (3, T.Nand, 2); (2, T.Inv, 1) ]

let test_arith_units () =
  List.iter
    (fun (bits, fns, mode) -> check_comb (T.Arith_unit { bits; fns; mode }))
    [
      (1, [ T.Add ], T.Ripple);
      (4, [ T.Add ], T.Ripple);
      (4, [ T.Add ], T.Lookahead);
      (5, [ T.Sub ], T.Ripple);
      (8, [ T.Add; T.Sub ], T.Lookahead);
      (3, [ T.Inc ], T.Ripple);
      (6, [ T.Dec ], T.Ripple);
      (4, [ T.Add; T.Sub; T.Inc; T.Dec ], T.Ripple);
      (2, [ T.Inc; T.Dec ], T.Ripple);
    ]

let test_registers () =
  List.iter
    (fun (bits, kind, fns, controls, inverting) ->
      check_seq (T.Register { bits; kind; fns; controls; inverting }))
    [
      (1, T.Edge_triggered, [ T.Load ], [], false);
      (4, T.Edge_triggered, [ T.Load ], [ T.Reset ], false);
      (4, T.Edge_triggered, [ T.Load ], [ T.Set; T.Reset ], false);
      (3, T.Edge_triggered, [ T.Load ], [ T.Enable ], false);
      (3, T.Edge_triggered, [ T.Load ], [ T.Set; T.Reset; T.Enable ], false);
      (4, T.Edge_triggered, [ T.Load; T.Shift_right ], [ T.Reset ], false);
      (4, T.Edge_triggered, [ T.Load; T.Shift_left ], [], false);
      (5, T.Edge_triggered, [ T.Load; T.Shift_left; T.Shift_right ], [ T.Reset ], false);
      (2, T.Edge_triggered, [ T.Shift_right ], [ T.Reset ], false);
      (4, T.Edge_triggered, [ T.Load ], [ T.Reset ], true);
      (2, T.Latch, [ T.Load ], [ T.Reset ], false);
      (2, T.Latch, [ T.Load ], [ T.Set; T.Reset ], false);
    ]

let test_counters () =
  List.iter
    (fun (bits, fns, controls) -> check_seq (T.Counter { bits; fns; controls }))
    [
      (2, [ T.Count_up ], [ T.Reset ]);
      (4, [ T.Count_up ], [ T.Reset ]);
      (4, [ T.Count_down ], [ T.Reset ]);
      (3, [ T.Count_up ], [ T.Reset; T.Enable ]);
      (4, [ T.Count_load; T.Count_up ], [ T.Reset ]);
      (5, [ T.Count_load; T.Count_up; T.Count_down ], [ T.Reset; T.Enable ]);
      (6, [ T.Count_up; T.Count_down ], [ T.Reset ]);
      (7, [ T.Count_load; T.Count_up; T.Count_down ], [ T.Set; T.Reset; T.Enable ]);
      (1, [ T.Count_up ], [ T.Reset ]);
    ]

let test_database_caching () =
  let db = Milo_compilers.Database.create () in
  let lib = Util.generic () in
  let kind = T.Multiplexor { bits = 4; inputs = 2; enable = false } in
  let n1 = Milo_compilers.Compile.compile_kind db lib kind in
  let count = List.length (Milo_compilers.Database.names db) in
  let n2 = Milo_compilers.Compile.compile_kind db lib kind in
  Alcotest.(check string) "same name" n1 n2;
  Alcotest.(check int) "no new designs" count
    (List.length (Milo_compilers.Database.names db));
  (* the multi-bit mux registered its single-bit sub-design *)
  Alcotest.(check bool) "hierarchy registered" true
    (Milo_compilers.Database.mem db
       (T.kind_name (T.Multiplexor { bits = 1; inputs = 2; enable = false })))

let test_register_calls_mux_compiler () =
  (* The Figure 16 hierarchy: REG4 with load+shift contains MUX2:1:1
     instances. *)
  let db = Milo_compilers.Database.create () in
  let lib = Util.generic () in
  let kind =
    T.Register
      { bits = 4; kind = T.Edge_triggered; fns = [ T.Load; T.Shift_right ];
        controls = []; inverting = false }
  in
  let d = Milo_compilers.Compile.compile db lib kind in
  let has_mux_instance =
    List.exists
      (fun (c : D.comp) ->
        match c.D.kind with
        | T.Instance name ->
            name = T.kind_name (T.Multiplexor { bits = 1; inputs = 2; enable = false })
        | _ -> false)
      (D.comps d)
  in
  Alcotest.(check bool) "REG4 instantiates MUX2:1:1" true has_mux_instance

let test_flatten_equiv () =
  (* Hierarchical and flattened designs simulate identically. *)
  let db = Milo_compilers.Database.create () in
  let lib = Util.generic () in
  let case = Milo_designs.Suite.design6 () in
  let expanded =
    Milo_compilers.Compile.expand_design db lib case.Milo_designs.Suite.case_design
  in
  let flat = Milo_compilers.Database.flatten db expanded in
  (* flat design has no instances *)
  Alcotest.(check bool) "no instances" true
    (List.for_all
       (fun (c : D.comp) ->
         match c.D.kind with T.Instance _ -> false | _ -> true)
       (D.comps flat));
  Util.check_equiv ~seq:true (Util.env_gen ())
    case.Milo_designs.Suite.case_design (Util.env_gen ()) flat

let test_compiled_design_checks () =
  (* Structural validity of compiled designs. *)
  let db = Milo_compilers.Database.create () in
  let lib = Util.generic () in
  let resolve = Milo_compilers.Database.resolver db [ lib ] in
  List.iter
    (fun kind ->
      let d = Milo_compilers.Compile.compile_flat db lib kind in
      match D.check ~resolve d with
      | Ok () -> ()
      | Error msgs ->
          Alcotest.failf "%s: %s" (T.kind_name kind) (String.concat "; " msgs))
    [
      T.Gate (T.Nand, 6);
      T.Multiplexor { bits = 2; inputs = 4; enable = true };
      T.Arith_unit { bits = 7; fns = [ T.Add; T.Sub ]; mode = T.Ripple };
      T.Counter { bits = 5; fns = [ T.Count_up ]; controls = [ T.Reset ] };
    ]

let test_symbols () =
  let sym =
    Milo_compilers.Symbol.generate
      (T.Arith_unit { bits = 4; fns = [ T.Add ]; mode = T.Lookahead })
  in
  Alcotest.(check bool) "inputs on the left" true
    (List.mem "A0" sym.Milo_compilers.Symbol.left_pins);
  Alcotest.(check bool) "outputs on the right" true
    (List.mem "COUT" sym.Milo_compilers.Symbol.right_pins);
  Alcotest.(check bool) "render mentions name" true
    (String.length (Milo_compilers.Symbol.render sym) > 0)

(* Random parameter sweep: compile and verify against semantics. *)
let prop_random_kinds =
  let gen =
    QCheck2.Gen.(
      int_range 0 5 >>= fun which ->
      int_range 1 5 >>= fun bits ->
      int_bound 3 >>= fun extra ->
      return (which, bits, extra))
  in
  Util.qtest ~count:24 "random kinds compile correctly" gen
    (fun (which, bits, extra) ->
      let kind =
        match which with
        | 0 -> T.Gate (T.Nor, bits + 1)
        | 1 -> T.Multiplexor { bits; inputs = 2 + extra; enable = extra mod 2 = 0 }
        | 2 -> T.Decoder { bits = 1 + (bits mod 3); enable = extra mod 2 = 1 }
        | 3 -> T.Comparator { bits; fns = [ T.Eq; T.Gt ] }
        | 4 -> T.Arith_unit { bits; fns = [ T.Add; T.Sub ]; mode = T.Ripple }
        | _ -> T.Logic_unit { bits; fn = T.Xor; inputs = 2 + extra }
      in
      let flat = Util.compile_flat kind in
      Milo_sim.Equiv.is_equivalent
        (Milo_sim.Equiv.combinational (Util.env_gen ())
           (Util.micro_reference kind) (Util.env_gen ()) flat))

let () =
  Alcotest.run "compilers"
    [
      ( "combinational",
        [
          Alcotest.test_case "gates" `Quick test_gates;
          Alcotest.test_case "muxes" `Quick test_muxes;
          Alcotest.test_case "decoders" `Quick test_decoders;
          Alcotest.test_case "comparators" `Quick test_comparators;
          Alcotest.test_case "logic units" `Quick test_logic_units;
          Alcotest.test_case "arith units" `Quick test_arith_units;
          prop_random_kinds;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "registers" `Slow test_registers;
          Alcotest.test_case "counters" `Slow test_counters;
        ] );
      ( "database",
        [
          Alcotest.test_case "caching" `Quick test_database_caching;
          Alcotest.test_case "register calls mux compiler" `Quick
            test_register_calls_mux_compiler;
          Alcotest.test_case "flatten equivalence" `Quick test_flatten_equiv;
          Alcotest.test_case "structural checks" `Quick
            test_compiled_design_checks;
        ] );
      ("symbols", [ Alcotest.test_case "generate/render" `Quick test_symbols ]);
    ]
