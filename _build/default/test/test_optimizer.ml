(* Optimizer tests: cones, the eight strategies, the time optimizer,
   area/power optimizers, the hierarchical logic optimizer. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Cone = Milo_rules.Cone

let mapped_design ~gates ~seed =
  let src = Milo_designs.Workload.random_logic ~gates ~seed () in
  let target = Milo_techmap.Table_map.ecl_target () in
  (src, Milo_techmap.Table_map.map_design target src)

let test_cone_extract_eval () =
  let _, d = mapped_design ~gates:30 ~seed:9 in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let sim = Milo_sim.Simulator.create (Util.env_ecl ()) d in
  (* compare cone evaluation against whole-design simulation on the
     output port cones *)
  List.iter
    (fun (p, dir, nid) ->
      if dir = T.Output then
        match Cone.extract ctx ~max_leaves:6 nid with
        | None -> ()
        | Some cone ->
            (match Cone.truth_table ctx cone with
            | None -> ()
            | Some tt ->
                (* random vectors: settle the design, read leaf values,
                   compare tt against the output net value *)
                let rng = Random.State.make [| 77 |] in
                for _ = 1 to 16 do
                  let ins =
                    List.filter_map
                      (fun (ip, idir, _) ->
                        if idir = T.Input then Some (ip, Random.State.bool rng)
                        else None)
                      (D.ports d)
                  in
                  let nets = Milo_sim.Simulator.settle sim ins in
                  let leaf_val n =
                    Option.value ~default:false (Hashtbl.find_opt nets n)
                  in
                  let arr =
                    Array.of_list (List.map leaf_val cone.Cone.leaves)
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf "cone of %s matches simulation" p)
                    (Option.value ~default:false (Hashtbl.find_opt nets nid))
                    (Milo_boolfunc.Truth_table.eval tt arr)
                done))
    (D.ports d)

let strategies_preserve_function seed =
  let src, d = mapped_design ~gates:50 ~seed in
  ignore src;
  let reference = D.copy d in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let env name = Milo_library.Technology.find (Util.ecl ()) name in
  List.iter
    (fun (s : Milo_optimizer.Strategies.strategy) ->
      let sta = Milo_timing.Sta.analyze env d in
      match Milo_timing.Paths.most_critical sta with
      | None -> ()
      | Some path ->
          let log = D.new_log () in
          (match s.Milo_optimizer.Strategies.run ctx sta path log with
          | Milo_optimizer.Strategies.Applied _ ->
              Milo_rules.Engine.run_cleanups ctx Milo_critic.Critic.cleanup log;
              let r =
                Milo_sim.Equiv.combinational (Util.env_ecl ()) reference
                  (Util.env_ecl ()) d
              in
              Alcotest.(check bool)
                (Printf.sprintf "strategy %d (%s) sound: %s"
                   s.Milo_optimizer.Strategies.id
                   s.Milo_optimizer.Strategies.strat_name
                   (Format.asprintf "%a" Milo_sim.Equiv.pp_result r))
                true
                (Milo_sim.Equiv.is_equivalent r);
              (* restore for the next strategy *)
              D.undo d log
          | Milo_optimizer.Strategies.Not_applicable -> D.undo d log))
    Milo_optimizer.Strategies.all

let test_strategies_sound () =
  List.iter strategies_preserve_function [ 2; 17; 29 ]

let test_strategy_order () =
  let small = Milo_optimizer.Strategies.order_for ~deficit:0.1 ~required:10.0 in
  Alcotest.(check bool) "small slack starts with free strategies" true
    (List.hd small = 1);
  let large = Milo_optimizer.Strategies.order_for ~deficit:8.0 ~required:10.0 in
  Alcotest.(check bool) "large slack includes strategy 7" true
    (List.mem 7 large);
  Alcotest.(check bool) "small slack excludes strategy 7" true
    (not (List.mem 7 small))

let test_time_opt_reduces_delay () =
  let _, d = mapped_design ~gates:60 ~seed:41 in
  let reference = D.copy d in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let before = Milo_optimizer.Time_opt.worst ctx ~input_arrivals:[] in
  let outcome =
    Milo_optimizer.Time_opt.optimize ~required:(before *. 0.75)
      ~cleanups:Milo_critic.Critic.cleanup ctx
  in
  Alcotest.(check bool) "delay reduced" true
    (outcome.Milo_optimizer.Time_opt.final_delay < before);
  (* every recorded step really reduced the worst delay *)
  List.iter
    (fun (s : Milo_optimizer.Time_opt.step) ->
      Alcotest.(check bool) "step improved" true
        (s.Milo_optimizer.Time_opt.delay_after
         < s.Milo_optimizer.Time_opt.delay_before))
    outcome.Milo_optimizer.Time_opt.steps;
  Util.check_equiv (Util.env_ecl ()) reference (Util.env_ecl ()) d

let test_area_opt_respects_timing () =
  let _, d = mapped_design ~gates:50 ~seed:55 in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let before_delay = Milo_optimizer.Time_opt.worst ctx ~input_arrivals:[] in
  let required = before_delay +. 0.1 in
  ignore
    (Milo_optimizer.Area_opt.optimize ~required
       ~rules:(Milo_critic.Critic.area @ Milo_critic.Critic.logic)
       ~cleanups:Milo_critic.Critic.cleanup ctx);
  let after_delay = Milo_optimizer.Time_opt.worst ctx ~input_arrivals:[] in
  Alcotest.(check bool) "constraint held" true (after_delay <= required +. 1e-6)

let test_power_opt () =
  (* Power the whole design up, then let the power optimizer recover. *)
  let _, d = mapped_design ~gates:40 ~seed:61 in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  List.iter
    (fun (c : D.comp) ->
      match R.macro_of ctx c with
      | Some m -> (
          match
            Milo_library.Technology.high_power_variant (Util.ecl ())
              m.Milo_library.Macro.mname
          with
          | Some hv ->
              D.set_kind d c.D.id (T.Macro hv.Milo_library.Macro.mname)
          | None -> ())
      | None -> ())
    (D.comps d);
  let env name = Milo_library.Technology.find (Util.ecl ()) name in
  let before = Milo_estimate.Estimate.power env d in
  let apps =
    Milo_optimizer.Power_opt.optimize
      ~rules:Milo_critic.Critic.power ~cleanups:[] ctx
  in
  let after = Milo_estimate.Estimate.power env d in
  Alcotest.(check bool) "swaps applied" true (List.length apps > 0);
  Alcotest.(check bool) "power reduced" true (after < before)

let test_hierarchical_optimizer () =
  (* The Figure 18 process on the ABADD design: bottom-up levels, flat
     result, function preserved, mux+ff merge found. *)
  let design = Milo_designs.Abadd.design () in
  let db = Milo_compilers.Database.create () in
  let lib = Util.generic () in
  let expanded = Milo_compilers.Compile.expand_design db lib design in
  let target = Milo_techmap.Table_map.ecl_target () in
  let optimized, report =
    Milo_optimizer.Logic_optimizer.optimize ~required:6.5 db target expanded
  in
  (* flat: no instances *)
  Alcotest.(check bool) "flat" true
    (List.for_all
       (fun (c : D.comp) ->
         match c.D.kind with T.Instance _ -> false | _ -> true)
       (D.comps optimized));
  (* the REG4 level merged mux+ff into MUXFF macros *)
  let has_muxff =
    List.exists
      (fun (c : D.comp) ->
        match c.D.kind with
        | T.Macro m -> String.length m >= 7 && String.sub m 0 7 = "E_MUXFF"
        | _ -> false)
      (D.comps optimized)
  in
  Alcotest.(check bool) "MUXFF macros present" true has_muxff;
  Alcotest.(check bool) "levels reported" true
    (List.length report.Milo_optimizer.Logic_optimizer.entries >= 3);
  let baseline, _ = Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl design in
  Util.check_equiv ~seq:true (Util.env_ecl ()) baseline (Util.env_ecl ()) optimized

let () =
  Alcotest.run "optimizer"
    [
      ( "cone",
        [ Alcotest.test_case "extract/eval vs simulation" `Quick test_cone_extract_eval ]
      );
      ( "strategies",
        [
          Alcotest.test_case "soundness" `Slow test_strategies_sound;
          Alcotest.test_case "slack ordering" `Quick test_strategy_order;
        ] );
      ( "time-opt",
        [ Alcotest.test_case "reduces delay" `Quick test_time_opt_reduces_delay ]
      );
      ( "area-opt",
        [ Alcotest.test_case "respects timing" `Quick test_area_opt_respects_timing ]
      );
      ("power-opt", [ Alcotest.test_case "recovers power" `Quick test_power_opt ]);
      ( "hierarchical",
        [ Alcotest.test_case "figure 18 process" `Slow test_hierarchical_optimizer ]
      );
    ]
