(* The paper's Figure 16 / Figure 18 walkthrough, reproduced step by
   step on the ABADD design: hierarchy from the logic compilers,
   technology mapping, level-by-level optimization, and the final
   ripple/carry-lookahead tradeoff under a timing constraint.

   Run with:  dune exec examples/abadd_walkthrough.exe *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let () =
  let design = Milo_designs.Abadd.design () in
  Printf.printf "ABADD as captured: %s\n\n" (Milo_netlist.Writer.summary design);
  print_string (Milo_netlist.Writer.to_string design);

  (* Step 1 (Figure 16): the compilers break the path A -> C into the
     hierarchy ADD4 / MUX2:1:4 / REG4, the register compiler calling the
     multiplexor compiler for its per-bit input selector. *)
  let db = Milo_compilers.Database.create () in
  let lib = Milo_library.Generic.get () in
  let expanded = Milo_compilers.Compile.expand_design db lib design in
  Printf.printf "\ncompiled sub-designs (the design database):\n";
  List.iter
    (fun name ->
      let sub = Milo_compilers.Database.get db name in
      Printf.printf "  %-24s %s\n" name (Milo_netlist.Writer.summary sub))
    (Milo_compilers.Database.names db);

  (* Step 2: map and optimize level by level (Figure 18), with the
     timing constraint from the A inputs to the C outputs. *)
  let target = Milo_techmap.Table_map.ecl_target () in
  let optimized, report =
    Milo_optimizer.Logic_optimizer.optimize ~required:6.5 db target expanded
  in
  Printf.printf "\nlevel-by-level optimization (Figure 18):\n";
  List.iter
    (fun (e : Milo_optimizer.Logic_optimizer.report_entry) ->
      Printf.printf "  %-24s rules applied %2d, area %.1f -> %.1f\n"
        e.Milo_optimizer.Logic_optimizer.level_design
        e.Milo_optimizer.Logic_optimizer.applications
        e.Milo_optimizer.Logic_optimizer.area_before
        e.Milo_optimizer.Logic_optimizer.area_after)
    report.Milo_optimizer.Logic_optimizer.entries;
  (match report.Milo_optimizer.Logic_optimizer.timing with
  | Some t ->
      Printf.printf "  timing: %s at %.2f ns after %d strategy steps\n"
        (if t.Milo_optimizer.Time_opt.met then "met" else "NOT met")
        t.Milo_optimizer.Time_opt.final_delay
        (List.length t.Milo_optimizer.Time_opt.steps);
      List.iter
        (fun (s : Milo_optimizer.Time_opt.step) ->
          Printf.printf "    %s (%s): %.2f -> %.2f ns\n"
            s.Milo_optimizer.Time_opt.step_strategy
            s.Milo_optimizer.Time_opt.step_detail
            s.Milo_optimizer.Time_opt.delay_before
            s.Milo_optimizer.Time_opt.delay_after)
        t.Milo_optimizer.Time_opt.steps
  | None -> ());

  (* The REG4 mux+flip-flop pairs merged into E_MUXFF macros. *)
  let hist = Milo_netlist.Stats.kind_histogram optimized in
  Printf.printf "\nfinal macro mix:\n";
  List.iter (fun (k, n) -> Printf.printf "  %-12s x%d\n" k n) hist;

  let human = Milo.Flow.baseline_stats ~technology:Milo.Flow.Ecl design in
  let final = Milo.Flow.stats_of target optimized in
  Printf.printf "\nbaseline: delay %.2f ns, area %.1f cells\n"
    human.Milo.Flow.delay human.Milo.Flow.area;
  Printf.printf "MILO:     delay %.2f ns, area %.1f cells\n" final.Milo.Flow.delay
    final.Milo.Flow.area
