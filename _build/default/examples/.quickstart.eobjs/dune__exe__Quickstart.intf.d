examples/quickstart.mli:
