examples/abadd_walkthrough.mli:
