examples/counter_rewrite.ml: Format List Milo Milo_compilers Milo_critic Milo_designs Milo_library Milo_netlist Milo_rules Milo_sim Printf String
