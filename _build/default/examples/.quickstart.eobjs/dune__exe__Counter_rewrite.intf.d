examples/counter_rewrite.mli:
