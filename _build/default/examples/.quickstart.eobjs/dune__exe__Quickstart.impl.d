examples/quickstart.ml: Format List Milo Milo_compilers Milo_library Milo_netlist Milo_sim Printf
