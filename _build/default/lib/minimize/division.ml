(* Algebraic (weak) division and kernel extraction, MIS-style.

   An algebraic cover treats literals as opaque symbols: a cover is a
   list of cubes, a cube a sorted list of literal ids.  Literal id
   encoding: [2*var] = positive literal, [2*var+1] = negative. *)

type cube = int list (* sorted, duplicate-free *)
type alg = cube list

let lit_pos v = 2 * v
let lit_neg v = (2 * v) + 1
let lit_var l = l / 2
let lit_polarity l = l mod 2 = 0

let cube_of_list ls = List.sort_uniq compare ls

let rec subset a b =
  (* a ⊆ b for sorted lists *)
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' ->
      if x = y then subset a' b' else if x > y then subset a b' else false

let rec diff a b =
  (* a \ b for sorted lists *)
  match (a, b) with
  | [], _ -> []
  | _, [] -> a
  | x :: a', y :: b' ->
      if x = y then diff a' b'
      else if x < y then x :: diff a' b
      else diff a b'

let cube_union a b = List.sort_uniq compare (a @ b)

let of_cover cover =
  List.map
    (fun c ->
      cube_of_list
        (List.map
           (fun (v, p) -> if p then lit_pos v else lit_neg v)
           (Milo_boolfunc.Cube.literals c)))
    (Milo_boolfunc.Cover.cubes cover)

let to_cover ~vars alg =
  Milo_boolfunc.Cover.create vars
    (List.map
       (fun cube ->
         Milo_boolfunc.Cube.of_literals vars
           (List.map (fun l -> (lit_var l, lit_polarity l)) cube))
       alg)

let literal_count alg = List.fold_left (fun acc c -> acc + List.length c) 0 alg

let dedup alg = List.sort_uniq compare (List.map cube_of_list alg)

(* Weak division f / d: quotient q and remainder r with f = d*q + r,
   q as large as possible, algebraically (no boolean simplification). *)
let divide (f : alg) (d : alg) : alg * alg =
  match d with
  | [] -> ([], f)
  | first :: rest ->
      let quotients_for dc =
        List.filter_map
          (fun fc -> if subset dc fc then Some (diff fc dc) else None)
          f
      in
      let q0 = quotients_for first in
      let q =
        List.fold_left
          (fun acc dc ->
            let qi = quotients_for dc in
            List.filter (fun c -> List.exists (fun c' -> c' = c) qi) acc)
          q0 rest
      in
      let q = dedup q in
      if q = [] then ([], f)
      else
        let products =
          List.concat_map (fun qc -> List.map (fun dc -> cube_union qc dc) d) q
        in
        let r = List.filter (fun fc -> not (List.mem fc products)) f in
        (q, r)

(* A cover is cube-free if no literal appears in every cube. *)
let common_literals = function
  | [] -> []
  | first :: rest ->
      List.fold_left (fun acc c -> List.filter (fun l -> List.mem l c) acc) first rest

let is_cube_free alg = alg <> [] && List.length alg > 1 && common_literals alg = []

let make_cube_free alg =
  match common_literals alg with
  | [] -> alg
  | com -> List.map (fun c -> diff c com) alg

(* All kernels and co-kernels (standard recursive algorithm). *)
let kernels (f : alg) : (cube * alg) list =
  let literals_of f =
    List.sort_uniq compare (List.concat f)
  in
  let count_lit f l = List.length (List.filter (fun c -> List.mem l c) f) in
  let result = ref [] in
  let add co k =
    let k = dedup k in
    if List.length k > 1 && is_cube_free k then
      if not (List.exists (fun (_, k') -> k' = k) !result) then
        result := (cube_of_list co, k) :: !result
  in
  let rec kernel1 min_lit co f =
    add co f;
    List.iter
      (fun l ->
        if l >= min_lit && count_lit f l >= 2 then begin
          let sub =
            List.filter_map
              (fun c -> if List.mem l c then Some (diff c [ l ]) else None)
              f
          in
          let com = common_literals sub in
          if not (List.exists (fun l' -> l' < l) com) then
            kernel1 (l + 1) (cube_union co (cube_union [ l ] com))
              (List.map (fun c -> diff c com) sub)
        end)
      (literals_of f)
  in
  let f = dedup f in
  let f0 = make_cube_free f in
  kernel1 0 (common_literals f) f0;
  !result

(* Best divisor by literal savings: value(d) = (|q|-1)*lits(d) +
   (lits_saved in f).  Simple scoring good enough to drive factoring. *)
let best_kernel (f : alg) : alg option =
  let ks = kernels f in
  let score k =
    let q, _ = divide f k in
    let nq = List.length q in
    if nq < 2 then -1
    else (nq - 1) * literal_count k
  in
  List.fold_left
    (fun acc (_, k) ->
      let s = score k in
      match acc with
      | Some (bs, _) when bs >= s -> acc
      | _ when s <= 0 -> acc
      | _ -> Some (s, k))
    None ks
  |> Option.map snd
