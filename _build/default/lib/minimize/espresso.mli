(** Espresso-style heuristic two-level minimization: expand against the
    off-set, remove redundant cubes, iterate. *)

open Milo_boolfunc

val expand : offset:Cover.t -> Cover.t -> Cover.t
val irredundant : ?dc:Cover.t -> Cover.t -> Cover.t
val minimize : ?dc:Cover.t -> Cover.t -> Cover.t
val minimize_tt : ?dc:int list -> Truth_table.t -> Cover.t
(** Exact minimization of a truth-table function (≤ 6 vars). *)
