(* Unate covering: pick a minimal-cost subset of candidate cubes covering
   the target minterms.  Exact branch and bound for small instances,
   greedy beyond. *)

open Milo_boolfunc

let cost cubes =
  List.fold_left (fun acc c -> acc +. 1.0 +. (0.1 *. float_of_int (Cube.literal_count c))) 0.0 cubes

let greedy ~candidates ~targets =
  let rec go chosen targets =
    if targets = [] then List.rev chosen
    else
      let best =
        List.fold_left
          (fun acc p ->
            let covered =
              List.length (List.filter (fun m -> Cube.eval_index p m) targets)
            in
            match acc with
            | Some (_, bestc) when bestc >= covered -> acc
            | _ when covered = 0 -> acc
            | _ -> Some (p, covered))
          None candidates
      in
      match best with
      | None -> List.rev chosen (* uncoverable targets: caller's bug *)
      | Some (p, _) ->
          go (p :: chosen)
            (List.filter (fun m -> not (Cube.eval_index p m)) targets)
  in
  go [] targets

let exact ~candidates ~targets =
  (* Branch and bound on the first uncovered target. *)
  let best = ref None in
  let best_cost = ref infinity in
  let rec go chosen targets =
    let c = cost chosen in
    if c >= !best_cost then ()
    else
      match targets with
      | [] ->
          best := Some (List.rev chosen);
          best_cost := c
      | m :: _ ->
          let options = List.filter (fun p -> Cube.eval_index p m) candidates in
          List.iter
            (fun p ->
              go (p :: chosen)
                (List.filter (fun m' -> not (Cube.eval_index p m')) targets))
            options
  in
  go [] targets;
  !best

(* Choose exact when the instance is small enough for branch and bound. *)
let solve ?(exact_limit = 14) ~candidates ~targets () =
  if targets = [] then []
  else if
    List.length targets <= exact_limit && List.length candidates <= exact_limit
  then
    match exact ~candidates ~targets with
    | Some sol -> sol
    | None -> greedy ~candidates ~targets
  else greedy ~candidates ~targets
