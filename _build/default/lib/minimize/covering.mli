(** Unate covering: minimal-cost cube subsets covering target minterms. *)

open Milo_boolfunc

val cost : Cube.t list -> float
val greedy : candidates:Cube.t list -> targets:int list -> Cube.t list
val exact : candidates:Cube.t list -> targets:int list -> Cube.t list option

val solve :
  ?exact_limit:int ->
  candidates:Cube.t list ->
  targets:int list ->
  unit ->
  Cube.t list
(** Exact branch-and-bound when the instance is at most [exact_limit]
    on both sides (default 14), greedy otherwise. *)
