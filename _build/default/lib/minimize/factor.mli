(** Recursive algebraic factoring of SOP covers into multi-level
    expression trees (kernel-based, MIS-style). *)

type expr =
  | Const of bool
  | Lit of int * bool  (** variable, polarity *)
  | And_e of expr list
  | Or_e of expr list
  | Not_e of expr

val literal_count : expr -> int
val depth : expr -> int
val eval : (int -> bool) -> expr -> bool
val expr_of_cube : Division.cube -> expr
val factor : Division.alg -> expr
val of_cover : Milo_boolfunc.Cover.t -> expr
val to_string : (int -> string) -> expr -> string
