(* Espresso-style heuristic two-level minimization: EXPAND against the
   off-set, IRREDUNDANT, iterate.  Heuristic counterpart to the exact
   Quine-McCluskey path; used when the collapsed cone is too wide to
   enumerate minterms. *)

open Milo_boolfunc

(* Expand one cube: greedily drop literals (in decreasing-gain order: we
   simply scan) while the cube stays disjoint from the off-set. *)
let expand_cube offset cube =
  let disjoint c =
    not (List.exists (fun oc -> Cube.intersect c oc <> None) (Cover.cubes offset))
  in
  List.fold_left
    (fun c (v, _) ->
      let c' = Cube.remove_var c v in
      if disjoint c' then c' else c)
    cube (Cube.literals cube)

let expand ~offset cover =
  Cover.create (Cover.n cover)
    (List.map (expand_cube offset) (Cover.cubes cover))
  |> Cover.single_cube_containment

(* Remove cubes whose minterms are already covered by the rest plus the
   don't-care set. *)
let irredundant ?dc cover =
  let n = Cover.n cover in
  let dc_cubes = match dc with Some d -> Cover.cubes d | None -> [] in
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest ->
        let others = Cover.create n (kept @ rest @ dc_cubes) in
        if Cover.covers_cube others c then go kept rest else go (c :: kept) rest
  in
  Cover.create n (go [] (Cover.cubes cover))

let minimize ?dc cover =
  let n = Cover.n cover in
  let dc_cover = match dc with Some d -> d | None -> Cover.create n [] in
  let on_dc = Cover.union cover dc_cover in
  let offset = Cover.complement on_dc in
  let rec iterate cov i =
    if i >= 4 then cov
    else
      let expanded = expand ~offset cov in
      let irred = irredundant ~dc:dc_cover expanded in
      if Cover.size irred = Cover.size cov
         && Cover.literal_count irred >= Cover.literal_count cov
      then irred
      else iterate irred (i + 1)
  in
  iterate (Cover.single_cube_containment cover) 0

(* Minimize a function given as a truth table; exact when small via
   Quine-McCluskey, heuristic above that. *)
let minimize_tt ?(dc = []) tt =
  let vars = Truth_table.vars tt in
  let on = ref [] in
  for m = 0 to (1 lsl vars) - 1 do
    if Truth_table.eval_index tt m && not (List.mem m dc) then on := m :: !on
  done;
  Quine.minimize ~vars ~on:!on ~dc
