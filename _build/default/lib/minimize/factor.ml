(* Recursive algebraic factoring: F = D*Q + R on the best kernel, else a
   literal-split fallback; produces an expression tree the optimizer can
   rebuild into gates (strategy 7's weak-division re-expansion, and the
   Logic Consultant's factorization module). *)

type expr =
  | Const of bool
  | Lit of int * bool  (* variable, polarity *)
  | And_e of expr list
  | Or_e of expr list
  | Not_e of expr

let rec literal_count = function
  | Const _ -> 0
  | Lit _ -> 1
  | And_e es | Or_e es -> List.fold_left (fun a e -> a + literal_count e) 0 es
  | Not_e e -> literal_count e

let rec depth = function
  | Const _ | Lit _ -> 0
  | And_e es | Or_e es ->
      1 + List.fold_left (fun a e -> max a (depth e)) 0 es
  | Not_e e -> 1 + depth e

let rec eval env = function
  | Const b -> b
  | Lit (v, p) -> if p then env v else not (env v)
  | And_e es -> List.for_all (eval env) es
  | Or_e es -> List.exists (eval env) es
  | Not_e e -> not (eval env e)

let expr_of_lit l =
  Lit (Division.lit_var l, Division.lit_polarity l)

let expr_of_cube (c : Division.cube) =
  match c with
  | [] -> Const true
  | [ l ] -> expr_of_lit l
  | ls -> And_e (List.map expr_of_lit ls)

let flat_or = function [ e ] -> e | es -> Or_e es
let flat_and = function [ e ] -> e | es -> And_e es

let rec factor (f : Division.alg) : expr =
  let f = Division.dedup f in
  match f with
  | [] -> Const false
  | [ c ] -> expr_of_cube c
  | _ -> (
      (* Pull out any common cube first. *)
      let com = Division.common_literals f in
      if com <> [] then
        let rest = List.map (fun c -> Division.diff c com) f in
        flat_and (List.map expr_of_lit com @ [ factor rest ])
      else
        match Division.best_kernel f with
        | Some d when List.length d > 1 ->
            let q, r = Division.divide f d in
            if q = [] then sum_form f
            else
              let dq = And_e [ factor d; factor q ] in
              if r = [] then dq else flat_or [ dq; factor r ]
        | Some _ | None -> sum_form f)

and sum_form f = flat_or (List.map expr_of_cube f)

let of_cover cover = factor (Division.of_cover cover)

let rec to_string names = function
  | Const true -> "1"
  | Const false -> "0"
  | Lit (v, true) -> names v
  | Lit (v, false) -> names v ^ "'"
  | And_e es -> String.concat "*" (List.map (paren names) es)
  | Or_e es -> String.concat " + " (List.map (to_string names) es)
  | Not_e e -> "!" ^ paren names e

and paren names e =
  match e with
  | Or_e _ -> "(" ^ to_string names e ^ ")"
  | Const _ | Lit _ | And_e _ | Not_e _ -> to_string names e
