(** Quine–McCluskey exact prime-implicant generation and two-level
    minimization (the strategy-7 minimizer core). *)

open Milo_boolfunc

val primes : vars:int -> on:int list -> dc:int list -> Cube.t list
(** All prime implicants of the function defined by the on-set and
    don't-care minterm lists. *)

val minimize : vars:int -> on:int list -> dc:int list -> Cover.t
(** Minimal (essential + covered) SOP cover of the on-set. *)
