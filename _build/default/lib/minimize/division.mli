(** Algebraic (weak) division and kernel extraction over symbolic SOP
    covers (MIS-style), the engine behind strategy 3/7 factoring. *)

type cube = int list
(** Sorted, duplicate-free literal ids: [2*var] positive, [2*var+1]
    negative. *)

type alg = cube list

val lit_pos : int -> int
val lit_neg : int -> int
val lit_var : int -> int
val lit_polarity : int -> bool
val cube_of_list : int list -> cube
val subset : cube -> cube -> bool
val diff : cube -> cube -> cube
val cube_union : cube -> cube -> cube
val of_cover : Milo_boolfunc.Cover.t -> alg
val to_cover : vars:int -> alg -> Milo_boolfunc.Cover.t
val literal_count : alg -> int
val dedup : alg -> alg

val divide : alg -> alg -> alg * alg
(** [divide f d] = (quotient, remainder) with [f = d*q + r]. *)

val common_literals : alg -> int list
val is_cube_free : alg -> bool
val make_cube_free : alg -> alg
val kernels : alg -> (cube * alg) list
(** All (co-kernel, kernel) pairs. *)

val best_kernel : alg -> alg option
(** Kernel with the best literal-savings score, if any divisor helps. *)
