(* Quine-McCluskey prime implicant generation (exact), the stand-in for
   the paper's ESPRESSO IIC reference in strategy 7. *)

open Milo_boolfunc

(* All prime implicants of the function with the given on-set and
   don't-care minterms. *)
let primes ~vars ~on ~dc =
  let module CS = Set.Make (struct
    type t = Cube.t

    let compare = Cube.compare
  end) in
  let initial =
    List.sort_uniq compare (on @ dc) |> List.map (Cube.of_minterm vars)
  in
  let rec go current acc =
    if current = [] then acc
    else begin
      let merged = Hashtbl.create 64 in
      let next = ref CS.empty in
      let arr = Array.of_list current in
      let len = Array.length arr in
      for i = 0 to len - 1 do
        for j = i + 1 to len - 1 do
          match Cube.consensus_merge arr.(i) arr.(j) with
          | Some c ->
              Hashtbl.replace merged arr.(i) ();
              Hashtbl.replace merged arr.(j) ();
              next := CS.add c !next
          | None -> ()
        done
      done;
      let survivors =
        List.filter (fun c -> not (Hashtbl.mem merged c)) current
      in
      go (CS.elements !next) (survivors @ acc)
    end
  in
  let all = go initial [] in
  (* Keep only maximal cubes (merging can leave contained cubes). *)
  List.filter
    (fun c ->
      not
        (List.exists
           (fun c' -> (not (Cube.equal c c')) && Cube.contains c' c)
           all))
    all
  |> List.sort_uniq Cube.compare

(* Exact-ish minimization: essential primes, then branch-and-bound cover
   of the remainder when small, greedy otherwise. *)
let minimize ~vars ~on ~dc =
  if on = [] then Cover.create vars []
  else
    let ps = primes ~vars ~on ~dc in
    let covers_of m = List.filter (fun p -> Cube.eval_index p m) ps in
    let essential, remaining_minterms =
      List.fold_left
        (fun (ess, rem) m ->
          match covers_of m with
          | [ p ] -> ((if List.exists (Cube.equal p) ess then ess else p :: ess), rem)
          | _ -> (ess, m :: rem))
        ([], []) on
    in
    let uncovered =
      List.filter
        (fun m -> not (List.exists (fun p -> Cube.eval_index p m) essential))
        remaining_minterms
    in
    let chosen = Covering.solve ~candidates:ps ~targets:uncovered () in
    Cover.create vars (essential @ chosen)
