lib/minimize/factor.ml: Division List String
