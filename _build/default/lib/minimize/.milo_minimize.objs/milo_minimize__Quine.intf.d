lib/minimize/quine.mli: Cover Cube Milo_boolfunc
