lib/minimize/division.mli: Milo_boolfunc
