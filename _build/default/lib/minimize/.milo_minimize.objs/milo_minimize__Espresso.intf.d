lib/minimize/espresso.mli: Cover Milo_boolfunc Truth_table
