lib/minimize/quine.ml: Array Cover Covering Cube Hashtbl List Milo_boolfunc Set
