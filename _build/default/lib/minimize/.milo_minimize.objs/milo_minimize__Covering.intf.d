lib/minimize/covering.mli: Cube Milo_boolfunc
