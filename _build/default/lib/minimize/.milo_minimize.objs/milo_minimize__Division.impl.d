lib/minimize/division.ml: List Milo_boolfunc Option
