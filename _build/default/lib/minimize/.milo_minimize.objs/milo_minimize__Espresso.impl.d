lib/minimize/espresso.ml: Cover Cube List Milo_boolfunc Quine Truth_table
