lib/minimize/covering.ml: Cube List Milo_boolfunc
