lib/minimize/factor.mli: Division Milo_boolfunc
