(** The MILO technology mapper: lookup-table conversion of generic-macro
    designs into technology-specific ones (Section 6.2); gates the
    technology lacks are rebuilt from its own gate set. *)

module D = Milo_netlist.Design

exception Unmappable of string

type target = {
  tech : Milo_library.Technology.t;
  prefix : string;
  set : Milo_compilers.Gate_comp.gate_set;
}

val make_target : prefix:string -> Milo_library.Technology.t -> target
val ecl_target : unit -> target
val cmos_target : unit -> target

val parse_gate_name : string -> (Milo_netlist.Types.gate_fn * int) option

val map_design : ?keep_instances:bool -> target -> D.t -> D.t
(** Map a generic design onto the target technology (fresh copy).
    @raise Unmappable on micro components, unknown macros, or hierarchy
    unless [keep_instances] is set. *)
