(* DAGON-style technology binding (Keutzer 1987), the paper's example of
   the algorithms-only strategy: decompose the combinational logic into
   a NAND2/INV subject graph, partition the DAG into trees at
   multi-fanout points, then cover each tree with minimal-cost library
   patterns by dynamic programming.  Pattern matching is done through
   truth tables of bounded cones (≤ 4 leaves), which finds exactly the
   matches a tree-pattern matcher would for our libraries. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Tech = Milo_library.Technology
module Macro = Milo_library.Macro
module Tt = Milo_boolfunc.Truth_table

exception Unmappable of string

type node =
  | Input of int  (* net id in the source design *)
  | Const of bool
  | Inv of int  (* node index *)
  | Nand of int * int

type subject = {
  nodes : node array;
  fanout : int array;
  (* net in the source design -> subject node computing it *)
  of_net : (int, int) Hashtbl.t;
}

(* --- Subject graph construction ------------------------------------- *)

let build_subject env design =
  let nodes = ref [] in
  let count = ref 0 in
  let fresh node =
    nodes := node :: !nodes;
    incr count;
    !count - 1
  in
  let of_net = Hashtbl.create 64 in
  let memo_inv = Hashtbl.create 64 in
  let inv a =
    match Hashtbl.find_opt memo_inv a with
    | Some i -> i
    | None ->
        let i = fresh (Inv a) in
        Hashtbl.replace memo_inv a i;
        i
  in
  let nand a b = fresh (Nand (a, b)) in
  let and2 a b = inv (nand a b) in
  let or2 a b = nand (inv a) (inv b) in
  let xor2 a b =
    (* the classic 4-NAND exclusive-or *)
    let n = nand a b in
    nand (nand a n) (nand b n)
  in
  (* Reduce a list with a binary op, building a balanced-ish tree. *)
  let rec reduce op = function
    | [] -> invalid_arg "Dagon: empty gate"
    | [ x ] -> x
    | x :: y :: rest -> reduce op (op x y :: rest)
  in
  (* Recursively get the subject node for a net. *)
  let visiting = Hashtbl.create 16 in
  let rec node_of_net nid =
    match Hashtbl.find_opt of_net nid with
    | Some i -> i
    | None ->
        if Hashtbl.mem visiting nid then
          raise (Unmappable "combinational loop in subject graph");
        Hashtbl.replace visiting nid ();
        let resolve kind nm =
          match kind with
          | T.Macro _ -> (env nm).Macro.pins
          | T.Instance _ -> raise (Unmappable "hierarchy in subject graph")
          | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
          | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
          | T.Constant _ ->
              T.pins_of_kind kind
        in
        let i =
          match D.driver ~resolve design nid with
          | D.Src_port _ | D.Src_none -> fresh (Input nid)
          | D.Src_comp (cid, _out) -> (
              let c = D.comp design cid in
              match c.D.kind with
              | T.Macro mname -> (
                  let m = env mname in
                  if Macro.is_sequential m then fresh (Input nid)
                  else
                    match Macro.single_output_tt m with
                    | None -> fresh (Input nid)
                    | Some tt -> (
                        let ins =
                          List.map
                            (fun pin ->
                              match D.connection design cid pin with
                              | Some n -> node_of_net n
                              | None -> fresh (Const false))
                            m.Macro.inputs
                        in
                        (* Expand the gate function into NAND2/INV. *)
                        let arity = List.length ins in
                        let all_same fn =
                          arity > 0
                          && Tt.equal tt (Milo_library.Defs.gate_tt fn arity)
                        in
                        if Tt.is_const tt <> None then
                          fresh (Const (Tt.is_const tt = Some true))
                        else if all_same T.And then reduce and2 ins
                        else if all_same T.Or then reduce or2 ins
                        else if all_same T.Nand then inv (reduce and2 ins)
                        else if all_same T.Nor then inv (reduce or2 ins)
                        else if all_same T.Xor then reduce xor2 ins
                        else if all_same T.Xnor then inv (reduce xor2 ins)
                        else if arity = 1 && Tt.equal tt (Milo_library.Defs.gate_tt T.Inv 1)
                        then inv (List.nth ins 0)
                        else if arity = 1 && Tt.equal tt (Milo_library.Defs.gate_tt T.Buf 1)
                        then List.nth ins 0
                        else
                          match Tt.is_const tt with
                          | Some b -> fresh (Const b)
                          | None ->
                              (* General function: synthesize SOP over
                                 NAND2/INV. *)
                              let cover = Milo_minimize.Espresso.minimize_tt tt in
                              let term cube =
                                let lits =
                                  List.map
                                    (fun (v, p) ->
                                      let base = List.nth ins v in
                                      if p then base else inv base)
                                    (Milo_boolfunc.Cube.literals cube)
                                in
                                if lits = [] then fresh (Const true)
                                else reduce and2 lits
                              in
                              let terms =
                                List.map term (Milo_boolfunc.Cover.cubes cover)
                              in
                              if terms = [] then fresh (Const false)
                              else reduce or2 terms))
              | T.Constant lvl -> fresh (Const (lvl = T.Vdd))
              | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
              | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
              | T.Instance _ ->
                  raise (Unmappable "unmapped micro component in subject graph"))
        in
        Hashtbl.remove visiting nid;
        Hashtbl.replace of_net nid i;
        i
  in
  (* Roots: output ports and sequential/opaque component inputs. *)
  let root_nets = ref [] in
  List.iter
    (fun (p, dir, nid) -> if dir = T.Output then root_nets := nid :: !root_nets ; ignore p)
    (D.ports design);
  List.iter
    (fun (c : D.comp) ->
      match c.D.kind with
      | T.Macro mname ->
          let m = env mname in
          (* Components the covering does not absorb (sequential,
             multi-output, wide) keep their inputs as roots. *)
          if Macro.is_sequential m || Macro.single_output_tt m = None then
            List.iter
              (fun pin ->
                match D.connection design c.D.id pin with
                | Some nid -> root_nets := nid :: !root_nets
                | None -> ())
              m.Macro.inputs
      | T.Constant _ -> ()
      | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
      | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
      | T.Instance _ ->
          ())
    (D.comps design);
  let root_nets = List.sort_uniq compare !root_nets in
  List.iter (fun nid -> ignore (node_of_net nid)) root_nets;
  let arr = Array.of_list (List.rev !nodes) in
  let fanout = Array.make (Array.length arr) 0 in
  Array.iter
    (fun n ->
      match n with
      | Inv a -> fanout.(a) <- fanout.(a) + 1
      | Nand (a, b) ->
          fanout.(a) <- fanout.(a) + 1;
          fanout.(b) <- fanout.(b) + 1
      | Input _ | Const _ -> ())
    arr;
  (* Root nets also consume their node. *)
  List.iter
    (fun nid ->
      let i = Hashtbl.find of_net nid in
      fanout.(i) <- fanout.(i) + 1)
    root_nets;
  ({ nodes = arr; fanout; of_net }, root_nets)

(* --- Tree covering --------------------------------------------------- *)

type cover_impl = {
  impl_macro : Macro.t;
  impl_leaves : int list;  (* subject nodes feeding the macro inputs, in
                              macro input order *)
}

type solution = { cost : float; impl : impl_kind }
and impl_kind = Leaf | Covered of cover_impl

(* A node is a tree boundary if it has fanout > 1 or is an input/const. *)
let is_boundary subject i =
  match subject.nodes.(i) with
  | Input _ | Const _ -> true
  | Inv _ | Nand _ -> subject.fanout.(i) > 1

(* Enumerate cuts of a node within its tree (bounded size). *)
let rec cuts subject ~max_leaves i =
  let leaf = [ [ i ] ] in
  match subject.nodes.(i) with
  | Input _ | Const _ -> leaf
  | Inv a ->
      let sub =
        if is_boundary subject a then [ [ a ] ]
        else cuts subject ~max_leaves a
      in
      leaf @ List.filter (fun c -> List.length c <= max_leaves) sub
  | Nand (a, b) ->
      let sub x =
        if is_boundary subject x then [ [ x ] ] else cuts subject ~max_leaves x
      in
      let merged =
        List.concat_map
          (fun ca ->
            List.map (fun cb -> List.sort_uniq compare (ca @ cb)) (sub b))
          (sub a)
      in
      leaf @ List.filter (fun c -> List.length c <= max_leaves) merged

(* Truth table of node [i] as a function of the given leaves. *)
let cone_tt subject leaves i =
  let nleaves = List.length leaves in
  let pos = List.mapi (fun k l -> (l, k)) leaves in
  let rec eval assign j =
    match List.assoc_opt j pos with
    | Some k -> assign.(k)
    | None -> (
        match subject.nodes.(j) with
        | Const b -> b
        | Input _ -> false (* unreachable: inputs are always leaves *)
        | Inv a -> not (eval assign a)
        | Nand (a, b) -> not (eval assign a && eval assign b))
  in
  Tt.of_fun nleaves (fun assign -> eval assign i)

let solve_tree subject tech ~max_leaves memo i =
  let rec best i =
    match Hashtbl.find_opt memo i with
    | Some s -> s
    | None ->
        let s =
          match subject.nodes.(i) with
          | Input _ | Const _ -> { cost = 0.0; impl = Leaf }
          | Inv _ | Nand _ ->
              let candidates =
                List.filter_map
                  (fun cut ->
                    if List.mem i cut then None
                    else
                      let tt = cone_tt subject cut i in
                      let matches = Tech.matches_for tech tt in
                      match matches with
                      | [] -> None
                      | _ ->
                          let leaf_cost =
                            List.fold_left
                              (fun acc l -> acc +. (best l).cost)
                              0.0 cut
                          in
                          let scored =
                            List.map
                              (fun (m, perm) ->
                                ( m.Macro.area +. leaf_cost,
                                  {
                                    impl_macro = m;
                                    impl_leaves =
                                      List.map (List.nth cut) perm;
                                  } ))
                              matches
                          in
                          Some
                            (List.fold_left
                               (fun acc (c, im) ->
                                 match acc with
                                 | Some (bc, _) when bc <= c -> acc
                                 | _ -> Some (c, im))
                               None scored))
                  (cuts subject ~max_leaves i)
              in
              let chosen =
                List.fold_left
                  (fun acc cand ->
                    match cand with
                    | None -> acc
                    | Some (c, im) -> (
                        match acc with
                        | Some (bc, _) when bc <= c -> acc
                        | _ -> Some (c, im)))
                  None candidates
              in
              (match chosen with
              | Some (c, im) -> { cost = c; impl = Covered im }
              | None ->
                  raise
                    (Unmappable
                       (Printf.sprintf "no pattern covers subject node %d" i)))
        in
        Hashtbl.replace memo i s;
        s
  in
  best i

(* --- Rebuild the mapped design --------------------------------------- *)

let map_design target env design =
  let tech = target.Table_map.tech in
  let subject, root_nets = build_subject env design in
  let memo = Hashtbl.create 64 in
  (* Cover every boundary node reachable from the roots. *)
  let d = D.copy design in
  (* Remove the combinational gates; keep sequential/opaque comps. *)
  List.iter
    (fun (c : D.comp) ->
      match c.D.kind with
      | T.Macro mname ->
          let m = env mname in
          if (not (Macro.is_sequential m)) && Macro.single_output_tt m <> None
          then D.remove_comp d c.D.id
          else begin
            (* Table-map sequential and multi-output macros. *)
            let candidate = target.Table_map.prefix ^ mname in
            if Tech.mem tech candidate then
              D.set_kind d c.D.id (T.Macro candidate)
            else
              raise
                (Unmappable
                   (Printf.sprintf "no direct mapping for %s" mname))
          end
      | T.Constant lvl ->
          D.set_kind d c.D.id
            (T.Macro
               (target.Table_map.prefix
               ^ (match lvl with T.Vdd -> "VDD" | T.Vss -> "VSS")))
      | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
      | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
      | T.Instance _ ->
          raise (Unmappable "unexpected component in Dagon input"))
    (D.comps d);
  (* Net for each materialized subject node. *)
  let node_net = Hashtbl.create 64 in
  let rec materialize i =
    match Hashtbl.find_opt node_net i with
    | Some nid -> nid
    | None ->
        let nid = emit i in
        Hashtbl.replace node_net i nid;
        nid
  and emit i =
    match (solve_tree subject tech ~max_leaves:4 memo i).impl with
    | Leaf -> (
        match subject.nodes.(i) with
        | Input nid -> nid
        | Const b ->
            let cid =
              D.add_comp d
                (T.Macro
                   (target.Table_map.prefix ^ if b then "VDD" else "VSS"))
            in
            let n = D.new_net d in
            D.connect d cid "Y" n;
            n
        | Inv _ | Nand _ -> assert false)
    | Covered { impl_macro; impl_leaves } ->
        let leaf_nets = List.map materialize impl_leaves in
        let cid = D.add_comp d (T.Macro impl_macro.Macro.mname) in
        List.iter2
          (fun pin nid -> D.connect d cid pin nid)
          impl_macro.Macro.inputs leaf_nets;
        let out = D.new_net d in
        D.connect d cid (List.nth impl_macro.Macro.outputs 0) out;
        out
  in
  (* Materialize each root and merge it into its original net.  When
     the materialized signal is itself port-bound (an input port passed
     through, or a node already bound to another root port), bridge with
     a buffer instead of stealing its driver. *)
  List.iter
    (fun nid ->
      let i = Hashtbl.find subject.of_net nid in
      let built =
        match Hashtbl.find_opt node_net i with
        | Some f -> f
        | None -> emit i
      in
      if built <> nid then begin
        if (D.net d built).D.nport <> None then begin
          let b =
            D.add_comp d (T.Macro (target.Table_map.prefix ^ "BUF"))
          in
          D.connect d b "A0" built;
          D.connect d b "Y" nid
        end
        else begin
          Hashtbl.replace node_net i nid;
          let pins = (D.net d built).D.npins in
          List.iter (fun (cid, pin) -> D.connect d cid pin nid) pins;
          if (D.net d built).D.npins = [] && (D.net d built).D.nport = None
          then D.remove_net d built
        end
      end)
    root_nets;
  d
