lib/techmap/table_map.mli: Milo_compilers Milo_library Milo_netlist
