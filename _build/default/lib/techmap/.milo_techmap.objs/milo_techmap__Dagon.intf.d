lib/techmap/dagon.mli: Milo_library Milo_netlist Table_map
