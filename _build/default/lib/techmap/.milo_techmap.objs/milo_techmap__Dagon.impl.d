lib/techmap/dagon.ml: Array Hashtbl List Milo_boolfunc Milo_library Milo_minimize Milo_netlist Printf Table_map
