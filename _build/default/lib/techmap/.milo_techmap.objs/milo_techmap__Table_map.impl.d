lib/techmap/table_map.ml: List Milo_compilers Milo_library Milo_netlist Option Printf String
