(** DAGON-style technology binding (the paper's algorithms-only
    baseline): NAND2/INV subject graph, DAG partitioned into trees at
    fanout points, minimal-area tree covering by dynamic programming
    with truth-table pattern matching on bounded cones. *)

module D = Milo_netlist.Design

exception Unmappable of string

type subject

val build_subject : (string -> Milo_library.Macro.t) -> D.t -> subject * int list
(** Subject graph and the root net list (exposed for tests). *)

val map_design :
  Table_map.target -> (string -> Milo_library.Macro.t) -> D.t -> D.t
(** Cover the combinational logic with technology patterns; sequential
    and multi-output macros are table-mapped. *)
