lib/sim/equiv.mli: Format Milo_netlist Simulator
