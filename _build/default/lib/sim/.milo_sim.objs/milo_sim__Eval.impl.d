lib/sim/eval.ml: Array List Milo_library Milo_netlist Printf
