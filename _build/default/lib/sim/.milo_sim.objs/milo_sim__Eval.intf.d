lib/sim/eval.mli: Milo_library Milo_netlist
