lib/sim/equiv.ml: Format List Milo_netlist Printf Random Simulator String
