lib/sim/simulator.mli: Hashtbl Milo_library Milo_netlist
