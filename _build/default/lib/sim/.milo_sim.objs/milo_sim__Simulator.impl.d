lib/sim/simulator.ml: Eval Hashtbl List Milo_library Milo_netlist Option Printf String
