(* Levelized logic simulation of mixed microarchitecture / macro designs.

   The clock is implicit and global: every sequential component updates
   on [step].  Combinational evaluation uses a worklist until fixpoint;
   lack of progress with unresolved nets indicates a combinational loop.
   Undriven nets read as [false]. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type env = { find_macro : string -> Milo_library.Macro.t }

let env_of_techs techs =
  let find_macro name =
    let rec go = function
      | [] ->
          invalid_arg (Printf.sprintf "Simulator: unknown macro %s" name)
      | t :: rest -> (
          match Milo_library.Technology.find_opt t name with
          | Some m -> m
          | None -> go rest)
    in
    go techs
  in
  { find_macro }

let resolver_of_env env : D.resolver =
 fun kind nm ->
  match kind with
  | T.Macro _ -> (env.find_macro nm).Milo_library.Macro.pins
  | T.Instance _ ->
      invalid_arg
        (Printf.sprintf
           "Simulator: hierarchical instance %s must be flattened first" nm)
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Constant _ ->
      T.pins_of_kind kind

type t = {
  design : D.t;
  env : env;
  state : (int, int) Hashtbl.t;  (* sequential comp id -> register contents *)
  mutable nets : (int, bool) Hashtbl.t;  (* last solved net values *)
}

let is_seq env (c : D.comp) =
  match c.D.kind with
  | T.Register _ | T.Counter _ -> true
  | T.Macro m -> Milo_library.Macro.is_sequential (env.find_macro m)
  | T.Instance i ->
      invalid_arg
        (Printf.sprintf "Simulator: hierarchical instance %s in design" i)
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Constant _ ->
      false

let create env design =
  let t = { design; env; state = Hashtbl.create 16; nets = Hashtbl.create 64 } in
  List.iter
    (fun (c : D.comp) -> if is_seq env c then Hashtbl.replace t.state c.D.id 0)
    (D.comps design);
  t

let reset t = Hashtbl.iter (fun k _ -> Hashtbl.replace t.state k 0) t.state
let set_state t cid v = Hashtbl.replace t.state cid v
let get_state t cid = Hashtbl.find_opt t.state cid

exception Combinational_loop of string list

let pin_values_of t (c : D.comp) nets =
  List.filter_map
    (fun (pin, nid) ->
      match Hashtbl.find_opt nets nid with
      | Some v -> Some (pin, v)
      | None -> Some (pin, false))
    (D.connections t.design c.D.id)

(* Evaluate all combinational logic given the input-port assignment and
   the current sequential state; returns the net-value table. *)
let settle t (inputs : (string * bool) list) =
  let d = t.design in
  let nets : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  (* Input ports drive their nets. *)
  List.iter
    (fun (p, dir, nid) ->
      match dir with
      | T.Input ->
          Hashtbl.replace nets nid
            (Option.value ~default:false (List.assoc_opt p inputs))
      | T.Output -> ())
    (D.ports d);
  (* Sequential outputs and constants are known up front. *)
  let comb = ref [] in
  List.iter
    (fun (c : D.comp) ->
      if is_seq t.env c then begin
        let state = Hashtbl.find t.state c.D.id in
        (* Seed only the state-only outputs (Q).  Input-dependent
           outputs (a counter's COUT depends on its UP pin) are computed
           in the worklist below once the inputs are known — seeding
           them here would expose stale values to consumers. *)
        let outs =
          match c.D.kind with
          | T.Macro m ->
              Eval.macro_seq_outputs (t.env.find_macro m) ~state
                (pin_values_of t c nets)
          | T.Register _ | T.Counter _ ->
              Eval.seq_outputs c.D.kind ~state (pin_values_of t c nets)
          | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
          | T.Logic_unit _ | T.Arith_unit _ | T.Constant _ | T.Instance _ ->
              assert false
        in
        List.iter
          (fun (pin, v) ->
            if String.length pin > 0 && pin.[0] = 'Q' then
              match D.connection d c.D.id pin with
              | Some nid -> Hashtbl.replace nets nid v
              | None -> ())
          outs
      end
      else comb := c :: !comb)
    (D.comps d);
  (* Worklist evaluation.  Sequential components are re-visited too so
     that input-dependent outputs (a counter's terminal count depends on
     its UP pin) settle once their inputs are known. *)
  let seq_comps = List.filter (is_seq t.env) (D.comps d) in
  let pending = ref (!comb @ seq_comps) in
  let progress = ref true in
  let resolve = resolver_of_env t.env in
  let inputs_known (c : D.comp) =
    List.for_all
      (fun (pin, nid) ->
        D.pin_dir ~resolve d c.D.id pin = T.Output || Hashtbl.mem nets nid
        ||
        (* undriven nets read as false *)
        D.driver ~resolve d nid = D.Src_none)
      (D.connections d c.D.id)
  in
  while !progress && !pending <> [] do
    progress := false;
    let still = ref [] in
    List.iter
      (fun (c : D.comp) ->
        if inputs_known c then begin
          progress := true;
          let pvs = pin_values_of t c nets in
          let outs =
            if is_seq t.env c then
              let state = Hashtbl.find t.state c.D.id in
              match c.D.kind with
              | T.Macro m ->
                  Eval.macro_seq_outputs (t.env.find_macro m) ~state pvs
              | T.Register _ | T.Counter _ ->
                  Eval.seq_outputs c.D.kind ~state pvs
              | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
              | T.Logic_unit _ | T.Arith_unit _ | T.Constant _ | T.Instance _
                ->
                  assert false
            else
              match c.D.kind with
              | T.Macro m -> Eval.macro_comb_outputs (t.env.find_macro m) pvs
              | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
              | T.Logic_unit _ | T.Arith_unit _ | T.Constant _ ->
                  Eval.comb_outputs c.D.kind pvs
              | T.Register _ | T.Counter _ | T.Instance _ -> assert false
          in
          List.iter
            (fun (pin, v) ->
              match D.connection d c.D.id pin with
              | Some nid -> Hashtbl.replace nets nid v
              | None -> ())
            outs
        end
        else still := c :: !still)
      !pending;
    pending := !still
  done;
  if !pending <> [] then
    raise
      (Combinational_loop
         (List.map (fun (c : D.comp) -> c.D.cname) !pending));
  t.nets <- nets;
  nets

let outputs t inputs =
  let nets = settle t inputs in
  List.filter_map
    (fun (p, dir, nid) ->
      match dir with
      | T.Output ->
          Some (p, Option.value ~default:false (Hashtbl.find_opt nets nid))
      | T.Input -> None)
    (D.ports t.design)

(* One clock edge: settle combinational logic, then update every
   sequential component synchronously. *)
let step t inputs =
  let nets = settle t inputs in
  let updates =
    List.filter_map
      (fun (c : D.comp) ->
        if is_seq t.env c then
          let state = Hashtbl.find t.state c.D.id in
          let pvs = pin_values_of t c nets in
          let next =
            match c.D.kind with
            | T.Macro m -> Eval.macro_next_state (t.env.find_macro m) ~state pvs
            | T.Register _ | T.Counter _ -> Eval.next_state c.D.kind ~state pvs
            | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
            | T.Logic_unit _ | T.Arith_unit _ | T.Constant _ | T.Instance _ ->
                assert false
          in
          Some (c.D.id, next)
        else None)
      (D.comps t.design)
  in
  List.iter (fun (cid, v) -> Hashtbl.replace t.state cid v) updates

let net_value t nid = Hashtbl.find_opt t.nets nid
