(* Behavioural semantics of the microarchitecture component kinds.

   These definitions are the reference the compiled (gate-level) designs
   are checked against: an Arith_unit *means* add/subtract/increment/
   decrement, independent of how the logic compilers expand it. *)

module T = Milo_netlist.Types

type pin_values = (string * bool) list

let get pins pin =
  match List.assoc_opt pin pins with Some v -> v | None -> false

let bus pins prefix bits =
  let v = ref 0 in
  for b = 0 to bits - 1 do
    if get pins (Printf.sprintf "%s%d" prefix b) then v := !v lor (1 lsl b)
  done;
  !v

let bus_out prefix bits v =
  List.init bits (fun b -> (Printf.sprintf "%s%d" prefix b, v land (1 lsl b) <> 0))

let mask bits = (1 lsl bits) - 1

let select pins prefix count =
  (* Decode a one-of-n select field of clog2 count bits. *)
  let s = T.clog2 count in
  let v = ref 0 in
  for i = 0 to s - 1 do
    if get pins (Printf.sprintf "%s%d" prefix i) then v := !v lor (1 lsl i)
  done;
  !v

let gate_inputs pins n = Array.init n (fun i -> get pins (Printf.sprintf "A%d" (i + 1)))

(* Outputs of a combinational micro component given its input pins. *)
let comb_outputs (kind : T.kind) (pins : pin_values) : pin_values =
  match kind with
  | T.Gate (fn, n) ->
      let n = T.gate_arity fn n in
      [ ("Y", Milo_library.Defs.gate_semantics fn (gate_inputs pins n)) ]
  | T.Constant T.Vdd -> [ ("Y", true) ]
  | T.Constant T.Vss -> [ ("Y", false) ]
  | T.Multiplexor { bits; inputs; enable } ->
      let en = (not enable) || get pins "EN" in
      let sel = select pins "S" inputs in
      List.init bits (fun b ->
          let v =
            en && sel < inputs && get pins (Printf.sprintf "D%d_%d" sel b)
          in
          (Printf.sprintf "Y%d" b, v))
  | T.Decoder { bits; enable } ->
      let en = (not enable) || get pins "EN" in
      let a = bus pins "A" bits in
      List.init (1 lsl bits) (fun j -> (Printf.sprintf "Y%d" j, en && a = j))
  | T.Comparator { bits; fns } ->
      let a = bus pins "A" bits and b = bus pins "B" bits in
      List.map
        (fun fn ->
          let v =
            match fn with
            | T.Eq -> a = b
            | T.Ne -> a <> b
            | T.Lt -> a < b
            | T.Gt -> a > b
            | T.Le -> a <= b
            | T.Ge -> a >= b
          in
          (T.cmp_fn_name fn, v))
        fns
  | T.Logic_unit { bits; fn; inputs } ->
      List.init bits (fun b ->
          let arr =
            Array.init inputs (fun i -> get pins (Printf.sprintf "D%d_%d" i b))
          in
          (Printf.sprintf "Y%d" b, Milo_library.Defs.gate_semantics fn arr))
  | T.Arith_unit { bits; fns; mode = _ } ->
      let a = bus pins "A" bits and b = bus pins "B" bits in
      let cin = if get pins "CIN" then 1 else 0 in
      let fi = select pins "F" (List.length fns) in
      let fn = List.nth fns (min fi (List.length fns - 1)) in
      let raw =
        match fn with
        | T.Add -> a + b + cin
        | T.Sub -> a + (lnot b land mask bits) + cin
        | T.Inc -> a + 1
        | T.Dec -> a + mask bits
      in
      bus_out "S" bits raw @ [ ("COUT", raw land (1 lsl bits) <> 0) ]
  | T.Register _ | T.Counter _ | T.Macro _ | T.Instance _ ->
      invalid_arg "Eval.comb_outputs: not a combinational micro component"

(* Next state of a sequential micro component.  [state] is the register
   contents as an integer; the implicit global clock has just risen. *)
let next_state (kind : T.kind) ~(state : int) (pins : pin_values) : int =
  match kind with
  | T.Register { bits; kind = _; fns; controls; inverting = _ } ->
      let ctl c = List.mem c controls in
      if ctl T.Set && get pins "SET" then mask bits
      else if ctl T.Reset && get pins "RST" then 0
      else if ctl T.Enable && not (get pins "EN") then state
      else
        let mi = select pins "M" (List.length fns) in
        let fn = List.nth fns (min mi (List.length fns - 1)) in
        (match fn with
        | T.Load -> bus pins "D" bits
        | T.Shift_right ->
            (state lsr 1)
            lor (if get pins "SIR" then 1 lsl (bits - 1) else 0)
        | T.Shift_left ->
            ((state lsl 1) land mask bits) lor (if get pins "SIL" then 1 else 0))
  | T.Counter { bits; fns; controls } ->
      let has f = List.mem f fns and ctl c = List.mem c controls in
      if ctl T.Set && get pins "SET" then mask bits
      else if ctl T.Reset && get pins "RST" then 0
      else if ctl T.Enable && not (get pins "EN") then state
      else if has T.Count_load && get pins "LD" then bus pins "D" bits
      else
        let up =
          if has T.Count_up && has T.Count_down then get pins "UP"
          else has T.Count_up
        in
        if up then (state + 1) land mask bits
        else (state - 1) land mask bits
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Constant _ | T.Macro _ | T.Instance _ ->
      invalid_arg "Eval.next_state: not a sequential micro component"

(* Present outputs of a sequential micro component from its state. *)
let seq_outputs (kind : T.kind) ~(state : int) (pins : pin_values) : pin_values
    =
  match kind with
  | T.Register { bits; inverting; _ } ->
      let v = if inverting then lnot state land mask bits else state in
      bus_out "Q" bits v
  | T.Counter { bits; fns; _ } ->
      let has f = List.mem f fns in
      let up =
        if has T.Count_up && has T.Count_down then get pins "UP"
        else has T.Count_up
      in
      let terminal = if up then state = mask bits else state = 0 in
      bus_out "Q" bits state @ [ ("COUT", terminal) ]
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Constant _ | T.Macro _ | T.Instance _ ->
      invalid_arg "Eval.seq_outputs: not a sequential micro component"

(* Macro semantics. *)

let macro_comb_outputs (m : Milo_library.Macro.t) (pins : pin_values) :
    pin_values =
  let input = Array.of_list (List.map (get pins) m.Milo_library.Macro.inputs) in
  let out = Milo_library.Macro.eval_comb m input in
  List.mapi (fun i o -> (o, out.(i))) m.Milo_library.Macro.outputs

let macro_next_state (m : Milo_library.Macro.t) ~(state : int)
    (pins : pin_values) : int =
  match m.Milo_library.Macro.behavior with
  | Milo_library.Macro.Seq_dff
      { data; latch = _; has_set; has_reset; has_enable; inverting = _ } ->
      if has_set && get pins "SET" then 1
      else if has_reset && get pins "RST" then 0
      else if has_enable && not (get pins "EN") then state
      else
        let d =
          match data with
          | Milo_library.Macro.Direct -> get pins "D"
          | Milo_library.Macro.Muxed n ->
              let sel = select pins "S" n in
              sel < n && get pins (Printf.sprintf "D%d" sel)
        in
        if d then 1 else 0
  | Milo_library.Macro.Seq_counter
      { bits; has_load; has_updown; has_reset; has_enable } ->
      if has_reset && get pins "RST" then 0
      else if has_enable && not (get pins "EN") then state
      else if has_load && get pins "LD" then bus pins "D" bits
      else
        let up = (not has_updown) || get pins "UP" in
        if up then (state + 1) land mask bits else (state - 1) land mask bits
  | Milo_library.Macro.Combinational _ | Milo_library.Macro.Comb_eval _ ->
      invalid_arg "Eval.macro_next_state: combinational macro"

let macro_seq_outputs (m : Milo_library.Macro.t) ~(state : int)
    (pins : pin_values) : pin_values =
  match m.Milo_library.Macro.behavior with
  | Milo_library.Macro.Seq_dff { inverting; _ } ->
      [ ("Q", if inverting then state = 0 else state = 1) ]
  | Milo_library.Macro.Seq_counter { bits; has_updown; _ } ->
      let up = (not has_updown) || get pins "UP" in
      let terminal = if up then state = mask bits else state = 0 in
      bus_out "Q" bits state @ [ ("COUT", terminal) ]
  | Milo_library.Macro.Combinational _ | Milo_library.Macro.Comb_eval _ ->
      invalid_arg "Eval.macro_seq_outputs: combinational macro"
