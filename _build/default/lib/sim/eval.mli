(** Behavioural semantics of the microarchitecture component kinds and of
    library macros — the reference against which compiled designs and
    rule applications are checked. *)

module T = Milo_netlist.Types

type pin_values = (string * bool) list
(** Pin assignment; absent pins read as [false]. *)

val get : pin_values -> string -> bool
val bus : pin_values -> string -> int -> int
(** Read pins [prefix0..prefix(bits-1)] as a little-endian integer. *)

val bus_out : string -> int -> int -> pin_values
val mask : int -> int

val comb_outputs : T.kind -> pin_values -> pin_values
(** Outputs of a combinational micro component.  Raises on sequential
    kinds, macros and instances. *)

val next_state : T.kind -> state:int -> pin_values -> int
(** Next register contents of a sequential micro component after a clock
    edge.  Priority: SET > RST > not-EN (hold) > function. *)

val seq_outputs : T.kind -> state:int -> pin_values -> pin_values
(** Present outputs of a sequential micro component. *)

val macro_comb_outputs : Milo_library.Macro.t -> pin_values -> pin_values
val macro_next_state : Milo_library.Macro.t -> state:int -> pin_values -> int
val macro_seq_outputs :
  Milo_library.Macro.t -> state:int -> pin_values -> pin_values
