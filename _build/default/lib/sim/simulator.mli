(** Levelized logic simulation of mixed microarchitecture / macro
    designs with an implicit global clock. *)

module D = Milo_netlist.Design

type env = { find_macro : string -> Milo_library.Macro.t }

val env_of_techs : Milo_library.Technology.t list -> env
(** Macro lookup across several libraries (first match wins). *)

val resolver_of_env : env -> D.resolver

type t

val create : env -> D.t -> t
(** All sequential state starts at zero. *)

val reset : t -> unit
val set_state : t -> int -> int -> unit
val get_state : t -> int -> int option

exception Combinational_loop of string list
(** Component names that never settled. *)

val settle : t -> (string * bool) list -> (int, bool) Hashtbl.t
(** Evaluate all combinational logic under the given input-port
    assignment; returns net values.  Undriven nets read as [false]. *)

val outputs : t -> (string * bool) list -> (string * bool) list
(** Output-port values under the given inputs (no clock edge). *)

val step : t -> (string * bool) list -> unit
(** Apply one synchronous clock edge. *)

val net_value : t -> int -> bool option
(** Value of a net in the most recent [settle]. *)
