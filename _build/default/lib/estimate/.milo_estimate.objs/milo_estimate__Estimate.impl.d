lib/estimate/estimate.ml: Float List Milo_library Milo_netlist Printf
