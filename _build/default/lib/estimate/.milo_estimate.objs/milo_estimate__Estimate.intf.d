lib/estimate/estimate.mli: Milo_library Milo_netlist
