(* Elaboration: structural VHDL AST -> MILO netlist.

   Component names map to the Figure 12 microarchitecture components;
   generics carry their parameters; port-map formals are the component's
   pin groups in lower case ("a" for the A0..A(n-1) bus, "d0" for a
   multiplexor's first data bus, "cin", "q", ...).  Vector signals and
   ports elaborate to one net per bit, named <name><k> with k counted
   from the declared low index. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

exception Elaboration_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Elaboration_error s)) fmt

(* --- generic parsing --------------------------------------------------- *)

let as_int name = function
  | Ast.G_int n -> n
  | Ast.G_string s -> err "generic %s: expected integer, got %s" name s
  | Ast.G_bool _ -> err "generic %s: expected integer, got boolean" name

let as_bool name = function
  | Ast.G_bool b -> b
  | Ast.G_string "true" -> true
  | Ast.G_string "false" -> false
  | Ast.G_int 0 -> false
  | Ast.G_int _ -> true
  | Ast.G_string s -> err "generic %s: expected boolean, got %s" name s

let as_string name = function
  | Ast.G_string s -> s
  | Ast.G_int n -> string_of_int n
  | Ast.G_bool _ -> err "generic %s: expected string" name

let split_list s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let gate_fn_of = function
  | "and" -> T.And
  | "or" -> T.Or
  | "nand" -> T.Nand
  | "nor" -> T.Nor
  | "xor" -> T.Xor
  | "xnor" -> T.Xnor
  | "inv" | "not" -> T.Inv
  | "buf" -> T.Buf
  | other -> err "unknown gate function %s" other

let arith_fn_of = function
  | "add" -> T.Add
  | "sub" -> T.Sub
  | "inc" -> T.Inc
  | "dec" -> T.Dec
  | other -> err "unknown arithmetic function %s" other

let cmp_fn_of = function
  | "eq" -> T.Eq
  | "ne" -> T.Ne
  | "lt" -> T.Lt
  | "gt" -> T.Gt
  | "le" -> T.Le
  | "ge" -> T.Ge
  | other -> err "unknown comparator function %s" other

let reg_fn_of = function
  | "load" -> T.Load
  | "shl" | "shift_left" -> T.Shift_left
  | "shr" | "shift_right" -> T.Shift_right
  | other -> err "unknown register function %s" other

let count_fn_of = function
  | "load" -> T.Count_load
  | "up" -> T.Count_up
  | "down" -> T.Count_down
  | other -> err "unknown counter function %s" other

let control_of = function
  | "set" -> T.Set
  | "rst" | "reset" -> T.Reset
  | "en" | "enable" -> T.Enable
  | other -> err "unknown control %s" other

let kind_of_instance (inst : Ast.instantiation) : T.kind =
  let gs = inst.Ast.generics in
  let get name conv ~default =
    match List.assoc_opt name gs with Some v -> conv name v | None -> default
  in
  let bits = get "bits" as_int ~default:1 in
  match inst.Ast.inst_component with
  | "gate" ->
      let fn = gate_fn_of (get "function" as_string ~default:"and") in
      T.Gate (fn, get "inputs" as_int ~default:2)
  | "multiplexor" | "mux" ->
      T.Multiplexor
        {
          bits;
          inputs = get "inputs" as_int ~default:2;
          enable = get "enable" as_bool ~default:false;
        }
  | "decoder" ->
      T.Decoder { bits; enable = get "enable" as_bool ~default:false }
  | "comparator" ->
      T.Comparator
        {
          bits;
          fns = List.map cmp_fn_of (split_list (get "fns" as_string ~default:"eq"));
        }
  | "logic_unit" ->
      T.Logic_unit
        {
          bits;
          fn = gate_fn_of (get "function" as_string ~default:"and");
          inputs = get "inputs" as_int ~default:2;
        }
  | "arith_unit" | "alu" ->
      T.Arith_unit
        {
          bits;
          fns = List.map arith_fn_of (split_list (get "fns" as_string ~default:"add"));
          mode =
            (match get "mode" as_string ~default:"ripple" with
            | "ripple" -> T.Ripple
            | "cla" | "lookahead" | "carry_lookahead" -> T.Lookahead
            | other -> err "unknown carry mode %s" other);
        }
  | "register" | "reg" ->
      T.Register
        {
          bits;
          kind =
            (match get "type" as_string ~default:"edge" with
            | "edge" | "edge_triggered" -> T.Edge_triggered
            | "latch" | "level" -> T.Latch
            | other -> err "unknown register type %s" other);
          fns = List.map reg_fn_of (split_list (get "fns" as_string ~default:"load"));
          controls =
            List.map control_of (split_list (get "controls" as_string ~default:""));
          inverting = get "inverting" as_bool ~default:false;
        }
  | "counter" ->
      T.Counter
        {
          bits;
          fns = List.map count_fn_of (split_list (get "fns" as_string ~default:"up"));
          controls =
            List.map control_of (split_list (get "controls" as_string ~default:""));
        }
  | other -> err "unknown component %s (instance %s)" other inst.Ast.inst_label

(* --- pin groups --------------------------------------------------------- *)

(* Split a pin name into its formal group and bus offset:
   "A3" -> ("a", 3); "D1_2" -> ("d1", 2); "CIN" -> ("cin", scalar). *)
let formal_of_pin pin =
  let len = String.length pin in
  let digits_at i =
    let rec go j = if j < len && pin.[j] >= '0' && pin.[j] <= '9' then go (j + 1) else j in
    go i
  in
  match String.index_opt pin '_' with
  | Some u
    when u + 1 < len
         && digits_at (u + 1) = len
         && u > 0
         && pin.[u - 1] >= '0'
         && pin.[u - 1] <= '9' ->
      ( String.lowercase_ascii (String.sub pin 0 u),
        Some (int_of_string (String.sub pin (u + 1) (len - u - 1))) )
  | Some _ | None ->
      (* trailing digits form the index, unless the whole tail is the
         pin itself (e.g. CIN has no digits) *)
      let rec first_digit i =
        if i >= len then len
        else if pin.[i] >= '0' && pin.[i] <= '9' && digits_at i = len then i
        else first_digit (i + 1)
      in
      let fd = first_digit 0 in
      if fd = len then (String.lowercase_ascii pin, None)
      else
        ( String.lowercase_ascii (String.sub pin 0 fd),
          Some (int_of_string (String.sub pin fd (len - fd))) )

(* All pins of a kind grouped by formal: formal -> (pin, offset) list
   sorted by offset. *)
let pin_groups kind =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (pin, _) ->
      let formal, idx = formal_of_pin pin in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl formal) in
      Hashtbl.replace tbl formal ((pin, idx) :: prev))
    (T.pins_of_kind kind);
  Hashtbl.fold
    (fun formal pins acc ->
      let sorted =
        List.sort
          (fun (_, a) (_, b) -> compare (Option.value ~default:0 a) (Option.value ~default:0 b))
          pins
      in
      (formal, List.map fst sorted) :: acc)
    tbl []

(* Special case: a 1-input gate's pins are A1,Y; "a" must also accept a
   scalar actual even though the pin carries an index.  Handled by bus
   widths below. *)

(* --- elaboration -------------------------------------------------------- *)

type bus = { nets : int array }  (* index 0 = low bit *)

let elaborate (unit_ : Ast.design_unit) : D.t =
  let d = D.create unit_.Ast.entity_name in
  let scalars : (string, bus) Hashtbl.t = Hashtbl.create 32 in
  let declare name ty mk =
    if Hashtbl.mem scalars name then err "duplicate name %s" name;
    let w = Ast.width_of ty in
    let nets =
      Array.init w (fun k ->
          mk (if w = 1 && ty = Ast.Bit_t then name else Printf.sprintf "%s%d" name k))
    in
    Hashtbl.replace scalars name { nets }
  in
  (* entity ports *)
  List.iter
    (fun (p : Ast.port_decl) ->
      let dir = match p.Ast.port_dir with Ast.In -> T.Input | Ast.Out -> T.Output in
      declare p.Ast.port_name p.Ast.port_type (fun n -> D.add_port d n dir))
    unit_.Ast.ports;
  (* signals *)
  List.iter
    (fun (s : Ast.signal_decl) ->
      declare s.Ast.sig_name s.Ast.sig_type (fun n -> D.new_net ~name:n d))
    unit_.Ast.architecture.Ast.signals;
  let consts : (bool, int) Hashtbl.t = Hashtbl.create 2 in
  let const_net b =
    match Hashtbl.find_opt consts b with
    | Some nid -> nid
    | None ->
        let cid = D.add_comp d (T.Constant (if b then T.Vdd else T.Vss)) in
        let nid = D.new_net ~name:(if b then "vdd" else "vss") d in
        D.connect d cid "Y" nid;
        Hashtbl.replace consts b nid;
        nid
  in
  let lookup name =
    match Hashtbl.find_opt scalars name with
    | Some b -> b
    | None -> err "unknown signal or port %s" name
  in
  (* actual -> net array of the requested width *)
  let actual_nets ~width (a : Ast.actual) =
    match a with
    | Ast.A_open -> None
    | Ast.A_bit b ->
        if width <> 1 then err "bit literal bound to a %d-bit formal" width;
        Some [| const_net b |]
    | Ast.A_bits s ->
        if String.length s <> width then
          err "bit string \"%s\" bound to a %d-bit formal" s width;
        (* MSB first in source *)
        Some
          (Array.init width (fun k -> const_net (s.[width - 1 - k] = '1')))
    | Ast.A_signal name ->
        let b = lookup name in
        if Array.length b.nets <> width then
          err "%s is %d bits, formal expects %d" name (Array.length b.nets) width;
        Some b.nets
    | Ast.A_indexed (name, i) ->
        if width <> 1 then err "%s(%d) bound to a %d-bit formal" name i width;
        let b = lookup name in
        let k = i - 0 in
        (* normalize by declared low index *)
        let low =
          (* find the declaration to know the low bound *)
          let from_ports =
            List.find_opt (fun (p : Ast.port_decl) -> p.Ast.port_name = name) unit_.Ast.ports
          in
          match from_ports with
          | Some p -> Ast.low_of p.Ast.port_type
          | None -> (
              match
                List.find_opt
                  (fun (s : Ast.signal_decl) -> s.Ast.sig_name = name)
                  unit_.Ast.architecture.Ast.signals
              with
              | Some s -> Ast.low_of s.Ast.sig_type
              | None -> 0)
        in
        let k = k - low in
        if k < 0 || k >= Array.length b.nets then
          err "%s(%d) out of range" name i;
        Some [| b.nets.(k) |]
  in
  (* instances *)
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.S_instance inst ->
          let kind = kind_of_instance inst in
          let cid = D.add_comp ~name:inst.Ast.inst_label d kind in
          let groups = pin_groups kind in
          List.iter
            (fun (formal, a) ->
              match List.assoc_opt formal groups with
              | None ->
                  err "instance %s: component %s has no formal %s"
                    inst.Ast.inst_label (T.kind_name kind) formal
              | Some pins -> (
                  match actual_nets ~width:(List.length pins) a with
                  | None -> ()
                  | Some nets ->
                      List.iteri
                        (fun k pin -> D.connect d cid pin nets.(k))
                        pins))
            inst.Ast.port_map
      | Ast.S_assign _ -> ())
    unit_.Ast.architecture.Ast.statements;
  (* concurrent assignments: per-bit gates/buffers *)
  let assign (a : Ast.assignment) =
    let tgt_bus = lookup a.Ast.target in
    let tgt =
      match a.Ast.target_index with
      | None -> tgt_bus.nets
      | Some i ->
          let k = i in
          if k < 0 || k >= Array.length tgt_bus.nets then
            err "%s(%d) out of range" a.Ast.target i;
          [| tgt_bus.nets.(k) |]
    in
    let w = Array.length tgt in
    let operand x =
      match actual_nets ~width:w x with
      | Some nets -> nets
      | None -> err "open is not a valid assignment operand"
    in
    let build fn (operands : int array list) =
      Array.iteri
        (fun k out ->
          let cid = D.add_comp d (T.Gate (fn, List.length operands)) in
          List.iteri
            (fun i nets ->
              D.connect d cid (Printf.sprintf "A%d" (i + 1)) nets.(k))
            operands;
          D.connect d cid "Y" out)
        tgt
    in
    match a.Ast.value with
    | Ast.E_operand x -> build T.Buf [ operand x ]
    | Ast.E_not x -> build T.Inv [ operand x ]
    | Ast.E_gate (op, xs) -> build (gate_fn_of op) (List.map operand xs)
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.S_assign a -> assign a
      | Ast.S_instance _ -> ())
    unit_.Ast.architecture.Ast.statements;
  d

let design_of_string src = elaborate (Parser.of_string src)
let design_of_file path = elaborate (Parser.of_file path)
