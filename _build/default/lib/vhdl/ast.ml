(* AST for the structural VHDL subset MILO accepts as design entry
   (the paper's Figure 11 lists a VHDL compiler beside schematic
   capture).

   Supported:
     entity NAME is port ( name : in|out bit | bit_vector(H downto L); ... ); end [NAME];
     architecture NAME of NAME is
       signal name : bit | bit_vector(H downto L);
       ...
     begin
       label : COMPONENT generic map (g => v, ...) port map (f => actual, ...);
       signal <= expr;            -- not/and/or/nand/nor/xor/xnor over operands
     end [NAME];

   Components: gate, multiplexor, decoder, comparator, logic_unit,
   arith_unit, register, counter (generics mirror Figure 12's
   parameters).  Actuals: signal, signal(i), '0', '1', "0101" (MSB
   first), open. *)

type direction = In | Out

type vhdl_type = Bit_t | Vector_t of int * int  (* high, low *)

type port_decl = { port_name : string; port_dir : direction; port_type : vhdl_type }

type signal_decl = { sig_name : string; sig_type : vhdl_type }

type actual =
  | A_signal of string
  | A_indexed of string * int
  | A_bit of bool
  | A_bits of string  (* MSB first, as written *)
  | A_open

type generic_value = G_int of int | G_string of string | G_bool of bool

type instantiation = {
  inst_label : string;
  inst_component : string;
  generics : (string * generic_value) list;
  port_map : (string * actual) list;
}

type expr =
  | E_operand of actual
  | E_not of actual
  | E_gate of string * actual list  (* and/or/nand/nor/xor/xnor *)

type assignment = { target : string; target_index : int option; value : expr }

type statement = S_instance of instantiation | S_assign of assignment

type architecture = {
  arch_name : string;
  arch_entity : string;
  signals : signal_decl list;
  statements : statement list;
}

type design_unit = {
  entity_name : string;
  ports : port_decl list;
  architecture : architecture;
}

let width_of = function Bit_t -> 1 | Vector_t (h, l) -> abs (h - l) + 1
let low_of = function Bit_t -> 0 | Vector_t (h, l) -> min h l
