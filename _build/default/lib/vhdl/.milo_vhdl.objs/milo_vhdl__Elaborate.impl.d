lib/vhdl/elaborate.ml: Array Ast Hashtbl List Milo_netlist Option Parser Printf String
