lib/vhdl/ast.ml:
