lib/vhdl/elaborate.mli: Ast Milo_netlist
