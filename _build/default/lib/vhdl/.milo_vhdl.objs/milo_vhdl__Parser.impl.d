lib/vhdl/parser.ml: Ast Lexer List Printf
