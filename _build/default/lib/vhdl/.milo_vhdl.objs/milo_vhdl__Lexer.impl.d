lib/vhdl/lexer.ml: Printf String
