(* Recursive-descent parser for the structural VHDL subset (see Ast). *)

exception Parse_error of int * string

let fail lex fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Lexer.line lex, s))) fmt

let expect lex tok =
  let got, line = Lexer.next lex in
  if got <> tok then
    raise
      (Parse_error
         ( line,
           Printf.sprintf "expected %s, got %s" (Lexer.token_name tok)
             (Lexer.token_name got) ))

let expect_ident lex =
  match Lexer.next lex with
  | Lexer.Ident s, _ -> s
  | got, line ->
      raise
        (Parse_error
           (line, Printf.sprintf "expected identifier, got %s" (Lexer.token_name got)))

let expect_keyword lex kw =
  let s = expect_ident lex in
  if s <> kw then fail lex "expected keyword %s, got %s" kw s

let expect_int lex =
  match Lexer.next lex with
  | Lexer.Int n, _ -> n
  | got, line ->
      raise
        (Parse_error
           (line, Printf.sprintf "expected integer, got %s" (Lexer.token_name got)))

(* bit | bit_vector(H downto L) | bit_vector(L to H) *)
let parse_type lex =
  match expect_ident lex with
  | "bit" -> Ast.Bit_t
  | "bit_vector" | "std_logic_vector" ->
      expect lex Lexer.Lparen;
      let a = expect_int lex in
      let dir = expect_ident lex in
      let b = expect_int lex in
      expect lex Lexer.Rparen;
      (match dir with
      | "downto" -> Ast.Vector_t (a, b)
      | "to" -> Ast.Vector_t (b, a)
      | other -> fail lex "expected downto/to, got %s" other)
  | "std_logic" -> Ast.Bit_t
  | other -> fail lex "unknown type %s" other

let parse_direction lex =
  match expect_ident lex with
  | "in" -> Ast.In
  | "out" -> Ast.Out
  | other -> fail lex "expected in/out, got %s" other

(* port ( a, b : in bit; c : out bit_vector(3 downto 0) ); *)
let parse_ports lex =
  expect_keyword lex "port";
  expect lex Lexer.Lparen;
  let decls = ref [] in
  let rec group () =
    let names = ref [ expect_ident lex ] in
    let rec more_names () =
      if Lexer.peek lex = Lexer.Comma then begin
        ignore (Lexer.next lex);
        names := expect_ident lex :: !names;
        more_names ()
      end
    in
    more_names ();
    expect lex Lexer.Colon;
    let dir = parse_direction lex in
    let ty = parse_type lex in
    List.iter
      (fun n ->
        decls :=
          { Ast.port_name = n; port_dir = dir; port_type = ty } :: !decls)
      (List.rev !names);
    match Lexer.next lex with
    | Lexer.Semi, _ -> group ()
    | Lexer.Rparen, _ -> ()
    | got, line ->
        raise
          (Parse_error
             (line, Printf.sprintf "expected ; or ), got %s" (Lexer.token_name got)))
  in
  group ();
  expect lex Lexer.Semi;
  List.rev !decls

let parse_entity lex =
  expect_keyword lex "entity";
  let name = expect_ident lex in
  expect_keyword lex "is";
  let ports = parse_ports lex in
  expect_keyword lex "end";
  (match Lexer.peek lex with
  | Lexer.Ident s when s = name || s = "entity" -> (
      ignore (Lexer.next lex);
      match Lexer.peek lex with
      | Lexer.Ident s2 when s2 = name -> ignore (Lexer.next lex)
      | _ -> ())
  | _ -> ());
  expect lex Lexer.Semi;
  (name, ports)

let parse_actual lex =
  match Lexer.next lex with
  | Lexer.Bit b, _ -> Ast.A_bit b
  | Lexer.Bits s, _ -> Ast.A_bits s
  | Lexer.Ident "open", _ -> Ast.A_open
  | Lexer.Ident s, _ ->
      if Lexer.peek lex = Lexer.Lparen then begin
        ignore (Lexer.next lex);
        let i = expect_int lex in
        expect lex Lexer.Rparen;
        Ast.A_indexed (s, i)
      end
      else Ast.A_signal s
  | got, line ->
      raise
        (Parse_error
           (line, Printf.sprintf "expected actual, got %s" (Lexer.token_name got)))

let parse_generic_value lex =
  match Lexer.next lex with
  | Lexer.Int n, _ -> Ast.G_int n
  | Lexer.Bits s, _ -> Ast.G_string s
  | Lexer.Ident "true", _ -> Ast.G_bool true
  | Lexer.Ident "false", _ -> Ast.G_bool false
  | Lexer.Ident s, _ -> Ast.G_string s
  | got, line ->
      raise
        (Parse_error
           ( line,
             Printf.sprintf "expected generic value, got %s" (Lexer.token_name got) ))

(* name => value pairs inside parentheses *)
let parse_map lex parse_value =
  expect lex Lexer.Lparen;
  let items = ref [] in
  let rec go () =
    let formal = expect_ident lex in
    expect lex Lexer.Arrow;
    let v = parse_value lex in
    items := (formal, v) :: !items;
    match Lexer.next lex with
    | Lexer.Comma, _ -> go ()
    | Lexer.Rparen, _ -> ()
    | got, line ->
        raise
          (Parse_error
             (line, Printf.sprintf "expected , or ), got %s" (Lexer.token_name got)))
  in
  go ();
  List.rev !items

(* label : component [generic map (...)] port map (...); *)
let parse_instance lex label =
  let comp = expect_ident lex in
  let generics =
    if Lexer.peek lex = Lexer.Ident "generic" then begin
      ignore (Lexer.next lex);
      expect_keyword lex "map";
      parse_map lex parse_generic_value
    end
    else []
  in
  expect_keyword lex "port";
  expect_keyword lex "map";
  let port_map = parse_map lex parse_actual in
  expect lex Lexer.Semi;
  {
    Ast.inst_label = label;
    inst_component = comp;
    generics;
    port_map;
  }

let gate_names = [ "and"; "or"; "nand"; "nor"; "xor"; "xnor" ]

(* target <= expr ;  where expr = actual | not actual |
   actual (and|or|...) actual [op actual ...] *)
let parse_assignment lex target target_index =
  let value =
    match Lexer.peek lex with
    | Lexer.Ident "not" ->
        ignore (Lexer.next lex);
        Ast.E_not (parse_actual lex)
    | _ -> (
        let first = parse_actual lex in
        match Lexer.peek lex with
        | Lexer.Ident op when List.mem op gate_names ->
            let operands = ref [ first ] in
            let rec more () =
              match Lexer.peek lex with
              | Lexer.Ident op' when op' = op ->
                  ignore (Lexer.next lex);
                  operands := parse_actual lex :: !operands;
                  more ()
              | Lexer.Ident op' when List.mem op' gate_names ->
                  fail lex "mixed operators without parentheses (%s vs %s)" op op'
              | _ -> ()
            in
            more ();
            Ast.E_gate (op, List.rev !operands)
        | _ -> Ast.E_operand first)
  in
  expect lex Lexer.Semi;
  { Ast.target; target_index; value }

let parse_architecture lex entity_name =
  expect_keyword lex "architecture";
  let arch_name = expect_ident lex in
  expect_keyword lex "of";
  let of_entity = expect_ident lex in
  if of_entity <> entity_name then
    fail lex "architecture of %s does not match entity %s" of_entity entity_name;
  expect_keyword lex "is";
  (* signal declarations *)
  let signals = ref [] in
  let rec decls () =
    match Lexer.peek lex with
    | Lexer.Ident "signal" ->
        ignore (Lexer.next lex);
        let names = ref [ expect_ident lex ] in
        let rec more () =
          if Lexer.peek lex = Lexer.Comma then begin
            ignore (Lexer.next lex);
            names := expect_ident lex :: !names;
            more ()
          end
        in
        more ();
        expect lex Lexer.Colon;
        let ty = parse_type lex in
        expect lex Lexer.Semi;
        List.iter
          (fun n -> signals := { Ast.sig_name = n; sig_type = ty } :: !signals)
          (List.rev !names);
        decls ()
    | Lexer.Ident "begin" -> ignore (Lexer.next lex)
    | got -> fail lex "expected signal or begin, got %s" (Lexer.token_name got)
  in
  decls ();
  (* statements until end *)
  let statements = ref [] in
  let rec stmts () =
    match Lexer.next lex with
    | Lexer.Ident "end", _ ->
        (match Lexer.peek lex with
        | Lexer.Ident s when s = arch_name || s = "architecture" -> (
            ignore (Lexer.next lex);
            match Lexer.peek lex with
            | Lexer.Ident s2 when s2 = arch_name -> ignore (Lexer.next lex)
            | _ -> ())
        | _ -> ());
        expect lex Lexer.Semi
    | Lexer.Ident name, _ -> (
        (* either "label : component ..." or "target <= expr" *)
        match Lexer.next lex with
        | Lexer.Colon, _ ->
            statements := Ast.S_instance (parse_instance lex name) :: !statements;
            stmts ()
        | Lexer.Assign, _ ->
            statements := Ast.S_assign (parse_assignment lex name None) :: !statements;
            stmts ()
        | Lexer.Lparen, _ ->
            let i = expect_int lex in
            expect lex Lexer.Rparen;
            expect lex Lexer.Assign;
            statements :=
              Ast.S_assign (parse_assignment lex name (Some i)) :: !statements;
            stmts ()
        | got, line ->
            raise
              (Parse_error
                 ( line,
                   Printf.sprintf "expected :, <= or (index), got %s"
                     (Lexer.token_name got) )))
    | got, line ->
        raise
          (Parse_error
             (line, Printf.sprintf "expected statement, got %s" (Lexer.token_name got)))
  in
  stmts ();
  {
    Ast.arch_name;
    arch_entity = entity_name;
    signals = List.rev !signals;
    statements = List.rev !statements;
  }

let parse_design_unit lex =
  let entity_name, ports = parse_entity lex in
  let architecture = parse_architecture lex entity_name in
  { Ast.entity_name; ports; architecture }

let of_string src =
  let lex = Lexer.create src in
  let unit_ = parse_design_unit lex in
  (match Lexer.next lex with
  | Lexer.Eof, _ -> ()
  | got, line ->
      raise
        (Parse_error
           ( line,
             Printf.sprintf "trailing input: %s" (Lexer.token_name got) )));
  unit_

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  of_string src
