(** Elaboration of the structural VHDL subset into a MILO netlist: the
    VHDL-compiler input path of the paper's Figure 11. *)

exception Elaboration_error of string

val elaborate : Ast.design_unit -> Milo_netlist.Design.t
val design_of_string : string -> Milo_netlist.Design.t
val design_of_file : string -> Milo_netlist.Design.t
