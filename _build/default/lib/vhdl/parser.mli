(** Recursive-descent parser for the structural VHDL subset (grammar in
    {!Ast}). *)

exception Parse_error of int * string
(** Line number and message. *)

val of_string : string -> Ast.design_unit
val of_file : string -> Ast.design_unit
