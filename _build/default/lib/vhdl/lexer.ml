(* Lexer for the structural VHDL subset (see Ast). *)

type token =
  | Ident of string  (* lower-cased *)
  | Int of int
  | Bit of bool  (* '0' / '1' *)
  | Bits of string  (* "0101" bit-string literal *)
  | Arrow  (* => *)
  | Assign  (* <= *)
  | Lparen
  | Rparen
  | Semi
  | Colon
  | Comma
  | Eof

exception Lex_error of int * string

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable peeked : (token * int) option;
}

let create src = { src; pos = 0; line = 1; peeked = None }

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let rec skip_ws t =
  if t.pos >= String.length t.src then ()
  else
    match t.src.[t.pos] with
    | ' ' | '\t' | '\r' ->
        t.pos <- t.pos + 1;
        skip_ws t
    | '\n' ->
        t.pos <- t.pos + 1;
        t.line <- t.line + 1;
        skip_ws t
    | '-'
      when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '-' ->
        (* comment to end of line *)
        while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
          t.pos <- t.pos + 1
        done;
        skip_ws t
    | _ -> ()

let read_token t =
  skip_ws t;
  let line = t.line in
  if t.pos >= String.length t.src then (Eof, line)
  else
    let c = t.src.[t.pos] in
    let adv n tok =
      t.pos <- t.pos + n;
      (tok, line)
    in
    match c with
    | '(' -> adv 1 Lparen
    | ')' -> adv 1 Rparen
    | ';' -> adv 1 Semi
    | ',' -> adv 1 Comma
    | ':' -> adv 1 Colon
    | '=' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '>' ->
        adv 2 Arrow
    | '<' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '=' ->
        adv 2 Assign
    | '\'' ->
        if t.pos + 2 < String.length t.src && t.src.[t.pos + 2] = '\'' then
          match t.src.[t.pos + 1] with
          | '0' -> adv 3 (Bit false)
          | '1' -> adv 3 (Bit true)
          | other ->
              raise (Lex_error (line, Printf.sprintf "bad bit literal '%c'" other))
        else raise (Lex_error (line, "unterminated character literal"))
    | '"' ->
        let e = ref (t.pos + 1) in
        while !e < String.length t.src && t.src.[!e] <> '"' do
          incr e
        done;
        if !e >= String.length t.src then
          raise (Lex_error (line, "unterminated string literal"));
        let s = String.sub t.src (t.pos + 1) (!e - t.pos - 1) in
        t.pos <- !e + 1;
        (Bits s, line)
    | '0' .. '9' ->
        let e = ref t.pos in
        while !e < String.length t.src && t.src.[!e] >= '0' && t.src.[!e] <= '9' do
          incr e
        done;
        let n = int_of_string (String.sub t.src t.pos (!e - t.pos)) in
        t.pos <- !e;
        (Int n, line)
    | _ when is_ident_char c ->
        let e = ref t.pos in
        while !e < String.length t.src && is_ident_char t.src.[!e] do
          incr e
        done;
        let s = String.lowercase_ascii (String.sub t.src t.pos (!e - t.pos)) in
        t.pos <- !e;
        (Ident s, line)
    | other -> raise (Lex_error (line, Printf.sprintf "unexpected character %c" other))

let next t =
  match t.peeked with
  | Some (tok, line) ->
      t.peeked <- None;
      (tok, line)
  | None -> read_token t

let peek t =
  match t.peeked with
  | Some (tok, _) -> tok
  | None ->
      let tok, line = read_token t in
      t.peeked <- Some (tok, line);
      tok

let line t = match t.peeked with Some (_, l) -> l | None -> t.line

let token_name = function
  | Ident s -> Printf.sprintf "identifier %s" s
  | Int n -> Printf.sprintf "integer %d" n
  | Bit b -> Printf.sprintf "bit '%d'" (if b then 1 else 0)
  | Bits s -> Printf.sprintf "bit string \"%s\"" s
  | Arrow -> "=>"
  | Assign -> "<="
  | Lparen -> "("
  | Rparen -> ")"
  | Semi -> ";"
  | Colon -> ":"
  | Comma -> ","
  | Eof -> "end of file"
