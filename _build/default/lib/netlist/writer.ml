(* Textual netlist emission.  The format round-trips through [Parser] and
   stands in for the paper's schematic-capture / VHDL front end. *)

let kind_spec (k : Types.kind) =
  let open Types in
  let names f xs = String.concat "," (List.map f xs) in
  match k with
  | Gate (fn, n) -> Printf.sprintf "gate %s %d" (gate_fn_name fn) (gate_arity fn n)
  | Constant Vdd -> "const VDD"
  | Constant Vss -> "const VSS"
  | Multiplexor { bits; inputs; enable } ->
      Printf.sprintf "mux bits=%d inputs=%d enable=%d" bits inputs
        (if enable then 1 else 0)
  | Decoder { bits; enable } ->
      Printf.sprintf "dec bits=%d enable=%d" bits (if enable then 1 else 0)
  | Comparator { bits; fns } ->
      Printf.sprintf "cmp bits=%d fns=%s" bits (names cmp_fn_name fns)
  | Logic_unit { bits; fn; inputs } ->
      Printf.sprintf "lu bits=%d fn=%s inputs=%d" bits (gate_fn_name fn) inputs
  | Arith_unit { bits; fns; mode } ->
      Printf.sprintf "au bits=%d fns=%s mode=%s" bits (names arith_fn_name fns)
        (carry_mode_name mode)
  | Register { bits; kind; fns; controls; inverting } ->
      Printf.sprintf "reg bits=%d type=%s fns=%s controls=%s inverting=%d" bits
        (match kind with Latch -> "L" | Edge_triggered -> "E")
        (names reg_fn_name fns) (names control_name controls)
        (if inverting then 1 else 0)
  | Counter { bits; fns; controls } ->
      Printf.sprintf "cnt bits=%d fns=%s controls=%s" bits
        (names count_fn_name fns) (names control_name controls)
  | Macro m -> Printf.sprintf "macro %s" m
  | Instance i -> Printf.sprintf "inst %s" i

let endpoint d (cid, pin) =
  Printf.sprintf "%s.%s" (Design.comp d cid).Design.cname pin

let to_string d =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "design %s" (Design.name d);
  List.iter
    (fun (p, dir, _) ->
      line "port %s %s" (match dir with Types.Input -> "in" | Types.Output -> "out") p)
    (Design.ports d);
  List.iter
    (fun (c : Design.comp) -> line "comp %s %s" c.Design.cname (kind_spec c.Design.kind))
    (Design.comps d);
  List.iter
    (fun (n : Design.net) ->
      let eps =
        (match n.Design.nport with Some (p, _) -> [ p ] | None -> [])
        @ List.map (endpoint d) (List.sort compare n.Design.npins)
      in
      if List.length eps >= 1 then line "join %s" (String.concat " " eps))
    (Design.nets d);
  Buffer.contents buf

let pp ppf d = Format.pp_print_string ppf (to_string d)

let summary d =
  Printf.sprintf "%s: %d components, %d nets, %d ports" (Design.name d)
    (Design.num_comps d) (Design.num_nets d)
    (List.length (Design.ports d))
