(** Structural statistics: kind histograms, fanout profile, and the
    two-input-equivalent gate count used for Figure 19's "Complexity"
    column. *)

type histogram = (string * int) list

val kind_histogram : Design.t -> histogram

val kind_gates : ?macro_gates:(string -> float) -> Types.kind -> float
(** Two-input-equivalent gate cost of a single component.  [macro_gates]
    rates library macros (defaults to 1 gate each). *)

val two_input_equiv : ?macro_gates:(string -> float) -> Design.t -> int
val fanout_histogram : ?resolve:Design.resolver -> Design.t -> (int * int) list
val max_fanout : ?resolve:Design.resolver -> Design.t -> int
val count_kind : Design.t -> (Types.kind -> bool) -> int
