lib/netlist/stats.mli: Design Types
