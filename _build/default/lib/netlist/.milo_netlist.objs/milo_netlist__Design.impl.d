lib/netlist/design.ml: Hashtbl List Printf Types
