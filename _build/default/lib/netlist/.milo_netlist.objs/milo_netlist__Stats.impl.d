lib/netlist/stats.ml: Design Float Hashtbl List Option Types
