lib/netlist/writer.ml: Buffer Design Format List Printf String Types
