lib/netlist/parser.mli: Design
