lib/netlist/types.ml: List Printf String
