lib/netlist/design.mli: Hashtbl Types
