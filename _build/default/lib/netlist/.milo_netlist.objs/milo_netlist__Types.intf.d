lib/netlist/types.mli:
