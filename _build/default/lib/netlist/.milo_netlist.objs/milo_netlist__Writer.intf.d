lib/netlist/writer.mli: Design Format Types
