lib/netlist/parser.ml: Design List Printf String Types
