(* Structural statistics over designs: kind histograms, fanout profile,
   and the two-input-equivalent gate count used for the "Complexity
   (gates)" column of the paper's Figure 19. *)

type histogram = (string * int) list

let kind_histogram d =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c : Design.comp) ->
      let k = Types.kind_name c.Design.kind in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    (Design.comps d);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

(* Two-input-equivalent gates of one component.  Micro components are
   rated by what their gate-level expansion costs; [macro_gates]
   translates library macros (the library knows its own complexity). *)
let rec kind_gates ?(macro_gates = fun _ -> 1.0) (k : Types.kind) =
  let open Types in
  let fbits b = float_of_int b in
  match k with
  | Gate (fn, n) -> (
      let n = gate_arity fn n in
      match fn with
      | Inv | Buf -> 0.5
      | Xor | Xnor -> float_of_int (3 * max 1 (n - 1))
      | And | Or | Nand | Nor -> float_of_int (max 1 (n - 1)))
  | Constant _ -> 0.0
  | Multiplexor { bits; inputs; enable } ->
      let per_bit = float_of_int (2 * inputs - 1) in
      (per_bit *. fbits bits) +. (if enable then 1.0 else 0.0)
  | Decoder { bits; enable } ->
      float_of_int ((1 lsl bits) * max 1 (bits - 1))
      +. (if enable then float_of_int (1 lsl bits) else 0.0)
  | Comparator { bits; fns } ->
      (fbits bits *. 3.0) +. (2.0 *. float_of_int (max 1 (List.length fns - 1)))
  | Logic_unit { bits; fn; inputs } ->
      fbits bits *. kind_gates ~macro_gates (Gate (fn, inputs))
  | Arith_unit { bits; fns; mode } ->
      let per_bit = match mode with Ripple -> 5.0 | Lookahead -> 7.0 in
      per_bit *. fbits bits *. float_of_int (max 1 (List.length fns))
  | Register { bits; fns; _ } ->
      fbits bits *. (4.0 +. float_of_int (List.length fns))
  | Counter { bits; _ } -> fbits bits *. 7.0
  | Macro m -> macro_gates m
  | Instance _ -> 0.0

let two_input_equiv ?macro_gates d =
  List.fold_left
    (fun acc (c : Design.comp) -> acc +. kind_gates ?macro_gates c.Design.kind)
    0.0 (Design.comps d)
  |> Float.round |> int_of_float

let fanout_histogram ?resolve d =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (n : Design.net) ->
      let f = Design.fanout ?resolve d n.Design.nid in
      Hashtbl.replace tbl f (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f)))
    (Design.nets d);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let max_fanout ?resolve d =
  List.fold_left
    (fun acc (n : Design.net) -> max acc (Design.fanout ?resolve d n.Design.nid))
    0 (Design.nets d)

let count_kind d pred =
  List.length (List.filter (fun (c : Design.comp) -> pred c.Design.kind) (Design.comps d))
