(** Textual netlist emission (round-trips through {!Parser}). *)

val kind_spec : Types.kind -> string
(** Parseable kind specification, e.g. ["gate AND 3"]. *)

val to_string : Design.t -> string
val pp : Format.formatter -> Design.t -> unit

val summary : Design.t -> string
(** One-line size summary. *)
