(* Shared vocabulary for the MILO netlist IR.

   Components are the parameterized microarchitecture elements of the
   paper's Figure 12 plus references to library macros and hierarchical
   design instances.  Pin names are fixed conventions derived from the
   component kind so that compilers, simulators and rules agree without
   consulting any external schema. *)

type dir = Input | Output

type level = Vdd | Vss

type gate_fn = And | Or | Nand | Nor | Xor | Xnor | Inv | Buf

type arith_fn = Add | Sub | Inc | Dec

type carry_mode = Ripple | Lookahead

type cmp_fn = Eq | Ne | Lt | Gt | Le | Ge

type reg_kind = Latch | Edge_triggered

type reg_fn = Load | Shift_left | Shift_right

type count_fn = Count_load | Count_up | Count_down

type control = Set | Reset | Enable

type kind =
  | Gate of gate_fn * int
  | Multiplexor of { bits : int; inputs : int; enable : bool }
  | Decoder of { bits : int; enable : bool }
  | Comparator of { bits : int; fns : cmp_fn list }
  | Logic_unit of { bits : int; fn : gate_fn; inputs : int }
  | Arith_unit of { bits : int; fns : arith_fn list; mode : carry_mode }
  | Register of {
      bits : int;
      kind : reg_kind;
      fns : reg_fn list;
      controls : control list;
      inverting : bool;
    }
  | Counter of { bits : int; fns : count_fn list; controls : control list }
  | Constant of level
  | Macro of string
  | Instance of string

let gate_fn_name = function
  | And -> "AND"
  | Or -> "OR"
  | Nand -> "NAND"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Inv -> "INV"
  | Buf -> "BUF"

let arith_fn_name = function
  | Add -> "ADD"
  | Sub -> "SUB"
  | Inc -> "INC"
  | Dec -> "DEC"

let cmp_fn_name = function
  | Eq -> "EQ"
  | Ne -> "NE"
  | Lt -> "LT"
  | Gt -> "GT"
  | Le -> "LE"
  | Ge -> "GE"

let control_name = function Set -> "SET" | Reset -> "RST" | Enable -> "EN"

let reg_fn_name = function
  | Load -> "LOAD"
  | Shift_left -> "SHL"
  | Shift_right -> "SHR"

let count_fn_name = function
  | Count_load -> "LOAD"
  | Count_up -> "UP"
  | Count_down -> "DOWN"

let carry_mode_name = function Ripple -> "RIPPLE" | Lookahead -> "CLA"

(* Number of gate inputs: Inv and Buf always have exactly one. *)
let gate_arity fn n = match fn with Inv | Buf -> 1 | _ -> n

let clog2 n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (p * 2) in
  if n <= 1 then 0 else go 0 1

let range_pins prefix n dir =
  List.init n (fun i -> (Printf.sprintf "%s%d" prefix i, dir))

let matrix_pins prefix rows cols dir =
  List.concat
    (List.init rows (fun i ->
         List.init cols (fun b -> (Printf.sprintf "%s%d_%d" prefix i b, dir))))

(* The pin interface of a micro-architecture component.  [Macro] and
   [Instance] pins live in the library / design database and must be
   resolved by the caller. *)
let pins_of_kind ?resolve kind =
  match kind with
  | Gate (fn, n) ->
      List.init (gate_arity fn n) (fun i ->
          (Printf.sprintf "A%d" (i + 1), Input))
      @ [ ("Y", Output) ]
  | Constant _ -> [ ("Y", Output) ]
  | Multiplexor { bits; inputs; enable } ->
      matrix_pins "D" inputs bits Input
      @ range_pins "S" (clog2 inputs) Input
      @ (if enable then [ ("EN", Input) ] else [])
      @ range_pins "Y" bits Output
  | Decoder { bits; enable } ->
      range_pins "A" bits Input
      @ (if enable then [ ("EN", Input) ] else [])
      @ range_pins "Y" (1 lsl bits) Output
  | Comparator { bits; fns } ->
      range_pins "A" bits Input @ range_pins "B" bits Input
      @ List.map (fun fn -> (cmp_fn_name fn, Output)) fns
  | Logic_unit { bits; fn = _; inputs } ->
      matrix_pins "D" inputs bits Input @ range_pins "Y" bits Output
  | Arith_unit { bits; fns; mode = _ } ->
      let needs_b = List.exists (fun f -> f = Add || f = Sub) fns in
      let sel = clog2 (List.length fns) in
      range_pins "A" bits Input
      @ (if needs_b then range_pins "B" bits Input else [])
      @ [ ("CIN", Input) ]
      @ range_pins "F" sel Input
      @ range_pins "S" bits Output
      @ [ ("COUT", Output) ]
  | Register { bits; kind = _; fns; controls; inverting = _ } ->
      let has f = List.mem f fns in
      let ctl c = List.mem c controls in
      (if has Load then range_pins "D" bits Input else [])
      @ (if has Shift_left then [ ("SIL", Input) ] else [])
      @ (if has Shift_right then [ ("SIR", Input) ] else [])
      @ range_pins "M" (clog2 (List.length fns)) Input
      @ [ ("CLK", Input) ]
      @ (if ctl Set then [ ("SET", Input) ] else [])
      @ (if ctl Reset then [ ("RST", Input) ] else [])
      @ (if ctl Enable then [ ("EN", Input) ] else [])
      @ range_pins "Q" bits Output
  | Counter { bits; fns; controls } ->
      let has f = List.mem f fns in
      let ctl c = List.mem c controls in
      (if has Count_load then range_pins "D" bits Input @ [ ("LD", Input) ]
       else [])
      @ (if has Count_up && has Count_down then [ ("UP", Input) ] else [])
      @ [ ("CLK", Input) ]
      @ (if ctl Set then [ ("SET", Input) ] else [])
      @ (if ctl Reset then [ ("RST", Input) ] else [])
      @ (if ctl Enable then [ ("EN", Input) ] else [])
      @ range_pins "Q" bits Output
      @ [ ("COUT", Output) ]
  | Macro name | Instance name -> (
      match resolve with
      | Some f -> f kind name
      | None ->
          invalid_arg
            (Printf.sprintf "Types.pins_of_kind: unresolved reference %s" name)
      )

(* Sequential components break combinational timing/simulation paths. *)
let is_sequential_kind = function
  | Register _ | Counter _ -> true
  | Gate _ | Multiplexor _ | Decoder _ | Comparator _ | Logic_unit _
  | Arith_unit _ | Constant _ | Macro _ | Instance _ ->
      false

let kind_name = function
  | Gate (fn, n) -> Printf.sprintf "%s%d" (gate_fn_name fn) (gate_arity fn n)
  | Multiplexor { bits; inputs; enable } ->
      Printf.sprintf "MUX%d:1:%d%s" inputs bits (if enable then "E" else "")
  | Decoder { bits; enable } ->
      Printf.sprintf "DEC%d:%d%s" bits (1 lsl bits) (if enable then "E" else "")
  | Comparator { bits; fns } ->
      Printf.sprintf "CMP%d[%s]" bits
        (String.concat "," (List.map cmp_fn_name fns))
  | Logic_unit { bits; fn; inputs } ->
      Printf.sprintf "LU%d:%s%d" bits (gate_fn_name fn) inputs
  | Arith_unit { bits; fns; mode } ->
      Printf.sprintf "AU%d[%s]:%s" bits
        (String.concat "," (List.map arith_fn_name fns))
        (carry_mode_name mode)
  | Register { bits; kind; fns; controls; inverting } ->
      Printf.sprintf "REG%d:%s[%s][%s]%s" bits
        (match kind with Latch -> "L" | Edge_triggered -> "E")
        (String.concat "," (List.map reg_fn_name fns))
        (String.concat "," (List.map control_name controls))
        (if inverting then "N" else "")
  | Counter { bits; fns; controls } ->
      Printf.sprintf "CNT%d[%s][%s]" bits
        (String.concat "," (List.map count_fn_name fns))
        (String.concat "," (List.map control_name controls))
  | Constant Vdd -> "VDD"
  | Constant Vss -> "VSS"
  | Macro name -> name
  | Instance name -> Printf.sprintf "@%s" name
