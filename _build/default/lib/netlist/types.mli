(** Shared vocabulary for the MILO netlist IR: component kinds (the
    parameterized microarchitecture components of the paper's Figure 12),
    pin-name conventions and small helpers. *)

type dir = Input | Output

type level = Vdd | Vss

type gate_fn = And | Or | Nand | Nor | Xor | Xnor | Inv | Buf

type arith_fn = Add | Sub | Inc | Dec

type carry_mode = Ripple | Lookahead

type cmp_fn = Eq | Ne | Lt | Gt | Le | Ge

type reg_kind = Latch | Edge_triggered

type reg_fn = Load | Shift_left | Shift_right

type count_fn = Count_load | Count_up | Count_down

type control = Set | Reset | Enable

(** A component kind.  Micro-architecture kinds carry the parameters the
    paper's logic compilers accept; [Macro] references a library macro by
    name; [Instance] references a compiled sub-design in the design
    database (hierarchy). *)
type kind =
  | Gate of gate_fn * int  (** function and number of inputs *)
  | Multiplexor of { bits : int; inputs : int; enable : bool }
  | Decoder of { bits : int; enable : bool }
  | Comparator of { bits : int; fns : cmp_fn list }
  | Logic_unit of { bits : int; fn : gate_fn; inputs : int }
  | Arith_unit of { bits : int; fns : arith_fn list; mode : carry_mode }
  | Register of {
      bits : int;
      kind : reg_kind;
      fns : reg_fn list;
      controls : control list;
      inverting : bool;
    }
  | Counter of { bits : int; fns : count_fn list; controls : control list }
  | Constant of level
  | Macro of string
  | Instance of string

val gate_fn_name : gate_fn -> string
val arith_fn_name : arith_fn -> string
val cmp_fn_name : cmp_fn -> string
val control_name : control -> string
val reg_fn_name : reg_fn -> string
val count_fn_name : count_fn -> string
val carry_mode_name : carry_mode -> string

val gate_arity : gate_fn -> int -> int
(** [gate_arity fn n] is [n] except for [Inv]/[Buf], which always take 1. *)

val clog2 : int -> int
(** Ceiling log2; [clog2 1 = 0]. *)

val range_pins : string -> int -> dir -> (string * dir) list
(** [range_pins "A" 3 Input] is [A0; A1; A2], all inputs. *)

val matrix_pins : string -> int -> int -> dir -> (string * dir) list
(** [matrix_pins "D" inputs bits dir] is the [D<i>_<b>] pin matrix. *)

val pins_of_kind :
  ?resolve:(kind -> string -> (string * dir) list) ->
  kind ->
  (string * dir) list
(** Pin interface of a component kind, in canonical order.  [resolve] is
    consulted for [Macro] and [Instance] references; without it those
    raise [Invalid_argument]. *)

val is_sequential_kind : kind -> bool
(** True for registers and counters, which break combinational paths. *)

val kind_name : kind -> string
(** Compact printable name, e.g. ["AND3"], ["MUX2:1:4"], ["AU4[ADD]:CLA"]. *)
