(** The eight Figure 19 test circuits: designs 1-5 entered at the logic
    level with generic components, designs 6-8 at the microarchitecture
    level. *)

module D = Milo_netlist.Design

type case = {
  case_name : string;
  case_design : D.t;
  constraints : Milo.Constraints.t;
  paper_complexity : int;
  paper_delay_impr : float;
  paper_area_impr : float;
}

val design1 : unit -> case
val design2 : unit -> case
val design3 : unit -> case
val design4 : unit -> case
val design5 : unit -> case
val design6 : unit -> case
val design7 : unit -> case
val design8 : unit -> case

(** The naive Figure 14 adder+register accumulator (for the
    microarchitecture-critic experiment). *)
val accumulator : ?bits:int -> unit -> D.t
val all : unit -> case list
