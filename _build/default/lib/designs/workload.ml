(* Workload generators for the scaling / metarules / mapper benches:
   pseudo-random combinational logic over generic gates, reproducible by
   seed. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module B = Build

(* Random combinational network of roughly [gates] two-input-equivalent
   gates over [inputs] primary inputs; every sink-less net becomes an
   output.  The generator biases toward 2-input gates with occasional
   3-input ones and inverters — naive schematic style. *)
let random_logic ?(inputs = 8) ?(outputs = 4) ~gates ~seed () =
  let rng = Random.State.make [| seed |] in
  let b = B.start (Printf.sprintf "rand%d_%d" gates seed) in
  let ins = B.input_bus b "I" inputs in
  let pool = ref (Array.of_list ins) in
  let pick () = !pool.(Random.State.int rng (Array.length !pool)) in
  let push n = pool := Array.append !pool [| n |] in
  let budget = ref gates in
  while !budget > 0 do
    let choice = Random.State.int rng 10 in
    let n =
      if choice < 4 then begin
        budget := !budget - 1;
        B.gate b (if Random.State.bool rng then T.And else T.Or) [ pick (); pick () ]
      end
      else if choice < 6 then begin
        budget := !budget - 1;
        B.gate b (if Random.State.bool rng then T.Nand else T.Nor) [ pick (); pick () ]
      end
      else if choice < 8 then begin
        budget := !budget - 2;
        B.gate b T.And [ pick (); pick (); pick () ]
      end
      else if choice < 9 then begin
        budget := !budget - 3;
        B.gate b T.Xor [ pick (); pick () ]
      end
      else begin
        (* inverter chains give the cleanup rules something to find *)
        budget := !budget - 1;
        B.gate b T.Inv [ pick () ]
      end
    in
    push n
  done;
  (* Expose the last nets with no sinks as outputs (up to [outputs]),
     padding from the end of the pool. *)
  let resolve kind nm =
    match kind with
    | T.Macro _ ->
        (Milo_library.Technology.find b.B.lib nm).Milo_library.Macro.pins
    | T.Instance _ | T.Gate _ | T.Multiplexor _ | T.Decoder _
    | T.Comparator _ | T.Logic_unit _ | T.Arith_unit _ | T.Register _
    | T.Counter _ | T.Constant _ ->
        T.pins_of_kind kind
  in
  let sinkless =
    List.filter
      (fun (n : D.net) ->
        n.D.nport = None
        && D.fanout ~resolve b.B.design n.D.nid = 0
        && D.driver ~resolve b.B.design n.D.nid <> D.Src_none)
      (D.nets b.B.design)
  in
  let chosen =
    let rec take i = function
      | [] -> []
      | x :: rest -> if i = 0 then [] else x :: take (i - 1) rest
    in
    take outputs (List.rev sinkless)
  in
  List.iteri
    (fun i (n : D.net) ->
      let p = D.add_port b.B.design (Printf.sprintf "O%d" i) T.Output in
      B.expose b n.D.nid p)
    chosen;
  (* Any remaining sink-less nets keep their logic alive through one
     wide OR into a final output. *)
  let rest =
    List.filter
      (fun (n : D.net) ->
        n.D.nport = None
        && D.fanout ~resolve b.B.design n.D.nid = 0
        && D.driver ~resolve b.B.design n.D.nid <> D.Src_none
        && D.net_opt b.B.design n.D.nid <> None)
      (D.nets b.B.design)
  in
  (match rest with
  | [] -> ()
  | nets ->
      let rec or_tree = function
        | [] -> assert false
        | [ n ] -> n
        | n1 :: n2 :: r -> or_tree (B.gate b T.Or [ n1; n2 ] :: r)
      in
      let all = or_tree (List.map (fun (n : D.net) -> n.D.nid) nets) in
      let p = D.add_port b.B.design "OSUM" T.Output in
      B.expose b all p);
  B.finish b

(* A mux-rich design (MSI macros) where the table mapper's high-level
   entries beat gate-level covering (the E8 comparison). *)
let msi_rich ?(seed = 1) () =
  let rng = Random.State.make [| seed |] in
  let b = B.start (Printf.sprintf "msirich%d" seed) in
  let ins = B.input_bus b "I" 10 in
  let sels = B.input_bus b "S" 4 in
  let outs = B.output_bus b "O" 4 in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  List.iteri
    (fun i o ->
      let m = D.add_comp b.B.design ~name:(Printf.sprintf "m%d" i) (T.Macro "MUX4") in
      List.iter
        (fun j -> D.connect b.B.design m (Printf.sprintf "D%d" j) (pick ins))
        [ 0; 1; 2; 3 ];
      D.connect b.B.design m "S0" (List.nth sels (i mod 4));
      D.connect b.B.design m "S1" (List.nth sels ((i + 1) mod 4));
      let y = D.new_net b.B.design in
      D.connect b.B.design m "Y" y;
      let anded = B.gate b T.And [ y; pick ins ] in
      B.expose b anded o)
    outs;
  B.finish b
