(* Small helpers for constructing benchmark designs programmatically
   (the stand-in for schematic entry). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type t = {
  design : D.t;
  lib : Milo_library.Technology.t;
  set : Milo_compilers.Gate_comp.gate_set;
}

let start name =
  let lib = Milo_library.Generic.get () in
  {
    design = D.create name;
    lib;
    set = Milo_compilers.Gate_comp.generic_set lib;
  }

let input b name = D.add_port b.design name T.Input
let output b name = D.add_port b.design name T.Output

let input_bus b name width =
  List.init width (fun i -> D.add_port b.design (Printf.sprintf "%s%d" name i) T.Input)

let output_bus b name width =
  List.init width (fun i -> D.add_port b.design (Printf.sprintf "%s%d" name i) T.Output)

let gate b fn ins = Milo_compilers.Gate_comp.build b.design b.set fn ins
let vdd b = Milo_compilers.Gate_comp.add_const b.design b.set T.Vdd
let vss b = Milo_compilers.Gate_comp.add_const b.design b.set T.Vss

(* Add a micro component; returns functions to connect and read pins. *)
let comp b ?name kind =
  let cid = D.add_comp ?name b.design kind in
  cid

let pin b cid pname net = D.connect b.design cid pname net

let out_pin b cid pname =
  match D.connection b.design cid pname with
  | Some nid -> nid
  | None ->
      let nid = D.new_net b.design in
      D.connect b.design cid pname nid;
      nid

let pin_bus b cid prefix nets =
  List.iteri (fun i n -> pin b cid (Printf.sprintf "%s%d" prefix i) n) nets

let out_bus b cid prefix width =
  List.init width (fun i -> out_pin b cid (Printf.sprintf "%s%d" prefix i))

(* Drive an output port from an internal net. *)
let expose b net port_net =
  let resolve kind nm =
    match kind with
    | T.Macro _ -> (Milo_library.Technology.find b.lib nm).Milo_library.Macro.pins
    | T.Instance _ -> invalid_arg "Build.expose: instance"
    | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
    | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
    | T.Constant _ ->
        T.pins_of_kind kind
  in
  match D.driver ~resolve b.design net with
  | D.Src_comp (_, _) ->
      let pins = (D.net b.design net).D.npins in
      List.iter (fun (cid, pname) -> D.connect b.design cid pname port_net) pins;
      (match D.net_opt b.design net with
      | Some n when n.D.npins = [] && n.D.nport = None ->
          D.remove_net b.design net
      | Some _ | None -> ())
  | D.Src_port _ | D.Src_none ->
      (* Buffer a port-driven (or floating) net onto the output. *)
      let cid = D.add_comp b.design (T.Macro "BUF") in
      D.connect b.design cid "A0" net;
      D.connect b.design cid "Y" port_net

let expose_bus b nets ports = List.iter2 (fun n p -> expose b n p) nets ports
let finish b = b.design
