(* The ABADD example of Figures 16 and 18: a 4-bit adder feeding a 2:1
   multiplexor into a 4-bit shift register, with a timing constraint
   from input A to output C.  Compiling it exercises the
   register-compiler-calls-mux-compiler hierarchy (ADD4, MUX2:1:4,
   REG4, MUX2:1:1); optimizing it exercises the mux+flip-flop merges and
   the ripple->carry-lookahead tradeoff the paper walks through. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module B = Build

let design () =
  let b = B.start "ABADD" in
  let a = B.input_bus b "A" 4 in
  let x = B.input_bus b "B" 4 in
  let sel = B.input b "SEL" in
  let sin = B.input b "SIN" in
  let mode = B.input b "MODE" in
  let clk = B.input b "CLK" in
  let c = B.output_bus b "C" 4 in
  let add = B.comp b ~name:"add4"
      (T.Arith_unit { bits = 4; fns = [ T.Add ]; mode = T.Ripple }) in
  List.iteri (fun i n -> B.pin b add (Printf.sprintf "A%d" i) n) a;
  List.iteri (fun i n -> B.pin b add (Printf.sprintf "B%d" i) n) x;
  B.pin b add "CIN" (B.vss b);
  let sum = B.out_bus b add "S" 4 in
  let mux = B.comp b ~name:"mux"
      (T.Multiplexor { bits = 4; inputs = 2; enable = false }) in
  List.iteri (fun i n -> B.pin b mux (Printf.sprintf "D0_%d" i) n) sum;
  List.iteri (fun i n -> B.pin b mux (Printf.sprintf "D1_%d" i) n) x;
  B.pin b mux "S0" sel;
  let muxed = B.out_bus b mux "Y" 4 in
  let reg = B.comp b ~name:"reg4"
      (T.Register { bits = 4; kind = T.Edge_triggered;
                    fns = [ T.Load; T.Shift_right ]; controls = [];
                    inverting = false }) in
  List.iteri (fun i n -> B.pin b reg (Printf.sprintf "D%d" i) n) muxed;
  B.pin b reg "SIR" sin;
  B.pin b reg "M0" mode;
  B.pin b reg "CLK" clk;
  B.expose_bus b (B.out_bus b reg "Q" 4) c;
  B.finish b

let constraints = Milo.Constraints.make ~required_delay:6.5 ()
