(* The eight Figure 19 test circuits.

   The paper does not name its circuits; these synthetic equivalents
   match the published two-input-equivalent complexities (48, 52, 13,
   47, 18, 288, 442, 149) and the entry styles: designs 1-5 are entered
   at the logic level with generic components, designs 6-8 at the
   microarchitecture level with 4-15 compiler-generated components.
   Logic-level entries are deliberately naive (2-input gates, separate
   inverters) — the way a schematic would be drawn — leaving the
   optimizer the same room the paper's circuits gave it. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module B = Build

type case = {
  case_name : string;
  case_design : D.t;
  constraints : Milo.Constraints.t;
  paper_complexity : int;
  paper_delay_impr : float;  (* percent, Figure 19 *)
  paper_area_impr : float;
}

(* Design 1 (~48 gates): 4-to-16 address decoder with enable, drawn from
   1:2 decoders and 2-input AND gates. *)
let design1 () =
  let b = B.start "dec4x16" in
  let a = B.input_bus b "A" 4 in
  let en = B.input b "EN" in
  let y = B.output_bus b "Y" 16 in
  let inv = List.map (fun n -> B.gate b T.Inv [ n ]) a in
  let bit i j = if j land (1 lsl i) <> 0 then List.nth a i else List.nth inv i in
  List.iteri
    (fun j yj ->
      let t = B.gate b T.And [ bit 0 j; bit 1 j; bit 2 j; bit 3 j ] in
      let gated = B.gate b T.And [ t; en ] in
      B.expose b gated yj)
    y;
  {
    case_name = "1";
    case_design = B.finish b;
    constraints = Milo.Constraints.make ~required_delay:3.0 ();
    paper_complexity = 48;
    paper_delay_impr = 25.0;
    paper_area_impr = 25.0;
  }

(* Design 2 (~52 gates): 8-bit odd-parity generator/checker with a
   byte-equal comparator, all from 2-input gates. *)
let design2 () =
  let b = B.start "parity8" in
  let x = B.input_bus b "X" 8 in
  let yb = B.input_bus b "YB" 8 in
  let par = B.output b "PAR" in
  let eq = B.output b "EQ" in
  let rec xor_tree = function
    | [] -> B.vss b
    | [ n ] -> n
    | n1 :: n2 :: rest -> xor_tree (B.gate b T.Xor [ n1; n2 ] :: rest)
  in
  B.expose b (xor_tree x) par;
  let diffs = List.map2 (fun a c -> B.gate b T.Xor [ a; c ]) x yb in
  let ors =
    let rec tree = function
      | [] -> B.vss b
      | [ n ] -> n
      | n1 :: n2 :: rest -> tree (B.gate b T.Or [ n1; n2 ] :: rest)
    in
    tree diffs
  in
  B.expose b (B.gate b T.Inv [ ors ]) eq;
  {
    case_name = "2";
    case_design = B.finish b;
    constraints = Milo.Constraints.make ~required_delay:6.0 ();
    paper_complexity = 52;
    paper_delay_impr = 23.0;
    paper_area_impr = 17.0;
  }

(* Design 3 (~13 gates): single-bit ALU cell — sum, carry and a
   function-select mux from discrete gates. *)
let design3 () =
  let b = B.start "alucell" in
  let a = B.input b "A" and bb = B.input b "B" and cin = B.input b "CIN" in
  let sel = B.input b "SEL" in
  let y = B.output b "Y" and cout = B.output b "COUT" in
  let axb = B.gate b T.Xor [ a; bb ] in
  let sum = B.gate b T.Xor [ axb; cin ] in
  let c1 = B.gate b T.And [ a; bb ] in
  let c2 = B.gate b T.And [ axb; cin ] in
  B.expose b (B.gate b T.Or [ c1; c2 ]) cout;
  (* y = sel ? sum : (a AND b) from gates *)
  let nsel = B.gate b T.Inv [ sel ] in
  let t1 = B.gate b T.And [ sum; sel ] in
  let t2 = B.gate b T.And [ c1; nsel ] in
  B.expose b (B.gate b T.Or [ t1; t2 ]) y;
  {
    case_name = "3";
    case_design = B.finish b;
    constraints = Milo.Constraints.make ~required_delay:2.8 ();
    paper_complexity = 13;
    paper_delay_impr = 35.0;
    paper_area_impr = 14.0;
  }

(* Design 4 (~47 gates): 4-bit ripple-carry adder/subtractor with
   overflow detect, from discrete gates. *)
let design4 () =
  let b = B.start "addsub4" in
  let a = B.input_bus b "A" 4 in
  let x = B.input_bus b "B" 4 in
  let sub = B.input b "SUB" in
  let s = B.output_bus b "S" 4 in
  let cout = B.output b "COUT" in
  let ovf = B.output b "OVF" in
  let xs = List.map (fun n -> B.gate b T.Xor [ n; sub ]) x in
  let rec ripple carry acc carries = function
    | [] -> (List.rev acc, List.rev carries, carry)
    | (ai, bi) :: rest ->
        let axb = B.gate b T.Xor [ ai; bi ] in
        let sum = B.gate b T.Xor [ axb; carry ] in
        let c1 = B.gate b T.And [ ai; bi ] in
        let c2 = B.gate b T.And [ axb; carry ] in
        let nc = B.gate b T.Or [ c1; c2 ] in
        ripple nc (sum :: acc) (nc :: carries) rest
  in
  let sums, carries, final_c = ripple sub [] [] (List.combine a xs) in
  (* overflow = carry into msb XOR carry out (built before the carry net
     is merged into its output port) *)
  let c_in_msb = List.nth carries 2 in
  let ovf_net = B.gate b T.Xor [ c_in_msb; final_c ] in
  B.expose_bus b sums s;
  B.expose b final_c cout;
  B.expose b ovf_net ovf;
  {
    case_name = "4";
    case_design = B.finish b;
    constraints = Milo.Constraints.make ~required_delay:7.0 ();
    paper_complexity = 47;
    paper_delay_impr = 36.0;
    paper_area_impr = 38.0;
  }

(* Design 5 (~18 gates): 2-bit magnitude comparator from gates. *)
let design5 () =
  let b = B.start "cmp2gate" in
  let a = B.input_bus b "A" 2 in
  let x = B.input_bus b "B" 2 in
  let gt = B.output b "GT" and lt = B.output b "LT" and eq = B.output b "EQ" in
  let nb = List.map (fun n -> B.gate b T.Inv [ n ]) x in
  let na = List.map (fun n -> B.gate b T.Inv [ n ]) a in
  let eqbit i =
    B.gate b T.Inv [ B.gate b T.Xor [ List.nth a i; List.nth x i ] ]
  in
  let eq0 = eqbit 0 and eq1 = eqbit 1 in
  B.expose b (B.gate b T.And [ eq0; eq1 ]) eq;
  let gt1 = B.gate b T.And [ List.nth a 1; List.nth nb 1 ] in
  let gt0 = B.gate b T.And [ eq1; B.gate b T.And [ List.nth a 0; List.nth nb 0 ] ] in
  B.expose b (B.gate b T.Or [ gt1; gt0 ]) gt;
  let lt1 = B.gate b T.And [ List.nth na 1; List.nth x 1 ] in
  let lt0 = B.gate b T.And [ eq1; B.gate b T.And [ List.nth na 0; List.nth x 0 ] ] in
  B.expose b (B.gate b T.Or [ lt1; lt0 ]) lt;
  {
    case_name = "5";
    case_design = B.finish b;
    constraints = Milo.Constraints.make ~required_delay:2.6 ();
    paper_complexity = 18;
    paper_delay_impr = 19.0;
    paper_area_impr = 25.0;
  }

(* Design 6 (~288 gates, microarchitecture entry, 8 components): an
   8-bit accumulator datapath — ALU, operand mux, accumulator register,
   loop counter, limit comparator, mode decoder. *)
let design6 () =
  let b = B.start "datapath8" in
  let din = B.input_bus b "DIN" 8 in
  let imm = B.input_bus b "IMM" 8 in
  let sel_src = B.input b "SRC" in
  let fsel = B.input b "F" in
  let cin = B.input b "CIN" in
  let clk = B.input b "CLK" in
  let rst = B.input b "RST" in
  let ld = B.input b "LDACC" in
  let mode = B.input_bus b "MODE" 2 in
  let q = B.output_bus b "Q" 8 in
  let limit = B.output b "LIMIT" in
  let phase = B.output_bus b "PH" 4 in
  let cnt_q = B.output_bus b "CNT" 4 in
  (* operand mux: DIN vs IMM *)
  let mux = B.comp b ~name:"srcmux" (T.Multiplexor { bits = 8; inputs = 2; enable = false }) in
  List.iteri (fun i n -> B.pin b mux (Printf.sprintf "D0_%d" i) n) din;
  List.iteri (fun i n -> B.pin b mux (Printf.sprintf "D1_%d" i) n) imm;
  B.pin b mux "S0" sel_src;
  let opnd = B.out_bus b mux "Y" 8 in
  (* ALU: add/sub *)
  let alu = B.comp b ~name:"alu" (T.Arith_unit { bits = 8; fns = [ T.Add; T.Sub ]; mode = T.Ripple }) in
  let acc = B.comp b ~name:"acc"
      (T.Register { bits = 8; kind = T.Edge_triggered; fns = [ T.Load ];
                    controls = [ T.Reset; T.Enable ]; inverting = false }) in
  let acc_q = B.out_bus b acc "Q" 8 in
  List.iteri (fun i n -> B.pin b alu (Printf.sprintf "A%d" i) n) acc_q;
  List.iteri (fun i n -> B.pin b alu (Printf.sprintf "B%d" i) n) opnd;
  B.pin b alu "CIN" cin;
  B.pin b alu "F0" fsel;
  let alu_s = B.out_bus b alu "S" 8 in
  List.iteri (fun i n -> B.pin b acc (Printf.sprintf "D%d" i) n) alu_s;
  B.pin b acc "CLK" clk;
  B.pin b acc "RST" rst;
  B.pin b acc "EN" ld;
  (* loop counter + comparator against the immediate low nibble *)
  let cnt = B.comp b ~name:"cnt"
      (T.Counter { bits = 4; fns = [ T.Count_up ]; controls = [ T.Reset; T.Enable ] }) in
  B.pin b cnt "CLK" clk;
  B.pin b cnt "RST" rst;
  B.pin b cnt "EN" ld;
  let cq = B.out_bus b cnt "Q" 4 in
  let cmp = B.comp b ~name:"cmp" (T.Comparator { bits = 4; fns = [ T.Ge ] }) in
  List.iteri (fun i n -> B.pin b cmp (Printf.sprintf "A%d" i) n) cq;
  List.iteri (fun i n -> B.pin b cmp (Printf.sprintf "B%d" i) n)
    (List.filteri (fun i _ -> i < 4) imm);
  B.expose b (B.out_pin b cmp "GE") limit;
  (* mode decoder *)
  let dec = B.comp b ~name:"mdec" (T.Decoder { bits = 2; enable = false }) in
  List.iteri (fun i n -> B.pin b dec (Printf.sprintf "A%d" i) n) mode;
  B.expose_bus b (B.out_bus b dec "Y" 4) phase;
  B.expose_bus b acc_q q;
  B.expose_bus b cq cnt_q;
  {
    case_name = "6";
    case_design = B.finish b;
    constraints = Milo.Constraints.make ~required_delay:9.3 ();
    paper_complexity = 288;
    paper_delay_impr = 5.0;
    paper_area_impr = 15.0;
  }

(* Design 7 (~442 gates, microarchitecture entry, 6 components): a
   16-bit ALU/register datapath with a shifting result register. *)
let design7 () =
  let b = B.start "datapath16" in
  let din = B.input_bus b "DIN" 16 in
  let opb = B.input_bus b "OPB" 16 in
  let f = B.input_bus b "F" 2 in
  let cin = B.input b "CIN" in
  let clk = B.input b "CLK" in
  let rst = B.input b "RST" in
  let mode = B.input b "M" in
  let sin = B.input b "SIN" in
  let q = B.output_bus b "Q" 16 in
  let flags = B.output_bus b "FL" 2 in
  let alu = B.comp b ~name:"alu"
      (T.Arith_unit { bits = 16; fns = [ T.Add; T.Sub; T.Inc; T.Dec ]; mode = T.Ripple }) in
  let res = B.comp b ~name:"res"
      (T.Register { bits = 16; kind = T.Edge_triggered;
                    fns = [ T.Load; T.Shift_right ]; controls = [ T.Reset ];
                    inverting = false }) in
  let res_q = B.out_bus b res "Q" 16 in
  List.iteri (fun i n -> B.pin b alu (Printf.sprintf "A%d" i) n) res_q;
  List.iteri (fun i n -> B.pin b alu (Printf.sprintf "B%d" i) n) din;
  B.pin b alu "CIN" cin;
  List.iteri (fun i n -> B.pin b alu (Printf.sprintf "F%d" i) n) f;
  let alu_s = B.out_bus b alu "S" 16 in
  List.iteri (fun i n -> B.pin b res (Printf.sprintf "D%d" i) n) alu_s;
  B.pin b res "CLK" clk;
  B.pin b res "RST" rst;
  B.pin b res "M0" mode;
  B.pin b res "SIR" sin;
  (* zero and compare flags against OPB *)
  let cmp = B.comp b ~name:"cmp" (T.Comparator { bits = 8; fns = [ T.Eq; T.Lt ] }) in
  List.iteri (fun i n -> B.pin b cmp (Printf.sprintf "A%d" i) n)
    (List.filteri (fun i _ -> i < 8) res_q);
  List.iteri (fun i n -> B.pin b cmp (Printf.sprintf "B%d" i) n)
    (List.filteri (fun i _ -> i < 8) opb);
  B.expose b (B.out_pin b cmp "EQ") (List.nth flags 0);
  B.expose b (B.out_pin b cmp "LT") (List.nth flags 1);
  B.expose_bus b res_q q;
  {
    case_name = "7";
    case_design = B.finish b;
    constraints = Milo.Constraints.make ~required_delay:16.0 ();
    paper_complexity = 442;
    paper_delay_impr = 12.0;
    paper_area_impr = 8.0;
  }

(* Design 8 (~149 gates, microarchitecture entry, 5 components): an
   8-bit timer — loadable up/down counter, terminal comparator, holding
   register for the captured count. *)
let design8 () =
  let b = B.start "timer8" in
  let limit_in = B.input_bus b "LIM" 8 in
  let clk = B.input b "CLK" in
  let rst = B.input b "RST" in
  let en = B.input b "EN" in
  let ld = B.input b "LD" in
  let up = B.input b "UP" in
  let cap = B.input b "CAP" in
  let q = B.output_bus b "Q" 8 in
  let held = B.output_bus b "H" 4 in
  let hit = B.output b "HIT" in
  let cnt = B.comp b ~name:"cnt"
      (T.Counter { bits = 8; fns = [ T.Count_load; T.Count_up; T.Count_down ];
                   controls = [ T.Reset; T.Enable ] }) in
  List.iteri (fun i n -> B.pin b cnt (Printf.sprintf "D%d" i) n) limit_in;
  B.pin b cnt "LD" ld;
  B.pin b cnt "UP" up;
  B.pin b cnt "CLK" clk;
  B.pin b cnt "RST" rst;
  B.pin b cnt "EN" en;
  let cq = B.out_bus b cnt "Q" 8 in
  (* terminal comparator *)
  let cmp = B.comp b ~name:"cmp" (T.Comparator { bits = 8; fns = [ T.Eq ] }) in
  List.iteri (fun i n -> B.pin b cmp (Printf.sprintf "A%d" i) n) cq;
  List.iteri (fun i n -> B.pin b cmp (Printf.sprintf "B%d" i) n) limit_in;
  (* capture register on the low nibble *)
  let hold = B.comp b ~name:"hold"
      (T.Register { bits = 4; kind = T.Edge_triggered; fns = [ T.Load ];
                    controls = [ T.Reset; T.Enable ]; inverting = false }) in
  List.iteri (fun i n -> B.pin b hold (Printf.sprintf "D%d" i) n)
    (List.filteri (fun i _ -> i < 4) cq);
  B.pin b hold "CLK" clk;
  B.pin b hold "RST" rst;
  B.pin b hold "EN" cap;
  B.expose_bus b (B.out_bus b hold "Q" 4) held;
  B.expose b (B.out_pin b cmp "EQ") hit;
  B.expose_bus b cq q;
  {
    case_name = "8";
    case_design = B.finish b;
    constraints = Milo.Constraints.make ~required_delay:4.2 ();
    paper_complexity = 149;
    paper_delay_impr = 8.0;
    paper_area_impr = 2.0;
  }

(* The naive accumulator of Figure 14: an adder accumulating +1 into a
   register — the pattern the microarchitecture critic rewrites into a
   counter (used by the micro-critic experiment and tests). *)
let accumulator ?(bits = 8) () =
  let b = B.start (Printf.sprintf "acc%d" bits) in
  let clk = B.input b "CLK" in
  let rst = B.input b "RST" in
  let q = B.output_bus b "Q" bits in
  let add = B.comp b ~name:"add"
      (T.Arith_unit { bits; fns = [ T.Add ]; mode = T.Ripple }) in
  let reg = B.comp b ~name:"reg"
      (T.Register { bits; kind = T.Edge_triggered; fns = [ T.Load ];
                    controls = [ T.Reset ]; inverting = false }) in
  let one = B.vdd b and zero = B.vss b in
  B.pin b add "B0" one;
  List.iter (fun i -> B.pin b add (Printf.sprintf "B%d" i) zero)
    (List.init (bits - 1) (fun i -> i + 1));
  B.pin b add "CIN" zero;
  let reg_q = B.out_bus b reg "Q" bits in
  List.iteri (fun i n -> B.pin b add (Printf.sprintf "A%d" i) n) reg_q;
  let s = B.out_bus b add "S" bits in
  List.iteri (fun i n -> B.pin b reg (Printf.sprintf "D%d" i) n) s;
  B.pin b reg "CLK" clk;
  B.pin b reg "RST" rst;
  B.expose_bus b reg_q q;
  B.finish b

let all () =
  [ design1 (); design2 (); design3 (); design4 (); design5 ();
    design6 (); design7 (); design8 () ]
