lib/designs/abadd.mli: Milo Milo_netlist
