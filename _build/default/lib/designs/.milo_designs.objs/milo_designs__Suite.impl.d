lib/designs/suite.ml: Build List Milo Milo_netlist Printf
