lib/designs/abadd.ml: Build List Milo Milo_netlist Printf
