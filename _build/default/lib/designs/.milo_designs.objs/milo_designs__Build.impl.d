lib/designs/build.ml: List Milo_compilers Milo_library Milo_netlist Printf
