lib/designs/workload.mli: Milo_netlist
