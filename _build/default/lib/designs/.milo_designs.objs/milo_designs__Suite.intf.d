lib/designs/suite.mli: Milo Milo_netlist
