lib/designs/workload.ml: Array Build List Milo_library Milo_netlist Printf Random
