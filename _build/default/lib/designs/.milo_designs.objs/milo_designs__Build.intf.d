lib/designs/build.mli: Milo_compilers Milo_library Milo_netlist
