(** The ABADD walkthrough example of Figures 16 and 18. *)

val design : unit -> Milo_netlist.Design.t
val constraints : Milo.Constraints.t
