(** Programmatic design construction (the stand-in for schematic
    entry). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type t = {
  design : D.t;
  lib : Milo_library.Technology.t;
  set : Milo_compilers.Gate_comp.gate_set;
}

val start : string -> t
val input : t -> string -> int
val output : t -> string -> int
val input_bus : t -> string -> int -> int list
val output_bus : t -> string -> int -> int list
val gate : t -> T.gate_fn -> int list -> int
val vdd : t -> int
val vss : t -> int
val comp : t -> ?name:string -> T.kind -> int
val pin : t -> int -> string -> int -> unit
val out_pin : t -> int -> string -> int
val pin_bus : t -> int -> string -> int list -> unit
val out_bus : t -> int -> string -> int -> int list
val expose : t -> int -> int -> unit
val expose_bus : t -> int list -> int list -> unit
val finish : t -> D.t
