(** Workload generators: seeded pseudo-random combinational logic and an
    MSI-rich design for the mapper comparison. *)

val random_logic :
  ?inputs:int -> ?outputs:int -> gates:int -> seed:int -> unit ->
  Milo_netlist.Design.t

val msi_rich : ?seed:int -> unit -> Milo_netlist.Design.t
