(** Metarules: dynamic selection of the search control parameters by
    rule class and optimization phase (Section 2.2.2). *)

type phase = Meeting_timing | Recovering_area | Polishing

val phase_name : phase -> string
val fixed_full : Search.params
(** The no-metarules baseline: full lookahead for every rule class. *)

val fixed_greedy : Search.params
(** The no-lookahead baseline. *)

val params_for : cls:Rule.rule_class -> phase:phase -> Search.params
val dominant_class : Rule.t list -> Rule.rule_class
