lib/rules/engine.ml: Format Hashtbl List Milo_estimate Milo_library Milo_netlist Milo_timing Option Rule
