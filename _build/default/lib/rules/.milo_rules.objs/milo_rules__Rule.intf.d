lib/rules/rule.mli: Hashtbl Milo_compilers Milo_library Milo_netlist
