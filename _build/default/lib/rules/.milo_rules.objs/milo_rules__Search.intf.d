lib/rules/search.mli: Hashtbl Rule
