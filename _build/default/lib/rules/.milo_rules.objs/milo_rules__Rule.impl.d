lib/rules/rule.ml: Hashtbl List Milo_compilers Milo_library Milo_netlist Printf
