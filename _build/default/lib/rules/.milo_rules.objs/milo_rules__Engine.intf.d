lib/rules/engine.mli: Format Milo_netlist Rule
