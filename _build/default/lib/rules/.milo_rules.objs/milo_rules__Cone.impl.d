lib/rules/cone.ml: Array Hashtbl List Milo_boolfunc Milo_library Milo_netlist Milo_sim Rule Truth_table
