lib/rules/search.ml: Engine Float Hashtbl List Milo_netlist Rule
