lib/rules/metarules.ml: List Rule Search
