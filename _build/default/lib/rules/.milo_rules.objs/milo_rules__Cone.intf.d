lib/rules/cone.mli: Milo_boolfunc Milo_library Milo_netlist Rule Truth_table
