lib/rules/metarules.mli: Rule Search
