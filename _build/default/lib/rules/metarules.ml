(* Metarules: control knowledge that tunes the search parameters by rule
   class and optimization phase (Section 2.2.2: "based on the state of
   the optimization, metarules determine what values the control
   parameters should have ... greater lookahead is required for
   area-saving rules than general rules; little or no lookahead is
   required for the most powerful rules"). *)

type phase = Meeting_timing | Recovering_area | Polishing

let phase_name = function
  | Meeting_timing -> "meeting-timing"
  | Recovering_area -> "recovering-area"
  | Polishing -> "polishing"

(* Fixed "no metarules" configuration: full lookahead everywhere (the
   expensive baseline of [CoBa85]). *)
let fixed_full = { Search.b = 3; d_max = 3; d_app = 1; n_hood = 0; delta_cost = 20.0 }

(* Fixed "no lookahead" configuration: pure greedy. *)
let fixed_greedy = { Search.b = 1; d_max = 1; d_app = 1; n_hood = 0; delta_cost = 0.0 }

(* Metarule-selected parameters. *)
let params_for ~(cls : Rule.rule_class) ~(phase : phase) =
  match (cls, phase) with
  (* The most powerful rules need little or no lookahead. *)
  | (Rule.Logic | Rule.Cleanup), _ ->
      { Search.b = 1; d_max = 1; d_app = 1; n_hood = 0; delta_cost = 0.0 }
  (* Area-saving rules benefit from deeper lookahead, but localized. *)
  | Rule.Area, Recovering_area ->
      { Search.b = 3; d_max = 3; d_app = 1; n_hood = 3; delta_cost = 8.0 }
  | Rule.Area, (Meeting_timing | Polishing) ->
      { Search.b = 2; d_max = 2; d_app = 1; n_hood = 2; delta_cost = 4.0 }
  (* Timing rules: moderate breadth, shallow depth, localized to the
     critical region. *)
  | Rule.Timing, Meeting_timing ->
      { Search.b = 3; d_max = 2; d_app = 1; n_hood = 3; delta_cost = 12.0 }
  | Rule.Timing, (Recovering_area | Polishing) ->
      { Search.b = 2; d_max = 2; d_app = 1; n_hood = 2; delta_cost = 6.0 }
  | Rule.Power, _ ->
      { Search.b = 2; d_max = 2; d_app = 1; n_hood = 2; delta_cost = 6.0 }
  | (Rule.Electric | Rule.Micro), _ ->
      { Search.b = 1; d_max = 1; d_app = 1; n_hood = 0; delta_cost = 100.0 }

(* Dominant class of a rule set (for parameter selection over a mixed
   set: the most expensive class wins). *)
let dominant_class rules =
  let rank (c : Rule.rule_class) =
    match c with
    | Rule.Area -> 5
    | Rule.Timing -> 4
    | Rule.Power -> 3
    | Rule.Micro -> 2
    | Rule.Electric -> 1
    | Rule.Logic | Rule.Cleanup -> 0
  in
  List.fold_left
    (fun acc (r : Rule.t) ->
      if rank r.Rule.rule_class > rank acc then r.Rule.rule_class else acc)
    Rule.Logic rules
