(* The decoder compiler: k-to-2^k decoders from DEC1x2 / DEC2x4 macros;
   wider decoders split into a low and a high half joined by an AND
   grid; enables gate through the high half where possible. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let compile ctx ~bits ~enable =
  let kind = T.Decoder { bits; enable } in
  let d = D.create (T.kind_name kind) in
  let set = ctx.Ctx.set in
  let a_ports =
    List.init bits (fun i -> D.add_port d (Printf.sprintf "A%d" i) T.Input)
  in
  let en_port = if enable then Some (D.add_port d "EN" T.Input) else None in
  let y_ports =
    List.init (1 lsl bits) (fun j ->
        D.add_port d (Printf.sprintf "Y%d" j) T.Output)
  in
  (* Decode [addr] nets into 2^k one-hot nets (no enable). *)
  let rec decode addr =
    match addr with
    | [] -> invalid_arg "Decoder_comp: zero bits"
    | [ a0 ] ->
        let cid = D.add_comp d (T.Macro "DEC1x2") in
        D.connect d cid "A0" a0;
        List.init 2 (fun j ->
            let n = D.new_net d in
            D.connect d cid (Printf.sprintf "Y%d" j) n;
            n)
    | [ a0; a1 ] ->
        let cid = D.add_comp d (T.Macro "DEC2x4") in
        D.connect d cid "A0" a0;
        D.connect d cid "A1" a1;
        List.init 4 (fun j ->
            let n = D.new_net d in
            D.connect d cid (Printf.sprintf "Y%d" j) n;
            n)
    | a0 :: a1 :: rest ->
        let low = decode [ a0; a1 ] in
        let high = decode rest in
        List.concat_map
          (fun h -> List.map (fun l -> Gate_comp.build d set T.And [ l; h ]) low)
          high
  in
  let hot = decode a_ports in
  let gated =
    match en_port with
    | None -> hot
    | Some en -> List.map (fun h -> Gate_comp.build d set T.And [ h; en ]) hot
  in
  List.iteri (fun j g -> Ctx.bind_output ctx d g (List.nth y_ports j)) gated;
  d
