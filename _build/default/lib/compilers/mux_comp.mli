(** The multiplexor compiler: n-to-1, multi-bit, optional enable.
    Multi-bit muxes instantiate the single-bit design per bit. *)

module D = Milo_netlist.Design

val mux1 :
  ?log:D.log -> D.t -> Gate_comp.gate_set -> int list -> int list -> int
(** [mux1 d set data sels] builds a selection tree over the data nets;
    returns the output net.  Out-of-range selects produce 0. *)

val compile : Ctx.t -> bits:int -> inputs:int -> enable:bool -> D.t
