(** The comparator compiler: unsigned comparison from CMP4/CMP2 slices
    cascaded MSB-down; derives any of EQ/NE/LT/GT/LE/GE. *)

val compile :
  Ctx.t -> bits:int -> fns:Milo_netlist.Types.cmp_fn list -> Milo_netlist.Design.t
