(** The logic unit compiler: bitwise gate function over multi-bit
    operands, one gate tree per bit. *)

val compile :
  Ctx.t ->
  bits:int ->
  fn:Milo_netlist.Types.gate_fn ->
  inputs:int ->
  Milo_netlist.Design.t
