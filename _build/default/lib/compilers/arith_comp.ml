(* The arithmetic unit compiler (Figure 12: # bits, functions among
   +,-,INC,DEC, mode ripple / carry-lookahead).

   Structure: a chain of 4-bit adder slices (ADD4 or ADD4CLA by mode)
   plus 1-bit full adders for the remainder; the second operand and the
   carry-in are steered per function:

     ADD: X=B cin=CIN | SUB: X=~B cin=CIN | INC: X=0 cin=1 | DEC: X=1 cin=0

   Multi-function units steer X and cin through multiplexors driven by
   the F select field — the arithmetic compiler calls the multiplexor
   compiler, the same compiler-calls-compiler hierarchy as the paper's
   register example. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let compile ctx ~bits ~fns ~mode =
  if fns = [] then invalid_arg "Arith_comp.compile: no functions";
  let kind = T.Arith_unit { bits; fns; mode } in
  let d = D.create (T.kind_name kind) in
  let set = ctx.Ctx.set in
  let needs_b = List.exists (fun f -> f = T.Add || f = T.Sub) fns in
  let nfns = List.length fns in
  let a_ports =
    List.init bits (fun i -> D.add_port d (Printf.sprintf "A%d" i) T.Input)
  in
  let b_ports =
    if needs_b then
      List.init bits (fun i -> D.add_port d (Printf.sprintf "B%d" i) T.Input)
    else []
  in
  let cin_port = D.add_port d "CIN" T.Input in
  let f_ports =
    List.init (T.clog2 nfns) (fun i ->
        D.add_port d (Printf.sprintf "F%d" i) T.Input)
  in
  let s_ports =
    List.init bits (fun i -> D.add_port d (Printf.sprintf "S%d" i) T.Output)
  in
  let cout_port = D.add_port d "COUT" T.Output in
  let vdd = lazy (Ctx.vdd ctx d) in
  let vss = lazy (Ctx.vss ctx d) in
  let inv_b =
    lazy
      (List.map (fun b -> Gate_comp.build d set T.Inv [ b ]) b_ports)
  in
  (* Per-function second-operand bit and carry-in. *)
  let x_for fn b =
    match fn with
    | T.Add -> List.nth b_ports b
    | T.Sub -> List.nth (Lazy.force inv_b) b
    | T.Inc -> Lazy.force vss
    | T.Dec -> Lazy.force vdd
  in
  let cin_for fn =
    match fn with
    | T.Add | T.Sub -> cin_port
    | T.Inc -> Lazy.force vdd
    | T.Dec -> Lazy.force vss
  in
  let x_nets, cin_net =
    match fns with
    | [ fn ] -> (List.init bits (x_for fn), cin_for fn)
    | _ ->
        (* Steer X through a multi-bit mux and cin through a 1-bit mux,
           both selected by the F field.  The muxes are padded to a
           power of two by repeating the last function so out-of-range
           selects clamp to it. *)
        let padded = 1 lsl T.clog2 nfns in
        let nth_fn i = List.nth fns (min i (nfns - 1)) in
        let xsub =
          ctx.Ctx.subcompile
            (T.Multiplexor { bits; inputs = padded; enable = false })
        in
        let xmux = Ctx.add_instance d ~name:"xsel" xsub in
        List.iter
          (fun i ->
            List.iteri
              (fun b _ ->
                D.connect d xmux (Printf.sprintf "D%d_%d" i b)
                  (x_for (nth_fn i) b))
              a_ports)
          (List.init padded (fun i -> i));
        List.iteri
          (fun i f -> D.connect d xmux (Printf.sprintf "S%d" i) f)
          f_ports;
        let x_nets =
          List.init bits (fun b ->
              let n = D.new_net d in
              D.connect d xmux (Printf.sprintf "Y%d" b) n;
              n)
        in
        let csub =
          ctx.Ctx.subcompile
            (T.Multiplexor { bits = 1; inputs = padded; enable = false })
        in
        let cmux = Ctx.add_instance d ~name:"cinsel" csub in
        List.iter
          (fun i ->
            D.connect d cmux (Printf.sprintf "D%d_0" i) (cin_for (nth_fn i)))
          (List.init padded (fun i -> i));
        List.iteri
          (fun i f -> D.connect d cmux (Printf.sprintf "S%d" i) f)
          f_ports;
        let cn = D.new_net d in
        D.connect d cmux "Y0" cn;
        (x_nets, cn)
  in
  (* Adder slice chain, LSB first. *)
  let slice_macro = match mode with T.Ripple -> "ADD4" | T.Lookahead -> "ADD4CLA" in
  let rec build_slices offset carry =
    if offset >= bits then carry
    else if bits - offset >= 4 then begin
      let cid = D.add_comp d (T.Macro slice_macro) in
      for i = 0 to 3 do
        D.connect d cid (Printf.sprintf "A%d" i) (List.nth a_ports (offset + i));
        D.connect d cid (Printf.sprintf "B%d" i) (List.nth x_nets (offset + i));
        D.connect d cid (Printf.sprintf "S%d" i) (List.nth s_ports (offset + i))
      done;
      D.connect d cid "CIN" carry;
      let co = D.new_net d in
      D.connect d cid "COUT" co;
      build_slices (offset + 4) co
    end
    else begin
      let cid = D.add_comp d (T.Macro "ADD1") in
      D.connect d cid "A" (List.nth a_ports offset);
      D.connect d cid "B" (List.nth x_nets offset);
      D.connect d cid "S" (List.nth s_ports offset);
      D.connect d cid "CIN" carry;
      let co = D.new_net d in
      D.connect d cid "COUT" co;
      build_slices (offset + 1) co
    end
  in
  let final_carry = build_slices 0 cin_net in
  Ctx.bind_output ctx d final_carry cout_port;
  d
