(* The gate compiler: builds an i-input gate as a tree of library gates,
   generalizing the paper's i-input OR algorithm ("find an OR gate in the
   database with num_or_inputs <= num_left_over_outputs", level by
   level).  Parameterized by the available gate set so the same builder
   serves the generic library and each technology library. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* Which macro implements a gate function at a given arity, if any. *)
type gate_set = {
  tech : Milo_library.Technology.t;
  gate_macro : T.gate_fn -> int -> string option;
  const_macro : T.level -> string;
}

let named_set ~prefix tech =
  let gate_macro fn n =
    let name =
      if n = 1 then
        match fn with
        | T.Inv -> Printf.sprintf "%sINV" prefix
        | T.Buf -> Printf.sprintf "%sBUF" prefix
        | T.And | T.Or | T.Nand | T.Nor | T.Xor | T.Xnor ->
            Printf.sprintf "%s%s1" prefix (T.gate_fn_name fn)
      else Printf.sprintf "%s%s%d" prefix (T.gate_fn_name fn) n
    in
    if Milo_library.Technology.mem tech name then Some name else None
  in
  let const_macro lvl =
    let name =
      Printf.sprintf "%s%s" prefix (match lvl with T.Vdd -> "VDD" | T.Vss -> "VSS")
    in
    if Milo_library.Technology.mem tech name then name
    else invalid_arg ("Gate_comp: no constant macro " ^ name)
  in
  { tech; gate_macro; const_macro }

let generic_set tech = named_set ~prefix:"" tech

let resolver set = Milo_library.Technology.resolver set.tech

let arities set fn =
  List.filter (fun n -> set.gate_macro fn n <> None) [ 2; 3; 4; 5; 6; 8 ]

let largest_arity set fn limit =
  List.fold_left
    (fun acc n -> if n <= limit then Some n else acc)
    None
    (arities set fn)

(* Add a single library gate driving a fresh net. *)
let add_gate ?log d set fn ins =
  let n = List.length ins in
  match set.gate_macro fn n with
  | None ->
      unsupported "no %d-input %s macro available" n (T.gate_fn_name fn)
  | Some mname ->
      let cid = D.add_comp ?log d (T.Macro mname) in
      List.iteri
        (fun i nid -> D.connect ?log d cid (Printf.sprintf "A%d" i) nid)
        ins;
      let out = D.new_net ?log d in
      D.connect ?log d cid "Y" out;
      out

let add_const ?log d set lvl =
  let cid = D.add_comp ?log d (T.Macro (set.const_macro lvl)) in
  let out = D.new_net ?log d in
  D.connect ?log d cid "Y" out;
  out

(* Reduce a list of nets with an associative gate function (AND, OR,
   XOR), level by level, using the widest available gates first — the
   paper's OR-compiler algorithm. *)
let rec tree ?log d set fn nets =
  match nets with
  | [] -> invalid_arg "Gate_comp.tree: no inputs"
  | [ single ] -> single
  | _ ->
      let rec level remaining acc =
        match remaining with
        | [] -> List.rev acc
        | [ last ] -> List.rev (last :: acc)
        | _ ->
            let k = List.length remaining in
            let arity =
              match largest_arity set fn k with
              | Some a -> a
              | None ->
                  unsupported "no %s gates available" (T.gate_fn_name fn)
            in
            let rec take i xs acc' =
              if i = 0 then (List.rev acc', xs)
              else
                match xs with
                | [] -> (List.rev acc', [])
                | x :: rest -> take (i - 1) rest (x :: acc')
            in
            let group, rest = take arity remaining [] in
            level rest (add_gate ?log d set fn group :: acc)
      in
      tree ?log d set fn (level nets [])

(* Build an arbitrary gate function over input nets; returns the output
   net.  Non-associative functions decompose into inner trees plus a
   root/inverter stage. *)
let rec build ?log d set fn nets =
  let n = List.length nets in
  match fn with
  | T.Buf | T.Inv -> (
      assert (n = 1);
      match set.gate_macro fn 1 with
      | Some _ -> add_gate ?log d set fn nets
      | None ->
          if fn = T.Buf then List.hd nets
          else unsupported "no inverter available")
  | T.And | T.Or | T.Xor ->
      if set.gate_macro fn n <> None then add_gate ?log d set fn nets
      else tree ?log d set fn nets
  | T.Nand | T.Nor | T.Xnor -> (
      if set.gate_macro fn n <> None then add_gate ?log d set fn nets
      else
        (* Inner tree of the positive function, inverted root.  When a
           smaller inverted-root gate exists, group the inputs so the
           root itself inverts. *)
        let pos = match fn with
          | T.Nand -> T.And
          | T.Nor -> T.Or
          | T.Xnor -> T.Xor
          | T.And | T.Or | T.Xor | T.Inv | T.Buf -> assert false
        in
        match largest_arity set fn n with
        | Some root_arity when n > 1 ->
            (* Partition inputs into [root_arity] groups, positive trees
               per group, inverted gate at the root. *)
            let groups = Array.make root_arity [] in
            List.iteri
              (fun i nid -> groups.(i mod root_arity) <- nid :: groups.(i mod root_arity))
              nets;
            let heads =
              Array.to_list groups
              |> List.filter (fun g -> g <> [])
              |> List.map (fun g ->
                     match g with
                     | [ one ] -> one
                     | _ -> build ?log d set pos g)
            in
            add_gate ?log d set fn heads
        | Some _ | None ->
            let inner = build ?log d set pos nets in
            build ?log d set T.Inv [ inner ])

(* Build a factored expression (from the minimizer) over variable nets. *)
let rec build_expr ?log d set ~var_net expr =
  match (expr : Milo_minimize.Factor.expr) with
  | Milo_minimize.Factor.Const b ->
      add_const ?log d set (if b then T.Vdd else T.Vss)
  | Milo_minimize.Factor.Lit (v, true) -> var_net v
  | Milo_minimize.Factor.Lit (v, false) ->
      build ?log d set T.Inv [ var_net v ]
  | Milo_minimize.Factor.Not_e e ->
      let inner = build_expr ?log d set ~var_net e in
      build ?log d set T.Inv [ inner ]
  | Milo_minimize.Factor.And_e es ->
      let ins = List.map (build_expr ?log d set ~var_net) es in
      build ?log d set T.And ins
  | Milo_minimize.Factor.Or_e es ->
      let ins = List.map (build_expr ?log d set ~var_net) es in
      build ?log d set T.Or ins

(* Compile a Gate micro component into a stand-alone design whose ports
   match the kind's pins (A1..An, Y). *)
let compile set (fn, n) =
  let n = T.gate_arity fn n in
  let kind = T.Gate (fn, n) in
  let d = D.create (T.kind_name kind) in
  let ins =
    List.init n (fun i -> D.add_port d (Printf.sprintf "A%d" (i + 1)) T.Input)
  in
  let y = D.add_port d "Y" T.Output in
  let out = build d set fn ins in
  (* Alias the result onto the output port: retarget the driver. *)
  let resolve = resolver set in
  (match D.driver ~resolve d out with
  | D.Src_comp (cid, pin) ->
      D.connect d cid pin y;
      if (D.net d out).D.npins = [] then D.remove_net d out
  | D.Src_port p ->
      (* Degenerate case (BUF with no macro): insert a buffer. *)
      let b = D.add_comp d (T.Macro (Option.get (set.gate_macro T.Buf 1))) in
      D.connect d b "A0" (D.port_net d p);
      D.connect d b "Y" y
  | D.Src_none -> invalid_arg "Gate_comp.compile: undriven output");
  d
