(* The register compiler (Figure 12: # bits, latch/edge, load/shift
   functions, set/reset/enable controls, inverting outputs).

   As in the paper: a multiplexor is placed in front of each flip-flop
   when the register has several functions, produced by a call to the
   multiplexor compiler.  Controls are taken natively from the richest
   matching flip-flop macro; whatever the macro lacks is wrapped into
   the data path with the correct priority (SET > RST > not-EN hold). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type ff_choice = {
  ff_macro : string;
  native_set : bool;
  native_reset : bool;
  native_enable : bool;
}

(* Richest flip-flop/latch macro whose native controls are a subset of
   the requested ones. *)
let choose_ff lib ~latch ~set ~reset ~enable =
  let candidates =
    if latch then
      [ ("DLATCH_R", false, true, false); ("DLATCH", false, false, false) ]
    else
      [
        ("DFF_SR", true, true, false);
        ("DFF_RE", false, true, true);
        ("DFF_S", true, false, false);
        ("DFF_R", false, true, false);
        ("DFF_E", false, false, true);
        ("DFF", false, false, false);
      ]
  in
  let fits (name, s, r, e) =
    Milo_library.Technology.mem lib name
    && ((not s) || set) && ((not r) || reset) && ((not e) || enable)
  in
  let score (_, s, r, e) =
    (if s then 1 else 0) + (if r then 1 else 0) + if e then 1 else 0
  in
  let best =
    List.fold_left
      (fun acc c ->
        if not (fits c) then acc
        else
          match acc with
          | Some b when score b >= score c -> acc
          | _ -> Some c)
      None candidates
  in
  match best with
  | Some (ff_macro, native_set, native_reset, native_enable) ->
      { ff_macro; native_set; native_reset; native_enable }
  | None -> invalid_arg "Register_comp: no flip-flop macro available"

let compile ctx ~bits ~reg_kind ~fns ~controls ~inverting =
  if fns = [] then invalid_arg "Register_comp.compile: no functions";
  let kind =
    T.Register { bits; kind = reg_kind; fns; controls; inverting }
  in
  let d = D.create (T.kind_name kind) in
  let set = ctx.Ctx.set in
  let has f = List.mem f fns in
  let ctl c = List.mem c controls in
  let d_ports =
    if has T.Load then
      List.init bits (fun b -> D.add_port d (Printf.sprintf "D%d" b) T.Input)
    else []
  in
  let sil_port = if has T.Shift_left then Some (D.add_port d "SIL" T.Input) else None in
  let sir_port = if has T.Shift_right then Some (D.add_port d "SIR" T.Input) else None in
  let m_ports =
    List.init (T.clog2 (List.length fns)) (fun i ->
        D.add_port d (Printf.sprintf "M%d" i) T.Input)
  in
  let clk_port = D.add_port d "CLK" T.Input in
  let set_port = if ctl T.Set then Some (D.add_port d "SET" T.Input) else None in
  let rst_port = if ctl T.Reset then Some (D.add_port d "RST" T.Input) else None in
  let en_port = if ctl T.Enable then Some (D.add_port d "EN" T.Input) else None in
  let q_ports =
    List.init bits (fun b -> D.add_port d (Printf.sprintf "Q%d" b) T.Output)
  in
  let choice =
    choose_ff ctx.Ctx.lib
      ~latch:(reg_kind = T.Latch)
      ~set:(ctl T.Set) ~reset:(ctl T.Reset) ~enable:(ctl T.Enable)
  in
  (* Internal state nets (the true, non-inverted flip-flop outputs). *)
  let q_nets =
    if inverting then List.init bits (fun b -> D.new_net ~name:(Printf.sprintf "q%d" b) d)
    else q_ports
  in
  let nth_q b = List.nth q_nets b in
  (* Data for each function at bit b. *)
  let fn_data fn b =
    match fn with
    | T.Load -> List.nth d_ports b
    | T.Shift_right ->
        if b = bits - 1 then Option.get sir_port else nth_q (b + 1)
    | T.Shift_left -> if b = 0 then Option.get sil_port else nth_q (b - 1)
  in
  let ffs =
    List.init bits (fun b ->
        (* Function selection: the mux the paper places in front of each
           flip-flop, built by the multiplexor compiler. *)
        let selected =
          match fns with
          | [ fn ] -> fn_data fn b
          | _ ->
              (* Pad the function mux to a power of two by repeating the
                 last function, so out-of-range mode selects clamp to it
                 (matching the behavioural semantics). *)
              let padded = 1 lsl T.clog2 (List.length fns) in
              let sub =
                ctx.Ctx.subcompile
                  (T.Multiplexor { bits = 1; inputs = padded; enable = false })
              in
              let mux =
                Ctx.add_instance d ~name:(Printf.sprintf "msel%d" b) sub
              in
              let nth_fn i = List.nth fns (min i (List.length fns - 1)) in
              List.iter
                (fun i ->
                  D.connect d mux (Printf.sprintf "D%d_0" i)
                    (fn_data (nth_fn i) b))
                (List.init padded (fun i -> i));
              List.iteri
                (fun i m -> D.connect d mux (Printf.sprintf "S%d" i) m)
                m_ports;
              let n = D.new_net d in
              D.connect d mux "Y0" n;
              n
        in
        (* Wrap non-native controls into the data path, respecting the
           priority SET > RST > hold. *)
        let with_en =
          match (en_port, choice.native_enable) with
          | Some en, false ->
              Mux_comp.mux1 d set [ nth_q b; selected ] [ en ]
          | Some _, true | None, _ -> selected
        in
        let with_rst =
          match (rst_port, choice.native_reset) with
          | Some rst, false ->
              let nrst = Gate_comp.build d set T.Inv [ rst ] in
              Gate_comp.build d set T.And [ with_en; nrst ]
          | Some _, true | None, _ -> with_en
        in
        let with_set =
          match (set_port, choice.native_set) with
          | Some sp, false -> Gate_comp.build d set T.Or [ with_rst; sp ]
          | Some _, true | None, _ -> with_rst
        in
        let ff =
          D.add_comp d ~name:(Printf.sprintf "ff%d" b)
            (T.Macro choice.ff_macro)
        in
        D.connect d ff "D" with_set;
        D.connect d ff "CLK" clk_port;
        (match (set_port, choice.native_set) with
        | Some sp, true -> D.connect d ff "SET" sp
        | Some _, false | None, _ -> ());
        (match (rst_port, choice.native_reset) with
        | Some rp, true ->
            (* If SET is wrapped into the data path while RST is native,
               gate RST so SET keeps its priority. *)
            let rp =
              match (set_port, choice.native_set) with
              | Some sp, false ->
                  let nset = Gate_comp.build d set T.Inv [ sp ] in
                  Gate_comp.build d set T.And [ rp; nset ]
              | Some _, true | None, _ -> rp
            in
            D.connect d ff "RST" rp
        | Some _, false | None, _ -> ());
        (match (en_port, choice.native_enable) with
        | Some en, true -> D.connect d ff "EN" en
        | Some _, false | None, _ -> ());
        D.connect d ff "Q" (nth_q b);
        ff)
  in
  ignore ffs;
  (* Inverting outputs: invert the state onto the Q ports. *)
  if inverting then
    List.iteri
      (fun b q ->
        let inv = Gate_comp.build d set T.Inv [ nth_q b ] in
        Ctx.bind_output ctx d inv q)
      q_ports;
  d
