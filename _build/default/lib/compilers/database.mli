(** The design database: compiled designs cached by name ("see if the
    requested design already exists in the database"), Instance
    resolution, and hierarchy flattening. *)

module D = Milo_netlist.Design

type t

val create : unit -> t
val find : t -> string -> D.t option
val mem : t -> string -> bool
val register : t -> D.t -> unit
(** No-op if a design of that name already exists. *)

val replace : t -> D.t -> unit
val names : t -> string list
val get : t -> string -> D.t
val instance_pins : t -> string -> (string * Milo_netlist.Types.dir) list

val resolver : t -> Milo_library.Technology.t list -> D.resolver
(** Resolves Instance pins from this database and Macro pins from the
    given technologies (first match wins). *)

val inline_instance : t -> D.t -> int -> unit
(** Replace one Instance component by the contents of its sub-design. *)

val flatten : t -> D.t -> D.t
(** Copy with all hierarchy recursively expanded. *)

val flatten_once : t -> D.t -> D.t
(** Copy with only the top level of hierarchy expanded (the Figure 18
    level-by-level optimization order). *)
