(** The decoder compiler: k-to-2^k decoders from DEC1x2/DEC2x4 macros
    with an AND grid for wider address fields. *)

val compile : Ctx.t -> bits:int -> enable:bool -> Milo_netlist.Design.t
