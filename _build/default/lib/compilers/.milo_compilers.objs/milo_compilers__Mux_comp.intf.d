lib/compilers/mux_comp.mli: Ctx Gate_comp Milo_netlist
