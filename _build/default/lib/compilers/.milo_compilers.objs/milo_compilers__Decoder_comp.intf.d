lib/compilers/decoder_comp.mli: Ctx Milo_netlist
