lib/compilers/gate_comp.mli: Milo_library Milo_minimize Milo_netlist
