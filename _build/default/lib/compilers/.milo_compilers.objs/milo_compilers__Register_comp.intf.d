lib/compilers/register_comp.mli: Ctx Milo_netlist
