lib/compilers/counter_comp.ml: Ctx Gate_comp Lazy List Milo_netlist Mux_comp Printf
