lib/compilers/logic_unit_comp.mli: Ctx Milo_netlist
