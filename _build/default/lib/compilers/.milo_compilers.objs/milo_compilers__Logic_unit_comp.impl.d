lib/compilers/logic_unit_comp.ml: Ctx Gate_comp List Milo_netlist Printf
