lib/compilers/database.ml: Hashtbl List Milo_library Milo_netlist Printf
