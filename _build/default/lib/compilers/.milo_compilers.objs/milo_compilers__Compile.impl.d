lib/compilers/compile.ml: Arith_comp Comparator_comp Counter_comp Ctx Database Decoder_comp Gate_comp List Logic_unit_comp Milo_netlist Mux_comp Printf Register_comp
