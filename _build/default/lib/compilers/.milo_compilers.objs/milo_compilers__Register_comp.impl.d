lib/compilers/register_comp.ml: Ctx Gate_comp List Milo_library Milo_netlist Mux_comp Option Printf
