lib/compilers/gate_comp.ml: Array List Milo_library Milo_minimize Milo_netlist Option Printf
