lib/compilers/decoder_comp.ml: Ctx Gate_comp List Milo_netlist Printf
