lib/compilers/ctx.ml: Database Gate_comp List Milo_library Milo_netlist
