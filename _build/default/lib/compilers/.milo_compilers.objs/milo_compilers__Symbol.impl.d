lib/compilers/symbol.ml: Buffer List Milo_netlist Printf String
