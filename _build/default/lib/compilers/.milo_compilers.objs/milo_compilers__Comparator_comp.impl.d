lib/compilers/comparator_comp.ml: Ctx Gate_comp Lazy List Milo_netlist Printf
