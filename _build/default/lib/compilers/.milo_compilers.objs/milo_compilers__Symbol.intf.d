lib/compilers/symbol.mli: Milo_netlist
