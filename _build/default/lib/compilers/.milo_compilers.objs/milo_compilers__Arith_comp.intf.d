lib/compilers/arith_comp.mli: Ctx Milo_netlist
