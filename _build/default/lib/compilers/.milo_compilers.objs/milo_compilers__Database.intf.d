lib/compilers/database.mli: Milo_library Milo_netlist
