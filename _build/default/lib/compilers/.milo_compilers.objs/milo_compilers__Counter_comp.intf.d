lib/compilers/counter_comp.mli: Ctx Milo_netlist
