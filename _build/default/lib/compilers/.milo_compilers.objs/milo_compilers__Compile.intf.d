lib/compilers/compile.mli: Database Milo_library Milo_netlist
