lib/compilers/comparator_comp.mli: Ctx Milo_netlist
