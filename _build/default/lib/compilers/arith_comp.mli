(** The arithmetic unit compiler: 4-bit adder slice chains (ripple or
    carry-lookahead) with function steering for ADD/SUB/INC/DEC through
    compiler-generated multiplexors. *)

val compile :
  Ctx.t ->
  bits:int ->
  fns:Milo_netlist.Types.arith_fn list ->
  mode:Milo_netlist.Types.carry_mode ->
  Milo_netlist.Design.t
