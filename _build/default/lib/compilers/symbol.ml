(* The symbol compiler: produces the schematic-capture symbol for a
   microarchitecture component — its name, pin list grouped by side, and
   a one-line description.  (In the paper the symbol compiler feeds the
   Mentor schematic capture menu; here the symbol is a printable
   record the CLI and examples render.) *)

module T = Milo_netlist.Types

type t = {
  symbol_name : string;
  kind : T.kind;
  left_pins : string list;  (* inputs *)
  right_pins : string list;  (* outputs *)
  description : string;
}

let describe (kind : T.kind) =
  match kind with
  | T.Gate (fn, n) ->
      Printf.sprintf "%d-input %s gate" (T.gate_arity fn n) (T.gate_fn_name fn)
  | T.Multiplexor { bits; inputs; enable } ->
      Printf.sprintf "%d-to-1 multiplexor, %d-bit slice%s" inputs bits
        (if enable then ", with enable" else "")
  | T.Decoder { bits; enable } ->
      Printf.sprintf "%d-to-%d decoder%s" bits (1 lsl bits)
        (if enable then ", with enable" else "")
  | T.Comparator { bits; fns } ->
      Printf.sprintf "%d-bit comparator (%s)" bits
        (String.concat "/" (List.map T.cmp_fn_name fns))
  | T.Logic_unit { bits; fn; inputs } ->
      Printf.sprintf "%d-bit %d-operand %s logic unit" bits inputs
        (T.gate_fn_name fn)
  | T.Arith_unit { bits; fns; mode } ->
      Printf.sprintf "%d-bit arithmetic unit (%s), %s carry" bits
        (String.concat "/" (List.map T.arith_fn_name fns))
        (String.lowercase_ascii (T.carry_mode_name mode))
  | T.Register { bits; kind = rk; fns; controls; inverting } ->
      Printf.sprintf "%d-bit %s register (%s)%s%s" bits
        (match rk with T.Latch -> "latch" | T.Edge_triggered -> "edge-triggered")
        (String.concat "/" (List.map T.reg_fn_name fns))
        (if controls = [] then ""
         else ", " ^ String.concat "/" (List.map T.control_name controls))
        (if inverting then ", inverting" else "")
  | T.Counter { bits; fns; controls } ->
      Printf.sprintf "%d-bit counter (%s)%s" bits
        (String.concat "/" (List.map T.count_fn_name fns))
        (if controls = [] then ""
         else ", " ^ String.concat "/" (List.map T.control_name controls))
  | T.Constant T.Vdd -> "logic 1"
  | T.Constant T.Vss -> "logic 0"
  | T.Macro m -> Printf.sprintf "library macro %s" m
  | T.Instance i -> Printf.sprintf "instance of %s" i

let generate (kind : T.kind) =
  let pins = T.pins_of_kind kind in
  {
    symbol_name = T.kind_name kind;
    kind;
    left_pins =
      List.filter_map (fun (p, d) -> if d = T.Input then Some p else None) pins;
    right_pins =
      List.filter_map (fun (p, d) -> if d = T.Output then Some p else None) pins;
    description = describe kind;
  }

let render sym =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s — %s\n" sym.symbol_name sym.description);
  let rec rows ls rs =
    match (ls, rs) with
    | [], [] -> ()
    | _ ->
        let l, ls' = match ls with [] -> ("", []) | x :: r -> (x, r) in
        let r, rs' = match rs with [] -> ("", []) | x :: r -> (x, r) in
        Buffer.add_string b (Printf.sprintf "  %-8s | %8s\n" l r);
        rows ls' rs'
  in
  rows sym.left_pins sym.right_pins;
  Buffer.contents b
