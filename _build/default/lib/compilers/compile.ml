(* The design-compiler dispatcher: compiles any microarchitecture
   component kind into a generic-macro design, caching results in the
   design database ("see if the requested design already exists in the
   database").  Compilers call each other through the context's
   [subcompile] hook (register → multiplexor, arithmetic → multiplexor),
   producing the hierarchy of the paper's Figure 16. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

exception Uncompilable of string

let rec compile_kind db lib (kind : T.kind) : string =
  let name = T.kind_name kind in
  if Database.mem db name then name
  else begin
    let ctx =
      {
        Ctx.db;
        lib;
        set = Gate_comp.generic_set lib;
        subcompile = (fun k -> compile_kind db lib k);
      }
    in
    let design =
      match kind with
      | T.Gate (fn, n) -> Gate_comp.compile ctx.Ctx.set (fn, n)
      | T.Multiplexor { bits; inputs; enable } ->
          Mux_comp.compile ctx ~bits ~inputs ~enable
      | T.Decoder { bits; enable } -> Decoder_comp.compile ctx ~bits ~enable
      | T.Comparator { bits; fns } -> Comparator_comp.compile ctx ~bits ~fns
      | T.Logic_unit { bits; fn; inputs } ->
          Logic_unit_comp.compile ctx ~bits ~fn ~inputs
      | T.Arith_unit { bits; fns; mode } -> Arith_comp.compile ctx ~bits ~fns ~mode
      | T.Register { bits; kind = reg_kind; fns; controls; inverting } ->
          Register_comp.compile ctx ~bits ~reg_kind ~fns ~controls ~inverting
      | T.Counter { bits; fns; controls } ->
          Counter_comp.compile ctx ~bits ~fns ~controls
      | T.Constant _ | T.Macro _ | T.Instance _ ->
          raise
            (Uncompilable
               (Printf.sprintf "%s is not a compilable micro component" name))
    in
    Database.register db design;
    name
  end

(* Compile every microarchitecture component of a captured design,
   replacing each one by an Instance of its compiled sub-design.  The
   result is hierarchical; [Database.flatten] expands it fully. *)
let expand_design db lib design =
  let d = D.copy design in
  List.iter
    (fun (c : D.comp) ->
      match c.D.kind with
      | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
      | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _ ->
          let sub = compile_kind db lib c.D.kind in
          D.set_kind d c.D.id (T.Instance sub)
      | T.Constant lvl ->
          (* Constants become library constant macros. *)
          let mname = match lvl with T.Vdd -> "VDD" | T.Vss -> "VSS" in
          D.set_kind d c.D.id (T.Macro mname)
      | T.Macro _ | T.Instance _ -> ())
    (D.comps d);
  d

(* Compile a single kind and return its (hierarchical) design. *)
let compile db lib kind = Database.get db (compile_kind db lib kind)

(* Compile a kind and return it fully flattened to generic macros. *)
let compile_flat db lib kind = Database.flatten db (compile db lib kind)
