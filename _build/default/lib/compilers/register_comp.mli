(** The register compiler: per-bit flip-flops/latches with a
    compiler-generated multiplexor in front when the register has
    several functions (load / shift left / shift right), native or
    data-path-wrapped set/reset/enable controls, optional inverting
    outputs. *)

val compile :
  Ctx.t ->
  bits:int ->
  reg_kind:Milo_netlist.Types.reg_kind ->
  fns:Milo_netlist.Types.reg_fn list ->
  controls:Milo_netlist.Types.control list ->
  inverting:bool ->
  Milo_netlist.Design.t
