(** The counter compiler: CNT4/CNT2 MSI chains cascaded through enable,
    a discrete T-flip-flop slice for odd widths, load/up/down functions
    and set/reset/enable controls (SET synthesized via the load path). *)

val compile :
  Ctx.t ->
  bits:int ->
  fns:Milo_netlist.Types.count_fn list ->
  controls:Milo_netlist.Types.control list ->
  Milo_netlist.Design.t
