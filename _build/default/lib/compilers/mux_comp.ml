(* The multiplexor compiler: n-to-1, multi-bit, optional enable.

   Single-bit selection trees are built from MUX4/MUX2 macros with VSS
   padding (out-of-range select values produce 0, matching the
   behavioural semantics); multi-bit muxes instantiate the single-bit
   design per bit — the hierarchy the paper's Figure 16 shows
   (MUX2:1:4 at the top, MUX2:1:1 inside REG4). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let vss ?log d set = Gate_comp.add_const ?log d set T.Vss

(* Select [data] (padded with VSS) by [sels]; returns the output net. *)
let rec mux1 ?log d set data sels =
  let pad_to n xs =
    let len = List.length xs in
    if len >= n then xs else xs @ List.init (n - len) (fun _ -> vss ?log d set)
  in
  match (data, sels) with
  | [], _ -> invalid_arg "Mux_comp.mux1: no data"
  | [ single ], [] -> single
  | _, [] -> invalid_arg "Mux_comp.mux1: out of select bits"
  | _, [ s ] ->
      let cid = D.add_comp ?log d (T.Macro "MUX2") in
      (match pad_to 2 data with
      | [ d0; d1 ] ->
          D.connect ?log d cid "D0" d0;
          D.connect ?log d cid "D1" d1
      | _ -> assert false);
      D.connect ?log d cid "S0" s;
      let out = D.new_net ?log d in
      D.connect ?log d cid "Y" out;
      out
  | _, s0 :: s1 :: rest ->
      if List.length data <= 4 && rest = [] then begin
        let cid = D.add_comp ?log d (T.Macro "MUX4") in
        List.iteri
          (fun i nid -> D.connect ?log d cid (Printf.sprintf "D%d" i) nid)
          (pad_to 4 data);
        D.connect ?log d cid "S0" s0;
        D.connect ?log d cid "S1" s1;
        let out = D.new_net ?log d in
        D.connect ?log d cid "Y" out;
        out
      end
      else begin
        (* Leaves of MUX4 on the two low select bits, recurse above. *)
        let rec chunk4 = function
          | [] -> []
          | xs ->
              let rec take i ys acc =
                if i = 0 then (List.rev acc, ys)
                else
                  match ys with
                  | [] -> (List.rev acc, [])
                  | y :: rest' -> take (i - 1) rest' (y :: acc)
              in
              let group, restd = take 4 xs [] in
              group :: chunk4 restd
        in
        let leaves =
          List.map
            (fun group -> mux1 ?log d set (pad_to 4 group) [ s0; s1 ])
            (chunk4 data)
        in
        mux1 ?log d set leaves rest
      end

let compile ctx ~bits ~inputs ~enable =
  let kind = T.Multiplexor { bits; inputs; enable } in
  let d = D.create (T.kind_name kind) in
  let set = ctx.Ctx.set in
  let s = T.clog2 inputs in
  let data_ports =
    List.init inputs (fun i ->
        List.init bits (fun b ->
            D.add_port d (Printf.sprintf "D%d_%d" i b) T.Input))
  in
  let sel_ports =
    List.init s (fun i -> D.add_port d (Printf.sprintf "S%d" i) T.Input)
  in
  let en_port = if enable then Some (D.add_port d "EN" T.Input) else None in
  let y_ports =
    List.init bits (fun b -> D.add_port d (Printf.sprintf "Y%d" b) T.Output)
  in
  if bits = 1 then begin
    let data = List.map (fun l -> List.nth l 0) data_ports in
    let out = mux1 d set data sel_ports in
    let final =
      match en_port with
      | Some en -> Gate_comp.build d set T.And [ out; en ]
      | None -> out
    in
    (* Retarget the final driver onto the port net. *)
    let resolve = Ctx.resolver ctx in
    (match D.driver ~resolve d final with
    | D.Src_comp (cid, pin) ->
        D.connect d cid pin (List.nth y_ports 0);
        if (D.net d final).D.npins = [] then D.remove_net d final
    | D.Src_port p ->
        let b = D.add_comp d (T.Macro "BUF") in
        D.connect d b "A0" (D.port_net d p);
        D.connect d b "Y" (List.nth y_ports 0)
    | D.Src_none -> invalid_arg "Mux_comp.compile: undriven output")
  end
  else begin
    (* One single-bit mux instance per bit (register-compiler style
       hierarchy). *)
    let sub = ctx.Ctx.subcompile (T.Multiplexor { bits = 1; inputs; enable }) in
    List.iteri
      (fun b y ->
        let inst = Ctx.add_instance d ~name:(Printf.sprintf "bit%d" b) sub in
        List.iteri
          (fun i l ->
            D.connect d inst (Printf.sprintf "D%d_0" i) (List.nth l b))
          data_ports;
        List.iteri
          (fun i snet -> D.connect d inst (Printf.sprintf "S%d" i) snet)
          sel_ports;
        (match en_port with
        | Some en -> D.connect d inst "EN" en
        | None -> ());
        D.connect d inst "Y0" y)
      y_ports
  end;
  d
