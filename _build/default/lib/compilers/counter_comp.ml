(* The counter compiler (Figure 12: # bits, load/up/down functions,
   set/reset/enable controls).

   Structure: a chain of CNT4/CNT2 MSI counter macros, LSB first,
   cascaded through their enable pins (stage k counts only when every
   lower stage is at its terminal count), plus a discrete T-flip-flop
   slice for an odd top bit.  SET is synthesized through the load path
   (load all-ones, with RST gated off so SET keeps priority). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let compile ctx ~bits ~fns ~controls =
  if fns = [] then invalid_arg "Counter_comp.compile: no functions";
  let kind = T.Counter { bits; fns; controls } in
  let d = D.create (T.kind_name kind) in
  let set = ctx.Ctx.set in
  let has f = List.mem f fns in
  let ctl c = List.mem c controls in
  let has_load = has T.Count_load in
  let has_updown = has T.Count_up && has T.Count_down in
  let d_ports =
    if has_load then
      List.init bits (fun b -> D.add_port d (Printf.sprintf "D%d" b) T.Input)
    else []
  in
  let ld_port = if has_load then Some (D.add_port d "LD" T.Input) else None in
  let up_port = if has_updown then Some (D.add_port d "UP" T.Input) else None in
  let clk_port = D.add_port d "CLK" T.Input in
  let set_port = if ctl T.Set then Some (D.add_port d "SET" T.Input) else None in
  let rst_port = if ctl T.Reset then Some (D.add_port d "RST" T.Input) else None in
  let en_port = if ctl T.Enable then Some (D.add_port d "EN" T.Input) else None in
  let q_ports =
    List.init bits (fun b -> D.add_port d (Printf.sprintf "Q%d" b) T.Output)
  in
  let cout_port = D.add_port d "COUT" T.Output in
  let vdd = lazy (Ctx.vdd ctx d) in
  let vss = lazy (Ctx.vss ctx d) in
  (* Direction net feeding every stage's UP pin. *)
  let up_net =
    match up_port with
    | Some u -> u
    | None -> if has T.Count_down then Lazy.force vss else Lazy.force vdd
  in
  (* SET is wrapped through the load path: effective load and data. *)
  let wrap_set = set_port <> None in
  let ld_eff =
    (* load request gated by the global enable (EN=0 must hold). *)
    let base =
      match (ld_port, en_port) with
      | Some ld, Some en -> Gate_comp.build d set T.And [ ld; en ]
      | Some ld, None -> ld
      | None, _ -> Lazy.force vss
    in
    match set_port with
    | Some sp -> Gate_comp.build d set T.Or [ base; sp ]
    | None -> base
  in
  let data_eff b =
    let base =
      if has_load then List.nth d_ports b else Lazy.force vss
    in
    match set_port with
    | Some sp ->
        if has_load then Gate_comp.build d set T.Or [ base; sp ] else sp
    | None -> base
  in
  let rst_eff =
    match (rst_port, set_port) with
    | Some rp, Some sp ->
        let nset = Gate_comp.build d set T.Inv [ sp ] in
        Gate_comp.build d set T.And [ rp; nset ]
    | Some rp, None -> rp
    | None, _ -> Lazy.force vss
  in
  let need_load_path = has_load || wrap_set in
  (* Stage widths, LSB first: 4s, then 2, then an odd final bit. *)
  let rec widths remaining =
    if remaining = 0 then []
    else if remaining >= 4 then 4 :: widths (remaining - 4)
    else if remaining >= 2 then 2 :: widths (remaining - 2)
    else [ 1 ]
  in
  (* Build one MSI counter stage; returns its COUT net. *)
  let msi_stage offset w carry =
    let mname = if w = 4 then "CNT4" else "CNT2" in
    let cid = D.add_comp d ~name:(Printf.sprintf "st%d" offset) (T.Macro mname) in
    for i = 0 to w - 1 do
      D.connect d cid
        (Printf.sprintf "D%d" i)
        (if need_load_path then data_eff (offset + i) else Lazy.force vss);
      D.connect d cid (Printf.sprintf "Q%d" i) (List.nth q_ports (offset + i))
    done;
    D.connect d cid "LD" ld_eff;
    D.connect d cid "UP" up_net;
    D.connect d cid "CLK" clk_port;
    D.connect d cid "RST" rst_eff;
    (* Count only when the carry chain allows it; loading re-enables the
       stage regardless of the chain. *)
    let stage_en = Gate_comp.build d set T.Or [ carry; ld_eff ] in
    D.connect d cid "EN" stage_en;
    let co = D.new_net d in
    D.connect d cid "COUT" co;
    co
  in
  (* A single-bit slice from a discrete flip-flop: toggles on carry,
     loads through a mux, reset native.  Returns its terminal-count
     net. *)
  let tff_stage offset carry =
    let q = List.nth q_ports offset in
    let toggled = Gate_comp.build d set T.Xor [ q; carry ] in
    let data =
      if need_load_path then
        Mux_comp.mux1 d set [ toggled; data_eff offset ] [ ld_eff ]
      else toggled
    in
    let ff_macro = if rst_port <> None || wrap_set then "DFF_R" else "DFF" in
    let ff = D.add_comp d ~name:(Printf.sprintf "tff%d" offset) (T.Macro ff_macro) in
    D.connect d ff "D" data;
    D.connect d ff "CLK" clk_port;
    if ff_macro = "DFF_R" then D.connect d ff "RST" rst_eff;
    D.connect d ff "Q" q;
    (* Terminal count: q when counting up, ~q when counting down. *)
    match (has_updown, has T.Count_down) with
    | true, _ -> Gate_comp.build d set T.Xnor [ q; up_net ]
    | false, true -> Gate_comp.build d set T.Inv [ q ]
    | false, false -> q
  in
  let rec chain offset carry couts = function
    | [] -> (carry, List.rev couts)
    | w :: rest ->
        let co =
          if w = 1 then tff_stage offset carry else msi_stage offset w carry
        in
        let next_carry = Gate_comp.build d set T.And [ carry; co ] in
        chain (offset + w) next_carry (co :: couts) rest
  in
  let en0 = match en_port with Some en -> en | None -> Lazy.force vdd in
  let _, couts = chain 0 en0 [] (widths bits) in
  (* Whole-counter terminal count. *)
  let cout_net =
    match couts with
    | [] -> invalid_arg "Counter_comp: zero bits"
    | [ single ] -> single
    | several -> Gate_comp.build d set T.And several
  in
  Ctx.bind_output ctx d cout_net cout_port;
  d
