(* The comparator compiler: unsigned comparison from CMP4/CMP2 slices
   (high bits padded with VSS on both operands), cascaded MSB-down:

     eq = eqH & eqL;  lt = ltH | (eqH & ltL);  gt = gtH | (eqH & gtL)

   The requested functions are derived from the cascade outputs. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let compile ctx ~bits ~fns =
  let kind = T.Comparator { bits; fns } in
  let d = D.create (T.kind_name kind) in
  let set = ctx.Ctx.set in
  let a_ports =
    List.init bits (fun i -> D.add_port d (Printf.sprintf "A%d" i) T.Input)
  in
  let b_ports =
    List.init bits (fun i -> D.add_port d (Printf.sprintf "B%d" i) T.Input)
  in
  let out_ports = List.map (fun fn -> (fn, D.add_port d (T.cmp_fn_name fn) T.Output)) fns in
  let vss = lazy (Ctx.vss ctx d) in
  let bit_net ports i = if i < bits then List.nth ports i else Lazy.force vss in
  (* Slice the operands into 4-bit (or one 2-bit) chunks, LSB first. *)
  let rec slice_widths remaining =
    if remaining <= 0 then []
    else if remaining <= 2 then [ 2 ]
    else 4 :: slice_widths (remaining - 4)
  in
  let widths = slice_widths bits in
  let slices =
    let rec go offset = function
      | [] -> []
      | w :: rest ->
          let mname = if w = 2 then "CMP2" else "CMP4" in
          let cid = D.add_comp d (T.Macro mname) in
          for i = 0 to w - 1 do
            D.connect d cid (Printf.sprintf "A%d" i) (bit_net a_ports (offset + i));
            D.connect d cid (Printf.sprintf "B%d" i) (bit_net b_ports (offset + i))
          done;
          let out pin =
            let n = D.new_net d in
            D.connect d cid pin n;
            n
          in
          (out "EQ", out "LT", out "GT") :: go (offset + w) rest
    in
    go 0 widths
  in
  (* Cascade from the most significant slice down. *)
  let combine (eq_h, lt_h, gt_h) (eq_l, lt_l, gt_l) =
    let eq = Gate_comp.build d set T.And [ eq_h; eq_l ] in
    let lt =
      Gate_comp.build d set T.Or
        [ lt_h; Gate_comp.build d set T.And [ eq_h; lt_l ] ]
    in
    let gt =
      Gate_comp.build d set T.Or
        [ gt_h; Gate_comp.build d set T.And [ eq_h; gt_l ] ]
    in
    (eq, lt, gt)
  in
  let eq, lt, gt =
    match List.rev slices with
    | [] -> invalid_arg "Comparator_comp: zero bits"
    | msb :: rest -> List.fold_left combine msb rest
  in
  let fn_net = function
    | T.Eq -> eq
    | T.Lt -> lt
    | T.Gt -> gt
    | T.Ne -> Gate_comp.build d set T.Inv [ eq ]
    | T.Le -> Gate_comp.build d set T.Or [ lt; eq ]
    | T.Ge -> Gate_comp.build d set T.Inv [ lt ]
  in
  (* Build every requested function's net first, then bind: binding
     merges nets, which would invalidate nets still to be read. *)
  let built = List.map (fun (fn, port) -> (fn_net fn, port)) out_ports in
  List.iter (fun (net, port) -> Ctx.bind_output ctx d net port) built;
  (* Unused cascade outputs stay as dangling driver-only nets, which is
     legal; drop them if truly unconnected to anything downstream. *)
  d
