(* The design database: compiled designs cached by name, exactly the
   paper's "see if the requested design already exists in the database;
   if so, exit".  Also resolves hierarchical Instance references and can
   flatten them away for simulation / mapping. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type t = { designs : (string, D.t) Hashtbl.t }

let create () = { designs = Hashtbl.create 32 }
let find t name = Hashtbl.find_opt t.designs name
let mem t name = Hashtbl.mem t.designs name

let register t d =
  let name = D.name d in
  if not (Hashtbl.mem t.designs name) then Hashtbl.replace t.designs name d

let replace t d = Hashtbl.replace t.designs (D.name d) d

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.designs [] |> List.sort compare

let get t name =
  match find t name with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Database.get: no design %s" name)

let instance_pins t name =
  let d = get t name in
  List.map (fun (p, dir, _) -> (p, dir)) (D.ports d)

(* A resolver that handles Instance references from this database and
   delegates Macro references to the given technologies. *)
let resolver t techs : D.resolver =
 fun kind nm ->
  match kind with
  | T.Instance _ -> instance_pins t nm
  | T.Macro _ ->
      let rec go = function
        | [] -> invalid_arg (Printf.sprintf "Database.resolver: unknown macro %s" nm)
        | tech :: rest -> (
            match Milo_library.Technology.find_opt tech nm with
            | Some m -> m.Milo_library.Macro.pins
            | None -> go rest)
      in
      go techs
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Constant _ ->
      T.pins_of_kind kind

(* Inline one instance component: copy the sub-design's components into
   the parent, stitching port nets to the instance's connections. *)
let inline_instance t parent cid =
  let c = D.comp parent cid in
  let sub_name =
    match c.D.kind with
    | T.Instance n -> n
    | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
    | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
    | T.Constant _ | T.Macro _ ->
        invalid_arg "Database.inline_instance: not an instance"
  in
  let sub = get t sub_name in
  let conns = D.connections parent cid in
  D.remove_comp parent cid;
  (* Map sub nets to parent nets: port nets use the instance connection
     (or a fresh stub), internal nets get fresh parent nets. *)
  let net_map = Hashtbl.create 16 in
  List.iter
    (fun (n : D.net) ->
      match n.D.nport with
      | Some (p, _) ->
          let parent_net =
            match List.assoc_opt p conns with
            | Some nid -> nid
            | None -> D.new_net ~name:(c.D.cname ^ "/" ^ p) parent
          in
          Hashtbl.replace net_map n.D.nid parent_net
      | None ->
          Hashtbl.replace net_map n.D.nid
            (D.new_net ~name:(c.D.cname ^ "/" ^ n.D.nname) parent))
    (D.nets sub);
  List.iter
    (fun (sc : D.comp) ->
      let nid =
        D.add_comp ~name:(c.D.cname ^ "/" ^ sc.D.cname) parent sc.D.kind
      in
      List.iter
        (fun (pin, snet) ->
          D.connect parent nid pin (Hashtbl.find net_map snet))
        (D.connections sub sc.D.id))
    (D.comps sub)

(* Expand all hierarchy, recursively. *)
let flatten t design =
  let d = D.copy design in
  let rec pass () =
    let instances =
      List.filter_map
        (fun (c : D.comp) ->
          match c.D.kind with T.Instance _ -> Some c.D.id | _ -> None)
        (D.comps d)
    in
    if instances <> [] then begin
      List.iter (fun cid -> inline_instance t d cid) instances;
      pass ()
    end
  in
  pass ();
  d

(* Expand just the top level of hierarchy (Figure 18 optimizes level by
   level before expanding the next). *)
let flatten_once t design =
  let d = D.copy design in
  let instances =
    List.filter_map
      (fun (c : D.comp) ->
        match c.D.kind with T.Instance _ -> Some c.D.id | _ -> None)
      (D.comps d)
  in
  List.iter (fun cid -> inline_instance t d cid) instances;
  d
