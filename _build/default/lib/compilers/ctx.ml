(* Shared compiler context: the design database, the generic library,
   its gate set, and the recursive dispatch hook that lets one design
   compiler call another (the paper's register compiler calls the
   multiplexor compiler). *)

type t = {
  db : Database.t;
  lib : Milo_library.Technology.t;
  set : Gate_comp.gate_set;
  subcompile : Milo_netlist.Types.kind -> string;
      (* compile a dependency; returns its design-database name *)
}

let resolver ctx = Database.resolver ctx.db [ ctx.lib ]

(* Instantiate a previously compiled sub-design. *)
let add_instance ?log d ?name sub_name =
  Milo_netlist.Design.add_comp ?log ?name d
    (Milo_netlist.Types.Instance sub_name)

(* Compile a dependency and instantiate it in one step. *)
let instantiate ?log ctx d ?name kind =
  let sub_name = ctx.subcompile kind in
  add_instance ?log d ?name sub_name

(* Merge [src_net] into [port_net]: every pin on the source net (driver
   and sinks alike) moves to the port net, so a value built on an
   internal net reaches the design's output port.  A source that is
   itself a port is buffered instead. *)
let bind_output ctx d src_net port_net =
  let module D = Milo_netlist.Design in
  let resolve = resolver ctx in
  let buffer_from nid =
    let b = D.add_comp d (Milo_netlist.Types.Macro "BUF") in
    D.connect d b "A0" nid;
    D.connect d b "Y" port_net
  in
  match D.driver ~resolve d src_net with
  | D.Src_comp (_, _) ->
      if (D.net d src_net).D.nport <> None then
        (* The signal already drives a port (e.g. a counter whose Q is
           also its terminal count): bridge with a buffer rather than
           stealing the driver. *)
        buffer_from src_net
      else begin
        let pins = (D.net d src_net).D.npins in
        List.iter (fun (cid, pin) -> D.connect d cid pin port_net) pins;
        if (D.net d src_net).D.npins = [] && (D.net d src_net).D.nport = None
        then D.remove_net d src_net
      end
  | D.Src_port p -> buffer_from (D.port_net d p)
  | D.Src_none -> invalid_arg "Ctx.bind_output: undriven source net"

let vdd ?log ctx d = Gate_comp.add_const ?log d ctx.set Milo_netlist.Types.Vdd
let vss ?log ctx d = Gate_comp.add_const ?log d ctx.set Milo_netlist.Types.Vss
