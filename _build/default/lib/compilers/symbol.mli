(** The symbol compiler: printable schematic-capture symbols for
    microarchitecture components. *)

module T = Milo_netlist.Types

type t = {
  symbol_name : string;
  kind : T.kind;
  left_pins : string list;
  right_pins : string list;
  description : string;
}

val describe : T.kind -> string
val generate : T.kind -> t
val render : t -> string
