(* The logic unit compiler: a bitwise gate function over multi-bit
   operands — one gate tree per output bit. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let compile ctx ~bits ~fn ~inputs =
  let kind = T.Logic_unit { bits; fn; inputs } in
  let d = D.create (T.kind_name kind) in
  let set = ctx.Ctx.set in
  let data =
    List.init inputs (fun i ->
        List.init bits (fun b ->
            D.add_port d (Printf.sprintf "D%d_%d" i b) T.Input))
  in
  let y_ports =
    List.init bits (fun b -> D.add_port d (Printf.sprintf "Y%d" b) T.Output)
  in
  List.iteri
    (fun b y ->
      let ins = List.map (fun operand -> List.nth operand b) data in
      let out = Gate_comp.build d set fn ins in
      Ctx.bind_output ctx d out y)
    y_ports;
  d
