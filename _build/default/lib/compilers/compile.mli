(** The design-compiler dispatcher: any microarchitecture kind to a
    generic-macro design, cached in the design database, with the
    compiler-calls-compiler hierarchy of the paper's Figure 16. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

exception Uncompilable of string

val compile_kind : Database.t -> Milo_library.Technology.t -> T.kind -> string
(** Compile (or fetch from the database) the design for a kind; returns
    its database name. *)

val expand_design : Database.t -> Milo_library.Technology.t -> D.t -> D.t
(** Replace every micro component of a captured design by an Instance of
    its compiled sub-design (constants become constant macros). *)

val compile : Database.t -> Milo_library.Technology.t -> T.kind -> D.t
val compile_flat : Database.t -> Milo_library.Technology.t -> T.kind -> D.t
