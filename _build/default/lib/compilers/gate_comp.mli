(** The gate compiler: n-input gate trees from available library gates,
    generalizing the paper's i-input OR compiler algorithm.  Reused by
    every other compiler and by the technology mapper (with the
    technology's own gate set). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

exception Unsupported of string

type gate_set = {
  tech : Milo_library.Technology.t;
  gate_macro : T.gate_fn -> int -> string option;
  const_macro : T.level -> string;
}

val named_set : prefix:string -> Milo_library.Technology.t -> gate_set
(** Gate set using the naming convention [<prefix><FN><arity>], e.g.
    ["E_OR3"]. *)

val generic_set : Milo_library.Technology.t -> gate_set
val resolver : gate_set -> D.resolver
val arities : gate_set -> T.gate_fn -> int list
val largest_arity : gate_set -> T.gate_fn -> int -> int option

val add_gate : ?log:D.log -> D.t -> gate_set -> T.gate_fn -> int list -> int
(** Add one library gate over the given input nets; returns the fresh
    output net.  @raise Unsupported if no macro of that arity exists. *)

val add_const : ?log:D.log -> D.t -> gate_set -> T.level -> int
val tree : ?log:D.log -> D.t -> gate_set -> T.gate_fn -> int list -> int
(** Level-by-level reduction with the widest available gates (the
    paper's OR-compiler loop); associative functions only. *)

val build : ?log:D.log -> D.t -> gate_set -> T.gate_fn -> int list -> int
(** Build any gate function over input nets; returns the output net. *)

val build_expr :
  ?log:D.log ->
  D.t ->
  gate_set ->
  var_net:(int -> int) ->
  Milo_minimize.Factor.expr ->
  int
(** Build a factored expression; [var_net] maps expression variables to
    nets. *)

val compile : gate_set -> T.gate_fn * int -> D.t
(** Stand-alone design for a Gate micro component (ports A1..An, Y). *)
