(** Berkeley Espresso [.pla] reader/writer and netlist construction —
    the "PLA format" input path of the paper's Figure 1. *)

exception Pla_error of int * string

open Milo_boolfunc

type t = { inputs : string list; outputs : string list; covers : Cover.t list }

val of_string : string -> t
val of_file : string -> t
val to_design : ?name:string -> t -> Milo_netlist.Design.t
(** Minimize each output exactly, factor by weak division, build a
    generic gate netlist. *)

val to_string : t -> string
