(** Boolean-equation input ("a set of boolean equations", Figure 1):
    parse [name = expr;] lines over !/&/^/| and build a generic gate
    netlist.  Undefined identifiers become input ports; every defined
    name becomes an output port. *)

exception Equation_error of int * string

val to_design : ?name:string -> string -> Milo_netlist.Design.t
val of_file : string -> Milo_netlist.Design.t
