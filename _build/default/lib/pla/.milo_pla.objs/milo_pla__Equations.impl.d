lib/pla/equations.ml: Filename Hashtbl List Milo_compilers Milo_library Milo_netlist Printf String
