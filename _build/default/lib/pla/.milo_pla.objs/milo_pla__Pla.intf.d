lib/pla/pla.mli: Cover Milo_boolfunc Milo_netlist
