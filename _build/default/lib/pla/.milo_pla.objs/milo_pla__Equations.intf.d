lib/pla/equations.mli: Milo_netlist
