lib/pla/pla.ml: Buffer Cover Cube List Milo_boolfunc Milo_compilers Milo_library Milo_minimize Milo_netlist Printf String
