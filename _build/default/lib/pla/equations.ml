(* Boolean-equation input (the paper's Figure 1 lists "a set of boolean
   equations" beside PLA format and schematics):

     # sum-of-products with the usual operators
     carry = a & b | (a ^ b) & cin;
     sum   = a ^ b ^ cin;

   Operators: ! or ~ (not), & or * (and), ^ (xor), | or + (or), with
   parentheses; precedence not > and > xor > or.  Every identifier that
   is never defined is a primary input; every defined name becomes an
   output port (and may be used in later equations). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

exception Equation_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Equation_error (line, s))) fmt

type token =
  | Tid of string
  | Tconst of bool
  | Tnot
  | Tand
  | Tor
  | Txor
  | Tlparen
  | Trparen
  | Teq
  | Tsemi
  | Teof

let tokenize src =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let push t = tokens := (t, !line) :: !tokens in
  while !i < n do
    (match src.[!i] with
    | ' ' | '\t' | '\r' -> ()
    | '\n' -> incr line
    | '#' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done;
        decr i
    | '!' | '~' -> push Tnot
    | '&' | '*' -> push Tand
    | '|' | '+' -> push Tor
    | '^' -> push Txor
    | '(' -> push Tlparen
    | ')' -> push Trparen
    | '=' -> push Teq
    | ';' -> push Tsemi
    | '0' -> push (Tconst false)
    | '1' -> push (Tconst true)
    | c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' ->
        let s = ref !i in
        while
          !s < n
          &&
          let c' = src.[!s] in
          (c' >= 'a' && c' <= 'z')
          || (c' >= 'A' && c' <= 'Z')
          || (c' >= '0' && c' <= '9')
          || c' = '_'
        do
          incr s
        done;
        push (Tid (String.sub src !i (!s - !i)));
        i := !s - 1
    | c -> fail !line "unexpected character %c" c);
    incr i
  done;
  push Teof;
  List.rev !tokens

type expr =
  | X_var of string
  | X_const of bool
  | X_not of expr
  | X_op of T.gate_fn * expr list

(* precedence: or < xor < and < unary *)
let parse_equations src =
  let tokens = ref (tokenize src) in
  let peek () = match !tokens with (t, _) :: _ -> t | [] -> Teof in
  let line () = match !tokens with (_, l) :: _ -> l | [] -> 0 in
  let advance () = match !tokens with _ :: rest -> tokens := rest | [] -> () in
  let rec parse_or () =
    let first = parse_xor () in
    let rec go acc =
      if peek () = Tor then begin
        advance ();
        go (parse_xor () :: acc)
      end
      else acc
    in
    match go [ first ] with [ single ] -> single | xs -> X_op (T.Or, List.rev xs)
  and parse_xor () =
    let first = parse_and () in
    let rec go acc =
      if peek () = Txor then begin
        advance ();
        go (parse_and () :: acc)
      end
      else acc
    in
    match go [ first ] with [ single ] -> single | xs -> X_op (T.Xor, List.rev xs)
  and parse_and () =
    let first = parse_unary () in
    let rec go acc =
      if peek () = Tand then begin
        advance ();
        go (parse_unary () :: acc)
      end
      else acc
    in
    match go [ first ] with [ single ] -> single | xs -> X_op (T.And, List.rev xs)
  and parse_unary () =
    match peek () with
    | Tnot ->
        advance ();
        X_not (parse_unary ())
    | Tlparen ->
        advance ();
        let e = parse_or () in
        if peek () <> Trparen then fail (line ()) "expected )";
        advance ();
        e
    | Tid name ->
        advance ();
        X_var name
    | Tconst b ->
        advance ();
        X_const b
    | _ -> fail (line ()) "expected an operand"
  in
  let equations = ref [] in
  let rec go () =
    match peek () with
    | Teof -> ()
    | Tid name ->
        advance ();
        if peek () <> Teq then fail (line ()) "expected = after %s" name;
        advance ();
        let e = parse_or () in
        if peek () <> Tsemi then fail (line ()) "expected ; to end equation";
        advance ();
        equations := (name, e) :: !equations;
        go ()
    | _ -> fail (line ()) "expected an equation (name = expr;)"
  in
  go ();
  List.rev !equations

(* Elaborate the equations into a generic gate netlist. *)
let to_design ?(name = "equations") src =
  let equations = parse_equations src in
  if equations = [] then fail 0 "no equations";
  let defined = List.map fst equations in
  (* free variables, in first-use order *)
  let inputs = ref [] in
  let rec scan = function
    | X_var v ->
        if (not (List.mem v defined)) && not (List.mem v !inputs) then
          inputs := v :: !inputs
    | X_const _ -> ()
    | X_not e -> scan e
    | X_op (_, es) -> List.iter scan es
  in
  List.iter (fun (_, e) -> scan e) equations;
  let d = D.create name in
  let lib = Milo_library.Generic.get () in
  let set = Milo_compilers.Gate_comp.generic_set lib in
  let env = Hashtbl.create 16 in
  List.iter
    (fun v -> Hashtbl.replace env v (D.add_port d v T.Input))
    (List.rev !inputs);
  (* output ports first so equations can reference earlier outputs *)
  List.iter
    (fun (nm, _) ->
      if Hashtbl.mem env nm then fail 0 "%s defined twice (or shadows an input)" nm;
      Hashtbl.replace env nm (D.add_port d nm T.Output))
    equations;
  let rec build = function
    | X_var v -> Hashtbl.find env v
    | X_const b ->
        Milo_compilers.Gate_comp.add_const d set (if b then T.Vdd else T.Vss)
    | X_not e -> Milo_compilers.Gate_comp.build d set T.Inv [ build e ]
    | X_op (fn, es) ->
        Milo_compilers.Gate_comp.build d set fn (List.map build es)
  in
  List.iter
    (fun (nm, e) ->
      let port = Hashtbl.find env nm in
      let src_net = build e in
      (* the expression's root gate drives the output port directly *)
      let resolve kind mnm =
        match kind with
        | T.Macro _ ->
            (Milo_library.Technology.find lib mnm).Milo_library.Macro.pins
        | T.Instance _ | T.Gate _ | T.Multiplexor _ | T.Decoder _
        | T.Comparator _ | T.Logic_unit _ | T.Arith_unit _ | T.Register _
        | T.Counter _ | T.Constant _ ->
            T.pins_of_kind kind
      in
      match D.driver ~resolve d src_net with
      | D.Src_comp (_, _) when (D.net d src_net).D.nport = None ->
          let pins = (D.net d src_net).D.npins in
          List.iter (fun (cid, pin) -> D.connect d cid pin port) pins;
          (match D.net_opt d src_net with
          | Some net when net.D.npins = [] && net.D.nport = None ->
              D.remove_net d src_net
          | Some _ | None -> ())
      | D.Src_comp (_, _) | D.Src_port _ ->
          (* aliasing a port or an already-bound net: buffer *)
          let b = D.add_comp d (T.Macro "BUF") in
          D.connect d b "A0" src_net;
          D.connect d b "Y" port
      | D.Src_none -> fail 0 "%s has no logic" nm)
    equations;
  d

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  to_design ~name:(Filename.remove_extension (Filename.basename path)) src
