(* Berkeley Espresso .pla reader: the "PLA format" input path of the
   paper's Figure 1.

     .i 3
     .o 2
     .ilb a b c          (optional)
     .ob f g             (optional)
     .p 4                (optional)
     1-0 10
     011 01
     .e

   Rows are input cubes ('0'/'1'/'-') and output parts ('1' = the cube
   belongs to that output's on-set; '0'/'-' = it does not).  The reader
   produces one SOP cover per output; [to_design] minimizes each,
   factors it, and builds a generic gate netlist. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
open Milo_boolfunc

exception Pla_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Pla_error (line, s))) fmt

type t = {
  inputs : string list;
  outputs : string list;
  covers : Cover.t list;  (* one per output, over the inputs in order *)
}

let parse_cube line ni text =
  if String.length text <> ni then
    fail line "input part %s has %d characters, expected %d" text
      (String.length text) ni;
  let lits = ref [] in
  String.iteri
    (fun v c ->
      match c with
      | '1' -> lits := (v, true) :: !lits
      | '0' -> lits := (v, false) :: !lits
      | '-' | '~' -> ()
      | other -> fail line "bad input character %c" other)
    text;
  Cube.of_literals ni !lits

let of_string src =
  let lines = String.split_on_char '\n' src in
  let ni = ref 0 and no = ref 0 in
  let ilb = ref [] and ob = ref [] in
  let rows = ref [] in
  let ended = ref false in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      let fields =
        String.split_on_char ' ' (String.trim line)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun f -> f <> "")
      in
      match fields with
      | [] -> ()
      | _ when !ended -> ()
      | ".i" :: n :: _ -> ni := int_of_string n
      | ".o" :: n :: _ -> no := int_of_string n
      | ".p" :: _ -> ()
      | ".ilb" :: names -> ilb := names
      | ".ob" :: names -> ob := names
      | [ ".e" ] | [ ".end" ] -> ended := true
      | directive :: _ when String.length directive > 0 && directive.[0] = '.'
        ->
          fail lineno "unknown directive %s" directive
      | [ input_part; output_part ] ->
          if !ni = 0 || !no = 0 then fail lineno "cube before .i/.o";
          if String.length output_part <> !no then
            fail lineno "output part %s has %d characters, expected %d"
              output_part (String.length output_part) !no;
          rows := (parse_cube lineno !ni input_part, output_part) :: !rows
      | _ -> fail lineno "cannot parse: %s" (String.trim line))
    lines;
  if !ni = 0 || !no = 0 then fail 0 "missing .i or .o";
  if !ni > 16 then fail 0 ".i %d too wide (max 16)" !ni;
  let inputs =
    if !ilb <> [] then !ilb else List.init !ni (fun i -> Printf.sprintf "x%d" i)
  in
  let outputs =
    if !ob <> [] then !ob else List.init !no (fun i -> Printf.sprintf "f%d" i)
  in
  if List.length inputs <> !ni then fail 0 ".ilb arity mismatch";
  if List.length outputs <> !no then fail 0 ".ob arity mismatch";
  let covers =
    List.init !no (fun o ->
        let cubes =
          List.filter_map
            (fun (cube, out) -> if out.[o] = '1' then Some cube else None)
            !rows
        in
        Cover.create !ni cubes)
  in
  { inputs; outputs; covers }

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  of_string src

(* Build a generic gate netlist: minimize each output exactly (on-set
   minterm enumeration, so two rows covering the same minterm are fine),
   factor by weak division, and rebuild as AND/OR/INV trees. *)
let to_design ?(name = "pla") t =
  let d = D.create name in
  let lib = Milo_library.Generic.get () in
  let set = Milo_compilers.Gate_comp.generic_set lib in
  let ni = List.length t.inputs in
  let in_nets = List.map (fun p -> D.add_port d p T.Input) t.inputs in
  List.iter2
    (fun oname cover ->
      let port = D.add_port d oname T.Output in
      let on = Cover.minterms cover in
      let minimized = Milo_minimize.Quine.minimize ~vars:ni ~on ~dc:[] in
      let expr = Milo_minimize.Factor.of_cover minimized in
      let src =
        Milo_compilers.Gate_comp.build_expr d set
          ~var_net:(fun v -> List.nth in_nets v)
          expr
      in
      (* route the built signal onto the output port *)
      let resolve kind nm =
        match kind with
        | T.Macro _ ->
            (Milo_library.Technology.find lib nm).Milo_library.Macro.pins
        | T.Instance _ | T.Gate _ | T.Multiplexor _ | T.Decoder _
        | T.Comparator _ | T.Logic_unit _ | T.Arith_unit _ | T.Register _
        | T.Counter _ | T.Constant _ ->
            T.pins_of_kind kind
      in
      match D.driver ~resolve d src with
      | D.Src_comp (_, _) when (D.net d src).D.nport = None ->
          let pins = (D.net d src).D.npins in
          List.iter (fun (cid, pin) -> D.connect d cid pin port) pins;
          (match D.net_opt d src with
          | Some n when n.D.npins = [] && n.D.nport = None ->
              D.remove_net d src
          | Some _ | None -> ())
      | D.Src_comp (_, _) | D.Src_port _ ->
          let b = D.add_comp d (T.Macro "BUF") in
          D.connect d b "A0" src;
          D.connect d b "Y" port
      | D.Src_none -> fail 0 "output %s has no logic" oname)
    t.outputs t.covers;
  d

(* Emit .pla text (round-trip support). *)
let to_string t =
  let b = Buffer.create 256 in
  let ni = List.length t.inputs and no = List.length t.outputs in
  Buffer.add_string b (Printf.sprintf ".i %d\n.o %d\n" ni no);
  Buffer.add_string b (".ilb " ^ String.concat " " t.inputs ^ "\n");
  Buffer.add_string b (".ob " ^ String.concat " " t.outputs ^ "\n");
  List.iteri
    (fun o cover ->
      List.iter
        (fun cube ->
          let input_part =
            String.init ni (fun v ->
                match Cube.polarity cube v with
                | Some true -> '1'
                | Some false -> '0'
                | None -> '-')
          in
          let output_part = String.init no (fun k -> if k = o then '1' else '0') in
          Buffer.add_string b (input_part ^ " " ^ output_part ^ "\n"))
        (Cover.cubes cover))
    t.covers;
  Buffer.add_string b ".e\n";
  Buffer.contents b
