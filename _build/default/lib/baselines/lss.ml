(* An LSS-style baseline flow (the paper's Section 2.1.3 survey system):
   four description levels, each produced by a naive translator and
   cleaned by local transformations —

     high level  ->  AND/OR  ->  NAND/NOR  ->  technology specific

   The translators are deliberately simple ("achieved through naive
   transformations that may produce unnecessary NANDs and NORs"); the
   per-level optimizers are the recognize-act engine over the local
   transformation rules.  Used as the mixed-strategy comparison point
   against the full MILO flow and the algorithms-only DAGON mapper. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Macro = Milo_library.Macro
module Gate_shape = Milo_critic.Gate_shape

let generic_ctx design =
  let lib = Milo_library.Generic.get () in
  R.make_context lib (Milo_compilers.Gate_comp.generic_set lib) design

let local_transforms design =
  let ctx = generic_ctx design in
  Milo_rules.Engine.ops_run_incremental ctx
    (Milo_critic.Critic.logic @ Milo_critic.Critic.area
   @ Milo_critic.Critic.cleanup)

(* Already at the AND/OR level (or atomic)? *)
let keep_at_and_or m =
  match Gate_shape.of_macro m with
  | Some { Gate_shape.fn = T.And | T.Or | T.Inv | T.Buf; _ } -> true
  | Some _ -> false
  | None -> Gate_shape.is_const m <> None

(* --- Level 2: AND/OR ---------------------------------------------------- *)

(* Decompose every single-output combinational macro into AND/OR/INV
   gates through its minimized SOP (the LSS AND/OR translator). *)
let to_and_or design =
  let d = D.copy design in
  let lib = Milo_library.Generic.get () in
  let set = Milo_compilers.Gate_comp.generic_set lib in
  let ctx = generic_ctx d in
  List.iter
    (fun (c : D.comp) ->
      match c.D.kind with
      | T.Macro mname -> (
          let m = Milo_library.Technology.find lib mname in
          match Macro.single_output_tt m with
          | Some tt
            when (not (Macro.is_sequential m)) && not (keep_at_and_or m) -> (
              match D.connection d c.D.id (List.nth m.Macro.outputs 0) with
              | None -> ()
              | Some out ->
                  let ins =
                    List.map (fun pin -> D.connection d c.D.id pin) m.Macro.inputs
                  in
                  if List.for_all (fun x -> x <> None) ins then begin
                    let ins = List.map Option.get ins in
                    let cover = Milo_minimize.Espresso.minimize_tt tt in
                    let expr = Milo_minimize.Factor.of_cover cover in
                    D.remove_comp d c.D.id;
                    if D.net_opt d out <> None then begin
                      let src =
                        Milo_compilers.Gate_comp.build_expr d set
                          ~var_net:(fun v -> List.nth ins v)
                          expr
                      in
                      R.reroute ctx (D.new_log ()) ~signal:src ~old_net:out
                    end
                  end)
          | Some _ | None -> ())
      | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
      | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
      | T.Constant _ | T.Instance _ ->
          ())
    (D.comps d);
  d

(* --- Level 3: NAND/NOR --------------------------------------------------- *)

let translate_inverted d lib (c : D.comp) inv_fn arity =
  let mname = Printf.sprintf "%s%d" (T.gate_fn_name inv_fn) arity in
  if Milo_library.Technology.mem lib mname then
    match D.connection d c.D.id "Y" with
    | None -> ()
    | Some out ->
        D.set_kind d c.D.id (T.Macro mname);
        (* the naive translator's compensating inverter *)
        let mid = D.new_net d in
        D.connect d c.D.id "Y" mid;
        let inv = D.add_comp d (T.Macro "INV") in
        D.connect d inv "A0" mid;
        D.connect d inv "Y" out

(* Naive translation: AND -> NAND+INV, OR -> NOR+INV.  The level
   optimizer's double-inverter rule then removes the debris, exactly as
   the paper describes ("these extra gates are removed by the optimizer
   at this level"). *)
let to_nand_nor design =
  let d = D.copy design in
  let lib = Milo_library.Generic.get () in
  List.iter
    (fun (c : D.comp) ->
      match c.D.kind with
      | T.Macro mname -> (
          let m = Milo_library.Technology.find lib mname in
          match Gate_shape.of_macro m with
          | Some { Gate_shape.fn = T.And; arity } ->
              translate_inverted d lib c T.Nand arity
          | Some { Gate_shape.fn = T.Or; arity } ->
              translate_inverted d lib c T.Nor arity
          | Some _ | None -> ())
      | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
      | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
      | T.Constant _ | T.Instance _ ->
          ())
    (D.comps d);
  d

(* --- The full LSS flow ---------------------------------------------------- *)

type level_report = { level_name : string; comps : int; transforms : int }

let optimize ?target db design =
  let target =
    match target with
    | Some t -> t
    | None -> Milo_techmap.Table_map.ecl_target ()
  in
  let lib = Milo_library.Generic.get () in
  let reports = ref [] in
  let record name d n =
    reports :=
      { level_name = name; comps = D.num_comps d; transforms = n } :: !reports
  in
  (* Level 1: high level.  LSS performs limited transformations on the
     high-level operators before decomposition. *)
  let high = D.copy design in
  let ctx = generic_ctx high in
  let n1 =
    List.fold_left
      (fun acc (r : R.t) ->
        acc
        + List.length
            (List.filter
               (fun s -> r.R.apply ctx s (D.new_log ()))
               (r.R.find ctx)))
      0 Milo_critic.Critic.micro
  in
  record "high-level" high n1;
  (* Translate: compile + flatten to generic macros. *)
  let expanded = Milo_compilers.Compile.expand_design db lib high in
  let flat = Milo_compilers.Database.flatten db expanded in
  (* Level 2: AND/OR. *)
  let and_or = to_and_or flat in
  let n2 = local_transforms and_or in
  record "and-or" and_or n2;
  (* Level 3: NAND/NOR. *)
  let nand_nor = to_nand_nor and_or in
  let n3 = local_transforms nand_nor in
  record "nand-nor" nand_nor n3;
  (* Level 4: technology specific. *)
  let mapped = Milo_techmap.Table_map.map_design target nand_nor in
  let tech_ctx =
    R.make_context target.Milo_techmap.Table_map.tech
      target.Milo_techmap.Table_map.set mapped
  in
  let n4 =
    Milo_rules.Engine.ops_run_incremental tech_ctx
      (Milo_critic.Critic.logic @ Milo_critic.Critic.area
     @ Milo_critic.Critic.cleanup)
  in
  record "technology" mapped n4;
  (mapped, List.rev !reports)
