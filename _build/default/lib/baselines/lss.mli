(** An LSS-style baseline flow (Section 2.1.3): four description levels
    (high level, AND/OR, NAND/NOR, technology) with naive translators
    and local-transformation optimizers at each level. *)

module D = Milo_netlist.Design

val to_and_or : D.t -> D.t
(** Decompose single-output macros into AND/OR/INV gates via minimized
    SOP (fresh copy). *)

val to_nand_nor : D.t -> D.t
(** Naive AND→NAND+INV / OR→NOR+INV translation (fresh copy). *)

type level_report = { level_name : string; comps : int; transforms : int }

val optimize :
  ?target:Milo_techmap.Table_map.target ->
  Milo_compilers.Database.t ->
  D.t ->
  D.t * level_report list
(** Run all four levels; returns the technology design and the
    per-level transform counts. *)
