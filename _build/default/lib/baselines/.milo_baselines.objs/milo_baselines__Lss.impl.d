lib/baselines/lss.ml: List Milo_compilers Milo_critic Milo_library Milo_minimize Milo_netlist Milo_rules Milo_techmap Option Printf
