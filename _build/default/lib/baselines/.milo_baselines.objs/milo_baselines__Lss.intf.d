lib/baselines/lss.mli: Milo_compilers Milo_netlist Milo_techmap
