lib/critic/micro_critic.mli: Milo_compilers Milo_library Milo_netlist Milo_rules Milo_techmap
