lib/critic/gate_shape.mli: Milo_library Milo_netlist
