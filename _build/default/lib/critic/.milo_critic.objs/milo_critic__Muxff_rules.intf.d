lib/critic/muxff_rules.mli: Milo_rules
