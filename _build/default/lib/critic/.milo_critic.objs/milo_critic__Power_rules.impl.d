lib/critic/power_rules.ml: List Milo_library Milo_netlist Milo_rules
