lib/critic/electric_rules.ml: List Milo_compilers Milo_netlist Milo_rules Printf
