lib/critic/muxff_rules.ml: Gate_shape List Milo_library Milo_netlist Milo_rules Printf
