lib/critic/timing_rules.mli: Milo_rules
