lib/critic/power_rules.mli: Milo_rules
