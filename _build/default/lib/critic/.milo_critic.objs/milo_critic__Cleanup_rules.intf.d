lib/critic/cleanup_rules.mli: Milo_rules
