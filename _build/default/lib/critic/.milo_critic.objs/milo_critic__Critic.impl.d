lib/critic/critic.ml: Area_rules Cleanup_rules Electric_rules Logic_rules Micro_critic Muxff_rules Power_rules Timing_rules
