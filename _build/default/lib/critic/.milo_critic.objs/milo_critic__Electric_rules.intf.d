lib/critic/electric_rules.mli: Milo_rules
