lib/critic/micro_critic.ml: Gate_shape List Milo_compilers Milo_estimate Milo_library Milo_netlist Milo_rules Milo_techmap Milo_timing Printf
