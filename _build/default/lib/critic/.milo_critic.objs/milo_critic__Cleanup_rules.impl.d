lib/critic/cleanup_rules.ml: Gate_shape List Milo_compilers Milo_library Milo_netlist Milo_rules Option Printf
