lib/critic/logic_rules.mli: Milo_rules
