lib/critic/gate_shape.ml: List Milo_boolfunc Milo_library Milo_netlist Printf Truth_table
