lib/critic/area_rules.ml: Gate_shape Hashtbl List Milo_library Milo_netlist Milo_rules Option Printf String
