lib/critic/area_rules.mli: Milo_rules
