lib/critic/critic.mli: Milo_rules
