(* The logic critic: rules that always decrease both delay and area
   (Figure 17's first expert).  All matching is behavioural, so the same
   rules serve the generic, ECL and CMOS libraries. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Macro = Milo_library.Macro

let shape_of ctx (c : D.comp) =
  match R.macro_of ctx c with
  | Some m -> Gate_shape.of_macro m
  | None -> None

let output_net ctx (c : D.comp) =
  match R.macro_of ctx c with
  | Some m -> (
      match m.Macro.outputs with
      | [ out ] -> D.connection ctx.R.design c.D.id out
      | [] | _ :: _ -> None)
  | None -> None

let gate_input_nets ctx (c : D.comp) arity =
  List.init arity (fun i ->
      D.connection ctx.R.design c.D.id (Printf.sprintf "A%d" i))
  |> List.filter_map (fun x -> x)

(* Gate + output inverter -> inverted gate (OR+INV -> NOR, etc.), when
   the inverted form exists in the library.  Decreases area and delay. *)
let invert_root =
  let inverted = function
    | T.And -> Some T.Nand
    | T.Or -> Some T.Nor
    | T.Nand -> Some T.And
    | T.Nor -> Some T.Or
    | T.Xor -> Some T.Xnor
    | T.Xnor -> Some T.Xor
    | T.Inv | T.Buf -> None
  in
  R.make ~name:"invert-root" ~cls:R.Logic
    ~find:(fun ctx ->
      List.filter_map
        (fun (inv : D.comp) ->
          match shape_of ctx inv with
          | Some { Gate_shape.fn = T.Inv; _ } -> (
              match D.connection ctx.R.design inv.D.id "A0" with
              | Some bnet when R.fanout ctx bnet = 1 && not (R.net_is_port ctx bnet)
                -> (
                  match R.driver_comp ctx bnet with
                  | Some (g, _) -> (
                      match shape_of ctx g with
                      | Some { Gate_shape.fn; arity } -> (
                          match inverted fn with
                          | Some fn'
                            when ctx.R.set.Milo_compilers.Gate_comp.gate_macro
                                   fn' arity
                                 <> None ->
                              Some
                                {
                                  R.site_comps = [ g.D.id; inv.D.id ];
                                  site_data = [];
                                  descr =
                                    Printf.sprintf "%s+INV" (T.gate_fn_name fn);
                                }
                          | Some _ | None -> None)
                      | None -> None)
                  | None -> None)
              | Some _ | None -> None)
          | Some _ | None -> None)
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ gid; invid ]
        when D.comp_opt ctx.R.design gid <> None
             && D.comp_opt ctx.R.design invid <> None -> (
          let g = D.comp ctx.R.design gid in
          let inv = D.comp ctx.R.design invid in
          match (shape_of ctx g, output_net ctx inv) with
          | Some _, Some onet
            when R.fanout ctx onet = 0 && not (R.net_is_port ctx onet) ->
              (* dead inverter: leave it to the dead-logic cleanup *)
              false
          | Some { Gate_shape.fn; arity }, Some onet -> (
              let fn' =
                match inverted fn with Some f -> f | None -> assert false
              in
              match ctx.R.set.Milo_compilers.Gate_comp.gate_macro fn' arity with
              | None -> false
              | Some mname ->
                  let bnet = output_net ctx g in
                  R.remove_comp_and_dangling ctx log invid;
                  R.replace_macro ctx log gid mname (fun p -> Some p);
                  (* Reconnect the output: the gate keeps its old output
                     net; merge it into the inverter's old output. *)
                  (match bnet with
                  | Some b when D.net_opt ctx.R.design b <> None ->
                      D.connect ~log ctx.R.design gid "Y" b;
                      R.merge_net_into ctx log ~src:b ~dst:onet
                  | Some _ | None -> D.connect ~log ctx.R.design gid "Y" onet);
                  true)
          | _ -> false)
      | _ -> false)

(* Associative gate collapse: AND(AND(a,b),c) -> AND3(a,b,c) when the
   inner gate has fanout 1 and the wider macro exists. *)
let gate_merge =
  let assoc = function
    | T.And | T.Or | T.Xor -> true
    | T.Nand | T.Nor | T.Xnor | T.Inv | T.Buf -> false
  in
  R.make ~name:"gate-merge" ~cls:R.Logic
    ~find:(fun ctx ->
      List.concat_map
        (fun (outer : D.comp) ->
          match shape_of ctx outer with
          | Some { Gate_shape.fn; arity } when assoc fn ->
              List.filter_map
                (fun i ->
                  match
                    D.connection ctx.R.design outer.D.id (Printf.sprintf "A%d" i)
                  with
                  | Some nid
                    when R.fanout ctx nid = 1 && not (R.net_is_port ctx nid)
                    -> (
                      match R.driver_comp ctx nid with
                      | Some (inner, _) -> (
                          match shape_of ctx inner with
                          | Some { Gate_shape.fn = ifn; arity = iar }
                            when ifn = fn
                                 && ctx.R.set.Milo_compilers.Gate_comp.gate_macro
                                      fn
                                      (arity + iar - 1)
                                    <> None ->
                              Some
                                {
                                  R.site_comps = [ outer.D.id; inner.D.id ];
                                  site_data = [];
                                  descr =
                                    Printf.sprintf "merge %s%d+%d"
                                      (T.gate_fn_name fn) arity iar;
                                }
                          | Some _ | None -> None)
                      | None -> None)
                  | Some _ | None -> None)
                (List.init arity (fun i -> i))
          | Some _ | None -> [])
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ oid; iid ]
        when D.comp_opt ctx.R.design oid <> None
             && D.comp_opt ctx.R.design iid <> None -> (
          let outer = D.comp ctx.R.design oid in
          let inner = D.comp ctx.R.design iid in
          match (shape_of ctx outer, shape_of ctx inner, output_net ctx outer) with
          | Some { Gate_shape.fn; arity }, Some { Gate_shape.arity = iar; _ },
            Some onet ->
              let inner_out = output_net ctx inner in
              let outer_ins = gate_input_nets ctx outer arity in
              let inner_ins = gate_input_nets ctx inner iar in
              let kept =
                List.filter (fun n -> Some n <> inner_out) outer_ins
              in
              if List.length kept <> arity - 1 then false
              else begin
                R.remove_comp_and_dangling ctx log oid;
                R.remove_comp_and_dangling ctx log iid;
                if D.net_opt ctx.R.design onet <> None then begin
                  let src =
                    Milo_compilers.Gate_comp.build ~log ctx.R.design ctx.R.set
                      fn (inner_ins @ kept)
                  in
                  R.merge_net_into ctx log ~src ~dst:onet
                end;
                true
              end
          | _ -> false)
      | _ -> false)

(* Mux + flip-flop merge: an n:1 mux feeding the D of a plain DFF with
   fanout 1 becomes a MUXFF macro — the Figure 18 REG4 optimization. *)
let mux_ff_merge =
  R.make ~name:"mux-ff-merge" ~cls:R.Logic
    ~find:(fun ctx ->
      List.filter_map
        (fun (ff : D.comp) ->
          match R.macro_of ctx ff with
          | Some
              {
                Macro.behavior =
                  Macro.Seq_dff
                    { data = Macro.Direct; latch = false; has_set = false;
                      has_reset; has_enable = false; inverting = false };
                _;
              } -> (
              match D.connection ctx.R.design ff.D.id "D" with
              | Some dnet
                when R.fanout ctx dnet = 1 && not (R.net_is_port ctx dnet) -> (
                  match R.driver_comp ctx dnet with
                  | Some (mx, _) -> (
                      match R.macro_of ctx mx with
                      | Some mm -> (
                          match Gate_shape.mux_inputs mm with
                          | Some n ->
                              let prefix =
                                match
                                  Milo_library.Technology.name ctx.R.tech
                                with
                                | "ecl" -> "E_"
                                | "cmos" -> "C_"
                                | _ -> ""
                              in
                              let target =
                                Printf.sprintf "%sMUXFF%d%s" prefix n
                                  (if has_reset then "_R" else "")
                              in
                              if Milo_library.Technology.mem ctx.R.tech target
                              then
                                Some
                                  {
                                    R.site_comps = [ ff.D.id; mx.D.id ];
                                    site_data = [];
                                    descr = "mux+ff -> " ^ target;
                                  }
                              else None
                          | None -> None)
                      | None -> None)
                  | None -> None)
              | Some _ | None -> None)
          | Some _ | None -> None)
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ ffid; mxid ]
        when D.comp_opt ctx.R.design ffid <> None
             && D.comp_opt ctx.R.design mxid <> None -> (
          let ff = D.comp ctx.R.design ffid in
          let mx = D.comp ctx.R.design mxid in
          match (R.macro_of ctx ff, R.macro_of ctx mx) with
          | Some fm, Some mm -> (
              match (fm.Macro.behavior, Gate_shape.mux_inputs mm) with
              | Macro.Seq_dff { has_reset; _ }, Some n ->
                  let prefix =
                    match Milo_library.Technology.name ctx.R.tech with
                    | "ecl" -> "E_"
                    | "cmos" -> "C_"
                    | _ -> ""
                  in
                  let target =
                    Printf.sprintf "%sMUXFF%d%s" prefix n
                      (if has_reset then "_R" else "")
                  in
                  if not (Milo_library.Technology.mem ctx.R.tech target) then
                    false
                  else begin
                    let mux_conns = D.connections ctx.R.design mxid in
                    R.remove_comp_and_dangling ctx log mxid;
                    R.replace_macro ctx log ffid target (fun p ->
                        match p with
                        | "CLK" -> Some "CLK"
                        | "RST" -> Some "RST"
                        | "Q" -> Some "Q"
                        | _ -> None);
                    (* Wire mux data/select pins onto the merged macro. *)
                    List.iter
                      (fun (pin, nid) ->
                        if
                          pin <> "Y"
                          && D.net_opt ctx.R.design nid <> None
                        then D.connect ~log ctx.R.design ffid pin nid)
                      mux_conns;
                    true
                  end
              | _ -> false)
          | _ -> false)
      | _ -> false)

(* Mux with constant select collapses to a wire. *)
let const_select_mux =
  R.make ~name:"const-select-mux" ~cls:R.Logic
    ~find:(fun ctx ->
      List.filter_map
        (fun (mx : D.comp) ->
          match R.macro_of ctx mx with
          | Some mm -> (
              match Gate_shape.mux_inputs mm with
              | Some n ->
                  let sel_known =
                    List.for_all
                      (fun i ->
                        match
                          D.connection ctx.R.design mx.D.id
                            (Printf.sprintf "S%d" i)
                        with
                        | Some nid -> (
                            match R.driver_comp ctx nid with
                            | Some (dc, _) -> (
                                match R.macro_of ctx dc with
                                | Some dm -> Gate_shape.is_const dm <> None
                                | None -> false)
                            | None -> false)
                        | None -> false)
                      (List.init (T.clog2 n) (fun i -> i))
                  in
                  if sel_known then
                    Some
                      { R.site_comps = [ mx.D.id ]; site_data = []; descr = "const-sel mux" }
                  else None
              | None -> None)
          | None -> None)
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ mxid ] when D.comp_opt ctx.R.design mxid <> None -> (
          let mx = D.comp ctx.R.design mxid in
          match R.macro_of ctx mx with
          | Some mm -> (
              match Gate_shape.mux_inputs mm with
              | Some n -> (
                  let sel_bit i =
                    match
                      D.connection ctx.R.design mxid (Printf.sprintf "S%d" i)
                    with
                    | Some nid -> (
                        match R.driver_comp ctx nid with
                        | Some (dc, _) -> (
                            match R.macro_of ctx dc with
                            | Some dm ->
                                Option.value ~default:false
                                  (Gate_shape.is_const dm)
                            | None -> false)
                        | None -> false)
                    | None -> false
                  in
                  let sel =
                    List.fold_left
                      (fun acc i -> if sel_bit i then acc lor (1 lsl i) else acc)
                      0
                      (List.init (T.clog2 n) (fun i -> i))
                  in
                  let data =
                    D.connection ctx.R.design mxid (Printf.sprintf "D%d" sel)
                  in
                  let out =
                    match mm.Macro.outputs with
                    | [ o ] -> D.connection ctx.R.design mxid o
                    | [] | _ :: _ -> None
                  in
                  match (data, out) with
                  | Some dnet, Some onet when not (R.net_is_port ctx onet) ->
                      R.remove_comp_and_dangling ctx log mxid;
                      if D.net_opt ctx.R.design onet <> None then
                        R.merge_net_into ctx log ~src:onet ~dst:dnet;
                      true
                  | _ -> false)
              | None -> false)
          | None -> false)
      | _ -> false)

let rules = [ invert_root; gate_merge; mux_ff_merge; const_select_mux ]
