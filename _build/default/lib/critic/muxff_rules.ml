(* The second mux + flip-flop merge of the paper's ABADD example
   (Figure 18): once each REG4 bit has become a MUXFF2 (2:1 mux fused
   with its flip-flop), the datapath's own 2:1 input multiplexor can
   fuse in as well, producing the 4:1-mux-with-flip-flop macro —
   "making use of high-level macros that have 4-1 multiplexors combined
   with a flip-flop". *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Macro = Milo_library.Macro

let prefix_of ctx =
  match Milo_library.Technology.name ctx.R.tech with
  | "ecl" -> "E_"
  | "cmos" -> "C_"
  | _ -> ""

(* A MUXFF2-style macro: a flip-flop with a 2-input mux on its data,
   no set/enable wrapping, not inverting, not a latch. *)
let muxff2_of ctx (c : D.comp) =
  match R.macro_of ctx c with
  | Some
      ({
         Macro.behavior =
           Macro.Seq_dff
             { data = Macro.Muxed 2; latch = false; has_set = false;
               has_reset; has_enable = false; inverting = false };
         _;
       } as m) ->
      Some (m, has_reset)
  | Some _ | None -> None

let mux2_driver ctx nid =
  if R.fanout ctx nid <> 1 || R.net_is_port ctx nid then None
  else
    match R.driver_comp ctx nid with
    | Some (mx, _) -> (
        match R.macro_of ctx mx with
        | Some mm when Gate_shape.mux_inputs mm = Some 2 -> Some mx
        | Some _ | None -> None)
    | None -> None

let mux_into_muxff =
  R.make ~name:"mux-into-muxff" ~cls:R.Logic
    ~find:(fun ctx ->
      List.concat_map
        (fun (ff : D.comp) ->
          match muxff2_of ctx ff with
          | None -> []
          | Some (_, has_reset) ->
              let target =
                Printf.sprintf "%sMUXFF4%s" (prefix_of ctx)
                  (if has_reset then "_R" else "")
              in
              if not (Milo_library.Technology.mem ctx.R.tech target) then []
              else
                List.filter_map
                  (fun k ->
                    match D.connection ctx.R.design ff.D.id (Printf.sprintf "D%d" k) with
                    | Some dnet -> (
                        match mux2_driver ctx dnet with
                        | Some mx ->
                            Some
                              (R.site
                                 ~comps:[ ff.D.id; mx.D.id ]
                                 ~data:[ k ]
                                 (Printf.sprintf "mux2 into muxff2.D%d" k))
                        | None -> None)
                    | None -> None)
                  [ 0; 1 ])
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match (site.R.site_comps, site.R.site_data) with
      | [ ffid; mxid ], [ k ]
        when D.comp_opt ctx.R.design ffid <> None
             && D.comp_opt ctx.R.design mxid <> None -> (
          let ff = D.comp ctx.R.design ffid in
          match muxff2_of ctx ff with
          | None -> false
          | Some (_, has_reset) ->
              let target =
                Printf.sprintf "%sMUXFF4%s" (prefix_of ctx)
                  (if has_reset then "_R" else "")
              in
              if not (Milo_library.Technology.mem ctx.R.tech target) then false
              else begin
                let conn cid pin = D.connection ctx.R.design cid pin in
                (* old flip-flop pins *)
                let d_other = conn ffid (Printf.sprintf "D%d" (1 - k)) in
                let f_sel = conn ffid "S0" in
                let clk = conn ffid "CLK" in
                let rst = conn ffid "RST" in
                let qn = conn ffid "Q" in
                (* external mux pins *)
                let a = conn mxid "D0" in
                let b = conn mxid "D1" in
                let x_sel = conn mxid "S0" in
                match (d_other, f_sel, clk, qn, a, b, x_sel) with
                | Some other, Some f, Some clk, Some qn, Some a, Some b, Some x
                  ->
                    R.remove_comp_and_dangling ctx log mxid;
                    R.replace_macro ctx log ffid target (fun _ -> None);
                    (* state' = F ? D1 : D0 with the external mux on Dk:
                       select S1 = F, S0 = X; see the case analysis in
                       the header comment. *)
                    let connect pin nid = D.connect ~log ctx.R.design ffid pin nid in
                    connect "S1" f;
                    connect "S0" x;
                    connect "CLK" clk;
                    connect "Q" qn;
                    (match rst with
                    | Some rnet when has_reset -> connect "RST" rnet
                    | Some _ | None -> ());
                    if k = 0 then begin
                      (* F=0 -> ext mux: D0=a D1=b; F=1 -> other *)
                      connect "D0" a;
                      connect "D1" b;
                      connect "D2" other;
                      connect "D3" other
                    end
                    else begin
                      connect "D0" other;
                      connect "D1" other;
                      connect "D2" a;
                      connect "D3" b
                    end;
                    true
                | _ -> false
              end)
      | _ -> false)

let rules = [ mux_into_muxff ]
