(** The 2:1-mux-into-MUXFF2 fusion producing 4:1-mux flip-flop macros
    (the second merge of the paper's ABADD example, Figure 18). *)

val mux_into_muxff : Milo_rules.Rule.t
val rules : Milo_rules.Rule.t list
