(* The timing critic: rules that can buy speed at the cost of area
   and/or power.  The engine's cost function decides where they pay off
   (they only reduce the worst delay when applied on a critical path). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Macro = Milo_library.Macro
module Tech = Milo_library.Technology

(* Strategy 2: replace a standard-power macro with its high-power,
   higher-speed variant (ECL only — other libraries simply have no
   variants, so the rule never matches). *)
let high_power_swap =
  R.make ~name:"high-power-swap" ~cls:R.Timing
    ~find:(fun ctx ->
      R.macro_comps ctx (fun _c m ->
          m.Macro.power_level = Macro.Standard
          && Tech.high_power_variant ctx.R.tech m.Macro.mname <> None)
      |> List.map (fun (c : D.comp) ->
             { R.site_comps = [ c.D.id ]; site_data = []; descr = "power up " ^ c.D.cname }))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ cid ] when D.comp_opt ctx.R.design cid <> None -> (
          let c = D.comp ctx.R.design cid in
          match R.macro_of ctx c with
          | Some m -> (
              match Tech.high_power_variant ctx.R.tech m.Macro.mname with
              | Some hv ->
                  D.set_kind ~log ctx.R.design cid (T.Macro hv.Macro.mname);
                  true
              | None -> false)
          | None -> false)
      | _ -> false)

(* Swap a ripple adder slice for its carry-lookahead variant (the
   microarchitecture-level tradeoff of Figure 16, available at the
   macro level too since the pin interfaces coincide). *)
let adder_cla_swap =
  let target_of mname =
    if String.length mname >= 4 && String.sub mname (String.length mname - 4) 4 = "ADD4"
    then Some (mname ^ "CLA")
    else None
  in
  R.make ~name:"adder-cla-swap" ~cls:R.Timing
    ~find:(fun ctx ->
      R.macro_comps ctx (fun _c m ->
          match target_of m.Macro.mname with
          | Some t -> Tech.mem ctx.R.tech t
          | None -> false)
      |> List.map (fun (c : D.comp) ->
             { R.site_comps = [ c.D.id ]; site_data = []; descr = "ripple->CLA " ^ c.D.cname }))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ cid ] when D.comp_opt ctx.R.design cid <> None -> (
          let c = D.comp ctx.R.design cid in
          match R.macro_of ctx c with
          | Some m -> (
              match target_of m.Macro.mname with
              | Some t when Tech.mem ctx.R.tech t ->
                  D.set_kind ~log ctx.R.design cid (T.Macro t);
                  true
              | Some _ | None -> false)
          | None -> false)
      | _ -> false)

(* Strategy 5: duplicate a multi-fanout gate so one sink gets a private
   driver (removing the shared-load penalty on that path). *)
let duplicate_driver =
  R.make ~name:"duplicate-driver" ~cls:R.Timing
    ~find:(fun ctx ->
      List.concat_map
        (fun (c : D.comp) ->
          match R.macro_of ctx c with
          | Some m when (not (Macro.is_sequential m)) && List.length m.Macro.outputs = 1
            -> (
              match D.connection ctx.R.design c.D.id (List.nth m.Macro.outputs 0) with
              | Some onet when R.fanout ctx onet > 1 && not (R.net_is_port ctx onet)
                ->
                  (* One site per sink to peel off. *)
                  List.filteri (fun i _ -> i < 2)
                    (D.sinks ~resolve:ctx.R.resolve ctx.R.design onet)
                  |> List.map (fun (sink_cid, _) ->
                         {
                           R.site_comps = [ c.D.id; sink_cid ];
                           site_data = [];
                           descr = "duplicate " ^ c.D.cname;
                         })
              | Some _ | None -> [])
          | Some _ | None -> [])
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ cid; sink_cid ]
        when D.comp_opt ctx.R.design cid <> None
             && D.comp_opt ctx.R.design sink_cid <> None -> (
          let c = D.comp ctx.R.design cid in
          match R.macro_of ctx c with
          | Some m -> (
              let out_pin = List.nth m.Macro.outputs 0 in
              match D.connection ctx.R.design cid out_pin with
              | Some onet -> (
                  let sink_pins =
                    List.filter
                      (fun (sc, _) -> sc = sink_cid)
                      (D.sinks ~resolve:ctx.R.resolve ctx.R.design onet)
                  in
                  match sink_pins with
                  | [] -> false
                  | _ ->
                      let clone = D.add_comp ~log ctx.R.design c.D.kind in
                      List.iter
                        (fun (pin, nid) ->
                          if pin <> out_pin then
                            D.connect ~log ctx.R.design clone pin nid)
                        (D.connections ctx.R.design cid);
                      let newnet = D.new_net ~log ctx.R.design in
                      D.connect ~log ctx.R.design clone out_pin newnet;
                      List.iter
                        (fun (sc, spin) ->
                          D.connect ~log ctx.R.design sc spin newnet)
                        sink_pins;
                      true)
              | None -> false)
          | None -> false)
      | _ -> false)

(* Strategy 3 (local form): split one late input out of a wide
   associative gate — AND4(a,b,c,d) -> AND2(AND3(a,b,c), d) — shortening
   the path through the isolated input. *)
let isolate_input =
  let assoc = function
    | T.And | T.Or | T.Xor -> true
    | T.Nand | T.Nor | T.Xnor | T.Inv | T.Buf -> false
  in
  R.make ~name:"isolate-input" ~cls:R.Timing
    ~find:(fun ctx ->
      List.concat_map
        (fun (c : D.comp) ->
          match R.macro_of ctx c with
          | Some m -> (
              match Gate_shape.of_macro m with
              | Some { Gate_shape.fn; arity } when assoc fn && arity >= 3 ->
                  List.map
                    (fun i ->
                      {
                        R.site_comps = [ c.D.id ];
                        site_data = [ i ];
                        descr = Printf.sprintf "isolate %s.A%d" c.D.cname i;
                      })
                    (List.init arity (fun i -> i))
              | Some _ | None -> [])
          | None -> [])
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match (site.R.site_comps, site.R.site_data) with
      | [ cid ], [ idx ] when D.comp_opt ctx.R.design cid <> None -> (
          let c = D.comp ctx.R.design cid in
          match R.macro_of ctx c with
          | Some m -> (
              match (Gate_shape.of_macro m, m.Macro.outputs) with
              | Some { Gate_shape.fn; arity }, [ out_pin ] -> (
                  match D.connection ctx.R.design cid out_pin with
                  | Some onet ->
                      let ins =
                        List.filter_map
                          (fun i ->
                            D.connection ctx.R.design cid (Printf.sprintf "A%d" i))
                          (List.init arity (fun i -> i))
                      in
                      if List.length ins <> arity || idx >= arity then false
                      else begin
                        let late = List.nth ins idx in
                        let rest = List.filteri (fun i _ -> i <> idx) ins in
                        R.remove_comp_and_dangling ctx log cid;
                        if D.net_opt ctx.R.design onet <> None then begin
                          let inner =
                            Milo_compilers.Gate_comp.build ~log ctx.R.design
                              ctx.R.set fn rest
                          in
                          let src =
                            Milo_compilers.Gate_comp.build ~log ctx.R.design
                              ctx.R.set fn [ inner; late ]
                          in
                          R.merge_net_into ctx log ~src ~dst:onet
                        end;
                        true
                      end
                  | None -> false)
              | _ -> false)
          | None -> false)
      | _ -> false)

let rules = [ high_power_swap; adder_cla_swap; duplicate_driver; isolate_input ]
