(** The microarchitecture critic (Section 6.3): parameter/interconnect
    driven transformations — adder+register → counter (Figure 14/15),
    A+1 → incrementer, ripple ↔ carry-lookahead, hold-mux → enable,
    comparator output pruning — plus the compile-and-measure feedback
    loop that supplies design statistics (Figure 16). *)

val adder_register_to_counter : Milo_rules.Rule.t
val add_one_to_inc : Milo_rules.Rule.t
val ripple_to_cla : Milo_rules.Rule.t
val cla_to_ripple : Milo_rules.Rule.t
val hold_mux_to_enable : Milo_rules.Rule.t
val comparator_prune : Milo_rules.Rule.t
val rules : Milo_rules.Rule.t list

type stats = {
  stat_delay : float;
  stat_area : float;
  stat_power : float;
  stat_gates : int;
}

val evaluate_design :
  ?input_arrivals:(string * float) list ->
  Milo_compilers.Database.t ->
  Milo_library.Technology.t ->
  Milo_techmap.Table_map.target ->
  Milo_netlist.Design.t ->
  stats
