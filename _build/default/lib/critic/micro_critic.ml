(* The microarchitecture critic (Section 6.3): local transformations at
   the microarchitecture level, driven by component parameters and
   interconnection — including the paper's Figure 14/15 rule that turns
   an adder feeding back through a register into a counter, produced by
   a call to the counter compiler.

   Statistics for tradeoff decisions come from compiling the candidate
   design down to the technology library and measuring it
   ([evaluate_design]), exactly the feedback loop of Figure 16. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule

(* Constant level driving a net, if any (micro Constant components or
   VDD/VSS macros). *)
let const_level ctx nid =
  match R.driver_comp ctx nid with
  | Some (c, _) -> (
      match c.D.kind with
      | T.Constant lvl -> Some lvl
      | T.Macro _ -> (
          match R.macro_of ctx c with
          | Some m -> (
              match Gate_shape.is_const m with
              | Some true -> Some T.Vdd
              | Some false -> Some T.Vss
              | None -> None)
          | None -> None)
      | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
      | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
      | T.Instance _ ->
          None)
  | None -> None

let conn ctx cid pin = D.connection ctx.R.design cid pin

(* Is the B operand of an adder tied to the constant 1 (B0=VDD, rest
   VSS) with CIN=VSS? *)
let b_is_one ctx cid bits =
  let bit i =
    match conn ctx cid (Printf.sprintf "B%d" i) with
    | Some nid -> const_level ctx nid
    | None -> None
  in
  let cin =
    match conn ctx cid "CIN" with
    | Some nid -> const_level ctx nid
    | None -> Some T.Vss
  in
  bit 0 = Some T.Vdd
  && List.for_all (fun i -> bit i = Some T.Vss) (List.init (bits - 1) (fun i -> i + 1))
  && cin = Some T.Vss

(* The Figure 14/15 rule: adder (+1) whose sum feeds a loadable register
   whose output feeds the adder back — replace both by a counter. *)
let adder_register_to_counter =
  let match_pair ctx (c1 : D.comp) =
    match c1.D.kind with
    | T.Arith_unit { bits; fns; mode = _ } -> (
        let increments =
          match fns with
          | [ T.Inc ] -> true
          | [ T.Add ] -> b_is_one ctx c1.D.id bits
          | _ -> false
        in
        let decrements =
          match fns with [ T.Dec ] -> true | _ -> false
        in
        if not (increments || decrements) then None
        else
          (* COUT must be unconnected (Figure 15's antecedent). *)
          let cout_free =
            match conn ctx c1.D.id "COUT" with
            | None -> true
            | Some nid -> R.fanout ctx nid = 0 && not (R.net_is_port ctx nid)
          in
          if not cout_free then None
          else
            (* Every S output must feed exactly one register's D input. *)
            let s_net i = conn ctx c1.D.id (Printf.sprintf "S%d" i) in
            match s_net 0 with
            | None -> None
            | Some s0 -> (
                match D.sinks ~resolve:ctx.R.resolve ctx.R.design s0 with
                | [ (c2id, pin0) ] when pin0 = "D0" -> (
                    let c2 = D.comp ctx.R.design c2id in
                    match c2.D.kind with
                    | T.Register
                        {
                          bits = rbits;
                          kind = T.Edge_triggered;
                          fns = [ T.Load ];
                          controls;
                          inverting = false;
                        }
                      when rbits = bits && List.mem T.Reset controls ->
                        (* All bits: S_i -> D_i exclusively, Q_i -> A_i. *)
                        let wired =
                          List.for_all
                            (fun i ->
                              (match s_net i with
                              | Some s -> (
                                  (not (R.net_is_port ctx s))
                                  &&
                                  match
                                    D.sinks ~resolve:ctx.R.resolve ctx.R.design s
                                  with
                                  | [ (cid, pin) ] ->
                                      cid = c2id
                                      && pin = Printf.sprintf "D%d" i
                                  | _ -> false)
                              | None -> false)
                              &&
                              match
                                ( conn ctx c2id (Printf.sprintf "Q%d" i),
                                  conn ctx c1.D.id (Printf.sprintf "A%d" i) )
                              with
                              | Some qn, Some an -> qn = an
                              | _ -> false)
                            (List.init bits (fun i -> i))
                        in
                        if wired then Some (c2id, controls, decrements)
                        else None
                    | T.Register _ | T.Gate _ | T.Multiplexor _ | T.Decoder _
                    | T.Comparator _ | T.Logic_unit _ | T.Arith_unit _
                    | T.Counter _ | T.Constant _ | T.Macro _ | T.Instance _ ->
                        None)
                | _ -> None))
    | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
    | T.Logic_unit _ | T.Register _ | T.Counter _ | T.Constant _ | T.Macro _
    | T.Instance _ ->
        None
  in
  R.make ~name:"adder-register-to-counter" ~cls:R.Micro
    ~find:(fun ctx ->
      List.filter_map
        (fun (c1 : D.comp) ->
          match match_pair ctx c1 with
          | Some (c2id, _, down) ->
              Some
                (R.site
                   ~comps:[ c1.D.id; c2id ]
                   ~data:[ (if down then 1 else 0) ]
                   "adder+register -> counter")
          | None -> None)
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ c1id; c2id ]
        when D.comp_opt ctx.R.design c1id <> None
             && D.comp_opt ctx.R.design c2id <> None -> (
          let c1 = D.comp ctx.R.design c1id in
          match match_pair ctx c1 with
          | Some (c2id', controls, down) when c2id' = c2id -> (
              match c1.D.kind with
              | T.Arith_unit { bits; _ } ->
                  (* Call the counter compiler's parameters: the new
                     component (its design is generated on demand). *)
                  let fns =
                    if down then [ T.Count_down ] else [ T.Count_up ]
                  in
                  let counter =
                    D.add_comp ~log ctx.R.design
                      (T.Counter { bits; fns; controls })
                  in
                  (* Q nets (shared register-output / adder-A nets)
                     become the counter outputs. *)
                  List.iter
                    (fun i ->
                      match conn ctx c2id (Printf.sprintf "Q%d" i) with
                      | Some qn ->
                          D.connect ~log ctx.R.design counter
                            (Printf.sprintf "Q%d" i) qn
                      | None -> ())
                    (List.init bits (fun i -> i));
                  List.iter
                    (fun ctl ->
                      let pin = T.control_name ctl in
                      match conn ctx c2id pin with
                      | Some n -> D.connect ~log ctx.R.design counter pin n
                      | None -> ())
                    controls;
                  (match conn ctx c2id "CLK" with
                  | Some n -> D.connect ~log ctx.R.design counter "CLK" n
                  | None -> ());
                  (* COUT left unconnected, as in the matched pattern. *)
                  R.remove_comp_and_dangling ctx log c1id;
                  R.remove_comp_and_dangling ctx log c2id;
                  true
              | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
              | T.Logic_unit _ | T.Register _ | T.Counter _ | T.Constant _
              | T.Macro _ | T.Instance _ ->
                  false)
          | Some _ | None -> false)
      | _ -> false)

(* Adder with a constant-one operand simplifies to an incrementer. *)
let add_one_to_inc =
  R.make ~name:"add-one-to-inc" ~cls:R.Micro
    ~find:(fun ctx ->
      List.filter_map
        (fun (c : D.comp) ->
          match c.D.kind with
          | T.Arith_unit { bits; fns = [ T.Add ]; mode = _ }
            when b_is_one ctx c.D.id bits ->
              Some (R.site ~comps:[ c.D.id ] "A+1 -> INC")
          | T.Arith_unit _ | T.Gate _ | T.Multiplexor _ | T.Decoder _
          | T.Comparator _ | T.Logic_unit _ | T.Register _ | T.Counter _
          | T.Constant _ | T.Macro _ | T.Instance _ ->
              None)
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ cid ] when D.comp_opt ctx.R.design cid <> None -> (
          let c = D.comp ctx.R.design cid in
          match c.D.kind with
          | T.Arith_unit { bits; fns = [ T.Add ]; mode }
            when b_is_one ctx cid bits ->
              List.iter
                (fun i ->
                  D.disconnect ~log ctx.R.design cid (Printf.sprintf "B%d" i))
                (List.init bits (fun i -> i));
              D.disconnect ~log ctx.R.design cid "CIN";
              D.set_kind ~log ctx.R.design cid
                (T.Arith_unit { bits; fns = [ T.Inc ]; mode });
              (* Reconnect CIN to ground for the (vestigial) pin. *)
              let vss =
                Milo_compilers.Gate_comp.add_const ~log ctx.R.design ctx.R.set
                  T.Vss
              in
              D.connect ~log ctx.R.design cid "CIN" vss;
              true
          | T.Arith_unit _ | T.Gate _ | T.Multiplexor _ | T.Decoder _
          | T.Comparator _ | T.Logic_unit _ | T.Register _ | T.Counter _
          | T.Constant _ | T.Macro _ | T.Instance _ ->
              false)
      | _ -> false)

(* Carry-mode tradeoffs: the Figure 16 example's "changing the
   parameters of the adder to instantiate a carry-lookahead model". *)
let carry_mode_swap ~to_mode ~name =
  R.make ~name ~cls:R.Micro
    ~find:(fun ctx ->
      List.filter_map
        (fun (c : D.comp) ->
          match c.D.kind with
          | T.Arith_unit { mode; _ } when mode <> to_mode ->
              Some (R.site ~comps:[ c.D.id ] name)
          | T.Arith_unit _ | T.Gate _ | T.Multiplexor _ | T.Decoder _
          | T.Comparator _ | T.Logic_unit _ | T.Register _ | T.Counter _
          | T.Constant _ | T.Macro _ | T.Instance _ ->
              None)
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ cid ] when D.comp_opt ctx.R.design cid <> None -> (
          let c = D.comp ctx.R.design cid in
          match c.D.kind with
          | T.Arith_unit { bits; fns; mode } when mode <> to_mode ->
              D.set_kind ~log ctx.R.design cid
                (T.Arith_unit { bits; fns; mode = to_mode });
              true
          | T.Arith_unit _ | T.Gate _ | T.Multiplexor _ | T.Decoder _
          | T.Comparator _ | T.Logic_unit _ | T.Register _ | T.Counter _
          | T.Constant _ | T.Macro _ | T.Instance _ ->
              false)
      | _ -> false)

let ripple_to_cla = carry_mode_swap ~to_mode:T.Lookahead ~name:"ripple-to-cla"
let cla_to_ripple = carry_mode_swap ~to_mode:T.Ripple ~name:"cla-to-ripple"

(* A 2:1 hold-mux in front of a loadable register folds into the
   register's enable control. *)
let hold_mux_to_enable =
  let match_site ctx (mx : D.comp) =
    match mx.D.kind with
    | T.Multiplexor { bits; inputs = 2; enable = false } -> (
        (* Output Y_i -> register D_i exclusively. *)
        let y_net i = conn ctx mx.D.id (Printf.sprintf "Y%d" i) in
        match y_net 0 with
        | None -> None
        | Some y0 -> (
            match D.sinks ~resolve:ctx.R.resolve ctx.R.design y0 with
            | [ (rid, "D0") ] -> (
                let r = D.comp ctx.R.design rid in
                match r.D.kind with
                | T.Register
                    { bits = rbits; kind; fns = [ T.Load ]; controls; inverting }
                  when rbits = bits && not (List.mem T.Enable controls) ->
                    let wired =
                      List.for_all
                        (fun i ->
                          (match y_net i with
                          | Some y -> (
                              (not (R.net_is_port ctx y))
                              &&
                              match
                                D.sinks ~resolve:ctx.R.resolve ctx.R.design y
                              with
                              | [ (rid', pin) ] ->
                                  rid' = rid && pin = Printf.sprintf "D%d" i
                              | _ -> false)
                          | None -> false)
                          &&
                          (* hold path: mux D0_i is the register's Q_i *)
                          match
                            ( conn ctx mx.D.id (Printf.sprintf "D0_%d" i),
                              conn ctx rid (Printf.sprintf "Q%d" i) )
                          with
                          | Some d0, Some q -> d0 = q
                          | _ -> false)
                        (List.init bits (fun i -> i))
                    in
                    if wired then Some (rid, bits, kind, controls, inverting)
                    else None
                | T.Register _ | T.Gate _ | T.Multiplexor _ | T.Decoder _
                | T.Comparator _ | T.Logic_unit _ | T.Arith_unit _
                | T.Counter _ | T.Constant _ | T.Macro _ | T.Instance _ ->
                    None)
            | _ -> None))
    | T.Multiplexor _ | T.Gate _ | T.Decoder _ | T.Comparator _
    | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
    | T.Constant _ | T.Macro _ | T.Instance _ ->
        None
  in
  R.make ~name:"hold-mux-to-enable" ~cls:R.Micro
    ~find:(fun ctx ->
      List.filter_map
        (fun (mx : D.comp) ->
          match match_site ctx mx with
          | Some (rid, _, _, _, _) ->
              Some (R.site ~comps:[ mx.D.id; rid ] "hold mux -> enable")
          | None -> None)
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ mxid; rid ]
        when D.comp_opt ctx.R.design mxid <> None
             && D.comp_opt ctx.R.design rid <> None -> (
          let mx = D.comp ctx.R.design mxid in
          match match_site ctx mx with
          | Some (rid', bits, kind, controls, inverting) when rid' = rid ->
              let sel = conn ctx mxid "S0" in
              let new_data =
                List.map
                  (fun i -> conn ctx mxid (Printf.sprintf "D1_%d" i))
                  (List.init bits (fun i -> i))
              in
              R.remove_comp_and_dangling ctx log mxid;
              D.set_kind ~log ctx.R.design rid
                (T.Register
                   {
                     bits;
                     kind;
                     fns = [ T.Load ];
                     controls = controls @ [ T.Enable ];
                     inverting;
                   });
              (match sel with
              | Some s -> D.connect ~log ctx.R.design rid "EN" s
              | None -> ());
              List.iteri
                (fun i dn ->
                  match dn with
                  | Some n ->
                      D.connect ~log ctx.R.design rid (Printf.sprintf "D%d" i) n
                  | None -> ())
                new_data;
              true
          | Some _ | None -> false)
      | _ -> false)

(* Comparator outputs nobody reads disappear from the function list. *)
let comparator_prune =
  R.make ~name:"comparator-prune" ~cls:R.Micro
    ~find:(fun ctx ->
      List.filter_map
        (fun (c : D.comp) ->
          match c.D.kind with
          | T.Comparator { bits = _; fns } ->
              let dead =
                List.filter
                  (fun fn ->
                    match conn ctx c.D.id (T.cmp_fn_name fn) with
                    | None -> true
                    | Some nid ->
                        R.fanout ctx nid = 0 && not (R.net_is_port ctx nid))
                  fns
              in
              if dead <> [] && List.length dead < List.length fns then
                Some (R.site ~comps:[ c.D.id ] "prune comparator outputs")
              else None
          | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Logic_unit _
          | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Constant _
          | T.Macro _ | T.Instance _ ->
              None)
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ cid ] when D.comp_opt ctx.R.design cid <> None -> (
          let c = D.comp ctx.R.design cid in
          match c.D.kind with
          | T.Comparator { bits; fns } ->
              let live =
                List.filter
                  (fun fn ->
                    match conn ctx cid (T.cmp_fn_name fn) with
                    | None -> false
                    | Some nid ->
                        R.fanout ctx nid > 0 || R.net_is_port ctx nid)
                  fns
              in
              if live = [] || List.length live = List.length fns then false
              else begin
                List.iter
                  (fun fn ->
                    if not (List.mem fn live) then
                      D.disconnect ~log ctx.R.design cid (T.cmp_fn_name fn))
                  fns;
                D.set_kind ~log ctx.R.design cid
                  (T.Comparator { bits; fns = live });
                true
              end
          | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Logic_unit _
          | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Constant _
          | T.Macro _ | T.Instance _ ->
              false)
      | _ -> false)

let rules =
  [
    adder_register_to_counter;
    add_one_to_inc;
    ripple_to_cla;
    cla_to_ripple;
    hold_mux_to_enable;
    comparator_prune;
  ]

(* --- Design statistics through compilation --------------------------- *)

(* The critic's feedback loop: compile the microarchitecture design down
   to the target technology and measure it (Figure 16). *)
type stats = {
  stat_delay : float;
  stat_area : float;
  stat_power : float;
  stat_gates : int;
}

let evaluate_design ?(input_arrivals = []) db lib target design =
  let expanded = Milo_compilers.Compile.expand_design db lib design in
  let flat = Milo_compilers.Database.flatten db expanded in
  let mapped = Milo_techmap.Table_map.map_design target flat in
  let env name = Milo_library.Technology.find target.Milo_techmap.Table_map.tech name in
  let sta = Milo_timing.Sta.analyze ~input_arrivals env mapped in
  {
    stat_delay = Milo_timing.Sta.worst_delay sta;
    stat_area = Milo_estimate.Estimate.area env mapped;
    stat_power = Milo_estimate.Estimate.power env mapped;
    stat_gates =
      Milo_netlist.Stats.two_input_equiv
        ~macro_gates:(fun m -> (env m).Milo_library.Macro.gates)
        mapped;
  }
