(* Cleanup rules: the Logic Consultant's high-priority class, examined
   after every regular rule application to remove the debris (spare
   inverters, dead gates, constants) a transformation leaves behind. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule

let gate_comps ctx pred =
  R.macro_comps ctx (fun _c m ->
      match Gate_shape.of_macro m with Some s -> pred s | None -> false)

let input_nets ctx (c : D.comp) =
  let m = Option.get (R.macro_of ctx c) in
  List.filter_map
    (fun pin -> D.connection ctx.R.design c.D.id pin)
    m.Milo_library.Macro.inputs

let output_net ctx (c : D.comp) =
  let m = Option.get (R.macro_of ctx c) in
  match m.Milo_library.Macro.outputs with
  | [ out ] -> D.connection ctx.R.design c.D.id out
  | [] | _ :: _ -> None

(* Dead logic: a combinational component whose outputs drive nothing. *)
let dead_logic =
  R.make ~name:"dead-logic" ~cls:R.Cleanup
    ~find:(fun ctx ->
      R.macro_comps ctx (fun c m ->
          (not (Milo_library.Macro.is_sequential m))
          && List.for_all
               (fun out ->
                 match D.connection ctx.R.design c.D.id out with
                 | None -> true
                 | Some nid ->
                     R.fanout ctx nid = 0
                     && not (R.net_is_port ctx nid))
               m.Milo_library.Macro.outputs)
      |> List.map (fun (c : D.comp) ->
             { R.site_comps = [ c.D.id ]; site_data = []; descr = "dead " ^ c.D.cname }))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ cid ] when D.comp_opt ctx.R.design cid <> None ->
          R.remove_comp_and_dangling ctx log cid;
          true
      | _ -> false)

(* Double inverter: INV(INV(x)) with a single consumer chain. *)
let double_inverter =
  R.make ~name:"double-inverter" ~cls:R.Cleanup
    ~find:(fun ctx ->
      gate_comps ctx (fun s -> s.Gate_shape.fn = T.Inv)
      |> List.filter_map (fun (c2 : D.comp) ->
             (* c2 : the outer inverter *)
             match input_nets ctx c2 with
             | [ bnet ] -> (
                 match R.driver_comp ctx bnet with
                 | Some (c1, _)
                   when (match R.macro_of ctx c1 with
                        | Some m -> Gate_shape.is_inv m
                        | None -> false)
                        && R.fanout ctx bnet = 1
                        && not (R.net_is_port ctx bnet) -> (
                     match output_net ctx c2 with
                     | Some cnet when not (R.net_is_port ctx cnet) ->
                         Some
                           {
                             R.site_comps = [ c2.D.id; c1.D.id ];
                             site_data = [];
                             descr = "inv pair " ^ c1.D.cname;
                           }
                     | Some _ | None -> None)
                 | Some _ | None -> None)
             | _ -> None))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ c2id; c1id ]
        when D.comp_opt ctx.R.design c2id <> None
             && D.comp_opt ctx.R.design c1id <> None -> (
          let c1 = D.comp ctx.R.design c1id in
          match (input_nets ctx c1, output_net ctx (D.comp ctx.R.design c2id)) with
          | [ anet ], Some cnet ->
              R.remove_comp_and_dangling ctx log c2id;
              R.merge_net_into ctx log ~src:cnet ~dst:anet;
              (* The inner inverter may now be dead. *)
              (match output_net ctx c1 with
              | Some bnet
                when R.fanout ctx bnet = 0 && not (R.net_is_port ctx bnet) ->
                  R.remove_comp_and_dangling ctx log c1id
              | Some _ | None -> ());
              true
          | _ -> false)
      | _ -> false)

(* Buffer elimination. *)
let buffer_elim =
  R.make ~name:"buffer-elim" ~cls:R.Cleanup
    ~find:(fun ctx ->
      gate_comps ctx (fun s -> s.Gate_shape.fn = T.Buf)
      |> List.filter_map (fun (c : D.comp) ->
             match (input_nets ctx c, output_net ctx c) with
             | [ _ ], Some out when not (R.net_is_port ctx out) ->
                 Some { R.site_comps = [ c.D.id ]; site_data = []; descr = "buf " ^ c.D.cname }
             | _ -> None))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ cid ] when D.comp_opt ctx.R.design cid <> None -> (
          let c = D.comp ctx.R.design cid in
          match (input_nets ctx c, output_net ctx c) with
          | [ inet ], Some onet when not (R.net_is_port ctx onet) ->
              R.remove_comp_and_dangling ctx log cid;
              (match D.net_opt ctx.R.design onet with
              | Some _ -> R.merge_net_into ctx log ~src:onet ~dst:inet
              | None -> ());
              true
          | _ -> false)
      | _ -> false)

(* Constant propagation through simple gates. *)
let constant_prop =
  let find ctx =
    gate_comps ctx (fun s ->
        match s.Gate_shape.fn with
        | T.And | T.Or | T.Nand | T.Nor | T.Xor | T.Xnor -> true
        | T.Inv | T.Buf -> false)
    |> List.filter_map (fun (c : D.comp) ->
           let has_const =
             List.exists
               (fun nid ->
                 match R.driver_comp ctx nid with
                 | Some (dc, _) -> (
                     match R.macro_of ctx dc with
                     | Some m -> Gate_shape.is_const m <> None
                     | None -> false)
                 | None -> false)
               (input_nets ctx c)
           in
           if has_const then
             Some { R.site_comps = [ c.D.id ]; site_data = []; descr = "const in " ^ c.D.cname }
           else None)
  in
  let apply ctx site log =
    match site.R.site_comps with
    | [ cid ] when D.comp_opt ctx.R.design cid <> None -> (
        let c = D.comp ctx.R.design cid in
        match R.macro_of ctx c with
        | None -> false
        | Some m -> (
            match Gate_shape.of_macro m with
            | None -> false
            | Some { Gate_shape.fn; arity } -> (
                let pin i = Printf.sprintf "A%d" i in
                let const_of nid =
                  match R.driver_comp ctx nid with
                  | Some (dc, _) -> (
                      match R.macro_of ctx dc with
                      | Some dm -> Gate_shape.is_const dm
                      | None -> None)
                  | None -> None
                in
                let ins =
                  List.init arity (fun i ->
                      match D.connection ctx.R.design cid (pin i) with
                      | Some nid -> (nid, const_of nid)
                      | None -> (-1, Some false))
                in
                let out =
                  match output_net ctx c with Some o -> o | None -> -1
                in
                if out < 0 then false
                else
                  let live =
                    List.filter_map
                      (fun (nid, cst) ->
                        match cst with Some _ -> None | None -> Some nid)
                      ins
                  in
                  let consts = List.filter_map (fun (_, c') -> c') ins in
                  (* Result under constant absorption. *)
                  let absorb =
                    match fn with
                    | T.And | T.Nand -> List.mem false consts
                    | T.Or | T.Nor -> List.mem true consts
                    | T.Xor | T.Xnor | T.Inv | T.Buf -> false
                  in
                  let xor_flip =
                    List.length (List.filter (fun b -> b) consts) mod 2 = 1
                  in
                  let emit_const b =
                    let lvl = if b then T.Vdd else T.Vss in
                    R.remove_comp_and_dangling ctx log cid;
                    (match D.net_opt ctx.R.design out with
                    | None -> ()
                    | Some _ ->
                        let src =
                          Milo_compilers.Gate_comp.add_const ~log ctx.R.design
                            ctx.R.set lvl
                        in
                        R.merge_net_into ctx log ~src ~dst:out);
                    true
                  in
                  let rebuild fn' ins' =
                    R.remove_comp_and_dangling ctx log cid;
                    match D.net_opt ctx.R.design out with
                    | None -> true
                    | Some _ ->
                        let src =
                          Milo_compilers.Gate_comp.build ~log ctx.R.design
                            ctx.R.set fn' ins'
                        in
                        (* [src] may be one of the surviving inputs
                           (single-input identity), possibly a port
                           net: reroute handles the merge direction. *)
                        R.reroute ctx log ~signal:src ~old_net:out;
                        true
                  in
                  if absorb then
                    emit_const
                      (match fn with
                      | T.And | T.Or -> fn = T.Or
                      | T.Nand | T.Nor -> fn = T.Nand
                      | T.Xor | T.Xnor | T.Inv | T.Buf -> false)
                  else if live = [] then
                    (* All inputs constant. *)
                    let v =
                      match fn with
                      | T.And | T.Nand ->
                          let a = List.for_all (fun b -> b) consts in
                          if fn = T.And then a else not a
                      | T.Or | T.Nor ->
                          let o = List.exists (fun b -> b) consts in
                          if fn = T.Or then o else not o
                      | T.Xor -> xor_flip
                      | T.Xnor -> not xor_flip
                      | T.Inv | T.Buf -> false
                    in
                    emit_const v
                  else
                    (* Drop absorbed-identity constants, rebuild smaller. *)
                    match fn with
                    | T.And -> rebuild T.And live
                    | T.Or -> rebuild T.Or live
                    | T.Nand -> rebuild T.Nand live
                    | T.Nor -> rebuild T.Nor live
                    | T.Xor ->
                        if xor_flip then rebuild T.Xnor live
                        else rebuild T.Xor live
                    | T.Xnor ->
                        if xor_flip then rebuild T.Xor live
                        else rebuild T.Xnor live
                    | T.Inv | T.Buf -> false)))
    | _ -> false
  in
  R.make ~name:"constant-prop" ~cls:R.Cleanup ~find ~apply

(* Single-input reduction: rebuilding NAND/NOR over one live input needs
   an inverter; Gate_comp.build already handles that (NAND1 = INV). *)

let rules = [ dead_logic; double_inverter; buffer_elim; constant_prop ]
