(** Aggregated rule sets: the five experts of Figure 17, the cleanup
    class, and the microarchitecture critic's rules. *)

val logic : Milo_rules.Rule.t list
val timing : Milo_rules.Rule.t list
val area : Milo_rules.Rule.t list
val power : Milo_rules.Rule.t list
val electric : Milo_rules.Rule.t list
val cleanup : Milo_rules.Rule.t list
val micro : Milo_rules.Rule.t list
val all_logic_level : Milo_rules.Rule.t list
