(* The power critic: rules that decrease power, typically at the expense
   of speed — the inverse of the timing critic's power-up swap. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Macro = Milo_library.Macro
module Tech = Milo_library.Technology

let standard_power_swap =
  R.make ~name:"standard-power-swap" ~cls:R.Power
    ~find:(fun ctx ->
      R.macro_comps ctx (fun _c m ->
          m.Macro.power_level = Macro.High
          && Tech.standard_variant ctx.R.tech m.Macro.mname <> None)
      |> List.map (fun (c : D.comp) ->
             R.site ~comps:[ c.D.id ] ("power down " ^ c.D.cname)))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ cid ] when D.comp_opt ctx.R.design cid <> None -> (
          let c = D.comp ctx.R.design cid in
          match R.macro_of ctx c with
          | Some m -> (
              match Tech.standard_variant ctx.R.tech m.Macro.mname with
              | Some sv ->
                  D.set_kind ~log ctx.R.design cid (T.Macro sv.Macro.mname);
                  true
              | None -> false)
          | None -> false)
      | _ -> false)

let rules = [ standard_power_swap ]
