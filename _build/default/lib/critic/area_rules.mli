(** Rule set: see the implementation for the individual rules. *)

val rules : Milo_rules.Rule.t list
