(** The electric critic: electrical rule checking and correction
    (fanout violations fixed by buffering). *)

val max_fanout : int
val fanout_buffer : Milo_rules.Rule.t
val violations : Milo_rules.Rule.context -> (string * int) list
val rules : Milo_rules.Rule.t list
