(* The area critic: rules that decrease area, possibly at the expense of
   delay or power. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Macro = Milo_library.Macro
module Tech = Milo_library.Technology

(* Carry-lookahead adder back to the smaller ripple slice. *)
let adder_ripple_swap =
  let target_of mname =
    let l = String.length mname in
    if l > 3 && String.sub mname (l - 3) 3 = "CLA" then
      Some (String.sub mname 0 (l - 3))
    else None
  in
  R.make ~name:"adder-ripple-swap" ~cls:R.Area
    ~find:(fun ctx ->
      R.macro_comps ctx (fun _c m ->
          match target_of m.Macro.mname with
          | Some t -> Tech.mem ctx.R.tech t
          | None -> false)
      |> List.map (fun (c : D.comp) ->
             R.site ~comps:[ c.D.id ] ("CLA->ripple " ^ c.D.cname)))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ cid ] when D.comp_opt ctx.R.design cid <> None -> (
          let c = D.comp ctx.R.design cid in
          match R.macro_of ctx c with
          | Some m -> (
              match target_of m.Macro.mname with
              | Some t when Tech.mem ctx.R.tech t ->
                  D.set_kind ~log ctx.R.design cid (T.Macro t);
                  true
              | Some _ | None -> false)
          | None -> false)
      | _ -> false)

(* Common-subexpression sharing: two combinational components with the
   same kind and the same input connections merge into one. *)
let share_duplicate =
  let signature ctx (c : D.comp) =
    match R.macro_of ctx c with
    | Some m when not (Macro.is_sequential m) ->
        let ins =
          List.map
            (fun pin -> (pin, D.connection ctx.R.design c.D.id pin))
            m.Macro.inputs
        in
        Some (m.Macro.mname, ins)
    | Some _ | None -> None
  in
  R.make ~name:"share-duplicate" ~cls:R.Area
    ~find:(fun ctx ->
      let seen = Hashtbl.create 32 in
      List.filter_map
        (fun (c : D.comp) ->
          match signature ctx c with
          | None -> None
          | Some key -> (
              match Hashtbl.find_opt seen key with
              | Some first ->
                  Some (R.site ~comps:[ first; c.D.id ] "duplicate gates")
              | None ->
                  Hashtbl.replace seen key c.D.id;
                  None))
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ keep; drop ]
        when D.comp_opt ctx.R.design keep <> None
             && D.comp_opt ctx.R.design drop <> None ->
          let ck = D.comp ctx.R.design keep in
          let cd = D.comp ctx.R.design drop in
          (match (signature ctx ck, signature ctx cd) with
          | Some a, Some b when a = b -> (
              match R.macro_of ctx ck with
              | Some m ->
                  (* Merge each output of the duplicate into the kept
                     component's output net. *)
                  let ok =
                    List.for_all
                      (fun out ->
                        match
                          ( D.connection ctx.R.design keep out,
                            D.connection ctx.R.design drop out )
                        with
                        | Some _, Some dnet -> not (R.net_is_port ctx dnet)
                        | _, None -> true
                        | None, Some _ -> false)
                      m.Macro.outputs
                  in
                  if not ok then false
                  else begin
                    List.iter
                      (fun out ->
                        match
                          ( D.connection ctx.R.design keep out,
                            D.connection ctx.R.design drop out )
                        with
                        | Some knet, Some dnet ->
                            D.disconnect ~log ctx.R.design drop out;
                            R.merge_net_into ctx log ~src:dnet ~dst:knet
                        | _, None | None, _ -> ())
                      m.Macro.outputs;
                    R.remove_comp_and_dangling ctx log drop;
                    true
                  end
              | None -> false)
          | _ -> false)
      | _ -> false)

(* Cone resynthesis: replace a small single-output cone by one library
   macro of the same function when that macro is smaller — the
   strategy-4 hash-table lookup used for area instead of speed. *)
let cone_resynth =
  R.make ~name:"cone-resynth" ~cls:R.Area
    ~find:(fun ctx ->
      List.filter_map
        (fun (c : D.comp) ->
          match R.macro_of ctx c with
          | Some m
            when (not (Macro.is_sequential m))
                 && List.length m.Macro.outputs = 1 -> (
              match
                D.connection ctx.R.design c.D.id (List.nth m.Macro.outputs 0)
              with
              | Some onet ->
                  Some (R.site ~comps:[ c.D.id ] ~data:[ onet ] "cone")
              | None -> None)
          | Some _ | None -> None)
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match (site.R.site_comps, site.R.site_data) with
      | [ cid ], [ onet ]
        when D.comp_opt ctx.R.design cid <> None
             && D.net_opt ctx.R.design onet <> None -> (
          let module Cone = Milo_rules.Cone in
          match Cone.extract ctx ~max_leaves:5 onet with
          | Some cone when List.length cone.Cone.comps >= 2 -> (
              match Cone.truth_table ctx cone with
              | Some tt -> (
                  let matches =
                    Milo_library.Technology.matches_for ctx.R.tech tt
                  in
                  match matches with
                  | (cand, perm) :: _
                    when cand.Macro.area < Cone.area ctx cone -. 1e-9 ->
                      Cone.replace ctx log cone ~build:(fun () ->
                          let nid =
                            D.add_comp ~log ctx.R.design
                              (T.Macro cand.Macro.mname)
                          in
                          List.iteri
                            (fun i pin ->
                              let v = List.nth perm i in
                              D.connect ~log ctx.R.design nid pin
                                (List.nth cone.Cone.leaves v))
                            cand.Macro.inputs;
                          let out = D.new_net ~log ctx.R.design in
                          D.connect ~log ctx.R.design nid
                            (List.nth cand.Macro.outputs 0)
                            out;
                          out)
                  | _ -> false)
              | None -> false)
          | Some _ | None -> false)
      | _ -> false)

(* ECL dual-output sharing: an OR and a NOR over the same inputs fuse
   into one E_ORNOR macro (both collector phases of a single current
   switch come for free — the dual-rail property of the technology). *)
let ornor_share =
  R.make ~name:"ornor-share" ~cls:R.Area
    ~find:(fun ctx ->
      (* index OR gates by their sorted input-net multiset *)
      let or_gates = Hashtbl.create 16 in
      let inputs_of (c : D.comp) arity =
        List.filter_map
          (fun i -> D.connection ctx.R.design c.D.id (Printf.sprintf "A%d" i))
          (List.init arity (fun i -> i))
      in
      List.iter
        (fun (c : D.comp) ->
          match R.macro_of ctx c with
          | Some m -> (
              match Gate_shape.of_macro m with
              | Some { Gate_shape.fn = T.Or; arity } ->
                  let key = (arity, List.sort compare (inputs_of c arity)) in
                  if not (Hashtbl.mem or_gates key) then
                    Hashtbl.replace or_gates key c.D.id
              | Some _ | None -> ())
          | None -> ())
        (R.scan_comps ctx);
      List.filter_map
        (fun (c : D.comp) ->
          match R.macro_of ctx c with
          | Some m -> (
              match Gate_shape.of_macro m with
              | Some { Gate_shape.fn = T.Nor; arity } -> (
                  let target = Printf.sprintf "E_ORNOR%d" arity in
                  if not (Milo_library.Technology.mem ctx.R.tech target) then
                    None
                  else
                    let key = (arity, List.sort compare (inputs_of c arity)) in
                    match Hashtbl.find_opt or_gates key with
                    | Some or_id when or_id <> c.D.id ->
                        Some
                          (R.site ~comps:[ or_id; c.D.id ]
                             "OR+NOR -> dual-output ORNOR")
                    | Some _ | None -> None)
              | Some _ | None -> None)
          | None -> None)
        (R.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.R.site_comps with
      | [ or_id; nor_id ]
        when D.comp_opt ctx.R.design or_id <> None
             && D.comp_opt ctx.R.design nor_id <> None -> (
          let org = D.comp ctx.R.design or_id in
          let norg = D.comp ctx.R.design nor_id in
          let shape c =
            match R.macro_of ctx c with
            | Some m -> Gate_shape.of_macro m
            | None -> None
          in
          match (shape org, shape norg) with
          | Some { Gate_shape.fn = T.Or; arity }, Some { Gate_shape.fn = T.Nor; arity = na }
            when arity = na -> (
              let target = Printf.sprintf "E_ORNOR%d" arity in
              if not (Milo_library.Technology.mem ctx.R.tech target) then false
              else
                let ins c =
                  List.map
                    (fun i -> D.connection ctx.R.design c (Printf.sprintf "A%d" i))
                    (List.init arity (fun i -> i))
                in
                let same =
                  List.sort compare (ins or_id) = List.sort compare (ins nor_id)
                  && List.for_all (fun x -> x <> None) (ins or_id)
                in
                match
                  ( same,
                    D.connection ctx.R.design or_id "Y",
                    D.connection ctx.R.design nor_id "Y" )
                with
                | true, Some ynet, Some ynnet ->
                    let inputs = List.map Option.get (ins or_id) in
                    R.remove_comp_and_dangling ctx log nor_id;
                    R.replace_macro ctx log or_id target (fun _ -> None);
                    List.iteri
                      (fun i nid ->
                        D.connect ~log ctx.R.design or_id
                          (Printf.sprintf "A%d" i) nid)
                      inputs;
                    D.connect ~log ctx.R.design or_id "Y" ynet;
                    if D.net_opt ctx.R.design ynnet <> None then
                      D.connect ~log ctx.R.design or_id "YN" ynnet;
                    true
                | _, _, _ -> false)
          | _ -> false)
      | _ -> false)

let rules = [ adder_ripple_swap; share_duplicate; cone_resynth; ornor_share ]
