(* Recognizing gate shapes of library macros behaviourally (by truth
   table), so the same rules work on generic, ECL and CMOS macros
   regardless of naming. *)

module T = Milo_netlist.Types
module Macro = Milo_library.Macro
open Milo_boolfunc

type shape = { fn : T.gate_fn; arity : int }

let of_macro (m : Macro.t) : shape option =
  match Macro.single_output_tt m with
  | None -> None
  | Some tt ->
      let arity = List.length m.Macro.inputs in
      if arity < 1 || arity > Truth_table.max_vars then None
      else
        let try_fn fn =
          if Truth_table.equal tt (Milo_library.Defs.gate_tt fn arity) then
            Some { fn; arity }
          else None
        in
        List.find_map try_fn
          (if arity = 1 then [ T.Inv; T.Buf ]
           else [ T.And; T.Or; T.Nand; T.Nor; T.Xor; T.Xnor ])

let is_inv m =
  match of_macro m with Some { fn = T.Inv; _ } -> true | Some _ | None -> false

let is_buf m =
  match of_macro m with Some { fn = T.Buf; _ } -> true | Some _ | None -> false

let is_const (m : Macro.t) : bool option =
  match Macro.single_output_tt m with
  | Some tt when Truth_table.vars tt = 0 -> Truth_table.is_const tt
  | Some _ | None -> None

(* A macro implementing a 2:1 / 4:1 single-bit mux (D0.., S0.., Y). *)
let mux_inputs (m : Macro.t) : int option =
  match Macro.single_output_tt m with
  | None -> None
  | Some tt ->
      let check n =
        List.length m.Macro.inputs = n + T.clog2 n
        && List.for_all (fun i -> List.mem (Printf.sprintf "D%d" i) m.Macro.inputs)
             (List.init n (fun i -> i))
        && Truth_table.equal tt (Milo_library.Defs.mux_tt n)
      in
      if check 2 then Some 2 else if check 4 then Some 4 else None
