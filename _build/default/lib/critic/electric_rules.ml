(* The electric critic: an electrical rule checker that spots and
   corrects violations — here, fanout beyond the drive limit, fixed by
   inserting a buffer for the excess sinks (Section 6.2 notes the
   technology mapper can create such violations). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule

let max_fanout = 8

let fanout_buffer =
  R.make ~name:"fanout-buffer" ~cls:R.Electric
    ~find:(fun ctx ->
      List.filter_map
        (fun (n : D.net) ->
          if R.fanout ctx n.D.nid > max_fanout then
            match R.driver_comp ctx n.D.nid with
            | Some (c, _) ->
                Some
                  (R.site ~comps:[ c.D.id ] ~data:[ n.D.nid ]
                     (Printf.sprintf "fanout %d on %s"
                        (R.fanout ctx n.D.nid) n.D.nname))
            | None -> None
          else None)
        (D.nets ctx.R.design))
    ~apply:(fun ctx site log ->
      match (site.R.site_comps, site.R.site_data) with
      | [ _cid ], [ nid ] when D.net_opt ctx.R.design nid <> None ->
          let sinks = D.sinks ~resolve:ctx.R.resolve ctx.R.design nid in
          if List.length sinks <= max_fanout then false
          else begin
            (* Move the second half of the sinks behind a buffer. *)
            let half = List.length sinks / 2 in
            let moved = List.filteri (fun i _ -> i >= half) sinks in
            let buf_out =
              Milo_compilers.Gate_comp.build ~log ctx.R.design ctx.R.set T.Buf
                [ nid ]
            in
            List.iter
              (fun (cid, pin) -> D.connect ~log ctx.R.design cid pin buf_out)
              moved;
            true
          end
      | _ -> false)

(* Violations currently present (for reporting). *)
let violations ctx =
  List.filter_map
    (fun (n : D.net) ->
      let f = R.fanout ctx n.D.nid in
      if f > max_fanout then Some (n.D.nname, f) else None)
    (D.nets ctx.R.design)

let rules = [ fanout_buffer ]
