(** Behavioural (truth-table) recognition of gate shapes, so rules work
    across the generic, ECL and CMOS libraries regardless of naming. *)

module T = Milo_netlist.Types
module Macro = Milo_library.Macro

type shape = { fn : T.gate_fn; arity : int }

val of_macro : Macro.t -> shape option
val is_inv : Macro.t -> bool
val is_buf : Macro.t -> bool
val is_const : Macro.t -> bool option
(** [Some b] when the macro is the constant [b]. *)

val mux_inputs : Macro.t -> int option
(** [Some n] when the macro is an n-to-1 single-bit mux. *)
