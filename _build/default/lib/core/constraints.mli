(** User constraints: path delay, area and power budgets plus
    late-arriving input offsets. *)

type t = {
  required_delay : float option;
  max_area : float option;
  max_power : float option;
  input_arrivals : (string * float) list;
}

val none : t
val delay : float -> t
val make :
  ?required_delay:float ->
  ?max_area:float ->
  ?max_power:float ->
  ?input_arrivals:(string * float) list ->
  unit ->
  t

val meets : t -> delay:float -> area:float -> power:float -> bool
