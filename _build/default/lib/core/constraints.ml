(* User constraints (Figure 11's input parameters): path delays, area
   and power budgets the design optimizers must meet. *)

type t = {
  required_delay : float option;  (** ns, on the worst path *)
  max_area : float option;  (** cells *)
  max_power : float option;  (** mW *)
  input_arrivals : (string * float) list;  (** late-arriving inputs *)
}

let none =
  { required_delay = None; max_area = None; max_power = None; input_arrivals = [] }

let delay ns = { none with required_delay = Some ns }

let make ?required_delay ?max_area ?max_power ?(input_arrivals = []) () =
  { required_delay; max_area; max_power; input_arrivals }

let meets t ~delay:d ~area ~power =
  (match t.required_delay with Some r -> d <= r +. 1e-9 | None -> true)
  && (match t.max_area with Some a -> area <= a +. 1e-9 | None -> true)
  && match t.max_power with Some p -> power <= p +. 1e-9 | None -> true
