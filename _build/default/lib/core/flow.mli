(** The MILO flow of Figure 11: microarchitecture critic → logic
    compilers → technology mapper → hierarchical logic optimizer; plus
    the human-baseline comparison flow for the Figure 19 experiment. *)

module D = Milo_netlist.Design

type technology = Ecl | Cmos

val target_of : technology -> Milo_techmap.Table_map.target

type stats = {
  delay : float;
  area : float;
  power : float;
  gates : int;
  comps : int;
}

val stats_of :
  ?input_arrivals:(string * float) list ->
  Milo_techmap.Table_map.target ->
  D.t ->
  stats
(** Timing/area/power of a technology-mapped design. *)

type result = {
  micro_design : D.t;
  micro_applications : (string * string) list;
  optimized : D.t;
  final : stats;
  optimizer_report : Milo_optimizer.Logic_optimizer.report;
  database : Milo_compilers.Database.t;
}

val micro_pass :
  ?max_steps:int ->
  Milo_compilers.Database.t ->
  Milo_library.Technology.t ->
  Milo_techmap.Table_map.target ->
  Constraints.t ->
  D.t ->
  (string * string) list
(** Run the microarchitecture critic in place; returns the applied
    rules. *)

val run : ?technology:technology -> ?constraints:Constraints.t -> D.t -> result

val human_baseline :
  ?technology:technology -> D.t -> D.t * Milo_compilers.Database.t
(** Direct compile + conservative map, no optimization. *)

val baseline_stats :
  ?technology:technology ->
  ?input_arrivals:(string * float) list ->
  D.t ->
  stats
