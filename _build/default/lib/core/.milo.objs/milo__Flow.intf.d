lib/core/flow.mli: Constraints Milo_compilers Milo_library Milo_netlist Milo_optimizer Milo_techmap
