lib/core/constraints.mli:
