lib/core/constraints.ml:
