lib/core/flow.ml: Constraints List Milo_compilers Milo_critic Milo_estimate Milo_library Milo_netlist Milo_optimizer Milo_rules Milo_techmap Milo_timing Option
