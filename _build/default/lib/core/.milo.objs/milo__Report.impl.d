lib/core/report.ml: Buffer Flow List Milo_optimizer Printf String
