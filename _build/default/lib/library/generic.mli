(** The generic component library of Figure 13: standard gates, 2:1/4:1
    muxes, 1:2/2:4 decoders, 1/4-bit adders (ripple and carry-lookahead),
    2/4-bit comparators and counters, and 1-bit register variants. *)

val macros : Macro.t list
val get : unit -> Technology.t
