lib/library/technology.ml: Hashtbl List Macro Milo_boolfunc Milo_netlist Option Printf String Truth_table
