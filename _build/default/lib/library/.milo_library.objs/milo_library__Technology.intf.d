lib/library/technology.mli: Macro Milo_boolfunc Milo_netlist Truth_table
