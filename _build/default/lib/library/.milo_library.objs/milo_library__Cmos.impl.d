lib/library/cmos.ml: Array Defs Lazy List Macro Milo_boolfunc Milo_netlist Printf Technology Truth_table
