lib/library/cmos.mli: Macro Technology
