lib/library/generic.mli: Macro Technology
