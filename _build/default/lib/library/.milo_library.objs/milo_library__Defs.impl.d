lib/library/defs.ml: Array List Macro Milo_boolfunc Milo_netlist Printf Truth_table
