lib/library/ecl.mli: Macro Technology
