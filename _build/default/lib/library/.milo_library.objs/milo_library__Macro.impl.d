lib/library/macro.ml: Array Float List Milo_boolfunc Milo_netlist Option Printf Truth_table
