lib/library/generic.ml: Defs Lazy List Macro Milo_netlist Printf Technology
