lib/library/macro.mli: Milo_boolfunc Milo_netlist Truth_table
