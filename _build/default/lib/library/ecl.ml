(* A synthetic ECL gate-array library, standing in for the proprietary
   library the paper used (see DESIGN.md).  ECL characteristics:

   - OR/NOR are the native, fast gates (single current-switch level);
     AND/NAND are slower (built from NOR + inversions);
   - dual-output OR/NOR macros exist (both collector phases come for
     free), which inverter-elimination rules exploit;
   - every core gate has a high-power variant: ~0.65x delay for ~1.9x
     power at equal area — exactly what strategy 2 swaps in;
   - the MSI section has the mux-with-flip-flop macros the paper's
     REG4/ABADD optimization example merges into. *)

module T = Milo_netlist.Types
open Milo_boolfunc

let hp base (m : Macro.t) =
  (* High-power variant of a combinational macro. *)
  {
    m with
    Macro.mname = m.Macro.mname ^ "H";
    base_name = base;
    arcs = List.map (fun (k, d) -> (k, d *. 0.65)) m.Macro.arcs;
    power = m.Macro.power *. 1.9;
    power_level = Macro.High;
  }

let with_hp (m : Macro.t) = [ m; hp m.Macro.mname m ]

let or_nor =
  List.concat_map
    (fun n ->
      let fl = float_of_int (n - 2) in
      let delay = 0.55 +. (0.1 *. fl) in
      let area = 1.0 +. (0.4 *. fl) in
      let power = 1.1 +. (0.3 *. fl) in
      with_hp
        (Defs.gate ~delay ~area ~power ~gates:(float_of_int (n - 1))
           (Printf.sprintf "E_OR%d" n) T.Or n)
      @ with_hp
          (Defs.gate ~delay:(delay *. 0.95) ~area ~power
             ~gates:(float_of_int (n - 1))
             (Printf.sprintf "E_NOR%d" n) T.Nor n))
    [ 2; 3; 4; 5 ]

(* Dual-output OR/NOR: both phases from one current switch. *)
let ornor n =
  let pins =
    T.range_pins "A" n T.Input @ [ ("Y", T.Output); ("YN", T.Output) ]
  in
  let fl = float_of_int (n - 2) in
  Macro.make
    ~delay:(0.6 +. (0.1 *. fl))
    ~area:(1.3 +. (0.4 *. fl))
    ~power:(1.4 +. (0.3 *. fl))
    ~gates:(float_of_int n)
    ~symmetric:[ List.init n (fun i -> Printf.sprintf "A%d" i) ]
    (Printf.sprintf "E_ORNOR%d" n)
    pins
    (Macro.Combinational
       [ ("Y", Defs.gate_tt T.Or n); ("YN", Defs.gate_tt T.Nor n) ])

let and_nand =
  List.concat_map
    (fun n ->
      let fl = float_of_int (n - 2) in
      let delay = 0.9 +. (0.15 *. fl) in
      let area = 1.2 +. (0.5 *. fl) in
      let power = 1.3 +. (0.35 *. fl) in
      with_hp
        (Defs.gate ~delay ~area ~power ~gates:(float_of_int (n - 1))
           (Printf.sprintf "E_AND%d" n) T.And n)
      @ with_hp
          (Defs.gate ~delay:(delay *. 0.95) ~area ~power
             ~gates:(float_of_int (n - 1))
             (Printf.sprintf "E_NAND%d" n) T.Nand n))
    [ 2; 3 ]

let misc_gates =
  with_hp (Defs.gate ~delay:0.35 ~area:0.5 ~power:0.6 ~gates:0.5 "E_INV" T.Inv 1)
  @ with_hp (Defs.gate ~delay:0.45 ~area:0.5 ~power:0.7 ~gates:0.5 "E_BUF" T.Buf 1)
  @ with_hp (Defs.gate ~delay:1.1 ~area:2.2 ~power:1.8 ~gates:3.0 "E_XOR2" T.Xor 2)
  @ with_hp (Defs.gate ~delay:1.1 ~area:2.2 ~power:1.8 ~gates:3.0 "E_XNOR2" T.Xnor 2)
  @ [ ornor 2; ornor 3; Defs.constant "E_VDD" true; Defs.constant "E_VSS" false ]

(* Complex OR-AND / AND-OR gates (series gating). *)
let complex =
  let oa21 =
    Macro.make ~delay:0.8 ~area:1.4 ~power:1.5 ~gates:2.0
      ~symmetric:[ [ "A"; "B" ] ] "E_OA21"
      [ ("A", T.Input); ("B", T.Input); ("C", T.Input); ("Y", T.Output) ]
      (Macro.Combinational
         [ ("Y", Truth_table.of_fun 3 (fun a -> (a.(0) || a.(1)) && a.(2))) ])
  in
  let oa22 =
    Macro.make ~delay:0.9 ~area:1.8 ~power:1.8 ~gates:3.0
      ~symmetric:[ [ "A"; "B" ]; [ "C"; "D" ] ] "E_OA22"
      [ ("A", T.Input); ("B", T.Input); ("C", T.Input); ("D", T.Input);
        ("Y", T.Output) ]
      (Macro.Combinational
         [ ( "Y",
             Truth_table.of_fun 4 (fun a ->
                 (a.(0) || a.(1)) && (a.(2) || a.(3))) ) ])
  in
  let ao21 =
    Macro.make ~delay:0.85 ~area:1.5 ~power:1.5 ~gates:2.0
      ~symmetric:[ [ "A"; "B" ] ] "E_AO21"
      [ ("A", T.Input); ("B", T.Input); ("C", T.Input); ("Y", T.Output) ]
      (Macro.Combinational
         [ ("Y", Truth_table.of_fun 3 (fun a -> (a.(0) && a.(1)) || a.(2))) ])
  in
  List.concat_map with_hp [ oa21; oa22; ao21 ]

let msi =
  [
    Defs.mux ~delay:0.9 ~area:1.8 ~power:1.6 ~gates:3.0 "E_MUX2" 2;
    Defs.mux ~delay:1.3 ~area:3.8 ~power:2.8 ~gates:7.0 "E_MUX4" 4;
    Defs.decoder ~delay:1.1 ~area:3.4 ~power:2.4 ~gates:6.0 "E_DEC2x4" 2 false;
    Defs.decoder ~delay:0.6 ~area:1.2 ~power:1.1 ~gates:2.0 "E_DEC1x2" 1 false;
    Defs.full_adder ~delay:1.5 ~area:3.4 ~power:2.6 ~gates:5.0 "E_ADD1";
    Defs.adder ~ripple:true ~stage:0.8 ~flat:0.9 ~area:13.0 ~power:10.0
      ~gates:20.0 "E_ADD4" 4;
    Defs.adder ~ripple:false ~stage:0.55 ~flat:1.5 ~area:18.0 ~power:14.5
      ~gates:28.0 "E_ADD4CLA" 4;
    Defs.comparator ~delay:1.2 ~area:3.4 ~power:2.6 ~gates:6.0 "E_CMP2" 2;
    Defs.comparator ~delay:1.8 ~area:6.8 ~power:5.0 ~gates:12.0 "E_CMP4" 4;
    Defs.counter ~delay:1.4 ~area:6.6 ~power:5.6 ~gates:14.0 "E_CNT2" 2;
    Defs.counter ~delay:1.4 ~area:11.5 ~power:10.0 ~gates:28.0 "E_CNT4" 4;
  ]

let registers =
  let d = Defs.dff in
  [
    d ~delay:1.1 ~area:2.6 ~power:2.2 ~gates:4.0 "E_DFF";
    d ~has_reset:true ~delay:1.1 ~area:2.9 ~power:2.4 ~gates:4.5 "E_DFF_R";
    d ~has_set:true ~delay:1.1 ~area:2.9 ~power:2.4 ~gates:4.5 "E_DFF_S";
    d ~has_set:true ~has_reset:true ~delay:1.2 ~area:3.2 ~power:2.6 ~gates:5.0
      "E_DFF_SR";
    d ~has_enable:true ~delay:1.1 ~area:3.1 ~power:2.5 ~gates:5.0 "E_DFF_E";
    d ~has_reset:true ~has_enable:true ~delay:1.2 ~area:3.4 ~power:2.7
      ~gates:5.5 "E_DFF_RE";
    d ~inverting:true ~delay:1.1 ~area:2.6 ~power:2.2 ~gates:4.0 "E_DFFN";
    d ~inverting:true ~has_reset:true ~delay:1.1 ~area:2.9 ~power:2.4
      ~gates:4.5 "E_DFFN_R";
    d ~latch:true ~delay:0.8 ~area:1.9 ~power:1.7 ~gates:3.0 "E_DLATCH";
    d ~latch:true ~has_reset:true ~delay:0.8 ~area:2.2 ~power:1.9 ~gates:3.5
      "E_DLATCH_R";
    (* Mux + flip-flop merges: cheaper than the discrete pair
       (E_MUX2 + E_DFF = 4.4 cells vs 3.5; E_MUX4 + E_DFF = 6.4 vs 5.2). *)
    d ~data:(Macro.Muxed 2) ~delay:1.25 ~area:3.5 ~power:3.0 ~gates:6.5
      "E_MUXFF2";
    d ~data:(Macro.Muxed 2) ~has_reset:true ~delay:1.25 ~area:3.8 ~power:3.2
      ~gates:7.0 "E_MUXFF2_R";
    d ~data:(Macro.Muxed 4) ~delay:1.4 ~area:5.2 ~power:4.2 ~gates:10.0
      "E_MUXFF4";
    d ~data:(Macro.Muxed 4) ~has_reset:true ~delay:1.4 ~area:5.5 ~power:4.4
      ~gates:10.5 "E_MUXFF4_R";
  ]

let macros = or_nor @ and_nand @ misc_gates @ complex @ msi @ registers
let library = lazy (Technology.create "ecl" macros)
let get () = Lazy.force library
