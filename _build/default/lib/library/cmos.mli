(** Synthetic CMOS standard-cell technology library: NAND/NOR/AOI-rich,
    no high-power variants (strategy 2 is ECL-only in the paper). *)

val macros : Macro.t list
val get : unit -> Technology.t
