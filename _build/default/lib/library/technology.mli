(** A technology: a named macro set with the lookup structures the
    optimizers need — notably the 32-bit truth-table hash index used by
    strategies 4 and 6 for macro selection. *)

open Milo_boolfunc

type t

val create : string -> Macro.t list -> t
val name : t -> string
val mem : t -> string -> bool
val find : t -> string -> Macro.t
val find_opt : t -> string -> Macro.t option
val all : t -> Macro.t list

val resolver :
  ?instance:(string -> (string * Milo_netlist.Types.dir) list) ->
  t ->
  Milo_netlist.Design.resolver
(** Pin resolver for [Macro] references; [instance] resolves [Instance]
    references (the design database provides it). *)

val matches_for : t -> Truth_table.t -> (Macro.t * int list) list
(** Macros realizing the function (≤ 5 vars), each with the permutation
    [perm] such that [permute tt perm] equals the macro's table —
    i.e. macro input [i] must receive target variable [List.nth perm i]. *)

val power_variants : t -> string -> string list
val high_power_variant : t -> string -> Macro.t option
(** Same-function macro at higher power / lower delay (strategy 2). *)

val standard_variant : t -> string -> Macro.t option
val gate_arities : t -> string -> int list
(** Available arities for a gate family prefix, e.g.
    [gate_arities ecl "E_OR"] = [[2;3;4;5]]. *)

val macro_gates : t -> string -> float
(** Two-input-equivalent complexity of a macro (1.0 if unknown). *)
