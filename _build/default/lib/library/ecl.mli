(** Synthetic ECL gate-array technology library: OR/NOR-rich, dual-output
    OR/NOR macros, high-power variants of every core gate (strategy 2's
    lever), complex OR-AND gates, and MSI macros including the
    mux-with-flip-flop merges the paper's REG4 example uses. *)

val macros : Macro.t list
val get : unit -> Technology.t
