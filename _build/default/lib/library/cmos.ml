(* A synthetic CMOS standard-cell library.  CMOS characteristics:
   NAND/NOR (and AND-OR-invert) are the native gates; no high-power
   variants (strategy 2 is "only applicable to ECL logic"). *)

module T = Milo_netlist.Types
open Milo_boolfunc

let nands =
  List.map
    (fun n ->
      let fl = float_of_int (n - 2) in
      Defs.gate
        ~delay:(0.5 +. (0.12 *. fl))
        ~area:(1.0 +. (0.4 *. fl))
        ~power:(0.7 +. (0.2 *. fl))
        ~gates:(float_of_int (n - 1))
        (Printf.sprintf "C_NAND%d" n) T.Nand n)
    [ 2; 3; 4 ]

let nors =
  List.map
    (fun n ->
      let fl = float_of_int (n - 2) in
      Defs.gate
        ~delay:(0.6 +. (0.15 *. fl))
        ~area:(1.0 +. (0.4 *. fl))
        ~power:(0.7 +. (0.2 *. fl))
        ~gates:(float_of_int (n - 1))
        (Printf.sprintf "C_NOR%d" n) T.Nor n)
    [ 2; 3 ]

let ands_ors =
  List.concat_map
    (fun n ->
      let fl = float_of_int (n - 2) in
      [
        Defs.gate
          ~delay:(0.8 +. (0.12 *. fl))
          ~area:(1.3 +. (0.4 *. fl))
          ~power:(0.8 +. (0.2 *. fl))
          ~gates:(float_of_int (n - 1))
          (Printf.sprintf "C_AND%d" n) T.And n;
        Defs.gate
          ~delay:(0.85 +. (0.15 *. fl))
          ~area:(1.3 +. (0.4 *. fl))
          ~power:(0.8 +. (0.2 *. fl))
          ~gates:(float_of_int (n - 1))
          (Printf.sprintf "C_OR%d" n) T.Or n;
      ])
    [ 2; 3 ]

let misc =
  [
    Defs.gate ~delay:0.3 ~area:0.5 ~power:0.3 ~gates:0.5 "C_INV" T.Inv 1;
    Defs.gate ~delay:0.45 ~area:0.6 ~power:0.4 ~gates:0.5 "C_BUF" T.Buf 1;
    Defs.gate ~delay:1.0 ~area:2.2 ~power:1.2 ~gates:3.0 "C_XOR2" T.Xor 2;
    Defs.gate ~delay:1.0 ~area:2.2 ~power:1.2 ~gates:3.0 "C_XNOR2" T.Xnor 2;
    Defs.constant "C_VDD" true;
    Defs.constant "C_VSS" false;
  ]

let complex =
  [
    Macro.make ~delay:0.6 ~area:1.2 ~power:0.9 ~gates:2.0
      ~symmetric:[ [ "A"; "B" ] ] "C_AOI21"
      [ ("A", T.Input); ("B", T.Input); ("C", T.Input); ("Y", T.Output) ]
      (Macro.Combinational
         [ ( "Y",
             Truth_table.of_fun 3 (fun a -> not ((a.(0) && a.(1)) || a.(2))) )
         ]);
    Macro.make ~delay:0.6 ~area:1.2 ~power:0.9 ~gates:2.0
      ~symmetric:[ [ "A"; "B" ] ] "C_OAI21"
      [ ("A", T.Input); ("B", T.Input); ("C", T.Input); ("Y", T.Output) ]
      (Macro.Combinational
         [ ( "Y",
             Truth_table.of_fun 3 (fun a -> not ((a.(0) || a.(1)) && a.(2))) )
         ]);
    Macro.make ~delay:0.7 ~area:1.6 ~power:1.1 ~gates:3.0
      ~symmetric:[ [ "A"; "B" ]; [ "C"; "D" ] ] "C_AOI22"
      [ ("A", T.Input); ("B", T.Input); ("C", T.Input); ("D", T.Input);
        ("Y", T.Output) ]
      (Macro.Combinational
         [ ( "Y",
             Truth_table.of_fun 4 (fun a ->
                 not ((a.(0) && a.(1)) || (a.(2) && a.(3)))) ) ]);
  ]

let msi =
  [
    Defs.mux ~delay:0.8 ~area:1.9 ~power:1.1 ~gates:3.0 "C_MUX2" 2;
    Defs.mux ~delay:1.2 ~area:4.0 ~power:2.0 ~gates:7.0 "C_MUX4" 4;
    Defs.decoder ~delay:1.0 ~area:3.6 ~power:1.8 ~gates:6.0 "C_DEC2x4" 2 false;
    Defs.decoder ~delay:0.55 ~area:1.3 ~power:0.8 ~gates:2.0 "C_DEC1x2" 1
      false;
    Defs.full_adder ~delay:1.4 ~area:3.6 ~power:1.9 ~gates:5.0 "C_ADD1";
    Defs.adder ~ripple:true ~stage:0.75 ~flat:0.85 ~area:14.0 ~power:7.0
      ~gates:20.0 "C_ADD4" 4;
    Defs.adder ~ripple:false ~stage:0.5 ~flat:1.4 ~area:19.5 ~power:10.0
      ~gates:28.0 "C_ADD4CLA" 4;
    Defs.comparator ~delay:1.1 ~area:3.6 ~power:1.9 ~gates:6.0 "C_CMP2" 2;
    Defs.comparator ~delay:1.7 ~area:7.2 ~power:3.6 ~gates:12.0 "C_CMP4" 4;
    Defs.counter ~delay:1.3 ~area:7.0 ~power:4.0 ~gates:14.0 "C_CNT2" 2;
    Defs.counter ~delay:1.3 ~area:12.2 ~power:7.2 ~gates:28.0 "C_CNT4" 4;
  ]

let registers =
  let d = Defs.dff in
  [
    d ~delay:1.0 ~area:2.8 ~power:1.6 ~gates:4.0 "C_DFF";
    d ~has_reset:true ~delay:1.0 ~area:3.1 ~power:1.7 ~gates:4.5 "C_DFF_R";
    d ~has_set:true ~delay:1.0 ~area:3.1 ~power:1.7 ~gates:4.5 "C_DFF_S";
    d ~has_set:true ~has_reset:true ~delay:1.1 ~area:3.4 ~power:1.8 ~gates:5.0
      "C_DFF_SR";
    d ~has_enable:true ~delay:1.0 ~area:3.3 ~power:1.8 ~gates:5.0 "C_DFF_E";
    d ~has_reset:true ~has_enable:true ~delay:1.1 ~area:3.6 ~power:1.9
      ~gates:5.5 "C_DFF_RE";
    d ~inverting:true ~delay:1.0 ~area:2.8 ~power:1.6 ~gates:4.0 "C_DFFN";
    d ~inverting:true ~has_reset:true ~delay:1.0 ~area:3.1 ~power:1.7
      ~gates:4.5 "C_DFFN_R";
    d ~latch:true ~delay:0.7 ~area:2.0 ~power:1.2 ~gates:3.0 "C_DLATCH";
    d ~latch:true ~has_reset:true ~delay:0.7 ~area:2.3 ~power:1.3 ~gates:3.5
      "C_DLATCH_R";
    d ~data:(Macro.Muxed 2) ~delay:1.15 ~area:3.9 ~power:2.2 ~gates:6.5
      "C_MUXFF2";
    d ~data:(Macro.Muxed 2) ~has_reset:true ~delay:1.15 ~area:4.2 ~power:2.3
      ~gates:7.0 "C_MUXFF2_R";
    d ~data:(Macro.Muxed 4) ~delay:1.3 ~area:5.8 ~power:3.0 ~gates:10.0
      "C_MUXFF4";
    d ~data:(Macro.Muxed 4) ~has_reset:true ~delay:1.3 ~area:6.1 ~power:3.1
      ~gates:10.5 "C_MUXFF4_R";
  ]

let macros = nands @ nors @ ands_ors @ misc @ complex @ msi @ registers
let library = lazy (Technology.create "cmos" macros)
let get () = Lazy.force library
