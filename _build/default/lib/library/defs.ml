(* Shared constructors for macro definitions across the generic, ECL and
   CMOS libraries. *)

open Milo_boolfunc
module T = Milo_netlist.Types

let gate_pins n = T.range_pins "A" n T.Input @ [ ("Y", T.Output) ]
(* Gate macro pins are A0..A(n-1) then Y. *)

let gate_semantics (fn : T.gate_fn) (input : bool array) =
  let fold op init = Array.fold_left op init input in
  match fn with
  | T.And -> fold ( && ) true
  | T.Or -> fold ( || ) false
  | T.Nand -> not (fold ( && ) true)
  | T.Nor -> not (fold ( || ) false)
  | T.Xor -> fold ( <> ) false
  | T.Xnor -> not (fold ( <> ) false)
  | T.Inv -> not input.(0)
  | T.Buf -> input.(0)

let gate_tt fn n = Truth_table.of_fun n (gate_semantics fn)

let gate ?power_level ?base_name ?drive ?load ~delay ~area ~power ~gates name
    fn n =
  Macro.make ?power_level ?base_name ?drive ?load ~delay ~area ~power ~gates
    ~symmetric:(if n > 1 then [ List.init n (fun i -> Printf.sprintf "A%d" i) ] else [])
    name (gate_pins n)
    (Macro.Combinational [ ("Y", gate_tt fn n) ])

(* n-to-1 single-bit multiplexor: D0..D(n-1), S0..S(s-1), Y. *)
let mux_pins n =
  let s = T.clog2 n in
  T.range_pins "D" n T.Input @ T.range_pins "S" s T.Input @ [ ("Y", T.Output) ]

let mux_tt n =
  let s = T.clog2 n in
  Truth_table.of_fun (n + s) (fun a ->
      let sel = ref 0 in
      for i = 0 to s - 1 do
        if a.(n + i) then sel := !sel lor (1 lsl i)
      done;
      if !sel < n then a.(!sel) else false)

let mux ~delay ~area ~power ~gates name n =
  Macro.make ~delay ~area ~power ~gates name (mux_pins n)
    (Macro.Combinational [ ("Y", mux_tt n) ])

(* k-to-2^k decoder, optionally with enable. *)
let decoder_pins k enable =
  T.range_pins "A" k T.Input
  @ (if enable then [ ("EN", T.Input) ] else [])
  @ T.range_pins "Y" (1 lsl k) T.Output

let decoder ~delay ~area ~power ~gates name k enable =
  let nin = k + if enable then 1 else 0 in
  let out j =
    Truth_table.of_fun nin (fun a ->
        let v = ref 0 in
        for i = 0 to k - 1 do
          if a.(i) then v := !v lor (1 lsl i)
        done;
        let en = (not enable) || a.(k) in
        en && !v = j)
  in
  Macro.make ~delay ~area ~power ~gates name (decoder_pins k enable)
    (Macro.Combinational
       (List.init (1 lsl k) (fun j -> (Printf.sprintf "Y%d" j, out j))))

(* Full adder: A B CIN -> S COUT. *)
let full_adder ~delay ~area ~power ~gates name =
  let s = Truth_table.of_fun 3 (fun a -> a.(0) <> a.(1) <> a.(2)) in
  let co =
    Truth_table.of_fun 3 (fun a ->
        (a.(0) && a.(1)) || (a.(2) && (a.(0) <> a.(1))))
  in
  Macro.make ~delay ~area ~power ~gates name
    [ ("A", T.Input); ("B", T.Input); ("CIN", T.Input);
      ("S", T.Output); ("COUT", T.Output) ]
    (Macro.Combinational [ ("S", s); ("COUT", co) ])
    |> fun m -> { m with Macro.symmetric = [ [ "A"; "B" ] ] }

(* w-bit adder: A0.. B0.. CIN -> S0.. COUT.  [stage] is the per-stage
   ripple delay; [flat] a carry-lookahead-style constant part. *)
let adder_arcs w ~stage ~flat ~ripple =
  let s j = Printf.sprintf "S%d" j in
  let arcs = ref [] in
  let add a b d = arcs := ((a, b), d) :: !arcs in
  for i = 0 to w - 1 do
    let ai = Printf.sprintf "A%d" i and bi = Printf.sprintf "B%d" i in
    for j = i to w - 1 do
      let d =
        if ripple then flat +. (stage *. float_of_int (j - i))
        else flat +. (stage *. float_of_int (min 1 (j - i)))
      in
      add ai (s j) d;
      add bi (s j) d
    done;
    let dco =
      if ripple then flat +. (stage *. float_of_int (w - i))
      else flat +. (2.0 *. stage)
    in
    add ai "COUT" dco;
    add bi "COUT" dco
  done;
  for j = 0 to w - 1 do
    add "CIN" (s j)
      (if ripple then (flat *. 0.8) +. (stage *. float_of_int j)
       else flat +. stage)
  done;
  add "CIN" "COUT"
    (if ripple then (flat *. 0.8) +. (stage *. float_of_int w)
     else flat +. stage);
  !arcs

let adder_eval w input =
  (* inputs: A0..A(w-1) B0..B(w-1) CIN; outputs S0..S(w-1) COUT *)
  let a = ref 0 and b = ref 0 in
  for i = 0 to w - 1 do
    if input.(i) then a := !a lor (1 lsl i);
    if input.(w + i) then b := !b lor (1 lsl i)
  done;
  let cin = if input.(2 * w) then 1 else 0 in
  let sum = !a + !b + cin in
  Array.init (w + 1) (fun i -> sum land (1 lsl i) <> 0)

let adder ~ripple ~stage ~flat ~area ~power ~gates name w =
  let pins =
    T.range_pins "A" w T.Input @ T.range_pins "B" w T.Input
    @ [ ("CIN", T.Input) ]
    @ T.range_pins "S" w T.Output
    @ [ ("COUT", T.Output) ]
  in
  Macro.make ~delay:flat ~area ~power ~gates
    ~arcs:(adder_arcs w ~stage ~flat ~ripple)
    name pins
    (Macro.Comb_eval (adder_eval w))

(* w-bit comparator: A0.. B0.. -> EQ LT GT (unsigned). *)
let comparator_eval w input =
  let a = ref 0 and b = ref 0 in
  for i = 0 to w - 1 do
    if input.(i) then a := !a lor (1 lsl i);
    if input.(w + i) then b := !b lor (1 lsl i)
  done;
  [| !a = !b; !a < !b; !a > !b |]

let comparator ~delay ~area ~power ~gates name w =
  let pins =
    T.range_pins "A" w T.Input @ T.range_pins "B" w T.Input
    @ [ ("EQ", T.Output); ("LT", T.Output); ("GT", T.Output) ]
  in
  if w <= 2 then
    let nin = 2 * w in
    let tt k = Truth_table.of_fun nin (fun a -> (comparator_eval w a).(k)) in
    Macro.make ~delay ~area ~power ~gates name pins
      (Macro.Combinational [ ("EQ", tt 0); ("LT", tt 1); ("GT", tt 2) ])
  else
    Macro.make ~delay ~area ~power ~gates name pins
      (Macro.Comb_eval (comparator_eval w))

(* Flip-flops and latches.  Pin order: data pins, selects, CLK, SET, RST,
   EN, Q. *)
let dff_pins (data : Macro.dff_data) ~has_set ~has_reset ~has_enable =
  (match data with
  | Macro.Direct -> [ ("D", T.Input) ]
  | Macro.Muxed n ->
      T.range_pins "D" n T.Input @ T.range_pins "S" (T.clog2 n) T.Input)
  @ [ ("CLK", T.Input) ]
  @ (if has_set then [ ("SET", T.Input) ] else [])
  @ (if has_reset then [ ("RST", T.Input) ] else [])
  @ (if has_enable then [ ("EN", T.Input) ] else [])
  @ [ ("Q", T.Output) ]

let dff ?(data = Macro.Direct) ?(latch = false) ?(has_set = false)
    ?(has_reset = false) ?(has_enable = false) ?(inverting = false) ~delay
    ~area ~power ~gates name =
  let pins = dff_pins data ~has_set ~has_reset ~has_enable in
  let arcs = [ (("CLK", "Q"), delay) ] in
  Macro.make ~delay ~area ~power ~gates ~arcs name pins
    (Macro.Seq_dff { data; latch; has_set; has_reset; has_enable; inverting })

(* Counters: D0.. LD UP CLK RST EN -> Q0.. COUT *)
let counter_pins bits ~has_load ~has_updown ~has_reset ~has_enable =
  (if has_load then T.range_pins "D" bits T.Input @ [ ("LD", T.Input) ] else [])
  @ (if has_updown then [ ("UP", T.Input) ] else [])
  @ [ ("CLK", T.Input) ]
  @ (if has_reset then [ ("RST", T.Input) ] else [])
  @ (if has_enable then [ ("EN", T.Input) ] else [])
  @ T.range_pins "Q" bits T.Output
  @ [ ("COUT", T.Output) ]

let counter ?(has_load = true) ?(has_updown = true) ?(has_reset = true)
    ?(has_enable = true) ~delay ~area ~power ~gates name bits =
  let pins = counter_pins bits ~has_load ~has_updown ~has_reset ~has_enable in
  let arcs =
    List.map (fun j -> (("CLK", Printf.sprintf "Q%d" j), delay))
      (List.init bits (fun j -> j))
    @ [ (("CLK", "COUT"), delay *. 1.3) ]
  in
  Macro.make ~delay ~area ~power ~gates ~arcs name pins
    (Macro.Seq_counter { bits; has_load; has_updown; has_reset; has_enable })

let constant name value =
  Macro.make ~delay:0.0 ~area:0.0 ~power:0.0 ~gates:0.0 name
    [ ("Y", T.Output) ]
    (Macro.Combinational [ ("Y", Truth_table.const 0 value) ])
