(* The generic component library of the paper's Figure 13:

     AND/OR/NAND/NOR/XOR/XNOR 2,3,4; INV; BUF; VDD; VSS;
     MUX 2:1 and 4:1; DECODER 1:2 and 2:4;
     ADDER 1-bit, 4-bit, 4-bit carry-lookahead;
     COMPARATOR 2-bit and 4-bit;
     COUNTER 2- and 4-bit with up/down/reset/load/enable;
     REGISTER 1-bit with inverting/noninverting/set/reset/
       edge-triggered/level-sensitive variants.

   Delay/area/power are nominal technology-independent values used for
   early microarchitecture estimates. *)

module T = Milo_netlist.Types

let simple_gates =
  let g = Defs.gate in
  let sized fn base_delay base_area =
    List.map
      (fun n ->
        let fl = float_of_int (n - 2) in
        g
          ~delay:(base_delay +. (0.12 *. fl))
          ~area:(base_area +. (0.5 *. fl))
          ~power:(1.0 +. (0.25 *. fl))
          ~gates:(float_of_int (n - 1))
          (Printf.sprintf "%s%d" (T.gate_fn_name fn) n)
          fn n)
      [ 2; 3; 4 ]
  in
  let xors fn =
    List.map
      (fun n ->
        let fl = float_of_int (n - 2) in
        g
          ~delay:(1.4 +. (0.5 *. fl))
          ~area:(2.5 +. (1.8 *. fl))
          ~power:(1.5 +. (0.7 *. fl))
          ~gates:(float_of_int (3 * (n - 1)))
          (Printf.sprintf "%s%d" (T.gate_fn_name fn) n)
          fn n)
      [ 2; 3; 4 ]
  in
  sized T.And 1.0 1.0 @ sized T.Or 1.0 1.0 @ sized T.Nand 0.7 1.0
  @ sized T.Nor 0.7 1.0 @ xors T.Xor @ xors T.Xnor
  @ [
      g ~delay:0.4 ~area:0.5 ~power:0.5 ~gates:0.5 "INV" T.Inv 1;
      g ~delay:0.5 ~area:0.5 ~power:0.5 ~gates:0.5 "BUF" T.Buf 1;
      Defs.constant "VDD" true;
      Defs.constant "VSS" false;
    ]

let msi =
  [
    Defs.mux ~delay:1.2 ~area:2.0 ~power:1.4 ~gates:3.0 "MUX2" 2;
    Defs.mux ~delay:1.8 ~area:4.5 ~power:2.6 ~gates:7.0 "MUX4" 4;
    Defs.decoder ~delay:0.8 ~area:1.5 ~power:1.0 ~gates:2.0 "DEC1x2" 1 false;
    Defs.decoder ~delay:1.5 ~area:4.0 ~power:2.2 ~gates:6.0 "DEC2x4" 2 false;
    Defs.decoder ~delay:1.6 ~area:4.8 ~power:2.5 ~gates:8.0 "DEC2x4E" 2 true;
    Defs.full_adder ~delay:2.0 ~area:4.0 ~power:2.4 ~gates:5.0 "ADD1";
    Defs.adder ~ripple:true ~stage:1.1 ~flat:1.2 ~area:16.0 ~power:9.0
      ~gates:20.0 "ADD4" 4;
    Defs.adder ~ripple:false ~stage:0.8 ~flat:2.0 ~area:22.0 ~power:13.0
      ~gates:28.0 "ADD4CLA" 4;
    Defs.comparator ~delay:1.6 ~area:4.0 ~power:2.4 ~gates:6.0 "CMP2" 2;
    Defs.comparator ~delay:2.4 ~area:8.0 ~power:4.6 ~gates:12.0 "CMP4" 4;
    Defs.counter ~delay:1.8 ~area:8.0 ~power:5.0 ~gates:14.0 "CNT2" 2;
    Defs.counter ~delay:1.8 ~area:14.0 ~power:9.0 ~gates:28.0 "CNT4" 4;
  ]

let registers =
  let d = Defs.dff in
  [
    d ~delay:1.5 ~area:3.0 ~power:2.0 ~gates:4.0 "DFF";
    d ~has_reset:true ~delay:1.5 ~area:3.4 ~power:2.2 ~gates:4.5 "DFF_R";
    d ~has_set:true ~delay:1.5 ~area:3.4 ~power:2.2 ~gates:4.5 "DFF_S";
    d ~has_set:true ~has_reset:true ~delay:1.6 ~area:3.8 ~power:2.4 ~gates:5.0
      "DFF_SR";
    d ~has_enable:true ~delay:1.5 ~area:3.6 ~power:2.3 ~gates:5.0 "DFF_E";
    d ~has_reset:true ~has_enable:true ~delay:1.6 ~area:4.0 ~power:2.5
      ~gates:5.5 "DFF_RE";
    d ~inverting:true ~delay:1.5 ~area:3.0 ~power:2.0 ~gates:4.0 "DFFN";
    d ~inverting:true ~has_reset:true ~delay:1.5 ~area:3.4 ~power:2.2
      ~gates:4.5 "DFFN_R";
    d ~latch:true ~delay:1.0 ~area:2.2 ~power:1.5 ~gates:3.0 "DLATCH";
    d ~latch:true ~has_reset:true ~delay:1.0 ~area:2.6 ~power:1.7 ~gates:3.5
      "DLATCH_R";
    d ~data:(Macro.Muxed 2) ~delay:1.7 ~area:4.2 ~power:2.8 ~gates:6.5
      "MUXFF2";
    d ~data:(Macro.Muxed 2) ~has_reset:true ~delay:1.7 ~area:4.6 ~power:3.0
      ~gates:7.0 "MUXFF2_R";
    d ~data:(Macro.Muxed 4) ~delay:1.9 ~area:6.2 ~power:3.8 ~gates:10.0
      "MUXFF4";
    d ~data:(Macro.Muxed 4) ~has_reset:true ~delay:1.9 ~area:6.6 ~power:4.0
      ~gates:10.5 "MUXFF4_R";
  ]

let macros = simple_gates @ msi @ registers
let library = lazy (Technology.create "generic" macros)
let get () = Lazy.force library
