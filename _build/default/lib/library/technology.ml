(* A technology: a named set of macros with the indexes the optimizers
   need — in particular the truth-table hash index the paper's strategies
   4 and 6 use ("lookup in the hash table is accomplished through a key
   that is the truth table entry for a particular function"). *)

open Milo_boolfunc
module D = Milo_netlist.Design
module T = Milo_netlist.Types

type t = {
  tech_name : string;
  macros : (string, Macro.t) Hashtbl.t;
  order : string list;
  func_index : (int, string list) Hashtbl.t;
      (* canonical key32 -> single-output combinational macros *)
  variants : (string, string list) Hashtbl.t;
      (* base family name -> members ordered by power level *)
}

let create tech_name macro_list =
  let macros = Hashtbl.create 64 in
  let func_index = Hashtbl.create 64 in
  let variants = Hashtbl.create 64 in
  List.iter
    (fun (m : Macro.t) ->
      if Hashtbl.mem macros m.Macro.mname then
        invalid_arg
          (Printf.sprintf "Technology.create: duplicate macro %s" m.Macro.mname);
      Hashtbl.replace macros m.Macro.mname m;
      (match Macro.single_output_tt m with
      | Some tt when Truth_table.vars tt <= 5 ->
          let key = Truth_table.canonical_key tt in
          let prev = Option.value ~default:[] (Hashtbl.find_opt func_index key) in
          Hashtbl.replace func_index key (prev @ [ m.Macro.mname ])
      | Some _ | None -> ());
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt variants m.Macro.base_name)
      in
      Hashtbl.replace variants m.Macro.base_name (prev @ [ m.Macro.mname ]))
    macro_list;
  {
    tech_name;
    macros;
    order = List.map Macro.name macro_list;
    func_index;
    variants;
  }

let name t = t.tech_name
let mem t mname = Hashtbl.mem t.macros mname

let find t mname =
  match Hashtbl.find_opt t.macros mname with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Technology.find: no macro %s in library %s" mname
           t.tech_name)

let find_opt t mname = Hashtbl.find_opt t.macros mname
let all t = List.map (find t) t.order

(* Resolver for the netlist layer: pin interfaces of Macro references.
   Instance references must be resolved by the design database, so a
   second resolver can be chained in. *)
let resolver ?instance t : D.resolver =
 fun kind nm ->
  match kind with
  | T.Macro _ -> (find t nm).Macro.pins
  | T.Instance _ -> (
      match instance with
      | Some f -> f nm
      | None ->
          invalid_arg
            (Printf.sprintf "Technology.resolver: unresolved instance %s" nm))
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Constant _ | T.Counter _ ->
      T.pins_of_kind kind

(* All macros matching a target function, with the input permutation
   that realizes it: [perm] maps macro input index -> target variable. *)
let matches_for t tt =
  if Truth_table.vars tt > 5 then []
  else
    let key = Truth_table.canonical_key tt in
    let candidates = Option.value ~default:[] (Hashtbl.find_opt t.func_index key) in
    List.filter_map
      (fun mname ->
        let m = find t mname in
        match Macro.single_output_tt m with
        | None -> None
        | Some mtt ->
            if Truth_table.vars mtt <> Truth_table.vars tt then None
            else
              let nv = Truth_table.vars tt in
              let perms = Truth_table.permutations (List.init nv (fun i -> i)) in
              let found =
                List.find_opt
                  (fun p -> Truth_table.equal (Truth_table.permute tt p) mtt)
                  perms
              in
              Option.map (fun p -> (m, p)) found)
      candidates

let power_variants t base =
  Option.value ~default:[] (Hashtbl.find_opt t.variants base)

let high_power_variant t mname =
  match find_opt t mname with
  | None -> None
  | Some m ->
      if m.Macro.power_level = Macro.High then None
      else
        power_variants t m.Macro.base_name
        |> List.filter_map (fun nm ->
               let v = find t nm in
               if v.Macro.power_level = Macro.High then Some v else None)
        |> function
        | [] -> None
        | v :: _ -> Some v

let standard_variant t mname =
  match find_opt t mname with
  | None -> None
  | Some m ->
      if m.Macro.power_level = Macro.Standard then None
      else
        power_variants t m.Macro.base_name
        |> List.filter_map (fun nm ->
               let v = find t nm in
               if v.Macro.power_level = Macro.Standard then Some v else None)
        |> function
        | [] -> None
        | v :: _ -> Some v

(* Largest available arity for a simple gate family, used by the tree
   builders ("Find an OR gate in the database with num_or_inputs such
   that num_or_inputs <= num_left_over_outputs"). *)
let gate_arities t prefix =
  List.filter_map
    (fun mname ->
      let p = String.length prefix in
      if String.length mname > p && String.sub mname 0 p = prefix then
        int_of_string_opt (String.sub mname p (String.length mname - p))
      else None)
    t.order
  |> List.sort_uniq compare

let macro_gates t mname =
  match find_opt t mname with Some m -> m.Macro.gates | None -> 1.0
