lib/optimizer/area_opt.ml: Milo_rules
