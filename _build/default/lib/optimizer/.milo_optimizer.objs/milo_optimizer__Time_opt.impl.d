lib/optimizer/time_opt.ml: Float List Milo_estimate Milo_library Milo_netlist Milo_rules Milo_timing Strategies
