lib/optimizer/power_opt.mli: Milo_rules
