lib/optimizer/area_opt.mli: Milo_rules
