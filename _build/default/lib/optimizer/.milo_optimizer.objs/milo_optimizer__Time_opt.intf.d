lib/optimizer/time_opt.mli: Milo_rules Milo_timing Strategies
