lib/optimizer/logic_optimizer.ml: Area_opt Hashtbl List Milo_compilers Milo_critic Milo_library Milo_netlist Milo_rules Milo_techmap Time_opt
