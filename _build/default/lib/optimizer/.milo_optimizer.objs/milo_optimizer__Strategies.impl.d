lib/optimizer/strategies.ml: Float List Milo_boolfunc Milo_compilers Milo_critic Milo_library Milo_minimize Milo_netlist Milo_rules Milo_timing Option Printf String Truth_table
