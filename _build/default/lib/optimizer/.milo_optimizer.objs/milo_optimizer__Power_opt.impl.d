lib/optimizer/power_opt.ml: Milo_rules
