lib/optimizer/strategies.mli: Milo_netlist Milo_rules Milo_timing
