lib/optimizer/logic_optimizer.mli: Milo_compilers Milo_netlist Milo_techmap Time_opt
