(* The eight timing strategies of Section 4 (Figure 9).

   Each strategy takes the current timing analysis and a critical path
   and attempts one local transformation; the caller measures and keeps
   or undoes it.  Cost/gain profile, per the paper:

     1 swap equivalent signals      no cost, tiny gain
     2 high-power macro (ECL)       power up, small gain
     3 factor the critical input    area varies, small gain
     4 better macro, no cost        hash-table lookup, moderate gain
     5 duplicate shared logic       area/power up, small gain
     6 better macro, with cost      area/power up, moderate gain
     7 collapse to 2-level + weak   most expensive, large gain
       division re-factoring
     8 duplicate logic with mux     large gain, large cost *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule
module Macro = Milo_library.Macro
module Tech = Milo_library.Technology
module Sta = Milo_timing.Sta
open Milo_boolfunc

type result = Applied of string | Not_applicable

(* Hops of the path, endpoint side first (deepest logic first). *)
let path_hops (p : Sta.path) = List.rev p.Sta.hops

(* --- Strategy 1: swap equivalent signals ----------------------------- *)

let swap_signals ctx (sta : Sta.t) (path : Sta.path) log =
  let try_hop (h : Sta.hop) =
    match D.comp_opt ctx.R.design h.Sta.comp with
    | None -> None
    | Some c -> (
        match R.macro_of ctx c with
        | None -> None
        | Some m ->
            let group =
              List.find_opt (fun g -> List.mem h.Sta.in_pin g) m.Macro.symmetric
            in
            (match group with
            | None -> None
            | Some g ->
                let arr pin =
                  match D.connection ctx.R.design c.D.id pin with
                  | Some nid ->
                      Option.value ~default:0.0 (Sta.net_arrival sta nid)
                  | None -> 0.0
                in
                let arc pin = Macro.arc_delay_opt m pin h.Sta.out_pin in
                let crit_pin = h.Sta.in_pin in
                let crit_through pin =
                  match arc pin with
                  | Some d -> arr crit_pin +. d
                  | None -> infinity
                in
                let current = crit_through crit_pin in
                (* Find a symmetric pin with a faster arc whose present
                   signal arrives earlier than the critical one. *)
                let cand =
                  List.find_opt
                    (fun pin ->
                      pin <> crit_pin
                      && crit_through pin < current -. 1e-9
                      && arr pin <= arr crit_pin)
                    g
                in
                (match cand with
                | None -> None
                | Some pin ->
                    let n1 = D.connection ctx.R.design c.D.id crit_pin in
                    let n2 = D.connection ctx.R.design c.D.id pin in
                    (match (n1, n2) with
                    | Some a, Some b when a <> b ->
                        D.connect ~log ctx.R.design c.D.id crit_pin b;
                        D.connect ~log ctx.R.design c.D.id pin a;
                        Some (Printf.sprintf "swap %s.%s<->%s" c.D.cname crit_pin pin)
                    | _ -> None))))
  in
  let rec go = function
    | [] -> Not_applicable
    | h :: rest -> (
        match try_hop h with Some msg -> Applied msg | None -> go rest)
  in
  go (path_hops path)

(* --- Strategy 2: high-power macro ------------------------------------ *)

let high_power ctx (_sta : Sta.t) (path : Sta.path) log =
  let try_hop (h : Sta.hop) =
    match D.comp_opt ctx.R.design h.Sta.comp with
    | None -> None
    | Some c -> (
        match R.macro_of ctx c with
        | Some m when m.Macro.power_level = Macro.Standard -> (
            match Tech.high_power_variant ctx.R.tech m.Macro.mname with
            | Some hv ->
                D.set_kind ~log ctx.R.design c.D.id (T.Macro hv.Macro.mname);
                Some (Printf.sprintf "power-up %s" c.D.cname)
            | None -> None)
        | Some _ | None -> None)
  in
  let rec go = function
    | [] -> Not_applicable
    | h :: rest -> (
        match try_hop h with Some msg -> Applied msg | None -> go rest)
  in
  go (path_hops path)

(* --- Strategy 3: factorization for timing ----------------------------- *)

let assoc_fn = function
  | T.And | T.Or | T.Xor -> true
  | T.Nand | T.Nor | T.Xnor | T.Inv | T.Buf -> false

(* Maximal same-function single-fanout tree rooted at [root]; returns
   (leaf nets, member comp ids). *)
let collect_chain ctx fn root =
  let leaves = ref [] and members = ref [] in
  let rec grow (c : D.comp) =
    members := c.D.id :: !members;
    let m = Option.get (R.macro_of ctx c) in
    List.iter
      (fun pin ->
        match D.connection ctx.R.design c.D.id pin with
        | None -> ()
        | Some nid -> (
            match R.driver_comp ctx nid with
            | Some (dc, _)
              when R.fanout ctx nid = 1 && not (R.net_is_port ctx nid) -> (
                match R.macro_of ctx dc with
                | Some dm -> (
                    match Milo_critic.Gate_shape.of_macro dm with
                    | Some { Milo_critic.Gate_shape.fn = dfn; _ } when dfn = fn
                      ->
                        grow dc
                    | Some _ | None -> leaves := nid :: !leaves)
                | None -> leaves := nid :: !leaves)
            | Some _ | None -> leaves := nid :: !leaves))
      m.Macro.inputs
  in
  grow root;
  (List.rev !leaves, !members)

(* Rebuild an associative chain as an arrival-driven (Huffman) balanced
   tree of 2-input gates: combine the two earliest signals first, so the
   latest leaf passes through as few gates as possible. *)
let rebalance_chain ctx (sta : Sta.t) log (root : D.comp) fn =
  let leaves, members = collect_chain ctx fn root in
  if List.length leaves < 3 || List.length members < 2 then None
  else
    let out =
      let m = Option.get (R.macro_of ctx root) in
      D.connection ctx.R.design root.D.id (List.nth m.Macro.outputs 0)
    in
    match out with
    | None -> None
    | Some onet ->
        let arr nid = Option.value ~default:0.0 (Sta.net_arrival sta nid) in
        let queue = ref (List.map (fun n -> (arr n, n)) leaves) in
        let pop () =
          let sorted = List.sort compare !queue in
          match sorted with
          | a :: b :: rest ->
              queue := rest;
              Some (a, b)
          | [ _ ] | [] -> None
        in
        R.remove_comp_and_dangling ctx log root.D.id;
        List.iter
          (fun cid ->
            if D.comp_opt ctx.R.design cid <> None then
              R.remove_comp_and_dangling ctx log cid)
          members;
        if D.net_opt ctx.R.design onet = None then None
        else begin
          let rec build () =
            match pop () with
            | Some ((a1, n1), (a2, n2)) ->
                let g =
                  Milo_compilers.Gate_comp.build ~log ctx.R.design ctx.R.set fn
                    [ n1; n2 ]
                in
                queue := (Float.max a1 a2 +. 1.0, g) :: !queue;
                build ()
            | None -> (
                match !queue with
                | [ (_, n) ] -> n
                | _ -> assert false)
          in
          let src = build () in
          R.merge_net_into ctx log ~src ~dst:onet;
          Some "rebalance"
        end

let factor_isolate ctx (_sta : Sta.t) (path : Sta.path) log =
  let assoc = assoc_fn in
  let try_hop (h : Sta.hop) =
    match D.comp_opt ctx.R.design h.Sta.comp with
    | None -> None
    | Some c -> (
        match R.macro_of ctx c with
        | None -> None
        | Some m -> (
            match Milo_critic.Gate_shape.of_macro m with
            | Some { Milo_critic.Gate_shape.fn; arity }
              when assoc fn && arity >= 3 -> (
                let idx =
                  match
                    int_of_string_opt
                      (String.sub h.Sta.in_pin 1 (String.length h.Sta.in_pin - 1))
                  with
                  | Some i -> i
                  | None -> -1
                in
                if idx < 0 then None
                else
                  let ins =
                    List.filter_map
                      (fun i ->
                        D.connection ctx.R.design c.D.id (Printf.sprintf "A%d" i))
                      (List.init arity (fun i -> i))
                  in
                  match
                    ( List.length ins = arity,
                      D.connection ctx.R.design c.D.id
                        (List.nth m.Macro.outputs 0) )
                  with
                  | true, Some onet ->
                      let late = List.nth ins idx in
                      let rest = List.filteri (fun i _ -> i <> idx) ins in
                      R.remove_comp_and_dangling ctx log c.D.id;
                      if D.net_opt ctx.R.design onet <> None then begin
                        let inner =
                          Milo_compilers.Gate_comp.build ~log ctx.R.design
                            ctx.R.set fn rest
                        in
                        let src =
                          Milo_compilers.Gate_comp.build ~log ctx.R.design
                            ctx.R.set fn [ inner; late ]
                        in
                        R.merge_net_into ctx log ~src ~dst:onet
                      end;
                      Some (Printf.sprintf "factor %s" c.D.cname)
                  | _, _ -> None)
            | Some _ | None -> None))
  in
  let rec go = function
    | [] -> Not_applicable
    | h :: rest -> (
        match try_hop h with Some msg -> Applied msg | None -> go rest)
  in
  go (path_hops path)

let factor_path ctx (sta : Sta.t) (path : Sta.path) log =
  let assoc = assoc_fn in
  (* First preference: rebalance the deepest same-function chain on the
     path ("using factorization along the entire critical path can add
     up"). *)
  let try_rebalance (h : Sta.hop) =
    match D.comp_opt ctx.R.design h.Sta.comp with
    | None -> None
    | Some c -> (
        match R.macro_of ctx c with
        | None -> None
        | Some m -> (
            match Milo_critic.Gate_shape.of_macro m with
            | Some { Milo_critic.Gate_shape.fn; _ } when assoc fn ->
                rebalance_chain ctx sta log c fn
            | Some _ | None -> None))
  in
  let rec first f = function
    | [] -> None
    | x :: rest -> ( match f x with Some r -> Some r | None -> first f rest)
  in
  match first try_rebalance (path_hops path) with
  | Some msg -> Applied msg
  | None -> factor_isolate ctx sta path log

(* --- Strategies 4 and 6: hash-table macro selection ------------------- *)

(* Replace a small cone by a single library macro with the same function
   (looked up through the 32-bit truth-table key).  [allow_cost]
   distinguishes strategy 6 from strategy 4. *)
let macro_select ~allow_cost ctx (_sta : Sta.t) (path : Sta.path) log =
  let try_hop (h : Sta.hop) =
    match D.comp_opt ctx.R.design h.Sta.comp with
    | None -> None
    | Some c -> (
        match R.macro_of ctx c with
        | None -> None
        | Some m -> (
            match D.connection ctx.R.design c.D.id (List.nth m.Macro.outputs 0) with
            | None -> None
            | Some onet -> (
                match Milo_rules.Cone.extract ctx ~max_leaves:5 onet with
                | None -> None
                | Some cone when List.length cone.Milo_rules.Cone.comps < 2 -> None
                | Some cone -> (
                    match Milo_rules.Cone.truth_table ctx cone with
                    | None -> None
                    | Some tt -> (
                        let old_area = Milo_rules.Cone.area ctx cone in
                        let matches = Tech.matches_for ctx.R.tech tt in
                        let viable =
                          List.filter
                            (fun (cand, _) ->
                              allow_cost || cand.Macro.area <= old_area +. 1e-9)
                            matches
                        in
                        match viable with
                        | [] -> None
                        | (cand, perm) :: _ ->
                            let ok =
                              Milo_rules.Cone.replace ctx log cone ~build:(fun () ->
                                  let cid =
                                    D.add_comp ~log ctx.R.design
                                      (T.Macro cand.Macro.mname)
                                  in
                                  List.iteri
                                    (fun i pin ->
                                      let v = List.nth perm i in
                                      D.connect ~log ctx.R.design cid pin
                                        (List.nth cone.Milo_rules.Cone.leaves v))
                                    cand.Macro.inputs;
                                  let out = D.new_net ~log ctx.R.design in
                                  D.connect ~log ctx.R.design cid
                                    (List.nth cand.Macro.outputs 0)
                                    out;
                                  out)
                            in
                            if ok then
                              Some
                                (Printf.sprintf "macro-select %s -> %s"
                                   c.D.cname cand.Macro.mname)
                            else None)))))
  in
  let rec go = function
    | [] -> Not_applicable
    | h :: rest -> (
        match try_hop h with Some msg -> Applied msg | None -> go rest)
  in
  go (path_hops path)

(* --- Strategy 5: duplicate shared logic ------------------------------- *)

let duplicate_logic ctx (_sta : Sta.t) (path : Sta.path) log =
  let hops = path_hops path in
  (* Find a hop whose driver also feeds other sinks; give the critical
     sink a private copy. *)
  let rec pairs = function
    | h1 :: (h2 : Sta.hop) :: rest -> (h1, h2) :: pairs (h2 :: rest)
    | [ _ ] | [] -> []
  in
  let try_pair ((consumer : Sta.hop), (producer : Sta.hop)) =
    match
      ( D.comp_opt ctx.R.design consumer.Sta.comp,
        D.comp_opt ctx.R.design producer.Sta.comp )
    with
    | Some cc, Some pc -> (
        match D.connection ctx.R.design pc.D.id producer.Sta.out_pin with
        | Some onet when R.fanout ctx onet > 1 && not (R.net_is_port ctx onet)
          ->
            let clone = D.add_comp ~log ctx.R.design pc.D.kind in
            List.iter
              (fun (pin, nid) ->
                if pin <> producer.Sta.out_pin then
                  D.connect ~log ctx.R.design clone pin nid)
              (D.connections ctx.R.design pc.D.id);
            let newnet = D.new_net ~log ctx.R.design in
            D.connect ~log ctx.R.design clone producer.Sta.out_pin newnet;
            D.connect ~log ctx.R.design cc.D.id consumer.Sta.in_pin newnet;
            Some (Printf.sprintf "duplicate %s" pc.D.cname)
        | Some _ | None -> None)
    | _ -> None
  in
  let rec go = function
    | [] -> Not_applicable
    | p :: rest -> (
        match try_pair p with Some msg -> Applied msg | None -> go rest)
  in
  go (pairs hops)

(* --- Strategy 7: collapse to two levels, minimize, re-factor ---------- *)

let collapse_minimize ?(max_leaves = 10) ctx (_sta : Sta.t) (path : Sta.path)
    log =
  let endpoint_net =
    match path.Sta.path_endpoint with
    | Sta.Ep_port p -> Some (D.port_net ctx.R.design p)
    | Sta.Ep_seq_pin (cid, pin) -> D.connection ctx.R.design cid pin
  in
  match endpoint_net with
  | None -> Not_applicable
  | Some onet -> (
      match Milo_rules.Cone.extract ctx ~max_leaves onet with
      | None -> Not_applicable
      | Some cone when List.length cone.Milo_rules.Cone.comps < 3 -> Not_applicable
      | Some cone ->
          let nvars = List.length cone.Milo_rules.Cone.leaves in
          let on = Milo_rules.Cone.minterms ctx cone in
          let cover = Milo_minimize.Quine.minimize ~vars:nvars ~on ~dc:[] in
          let expr = Milo_minimize.Factor.of_cover cover in
          let ok =
            Milo_rules.Cone.replace ctx log cone ~build:(fun () ->
                Milo_compilers.Gate_comp.build_expr ~log ctx.R.design ctx.R.set
                  ~var_net:(fun v -> List.nth cone.Milo_rules.Cone.leaves v)
                  expr)
          in
          if ok then Applied "collapse+minimize" else Not_applicable)

(* --- Strategy 8: duplicate logic with a multiplexor ------------------- *)

let mux_duplicate ctx (sta : Sta.t) (path : Sta.path) log =
  let endpoint_net =
    match path.Sta.path_endpoint with
    | Sta.Ep_port p -> Some (D.port_net ctx.R.design p)
    | Sta.Ep_seq_pin (cid, pin) -> D.connection ctx.R.design cid pin
  in
  (* Candidate cone roots: the endpoint, then the hop outputs along the
     path (the endpoint cone of a wide circuit rarely fits 6 leaves). *)
  let hop_nets =
    List.filter_map
      (fun (h : Sta.hop) ->
        match D.comp_opt ctx.R.design h.Sta.comp with
        | Some _ -> D.connection ctx.R.design h.Sta.comp h.Sta.out_pin
        | None -> None)
      (path_hops path)
  in
  let roots =
    (match endpoint_net with Some n -> [ n ] | None -> []) @ hop_nets
  in
  let cone =
    List.find_map
      (fun onet ->
        match Milo_rules.Cone.extract ctx ~max_leaves:6 onet with
        | Some c
          when List.length c.Milo_rules.Cone.comps >= 2
               && List.length c.Milo_rules.Cone.leaves >= 2 ->
            Some c
        | Some _ | None -> None)
      roots
  in
  match cone with
  | None -> Not_applicable
  | Some cone -> (
      match Some cone with
      | None -> Not_applicable
      | Some cone -> (
          match Milo_rules.Cone.truth_table ctx cone with
          | None -> Not_applicable
          | Some tt -> (
              (* The late leaf becomes the mux select. *)
              let arrivals =
                List.mapi
                  (fun i nid ->
                    (i, Option.value ~default:0.0 (Sta.net_arrival sta nid)))
                  cone.Milo_rules.Cone.leaves
              in
              let late =
                List.fold_left
                  (fun acc (i, a) ->
                    match acc with
                    | Some (_, ba) when ba >= a -> acc
                    | _ -> Some (i, a))
                  None arrivals
              in
              match late with
              | None -> Not_applicable
              | Some (li, _) ->
                  let tt0 = Truth_table.cofactor tt li false in
                  let tt1 = Truth_table.cofactor tt li true in
                  let expr_of t =
                    Milo_minimize.Factor.of_cover
                      (Milo_minimize.Espresso.minimize_tt t)
                  in
                  let e0 = expr_of tt0 and e1 = expr_of tt1 in
                  let var_net v = List.nth cone.Milo_rules.Cone.leaves v in
                  let mux_name =
                    List.find_opt
                      (fun n -> Tech.mem ctx.R.tech n)
                      [ "MUX2"; "E_MUX2"; "C_MUX2" ]
                  in
                  (match mux_name with
                  | None -> Not_applicable
                  | Some mux_macro ->
                      let ok =
                        Milo_rules.Cone.replace ctx log cone ~build:(fun () ->
                            let n0 =
                              Milo_compilers.Gate_comp.build_expr ~log
                                ctx.R.design ctx.R.set ~var_net e0
                            in
                            let n1 =
                              Milo_compilers.Gate_comp.build_expr ~log
                                ctx.R.design ctx.R.set ~var_net e1
                            in
                            let mid =
                              D.add_comp ~log ctx.R.design (T.Macro mux_macro)
                            in
                            D.connect ~log ctx.R.design mid "D0" n0;
                            D.connect ~log ctx.R.design mid "D1" n1;
                            D.connect ~log ctx.R.design mid "S0" (var_net li);
                            let out = D.new_net ~log ctx.R.design in
                            D.connect ~log ctx.R.design mid "Y" out;
                            out)
                      in
                      if ok then Applied "mux-duplicate" else Not_applicable))))

(* --- The strategy table ------------------------------------------------ *)

type strategy = {
  id : int;
  strat_name : string;
  run : R.context -> Sta.t -> Sta.path -> D.log -> result;
}

let all =
  [
    { id = 1; strat_name = "swap-signals"; run = swap_signals };
    { id = 2; strat_name = "high-power"; run = high_power };
    { id = 3; strat_name = "factor"; run = factor_path };
    { id = 4; strat_name = "macro-select"; run = macro_select ~allow_cost:false };
    { id = 5; strat_name = "duplicate"; run = duplicate_logic };
    { id = 6; strat_name = "macro-select-cost"; run = macro_select ~allow_cost:true };
    { id = 7; strat_name = "collapse-minimize"; run = collapse_minimize ?max_leaves:None };
    { id = 8; strat_name = "mux-duplicate"; run = mux_duplicate };
  ]

let by_id id = List.find (fun s -> s.id = id) all

(* Strategy order as a function of slack (Section 4.1.3): small slack
   tries the free/cheap strategies; large deficits go to the heavy
   restructuring strategies after the free ones. *)
let order_for ~deficit ~required =
  let ratio = if required > 0.0 then deficit /. required else 1.0 in
  if ratio <= 0.08 then [ 1; 4; 2; 3; 5 ]
  else if ratio <= 0.25 then [ 4; 1; 6; 2; 3; 5 ]
  else [ 4; 6; 7; 8; 1; 2; 3; 5 ]
