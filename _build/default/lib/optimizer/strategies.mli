(** The eight timing strategies of Section 4 (Figure 9). *)

module D = Milo_netlist.Design
module R = Milo_rules.Rule
module Sta = Milo_timing.Sta

type result = Applied of string | Not_applicable

val swap_signals : R.context -> Sta.t -> Sta.path -> D.log -> result
val high_power : R.context -> Sta.t -> Sta.path -> D.log -> result
val factor_path : R.context -> Sta.t -> Sta.path -> D.log -> result

val macro_select :
  allow_cost:bool -> R.context -> Sta.t -> Sta.path -> D.log -> result
(** Strategies 4 (no cost) and 6 (with cost): hash-table lookup of a
    better macro for a small cone. *)

val duplicate_logic : R.context -> Sta.t -> Sta.path -> D.log -> result

val collapse_minimize :
  ?max_leaves:int -> R.context -> Sta.t -> Sta.path -> D.log -> result
(** Strategy 7: collapse the endpoint cone to two levels, minimize
    exactly, re-factor by weak division, rebuild. *)

val mux_duplicate : R.context -> Sta.t -> Sta.path -> D.log -> result
(** Strategy 8: duplicate the cone with the late input tied to 0/1 and
    select with a multiplexor. *)

type strategy = {
  id : int;
  strat_name : string;
  run : R.context -> Sta.t -> Sta.path -> D.log -> result;
}

val all : strategy list
val by_id : int -> strategy

val order_for : deficit:float -> required:float -> int list
(** Strategy order as a function of how far the path is from the
    constraint (Section 4.1.3). *)
