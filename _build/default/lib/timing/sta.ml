(* Static timing analysis over macro-level designs.

   Arrival model: arrival(out pin) = max over inputs (arrival(in net) +
   arc(in,out)) + drive × load(out net).  Sources are input ports and
   sequential macro CLK→Q launches; endpoints are output ports and
   sequential macro data/control pins.  Sequential components break
   combinational paths, as in the paper's timing analyzer (Figure 8). *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module M = Milo_library.Macro

type env = string -> M.t

type endpoint = Ep_port of string | Ep_seq_pin of int * string

type t = {
  design : D.t;
  env : env;
  net_arrival : (int, float) Hashtbl.t;
  net_from : (int, int * string * string) Hashtbl.t;
      (* net -> (comp, in_pin, out_pin) that determined its arrival *)
  endpoints : (endpoint * float) list;
  worst : float;
}

let macro_of env (c : D.comp) =
  match c.D.kind with
  | T.Macro m -> Some (env m)
  | T.Constant _ -> None
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Instance _ ->
      invalid_arg
        (Printf.sprintf
           "Sta: component %s (%s) is not technology-mapped; compile first"
           c.D.cname (T.kind_name c.D.kind))

let net_load t nid =
  let n = D.net t.design nid in
  let pin_load (cid, pin) =
    let c = D.comp t.design cid in
    match macro_of t.env c with
    | None -> 0.0
    | Some m ->
        if List.mem pin m.M.inputs then m.M.load else 0.0
  in
  let port_load = match n.D.nport with Some (_, T.Output) -> 1.0 | _ -> 0.0 in
  List.fold_left (fun acc p -> acc +. pin_load p) port_load n.D.npins

(* Input arrival offsets, e.g. late-arriving primary inputs. *)
let analyze ?(input_arrivals = []) env design =
  let t =
    {
      design;
      env;
      net_arrival = Hashtbl.create 64;
      net_from = Hashtbl.create 64;
      endpoints = [];
      worst = 0.0;
    }
  in
  let arr nid = Hashtbl.find_opt t.net_arrival nid in
  let set nid v from =
    Hashtbl.replace t.net_arrival nid v;
    match from with
    | Some f -> Hashtbl.replace t.net_from nid f
    | None -> Hashtbl.remove t.net_from nid
  in
  (* Seed: input ports and constants at their arrival, sequential
     launches at clk->q + drive*load. *)
  List.iter
    (fun (p, dir, nid) ->
      if dir = T.Input then
        set nid (Option.value ~default:0.0 (List.assoc_opt p input_arrivals)) None)
    (D.ports design);
  let comb = ref [] in
  List.iter
    (fun (c : D.comp) ->
      match macro_of env c with
      | None ->
          (* constants arrive at time 0 *)
          List.iter
            (fun (pin, nid) ->
              if pin = "Y" then set nid 0.0 None)
            (D.connections design c.D.id)
      | Some m ->
          if M.is_sequential m then
            List.iter
              (fun (pin, nid) ->
                if List.mem pin m.M.outputs then
                  let d =
                    match M.arc_delay_opt m "CLK" pin with
                    | Some d -> d
                    | None -> M.worst_delay m
                  in
                  set nid (d +. (m.M.drive *. net_load t nid)) None)
              (D.connections design c.D.id)
          else comb := c :: !comb)
    (D.comps design);
  (* Worklist: evaluate combinational macros whose inputs all have
     arrivals (undriven nets count as time 0). *)
  let resolve kind nm =
    match kind with
    | T.Macro _ -> (env nm).M.pins
    | T.Instance _ | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _
    | T.Logic_unit _ | T.Arith_unit _ | T.Register _ | T.Counter _
    | T.Constant _ ->
        T.pins_of_kind kind
  in
  let input_arrival nid =
    match arr nid with
    | Some v -> Some v
    | None ->
        if D.driver ~resolve design nid = D.Src_none then Some 0.0 else None
  in
  let pending = ref !comb in
  let progress = ref true in
  while !progress && !pending <> [] do
    progress := false;
    let still = ref [] in
    List.iter
      (fun (c : D.comp) ->
        let m = Option.get (macro_of env c) in
        let in_arrs =
          List.map
            (fun pin ->
              match D.connection design c.D.id pin with
              | Some nid -> (pin, input_arrival nid)
              | None -> (pin, Some 0.0))
            m.M.inputs
        in
        if List.for_all (fun (_, a) -> a <> None) in_arrs then begin
          progress := true;
          List.iter
            (fun out ->
              match D.connection design c.D.id out with
              | None -> ()
              | Some onid ->
                  let best =
                    List.fold_left
                      (fun acc (pin, a) ->
                        match (M.arc_delay_opt m pin out, a) with
                        | Some d, Some a -> (
                            let v = a +. d in
                            match acc with
                            | Some (bv, _) when bv >= v -> acc
                            | _ -> Some (v, pin))
                        | None, _ | _, None -> acc)
                      None in_arrs
                  in
                  let v, from =
                    match best with
                    | Some (v, pin) -> (v, Some (c.D.id, pin, out))
                    | None -> (0.0, None)
                  in
                  set onid (v +. (m.M.drive *. net_load t onid)) from)
            m.M.outputs
        end
        else still := c :: !still)
      !pending;
    pending := !still
  done;
  if !pending <> [] then
    invalid_arg
      (Printf.sprintf "Sta.analyze: combinational loop through %s"
         (String.concat ", "
            (List.map (fun (c : D.comp) -> c.D.cname) !pending)));
  (* Endpoints. *)
  let endpoints = ref [] in
  List.iter
    (fun (p, dir, nid) ->
      if dir = T.Output then
        endpoints :=
          (Ep_port p, Option.value ~default:0.0 (arr nid)) :: !endpoints)
    (D.ports design);
  List.iter
    (fun (c : D.comp) ->
      match macro_of env c with
      | Some m when M.is_sequential m ->
          List.iter
            (fun pin ->
              if pin <> "CLK" then
                match D.connection design c.D.id pin with
                | Some nid ->
                    endpoints :=
                      (Ep_seq_pin (c.D.id, pin), Option.value ~default:0.0 (arr nid))
                      :: !endpoints
                | None -> ())
            m.M.inputs
      | Some _ | None -> ())
    (D.comps design);
  let worst =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 !endpoints
  in
  { t with endpoints = !endpoints; worst }

let worst_delay t = t.worst
let endpoints t = List.sort (fun (_, a) (_, b) -> compare b a) t.endpoints
let net_arrival t nid = Hashtbl.find_opt t.net_arrival nid

type hop = { comp : int; in_pin : string; out_pin : string }

type path = {
  path_endpoint : endpoint;
  path_delay : float;
  hops : hop list;  (* from input side to endpoint *)
}

let endpoint_net t = function
  | Ep_port p -> Some (D.port_net t.design p)
  | Ep_seq_pin (cid, pin) -> D.connection t.design cid pin

(* Trace back the worst path into an endpoint. *)
let path_to t ep delay =
  let rec back nid acc =
    match Hashtbl.find_opt t.net_from nid with
    | None -> acc
    | Some (cid, in_pin, out_pin) -> (
        let hop = { comp = cid; in_pin; out_pin } in
        match D.connection t.design cid in_pin with
        | Some prev -> back prev (hop :: acc)
        | None -> hop :: acc)
  in
  let hops = match endpoint_net t ep with Some nid -> back nid [] | None -> [] in
  { path_endpoint = ep; path_delay = delay; hops }

let critical_path t =
  match endpoints t with
  | [] -> None
  | (ep, d) :: _ -> Some (path_to t ep d)

let critical_paths ?(count = 4) t =
  endpoints t
  |> List.filteri (fun i _ -> i < count)
  |> List.map (fun (ep, d) -> path_to t ep d)

(* Slack of each endpoint against a required time. *)
let slacks ~required t =
  List.map (fun (ep, d) -> (ep, required -. d)) (endpoints t)

let endpoint_name t = function
  | Ep_port p -> p
  | Ep_seq_pin (cid, pin) ->
      Printf.sprintf "%s.%s" (D.comp t.design cid).D.cname pin
