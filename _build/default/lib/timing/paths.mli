(** Critical-path set extraction and point-of-optimization selection
    (Section 4's two criteria: most-traversed component, then closest to
    an external input). *)

module D = Milo_netlist.Design

val critical_set : ?required:float -> Sta.t -> Sta.path list
val comps_of_path : Sta.path -> int list
val select_point : ?required:float -> Sta.t -> int option
val most_critical : ?required:float -> Sta.t -> Sta.path option
val path_comp_names : D.t -> Sta.path -> string list
