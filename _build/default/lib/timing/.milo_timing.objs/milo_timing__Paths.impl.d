lib/timing/paths.ml: Hashtbl List Milo_netlist Option Sta
