lib/timing/sta.mli: Milo_library Milo_netlist
