lib/timing/sta.ml: Float Hashtbl List Milo_library Milo_netlist Option Printf String
