lib/timing/paths.mli: Milo_netlist Sta
