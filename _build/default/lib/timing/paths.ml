(* Point-of-optimization selection (Section 4, Figure 8):

   criterion 1: the component the most critical paths pass through;
   criterion 2: among ties, the one closest to an external input. *)

module D = Milo_netlist.Design

(* Paths whose endpoint misses the constraint (or the single worst path
   when everything meets it). *)
let critical_set ?required sta =
  match required with
  | None -> (
      match Sta.critical_path sta with None -> [] | Some p -> [ p ])
  | Some req ->
      let late =
        List.filter (fun (_, d) -> d > req) (Sta.endpoints sta)
      in
      if late = [] then []
      else
        Sta.critical_paths ~count:(List.length late) sta
        |> List.filter (fun p -> p.Sta.path_delay > req)

(* Components on a path, input side first. *)
let comps_of_path (p : Sta.path) =
  List.map (fun h -> h.Sta.comp) p.Sta.hops

let select_point ?required sta =
  let paths = critical_set ?required sta in
  if paths = [] then None
  else begin
    let counts = Hashtbl.create 16 in
    let position = Hashtbl.create 16 in
    List.iter
      (fun p ->
        List.iteri
          (fun i cid ->
            Hashtbl.replace counts cid
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts cid));
            (* remember the earliest (closest-to-input) position seen *)
            let prev = Option.value ~default:max_int (Hashtbl.find_opt position cid) in
            Hashtbl.replace position cid (min prev i))
          (comps_of_path p))
      paths;
    let best =
      Hashtbl.fold
        (fun cid n acc ->
          let pos = Hashtbl.find position cid in
          match acc with
          | Some (bn, bpos, _) when (bn, -bpos) >= (n, -pos) -> acc
          | _ -> Some (n, pos, cid))
        counts None
    in
    Option.map (fun (_, _, cid) -> cid) best
  end

(* The most critical path: the one whose delay is furthest beyond the
   requirement (or just the worst). *)
let most_critical ?required sta =
  match critical_set ?required sta with
  | [] -> None
  | p :: rest ->
      Some
        (List.fold_left
           (fun best q ->
             if q.Sta.path_delay > best.Sta.path_delay then q else best)
           p rest)

let path_comp_names design (p : Sta.path) =
  List.map (fun h -> (D.comp design h.Sta.comp).D.cname) p.Sta.hops
