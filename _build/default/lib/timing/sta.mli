(** Static timing analysis over technology-mapped (macro-level) designs.

    Arrival(out) = max over inputs (arrival(in) + arc delay) + drive ×
    output load.  Sources: input ports (optionally offset) and
    sequential CLK→Q launches.  Endpoints: output ports and sequential
    data/control pins. *)

module D = Milo_netlist.Design

type env = string -> Milo_library.Macro.t

type endpoint = Ep_port of string | Ep_seq_pin of int * string

type t

val net_load : t -> int -> float
val analyze : ?input_arrivals:(string * float) list -> env -> D.t -> t
(** Raises [Invalid_argument] on unmapped components or combinational
    loops. *)

val worst_delay : t -> float
val endpoints : t -> (endpoint * float) list
(** Sorted by arrival, latest first. *)

val net_arrival : t -> int -> float option

type hop = { comp : int; in_pin : string; out_pin : string }

type path = {
  path_endpoint : endpoint;
  path_delay : float;
  hops : hop list;  (** input side first *)
}

val critical_path : t -> path option
val critical_paths : ?count:int -> t -> path list
val slacks : required:float -> t -> (endpoint * float) list
val endpoint_name : t -> endpoint -> string
