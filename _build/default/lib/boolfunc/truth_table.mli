(** Truth tables of up to 6 variables packed into an int64.

    Functions of up to five variables key into a 32-bit word ({!key32}),
    exactly the hash-table representation the paper's strategies 4 and 6
    use for macro selection; {!canonical} collapses input-permutation
    variants (Figure 10). *)

type t

val max_vars : int
val create : int -> int64 -> t
val vars : t -> int
val bits : t -> int64
val of_fun : int -> (bool array -> bool) -> t
val eval : t -> bool array -> bool
val eval_index : t -> int -> bool
(** Evaluate on the minterm index (bit [i] of the index = variable [i]). *)

val const : int -> bool -> t
val var : int -> int -> t
(** [var vars i] is the projection on variable [i]. *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val is_const : t -> bool option
val cofactor : t -> int -> bool -> t
val depends_on : t -> int -> bool
val support : t -> int list

val key32 : t -> int
(** 32-bit key (≤ 5 variables; raises otherwise).  Smaller functions are
    replicated so the key is arity-insensitive. *)

val permutations : 'a list -> 'a list list
(** All permutations of a small list. *)

val permute : t -> int list -> t
val canonical : t -> t
(** Minimal table over all input permutations (identity for > 5 vars). *)

val canonical_key : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
