(** Cubes (product terms) over up to 62 variables. *)

type t

val universe : int -> t
(** The cube with no literals (constant true) over [n] variables. *)

val n : t -> int
val of_literals : int -> (int * bool) list -> t
val literals : t -> (int * bool) list
val literal_count : t -> int
val is_empty : t -> bool
val eval : t -> bool array -> bool
val eval_index : t -> int -> bool
val intersect : t -> t -> t option
val contains : t -> t -> bool
(** [contains a b]: every minterm of [b] is in [a]. *)

val cofactor : t -> int -> bool -> t option
val has_var : t -> int -> bool
val polarity : t -> int -> bool option
val remove_var : t -> int -> t
val merge_distance : t -> t -> int
val consensus_merge : t -> t -> t option
(** Quine–McCluskey adjacency merge when the cubes differ in exactly one
    variable's polarity. *)

val of_minterm : int -> int -> t
val minterms : t -> int list
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : (int -> string) -> t -> string
