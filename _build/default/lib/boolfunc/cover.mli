(** Sum-of-products covers (cube lists) over a common variable set,
    with the tautology / containment / complement operations the
    two-level minimizer needs. *)

type t

val create : int -> Cube.t list -> t
val n : t -> int
val cubes : t -> Cube.t list
val is_empty : t -> bool
val size : t -> int
val literal_count : t -> int
val eval : t -> bool array -> bool
val eval_index : t -> int -> bool
val of_truth_table : Truth_table.t -> t
val to_truth_table : t -> Truth_table.t
val of_minterms : int -> int list -> t
val minterms : t -> int list
val cofactor : t -> int -> bool -> t
val is_tautology : t -> bool
val covers_cube : t -> Cube.t -> bool
val covers : t -> t -> bool
val equivalent : t -> t -> bool
val single_cube_containment : t -> t
val union : t -> t -> t
val complement : t -> t
val to_string : (int -> string) -> t -> string
