(* Sum-of-products covers: lists of cubes over a common variable set. *)

type t = { n : int; cubes : Cube.t list }

let create n cubes =
  List.iter
    (fun c ->
      if Cube.n c <> n then invalid_arg "Cover.create: cube size mismatch")
    cubes;
  { n; cubes = List.filter (fun c -> not (Cube.is_empty c)) cubes }

let n t = t.n
let cubes t = t.cubes
let is_empty t = t.cubes = []
let size t = List.length t.cubes

let literal_count t =
  List.fold_left (fun acc c -> acc + Cube.literal_count c) 0 t.cubes

let eval t input = List.exists (fun c -> Cube.eval c input) t.cubes
let eval_index t m = List.exists (fun c -> Cube.eval_index c m) t.cubes

let of_truth_table tt =
  let nv = Truth_table.vars tt in
  let cubes = ref [] in
  for m = 0 to (1 lsl nv) - 1 do
    if Truth_table.eval_index tt m then cubes := Cube.of_minterm nv m :: !cubes
  done;
  { n = nv; cubes = !cubes }

let to_truth_table t =
  if t.n > Truth_table.max_vars then
    invalid_arg "Cover.to_truth_table: too many variables";
  Truth_table.of_fun t.n (eval t)

let of_minterms n ms = { n; cubes = List.map (Cube.of_minterm n) ms }

let minterms t =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun c -> List.iter (fun m -> Hashtbl.replace seen m ()) (Cube.minterms c))
    t.cubes;
  Hashtbl.fold (fun m () acc -> m :: acc) seen [] |> List.sort compare

let cofactor t v value =
  { t with cubes = List.filter_map (fun c -> Cube.cofactor c v value) t.cubes }

(* Tautology by Shannon expansion on the most-bound variable. *)
let rec is_tautology t =
  if List.exists (fun c -> Cube.literal_count c = 0) t.cubes then true
  else if t.cubes = [] then false
  else
    let bound =
      List.find_opt
        (fun v -> List.exists (fun c -> Cube.has_var c v) t.cubes)
        (List.init t.n (fun i -> i))
    in
    match bound with
    | None -> t.cubes <> []
    | Some v -> is_tautology (cofactor t v false) && is_tautology (cofactor t v true)

let covers_cube t c =
  (* t covers c iff the cofactor of t with respect to c is a tautology. *)
  let reduced =
    List.fold_left
      (fun acc (v, p) ->
        match acc with
        | None -> None
        | Some cov ->
            Some (cofactor cov v p))
      (Some t) (Cube.literals c)
  in
  match reduced with None -> false | Some cov -> is_tautology cov

let covers a b = List.for_all (covers_cube a) b.cubes

let equivalent a b = covers a b && covers b a

let single_cube_containment t =
  (* Remove cubes contained in another single cube. *)
  let keep c =
    not
      (List.exists
         (fun c' -> (not (Cube.equal c c')) && Cube.contains c' c)
         t.cubes)
  in
  let rec dedup = function
    | [] -> []
    | c :: rest -> c :: dedup (List.filter (fun c' -> not (Cube.equal c c')) rest)
  in
  { t with cubes = dedup (List.filter keep t.cubes) }

let union a b =
  if a.n <> b.n then invalid_arg "Cover.union: size mismatch";
  { n = a.n; cubes = a.cubes @ b.cubes }

let complement t =
  (* Complement by recursive Shannon expansion (exact; fine for the cone
     sizes strategy 7 collapses). *)
  let rec go cov =
    if is_tautology cov then { n = cov.n; cubes = [] }
    else if cov.cubes = [] then { n = cov.n; cubes = [ Cube.universe cov.n ] }
    else
      let v =
        List.find
          (fun v -> List.exists (fun c -> Cube.has_var c v) cov.cubes)
          (List.init cov.n (fun i -> i))
      in
      let f0 = go (cofactor cov v false) in
      let f1 = go (cofactor cov v true) in
      let lit0 = Cube.of_literals cov.n [ (v, false) ] in
      let lit1 = Cube.of_literals cov.n [ (v, true) ] in
      let attach lit c =
        match Cube.intersect lit c with Some x -> [ x ] | None -> []
      in
      {
        n = cov.n;
        cubes =
          List.concat_map (attach lit0) f0.cubes
          @ List.concat_map (attach lit1) f1.cubes;
      }
  in
  single_cube_containment (go t)

let to_string names t =
  if t.cubes = [] then "0"
  else String.concat " + " (List.map (Cube.to_string names) t.cubes)
