(* Truth tables for functions of up to 6 variables, packed into an int64.

   The paper's strategy-4/6 hash table keys functions of up to five
   variables into "a maximum of 32 bits -- a common computer word";
   [key32] reproduces exactly that.  Canonization under input permutation
   collapses the pin-ordering variants of Figure 10 into one entry. *)

type t = { vars : int; bits : int64 }

let max_vars = 6

let mask vars =
  if vars >= max_vars then -1L
  else Int64.sub (Int64.shift_left 1L (1 lsl vars)) 1L

let create vars bits =
  if vars < 0 || vars > max_vars then
    invalid_arg "Truth_table.create: vars out of range";
  { vars; bits = Int64.logand bits (mask vars) }

let vars t = t.vars
let bits t = t.bits

let of_fun vars f =
  if vars < 0 || vars > max_vars then
    invalid_arg "Truth_table.of_fun: vars out of range";
  let b = ref 0L in
  for m = 0 to (1 lsl vars) - 1 do
    let input = Array.init vars (fun i -> m land (1 lsl i) <> 0) in
    if f input then b := Int64.logor !b (Int64.shift_left 1L m)
  done;
  { vars; bits = !b }

let eval t input =
  let m = ref 0 in
  Array.iteri (fun i b -> if b then m := !m lor (1 lsl i)) input;
  Int64.logand (Int64.shift_right_logical t.bits !m) 1L = 1L

let eval_index t m =
  Int64.logand (Int64.shift_right_logical t.bits m) 1L = 1L

let const vars b = { vars; bits = (if b then mask vars else 0L) }

let var vars i =
  if i < 0 || i >= vars then invalid_arg "Truth_table.var: index out of range";
  of_fun vars (fun a -> a.(i))

let lognot t = { t with bits = Int64.logand (Int64.lognot t.bits) (mask t.vars) }

let binop op a b =
  if a.vars <> b.vars then invalid_arg "Truth_table: var count mismatch";
  { vars = a.vars; bits = Int64.logand (op a.bits b.bits) (mask a.vars) }

let logand = binop Int64.logand
let logor = binop Int64.logor
let logxor = binop Int64.logxor

let equal a b = a.vars = b.vars && Int64.equal a.bits b.bits
let compare a b = Stdlib.compare (a.vars, a.bits) (b.vars, b.bits)

let is_const t =
  if Int64.equal t.bits 0L then Some false
  else if Int64.equal t.bits (mask t.vars) then Some true
  else None

let cofactor t i value =
  of_fun t.vars (fun a ->
      let a = Array.copy a in
      a.(i) <- value;
      eval t a)

let depends_on t i = not (equal (cofactor t i false) (cofactor t i true))

let support t = List.filter (depends_on t) (List.init t.vars (fun i -> i))

let key32 t =
  if t.vars > 5 then invalid_arg "Truth_table.key32: more than 5 variables";
  (* Replicate the pattern so that the key of an n-var function equals the
     key of the same function seen with unused high variables: a constant
     extension, making lookups arity-insensitive. *)
  let block = 1 lsl t.vars in
  let b = ref 0L in
  let reps = 32 / block in
  for r = 0 to reps - 1 do
    b := Int64.logor !b (Int64.shift_left t.bits (r * block))
  done;
  Int64.to_int (Int64.logand !b 0xFFFFFFFFL)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs

let permute t perm =
  (* perm.(i) = which original variable feeds new position i *)
  of_fun t.vars (fun a ->
      let orig = Array.make t.vars false in
      List.iteri (fun i v -> orig.(v) <- a.(i)) perm;
      eval t orig)

let canonical t =
  if t.vars > 5 then t
  else
    let perms = permutations (List.init t.vars (fun i -> i)) in
    List.fold_left
      (fun best p ->
        let cand = permute t p in
        if compare cand best < 0 then cand else best)
      t perms

let canonical_key t = key32 (canonical t)

let pp ppf t =
  Format.fprintf ppf "tt%d:%Lx" t.vars t.bits

let to_string t = Format.asprintf "%a" pp t
