lib/boolfunc/cover.ml: Cube Hashtbl List String Truth_table
