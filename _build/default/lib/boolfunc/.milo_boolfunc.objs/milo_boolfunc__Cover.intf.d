lib/boolfunc/cover.mli: Cube Truth_table
