lib/boolfunc/cube.mli:
