lib/boolfunc/cube.ml: Array List Stdlib String
