lib/boolfunc/truth_table.ml: Array Format Int64 List Stdlib
