lib/boolfunc/truth_table.mli: Format
