(* Cubes (product terms) over up to 62 variables.

   A variable appears as a positive literal, a negative literal, or not
   at all; the two bitmasks record which.  This is the product-term
   representation used by the two-level minimizer and algebraic
   division. *)

type t = { n : int; pos : int; neg : int }

let universe n =
  if n < 0 || n > 62 then invalid_arg "Cube.universe: n out of range";
  { n; pos = 0; neg = 0 }

let n t = t.n

let of_literals n lits =
  List.fold_left
    (fun c (v, polarity) ->
      if v < 0 || v >= n then invalid_arg "Cube.of_literals: var out of range";
      if polarity then { c with pos = c.pos lor (1 lsl v) }
      else { c with neg = c.neg lor (1 lsl v) })
    (universe n) lits

let literals t =
  List.concat_map
    (fun v ->
      (if t.pos land (1 lsl v) <> 0 then [ (v, true) ] else [])
      @ if t.neg land (1 lsl v) <> 0 then [ (v, false) ] else [])
    (List.init t.n (fun i -> i))

let literal_count t =
  let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
  popcount t.pos + popcount t.neg

let is_empty t = t.pos land t.neg <> 0

let eval t input =
  let ok = ref true in
  for v = 0 to t.n - 1 do
    let bit = 1 lsl v in
    if t.pos land bit <> 0 && not input.(v) then ok := false;
    if t.neg land bit <> 0 && input.(v) then ok := false
  done;
  !ok

(* Positive literals must be 1 in the minterm index, negative ones 0. *)
let eval_index t m = t.pos land m = t.pos && t.neg land m = 0

let intersect a b =
  if a.n <> b.n then invalid_arg "Cube.intersect: size mismatch";
  let c = { n = a.n; pos = a.pos lor b.pos; neg = a.neg lor b.neg } in
  if is_empty c then None else Some c

let contains a b =
  (* a contains b: every assignment in b satisfies a, i.e. a's literals
     are a subset of b's. *)
  a.n = b.n && a.pos land b.pos = a.pos && a.neg land b.neg = a.neg

let cofactor t v value =
  let bit = 1 lsl v in
  let conflicting = if value then t.neg else t.pos in
  if conflicting land bit <> 0 then None
  else Some { t with pos = t.pos land lnot bit; neg = t.neg land lnot bit }

let has_var t v =
  let bit = 1 lsl v in
  t.pos land bit <> 0 || t.neg land bit <> 0

let polarity t v =
  let bit = 1 lsl v in
  if t.pos land bit <> 0 then Some true
  else if t.neg land bit <> 0 then Some false
  else None

let remove_var t v =
  let bit = 1 lsl v in
  { t with pos = t.pos land lnot bit; neg = t.neg land lnot bit }

let merge_distance a b =
  (* Number of variables where a and b take opposite polarities; used by
     Quine-McCluskey adjacency merging. *)
  let opp = (a.pos land b.neg) lor (a.neg land b.pos) in
  let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
  popcount opp

let consensus_merge a b =
  (* If a and b differ in exactly one variable's polarity and agree on all
     other literals, merge into the cube dropping that variable. *)
  if a.n <> b.n then None
  else
    let opp = (a.pos land b.neg) lor (a.neg land b.pos) in
    let single x = x <> 0 && x land (x - 1) = 0 in
    if
      single opp
      && a.pos land lnot (opp lor b.pos) = 0
      && b.pos land lnot (opp lor a.pos) = 0
      && a.neg land lnot (opp lor b.neg) = 0
      && b.neg land lnot (opp lor a.neg) = 0
    then
      Some
        { n = a.n; pos = a.pos land lnot opp; neg = a.neg land lnot opp }
    else None

let of_minterm n m =
  let pos = ref 0 and neg = ref 0 in
  for v = 0 to n - 1 do
    if m land (1 lsl v) <> 0 then pos := !pos lor (1 lsl v)
    else neg := !neg lor (1 lsl v)
  done;
  { n; pos = !pos; neg = !neg }

let minterms t =
  (* All minterm indices covered by the cube (exponential in free vars). *)
  let free =
    List.filter (fun v -> not (has_var t v)) (List.init t.n (fun i -> i))
  in
  let base = t.pos in
  let rec go acc vs m =
    match vs with
    | [] -> m :: acc
    | v :: rest -> go (go acc rest m) rest (m lor (1 lsl v))
  in
  go [] free base

let equal a b = a.n = b.n && a.pos = b.pos && a.neg = b.neg
let compare = Stdlib.compare

let to_string names t =
  if t.pos = 0 && t.neg = 0 then "1"
  else
    String.concat ""
      (List.map
         (fun (v, p) -> if p then names v else names v ^ "'")
         (literals t))
