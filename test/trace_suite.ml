(* Telemetry suite — tier-1 gate for lib/trace.

   - a traced complete flow yields a balanced span tree: one flow root,
     a span per stage, every span closed and nested inside its parent's
     interval;
   - the event log is consistent: sequence numbers strictly increase,
     micro-stage rule-applied events reproduce the critic's application
     list in order, and the per-rule attribution table agrees with the
     event counts;
   - the Chrome trace_event export round-trips through a from-scratch
     JSON parser with one "X" slice per span;
   - a fault injected mid-flow still flushes: the partial outcome's
     tracer has no open spans and the streamed JSONL file is valid
     line-by-line (the crash-safe-prefix contract). *)

module D = Milo_netlist.Design
module Flow = Milo.Flow
module Trace = Milo_trace.Trace
module Export = Milo_trace.Export
module Suite = Milo_designs.Suite
module Faults = Milo_faults

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

let ok fmt = Printf.ksprintf (fun s -> Printf.printf "ok   %s\n" s) fmt

(* --- Minimal JSON parser ----------------------------------------------- *)

(* Just enough recursive descent to validate the exporters' output
   without a JSON dependency.  \u escapes outside ASCII are read
   lossily ('?'), which is fine for structural round-trip checks. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let bad msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else bad (Printf.sprintf "expected '%c'" c)
    in
    let lit w v =
      let k = String.length w in
      if !pos + k <= n && String.sub s !pos k = w then begin
        pos := !pos + k;
        v
      end
      else bad ("expected " ^ w)
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then bad "unterminated string";
        let c = s.[!pos] in
        incr pos;
        if c = '"' then ()
        else if c = '\\' then begin
          (if !pos >= n then bad "truncated escape");
          let e = s.[!pos] in
          incr pos;
          (match e with
          | '"' | '\\' | '/' -> Buffer.add_char b e
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 > n then bad "truncated \\u escape";
              (match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
              | Some c when c < 128 -> Buffer.add_char b (Char.chr c)
              | Some _ -> Buffer.add_char b '?'
              | None -> bad "bad \\u escape");
              pos := !pos + 4
          | _ -> bad "bad escape");
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> bad "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (string_lit ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> bad "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else
            let rec elems acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  Arr (List.rev (v :: acc))
              | _ -> bad "expected ',' or ']'"
            in
            elems []
      | Some _ -> number ()
      | None -> bad "empty input"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then bad "trailing garbage";
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end

(* --- A traced complete run --------------------------------------------- *)

(* The Figure 14 accumulator: small, and the micro critic fires on it
   (adder-register-to-counter), so the event-ordering check below has a
   non-empty application list to reproduce. *)
let run_traced () =
  Milo_rules.Engine.quarantine_reset ();
  let t = Trace.create () in
  match
    Flow.run ~technology:Flow.Ecl ~trace:t (Suite.accumulator ~bits:4 ())
  with
  | Flow.Complete res -> (t, res)
  | Flow.Partial p ->
      fail "traced accumulator flow degraded at %s: %s"
        (Flow.stage_name p.Flow.failed_stage)
        p.Flow.failure.Flow.err_message;
      Printf.printf "%d failure(s)\n" !failures;
      exit 1

(* --- 1. span nesting and balance --------------------------------------- *)

let check_spans t (res : Flow.result) =
  let spans = Trace.spans t in
  let what = "spans" in
  if spans = [] then fail "%s: traced flow produced no spans" what;
  List.iter
    (fun (s : Trace.span) ->
      if not (Trace.span_closed s) then
        fail "%s: span %s (id %d) left open after flush" what s.Trace.name
          s.Trace.id)
    spans;
  let by_id = Hashtbl.create 64 in
  List.iter (fun (s : Trace.span) -> Hashtbl.replace by_id s.Trace.id s) spans;
  let eps = 1e-9 in
  List.iter
    (fun (s : Trace.span) ->
      match s.Trace.parent with
      | None -> ()
      | Some pid -> (
          match Hashtbl.find_opt by_id pid with
          | None -> fail "%s: span %s has unknown parent %d" what s.Trace.name pid
          | Some p ->
              if s.Trace.start < p.Trace.start -. eps then
                fail "%s: span %s starts before its parent %s" what s.Trace.name
                  p.Trace.name;
              if s.Trace.stop > p.Trace.stop +. eps then
                fail "%s: span %s ends after its parent %s" what s.Trace.name
                  p.Trace.name))
    spans;
  (match List.filter (fun (s : Trace.span) -> s.Trace.parent = None) spans with
  | [ root ] ->
      let name = D.name res.Flow.optimized in
      ignore name;
      if not (String.length root.Trace.name > 5
              && String.sub root.Trace.name 0 5 = "flow:")
      then fail "%s: root span named %S, expected flow:<design>" what
        root.Trace.name
  | roots -> fail "%s: %d root spans, expected exactly 1" what (List.length roots));
  List.iter
    (fun stage ->
      let name = "stage:" ^ stage in
      if not (List.exists (fun (s : Trace.span) -> s.Trace.name = name) spans)
      then fail "%s: missing %s span" what name)
    [ "capture"; "micro"; "compile"; "techmap"; "optimize" ];
  if !failures = 0 then
    ok "%d spans: balanced, nested, one flow root, all 5 stages present"
      (List.length spans)

(* --- 2. event-log consistency ------------------------------------------ *)

let check_events t (res : Flow.result) =
  let events = Trace.events t in
  let what = "events" in
  if List.length events <> Trace.event_count t then
    fail "%s: ring dropped events on a small design (%d kept, %d emitted)"
      what (List.length events) (Trace.event_count t);
  ignore
    (List.fold_left
       (fun prev (e : Trace.event) ->
         if e.Trace.seq <= prev then
           fail "%s: seq not strictly increasing (%d after %d)" what
             e.Trace.seq prev;
         e.Trace.seq)
       (-1) events);
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.stage = "" then
        fail "%s: event %s has an empty stage" what
          (Trace.kind_label e.Trace.kind))
    events;
  (* the micro critic's applications, replayed from the event log, must
     match the flow result's own record, in order *)
  let micro_applied =
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Rule_applied { rule; _ } when e.Trace.stage = "micro" ->
            Some rule
        | _ -> None)
      events
  in
  let recorded = List.map fst res.Flow.micro_applications in
  if recorded = [] then
    fail "%s: accumulator flow applied no micro rules — ordering check vacuous"
      what;
  if micro_applied <> recorded then
    fail "%s: micro rule-applied events [%s] <> recorded applications [%s]"
      what
      (String.concat "; " micro_applied)
      (String.concat "; " recorded);
  (* attribution table vs event log *)
  let applied_events =
    List.length
      (List.filter
         (fun (e : Trace.event) ->
           match e.Trace.kind with Trace.Rule_applied _ -> true | _ -> false)
         events)
  in
  let applies_in_stats =
    List.fold_left
      (fun acc (_, (s : Trace.rule_stat)) -> acc + s.Trace.applies)
      0 (Trace.rule_stats t)
  in
  if applied_events <> applies_in_stats then
    fail "%s: %d rule-applied events but attribution table books %d applies"
      what applied_events applies_in_stats;
  if !failures = 0 then
    ok "%d events: monotone seq, micro log matches %d applications, \
        attribution agrees"
      (List.length events) (List.length recorded)

(* --- 3. Chrome export round-trip --------------------------------------- *)

let check_chrome t =
  let what = "chrome" in
  let doc =
    try Json.parse (Export.chrome_to_string t)
    with Json.Bad msg ->
      fail "%s: export does not parse: %s" what msg;
      Json.Null
  in
  match Json.member "traceEvents" doc with
  | Some (Json.Arr evs) ->
      if evs = [] then fail "%s: empty traceEvents" what;
      let slices = ref 0 in
      List.iter
        (fun ev ->
          (match Json.member "name" ev with
          | Some (Json.Str _) -> ()
          | _ -> fail "%s: trace event without a string name" what);
          (match Json.member "ts" ev with
          | Some (Json.Num ts) when ts >= 0.0 -> ()
          | _ -> fail "%s: trace event without a numeric ts" what);
          match Json.member "ph" ev with
          | Some (Json.Str "X") -> (
              incr slices;
              match Json.member "dur" ev with
              | Some (Json.Num d) when d >= 0.0 -> ()
              | _ -> fail "%s: X slice without a numeric dur" what)
          | Some (Json.Str _) -> ()
          | _ -> fail "%s: trace event without a ph" what)
        evs;
      let n_spans = List.length (Trace.spans t) in
      if !slices <> n_spans then
        fail "%s: %d X slices for %d spans" what !slices n_spans;
      if !failures = 0 then
        ok "chrome export: %d trace events parse, %d slices = %d spans"
          (List.length evs) !slices n_spans
  | _ -> fail "%s: no traceEvents array at top level" what

(* --- 4. fault-injected partial run still flushes ----------------------- *)

let check_faulted () =
  let what = "faulted" in
  Milo_rules.Engine.quarantine_reset ();
  let c = Suite.design3 () in
  let t = Trace.create () in
  let path = Filename.temp_file "milo_trace_suite" ".jsonl" in
  let oc = open_out path in
  Trace.add_sink t (Export.jsonl_sink oc);
  let hooks = Faults.failing_hooks ~at:Flow.Techmap () in
  (match
     Flow.run ~technology:Flow.Ecl ~constraints:c.Suite.constraints ~hooks
       ~trace:t c.Suite.case_design
   with
  | Flow.Complete _ -> fail "%s: expected Partial, flow completed" what
  | Flow.Partial p -> (
      if p.Flow.failed_stage <> Flow.Techmap then
        fail "%s: failed at %s, expected techmap" what
          (Flow.stage_name p.Flow.failed_stage);
      match p.Flow.partial_trace with
      | None -> fail "%s: partial outcome lost the tracer" what
      | Some t' ->
          List.iter
            (fun (s : Trace.span) ->
              if not (Trace.span_closed s) then
                fail "%s: span %s still open after a faulted run" what
                  s.Trace.name)
            (Trace.spans t')));
  close_out oc;
  let ic = open_in path in
  let lines = ref 0 and spans = ref 0 and events = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       (try
          let v = Json.parse line in
          match Json.member "t" v with
          | Some (Json.Str "span") -> incr spans
          | Some (Json.Str "event") -> incr events
          | Some (Json.Str _) -> ()
          | _ -> fail "%s: jsonl line %d has no \"t\" tag" what !lines
        with Json.Bad msg ->
          fail "%s: jsonl line %d does not parse: %s" what !lines msg)
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  if !lines = 0 then fail "%s: jsonl sink wrote nothing" what;
  if !spans = 0 then fail "%s: jsonl stream has no span lines" what;
  if !events = 0 then fail "%s: jsonl stream has no event lines" what;
  if !failures = 0 then
    ok "faulted run: partial trace balanced, %d jsonl lines all parse \
        (%d spans, %d events)"
      !lines !spans !events

(* --- Metrics registry edges --------------------------------------------- *)

(* The log2 histogram's documented bucket map at its boundary inputs:
   0.0 lands in bucket 0 (sub-1.0), 1.0 is the first value of bucket 1
   ([2^0, 2^1)), exact powers of two start their bucket, and a value
   beyond the last bucket's range is absorbed by the last bucket rather
   than dropped. *)
let check_metrics_edges () =
  let module M = Milo_trace.Metrics in
  let bucket_of h =
    let b = ref (-1) in
    Array.iteri (fun i n -> if n > 0 then b := i) h.M.buckets;
    !b
  in
  let one v =
    let m = M.create () in
    M.observe m "h" v;
    match List.assoc_opt "h" (M.histograms m) with
    | Some h ->
        if h.M.count <> 1 then fail "metrics: observe(%g) count %d" v h.M.count;
        bucket_of h
    | None ->
        fail "metrics: observe(%g) registered no histogram" v;
        -1
  in
  if one 0.0 <> 0 then fail "metrics: 0.0 not in bucket 0";
  if one 0.999 <> 0 then fail "metrics: 0.999 not in bucket 0";
  if one 1.0 <> 1 then fail "metrics: 1.0 not in bucket 1";
  if one 2.0 <> 2 then fail "metrics: 2.0 not in bucket 2";
  if one 3.9 <> 2 then fail "metrics: 3.9 not in bucket 2";
  let last = M.bucket_count - 1 in
  if one (float_of_int max_int) <> last then
    fail "metrics: max_int not absorbed by last bucket %d" last;
  if one infinity <> last then
    fail "metrics: infinity not absorbed by last bucket";
  (* Every bucket's lower bound must be consistent with where a value
     equal to that bound actually lands. *)
  for i = 1 to last do
    let lo = M.bucket_lo i in
    let b = one lo in
    if b <> i then fail "metrics: bucket_lo %d = %g lands in bucket %d" i lo b
  done;
  (* Gauges keep only the latest value; observations never merge. *)
  let m = M.create () in
  M.set_gauge m "g" 1.5;
  M.set_gauge m "g" (-2.5);
  (match M.gauges m with
  | [ ("g", v) ] ->
      if v <> -2.5 then fail "metrics: gauge kept %g, expected -2.5" v
  | l -> fail "metrics: expected 1 gauge, got %d" (List.length l));
  (* Counters accumulate, and a fresh name reads 0 without side effects. *)
  M.incr m "c" 2;
  M.incr m "c" 3;
  if M.counter m "c" <> 5 then fail "metrics: counter sum %d" (M.counter m "c");
  if M.counter m "absent" <> 0 then fail "metrics: absent counter non-zero";
  if List.mem_assoc "absent" (M.counters m) then
    fail "metrics: reading a counter created it";
  if !failures = 0 then ok "metrics registry edges (buckets, gauge, counter)"

(* --- Profile span-tree golden ------------------------------------------- *)

(* A hand-built trace with a known span nesting must produce exactly
   that tree from [Profile.tree], with self times summing to totals,
   and [Profile.render] must list the spans in tree order. *)
let check_profile_tree () =
  let module Profile = Milo_trace.Profile in
  let t = Trace.create () in
  Trace.set_current (Some t);
  Trace.open_span "root";
  Trace.open_span "child-a";
  Trace.open_span "leaf";
  Trace.close_span "leaf";
  Trace.close_span "child-a";
  Trace.open_span "child-b";
  Trace.close_span "child-b";
  Trace.close_span "root";
  Trace.set_current None;
  let shape n =
    let open Profile in
    let rec go n =
      n.span.Trace.name
      ^
      match n.children with
      | [] -> ""
      | cs -> "(" ^ String.concat " " (List.map go cs) ^ ")"
    in
    go n
  in
  (match Profile.tree t with
  | [ root ] ->
      let s = shape root in
      if s <> "root(child-a(leaf) child-b)" then
        fail "profile: tree shape %s" s;
      (* Self-times partition the totals: each node's self is its total
         minus its direct children's, and nothing is negative. *)
      let rec walk (n : Profile.node) =
        let child_total =
          List.fold_left (fun a c -> a +. c.Profile.total) 0.0 n.children
        in
        if n.Profile.self < 0.0 then
          fail "profile: negative self time on %s" n.span.Trace.name;
        if abs_float (n.Profile.self -. (n.Profile.total -. child_total)) > 1e-9
        then fail "profile: self/total mismatch on %s" n.span.Trace.name;
        List.iter walk n.children
      in
      walk root
  | l -> fail "profile: expected 1 root, got %d" (List.length l));
  let rendered = Profile.render t in
  let order = [ "root"; "child-a"; "leaf"; "child-b" ] in
  let rec in_order pos = function
    | [] -> ()
    | name :: rest -> (
        match
          let n = String.length rendered and m = String.length name in
          let rec find i =
            if i + m > n then None
            else if String.sub rendered i m = name then Some i
            else find (i + 1)
          in
          find pos
        with
        | Some i -> in_order (i + String.length name) rest
        | None -> fail "profile: render misses span %S (in order)" name)
  in
  in_order 0 order;
  if !failures = 0 then ok "profile span tree golden (shape, self times, render)"

let () =
  let t, res = run_traced () in
  check_spans t res;
  check_events t res;
  check_chrome t;
  check_faulted ();
  check_metrics_edges ();
  check_profile_tree ();
  if !failures > 0 then begin
    Printf.printf "%d failure(s)\n" !failures;
    exit 1
  end;
  Printf.printf "trace suite: all checks passed\n"
