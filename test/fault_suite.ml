(* Fault-injection suite — the resilience layer's tier-1 gate.

   - a fault injected at each transforming stage (micro, compile,
     techmap, optimize), for every Figure 19 suite design, degrades the
     flow to a [Partial] outcome whose last good checkpoint is the
     preceding stage and lints clean — never an uncaught exception;
   - off-the-books netlist corruption is caught the same way;
   - a 0-step budget terminates the flow [Complete], with the mapped
     design produced and [budget_exhausted] set;
   - a rule raising mid-edit is rolled back through its own sub-log
     (design restored exactly) and quarantined for the rest of the
     pass. *)

module D = Milo_netlist.Design
module Flow = Milo.Flow
module Lint = Milo_lint.Lint
module Engine = Milo_rules.Engine
module Budget = Milo_rules.Budget
module Suite = Milo_designs.Suite
module Faults = Milo_faults

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

(* Lint environment for checkpoint designs: generic plus the ECL target
   (the suite runs ECL flows), resolving compiled sub-designs through
   the partial outcome's database. *)
let lint_env db =
  let techs =
    [
      Milo_library.Generic.get ();
      (Flow.target_of Flow.Ecl).Milo_techmap.Table_map.tech;
    ]
  in
  (Milo_compilers.Database.resolver db techs, Flow.seq_classifier techs)

let assert_lint_clean what db design =
  let resolve, is_sequential = lint_env db in
  let diags = Lint.run ~resolve ~is_sequential design in
  match Lint.errors diags with
  | [] -> ()
  | errs ->
      fail "%s: last-good design has %d lint error(s)" what (List.length errs);
      List.iter
        (fun d -> Printf.printf "     %s\n" (Milo_lint.Diagnostic.to_string d))
        errs

let prev_stage = function
  | Flow.Micro -> Flow.Capture
  | Flow.Compile -> Flow.Micro
  | Flow.Techmap -> Flow.Compile
  | Flow.Optimize -> Flow.Techmap
  | Flow.Capture -> Flow.Capture

let check_partial what stage = function
  | Flow.Partial p ->
      if p.Flow.failed_stage <> stage then
        fail "%s: failed stage %s, expected %s" what
          (Flow.stage_name p.Flow.failed_stage)
          (Flow.stage_name stage);
      if p.Flow.last_good.Flow.ck_stage <> prev_stage stage then
        fail "%s: last good checkpoint %s, expected %s" what
          (Flow.stage_name p.Flow.last_good.Flow.ck_stage)
          (Flow.stage_name (prev_stage stage));
      if p.Flow.failure.Flow.err_message = "" then
        fail "%s: empty error message" what;
      assert_lint_clean what p.Flow.partial_database
        p.Flow.last_good.Flow.ck_design;
      Printf.printf "ok   %s -> partial after %s (%s)\n" what
        (Flow.stage_name p.Flow.last_good.Flow.ck_stage)
        p.Flow.failure.Flow.err_message
  | Flow.Complete _ -> fail "%s: expected Partial, flow completed" what

let inject_stage (case : Suite.case) stage =
  let what =
    Printf.sprintf "design %s, fault at %s" case.Suite.case_name
      (Flow.stage_name stage)
  in
  match
    Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
      ~lint:Lint.Strict
      ~hooks:(Faults.failing_hooks ~at:stage ())
      case.Suite.case_design
  with
  | outcome -> check_partial what stage outcome
  | exception e -> fail "%s: uncaught %s" what (Printexc.to_string e)

let inject_corruption (case : Suite.case) =
  let what = Printf.sprintf "design %s, corruption at micro" case.Suite.case_name in
  match
    Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
      ~lint:Lint.Strict
      ~hooks:(Faults.corrupting_hooks ~at:Flow.Micro ())
      case.Suite.case_design
  with
  | outcome -> check_partial what Flow.Micro outcome
  | exception e -> fail "%s: uncaught %s" what (Printexc.to_string e)

(* --- Budgets ----------------------------------------------------------- *)

let zero_budget (case : Suite.case) =
  let what = Printf.sprintf "design %s, 0-step budget" case.Suite.case_name in
  match
    Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
      ~budget:(Faults.exhausted_budget ())
      case.Suite.case_design
  with
  | Flow.Complete res ->
      let b = res.Flow.budget in
      if not b.Budget.budget_exhausted then
        fail "%s: budget_exhausted not set" what;
      if b.Budget.steps_used <> 0 then
        fail "%s: %d steps committed under a 0-step budget" what
          b.Budget.steps_used;
      if D.num_comps res.Flow.optimized = 0 then
        fail "%s: no mapped design produced" what;
      Printf.printf "ok   %s -> complete, unoptimized (%d comps)\n" what
        (D.num_comps res.Flow.optimized)
  | Flow.Partial p ->
      fail "%s: degraded at %s (%s)" what
        (Flow.stage_name p.Flow.failed_stage)
        p.Flow.failure.Flow.err_message
  | exception e -> fail "%s: uncaught %s" what (Printexc.to_string e)

(* --- Engine transactions ----------------------------------------------- *)

let ctx_for design =
  let lib = Milo_library.Generic.get () in
  let db = Milo_compilers.Database.create () in
  Milo_rules.Rule.make_context
    ~extra_resolve:(Milo_compilers.Database.resolver db [ lib ])
    lib
    (Milo_compilers.Gate_comp.generic_set lib)
    design

let engine_rollback () =
  Engine.quarantine_reset ();
  let d = Suite.accumulator () in
  let before = D.copy d in
  let ctx = ctx_for d in
  let cost () = float_of_int (D.num_comps d) in
  let apps =
    Engine.greedy_pass ctx ~cost ~cleanups:[] [ Faults.sabotage_rule () ]
  in
  if apps <> [] then fail "engine rollback: sabotage rule committed";
  if not (D.equal_structure before d) then
    fail "engine rollback: design not restored after mid-edit failure";
  if not (Engine.is_quarantined "fault-sabotage") then
    fail "engine rollback: rule not quarantined";
  (match Engine.quarantined () with
  | [ ("fault-sabotage", n) ] when n >= 1 ->
      Printf.printf "ok   engine rollback (quarantined after %d failure(s))\n" n
  | q -> fail "engine rollback: unexpected quarantine set (%d entries)"
           (List.length q));
  Engine.quarantine_reset ()

let engine_raising () =
  Engine.quarantine_reset ();
  let d = Suite.accumulator () in
  let before = D.copy d in
  let ctx = ctx_for d in
  let cost () = float_of_int (D.num_comps d) in
  let apps =
    Engine.greedy_pass ctx ~cost ~cleanups:[] [ Faults.raising_rule () ]
  in
  if apps <> [] then fail "engine raising: raising rule committed";
  if not (D.equal_structure before d) then
    fail "engine raising: design mutated by a rule that only raises";
  if not (Engine.is_quarantined "fault-raising") then
    fail "engine raising: rule not quarantined"
  else Printf.printf "ok   engine raising-rule quarantine\n";
  Engine.quarantine_reset ()

(* A flow run resets the quarantine and reports it per run. *)
let quarantine_reporting () =
  let case = List.hd (Suite.all ()) in
  match
    Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
      case.Suite.case_design
  with
  | Flow.Complete res ->
      if res.Flow.quarantined <> [] then
        fail "quarantine report: healthy flow quarantined %d rule(s)"
          (List.length res.Flow.quarantined)
      else Printf.printf "ok   quarantine report empty on healthy flow\n"
  | Flow.Partial p ->
      fail "quarantine report: healthy flow degraded at %s"
        (Flow.stage_name p.Flow.failed_stage)
  | exception e ->
      fail "quarantine report: uncaught %s" (Printexc.to_string e)

let () =
  let cases = Suite.all () in
  let stages = [ Flow.Micro; Flow.Compile; Flow.Techmap; Flow.Optimize ] in
  List.iter (fun c -> List.iter (inject_stage c) stages) cases;
  List.iter inject_corruption cases;
  List.iter zero_budget cases;
  engine_rollback ();
  engine_raising ();
  quarantine_reporting ();
  if !failures > 0 then begin
    Printf.printf "fault_suite: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "fault_suite: all clean"
