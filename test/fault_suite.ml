(* Fault-injection suite — the resilience layer's tier-1 gate.

   - a fault injected at each transforming stage (micro, compile,
     techmap, optimize), for every Figure 19 suite design, degrades the
     flow to a [Partial] outcome whose last good checkpoint is the
     preceding stage and lints clean — never an uncaught exception;
   - off-the-books netlist corruption is caught the same way;
   - a 0-step budget terminates the flow [Complete], with the mapped
     design produced and [budget_exhausted] set;
   - a rule raising mid-edit is rolled back through its own sub-log
     (design restored exactly) and quarantined for the rest of the
     pass;
   - torn writes: a journal truncated at every byte offset recovers to
     its longest valid record prefix without raising, and a streamed
     JSONL trace truncated anywhere in its final line keeps every
     complete line intact. *)

module D = Milo_netlist.Design
module Flow = Milo.Flow
module Lint = Milo_lint.Lint
module Engine = Milo_rules.Engine
module Budget = Milo_rules.Budget
module Suite = Milo_designs.Suite
module Faults = Milo_faults

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

(* Lint environment for checkpoint designs: generic plus the ECL target
   (the suite runs ECL flows), resolving compiled sub-designs through
   the partial outcome's database. *)
let lint_env db =
  let techs =
    [
      Milo_library.Generic.get ();
      (Flow.target_of Flow.Ecl).Milo_techmap.Table_map.tech;
    ]
  in
  (Milo_compilers.Database.resolver db techs, Flow.seq_classifier techs)

let assert_lint_clean what db design =
  let resolve, is_sequential = lint_env db in
  let diags = Lint.run ~resolve ~is_sequential design in
  match Lint.errors diags with
  | [] -> ()
  | errs ->
      fail "%s: last-good design has %d lint error(s)" what (List.length errs);
      List.iter
        (fun d -> Printf.printf "     %s\n" (Milo_lint.Diagnostic.to_string d))
        errs

let prev_stage = function
  | Flow.Micro -> Flow.Capture
  | Flow.Compile -> Flow.Micro
  | Flow.Techmap -> Flow.Compile
  | Flow.Optimize -> Flow.Techmap
  | Flow.Capture -> Flow.Capture

let check_partial what stage = function
  | Flow.Partial p ->
      if p.Flow.failed_stage <> stage then
        fail "%s: failed stage %s, expected %s" what
          (Flow.stage_name p.Flow.failed_stage)
          (Flow.stage_name stage);
      if p.Flow.last_good.Flow.ck_stage <> prev_stage stage then
        fail "%s: last good checkpoint %s, expected %s" what
          (Flow.stage_name p.Flow.last_good.Flow.ck_stage)
          (Flow.stage_name (prev_stage stage));
      if p.Flow.failure.Flow.err_message = "" then
        fail "%s: empty error message" what;
      assert_lint_clean what p.Flow.partial_database
        p.Flow.last_good.Flow.ck_design;
      Printf.printf "ok   %s -> partial after %s (%s)\n" what
        (Flow.stage_name p.Flow.last_good.Flow.ck_stage)
        p.Flow.failure.Flow.err_message
  | Flow.Complete _ -> fail "%s: expected Partial, flow completed" what

let inject_stage (case : Suite.case) stage =
  let what =
    Printf.sprintf "design %s, fault at %s" case.Suite.case_name
      (Flow.stage_name stage)
  in
  match
    Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
      ~lint:Lint.Strict
      ~hooks:(Faults.failing_hooks ~at:stage ())
      case.Suite.case_design
  with
  | outcome -> check_partial what stage outcome
  | exception e -> fail "%s: uncaught %s" what (Printexc.to_string e)

let inject_corruption (case : Suite.case) =
  let what = Printf.sprintf "design %s, corruption at micro" case.Suite.case_name in
  match
    Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
      ~lint:Lint.Strict
      ~hooks:(Faults.corrupting_hooks ~at:Flow.Micro ())
      case.Suite.case_design
  with
  | outcome -> check_partial what Flow.Micro outcome
  | exception e -> fail "%s: uncaught %s" what (Printexc.to_string e)

(* --- Budgets ----------------------------------------------------------- *)

let zero_budget (case : Suite.case) =
  let what = Printf.sprintf "design %s, 0-step budget" case.Suite.case_name in
  match
    Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
      ~budget:(Faults.exhausted_budget ())
      case.Suite.case_design
  with
  | Flow.Complete res ->
      let b = res.Flow.budget in
      if not b.Budget.budget_exhausted then
        fail "%s: budget_exhausted not set" what;
      if b.Budget.steps_used <> 0 then
        fail "%s: %d steps committed under a 0-step budget" what
          b.Budget.steps_used;
      if D.num_comps res.Flow.optimized = 0 then
        fail "%s: no mapped design produced" what;
      Printf.printf "ok   %s -> complete, unoptimized (%d comps)\n" what
        (D.num_comps res.Flow.optimized)
  | Flow.Partial p ->
      fail "%s: degraded at %s (%s)" what
        (Flow.stage_name p.Flow.failed_stage)
        p.Flow.failure.Flow.err_message
  | exception e -> fail "%s: uncaught %s" what (Printexc.to_string e)

(* --- Engine transactions ----------------------------------------------- *)

let ctx_for design =
  let lib = Milo_library.Generic.get () in
  let db = Milo_compilers.Database.create () in
  Milo_rules.Rule.make_context
    ~extra_resolve:(Milo_compilers.Database.resolver db [ lib ])
    lib
    (Milo_compilers.Gate_comp.generic_set lib)
    design

let engine_rollback () =
  Engine.quarantine_reset ();
  let d = Suite.accumulator () in
  let before = D.copy d in
  let ctx = ctx_for d in
  let cost () = float_of_int (D.num_comps d) in
  let apps =
    Engine.greedy_pass ctx ~cost ~cleanups:[] [ Faults.sabotage_rule () ]
  in
  if apps <> [] then fail "engine rollback: sabotage rule committed";
  if not (D.equal_structure before d) then
    fail "engine rollback: design not restored after mid-edit failure";
  if not (Engine.is_quarantined "fault-sabotage") then
    fail "engine rollback: rule not quarantined";
  (match Engine.quarantined () with
  | [ ("fault-sabotage", n) ] when n >= 1 ->
      Printf.printf "ok   engine rollback (quarantined after %d failure(s))\n" n
  | q -> fail "engine rollback: unexpected quarantine set (%d entries)"
           (List.length q));
  Engine.quarantine_reset ()

let engine_raising () =
  Engine.quarantine_reset ();
  let d = Suite.accumulator () in
  let before = D.copy d in
  let ctx = ctx_for d in
  let cost () = float_of_int (D.num_comps d) in
  let apps =
    Engine.greedy_pass ctx ~cost ~cleanups:[] [ Faults.raising_rule () ]
  in
  if apps <> [] then fail "engine raising: raising rule committed";
  if not (D.equal_structure before d) then
    fail "engine raising: design mutated by a rule that only raises";
  if not (Engine.is_quarantined "fault-raising") then
    fail "engine raising: rule not quarantined"
  else Printf.printf "ok   engine raising-rule quarantine\n";
  Engine.quarantine_reset ()

(* A flow run resets the quarantine and reports it per run. *)
let quarantine_reporting () =
  let case = List.hd (Suite.all ()) in
  match
    Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
      case.Suite.case_design
  with
  | Flow.Complete res ->
      if res.Flow.quarantined <> [] then
        fail "quarantine report: healthy flow quarantined %d rule(s)"
          (List.length res.Flow.quarantined)
      else Printf.printf "ok   quarantine report empty on healthy flow\n"
  | Flow.Partial p ->
      fail "quarantine report: healthy flow degraded at %s"
        (Flow.stage_name p.Flow.failed_stage)
  | exception e ->
      fail "quarantine report: uncaught %s" (Printexc.to_string e)

(* --- Domain-pool faults ------------------------------------------------- *)

module Pool = Milo_parallel.Pool
module Exec = Milo_parallel.Exec

(* Every fault class a supervised task can exhibit — raise, deadline
   overrun, stall — comes back as its typed [Task_failed]; healthy
   tasks interleaved with them still settle [Done]; and after a stall
   writes a worker off, the replacement keeps the pool serving.  The
   whole batch must terminate (the suite would hang here if
   supervision leaked). *)
let pool_fault_classification () =
  match Pool.create ~stall_timeout:0.2 ~force:true ~domains:2 () with
  | None -> fail "pool faults: forced 2-domain pool did not construct"
  | Some p ->
      let deadline = Unix.gettimeofday () +. 0.4 in
      let outcomes =
        Pool.run p ~deadline
          [
            (fun () -> 7);
            Faults.raising_task ();
            Faults.looping_task ();
            Faults.stalling_task ~seconds:1.2 ();
          ]
      in
      (match outcomes.(0) with
      | Pool.Done 7 -> ()
      | _ -> fail "pool faults: healthy task did not settle Done");
      (match outcomes.(1) with
      | Pool.Task_failed (Pool.Raised { exn; _ }) ->
          let has_sub s sub =
            let n = String.length s and m = String.length sub in
            let rec go i =
              i + m <= n && (String.sub s i m = sub || go (i + 1))
            in
            go 0
          in
          if not (has_sub exn "Injected") then
            fail "pool faults: raised fault lost the exception text (%s)" exn
      | _ -> fail "pool faults: raising task not classified Raised");
      (match outcomes.(2) with
      | Pool.Task_failed Pool.Deadline -> ()
      | _ -> fail "pool faults: polling looper not cancelled at the deadline");
      (match outcomes.(3) with
      | Pool.Task_failed Pool.Stalled -> ()
      | _ -> fail "pool faults: non-polling task not abandoned as Stalled");
      (* The stall wrote one worker off; the replacement must leave the
         pool fully operational. *)
      let again = Pool.run p [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ] in
      Array.iteri
        (fun i o ->
          match o with
          | Pool.Done v when v = i + 1 -> ()
          | _ -> fail "pool faults: post-replacement task %d did not settle" i)
        again;
      Pool.shutdown p;
      if !failures = 0 then
        Printf.printf "ok   pool fault classification + worker replacement\n"

(* Inline supervision: the same classification without any pool — the
   [--domains 1] and degraded paths contain faults identically (stall
   detection excepted, which needs a watchdog domain). *)
let inline_fault_classification () =
  let deadline = Unix.gettimeofday () +. 0.2 in
  let outcomes =
    Pool.run_inline ~deadline
      [ (fun () -> 7); Faults.raising_task (); Faults.looping_task () ]
  in
  (match outcomes.(0) with
  | Pool.Done 7 -> ()
  | _ -> fail "inline faults: healthy task did not settle Done");
  (match outcomes.(1) with
  | Pool.Task_failed (Pool.Raised _) -> ()
  | _ -> fail "inline faults: raising task not classified Raised");
  (match outcomes.(2) with
  | Pool.Task_failed Pool.Deadline -> ()
  | _ -> fail "inline faults: polling looper not cancelled inline");
  if !failures = 0 then Printf.printf "ok   inline fault classification\n"

(* The engine's parallel greedy pass over injected faulty rules: each
   faulting task quarantines its rule — the pass completes, commits
   nothing from the faulty rule, and no exception escapes. *)
let engine_parallel_faults () =
  let run_with what exec rule expect_note =
    Engine.quarantine_reset ();
    let d = Suite.accumulator () in
    let before = D.copy d in
    let ctx = ctx_for d in
    let cost () = float_of_int (D.num_comps d) in
    let cost_factory wctx () =
      float_of_int (D.num_comps wctx.Milo_rules.Rule.design)
    in
    match
      Engine.greedy_pass_par ~exec ~cost_factory ctx ~cost ~cleanups:[]
        [ rule ]
    with
    | apps ->
        if apps <> [] then fail "%s: faulty rule committed" what;
        if not (D.equal_structure before d) then
          fail "%s: design mutated by a contained fault" what;
        (match Engine.quarantined () with
        | [ (name, _) ] ->
            if name <> expect_note then
              fail "%s: quarantined %s, expected %s" what name expect_note
        | q ->
            fail "%s: expected exactly one quarantined rule, got %d" what
              (List.length q));
        Engine.quarantine_reset ();
        Printf.printf "ok   %s\n" what
    | exception e ->
        Engine.quarantine_reset ();
        fail "%s: escaped exception %s" what (Printexc.to_string e)
  in
  (* Raising rule, inline plan: the engine-level quarantine fires inside
     the worker task and is imported deterministically. *)
  run_with "engine parallel raising (inline)"
    (Exec.inline ())
    (Faults.raising_rule ()) "fault-raising";
  (* Looping rule under a deadline, inline plan: cancelled at its first
     poll past the deadline, quarantined as a deadline fault. *)
  run_with "engine parallel deadline (inline)"
    (Exec.inline ~deadline:(Unix.gettimeofday () +. 0.2) ())
    (Faults.looping_rule ()) "fault-looping";
  (* The same two through a real (forced) pool. *)
  (match Pool.create ~stall_timeout:0.25 ~force:true ~domains:2 () with
  | None -> fail "engine parallel: forced pool did not construct"
  | Some p ->
      run_with "engine parallel raising (pooled)" (Exec.pooled p)
        (Faults.raising_rule ()) "fault-raising";
      run_with "engine parallel deadline (pooled)"
        (Exec.pooled ~deadline:(Unix.gettimeofday () +. 0.2) p)
        (Faults.looping_rule ()) "fault-looping";
      (* Stalling rule: only the pooled watchdog can contain it. *)
      run_with "engine parallel stall (pooled)" (Exec.pooled p)
        (Faults.stalling_rule ~seconds:1.2 ()) "fault-stalling";
      Pool.shutdown p)

(* Flow-level degradation: when the pool cannot be constructed the run
   completes sequentially and says so — the Degraded_to_sequential
   note in the result and a Note event in the trace. *)
let flow_degraded_to_sequential () =
  let case = List.hd (Suite.all ()) in
  Pool.fail_spawn_for_testing := true;
  let t = Milo_trace.Trace.create () in
  (match
     Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
       ~trace:t ~domains:4 ~force_domains:true case.Suite.case_design
   with
  | Flow.Complete res ->
      if not (List.mem "Degraded_to_sequential" res.Flow.notes) then
        fail "degradation: no Degraded_to_sequential note in the result";
      let noted =
        List.exists
          (fun (e : Milo_trace.Trace.event) ->
            match e.Milo_trace.Trace.kind with
            | Milo_trace.Trace.Note n ->
                String.length n >= 23
                && String.sub n 0 23 = "Degraded_to_sequential:"
            | _ -> false)
          (Milo_trace.Trace.events t)
      in
      if not noted then fail "degradation: no Note event in the trace"
  | Flow.Partial p ->
      fail "degradation: flow degraded at %s instead of running inline"
        (Flow.stage_name p.Flow.failed_stage)
  | exception e ->
      fail "degradation: uncaught %s" (Printexc.to_string e));
  Pool.fail_spawn_for_testing := false;
  if !failures = 0 then
    Printf.printf "ok   flow degrades to sequential with note + trace\n"

(* --- Torn writes -------------------------------------------------------- *)

module J = Milo_journal.Journal

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Truncate a finished journal at every byte offset and recover each
   image: recovery must never raise, the recovered records must be a
   prefix of the full record list, the count must grow monotonically
   with the cut point, and a cut inside the final record must recover
   exactly all records before it with the torn tail reported. *)
let torn_journal () =
  let case = List.hd (Suite.all ()) in
  let journal = Filename.temp_file "milo_torn_journal" ".mjl" in
  (match
     Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
       ~journal case.Suite.case_design
   with
  | Flow.Complete _ -> ()
  | Flow.Partial _ | (exception _) -> fail "torn journal: reference run failed");
  let bytes = read_file journal in
  let full = J.recover journal in
  let total = List.length full.J.r_records in
  if full.J.r_truncated_bytes <> 0 then
    fail "torn journal: clean journal reports a torn tail";
  let cut = Filename.temp_file "milo_torn_cut" ".mjl" in
  let prefix l1 l2 =
    List.length l1 <= List.length l2
    && List.for_all2 (fun a b -> a = b) l1
         (List.filteri (fun i _ -> i < List.length l1) l2)
  in
  let last_count = ref (-1) in
  for len = 0 to String.length bytes - 1 do
    write_file cut (String.sub bytes 0 len);
    match J.recover cut with
    | rc ->
        let n = List.length rc.J.r_records in
        if n < !last_count then
          fail "torn journal: cut at %d recovered %d records, cut before \
                recovered %d"
            len n !last_count;
        last_count := max !last_count n;
        if n >= total then
          fail "torn journal: cut at %d/%d recovered all %d records" len
            (String.length bytes) total;
        if not (prefix rc.J.r_records full.J.r_records) then
          fail "torn journal: cut at %d recovered a non-prefix" len;
        if rc.J.r_truncated_bytes < 0 || rc.J.r_truncated_bytes > len then
          fail "torn journal: cut at %d reports %d torn bytes" len
            rc.J.r_truncated_bytes
    | exception e ->
        fail "torn journal: recovery raised at cut %d: %s" len
          (Printexc.to_string e)
  done;
  Sys.remove cut;
  Sys.remove journal;
  Printf.printf "ok   torn journal (%d records, %d cut points)\n" total
    (String.length bytes)

(* Truncate a streamed JSONL trace at every byte offset of its final
   line: every complete line of the cut image must be byte-identical to
   the corresponding line of the full file — the torn tail only ever
   costs the line it landed in. *)
let torn_trace () =
  let case = List.hd (Suite.all ()) in
  let path = Filename.temp_file "milo_torn_trace" ".jsonl" in
  let oc = open_out_bin path in
  let t = Milo_trace.Trace.create () in
  Milo_trace.Trace.add_sink t (Milo_trace.Export.jsonl_sink oc);
  (match
     Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints ~trace:t
       case.Suite.case_design
   with
  | Flow.Complete _ -> ()
  | Flow.Partial _ | (exception _) -> fail "torn trace: reference run failed");
  close_out oc;
  let bytes = read_file path in
  let full_lines = String.split_on_char '\n' bytes in
  let complete_lines s =
    (* lines before the last newline; a trailing fragment is torn *)
    match List.rev (String.split_on_char '\n' s) with
    | _fragment :: rest -> List.rev rest
    | [] -> []
  in
  let full = complete_lines bytes in
  if List.length full < 4 then fail "torn trace: suspiciously short trace";
  List.iter
    (fun l ->
      if l = "" || l.[0] <> '{' || l.[String.length l - 1] <> '}' then
        fail "torn trace: malformed full line %S" l)
    full;
  let last_line_start =
    String.length bytes - String.length (List.nth full_lines (List.length full_lines - 2)) - 1
  in
  for len = last_line_start to String.length bytes - 1 do
    let kept = complete_lines (String.sub bytes 0 len) in
    if List.length kept <> List.length full - 1 then
      fail "torn trace: cut at %d kept %d lines, expected %d" len
        (List.length kept)
        (List.length full - 1);
    List.iteri
      (fun i l ->
        if l <> List.nth full i then
          fail "torn trace: cut at %d corrupted line %d" len i)
      kept
  done;
  Sys.remove path;
  Printf.printf "ok   torn trace (%d lines, %d cut points)\n"
    (List.length full)
    (String.length bytes - last_line_start)

let () =
  let cases = Suite.all () in
  let stages = [ Flow.Micro; Flow.Compile; Flow.Techmap; Flow.Optimize ] in
  List.iter (fun c -> List.iter (inject_stage c) stages) cases;
  List.iter inject_corruption cases;
  List.iter zero_budget cases;
  engine_rollback ();
  engine_raising ();
  quarantine_reporting ();
  pool_fault_classification ();
  inline_fault_classification ();
  engine_parallel_faults ();
  flow_degraded_to_sequential ();
  torn_journal ();
  torn_trace ();
  if !failures > 0 then begin
    Printf.printf "fault_suite: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "fault_suite: all clean"
