(* Fault-injection harness for the resilience layer.

   Wraps the flow's stage hooks and the rule representation to inject
   failures at controlled points: exceptions raised before a stage,
   off-the-books netlist corruption, rules whose [apply] raises (before
   or after recording edits) and pre-exhausted budgets.  Used by
   fault_suite to assert that every failure mode degrades to a
   [Partial] outcome with a lint-clean checkpoint, never an uncaught
   exception. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Rule = Milo_rules.Rule
module Flow = Milo.Flow

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected msg -> Some ("Milo_faults.Injected: " ^ msg)
    | _ -> None)

(* --- Stage-level faults ----------------------------------------------- *)

(* Raise [exn] when the flow enters [at].  [Capture] never fires: the
   flow only invokes [before_stage] for the transforming stages. *)
let failing_hooks ?(exn = Injected "injected stage failure") ~at () =
  {
    Flow.no_hooks with
    Flow.before_stage = (fun stage _ -> if stage = at then raise exn);
  }

(* Point one pin of one component at a nonexistent net, off the books
   (no log entry, no npins update) — the same class of unsound mutation
   the engine's debug lint exists to catch.  Linting the stage output,
   or any later measurement, then fails. *)
let corrupt_design d =
  match D.comps d with
  | [] -> ()
  | c :: _ -> (
      match Hashtbl.fold (fun pin _ acc -> pin :: acc) c.D.conns [] with
      | [] -> ()
      | pin :: _ -> Hashtbl.replace c.D.conns pin 999999)

let corrupting_hooks ~at () =
  {
    Flow.no_hooks with
    Flow.before_stage = (fun stage d -> if stage = at then corrupt_design d);
  }

(* --- Rule-level faults ------------------------------------------------ *)

(* Matches every component; [apply] raises before touching the design.
   Exercises the engine's quarantine without needing rollback. *)
let raising_rule ?(exn = Injected "injected rule failure") () =
  Rule.make ~name:"fault-raising" ~cls:Rule.Cleanup
    ~find:(fun ctx ->
      List.map
        (fun (c : D.comp) -> Rule.site ~comps:[ c.D.id ] "raising fault")
        (Rule.scan_comps ctx))
    ~apply:(fun _ _ _ -> raise exn)

(* Matches every component; [apply] records real edits (disconnecting
   the component's pins) into the log, then raises.  Exercises the
   transactional rollback: the engine must restore the design from the
   rule's own sub-log before quarantining it. *)
let sabotage_rule ?(exn = Injected "injected mid-edit failure") () =
  Rule.make ~name:"fault-sabotage" ~cls:Rule.Cleanup
    ~find:(fun ctx ->
      List.filter_map
        (fun (c : D.comp) ->
          if Hashtbl.length c.D.conns = 0 then None
          else Some (Rule.site ~comps:[ c.D.id ] "sabotage fault"))
        (Rule.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.Rule.site_comps with
      | cid :: _ ->
          let c = D.comp ctx.Rule.design cid in
          let pins = Hashtbl.fold (fun pin _ acc -> pin :: acc) c.D.conns [] in
          List.iter (fun pin -> D.disconnect ~log ctx.Rule.design cid pin) pins;
          raise exn
      | [] -> false)

(* --- Miscompiling rules ----------------------------------------------- *)

(* Planted rules that apply cleanly (edits logged, no exception, lint
   intact) but change the function of their site — the failure class
   only the semantic guard can catch.  Each is a realistic rewrite bug:
   wrong polarity, a dropped fanin, swapped mux data arms. *)

let replace_sub s ~sub ~by =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i -> Some (String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m))

let macro_name (c : D.comp) =
  match c.D.kind with T.Macro m -> Some m | _ -> None

(* Wrong polarity: an inverter silently becomes a buffer.  The pin
   interface is identical, so the netlist stays perfectly well-formed —
   only the function changes. *)
let polarity_rule () =
  let buf_of ctx nm =
    match replace_sub nm ~sub:"INV" ~by:"BUF" with
    | Some b when Milo_library.Technology.mem ctx.Rule.tech b -> Some b
    | Some _ | None -> None
  in
  Rule.make ~name:"fault-polarity" ~cls:Rule.Logic
    ~find:(fun ctx ->
      List.filter_map
        (fun (c : D.comp) ->
          match macro_name c with
          | Some nm when buf_of ctx nm <> None ->
              Some (Rule.site ~comps:[ c.D.id ] "polarity fault")
          | Some _ | None -> None)
        (Rule.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.Rule.site_comps with
      | cid :: _ -> (
          match D.comp_opt ctx.Rule.design cid with
          | Some c -> (
              match Option.bind (macro_name c) (buf_of ctx) with
              | Some buf ->
                  D.set_kind ~log ctx.Rule.design cid (T.Macro buf);
                  true
              | None -> false)
          | None -> false)
      | [] -> false)

(* Dropped fanin: rewires the second input of a multi-input gate onto
   the first input's net, as if the rewrite forgot one operand. *)
let drop_fanin_rule () =
  let victim ctx (c : D.comp) =
    match Rule.macro_of ctx c with
    | Some m -> (
        match m.Milo_library.Macro.inputs with
        | p0 :: p1 :: _ -> (
            match
              ( D.connection ctx.Rule.design c.D.id p0,
                D.connection ctx.Rule.design c.D.id p1 )
            with
            | Some n0, Some n1 when n0 <> n1 -> Some (p1, n0)
            | _ -> None)
        | _ -> None)
    | None -> None
  in
  Rule.make ~name:"fault-drop-fanin" ~cls:Rule.Logic
    ~find:(fun ctx ->
      List.filter_map
        (fun (c : D.comp) ->
          match victim ctx c with
          | Some _ -> Some (Rule.site ~comps:[ c.D.id ] "drop-fanin fault")
          | None -> None)
        (Rule.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.Rule.site_comps with
      | cid :: _ -> (
          match D.comp_opt ctx.Rule.design cid with
          | Some c -> (
              match victim ctx c with
              | Some (pin, net) ->
                  D.connect ~log ctx.Rule.design cid pin net;
                  true
              | None -> false)
          | None -> false)
      | [] -> false)

(* Swapped mux arms: exchanges the D0/D1 connections of a 2-way
   multiplexor, inverting its select semantics. *)
let swap_mux_rule () =
  let arms ctx (c : D.comp) =
    match macro_name c with
    | Some nm when replace_sub nm ~sub:"MUX2" ~by:"" <> None -> (
        match
          ( D.connection ctx.Rule.design c.D.id "D0",
            D.connection ctx.Rule.design c.D.id "D1" )
        with
        | Some n0, Some n1 when n0 <> n1 -> Some (n0, n1)
        | _ -> None)
    | Some _ | None -> None
  in
  Rule.make ~name:"fault-swap-mux" ~cls:Rule.Logic
    ~find:(fun ctx ->
      List.filter_map
        (fun (c : D.comp) ->
          match arms ctx c with
          | Some _ -> Some (Rule.site ~comps:[ c.D.id ] "swap-mux fault")
          | None -> None)
        (Rule.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.Rule.site_comps with
      | cid :: _ -> (
          match D.comp_opt ctx.Rule.design cid with
          | Some c -> (
              match arms ctx c with
              | Some (n0, n1) ->
                  D.connect ~log ctx.Rule.design cid "D0" n1;
                  D.connect ~log ctx.Rule.design cid "D1" n0;
                  true
              | None -> false)
          | None -> false)
      | [] -> false)

let miscompiling_rules () =
  [ polarity_rule (); drop_fanin_rule (); swap_mux_rule () ]

(* --- Semantic corruption ----------------------------------------------- *)

(* Off-the-books single-component function change: the netlist stays
   structurally valid (lint-clean), but the design computes something
   else.  Tries, in order: a micro-level inverter made a buffer, a
   macro inverter made a buffer, a mux with swapped arms.  Returns
   whether anything was corrupted. *)
let semantic_corrupt d =
  let try_comp (c : D.comp) =
    match c.D.kind with
    | T.Gate (T.Inv, w) ->
        c.D.kind <- T.Gate (T.Buf, w);
        true
    | T.Macro nm -> (
        match replace_sub nm ~sub:"INV" ~by:"BUF" with
        | Some buf ->
            c.D.kind <- T.Macro buf;
            true
        | None -> (
            match replace_sub nm ~sub:"MUX2" ~by:"" with
            | Some _ -> (
                match
                  ( Hashtbl.find_opt c.D.conns "D0",
                    Hashtbl.find_opt c.D.conns "D1" )
                with
                | Some n0, Some n1 when n0 <> n1 ->
                    Hashtbl.replace c.D.conns "D0" n1;
                    Hashtbl.replace c.D.conns "D1" n0;
                    (* keep the net-side index consistent: swap the pin
                       entries too, so the corruption is invisible to
                       structural lint *)
                    let swap_net nid from_pin to_pin =
                      match D.net_opt d nid with
                      | Some n ->
                          n.D.npins <-
                            List.map
                              (fun (cid, pin) ->
                                if cid = c.D.id && pin = from_pin then
                                  (cid, to_pin)
                                else (cid, pin))
                              n.D.npins
                      | None -> ()
                    in
                    swap_net n0 "D0" "D1";
                    swap_net n1 "D1" "D0";
                    true
                | _ -> false)
            | None -> false))
    | _ -> false
  in
  List.exists try_comp (D.comps d)

(* Corrupt the design's function (off the log) when the flow enters
   [at]; [corrupted] records whether a corruption site was found. *)
let semantic_corrupting_hooks ~at () =
  let corrupted = ref false in
  ( {
      Flow.no_hooks with
      Flow.before_stage =
        (fun stage d -> if stage = at then corrupted := semantic_corrupt d);
    },
    corrupted )

(* --- Budget faults ---------------------------------------------------- *)

(* A budget that is exhausted before the first step: every bounded pass
   must terminate immediately with best-so-far (nothing). *)
let exhausted_budget () = Milo_rules.Budget.make ~max_steps:0 ()

(* --- Domain-level faults ----------------------------------------------- *)

(* Injectors for the supervised domain pool: tasks and rules that
   exercise each fault class the pool must contain — a raise inside
   the task body, a loop that overruns the deadline while polling
   cooperatively, and a stall that never heartbeats at all (the only
   class that needs the watchdog).  fault_suite and parallel_suite use
   them to assert the pool classifies every one as a typed
   [Task_failed], replaces wedged workers, and never hangs or lets an
   exception escape. *)

module Pool = Milo_parallel.Pool

(* Raises from inside the task body: must come back as
   [Task_failed (Raised _)] with the exception text captured. *)
let raising_task ?(exn = Injected "injected task failure") () () : int =
  raise exn

(* Loops forever but polls: cancelled cooperatively once the deadline
   passes — [Task_failed Deadline].  Never run without a deadline. *)
let looping_task () () : int =
  while true do
    Pool.poll ()
  done;
  0

(* Runs without ever heartbeating (a sleep stands in for a wedged
   computation): the watchdog abandons it as [Task_failed Stalled] and
   writes off its worker.  [seconds] keeps the wedged domain's life
   short so the test process exits promptly after the write-off. *)
let stalling_task ?(seconds = 1.2) () () : int =
  Unix.sleepf seconds;
  0

(* Rule-shaped versions of the same faults, for the engine's parallel
   fan-out paths ([greedy_pass_par] and friends): the fault fires
   inside a supervised task's [evaluate], so the engine must convert
   it into a quarantine of the rule, never a hang or an escape. *)

let every_comp_sites descr ctx =
  List.map
    (fun (c : D.comp) -> Rule.site ~comps:[ c.D.id ] descr)
    (Rule.scan_comps ctx)

(* [apply] loops past any deadline but polls: the worker task is
   cancelled cooperatively and the rule quarantined with a deadline
   fault. *)
let looping_rule () =
  Rule.make ~name:"fault-looping" ~cls:Rule.Cleanup
    ~find:(every_comp_sites "looping fault")
    ~apply:(fun _ _ _ ->
      while true do
        Pool.poll ()
      done;
      false)

(* [apply] wedges without polling: only the watchdog can contain it. *)
let stalling_rule ?(seconds = 1.2) () =
  Rule.make ~name:"fault-stalling" ~cls:Rule.Cleanup
    ~find:(every_comp_sites "stalling fault")
    ~apply:(fun _ _ _ ->
      Unix.sleepf seconds;
      false)

(* --- Journal crash injection ------------------------------------------ *)

(* Kill the flow (by raising [Journal.Crash]) the moment the [n]-th
   journal record reaches the file.  In-process this approximates a
   process death exactly at that write: the journal file holds precisely
   the first [n] records (checkpoints whole, via their tmp+rename
   commit), nothing after the kill point touches it, and the flow
   neither degrades to [Partial] nor writes a Finish record. *)
let kill_after n count =
  if count >= n then raise (Milo_journal.Journal.Crash count)

(* Run a journaled flow, killing it after exactly [n] journal records.
   Returns [Some outcome] when the flow finished before writing [n]
   records (no kill happened), [None] when the kill fired. *)
let run_journaled_killed ?technology ?constraints ?lint ?incremental ?budget
    ?guard ?certify ?domains ?force_domains ~journal n design =
  match
    Flow.run ?technology ?constraints ?lint ?incremental ?budget ?guard
      ?certify ~journal ~journal_fault:(kill_after n) ?domains ?force_domains
      design
  with
  | outcome -> Some outcome
  | exception Milo_journal.Journal.Crash _ -> None
