(* Fault-injection harness for the resilience layer.

   Wraps the flow's stage hooks and the rule representation to inject
   failures at controlled points: exceptions raised before a stage,
   off-the-books netlist corruption, rules whose [apply] raises (before
   or after recording edits) and pre-exhausted budgets.  Used by
   fault_suite to assert that every failure mode degrades to a
   [Partial] outcome with a lint-clean checkpoint, never an uncaught
   exception. *)

module D = Milo_netlist.Design
module Rule = Milo_rules.Rule
module Flow = Milo.Flow

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected msg -> Some ("Milo_faults.Injected: " ^ msg)
    | _ -> None)

(* --- Stage-level faults ----------------------------------------------- *)

(* Raise [exn] when the flow enters [at].  [Capture] never fires: the
   flow only invokes [before_stage] for the transforming stages. *)
let failing_hooks ?(exn = Injected "injected stage failure") ~at () =
  {
    Flow.no_hooks with
    Flow.before_stage = (fun stage _ -> if stage = at then raise exn);
  }

(* Point one pin of one component at a nonexistent net, off the books
   (no log entry, no npins update) — the same class of unsound mutation
   the engine's debug lint exists to catch.  Linting the stage output,
   or any later measurement, then fails. *)
let corrupt_design d =
  match D.comps d with
  | [] -> ()
  | c :: _ -> (
      match Hashtbl.fold (fun pin _ acc -> pin :: acc) c.D.conns [] with
      | [] -> ()
      | pin :: _ -> Hashtbl.replace c.D.conns pin 999999)

let corrupting_hooks ~at () =
  {
    Flow.no_hooks with
    Flow.before_stage = (fun stage d -> if stage = at then corrupt_design d);
  }

(* --- Rule-level faults ------------------------------------------------ *)

(* Matches every component; [apply] raises before touching the design.
   Exercises the engine's quarantine without needing rollback. *)
let raising_rule ?(exn = Injected "injected rule failure") () =
  Rule.make ~name:"fault-raising" ~cls:Rule.Cleanup
    ~find:(fun ctx ->
      List.map
        (fun (c : D.comp) -> Rule.site ~comps:[ c.D.id ] "raising fault")
        (Rule.scan_comps ctx))
    ~apply:(fun _ _ _ -> raise exn)

(* Matches every component; [apply] records real edits (disconnecting
   the component's pins) into the log, then raises.  Exercises the
   transactional rollback: the engine must restore the design from the
   rule's own sub-log before quarantining it. *)
let sabotage_rule ?(exn = Injected "injected mid-edit failure") () =
  Rule.make ~name:"fault-sabotage" ~cls:Rule.Cleanup
    ~find:(fun ctx ->
      List.filter_map
        (fun (c : D.comp) ->
          if Hashtbl.length c.D.conns = 0 then None
          else Some (Rule.site ~comps:[ c.D.id ] "sabotage fault"))
        (Rule.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.Rule.site_comps with
      | cid :: _ ->
          let c = D.comp ctx.Rule.design cid in
          let pins = Hashtbl.fold (fun pin _ acc -> pin :: acc) c.D.conns [] in
          List.iter (fun pin -> D.disconnect ~log ctx.Rule.design cid pin) pins;
          raise exn
      | [] -> false)

(* --- Budget faults ---------------------------------------------------- *)

(* A budget that is exhausted before the first step: every bounded pass
   must terminate immediately with best-so-far (nothing). *)
let exhausted_budget () = Milo_rules.Budget.make ~max_steps:0 ()
