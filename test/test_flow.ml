(* End-to-end flow tests: the Figure 19 suite through the full MILO
   pipeline — function preserved, improvements non-negative, micro
   critic feedback behaves as Figure 16 describes. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let run_case (case : Milo_designs.Suite.case) =
  let human =
    Milo.Flow.baseline_stats ~technology:Milo.Flow.Ecl
      case.Milo_designs.Suite.case_design
  in
  let res =
    Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
      ~constraints:case.Milo_designs.Suite.constraints
      case.Milo_designs.Suite.case_design
  in
  (human, res)

let test_flow_equivalence () =
  List.iter
    (fun (case : Milo_designs.Suite.case) ->
      let baseline, _ =
        Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl
          case.Milo_designs.Suite.case_design
      in
      let res =
        Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
          ~constraints:case.Milo_designs.Suite.constraints
          case.Milo_designs.Suite.case_design
      in
      let r =
        Milo_sim.Equiv.sequential ~cycles:48 ~runs:3 (Util.env_ecl ()) baseline
          (Util.env_ecl ()) res.Milo.Flow.optimized
      in
      Alcotest.(check bool)
        (Printf.sprintf "design %s equivalent: %s"
           case.Milo_designs.Suite.case_name
           (Format.asprintf "%a" Milo_sim.Equiv.pp_result r))
        true
        (Milo_sim.Equiv.is_equivalent r))
    (Milo_designs.Suite.all ())

let test_flow_improves_delay () =
  (* On every Figure 19 design MILO's delay is never worse than the
     human baseline, and the logic-level designs (1-5) improve by at
     least 10% as in the paper's 19-36% range. *)
  List.iter
    (fun (case : Milo_designs.Suite.case) ->
      let human, res = run_case case in
      let milo = res.Milo.Flow.final in
      Alcotest.(check bool)
        (Printf.sprintf "design %s delay no worse (%.2f vs %.2f)"
           case.Milo_designs.Suite.case_name milo.Milo.Flow.delay
           human.Milo.Flow.delay)
        true
        (milo.Milo.Flow.delay <= human.Milo.Flow.delay +. 1e-6);
      if int_of_string case.Milo_designs.Suite.case_name <= 5 then
        Alcotest.(check bool)
          (Printf.sprintf "design %s delay improves >= 10%%"
             case.Milo_designs.Suite.case_name)
          true
          (milo.Milo.Flow.delay < human.Milo.Flow.delay *. 0.9))
    (Milo_designs.Suite.all ())

let test_cmos_flow () =
  (* The same pipeline retargets to the CMOS library. *)
  let case = Milo_designs.Suite.design4 () in
  let baseline, _ =
    Milo.Flow.human_baseline ~technology:Milo.Flow.Cmos
      case.Milo_designs.Suite.case_design
  in
  let res =
    Milo.Flow.run_exn ~technology:Milo.Flow.Cmos
      ~constraints:case.Milo_designs.Suite.constraints
      case.Milo_designs.Suite.case_design
  in
  let r =
    Milo_sim.Equiv.combinational (Util.env_cmos ()) baseline (Util.env_cmos ())
      res.Milo.Flow.optimized
  in
  Alcotest.(check bool) "CMOS flow equivalent" true
    (Milo_sim.Equiv.is_equivalent r);
  (* only CMOS macros in the result *)
  List.iter
    (fun (c : D.comp) ->
      match c.D.kind with
      | T.Macro m ->
          Alcotest.(check bool) (m ^ " is CMOS") true
            (Milo_library.Technology.mem (Util.cmos ()) m)
      | k -> Alcotest.failf "unexpected %s" (T.kind_name k))
    (D.comps res.Milo.Flow.optimized)

let test_micro_critic_feedback () =
  (* Figure 16: the critic converts the naive accumulator and the
     result is a smaller, faster design than the baseline. *)
  let design = Milo_designs.Suite.accumulator ~bits:8 () in
  let human = Milo.Flow.baseline_stats ~technology:Milo.Flow.Ecl design in
  let res =
    Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
      ~constraints:(Milo.Constraints.delay 5.0) design
  in
  Alcotest.(check bool) "counter rule applied" true
    (List.exists
       (fun (rule, _) -> rule = "adder-register-to-counter")
       res.Milo.Flow.micro_applications);
  Alcotest.(check bool) "area improved" true
    (res.Milo.Flow.final.Milo.Flow.area < human.Milo.Flow.area);
  Alcotest.(check bool) "delay improved" true
    (res.Milo.Flow.final.Milo.Flow.delay < human.Milo.Flow.delay)

let test_constraints_api () =
  let c = Milo.Constraints.make ~required_delay:5.0 ~max_area:100.0 () in
  Alcotest.(check bool) "meets" true
    (Milo.Constraints.meets c ~delay:4.0 ~area:90.0 ~power:50.0);
  Alcotest.(check bool) "fails delay" false
    (Milo.Constraints.meets c ~delay:6.0 ~area:90.0 ~power:50.0);
  Alcotest.(check bool) "fails area" false
    (Milo.Constraints.meets c ~delay:4.0 ~area:150.0 ~power:50.0)

let test_report () =
  let case = Milo_designs.Suite.design3 () in
  let human, res = run_case case in
  let row =
    Milo.Report.row_of_stats ~name:"x" ~human ~milo:res.Milo.Flow.final
  in
  Alcotest.(check bool) "row formats" true
    (String.length (Milo.Report.format_row row) > 0);
  Alcotest.(check bool) "improvement formula" true
    (Float.abs (Milo.Report.percent_improvement 10.0 5.0 -. 50.0) < 1e-9);
  let summary = Milo.Report.summary res in
  Alcotest.(check bool) "summary nonempty" true (String.length summary > 0)

let test_abadd_flow () =
  (* The paper's walkthrough example end to end. *)
  let design = Milo_designs.Abadd.design () in
  let baseline, _ = Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl design in
  let res =
    Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
      ~constraints:Milo_designs.Abadd.constraints design
  in
  let r =
    Milo_sim.Equiv.sequential ~cycles:64 ~runs:4 (Util.env_ecl ()) baseline
      (Util.env_ecl ()) res.Milo.Flow.optimized
  in
  Alcotest.(check bool) "abadd equivalent" true (Milo_sim.Equiv.is_equivalent r);
  Alcotest.(check bool) "abadd improves area" true
    (res.Milo.Flow.final.Milo.Flow.area
     < (Milo.Flow.baseline_stats ~technology:Milo.Flow.Ecl design).Milo.Flow.area)

let () =
  Alcotest.run "flow"
    [
      ( "figure-19",
        [
          Alcotest.test_case "equivalence" `Slow test_flow_equivalence;
          Alcotest.test_case "improvements" `Slow test_flow_improves_delay;
        ] );
      ( "technologies",
        [ Alcotest.test_case "CMOS retarget" `Quick test_cmos_flow ] );
      ( "micro-critic",
        [ Alcotest.test_case "figure 16 feedback" `Quick test_micro_critic_feedback ]
      );
      ( "api",
        [
          Alcotest.test_case "constraints" `Quick test_constraints_api;
          Alcotest.test_case "report" `Quick test_report;
        ] );
      ("abadd", [ Alcotest.test_case "walkthrough" `Quick test_abadd_flow ]);
    ]
