(* Journal suite — durability tier-1 gate.

   - record round-trip: every record type written through the framing
     survives recovery bit-exactly, and a design snapshot restores
     id-exactly (same structure, same hash, same counters);
   - crash fuzz: for every Figure 19 suite design, a journaled flow
     killed after each journal record and resumed from the file yields
     the same final design, guard statistics, budget consumption and
     report cost as the uninterrupted run;
   - replay: a clean run's journal replays with zero divergences under
     the Full guard; a tampered trajectory is pinpointed;
   - resume refusal: a journal without a committed checkpoint raises
     [Flow.Journal_error] instead of fabricating state. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module J = Milo_journal.Journal
module Flow = Milo.Flow
module Guard = Milo_guard.Guard
module Budget = Milo_rules.Budget
module Suite = Milo_designs.Suite
module Faults = Milo_faults

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

let temp_journal tag =
  Filename.temp_file ("milo_journal_" ^ tag ^ "_") ".mjl"

let cleanup path =
  if Sys.file_exists path then Sys.remove path;
  if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp")

(* --- Record round-trip -------------------------------------------------- *)

let sample_design () =
  let d = D.create "rt" in
  let a = D.add_port d "a" T.Input in
  let b = D.add_port d "b" T.Input in
  let y = D.add_port d "y" T.Output in
  let g = D.add_comp ~name:"weird \"name\"\n\ttab" d (T.Gate (T.And, 2)) in
  D.connect d g "A0" a;
  D.connect d g "A1" b;
  D.connect d g "Y" y;
  (* burn some ids so the counters are ahead of the live objects *)
  let scratch = D.add_comp d (T.Gate (T.Inv, 1)) in
  let n = D.new_net d in
  ignore n;
  D.remove_comp d scratch;
  d

let round_trip () =
  let path = temp_journal "roundtrip" in
  let d = sample_design () in
  let header =
    {
      J.h_design = "rt";
      h_hash = J.design_hash d;
      h_tech = "ecl";
      h_required = 5.5;
      h_arrivals = [ ("a", 0.5); ("b", 1.25) ];
      h_lint = "warn";
      h_incremental = true;
      h_guard = "sampled";
      h_certify = false;
      h_timeout = Some 12.5;
      h_max_steps = None;
      h_max_evals = Some 77;
      h_domains = Some 4;
    }
  in
  let records =
    [
      J.Stage "micro";
      J.Delta
        {
          d_stage = "micro";
          d_label = Some "some rule";
          d_hash = Some (J.design_hash d);
          d_entries =
            [
              D.E_add_comp (9, "c \"q\"", T.Gate (T.Nand, 3));
              D.E_connect (9, "I1", None, Some 2);
              D.E_connect (9, "I2", Some 2, None);
              D.E_add_net (12, "n12");
              D.E_remove_net (13, "gone", Some ("p", T.Output));
              D.E_set_kind (9, T.Gate (T.Nand, 3), T.Gate (T.Nor, 3));
              D.E_remove_comp (9, "c", T.Gate (T.Nor, 3), [ ("I1", 2) ]);
            ];
        };
      J.Checkpoint
        {
          J.ck_stage = "micro";
          ck_steps = 3;
          ck_evals = 41;
          ck_elapsed = 0.125;
          ck_guard = [| 1; 0; 17; 2; 3; 4 |];
          ck_tick = 9;
          ck_seen = [ "r1"; "r2 with space" ];
          ck_trace = 57;
          ck_quarantine = [ ("bad-rule", 2, "it raised: \"x\"", "raised") ];
          ck_micro = [ ("carry-select", "adder u1") ];
          ck_levels = [ ("sub", 4, 100.5, 90.25) ];
          ck_timing =
            Some
              {
                J.t_met = true;
                t_final = 4.75;
                t_steps = [ ("resize", "gate g3", 6.5, 4.75) ];
              };
          ck_design = d;
        };
      J.Finish
        {
          f_outcome = "complete";
          f_delay = 4.75;
          f_area = 90.25;
          f_power = 12.5;
          f_gates = 30;
          f_comps = 11;
        };
    ]
  in
  let w = J.create path header in
  List.iter
    (fun r -> match r with J.Checkpoint _ -> J.commit w r | r -> J.append w r)
    records;
  J.close w;
  let rc = J.recover path in
  if rc.J.r_truncated_bytes <> 0 then
    fail "round-trip: %d bytes reported torn on a clean journal"
      rc.J.r_truncated_bytes;
  (match rc.J.r_records with
  | J.Header h :: rest ->
      if h <> header then fail "round-trip: header changed";
      List.iter2
        (fun written recovered ->
          match (written, recovered) with
          | J.Checkpoint a, J.Checkpoint b ->
              if
                { a with J.ck_design = b.J.ck_design } <> b
                || not (D.equal_structure a.J.ck_design b.J.ck_design)
              then fail "round-trip: checkpoint changed";
              if J.design_hash a.J.ck_design <> J.design_hash b.J.ck_design
              then fail "round-trip: snapshot hash changed";
              if D.counters a.J.ck_design <> D.counters b.J.ck_design then
                fail "round-trip: snapshot counters changed"
          | a, b -> if a <> b then fail "round-trip: record changed")
        records rest
  | _ -> fail "round-trip: header not first");
  if not (J.finished rc) then fail "round-trip: Finish not detected";
  cleanup path;
  if !failures = 0 then Printf.printf "ok   record round-trip\n"

(* --- Crash fuzz --------------------------------------------------------- *)

let guard_counters (g : Guard.stats) =
  [
    g.Guard.stage_checks;
    g.Guard.stage_mismatches;
    g.Guard.rule_checks;
    g.Guard.rule_mismatches;
    g.Guard.rule_skipped;
    g.Guard.rule_certified;
  ]

let same_stats (a : Flow.stats) (b : Flow.stats) =
  a.Flow.delay = b.Flow.delay
  && a.Flow.area = b.Flow.area
  && a.Flow.power = b.Flow.power
  && a.Flow.gates = b.Flow.gates
  && a.Flow.comps = b.Flow.comps

let report_cost (r : Milo_optimizer.Logic_optimizer.report) =
  ( List.map
      (fun (e : Milo_optimizer.Logic_optimizer.report_entry) ->
        ( e.Milo_optimizer.Logic_optimizer.level_design,
          e.Milo_optimizer.Logic_optimizer.applications,
          e.Milo_optimizer.Logic_optimizer.area_before,
          e.Milo_optimizer.Logic_optimizer.area_after ))
      r.Milo_optimizer.Logic_optimizer.entries,
    match r.Milo_optimizer.Logic_optimizer.timing with
    | None -> None
    | Some t ->
        Some
          ( t.Milo_optimizer.Time_opt.met,
            t.Milo_optimizer.Time_opt.final_delay,
            List.length t.Milo_optimizer.Time_opt.steps ) )

let compare_results what (ref_res : Flow.result) (res : Flow.result) =
  if not (D.equal_structure ref_res.Flow.optimized res.Flow.optimized) then
    fail "%s: final design diverged" what;
  if not (same_stats ref_res.Flow.final res.Flow.final) then
    fail "%s: final stats diverged" what;
  if
    guard_counters ref_res.Flow.guard_stats
    <> guard_counters res.Flow.guard_stats
  then fail "%s: guard stats diverged" what;
  if ref_res.Flow.micro_applications <> res.Flow.micro_applications then
    fail "%s: micro applications diverged" what;
  if ref_res.Flow.quarantined <> res.Flow.quarantined then
    fail "%s: quarantine diverged" what;
  if report_cost ref_res.Flow.optimizer_report
     <> report_cost res.Flow.optimizer_report
  then fail "%s: optimizer report diverged" what;
  if
    ref_res.Flow.budget.Budget.steps_used <> res.Flow.budget.Budget.steps_used
    || ref_res.Flow.budget.Budget.evals_used
       <> res.Flow.budget.Budget.evals_used
  then
    fail "%s: budget consumption diverged (%d/%d vs %d/%d)" what
      ref_res.Flow.budget.Budget.steps_used
      ref_res.Flow.budget.Budget.evals_used res.Flow.budget.Budget.steps_used
      res.Flow.budget.Budget.evals_used

let crash_fuzz ?domains (case : Suite.case) =
  let name =
    match domains with
    | None -> case.Suite.case_name
    | Some n -> Printf.sprintf "%s@dom%d" case.Suite.case_name n
  in
  let path = temp_journal ("fuzz_" ^ name) in
  (* Reference: the uninterrupted journaled run. *)
  let reference =
    match
      Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
        ~guard:Guard.Sampled ~journal:path ?domains ~force_domains:true
        case.Suite.case_design
    with
    | Flow.Complete r -> r
    | Flow.Partial p ->
        fail "%s: reference run degraded at %s" name
          (Flow.stage_name p.Flow.failed_stage);
        raise Exit
    | exception e ->
        fail "%s: reference run raised %s" name (Printexc.to_string e);
        raise Exit
  in
  let total =
    let rc = J.recover path in
    if rc.J.r_truncated_bytes <> 0 then
      fail "%s: clean journal reports a torn tail" name;
    if not (J.finished rc) then fail "%s: clean journal lacks Finish" name;
    List.length rc.J.r_records
  in
  let kills = ref 0 in
  for n = 1 to total do
    let what = Printf.sprintf "%s killed after record %d" name n in
    match
      Faults.run_journaled_killed ~technology:Flow.Ecl
        ~constraints:case.Suite.constraints ~guard:Guard.Sampled ?domains
        ~force_domains:true ~journal:path n case.Suite.case_design
    with
    | Some (Flow.Complete r) ->
        (* The flow finished before writing n records — only possible
           when n exceeds the record count, i.e. never inside the
           loop's range except at the last record, where the kill fires
           after the file is already complete. *)
        compare_results what reference r
    | Some (Flow.Partial p) ->
        fail "%s: degraded at %s instead of crashing" what
          (Flow.stage_name p.Flow.failed_stage)
    | None -> (
        incr kills;
        (* The journal header carries the domain count, so resume
           re-enters under the same supervised-task semantics the
           killed run used. *)
        (match (domains, J.header (J.recover path)) with
        | Some n, Some h when h.J.h_domains <> Some n ->
            fail "%s: journal header lost the domain count" what
        | _ -> ());
        match Flow.resume ~force_domains:true path with
        | Flow.Complete r -> compare_results what reference r
        | Flow.Partial p ->
            fail "%s: resume degraded at %s (%s)" what
              (Flow.stage_name p.Flow.failed_stage)
              p.Flow.failure.Flow.err_message
        | exception Flow.Journal_error msg ->
            (* Killed before the first checkpoint committed: nothing to
               resume, and the error must say so. *)
            if n > 1 then fail "%s: resume refused: %s" what msg
        | exception e -> fail "%s: resume raised %s" what (Printexc.to_string e)
        )
  done;
  cleanup path;
  Printf.printf "ok   crash fuzz %-8s (%d records, %d kill points)\n" name
    total !kills

(* --- Replay ------------------------------------------------------------- *)

let replay_clean (case : Suite.case) =
  let name = case.Suite.case_name in
  let path = temp_journal ("replay_" ^ name) in
  (match
     Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
       ~guard:Guard.Sampled ~journal:path case.Suite.case_design
   with
  | Flow.Complete _ -> ()
  | Flow.Partial p ->
      fail "%s: replay reference degraded at %s" name
        (Flow.stage_name p.Flow.failed_stage)
  | exception e ->
      fail "%s: replay reference raised %s" name (Printexc.to_string e));
  (match Flow.replay path with
  | rep ->
      if rep.Flow.rep_divergences <> [] then begin
        fail "%s: clean replay found %d divergence(s)" name
          (List.length rep.Flow.rep_divergences);
        List.iter
          (fun d ->
            Printf.printf "     record %d [%s/%s]: %s\n" d.Flow.div_record
              d.Flow.div_stage d.Flow.div_kind d.Flow.div_detail)
          rep.Flow.rep_divergences
      end;
      if not rep.Flow.rep_finished then fail "%s: replay lost Finish" name;
      if rep.Flow.rep_truncated_bytes <> 0 then
        fail "%s: replay saw a torn tail on a clean journal" name;
      Printf.printf "ok   replay %-8s clean (%d deltas, %d checks)\n" name
        rep.Flow.rep_deltas rep.Flow.rep_checks
  | exception e -> fail "%s: replay raised %s" name (Printexc.to_string e));
  cleanup path

(* Tamper with a recorded trajectory: drop the last entry of the last
   non-empty delta.  The replayed design must then diverge — the
   post-delta hash no longer matches, and the next in-place checkpoint
   comparison fails. *)
let replay_tampered () =
  let case = List.hd (Suite.all ()) in
  let path = temp_journal "tamper" in
  (match
     Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
       ~journal:path case.Suite.case_design
   with
  | Flow.Complete _ -> ()
  | Flow.Partial _ | (exception _) -> fail "tamper: reference run failed");
  let rc = J.recover path in
  let last_delta =
    List.fold_left
      (fun (i, best) r ->
        match r with
        | J.Delta { d_entries = _ :: _; _ } -> (i + 1, Some i)
        | _ -> (i + 1, best))
      (0, None) rc.J.r_records
    |> snd
  in
  (match (last_delta, J.header rc) with
  | Some di, Some header ->
      let w = J.create path header in
      List.iteri
        (fun i r ->
          match r with
          | J.Header _ -> ()
          | J.Delta { d_stage; d_label; d_hash; d_entries } when i = di ->
              J.append w
                (J.Delta
                   {
                     d_stage;
                     d_label;
                     d_hash;
                     d_entries = List.rev (List.tl (List.rev d_entries));
                   })
          | J.Checkpoint _ | J.Finish _ -> J.commit w r
          | r -> J.append w r)
        rc.J.r_records;
      J.close w;
      (match Flow.replay path with
      | rep ->
          if rep.Flow.rep_divergences = [] then
            fail "tamper: dropped entry not detected"
          else
            Printf.printf "ok   replay pinpoints tampering (%d divergence(s))\n"
              (List.length rep.Flow.rep_divergences)
      | exception e -> fail "tamper: replay raised %s" (Printexc.to_string e))
  | _ -> fail "tamper: reference journal had no non-empty delta");
  cleanup path

(* --- Tracer sequence continuity across resume --------------------------- *)

(* Regression: a resumed run used to restart its tracer's event
   numbering at zero, misaligning resumed events (and trajectory
   records) from the journal they continue.  A checkpoint now records
   the tracer position and resume re-arms the fresh tracer from it, so
   the first resumed event continues the interrupted sequence. *)
let trace_seq_resume () =
  let case = List.hd (Suite.all ()) in
  let path = temp_journal "traceseq" in
  (* Find a kill point whose last committed checkpoint recorded a
     non-zero tracer position (the capture checkpoint commits before
     any event fires, so the very first kills record zero). *)
  let rec find n =
    if n > 64 then None
    else begin
      cleanup path;
      let t0 = Milo_trace.Trace.create () in
      match
        Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
          ~trace:t0 ~journal:path
          ~journal_fault:(Faults.kill_after n)
          case.Suite.case_design
      with
      | _ -> None (* completed before the kill fired *)
      | exception J.Crash _ -> (
          match J.last_checkpoint (J.recover path) with
          | Some ck when ck.J.ck_trace > 0 -> Some ck
          | Some _ | None -> find (n + 1))
    end
  in
  (match find 2 with
  | None -> fail "traceseq: no kill point left a traced checkpoint"
  | Some ck -> (
      let t1 = Milo_trace.Trace.create () in
      match Flow.resume ~trace:t1 path with
      | Flow.Complete _ -> (
          match Milo_trace.Trace.events t1 with
          | [] -> fail "traceseq: resumed run emitted no events"
          | e :: _ ->
              if e.Milo_trace.Trace.seq <> ck.J.ck_trace then
                fail
                  "traceseq: resumed events start at seq %d, checkpoint \
                   recorded %d"
                  e.Milo_trace.Trace.seq ck.J.ck_trace
              else
                Printf.printf
                  "ok   tracer seq continues at %d across resume\n"
                  ck.J.ck_trace)
      | Flow.Partial p ->
          fail "traceseq: resume degraded at %s"
            (Flow.stage_name p.Flow.failed_stage)
      | exception e ->
          fail "traceseq: resume raised %s" (Printexc.to_string e)));
  cleanup path

(* --- Resume refusal ------------------------------------------------------ *)

let resume_refusal () =
  (* A header-only journal (killed before the capture checkpoint
     committed) has nothing to resume. *)
  let path = temp_journal "refusal" in
  let d = sample_design () in
  let w =
    J.create path
      {
        J.h_design = "rt";
        h_hash = J.design_hash d;
        h_tech = "ecl";
        h_required = infinity;
        h_arrivals = [];
        h_lint = "off";
        h_incremental = true;
        h_guard = "off";
        h_certify = true;
        h_timeout = None;
        h_max_steps = None;
        h_max_evals = None;
        h_domains = None;
      }
  in
  J.close w;
  (match Flow.resume path with
  | _ -> fail "refusal: resumed a journal without a checkpoint"
  | exception Flow.Journal_error _ ->
      Printf.printf "ok   resume refuses a checkpoint-free journal\n"
  | exception e -> fail "refusal: unexpected %s" (Printexc.to_string e));
  cleanup path;
  (* An empty file recovers to zero records and resume refuses it the
     same way — recovery itself never raises on content. *)
  let path = temp_journal "empty" in
  let oc = open_out path in
  close_out oc;
  (match J.recover path with
  | rc ->
      if rc.J.r_records <> [] then fail "refusal: records in an empty file"
  | exception e ->
      fail "refusal: recovery raised on an empty file: %s"
        (Printexc.to_string e));
  (match Flow.resume path with
  | _ -> fail "refusal: resumed an empty file"
  | exception Flow.Journal_error _ ->
      Printf.printf "ok   resume refuses an empty journal\n"
  | exception e -> fail "refusal: unexpected %s" (Printexc.to_string e));
  cleanup path

let () =
  round_trip ();
  let cases = Suite.all () in
  List.iter (fun c -> try crash_fuzz c with Exit -> ()) cases;
  (* Kill+resume under a real (forced) 4-domain pool: the resumed
     trajectory must continue bit-identically to the uninterrupted
     parallel run's.  One case keeps the quadratic fuzz affordable. *)
  (try crash_fuzz ~domains:4 (List.hd cases) with Exit -> ());
  List.iter replay_clean cases;
  replay_tampered ();
  trace_seq_resume ();
  resume_refusal ();
  if !failures > 0 then begin
    Printf.printf "journal_suite: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "journal_suite: all clean"
