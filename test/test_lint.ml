(* Lint/DRC subsystem tests: a positive and a negative fixture per
   analysis pass, the rebased [Design.check] compatibility wrapper, the
   rule engine's debug-lint mode, and the Strict stage invariants over
   the Figure 19 suite. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Diag = Milo_lint.Diagnostic
module Lint = Milo_lint.Lint
module Rule = Milo_rules.Rule
module Engine = Milo_rules.Engine

let resolve () = Milo_library.Technology.resolver (Util.generic ())
let run ?rules d = Lint.run ~resolve:(resolve ()) ?rules d
let has rule diags = List.exists (fun d -> d.Diag.rule = rule) diags

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let find rule diags =
  match List.find_opt (fun d -> d.Diag.rule = rule) diags with
  | Some d -> d
  | None -> Alcotest.failf "no %s finding" rule

(* A0 -> INV -> Y: every pass should come back empty. *)
let clean_design () =
  let d = D.create "clean" in
  let a = D.add_port d "A" T.Input in
  let y = D.add_port d "Y" T.Output in
  let g = D.add_comp d (T.Macro "INV") in
  D.connect d g "A0" a;
  D.connect d g "Y" y;
  d

let test_clean () =
  let diags = run (clean_design ()) in
  Alcotest.(check int) "no findings" 0 (List.length diags)

let test_multiple_drivers () =
  let d = clean_design () in
  let a = D.add_port d "B" T.Input in
  let y = D.add_port d "Z" T.Output in
  let g1 = D.add_comp d (T.Macro "INV") in
  let g2 = D.add_comp d (T.Macro "INV") in
  D.connect d g1 "A0" a;
  D.connect d g2 "A0" a;
  D.connect d g1 "Y" y;
  D.connect d g2 "Y" y;
  let diag = find "multiple-drivers" (run d) in
  Alcotest.(check bool) "severity" true (diag.Diag.severity = Diag.Error);
  (* the input port counts as a driver too *)
  let d2 = D.create "portdrive" in
  let b = D.add_port d2 "B" T.Input in
  let g = D.add_comp d2 (T.Macro "INV") in
  D.connect d2 g "A0" (D.add_port d2 "A" T.Input);
  D.connect d2 g "Y" b;
  Alcotest.(check bool) "port+comp drivers" true
    (has "multiple-drivers" (run d2))

let test_comb_loop () =
  let d = D.create "loop" in
  let n1 = D.new_net d in
  let n2 = D.new_net d in
  let g1 = D.add_comp d (T.Macro "INV") in
  let g2 = D.add_comp d (T.Macro "INV") in
  D.connect d g1 "A0" n2;
  D.connect d g1 "Y" n1;
  D.connect d g2 "A0" n1;
  D.connect d g2 "Y" n2;
  Alcotest.(check bool) "loop found" true (has "comb-loop" (run d));
  (* classifying one of the components as sequential breaks the cycle *)
  let seq k = k = T.Macro "INV" in
  Alcotest.(check bool) "sequential breaks loop" false
    (has "comb-loop"
       (Lint.run ~resolve:(resolve ()) ~is_sequential:seq d))

let test_floating_input () =
  let d = D.create "float" in
  let a = D.add_port d "A" T.Input in
  let y = D.add_port d "Y" T.Output in
  let g = D.add_comp d (T.Gate (T.And, 2)) in
  D.connect d g "A1" a;
  D.connect d g "Y" y;
  Alcotest.(check bool) "A2 floating" true (has "floating-input" (run d));
  D.connect d g "A2" (D.add_port d "B" T.Input);
  Alcotest.(check bool) "connected" false (has "floating-input" (run d))

let reg_kind =
  T.Register
    { bits = 1; kind = T.Edge_triggered; fns = [ T.Load ]; controls = [];
      inverting = false }

let test_unconnected_clock () =
  let d = D.create "reg" in
  let c = D.add_comp d reg_kind in
  List.iter
    (fun (p, dir) -> if p <> "CLK" then D.connect d c p (D.add_port d p dir))
    (T.pins_of_kind reg_kind);
  Alcotest.(check bool) "clock open" true
    (has "unconnected-clock" (run d));
  D.connect d c "CLK" (D.add_port d "CLK" T.Input);
  Alcotest.(check bool) "clock tied" false
    (has "unconnected-clock" (run d))

let test_unknown_ref_and_pin () =
  let d = clean_design () in
  let bad = D.add_comp d (T.Macro "NOPE") in
  D.connect d bad "A0" (D.add_port d "B" T.Input);
  Alcotest.(check bool) "unknown macro" true (has "unknown-ref" (run d));
  let d2 = clean_design () in
  let g = D.add_comp d2 (T.Macro "INV") in
  D.connect d2 g "A0" (D.add_port d2 "B" T.Input);
  D.connect d2 g "Y" (D.add_port d2 "Z" T.Output);
  D.connect d2 g "ZZ" (D.new_net d2);
  Alcotest.(check bool) "unknown pin" true (has "unknown-pin" (run d2))

let test_undriven_and_dangling () =
  let d = clean_design () in
  let g = D.add_comp d (T.Gate (T.And, 2)) in
  D.connect d g "A1" (D.add_port d "B" T.Input);
  D.connect d g "A2" (D.new_net d);
  (* undriven, read *)
  D.connect d g "Y" (D.new_net d);
  (* driven, unread *)
  let diags = run d in
  Alcotest.(check bool) "undriven warning" true
    ((find "undriven-net" diags).Diag.severity = Diag.Warning);
  Alcotest.(check bool) "dangling warning" true
    ((find "dangling-output" diags).Diag.severity = Diag.Warning);
  (* dead logic: the AND cone is unreachable from any output port *)
  Alcotest.(check bool) "dead logic" true (has "dead-logic" diags)

let test_const_input () =
  let d = clean_design () in
  let k = D.add_comp d (T.Constant T.Vdd) in
  let n = D.new_net d in
  D.connect d k "Y" n;
  let g = D.add_comp d (T.Macro "INV") in
  D.connect d g "A0" n;
  D.connect d g "Y" (D.add_port d "Z" T.Output);
  Alcotest.(check bool) "const input info" true
    ((find "const-input" (run d)).Diag.severity = Diag.Info)

let test_net_consistency () =
  let d = clean_design () in
  let g = List.hd (D.comps d) in
  Hashtbl.replace g.D.conns "A0" 9999;
  Alcotest.(check bool) "dangling net ref" true
    (has "net-consistency" (run d))

(* --- the rebased Design.check ----------------------------------------- *)

let test_design_check () =
  let resolve = resolve () in
  Alcotest.(check bool) "clean ok" true
    (D.check ~resolve (clean_design ()) = Ok ());
  let d = D.create "bad" in
  let a = D.add_port d "A" T.Input in
  let g1 = D.add_comp d (T.Macro "INV") in
  let g2 = D.add_comp d (T.Macro "INV") in
  let n = D.new_net d in
  D.connect d g1 "A0" a;
  D.connect d g2 "A0" a;
  D.connect d g1 "Y" n;
  D.connect d g2 "Y" n;
  match D.check ~resolve d with
  | Ok () -> Alcotest.fail "double driver not caught"
  | Error msgs ->
      Alcotest.(check bool) "mentions multiple drivers" true
        (List.exists (contains ~sub:"multiple drivers") msgs)

(* --- engine debug-lint ------------------------------------------------- *)

(* A deliberately unsound rule: points the INV's output at a nonexistent
   net, off the books (no log entry), which net-consistency must catch. *)
let corrupt_rule =
  Rule.make ~name:"corrupt" ~cls:Rule.Cleanup
    ~find:(fun ctx ->
      List.filter_map
        (fun (c : D.comp) ->
          if Hashtbl.find_opt c.D.conns "Y" = Some 9999 then None
          else Some (Rule.site ~comps:[ c.D.id ] "corrupt"))
        (Rule.scan_comps ctx))
    ~apply:(fun ctx site _log ->
      match site.Rule.site_comps with
      | cid :: _ ->
          let c = D.comp ctx.Rule.design cid in
          Hashtbl.replace c.D.conns "Y" 9999;
          true
      | [] -> false)

let test_debug_lint () =
  let ctx () = Util.ctx_for (Util.generic ()) (clean_design ()) in
  (* off: the corruption goes unnoticed *)
  Engine.set_debug_lint false;
  Alcotest.(check bool) "fires" true
    (Engine.ops_cycle (ctx ()) (Engine.ops_create ()) [ corrupt_rule ]);
  Fun.protect
    ~finally:(fun () -> Engine.set_debug_lint false)
    (fun () ->
      Engine.set_debug_lint true;
      match Engine.ops_cycle (ctx ()) (Engine.ops_create ()) [ corrupt_rule ] with
      | (_ : bool) -> Alcotest.fail "Lint_violation expected"
      | exception Engine.Lint_violation (rule, _) ->
          Alcotest.(check string) "offending rule" "corrupt" rule)

(* --- stage invariants over the suite ----------------------------------- *)

let test_flow_strict () =
  List.iter
    (fun (c : Milo_designs.Suite.case) ->
      match
        Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
          ~constraints:c.Milo_designs.Suite.constraints ~lint:Lint.Strict
          c.Milo_designs.Suite.case_design
      with
      | res ->
          (* stages only appear in [lint_findings] when they found
             something, and the suite is expected to be clean *)
          List.iter
            (fun (stage, diags) ->
              Alcotest.(check int)
                (Printf.sprintf "design %s: no errors at %s"
                   c.Milo_designs.Suite.case_name stage)
                0
                (List.length (Lint.errors diags)))
            res.Milo.Flow.lint_findings
      | exception Lint.Lint_error r ->
          Alcotest.failf "design %s: %s" c.Milo_designs.Suite.case_name
            (Lint.report_to_string r))
    (Milo_designs.Suite.all ())

let test_lint_level_names () =
  Alcotest.(check bool) "roundtrip" true
    (List.for_all
       (fun l -> Lint.level_of_string (Lint.level_name l) = Some l)
       [ Lint.Off; Lint.Warn; Lint.Strict ]);
  Alcotest.(check bool) "unknown" true (Lint.level_of_string "bogus" = None)

let test_json () =
  let d = clean_design () in
  let g = D.add_comp d (T.Macro "NOPE") in
  D.connect d g "A0" (D.new_net d);
  let report =
    { Lint.design_name = D.name d; stage = Some "capture"; diags = run d }
  in
  let json = Lint.report_to_json report in
  Alcotest.(check bool) "mentions rule" true (contains ~sub:"unknown-ref" json)

let () =
  Alcotest.run "lint"
    [
      ( "passes",
        [
          Alcotest.test_case "clean design" `Quick test_clean;
          Alcotest.test_case "multiple drivers" `Quick test_multiple_drivers;
          Alcotest.test_case "comb loop" `Quick test_comb_loop;
          Alcotest.test_case "floating input" `Quick test_floating_input;
          Alcotest.test_case "unconnected clock" `Quick test_unconnected_clock;
          Alcotest.test_case "unknown ref/pin" `Quick test_unknown_ref_and_pin;
          Alcotest.test_case "undriven/dangling/dead" `Quick
            test_undriven_and_dangling;
          Alcotest.test_case "const input" `Quick test_const_input;
          Alcotest.test_case "net consistency" `Quick test_net_consistency;
        ] );
      ( "integration",
        [
          Alcotest.test_case "Design.check wrapper" `Quick test_design_check;
          Alcotest.test_case "engine debug lint" `Quick test_debug_lint;
          Alcotest.test_case "strict flow over suite" `Slow test_flow_strict;
          Alcotest.test_case "level names" `Quick test_lint_level_names;
          Alcotest.test_case "json report" `Quick test_json;
        ] );
    ]
