(* Rule engine tests: soundness of every critic rule (function
   preservation), apply-then-undo identity, OPS conflict resolution,
   SOCRATES lookahead, cleanup fixpoint. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module R = Milo_rules.Rule

let all_rules () =
  Milo_critic.Critic.logic @ Milo_critic.Critic.timing
  @ Milo_critic.Critic.area @ Milo_critic.Critic.power
  @ Milo_critic.Critic.electric @ Milo_critic.Critic.cleanup

(* Every rule application on mapped random logic preserves function. *)
let test_rule_soundness () =
  let env_ecl = Util.env_ecl () in
  List.iter
    (fun seed ->
      let src = Milo_designs.Workload.random_logic ~gates:30 ~seed () in
      let target = Milo_techmap.Table_map.ecl_target () in
      let reference = Milo_techmap.Table_map.map_design target src in
      List.iter
        (fun (r : R.t) ->
          let d = D.copy reference in
          let ctx = Util.ctx_for (Util.ecl ()) d in
          let rec exhaust n =
            if n > 25 then ()
            else
              let sites = r.R.find ctx in
              let fired =
                List.exists
                  (fun s ->
                    R.site_alive ctx s && r.R.apply ctx s (D.new_log ()))
                  sites
              in
              if fired then exhaust (n + 1)
          in
          exhaust 0;
          let res =
            Milo_sim.Equiv.combinational env_ecl reference env_ecl d
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s sound on seed %d: %s" r.R.rule_name seed
               (Format.asprintf "%a" Milo_sim.Equiv.pp_result res))
            true
            (Milo_sim.Equiv.is_equivalent res))
        (all_rules ()))
    [ 3; 11 ]

(* Apply + undo is the structural identity for every rule and site. *)
let test_apply_undo_identity () =
  let src = Milo_designs.Workload.random_logic ~gates:40 ~seed:7 () in
  let target = Milo_techmap.Table_map.ecl_target () in
  let d = Milo_techmap.Table_map.map_design target src in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let snapshot = D.copy d in
  List.iter
    (fun (r : R.t) ->
      List.iter
        (fun site ->
          let log = D.new_log () in
          ignore (r.R.apply ctx site log);
          D.undo d log;
          Alcotest.(check bool)
            (Printf.sprintf "%s undo identity (%s)" r.R.rule_name site.R.descr)
            true
            (D.equal_structure snapshot d))
        (r.R.find ctx))
    (all_rules ())

let test_micro_rules_sound () =
  (* Microarchitecture rules preserve sequential behaviour of the
     accumulator and datapath designs. *)
  let env = Util.env_gen () in
  List.iter
    (fun design ->
      List.iter
        (fun (r : R.t) ->
          let d = D.copy design in
          let ctx =
            R.make_context (Util.generic ())
              (Milo_compilers.Gate_comp.generic_set (Util.generic ()))
              d
          in
          let fired =
            List.exists
              (fun s -> r.R.apply ctx s (D.new_log ()))
              (r.R.find ctx)
          in
          if fired then begin
            let res = Milo_sim.Equiv.sequential ~cycles:48 ~runs:3 env design env d in
            Alcotest.(check bool)
              (Printf.sprintf "%s sound on %s: %s" r.R.rule_name (D.name design)
                 (Format.asprintf "%a" Milo_sim.Equiv.pp_result res))
              true
              (Milo_sim.Equiv.is_equivalent res)
          end)
        Milo_critic.Critic.micro)
    [
      Milo_designs.Suite.accumulator ~bits:4 ();
      Milo_designs.Suite.accumulator ~bits:8 ();
      (Milo_designs.Suite.design6 ()).Milo_designs.Suite.case_design;
      (Milo_designs.Suite.design7 ()).Milo_designs.Suite.case_design;
    ]

let test_figure14_rule_fires () =
  (* The headline microarchitecture rule: adder+register -> counter. *)
  let d = Milo_designs.Suite.accumulator ~bits:8 () in
  let ctx =
    R.make_context (Util.generic ())
      (Milo_compilers.Gate_comp.generic_set (Util.generic ()))
      d
  in
  let r = Milo_critic.Micro_critic.adder_register_to_counter in
  let sites = r.R.find ctx in
  Alcotest.(check int) "one site" 1 (List.length sites);
  Alcotest.(check bool) "applies" true
    (r.R.apply ctx (List.hd sites) (D.new_log ()));
  (* the design now contains a counter, no arith unit *)
  let has_counter =
    List.exists
      (fun (c : D.comp) ->
        match c.D.kind with T.Counter _ -> true | _ -> false)
      (D.comps d)
  in
  let has_adder =
    List.exists
      (fun (c : D.comp) ->
        match c.D.kind with T.Arith_unit _ -> true | _ -> false)
      (D.comps d)
  in
  Alcotest.(check bool) "counter present" true has_counter;
  Alcotest.(check bool) "adder gone" false has_adder;
  Util.check_equiv ~seq:true (Util.env_gen ())
    (Milo_designs.Suite.accumulator ~bits:8 ())
    (Util.env_gen ()) d

let test_ornor_share_fires () =
  (* An OR and a NOR over the same inputs fuse into the dual-output
     E_ORNOR macro. *)
  let d = D.create "dual" in
  let a = D.add_port d "A" T.Input in
  let b = D.add_port d "B" T.Input in
  let y = D.add_port d "Y" T.Output in
  let yn = D.add_port d "YN" T.Output in
  let og = D.add_comp d (T.Macro "E_OR2") in
  let ng = D.add_comp d (T.Macro "E_NOR2") in
  D.connect d og "A0" a;
  D.connect d og "A1" b;
  D.connect d og "Y" y;
  D.connect d ng "A0" b;
  D.connect d ng "A1" a;
  D.connect d ng "Y" yn;
  let reference = D.copy d in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let r =
    List.find (fun (r : R.t) -> r.R.rule_name = "ornor-share")
      Milo_critic.Critic.area
  in
  (match r.R.find ctx with
  | [ site ] ->
      Alcotest.(check bool) "applies" true (r.R.apply ctx site (D.new_log ()))
  | sites -> Alcotest.failf "expected one site, got %d" (List.length sites));
  Alcotest.(check int) "one macro left" 1 (D.num_comps d);
  (match (List.hd (D.comps d)).D.kind with
  | T.Macro "E_ORNOR2" -> ()
  | k -> Alcotest.failf "unexpected kind %s" (T.kind_name k));
  Util.check_equiv (Util.env_ecl ()) reference (Util.env_ecl ()) d

let test_cleanup_fixpoint () =
  (* A double-inverter chain plus dead gate cleans to nothing extra. *)
  let d = D.create "dirty" in
  let a = D.add_port d "A" T.Input in
  let y = D.add_port d "Y" T.Output in
  let i1 = D.add_comp d (T.Macro "E_INV") in
  let i2 = D.add_comp d (T.Macro "E_INV") in
  let dead = D.add_comp d (T.Macro "E_OR2") in
  let n1 = D.new_net d and n2 = D.new_net d in
  D.connect d i1 "A0" a;
  D.connect d i1 "Y" n1;
  D.connect d i2 "A0" n1;
  D.connect d i2 "Y" n2;
  let buf = D.add_comp d (T.Macro "E_BUF") in
  D.connect d buf "A0" n2;
  D.connect d buf "Y" y;
  D.connect d dead "A0" a;
  D.connect d dead "A1" a;
  let dn = D.new_net d in
  D.connect d dead "Y" dn;
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let log = D.new_log () in
  Milo_rules.Engine.run_cleanups ctx Milo_critic.Critic.cleanup log;
  (* everything but a driver for Y should be gone *)
  Alcotest.(check bool) "shrunk to <= 1 comp" true (D.num_comps d <= 1)

let test_ops_engine () =
  (* The strictly rule-based engine reaches quiescence and respects
     refraction (no infinite loop on a rule that reports success without
     changing anything useful). *)
  let src = Milo_designs.Workload.random_logic ~gates:25 ~seed:13 () in
  let target = Milo_techmap.Table_map.ecl_target () in
  let d = Milo_techmap.Table_map.map_design target src in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let cycles = Milo_rules.Engine.ops_run ctx (Milo_critic.Critic.logic @ Milo_critic.Critic.cleanup) in
  Alcotest.(check bool) "terminates" true (cycles < 2000);
  (* result still equivalent *)
  let reference = Milo_techmap.Table_map.map_design target src in
  Util.check_equiv (Util.env_ecl ()) reference (Util.env_ecl ()) d

let test_ops_incremental_matches_naive () =
  (* The Rete-style incremental engine reaches the same quiescent
     quality as the full-rescan engine, and stays equivalent. *)
  let src = Milo_designs.Workload.random_logic ~gates:80 ~seed:19 () in
  let target = Milo_techmap.Table_map.ecl_target () in
  let rules = Milo_critic.Critic.logic @ Milo_critic.Critic.cleanup in
  let run engine =
    let d = Milo_techmap.Table_map.map_design target src in
    let ctx = Util.ctx_for (Util.ecl ()) d in
    ignore (engine ctx rules);
    d
  in
  let naive = run (fun ctx r -> Milo_rules.Engine.ops_run ctx r) in
  let incr = run (fun ctx r -> Milo_rules.Engine.ops_run_incremental ctx r) in
  Util.check_equiv (Util.env_ecl ()) naive (Util.env_ecl ()) incr;
  let reference = Milo_techmap.Table_map.map_design target src in
  Util.check_equiv (Util.env_ecl ()) reference (Util.env_ecl ()) incr;
  (* both engines should reach comparable sizes *)
  Alcotest.(check bool) "similar quiescent size" true
    (abs (D.num_comps naive - D.num_comps incr)
     <= max 3 (D.num_comps naive / 5))

let test_ops_determinism () =
  (* Conflict-set ties (same recency, same specificity) break by the
     rule's position in the supplied list — stable across runs and
     reorderings, not hash order. *)
  let fired = ref [] in
  let mk name =
    R.make ~name ~cls:R.Logic
      ~find:(fun ctx ->
        List.map
          (fun (c : D.comp) -> R.site ~comps:[ c.D.id ] name)
          (R.scan_comps ctx))
      ~apply:(fun _ _ _ ->
        fired := name :: !fired;
        true)
  in
  let ra = mk "det-a" and rb = mk "det-b" and rc = mk "det-c" in
  let base = D.create "det" in
  let a = D.add_port base "A" T.Input in
  let y = D.add_port base "Y" T.Output in
  let i1 = D.add_comp base (T.Macro "E_INV") in
  let i2 = D.add_comp base (T.Macro "E_INV") in
  let n = D.new_net base in
  D.connect base i1 "A0" a;
  D.connect base i1 "Y" n;
  D.connect base i2 "A0" n;
  D.connect base i2 "Y" y;
  let run rules =
    fired := [];
    let d = D.copy base in
    let ctx = Util.ctx_for (Util.ecl ()) d in
    ignore (Milo_rules.Engine.ops_run ctx rules);
    List.rev !fired
  in
  let s1 = run [ ra; rb; rc ] in
  let s2 = run [ ra; rb; rc ] in
  Alcotest.(check (list string)) "identical firing sequences" s1 s2;
  (match s1 with
  | first :: _ -> Alcotest.(check string) "first-listed wins ties" "det-a" first
  | [] -> Alcotest.fail "nothing fired");
  match run [ rb; ra; rc ] with
  | first :: _ -> Alcotest.(check string) "order follows the list" "det-b" first
  | [] -> Alcotest.fail "nothing fired"

let test_cleanup_budget_accounting () =
  (* The cleanup fixpoint bound charges successful applications only:
     dead sites and refused applies don't burn it. *)
  Milo_rules.Engine.quarantine_reset ();
  let d = D.create "bud" in
  let a = D.add_port d "A" T.Input in
  let y = D.add_port d "Y" T.Output in
  let c = D.add_comp d (T.Macro "E_BUF") in
  D.connect d c "A0" a;
  D.connect d c "Y" y;
  let dead_calls = ref 0 and refusals = ref 0 and applies = ref 0 in
  let dead =
    R.make ~name:"bud-dead" ~cls:R.Cleanup
      ~find:(fun _ -> List.init 50 (fun i -> R.site ~comps:[ 1000 + i ] "dead"))
      ~apply:(fun _ _ _ ->
        incr dead_calls;
        false)
  in
  let refuse =
    R.make ~name:"bud-refuse" ~cls:R.Cleanup
      ~find:(fun _ -> [ R.site ~comps:[ c ] "refuse" ])
      ~apply:(fun _ _ _ ->
        incr refusals;
        false)
  in
  let count =
    R.make ~name:"bud-count" ~cls:R.Cleanup
      ~find:(fun _ -> [ R.site ~comps:[ c ] "count" ])
      ~apply:(fun _ _ _ ->
        incr applies;
        true)
  in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let log = D.new_log () in
  Milo_rules.Engine.run_cleanups ctx [ dead; refuse; count ] log;
  (* budget = 4 * (1 + num_comps) = 8; one successful application per
     pass, so the counting rule fires exactly 8 times regardless of the
     dead and refusing rules scanned ahead of it. *)
  Alcotest.(check int) "dead sites never applied" 0 !dead_calls;
  Alcotest.(check bool) "refusing rule was scanned" true (!refusals > 0);
  Alcotest.(check int) "applications = budget" 8 !applies

let test_search_exec_abort () =
  (* A winning sequence that goes stale mid-execution aborts at the
     first failed re-application instead of running later moves against
     a state they were never evaluated on. *)
  Milo_rules.Engine.quarantine_reset ();
  let d = D.create "stale" in
  let a = D.add_port d "A" T.Input in
  let y = D.add_port d "Y" T.Output in
  let c = D.add_comp d (T.Macro "E_INV") in
  D.connect d c "A0" a;
  D.connect d c "Y" y;
  (* step1 (INV -> BUF) succeeds exactly twice: once in the gain probe,
     once in the tree expansion.  Its re-application at execution time
     fails, so step2 — whose precondition is step1's edit — must not
     run. *)
  let step1_left = ref 2 in
  let step2_stale = ref false in
  let sites_of_kind kind name ctx =
    List.filter_map
      (fun (cp : D.comp) ->
        if cp.D.kind = T.Macro kind then Some (R.site ~comps:[ cp.D.id ] name)
        else None)
      (R.scan_comps ctx)
  in
  let step1 =
    R.make ~name:"stale-step1" ~cls:R.Logic
      ~find:(sites_of_kind "E_INV" "step1")
      ~apply:(fun ctx site log ->
        !step1_left > 0
        && begin
             decr step1_left;
             D.set_kind ~log ctx.R.design
               (List.hd site.R.site_comps)
               (T.Macro "E_BUF");
             true
           end)
  in
  let step2 =
    R.make ~name:"stale-step2" ~cls:R.Logic
      ~find:(sites_of_kind "E_BUF" "step2")
      ~apply:(fun ctx site log ->
        let cid = List.hd site.R.site_comps in
        (match D.comp_opt ctx.R.design cid with
        | Some cp when cp.D.kind = T.Macro "E_BUF" -> ()
        | _ ->
            step2_stale := true;
            failwith "stale-step2 executed on a stale state");
        D.remove_comp ~log ctx.R.design cid;
        true)
  in
  let cost () =
    if D.num_comps d = 0 then 5.0
    else
      match D.comp_opt d c with
      | Some { D.kind = T.Macro "E_BUF"; _ } -> 9.0
      | _ -> 10.0
  in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let params =
    { Milo_rules.Search.b = 2; d_max = 2; d_app = 2; n_hood = 0;
      delta_cost = 100.0 }
  in
  let gain =
    Milo_rules.Search.search ~params ctx ~cost ~cleanups:[] [ step1; step2 ]
  in
  Alcotest.(check bool) "search found the sequence" true (gain <> None);
  Alcotest.(check bool) "stale move never executed" false !step2_stale;
  Alcotest.(check bool) "step2 not quarantined" false
    (Milo_rules.Engine.is_quarantined "stale-step2");
  Alcotest.(check int) "design intact" 1 (D.num_comps d);
  match D.comp_opt d c with
  | Some cp ->
      Alcotest.(check bool) "kind restored" true (cp.D.kind = T.Macro "E_INV")
  | None -> Alcotest.fail "component gone"

let test_greedy_improves_cost () =
  let src = Milo_designs.Workload.random_logic ~gates:60 ~seed:21 () in
  let target = Milo_techmap.Table_map.ecl_target () in
  let d = Milo_techmap.Table_map.map_design target src in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let env name = Milo_library.Technology.find (Util.ecl ()) name in
  let cost () = Milo_estimate.Estimate.area env d in
  let before = cost () in
  let apps =
    Milo_rules.Engine.greedy_pass ctx ~cost
      ~cleanups:Milo_critic.Critic.cleanup
      (Milo_critic.Critic.logic @ Milo_critic.Critic.area)
  in
  let after = cost () in
  Alcotest.(check bool) "applications found" true (List.length apps > 0);
  Alcotest.(check bool) "cost decreased" true (after < before);
  List.iter
    (fun (a : Milo_rules.Engine.application) ->
      Alcotest.(check bool) "positive gains" true (a.Milo_rules.Engine.gain > 0.0))
    apps

let test_search_lookahead () =
  let src = Milo_designs.Workload.random_logic ~gates:40 ~seed:33 () in
  let target = Milo_techmap.Table_map.ecl_target () in
  let d = Milo_techmap.Table_map.map_design target src in
  let reference = D.copy d in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  let env name = Milo_library.Technology.find (Util.ecl ()) name in
  let cost () = Milo_estimate.Estimate.area env d in
  let stats = { Milo_rules.Search.nodes = 0; evals = 0 } in
  let gain =
    Milo_rules.Search.run
      ~params:{ Milo_rules.Search.b = 2; d_max = 2; d_app = 1; n_hood = 0; delta_cost = 5.0 }
      ~stats ctx ~cost ~cleanups:Milo_critic.Critic.cleanup
      (Milo_critic.Critic.logic @ Milo_critic.Critic.area)
  in
  Alcotest.(check bool) "non-negative gain" true (gain >= 0.0);
  Alcotest.(check bool) "search explored nodes" true (stats.Milo_rules.Search.nodes > 0);
  Util.check_equiv (Util.env_ecl ()) reference (Util.env_ecl ()) d

let test_neighbourhood () =
  let src = Milo_designs.Workload.random_logic ~gates:30 ~seed:5 () in
  let target = Milo_techmap.Table_map.ecl_target () in
  let d = Milo_techmap.Table_map.map_design target src in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  match D.comps d with
  | c :: _ ->
      let n0 = Milo_rules.Search.neighbourhood ctx [ c.D.id ] 0 in
      let n2 = Milo_rules.Search.neighbourhood ctx [ c.D.id ] 2 in
      Alcotest.(check int) "radius 0 = self" 1 (Hashtbl.length n0);
      Alcotest.(check bool) "radius 2 grows" true
        (Hashtbl.length n2 >= Hashtbl.length n0)
  | [] -> Alcotest.fail "empty design"

let test_metarule_params () =
  let p1 = Milo_rules.Metarules.params_for ~cls:R.Logic ~phase:Milo_rules.Metarules.Polishing in
  Alcotest.(check int) "powerful rules: no lookahead" 1 p1.Milo_rules.Search.d_max;
  let p2 =
    Milo_rules.Metarules.params_for ~cls:R.Area
      ~phase:Milo_rules.Metarules.Recovering_area
  in
  Alcotest.(check bool) "area rules: deeper" true (p2.Milo_rules.Search.d_max > 1);
  Alcotest.(check bool) "full > metarule depth" true
    (Milo_rules.Metarules.fixed_full.Milo_rules.Search.d_max
     >= p2.Milo_rules.Search.d_max)

let () =
  Alcotest.run "rules"
    [
      ( "soundness",
        [
          Alcotest.test_case "logic-level rules" `Slow test_rule_soundness;
          Alcotest.test_case "micro rules" `Slow test_micro_rules_sound;
          Alcotest.test_case "apply+undo identity" `Quick test_apply_undo_identity;
        ] );
      ( "figure-14",
        [ Alcotest.test_case "adder+register -> counter" `Quick test_figure14_rule_fires ]
      );
      ( "engine",
        [
          Alcotest.test_case "ornor dual-output share" `Quick
            test_ornor_share_fires;
          Alcotest.test_case "cleanup fixpoint" `Quick test_cleanup_fixpoint;
          Alcotest.test_case "ops recognize-act" `Quick test_ops_engine;
          Alcotest.test_case "incremental matches naive" `Quick
            test_ops_incremental_matches_naive;
          Alcotest.test_case "ops tie-break determinism" `Quick
            test_ops_determinism;
          Alcotest.test_case "cleanup budget accounting" `Quick
            test_cleanup_budget_accounting;
          Alcotest.test_case "greedy improves" `Quick test_greedy_improves_cost;
        ] );
      ( "search",
        [
          Alcotest.test_case "lookahead" `Quick test_search_lookahead;
          Alcotest.test_case "stale exec aborts" `Quick test_search_exec_abort;
          Alcotest.test_case "neighbourhood" `Quick test_neighbourhood;
          Alcotest.test_case "metarule params" `Quick test_metarule_params;
        ] );
    ]
