(* Strict-mode lint sweep — the lint subsystem's tier-1 regression gate.

   - every Figure 19 suite design (plus the accumulator) lints with no
     Error-severity findings as captured;
   - the full flow runs with Strict stage invariants for both
     technologies, so a compiler or rule regression that produces an
     ill-formed intermediate fails here, at the stage that broke it;
   - every parseable input under examples/ lints cleanly. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Lint = Milo_lint.Lint

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

let lint_env () =
  let techs =
    [
      Milo_library.Generic.get ();
      (Milo.Flow.target_of Milo.Flow.Ecl).Milo_techmap.Table_map.tech;
      (Milo.Flow.target_of Milo.Flow.Cmos).Milo_techmap.Table_map.tech;
    ]
  in
  let db = Milo_compilers.Database.create () in
  (Milo_compilers.Database.resolver db techs, Milo.Flow.seq_classifier techs)

let lint_design what design =
  let resolve, is_sequential = lint_env () in
  let diags = Lint.run ~resolve ~is_sequential design in
  match Lint.errors diags with
  | [] -> Printf.printf "ok   lint %s (%d findings)\n" what (List.length diags)
  | errs ->
      fail "lint %s: %d errors" what (List.length errs);
      List.iter
        (fun d -> Printf.printf "     %s\n" (Milo_lint.Diagnostic.to_string d))
        errs

let strict_flow tech tech_name (case : Milo_designs.Suite.case) =
  match
    Milo.Flow.run_exn ~technology:tech
      ~constraints:case.Milo_designs.Suite.constraints ~lint:Lint.Strict
      case.Milo_designs.Suite.case_design
  with
  | (_ : Milo.Flow.result) ->
      Printf.printf "ok   strict flow design %s (%s)\n"
        case.Milo_designs.Suite.case_name tech_name
  | exception Lint.Lint_error r ->
      fail "strict flow design %s (%s):\n%s" case.Milo_designs.Suite.case_name
        tech_name (Lint.report_to_string r)

(* --- examples/ inputs -------------------------------------------------- *)

let find_examples () =
  let rec go dir depth =
    if depth > 4 then None
    else
      let cand = Filename.concat dir "examples" in
      if Sys.file_exists cand && Sys.is_directory cand then Some cand
      else go (Filename.concat dir "..") (depth + 1)
  in
  go "." 0

let read_input path =
  if Filename.check_suffix path ".pla" then
    Some
      (Milo_pla.Pla.to_design
         ~name:(Filename.remove_extension (Filename.basename path))
         (Milo_pla.Pla.of_file path))
  else if Filename.check_suffix path ".eqn" then
    Some (Milo_pla.Equations.of_file path)
  else if Filename.check_suffix path ".vhd" || Filename.check_suffix path ".vhdl"
  then Some (Milo_vhdl.Elaborate.design_of_file path)
  else if Filename.check_suffix path ".mil" then
    Some (Milo_netlist.Parser.of_file path)
  else None

let lint_examples () =
  match find_examples () with
  | None -> Printf.printf "skip examples/ (directory not found)\n"
  | Some dir ->
      Array.iter
        (fun f ->
          let path = Filename.concat dir f in
          match read_input path with
          | None -> ()
          | Some design -> lint_design ("examples/" ^ f) design
          | exception e ->
              fail "examples/%s: cannot read (%s)" f (Printexc.to_string e))
        (Sys.readdir dir)

let () =
  let cases = Milo_designs.Suite.all () in
  List.iter
    (fun (c : Milo_designs.Suite.case) ->
      lint_design
        ("design " ^ c.Milo_designs.Suite.case_name)
        c.Milo_designs.Suite.case_design)
    cases;
  lint_design "accumulator" (Milo_designs.Suite.accumulator ());
  List.iter (strict_flow Milo.Flow.Ecl "ecl") cases;
  List.iter (strict_flow Milo.Flow.Cmos "cmos") cases;
  lint_examples ();
  if !failures > 0 then begin
    Printf.printf "lint_suite: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "lint_suite: all clean"
