(* Semantic-guard suite — the guard subsystem's tier-1 gate.

   - every planted miscompiling rule (wrong polarity, dropped fanin,
     swapped mux arms) applied under a [Full] rule guard is caught by
     the cone re-simulation, rolled back exactly, and quarantined with
     reason [Miscompiled] — never committed;
   - a sound rule (symmetric-input swap) passes the same check and is
     never quarantined (no false positives);
   - a greedy pass whose cost function rewards the miscompile still
     ends with the design untouched and equivalent to its snapshot;
   - the [Sampled] tier checks the first application of each rule, and
     skips checking entirely once the budget is exhausted;
   - off-the-books semantic corruption injected before the compile,
     techmap and optimize stages degrades a [Full]-guarded flow to
     [Partial] with a [Guard.Miscompile] error at that stage;
   - a [Full]-guarded flow over every suite design and every parseable
     examples/ input completes with zero stage or rule mismatches. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Rule = Milo_rules.Rule
module Engine = Milo_rules.Engine
module Budget = Milo_rules.Budget
module Guard = Milo_guard.Guard
module Flow = Milo.Flow
module Suite = Milo_designs.Suite
module Faults = Milo_faults

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

let generic_ctx design =
  let lib = Milo_library.Generic.get () in
  Rule.make_context lib (Milo_compilers.Gate_comp.generic_set lib) design

let generic_env () =
  Milo_sim.Simulator.env_of_techs [ Milo_library.Generic.get () ]

let generic_is_seq =
  Flow.seq_classifier [ Milo_library.Generic.get () ]

(* --- Tiny generic-macro designs for the planted rules ------------------- *)

(* A -> INV -> t -> INV -> Y: two polarity-rule sites. *)
let inv_design () =
  let d = D.create "inv2" in
  let a = D.add_port d "A" T.Input in
  let y = D.add_port d "Y" T.Output in
  let t = D.new_net ~name:"t" d in
  let i1 = D.add_comp ~name:"i1" d (T.Macro "INV") in
  let i2 = D.add_comp ~name:"i2" d (T.Macro "INV") in
  D.connect d i1 "A0" a;
  D.connect d i1 "Y" t;
  D.connect d i2 "A0" t;
  D.connect d i2 "Y" y;
  d

(* Y = AND2(A, B): a drop-fanin site (two inputs on distinct nets). *)
let and_design () =
  let d = D.create "and2" in
  let a = D.add_port d "A" T.Input in
  let b = D.add_port d "B" T.Input in
  let y = D.add_port d "Y" T.Output in
  let g = D.add_comp ~name:"g" d (T.Macro "AND2") in
  D.connect d g "A0" a;
  D.connect d g "A1" b;
  D.connect d g "Y" y;
  d

(* Y = MUX2(D0, D1, S): a swap-mux site. *)
let mux_design () =
  let d = D.create "mux" in
  let d0 = D.add_port d "D0IN" T.Input in
  let d1 = D.add_port d "D1IN" T.Input in
  let s = D.add_port d "S" T.Input in
  let y = D.add_port d "Y" T.Output in
  let m = D.add_comp ~name:"m" d (T.Macro "MUX2") in
  D.connect d m "D0" d0;
  D.connect d m "D1" d1;
  D.connect d m "S0" s;
  D.connect d m "Y" y;
  d

(* Y = MUX2(INV(AND2(A,B)), C, S): one site for each planted rule. *)
let workload_design () =
  let d = D.create "workload" in
  let a = D.add_port d "A" T.Input in
  let b = D.add_port d "B" T.Input in
  let c = D.add_port d "C" T.Input in
  let s = D.add_port d "S" T.Input in
  let y = D.add_port d "Y" T.Output in
  let t1 = D.new_net ~name:"t1" d in
  let t2 = D.new_net ~name:"t2" d in
  let g = D.add_comp ~name:"g" d (T.Macro "AND2") in
  let i = D.add_comp ~name:"i" d (T.Macro "INV") in
  let m = D.add_comp ~name:"m" d (T.Macro "MUX2") in
  D.connect d g "A0" a;
  D.connect d g "A1" b;
  D.connect d g "Y" t1;
  D.connect d i "A0" t1;
  D.connect d i "Y" t2;
  D.connect d m "D0" t2;
  D.connect d m "D1" c;
  D.connect d m "S0" s;
  D.connect d m "Y" y;
  d

(* Symmetric-input swap on an AND2: restructures the site (so the guard
   does re-check it) without changing its function. *)
let sound_swap_rule () =
  let arms ctx (c : D.comp) =
    match c.D.kind with
    | T.Macro "AND2" -> (
        match
          ( D.connection ctx.Rule.design c.D.id "A0",
            D.connection ctx.Rule.design c.D.id "A1" )
        with
        | Some n0, Some n1 when n0 <> n1 -> Some (n0, n1)
        | _ -> None)
    | _ -> None
  in
  Rule.make ~name:"sound-swap" ~cls:Rule.Logic
    ~find:(fun ctx ->
      List.filter_map
        (fun (c : D.comp) ->
          match arms ctx c with
          | Some _ -> Some (Rule.site ~comps:[ c.D.id ] "symmetric swap")
          | None -> None)
        (Rule.scan_comps ctx))
    ~apply:(fun ctx site log ->
      match site.Rule.site_comps with
      | cid :: _ -> (
          match D.comp_opt ctx.Rule.design cid with
          | Some c -> (
              match arms ctx c with
              | Some (n0, n1) ->
                  D.connect ~log ctx.Rule.design cid "A0" n1;
                  D.connect ~log ctx.Rule.design cid "A1" n0;
                  true
              | None -> false)
          | None -> false)
      | [] -> false)

let reason_str = function
  | Some r -> Milo_rules.Engine.reason_name r
  | None -> "(not quarantined)"

(* --- Direct guarded_apply: every planted rule caught -------------------- *)

let direct_catch name make_rule make_design =
  Engine.quarantine_reset ();
  let d = make_design () in
  let before = D.copy d in
  let ctx = generic_ctx d in
  Engine.set_rule_guard Guard.Full;
  let r = make_rule () in
  (match r.Rule.find ctx with
  | [] -> fail "%s: planted rule found no site" name
  | site :: _ ->
      let log = D.new_log () in
      let ok = Engine.guarded_apply ctx r site log in
      if ok then fail "%s: miscompile committed" name;
      if !log <> [] then fail "%s: edits leaked into the caller's log" name;
      if not (D.equal_structure before d) then
        fail "%s: design not reverted after miscompile" name;
      if not (Engine.is_quarantined r.Rule.rule_name) then
        fail "%s: rule not quarantined" name;
      (match List.assoc_opt r.Rule.rule_name (Engine.quarantined_reasons ()) with
      | Some Engine.Miscompiled -> ()
      | other -> fail "%s: quarantine reason %s, expected miscompiled" name
                   (reason_str other));
      (match Engine.rule_guard_stats () with
      | Some s when s.Guard.rule_mismatches >= 1 ->
          Printf.printf "ok   %s caught, reverted, quarantined [miscompiled]\n"
            name
      | Some _ -> fail "%s: rule_mismatches counter not bumped" name
      | None -> fail "%s: guard stats vanished" name));
  Engine.clear_rule_guard ();
  Engine.quarantine_reset ()

(* A sound restructuring passes the identical check: no false positive. *)
let sound_rule_passes () =
  Engine.quarantine_reset ();
  let d = and_design () in
  let before = D.copy d in
  let ctx = generic_ctx d in
  Engine.set_rule_guard Guard.Full;
  let r = sound_swap_rule () in
  (match r.Rule.find ctx with
  | [] -> fail "sound swap: no site found"
  | site :: _ ->
      let log = D.new_log () in
      let ok = Engine.guarded_apply ctx r site log in
      if not ok then fail "sound swap: rejected by the guard";
      if Engine.is_quarantined r.Rule.rule_name then
        fail "sound swap: quarantined (false positive)";
      if D.equal_structure before d then
        fail "sound swap: apply had no effect (vacuous test)";
      (match
         Guard.check ~is_seq:generic_is_seq (generic_env ()) before
           (generic_env ()) d
       with
      | None -> Printf.printf "ok   sound rule passes under full guard\n"
      | Some div ->
          fail "sound swap: design diverged (%s)" (Guard.describe div)));
  Engine.clear_rule_guard ();
  Engine.quarantine_reset ()

(* --- Greedy pass: a rewarded miscompile still cannot land --------------- *)

let pass_blocks_miscompile () =
  Engine.quarantine_reset ();
  let d = inv_design () in
  let before = D.copy d in
  let ctx = generic_ctx d in
  Engine.set_rule_guard Guard.Full;
  (* INV costs more than BUF here, so un-guarded the polarity fault
     would look like a strict improvement at every inverter. *)
  let cost () =
    List.fold_left
      (fun acc (c : D.comp) ->
        acc +. (match c.D.kind with T.Macro "INV" -> 2.0 | _ -> 1.0))
      0.0 (D.comps d)
  in
  let apps =
    Engine.greedy_pass ctx ~cost ~cleanups:[] [ Faults.polarity_rule () ]
  in
  if apps <> [] then fail "greedy pass: miscompiling rule committed";
  if not (D.equal_structure before d) then
    fail "greedy pass: design mutated by a fully-guarded miscompile";
  (match List.assoc_opt "fault-polarity" (Engine.quarantined_reasons ()) with
  | Some Engine.Miscompiled ->
      Printf.printf "ok   greedy pass blocked the rewarded miscompile\n"
  | other -> fail "greedy pass: quarantine reason %s, expected miscompiled"
               (reason_str other));
  Engine.clear_rule_guard ();
  Engine.quarantine_reset ()

(* All three planted rules loose on one workload: nothing lands, the
   design stays equivalent to its snapshot, all three quarantined. *)
let workload_stays_equivalent () =
  Engine.quarantine_reset ();
  let d = workload_design () in
  let before = D.copy d in
  let ctx = generic_ctx d in
  Engine.set_rule_guard Guard.Full;
  let cost () = float_of_int (D.num_comps d) in
  let apps =
    Engine.greedy_pass ctx ~cost ~cleanups:[] (Faults.miscompiling_rules ())
  in
  if apps <> [] then
    fail "workload: %d miscompiling application(s) committed" (List.length apps);
  List.iter
    (fun name ->
      match List.assoc_opt name (Engine.quarantined_reasons ()) with
      | Some Engine.Miscompiled -> ()
      | other -> fail "workload: %s reason %s, expected miscompiled" name
                   (reason_str other))
    [ "fault-polarity"; "fault-drop-fanin"; "fault-swap-mux" ];
  (match
     Guard.check ~is_seq:generic_is_seq (generic_env ()) before
       (generic_env ()) d
   with
  | None -> Printf.printf "ok   workload equivalent after faulted pass\n"
  | Some div -> fail "workload: diverged from snapshot (%s)"
                  (Guard.describe div));
  Engine.clear_rule_guard ();
  Engine.quarantine_reset ()

(* --- Sampled tier ------------------------------------------------------- *)

(* The first application of each rule is always checked: a
   systematically wrong rule is caught immediately even when sampling. *)
let sampled_first_application_checked () =
  Engine.quarantine_reset ();
  let d = inv_design () in
  let before = D.copy d in
  let ctx = generic_ctx d in
  Engine.set_rule_guard Guard.Sampled;
  let r = Faults.polarity_rule () in
  (match r.Rule.find ctx with
  | [] -> fail "sampled: no site found"
  | site :: _ ->
      let ok = Engine.guarded_apply ctx r site (D.new_log ()) in
      if ok then fail "sampled: first miscompile committed";
      if not (D.equal_structure before d) then
        fail "sampled: design not reverted";
      if not (Engine.is_quarantined r.Rule.rule_name) then
        fail "sampled: rule not quarantined on first application"
      else Printf.printf "ok   sampled tier checks the first application\n");
  Engine.clear_rule_guard ();
  Engine.quarantine_reset ()

(* An exhausted budget turns the sampled tier off: zero checking
   overhead, the apply commits (and is later caught by a stage guard). *)
let sampled_respects_budget () =
  Engine.quarantine_reset ();
  let d = inv_design () in
  let ctx = generic_ctx d in
  Engine.set_rule_guard ~budget:(Faults.exhausted_budget ()) Guard.Sampled;
  let r = Faults.polarity_rule () in
  (match r.Rule.find ctx with
  | [] -> fail "sampled budget: no site found"
  | site :: _ ->
      let ok = Engine.guarded_apply ctx r site (D.new_log ()) in
      if not ok then fail "sampled budget: apply blocked despite exhaustion";
      if Engine.is_quarantined r.Rule.rule_name then
        fail "sampled budget: quarantined without checking";
      (match Engine.rule_guard_stats () with
      | Some s when s.Guard.rule_skipped >= 1 && s.Guard.rule_checks = 0 ->
          Printf.printf "ok   sampled tier skips when the budget is gone\n"
      | Some s -> fail "sampled budget: checks=%d skipped=%d, expected 0/>=1"
                    s.Guard.rule_checks s.Guard.rule_skipped
      | None -> fail "sampled budget: guard stats vanished"));
  Engine.clear_rule_guard ();
  Engine.quarantine_reset ()

(* --- Stage guards: semantic corruption degrades to Partial -------------- *)

let stage_label = function
  | Flow.Compile -> "compile"
  | Flow.Techmap -> "techmap"
  | Flow.Optimize -> "optimize"
  | s -> Flow.stage_name s

let corruptions_caught = ref 0

let stage_guard_catch (case : Suite.case) at =
  let what =
    Printf.sprintf "design %s, semantic corruption at %s"
      case.Suite.case_name (Flow.stage_name at)
  in
  let hooks, corrupted = Faults.semantic_corrupting_hooks ~at () in
  match
    Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints ~hooks
      ~guard:Guard.Full case.Suite.case_design
  with
  | exception e -> fail "%s: uncaught %s" what (Printexc.to_string e)
  | outcome -> (
      if not !corrupted then
        (* No corruption site in this design at this stage: nothing to
           catch, the run must simply stay healthy. *)
        match outcome with
        | Flow.Complete _ -> ()
        | Flow.Partial p ->
            fail "%s: uncorrupted run degraded at %s (%s)" what
              (Flow.stage_name p.Flow.failed_stage)
              p.Flow.failure.Flow.err_message
      else
        match outcome with
        | Flow.Complete _ -> fail "%s: corruption went undetected" what
        | Flow.Partial p -> (
            if p.Flow.failed_stage <> at then
              fail "%s: caught at %s, expected %s" what
                (Flow.stage_name p.Flow.failed_stage)
                (Flow.stage_name at);
            match p.Flow.failure.Flow.err_exn with
            | Guard.Miscompile { guard_stage; divergence } ->
                incr corruptions_caught;
                if guard_stage <> stage_label at then
                  fail "%s: guard stage %S, expected %S" what guard_stage
                    (stage_label at);
                if divergence.Guard.div_ports = [] then
                  fail "%s: divergence carries no ports" what;
                Printf.printf "ok   %s -> %s\n" what
                  p.Flow.failure.Flow.err_message
            | e ->
                fail "%s: degraded with %s, expected a miscompile" what
                  (Printexc.to_string e)))

(* --- Full-guard sweep: zero mismatches on sound flows ------------------- *)

let clean_full_flow what constraints design =
  match
    Flow.run ~technology:Flow.Ecl ~constraints ~guard:Guard.Full design
  with
  | exception e -> fail "%s: uncaught %s" what (Printexc.to_string e)
  | Flow.Partial p ->
      fail "%s: full-guard flow degraded at %s (%s)" what
        (Flow.stage_name p.Flow.failed_stage)
        p.Flow.failure.Flow.err_message
  | Flow.Complete res ->
      let g = res.Flow.guard_stats in
      if g.Guard.stage_mismatches <> 0 || g.Guard.rule_mismatches <> 0 then
        fail "%s: %d stage / %d rule mismatches on a sound flow" what
          g.Guard.stage_mismatches g.Guard.rule_mismatches
      else if g.Guard.stage_checks < 3 then
        fail "%s: only %d stage checks ran, expected >= 3" what
          g.Guard.stage_checks
      else if res.Flow.quarantined <> [] then
        fail "%s: %d rule(s) quarantined on a sound flow" what
          (List.length res.Flow.quarantined)
      else
        Printf.printf
          "ok   %s full-guard clean (%d stage, %d rule checks, %d skipped)\n"
          what g.Guard.stage_checks g.Guard.rule_checks g.Guard.rule_skipped

(* examples/ inputs, as in lint_suite. *)
let find_examples () =
  let rec go dir depth =
    if depth > 4 then None
    else
      let cand = Filename.concat dir "examples" in
      if Sys.file_exists cand && Sys.is_directory cand then Some cand
      else go (Filename.concat dir "..") (depth + 1)
  in
  go "." 0

let read_input path =
  if Filename.check_suffix path ".pla" then
    Some
      (Milo_pla.Pla.to_design
         ~name:(Filename.remove_extension (Filename.basename path))
         (Milo_pla.Pla.of_file path))
  else if Filename.check_suffix path ".eqn" then
    Some (Milo_pla.Equations.of_file path)
  else if Filename.check_suffix path ".vhd" || Filename.check_suffix path ".vhdl"
  then Some (Milo_vhdl.Elaborate.design_of_file path)
  else if Filename.check_suffix path ".mil" then
    Some (Milo_netlist.Parser.of_file path)
  else None

let sweep_examples () =
  match find_examples () with
  | None -> Printf.printf "skip examples/ (directory not found)\n"
  | Some dir ->
      Array.iter
        (fun f ->
          let path = Filename.concat dir f in
          match read_input path with
          | None -> ()
          | Some design ->
              clean_full_flow ("examples/" ^ f) Milo.Constraints.none design
          | exception e ->
              fail "examples/%s: cannot read (%s)" f (Printexc.to_string e))
        (Sys.readdir dir)

let () =
  direct_catch "polarity fault" Faults.polarity_rule inv_design;
  direct_catch "drop-fanin fault" Faults.drop_fanin_rule and_design;
  direct_catch "swap-mux fault" Faults.swap_mux_rule mux_design;
  sound_rule_passes ();
  pass_blocks_miscompile ();
  workload_stays_equivalent ();
  sampled_first_application_checked ();
  sampled_respects_budget ();
  let cases = Suite.all () in
  let stages = [ Flow.Compile; Flow.Techmap; Flow.Optimize ] in
  List.iter (fun c -> List.iter (stage_guard_catch c) stages) cases;
  if !corruptions_caught < 3 then
    fail "only %d corruption(s) had an injection site; sweep is too weak"
      !corruptions_caught;
  List.iter
    (fun (c : Suite.case) ->
      clean_full_flow
        ("design " ^ c.Suite.case_name)
        c.Suite.constraints c.Suite.case_design)
    cases;
  sweep_examples ();
  if !failures > 0 then begin
    Printf.printf "guard_suite: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "guard_suite: all clean"
