(* LSS baseline flow tests: level translators preserve function, the
   naive NAND/NOR translation is cleaned by the level optimizer, and the
   full four-level flow stays equivalent. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let test_to_and_or () =
  let case = Milo_designs.Suite.design5 () in
  let db = Milo_compilers.Database.create () in
  let lib = Util.generic () in
  let expanded =
    Milo_compilers.Compile.expand_design db lib case.Milo_designs.Suite.case_design
  in
  let flat = Milo_compilers.Database.flatten db expanded in
  let and_or = Milo_baselines.Lss.to_and_or flat in
  (* only AND/OR/INV/BUF gates and constants remain *)
  List.iter
    (fun (c : D.comp) ->
      match c.D.kind with
      | T.Macro m ->
          let mac = Milo_library.Technology.find lib m in
          let ok =
            (match Milo_critic.Gate_shape.of_macro mac with
            | Some { Milo_critic.Gate_shape.fn = T.And | T.Or | T.Inv | T.Buf; _ } ->
                true
            | Some _ -> false
            | None -> Milo_critic.Gate_shape.is_const mac <> None)
            || Milo_library.Macro.is_sequential mac
          in
          Alcotest.(check bool) (m ^ " allowed at AND/OR level") true ok
      | k -> Alcotest.failf "unexpected %s" (T.kind_name k))
    (D.comps and_or);
  Util.check_equiv (Util.env_gen ()) flat (Util.env_gen ()) and_or

let test_to_nand_nor_cleanup () =
  let case = Milo_designs.Suite.design1 () in
  let db = Milo_compilers.Database.create () in
  let lib = Util.generic () in
  let expanded =
    Milo_compilers.Compile.expand_design db lib case.Milo_designs.Suite.case_design
  in
  let flat = Milo_compilers.Database.flatten db expanded in
  let and_or = Milo_baselines.Lss.to_and_or flat in
  let nand_nor = Milo_baselines.Lss.to_nand_nor and_or in
  Util.check_equiv (Util.env_gen ()) and_or (Util.env_gen ()) nand_nor;
  (* the naive translation added inverters... *)
  let invs d =
    List.length
      (List.filter
         (fun (c : D.comp) ->
           match c.D.kind with T.Macro "INV" -> true | _ -> false)
         (D.comps d))
  in
  Alcotest.(check bool) "naive translation adds inverters" true
    (invs nand_nor > invs and_or);
  (* ...and the level optimizer removes the debris *)
  let before = D.num_comps nand_nor in
  let ctx = Util.ctx_for lib nand_nor in
  ignore
    (Milo_rules.Engine.ops_run_incremental ctx
       (Milo_critic.Critic.logic @ Milo_critic.Critic.cleanup));
  Alcotest.(check bool) "cleanup shrinks the level" true
    (D.num_comps nand_nor < before);
  Util.check_equiv (Util.env_gen ()) and_or (Util.env_gen ()) nand_nor

let test_full_lss_flow () =
  List.iter
    (fun (case : Milo_designs.Suite.case) ->
      let db = Milo_compilers.Database.create () in
      let design = case.Milo_designs.Suite.case_design in
      let baseline, _ = Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl design in
      let lss, reports = Milo_baselines.Lss.optimize db design in
      Alcotest.(check int) "four levels" 4 (List.length reports);
      let r =
        Milo_sim.Equiv.sequential ~cycles:48 ~runs:3 (Util.env_ecl ()) baseline
          (Util.env_ecl ()) lss
      in
      Alcotest.(check bool)
        (Printf.sprintf "design %s LSS equivalent: %s"
           case.Milo_designs.Suite.case_name
           (Format.asprintf "%a" Milo_sim.Equiv.pp_result r))
        true
        (Milo_sim.Equiv.is_equivalent r))
    [ Milo_designs.Suite.design1 (); Milo_designs.Suite.design5 ();
      Milo_designs.Suite.design8 () ]

let test_milo_beats_lss_on_structured () =
  (* The paper's core argument: gate-level decomposition loses the MSI
     macros; MILO retains them and wins on datapath-style designs. *)
  let case = Milo_designs.Suite.design6 () in
  let design = case.Milo_designs.Suite.case_design in
  let db = Milo_compilers.Database.create () in
  let lss, _ = Milo_baselines.Lss.optimize db design in
  let milo =
    (Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
       ~constraints:case.Milo_designs.Suite.constraints design)
      .Milo.Flow.optimized
  in
  let env name = Milo_library.Technology.find (Util.ecl ()) name in
  Alcotest.(check bool) "MILO area < LSS area on the datapath" true
    (Milo_estimate.Estimate.area env milo < Milo_estimate.Estimate.area env lss)

let () =
  Alcotest.run "baselines"
    [
      ( "lss-levels",
        [
          Alcotest.test_case "AND/OR translator" `Quick test_to_and_or;
          Alcotest.test_case "NAND/NOR translator + cleanup" `Quick
            test_to_nand_nor_cleanup;
        ] );
      ( "lss-flow",
        [
          Alcotest.test_case "equivalence" `Slow test_full_lss_flow;
          Alcotest.test_case "MILO beats LSS on datapaths" `Quick
            test_milo_beats_lss_on_structured;
        ] );
    ]
