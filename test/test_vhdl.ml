(* VHDL front-end tests: lexing, parsing, elaboration, equivalence of
   VHDL-entered designs against builder-entered ones, and the full flow
   from VHDL source. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let timer_src =
  {|
-- an 8-bit timer, structurally
entity timer8 is
  port ( clk  : in bit;
         rst  : in bit;
         en   : in bit;
         lim  : in bit_vector(7 downto 0);
         q    : out bit_vector(7 downto 0);
         hit  : out bit );
end timer8;

architecture structural of timer8 is
  signal count : bit_vector(7 downto 0);
begin
  cnt0 : counter generic map (bits => 8, fns => "up", controls => "reset,enable")
         port map (clk => clk, rst => rst, en => en, q => count, cout => open);
  cmp0 : comparator generic map (bits => 8, fns => "eq")
         port map (a => count, b => lim, eq => hit);
  q <= count;
end structural;
|}

let alu_src =
  {|
entity alu4 is
  port ( a : in bit_vector(3 downto 0);
         b : in bit_vector(3 downto 0);
         f : in bit;
         cin : in bit;
         s : out bit_vector(3 downto 0);
         cout : out bit );
end alu4;

architecture rtl of alu4 is
begin
  u0 : arith_unit generic map (bits => 4, fns => "add,sub", mode => "ripple")
       port map (a => a, b => b, f => f, cin => cin, s => s, cout => cout);
end rtl;
|}

let gates_src =
  {|
entity gates is
  port ( a : in bit; b : in bit; c : in bit;
         x : out bit; y : out bit; z : out bit );
end gates;

architecture rtl of gates is
  signal t : bit;
begin
  t <= a and b;
  x <= t or c;
  y <= not t;
  z <= a xor b xor c;
end rtl;
|}

let test_parse_timer () =
  let u = Milo_vhdl.Parser.of_string timer_src in
  Alcotest.(check string) "entity name" "timer8" u.Milo_vhdl.Ast.entity_name;
  Alcotest.(check int) "ports" 6 (List.length u.Milo_vhdl.Ast.ports);
  Alcotest.(check int) "signals" 1
    (List.length u.Milo_vhdl.Ast.architecture.Milo_vhdl.Ast.signals);
  Alcotest.(check int) "statements" 3
    (List.length u.Milo_vhdl.Ast.architecture.Milo_vhdl.Ast.statements)

let test_elaborate_timer () =
  let d = Milo_vhdl.Elaborate.design_of_string timer_src in
  (* 8+8+1 vector bits plus scalars -> ports count as scalar bits *)
  Alcotest.(check int) "scalar ports" 20 (List.length (D.ports d));
  let cnt = D.find_comp d "cnt0" in
  (match cnt.D.kind with
  | T.Counter { bits = 8; fns = [ T.Count_up ]; controls } ->
      Alcotest.(check bool) "controls" true
        (List.mem T.Reset controls && List.mem T.Enable controls)
  | k -> Alcotest.failf "wrong kind %s" (T.kind_name k));
  let resolve kind nm =
    match kind with
    | T.Macro _ ->
        (Milo_library.Technology.find (Util.generic ()) nm).Milo_library.Macro.pins
    | _ -> T.pins_of_kind kind
  in
  match D.check ~resolve d with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "check: %s" (String.concat "; " msgs)

let test_vhdl_equals_builder () =
  (* The VHDL ALU behaves exactly like the directly-built micro
     component. *)
  let vhdl = Milo_vhdl.Elaborate.design_of_string alu_src in
  let kind = T.Arith_unit { bits = 4; fns = [ T.Add; T.Sub ]; mode = T.Ripple } in
  let reference = Util.micro_reference kind in
  (* port names differ (a0 vs A0): compare through simulation with
     matching vectors *)
  let env = Util.env_gen () in
  let s1 = Milo_sim.Simulator.create env vhdl in
  let s2 = Milo_sim.Simulator.create env reference in
  let rng = Random.State.make [| 99 |] in
  for _ = 1 to 200 do
    let bits = List.init 4 (fun _ -> Random.State.bool rng) in
    let bits2 = List.init 4 (fun _ -> Random.State.bool rng) in
    let f = Random.State.bool rng and cin = Random.State.bool rng in
    let ins1 =
      List.mapi (fun i v -> (Printf.sprintf "a%d" i, v)) bits
      @ List.mapi (fun i v -> (Printf.sprintf "b%d" i, v)) bits2
      @ [ ("f", f); ("cin", cin) ]
    in
    let ins2 =
      List.mapi (fun i v -> (Printf.sprintf "A%d" i, v)) bits
      @ List.mapi (fun i v -> (Printf.sprintf "B%d" i, v)) bits2
      @ [ ("F0", f); ("CIN", cin) ]
    in
    let o1 = Milo_sim.Simulator.outputs s1 ins1 in
    let o2 = Milo_sim.Simulator.outputs s2 ins2 in
    List.iteri
      (fun i _ ->
        Alcotest.(check bool)
          (Printf.sprintf "s%d" i)
          (List.assoc (Printf.sprintf "S%d" i) o2)
          (List.assoc (Printf.sprintf "s%d" i) o1))
      bits;
    Alcotest.(check bool) "cout" (List.assoc "COUT" o2) (List.assoc "cout" o1)
  done

let test_gate_assignments () =
  let d = Milo_vhdl.Elaborate.design_of_string gates_src in
  let s = Milo_sim.Simulator.create (Util.env_gen ()) d in
  let check a b c (x, y, z) =
    let outs =
      Milo_sim.Simulator.outputs s [ ("a", a); ("b", b); ("c", c) ]
    in
    Alcotest.(check bool) "x" x (List.assoc "x" outs);
    Alcotest.(check bool) "y" y (List.assoc "y" outs);
    Alcotest.(check bool) "z" z (List.assoc "z" outs)
  in
  check true true false (true, false, false);
  check false false true (true, true, true);
  check true false false (false, true, true)

let test_vhdl_full_flow () =
  (* VHDL in, optimized ECL netlist out, behaviour preserved. *)
  let design = Milo_vhdl.Elaborate.design_of_string timer_src in
  let baseline, _ = Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl design in
  let res =
    Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
      ~constraints:(Milo.Constraints.delay 5.0) design
  in
  let env = Util.env_ecl () in
  Util.check_equiv ~seq:true env baseline env res.Milo.Flow.optimized

let test_parse_errors () =
  let bad src =
    match Milo_vhdl.Elaborate.design_of_string src with
    | _ -> None
    | exception Milo_vhdl.Parser.Parse_error (line, msg) ->
        Some (Printf.sprintf "parse:%d:%s" line msg)
    | exception Milo_vhdl.Elaborate.Elaboration_error msg ->
        Some ("elab:" ^ msg)
    | exception Milo_vhdl.Lexer.Lex_error (line, msg) ->
        Some (Printf.sprintf "lex:%d:%s" line msg)
  in
  Alcotest.(check bool) "missing entity" true
    (bad "architecture a of b is begin end;" <> None);
  Alcotest.(check bool) "bad component" true
    (bad
       "entity e is port (a : in bit); end e;\n\
        architecture r of e is begin u : warpdrive port map (a => a); end r;"
     <> None);
  Alcotest.(check bool) "width mismatch" true
    (bad
       "entity e is port (a : in bit_vector(3 downto 0); y : out bit); end e;\n\
        architecture r of e is begin y <= a; end r;"
     <> None);
  Alcotest.(check bool) "unknown signal" true
    (bad
       "entity e is port (y : out bit); end e;\n\
        architecture r of e is begin y <= nothere; end r;"
     <> None);
  Alcotest.(check bool) "bad char" true (bad "entity @ is" <> None)

let test_bit_string_msb_first () =
  let src =
    {|
entity lit is
  port ( q : out bit_vector(3 downto 0); c : out bit );
end lit;
architecture r of lit is
begin
  u : comparator generic map (bits => 4, fns => "eq")
      port map (a => "0011", b => "0011", eq => c);
  q <= "1000";
end r;
|}
  in
  let d = Milo_vhdl.Elaborate.design_of_string src in
  let s = Milo_sim.Simulator.create (Util.env_gen ()) d in
  let outs = Milo_sim.Simulator.outputs s [] in
  (* "1000" MSB first = bit 3 set *)
  Alcotest.(check bool) "q3" true (List.assoc "q3" outs);
  Alcotest.(check bool) "q0" false (List.assoc "q0" outs);
  Alcotest.(check bool) "eq of equal literals" true (List.assoc "c" outs)

let () =
  Alcotest.run "vhdl"
    [
      ( "parser",
        [
          Alcotest.test_case "timer" `Quick test_parse_timer;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "timer" `Quick test_elaborate_timer;
          Alcotest.test_case "alu equals builder" `Quick test_vhdl_equals_builder;
          Alcotest.test_case "gate assignments" `Quick test_gate_assignments;
          Alcotest.test_case "bit strings" `Quick test_bit_string_msb_first;
        ] );
      ( "flow",
        [ Alcotest.test_case "vhdl to optimized ECL" `Quick test_vhdl_full_flow ]
      );
    ]
