(* Differential fuzz: the packed (bit-parallel) simulator against the
   scalar reference path, lane by lane, over every suite design — raw
   micro form and conservatively mapped form — plus the accumulator
   and the examples/ inputs.  Combinational designs get random packed
   chunks (and an exhaustive sweep when the interface is narrow);
   sequential designs run in lock-step for a number of cycles with an
   independent scalar simulator shadowing a sample of lanes.

   The two engines share the levelized schedule but nothing else: the
   scalar path calls the one-vector reference semantics in [Eval], the
   packed path the word-level semantics in [Eval.Packed], so a
   divergence here is a real semantics bug in one of them.

   Also runnable on its own via `dune build @sim_suite`. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Sim = Milo_sim.Simulator
module Macro = Milo_library.Macro

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n%!" s)
    fmt

let lanes = Sim.lanes

let input_ports d =
  List.filter_map
    (fun (p, dir, _) -> if dir = T.Input then Some p else None)
    (D.ports d)

let is_seq_design (env : Sim.env) d =
  List.exists
    (fun (c : D.comp) ->
      match c.D.kind with
      | T.Register _ | T.Counter _ -> true
      | T.Macro m -> (
          match env.Sim.find_macro m with
          | mac -> Macro.is_sequential mac
          | exception _ -> false)
      | _ -> false)
    (D.comps d)

let random_words rng ins chunk =
  List.map
    (fun p ->
      let w = ref 0 in
      for l = 0 to chunk - 1 do
        if Random.State.bool rng then w := !w lor (1 lsl l)
      done;
      (p, !w))
    ins

let lane_inputs words l =
  List.map (fun (p, w) -> (p, w land (1 lsl l) <> 0)) words

(* Compare one lane of a packed output assignment against a scalar
   one.  The port sets must agree exactly. *)
let compare_lane what ~cycle scalar packed l =
  let sp = List.sort compare (List.map fst scalar)
  and pp = List.sort compare (List.map fst packed) in
  if sp <> pp then
    fail "%s: output port sets differ (scalar %s, packed %s)" what
      (String.concat "," sp) (String.concat "," pp)
  else
    List.iter
      (fun (p, v) ->
        let w = List.assoc p packed in
        if w land (1 lsl l) <> 0 <> v then
          fail "%s: port %s lane %d%s: scalar %b, packed %b" what p l
            (match cycle with
            | None -> ""
            | Some c -> Printf.sprintf " cycle %d" c)
            v
            (w land (1 lsl l) <> 0))
      scalar

(* --- Combinational: packed chunk vs per-lane scalar runs -------------- *)

let fuzz_comb what env d =
  let ins = input_ports d in
  let s = Sim.create env d in
  let check_chunk words chunk =
    let packed = Sim.outputs_packed s words in
    for l = 0 to chunk - 1 do
      let scalar = Sim.outputs s (lane_inputs words l) in
      compare_lane what ~cycle:None scalar packed l
    done
  in
  let rng = Random.State.make [| 0xd1f; String.length what |] in
  for _ = 1 to 8 do
    check_chunk (random_words rng ins lanes) lanes
  done;
  let n = List.length ins in
  if n <= 10 then begin
    (* Exhaustive: every vector, streamed in packed chunks. *)
    let total = 1 lsl n in
    let v0 = ref 0 in
    while !v0 < total do
      let chunk = min lanes (total - !v0) in
      let words =
        List.mapi
          (fun i p ->
            let w = ref 0 in
            for l = 0 to chunk - 1 do
              if (!v0 + l) lsr i land 1 <> 0 then w := !w lor (1 lsl l)
            done;
            (p, !w))
          ins
      in
      check_chunk words chunk;
      v0 := !v0 + lanes
    done
  end;
  Printf.printf "ok   %s comb packed=scalar (%d inputs)\n%!" what n

(* --- Sequential: packed lanes vs shadow scalar simulators ------------- *)

let shadow_lanes = 4
let seq_cycles = 24

let fuzz_seq what env d =
  let ins = input_ports d in
  let p = Sim.create env d in
  Sim.reset p;
  let shadows = Array.init shadow_lanes (fun _ ->
      let s = Sim.create env d in
      Sim.reset s;
      s)
  in
  let rng = Random.State.make [| 0x5e41; String.length what |] in
  for c = 0 to seq_cycles - 1 do
    let words = random_words rng ins lanes in
    let packed = Sim.outputs_packed p words in
    Array.iteri
      (fun j s ->
        let scalar = Sim.outputs s (lane_inputs words j) in
        compare_lane what ~cycle:(Some c) scalar packed j)
      shadows;
    Sim.step_packed p words;
    Array.iteri (fun j s -> Sim.step s (lane_inputs words j)) shadows
  done;
  Printf.printf "ok   %s seq packed=scalar (%d cycles, %d lanes shadowed)\n%!"
    what seq_cycles shadow_lanes

let fuzz what env d =
  match if is_seq_design env d then fuzz_seq what env d else fuzz_comb what env d with
  | () -> ()
  | exception Sim.Combinational_loop _ ->
      Printf.printf "skip %s (combinational loop)\n%!" what
  | exception e -> fail "%s: %s" what (Printexc.to_string e)

(* --- Corpus ------------------------------------------------------------ *)

let env_gen () = Sim.env_of_techs [ Milo_library.Generic.get () ]

let env_mapped () =
  Sim.env_of_techs [ Milo_library.Ecl.get (); Milo_library.Generic.get () ]

let sweep_suite () =
  List.iter
    (fun (case : Milo_designs.Suite.case) ->
      let name = "design" ^ case.Milo_designs.Suite.case_name in
      let d = case.Milo_designs.Suite.case_design in
      fuzz name (env_gen ()) d;
      match Milo.Flow.human_baseline d with
      | mapped, _ -> fuzz (name ^ "/mapped") (env_mapped ()) mapped
      | exception e ->
          fail "%s: human_baseline raised %s" name (Printexc.to_string e))
    (Milo_designs.Suite.all ());
  fuzz "accumulator" (env_gen ()) (Milo_designs.Suite.accumulator ())

(* examples/ inputs, compiled and conservatively mapped first (they mix
   micro kinds, hierarchy and behavioural sources the raw simulator
   does not accept). *)
let find_examples () =
  let rec go dir depth =
    if depth > 4 then None
    else
      let cand = Filename.concat dir "examples" in
      if Sys.file_exists cand && Sys.is_directory cand then Some cand
      else go (Filename.concat dir "..") (depth + 1)
  in
  go "." 0

let read_input path =
  if Filename.check_suffix path ".pla" then
    Some
      (Milo_pla.Pla.to_design
         ~name:(Filename.remove_extension (Filename.basename path))
         (Milo_pla.Pla.of_file path))
  else if Filename.check_suffix path ".vhd" || Filename.check_suffix path ".vhdl"
  then Some (Milo_vhdl.Elaborate.design_of_file path)
  else if Filename.check_suffix path ".mil" then
    Some (Milo_netlist.Parser.of_file path)
  else None

let sweep_examples () =
  match find_examples () with
  | None -> Printf.printf "skip examples/ (directory not found)\n"
  | Some dir ->
      Array.iter
        (fun f ->
          let path = Filename.concat dir f in
          match read_input path with
          | None -> ()
          | Some design -> (
              match Milo.Flow.human_baseline design with
              | mapped, _ -> fuzz ("examples/" ^ f) (env_mapped ()) mapped
              | exception e ->
                  fail "examples/%s: human_baseline raised %s" f
                    (Printexc.to_string e))
          | exception e ->
              fail "examples/%s: cannot read (%s)" f (Printexc.to_string e))
        (Sys.readdir dir)

let () =
  sweep_suite ();
  sweep_examples ();
  if !failures > 0 then begin
    Printf.printf "%d differential failure(s)\n" !failures;
    exit 1
  end;
  Printf.printf "sim_suite: all packed/scalar differentials clean\n"
