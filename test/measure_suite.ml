(* Incremental-measurement equivalence suite — the measurement layer's
   tier-1 gate.

   Drives random rule sequences over mapped designs with a live
   measurer and the differential oracle enabled, exercising every path
   of the apply/measure/undo discipline:

   - [Engine.evaluate] (apply + measure + undo, gain probes);
   - manual [guarded_apply] + cleanups + [measure_step], then a random
     choice of commit+[measure_keep] or undo+[measure_drop];

   and after every committed or undone step cross-checks the running
   totals against a from-scratch [Sta.analyze] + estimate fold, within
   1e-9 relative.  [Measure.set_debug_check true] additionally makes
   the measurer itself raise [Divergence] on any advance/retreat that
   disagrees with a full recompute — the suite requires zero.  The
   random stream is a fixed LCG, so failures reproduce exactly. *)

module D = Milo_netlist.Design
module R = Milo_rules.Rule
module Engine = Milo_rules.Engine
module Measure = Milo_measure.Measure
module Sta = Milo_timing.Sta
module Estimate = Milo_estimate.Estimate
module Suite = Milo_designs.Suite
module Flow = Milo.Flow
module Critic = Milo_critic.Critic

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

(* Deterministic pseudo-random stream: reproducible across runs and
   platforms, independent of [Random]'s global state. *)
let lcg = ref 1

let rand n =
  lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
  !lcg mod n

let ecl = lazy (Milo_library.Ecl.get ())

let ctx_for design =
  let ecl = Lazy.force ecl in
  R.make_context ecl
    (Milo_compilers.Gate_comp.named_set ~prefix:"E_" ecl)
    design

let rules () = Critic.logic @ Critic.area @ Critic.power
let cleanups () = Critic.cleanup

(* From-scratch reference totals, computed with the measurer's own
   (memoized) macro environment. *)
let full_totals env design =
  let sta = Sta.analyze ~input_arrivals:[] env design in
  {
    Measure.delay = Sta.worst_delay sta;
    area = Estimate.area env design;
    power = Estimate.power env design;
  }

let close got want =
  Float.abs (got -. want) <= 1e-9 *. Float.max 1.0 (Float.abs want)

let check_state what m =
  let want = full_totals (Measure.env m) (Measure.design m) in
  let got = Measure.current m in
  if
    not
      (close got.Measure.delay want.Measure.delay
      && close got.Measure.area want.Measure.area
      && close got.Measure.power want.Measure.power)
  then
    fail
      "%s: incremental (%.12g, %.12g, %.12g) <> full (%.12g, %.12g, %.12g)"
      what got.Measure.delay got.Measure.area got.Measure.power
      want.Measure.delay want.Measure.area want.Measure.power

(* One random step: pick a live (rule, site) candidate, then exercise a
   random path of the measurement discipline.  Returns false when the
   design has no candidates left. *)
let step name i ctx m =
  let candidates =
    List.concat_map
      (fun r -> List.map (fun s -> (r, s)) (Engine.guarded_find ctx r))
      (rules ())
  in
  match candidates with
  | [] -> false
  | _ -> (
      let r, site = List.nth candidates (rand (List.length candidates)) in
      let where =
        Printf.sprintf "%s step %d (%s)" name i r.R.rule_name
      in
      match rand 3 with
      | 0 ->
          (* Probe path: apply + measure + undo inside [evaluate]. *)
          let cost () = Engine.weighted () (Measure.current m) in
          ignore (Engine.evaluate ctx ~cost ~cleanups:(cleanups ()) r site);
          check_state (where ^ " after evaluate") m;
          true
      | mode ->
          (* Manual path: apply + cleanups + measure_step, then a random
             keep or drop. *)
          let log = D.new_log () in
          if Engine.guarded_apply ctx r site log then (
            Engine.run_cleanups ctx (cleanups ()) log;
            let mstep = Engine.measure_step ctx log in
            if mode = 1 then (
              Engine.measure_keep ctx mstep;
              D.commit log;
              check_state (where ^ " after commit") m)
            else (
              D.undo ctx.R.design log;
              Engine.measure_drop ctx mstep;
              check_state (where ^ " after undo") m);
            true)
          else (
            D.undo ctx.R.design log;
            check_state (where ^ " after failed apply") m;
            true))

let drive name design ~steps =
  let ctx = ctx_for design in
  match Measure.create ~input_arrivals:[] (Lazy.force ecl) design with
  | exception e ->
      fail "%s: Measure.create raised %s" name (Printexc.to_string e)
  | m -> (
      ctx.R.measurer := Some m;
      check_state (name ^ " initial") m;
      try
        let i = ref 0 in
        while !i < steps && step name !i ctx m do
          incr i
        done;
        let s = Measure.stats m in
        Printf.printf
          "%-24s %3d steps  adv=%d ret=%d commit=%d resync=%d oracle=%d\n"
          name !i s.Measure.advances s.Measure.retreats s.Measure.commits
          s.Measure.resyncs s.Measure.oracle_checks
      with
      | Measure.Divergence msg -> fail "%s: oracle divergence: %s" name msg
      | e -> fail "%s: raised %s" name (Printexc.to_string e))

(* Mapped suite designs: the compiled + conservatively mapped form the
   optimizer actually sees. *)
let mapped_case (c : Suite.case) =
  let mapped, _ = Flow.human_baseline ~technology:Flow.Ecl c.Suite.case_design in
  (c.Suite.case_name, mapped)

let () =
  Engine.quarantine_reset ();
  Measure.set_debug_check true;
  lcg := 20260805;
  (* Random mapped workloads: dense combinational soup, lots of rule
     traffic. *)
  List.iter
    (fun (gates, seed) ->
      let d = Milo_designs.Workload.random_logic ~gates ~seed () in
      let target = Milo_techmap.Table_map.ecl_target () in
      let mapped = Milo_techmap.Table_map.map_design target d in
      drive (Printf.sprintf "workload_g%d_s%d" gates seed) mapped ~steps:40)
    [ (30, 11); (60, 23); (90, 37) ];
  (* Figure 19 suite designs, including the sequential ones. *)
  List.iter
    (fun c ->
      let name, mapped = mapped_case c in
      drive name mapped ~steps:30)
    [ Suite.design1 (); Suite.design4 (); Suite.design7 () ];
  Measure.set_debug_check false;
  if !failures > 0 then (
    Printf.printf "%d failure(s)\n" !failures;
    exit 1)
  else print_endline "measure_suite: all equivalence checks passed"
