(* Parallel-runtime determinism suite — the tentpole's tier-1 gate.

   The supervised domain pool must be observably invisible: a flow run
   at [--domains 1] (inline supervised tasks), at [--domains 4] (a
   real forced pool, twice, so scheduling variance gets a chance to
   show), and degraded back to inline by an injected pool-construction
   failure must all produce bit-identical final designs, costs,
   semantic-guard counters, quarantine sets, provenance ledger rows,
   trajectory JSONL (wall-clock fields masked) and trace event
   streams; every journal must replay with zero divergences; and the
   degraded run — only that one — must carry the
   Degraded_to_sequential note. *)

module D = Milo_netlist.Design
module Flow = Milo.Flow
module Guard = Milo_guard.Guard
module Suite = Milo_designs.Suite
module J = Milo_journal.Journal
module P = Milo_provenance.Provenance
module Trajectory = Milo_provenance.Trajectory
module Trace = Milo_trace.Trace
module Pool = Milo_parallel.Pool

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

let guard_counters (g : Guard.stats) =
  [
    g.Guard.stage_checks;
    g.Guard.stage_mismatches;
    g.Guard.rule_checks;
    g.Guard.rule_mismatches;
    g.Guard.rule_skipped;
    g.Guard.rule_certified;
  ]

(* Strip one ["name":value] field from a sorted-key JSON object line:
   the trajectory's [budget_elapsed] is wall-clock time, the only
   legitimately non-deterministic byte in the stream. *)
let strip_field name line =
  let key = "\"" ^ name ^ "\":" in
  let n = String.length line and m = String.length key in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = key then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> line
  | Some i ->
      let j = ref (i + m) in
      while !j < n && line.[!j] <> ',' && line.[!j] <> '}' do
        incr j
      done;
      (* consume the separating comma on whichever side has one *)
      if !j < n && line.[!j] = ',' then
        String.sub line 0 i ^ String.sub line (!j + 1) (n - !j - 1)
      else if i > 0 && line.[i - 1] = ',' then
        String.sub line 0 (i - 1) ^ String.sub line !j (n - !j)
      else String.sub line 0 i ^ String.sub line !j (n - !j)

type snapshot = {
  sn_design : D.t;
  sn_hash : string;
  sn_stats : Flow.stats;
  sn_guard : int list;
  sn_quarantined : (string * int) list;
  sn_ledger : P.row list;
  sn_traj : string list;
  sn_trace : (string * Trace.event_kind) list;
  sn_notes : string list;
  sn_journal : string;
}

let snapshot_run ~what ~domains (case : Suite.case) =
  let journal = Filename.temp_file "milo_parallel_suite" ".mjl" in
  let t = Trace.create () in
  let p = P.create () in
  match
    Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
      ~guard:Guard.Sampled ~journal ~trace:t ~provenance:p ~domains
      ~force_domains:true case.Suite.case_design
  with
  | Flow.Complete res ->
      Some
        {
          sn_design = res.Flow.optimized;
          sn_hash = J.design_hash res.Flow.optimized;
          sn_stats = res.Flow.final;
          sn_guard = guard_counters res.Flow.guard_stats;
          sn_quarantined = res.Flow.quarantined;
          sn_ledger = P.ledger p;
          sn_traj =
            List.map
              (fun ev -> strip_field "budget_elapsed" (Trajectory.line_of_event ev))
              (P.events p);
          sn_trace =
            (* The degradation Note is the one event allowed to differ
               between a pooled and a degraded run; everything after it
               must line up, so it is dropped before comparison (its
               presence is asserted via [notes]).  Sequence numbers are
               checked for contiguity here rather than compared — the
               dropped note shifts them by one. *)
            (let evs = Trace.events t in
             List.iteri
               (fun i (e : Trace.event) ->
                 if e.Trace.seq <> i then
                   fail "%s: trace seq %d at position %d" what e.Trace.seq i)
               evs;
             List.filter_map
               (fun (e : Trace.event) ->
                 match e.Trace.kind with
                 | Trace.Note n
                   when String.length n >= 22
                        && String.sub n 0 22 = "Degraded_to_sequential" ->
                     None
                 | k -> Some (e.Trace.stage, k))
               evs);
          sn_notes = res.Flow.notes;
          sn_journal = journal;
        }
  | Flow.Partial pr ->
      Sys.remove journal;
      fail "%s: degraded at %s (%s)" what
        (Flow.stage_name pr.Flow.failed_stage)
        pr.Flow.failure.Flow.err_message;
      None
  | exception e ->
      (try Sys.remove journal with Sys_error _ -> ());
      fail "%s: uncaught %s" what (Printexc.to_string e);
      None

(* Every observable surface of [b] must be bit-identical to [a]'s
   (notes excepted — degradation is allowed to differ there and is
   asserted separately). *)
let compare_snapshots what (a : snapshot) (b : snapshot) =
  if not (D.equal_structure a.sn_design b.sn_design) then
    fail "%s: final designs differ structurally" what;
  if a.sn_hash <> b.sn_hash then
    fail "%s: final design hashes differ (%s vs %s)" what a.sn_hash b.sn_hash;
  if a.sn_stats <> b.sn_stats then
    fail "%s: final costs differ (%.6f/%.3f/%.3f vs %.6f/%.3f/%.3f)" what
      a.sn_stats.Flow.delay a.sn_stats.Flow.area a.sn_stats.Flow.power
      b.sn_stats.Flow.delay b.sn_stats.Flow.area b.sn_stats.Flow.power;
  if a.sn_guard <> b.sn_guard then
    fail "%s: guard counters differ ([%s] vs [%s])" what
      (String.concat ";" (List.map string_of_int a.sn_guard))
      (String.concat ";" (List.map string_of_int b.sn_guard));
  if a.sn_quarantined <> b.sn_quarantined then
    fail "%s: quarantine sets differ" what;
  if a.sn_ledger <> b.sn_ledger then fail "%s: ledger rows differ" what;
  if List.length a.sn_traj <> List.length b.sn_traj then
    fail "%s: trajectory lengths differ (%d vs %d)" what
      (List.length a.sn_traj) (List.length b.sn_traj)
  else
    List.iteri
      (fun i (la, lb) ->
        if la <> lb then
          fail "%s: trajectory line %d differs:\n  %s\n  %s" what i la lb)
      (List.combine a.sn_traj b.sn_traj);
  if a.sn_trace <> b.sn_trace then fail "%s: trace event streams differ" what

let check_replay what (s : snapshot) =
  match Flow.replay s.sn_journal with
  | rep ->
      if not rep.Flow.rep_finished then
        fail "%s: journal does not end in a Finish record" what;
      if rep.Flow.rep_divergences <> [] then
        fail "%s: replay found %d divergence(s)" what
          (List.length rep.Flow.rep_divergences)
  | exception e -> fail "%s: replay raised %s" what (Printexc.to_string e)

let check_case (case : Suite.case) =
  let name = case.Suite.case_name in
  let s1 = snapshot_run ~what:(name ^ " domains=1") ~domains:1 case in
  let s4a = snapshot_run ~what:(name ^ " domains=4 (a)") ~domains:4 case in
  let s4b = snapshot_run ~what:(name ^ " domains=4 (b)") ~domains:4 case in
  Pool.fail_spawn_for_testing := true;
  let sdeg = snapshot_run ~what:(name ^ " degraded") ~domains:4 case in
  Pool.fail_spawn_for_testing := false;
  (match (s1, s4a, s4b, sdeg) with
  | Some s1, Some s4a, Some s4b, Some sdeg ->
      compare_snapshots (name ^ ": domains 1 vs 4") s1 s4a;
      compare_snapshots (name ^ ": domains 4 run a vs run b") s4a s4b;
      compare_snapshots (name ^ ": domains 4 vs degraded") s4a sdeg;
      if s1.sn_notes <> [] then
        fail "%s: inline run carries unexpected notes" name;
      if s4a.sn_notes <> [] || s4b.sn_notes <> [] then
        fail "%s: pooled run carries unexpected notes" name;
      if not (List.mem "Degraded_to_sequential" sdeg.sn_notes) then
        fail "%s: degraded run lost its Degraded_to_sequential note" name;
      check_replay (name ^ " domains=1 replay") s1;
      check_replay (name ^ " domains=4 replay") s4a;
      check_replay (name ^ " degraded replay") sdeg;
      if !failures = 0 then
        Printf.printf
          "ok   %s: 1 == 4 == 4 == degraded (%d trace events, %d \
           trajectory lines, replays clean)\n"
          name
          (List.length s4a.sn_trace)
          (List.length s4a.sn_traj)
  | _ -> ());
  List.iter
    (fun s ->
      match s with
      | Some s -> ( try Sys.remove s.sn_journal with Sys_error _ -> ())
      | None -> ())
    [ s1; s4a; s4b; sdeg ]

let () =
  Pool.fail_spawn_for_testing := false;
  let cases = List.filteri (fun i _ -> i < 3) (Suite.all ()) in
  List.iter check_case cases;
  if !failures > 0 then begin
    Printf.printf "parallel_suite: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "parallel_suite: all clean"
