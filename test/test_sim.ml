(* Simulator tests: combinational settling, sequential stepping,
   loop detection, micro-component semantics. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

let test_comb_settle () =
  let d = D.create "comb" in
  let a = D.add_port d "A" T.Input in
  let b = D.add_port d "B" T.Input in
  let y = D.add_port d "Y" T.Output in
  let g = D.add_comp d (T.Macro "NAND2") in
  D.connect d g "A0" a;
  D.connect d g "A1" b;
  D.connect d g "Y" y;
  let s = Milo_sim.Simulator.create (Util.env_gen ()) d in
  Alcotest.(check bool) "nand 11" false
    (List.assoc "Y" (Milo_sim.Simulator.outputs s [ ("A", true); ("B", true) ]));
  Alcotest.(check bool) "nand 10" true
    (List.assoc "Y" (Milo_sim.Simulator.outputs s [ ("A", true); ("B", false) ]))

let test_comb_loop_detected () =
  let d = D.create "loop" in
  let y = D.add_port d "Y" T.Output in
  let g1 = D.add_comp d (T.Macro "INV") in
  let g2 = D.add_comp d (T.Macro "INV") in
  let n1 = D.new_net d and n2 = D.new_net d in
  D.connect d g1 "A0" n2;
  D.connect d g1 "Y" n1;
  D.connect d g2 "A0" n1;
  D.connect d g2 "Y" n2;
  let b = D.add_comp d (T.Macro "BUF") in
  D.connect d b "A0" n1;
  D.connect d b "Y" y;
  let s = Milo_sim.Simulator.create (Util.env_gen ()) d in
  let raised =
    match Milo_sim.Simulator.outputs s [] with
    | _ -> false
    | exception Milo_sim.Simulator.Combinational_loop names ->
        List.length names >= 2
  in
  Alcotest.(check bool) "loop raises with both inverters" true raised

let test_dff_step () =
  let d = D.create "ff" in
  let din = D.add_port d "D" T.Input in
  let clk = D.add_port d "CLK" T.Input in
  let q = D.add_port d "Q" T.Output in
  let ff = D.add_comp d (T.Macro "DFF") in
  D.connect d ff "D" din;
  D.connect d ff "CLK" clk;
  D.connect d ff "Q" q;
  let s = Milo_sim.Simulator.create (Util.env_gen ()) d in
  Alcotest.(check bool) "initial 0" false
    (List.assoc "Q" (Milo_sim.Simulator.outputs s [ ("D", true) ]));
  Milo_sim.Simulator.step s [ ("D", true) ];
  Alcotest.(check bool) "latched 1" true
    (List.assoc "Q" (Milo_sim.Simulator.outputs s [ ("D", false) ]));
  Milo_sim.Simulator.step s [ ("D", false) ];
  Alcotest.(check bool) "latched 0" false
    (List.assoc "Q" (Milo_sim.Simulator.outputs s [ ("D", false) ]))

let read_bus outs prefix width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    if List.assoc (Printf.sprintf "%s%d" prefix i) outs then
      v := !v lor (1 lsl i)
  done;
  !v

let test_micro_arith_semantics () =
  let kind = T.Arith_unit { bits = 4; fns = [ T.Add; T.Sub; T.Inc; T.Dec ]; mode = T.Ripple } in
  let d = Util.micro_reference kind in
  let s = Milo_sim.Simulator.create (Util.env_gen ()) d in
  let run a b f cin =
    let inputs =
      List.init 4 (fun i -> (Printf.sprintf "A%d" i, a land (1 lsl i) <> 0))
      @ List.init 4 (fun i -> (Printf.sprintf "B%d" i, b land (1 lsl i) <> 0))
      @ [ ("CIN", cin);
          ("F0", f land 1 <> 0); ("F1", f land 2 <> 0) ]
    in
    let outs = Milo_sim.Simulator.outputs s inputs in
    (read_bus outs "S" 4, List.assoc "COUT" outs)
  in
  Alcotest.(check (pair int bool)) "5+3" (8, false) (run 5 3 0 false);
  Alcotest.(check (pair int bool)) "9+8" (1, true) (run 9 8 0 false);
  Alcotest.(check (pair int bool)) "7-2" (5, true) (run 7 2 1 true);
  Alcotest.(check (pair int bool)) "inc 15" (0, true) (run 15 0 2 false);
  Alcotest.(check (pair int bool)) "dec 0" (15, false) (run 0 0 3 false)

let test_micro_counter_semantics () =
  let kind =
    T.Counter
      { bits = 3; fns = [ T.Count_load; T.Count_up; T.Count_down ];
        controls = [ T.Reset; T.Enable ] }
  in
  let d = Util.micro_reference kind in
  let s = Milo_sim.Simulator.create (Util.env_gen ()) d in
  let base =
    [ ("LD", false); ("UP", true); ("RST", false); ("EN", true);
      ("D0", true); ("D1", false); ("D2", true) ]
  in
  let q () = read_bus (Milo_sim.Simulator.outputs s base) "Q" 3 in
  Alcotest.(check int) "start 0" 0 (q ());
  Milo_sim.Simulator.step s base;
  Alcotest.(check int) "count 1" 1 (q ());
  Milo_sim.Simulator.step s (("EN", false) :: List.remove_assoc "EN" base);
  Alcotest.(check int) "hold" 1 (q ());
  Milo_sim.Simulator.step s (("LD", true) :: List.remove_assoc "LD" base);
  Alcotest.(check int) "load 5" 5 (q ());
  Milo_sim.Simulator.step s (("UP", false) :: List.remove_assoc "UP" base);
  Alcotest.(check int) "down 4" 4 (q ());
  Milo_sim.Simulator.step s (("RST", true) :: List.remove_assoc "RST" base);
  Alcotest.(check int) "reset" 0 (q ())

let test_equiv_detects_difference () =
  let mk fn =
    let d = D.create ("g_" ^ T.gate_fn_name fn) in
    let a = D.add_port d "A" T.Input in
    let b = D.add_port d "B" T.Input in
    let y = D.add_port d "Y" T.Output in
    let g = D.add_comp d (T.Macro (T.gate_fn_name fn ^ "2")) in
    D.connect d g "A0" a;
    D.connect d g "A1" b;
    D.connect d g "Y" y;
    d
  in
  let env = Util.env_gen () in
  Alcotest.(check bool) "and != or" false
    (Milo_sim.Equiv.is_equivalent
       (Milo_sim.Equiv.combinational env (mk T.And) env (mk T.Or)));
  Alcotest.(check bool) "and = and" true
    (Milo_sim.Equiv.is_equivalent
       (Milo_sim.Equiv.combinational env (mk T.And) env (mk T.And)))

(* Regression: the equivalence checker must reject a candidate that
   drops or renames an output port — on the sequential path too, and
   regardless of which side is missing the port.  Before the fix,
   [sequential] validated only input ports and the output comparison
   folded over one side's ports, so a dropped output compared clean. *)
let test_equiv_output_port_validation () =
  let mk_ff extra_out =
    let d = D.create "ff" in
    let din = D.add_port d "D" T.Input in
    let q = D.add_port d "Q" T.Output in
    let ff = D.add_comp d (T.Macro "DFF") in
    D.connect d ff "D" din;
    D.connect d ff "Q" q;
    (match extra_out with
    | Some name ->
        let o = D.add_port d name T.Output in
        let b = D.add_comp d (T.Macro "BUF") in
        D.connect d b "A0" q;
        D.connect d b "Y" o
    | None -> ());
    d
  in
  let env = Util.env_gen () in
  let rejects f = match f () with
    | (_ : Milo_sim.Equiv.result) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "sequential: candidate drops an output" true
    (rejects (fun () ->
         Milo_sim.Equiv.sequential env (mk_ff (Some "Q2")) env (mk_ff None)));
  Alcotest.(check bool) "sequential: candidate grows an output" true
    (rejects (fun () ->
         Milo_sim.Equiv.sequential env (mk_ff None) env (mk_ff (Some "Q2"))));
  Alcotest.(check bool) "sequential: candidate renames an output" true
    (rejects (fun () ->
         Milo_sim.Equiv.sequential env
           (mk_ff (Some "Q2"))
           env
           (mk_ff (Some "QX"))));
  Alcotest.(check bool) "combinational: candidate drops an output" true
    (rejects (fun () ->
         let mk out =
           let d = D.create "c" in
           let a = D.add_port d "A" T.Input in
           let y = D.add_port d out T.Output in
           let b = D.add_comp d (T.Macro "BUF") in
           D.connect d b "A0" a;
           D.connect d b "Y" y;
           d
         in
         Milo_sim.Equiv.combinational env (mk "Y") env (mk "Z")))

(* Regression: sequential output seeding must come from explicit
   state-only metadata, not from the pin name starting with 'Q'.  QRDY
   here is an *input-dependent* output of a sequential macro whose
   name begins with 'Q': the old heuristic seeded it before its GO
   input was known and the downstream buffer (a component created
   earlier, so visited first by the old worklist) latched the stale
   value. *)
let test_state_output_metadata_not_name () =
  let qmac =
    Milo_library.Macro.make ~delay:1.0 ~area:1.0 ~power:1.0 ~gates:1.0 "QMAC"
      [ ("GO", T.Input); ("Q", T.Output); ("QRDY", T.Output) ]
      (Milo_library.Macro.Seq_custom
         {
           state_bits = 1;
           state_only = [ "Q" ];
           custom_outputs =
             (fun ~state pins ->
               let go = Option.value ~default:false (List.assoc_opt "GO" pins) in
               [ ("Q", state land 1 <> 0); ("QRDY", state land 1 <> 0 && go) ]);
           custom_next = (fun ~state _ -> state);
         })
  in
  let gen = Util.env_gen () in
  let env =
    {
      Milo_sim.Simulator.find_macro =
        (fun name -> if name = "QMAC" then qmac else gen.Milo_sim.Simulator.find_macro name);
    }
  in
  let d = D.create "qrdy" in
  let go = D.add_port d "GO" T.Input in
  let r = D.add_port d "R" T.Output in
  let n = D.new_net d in
  (* The buffer gets the smaller component id on purpose. *)
  let buf = D.add_comp d (T.Macro "BUF") in
  D.connect d buf "A0" n;
  D.connect d buf "Y" r;
  let m = D.add_comp d (T.Macro "QMAC") in
  D.connect d m "GO" go;
  D.connect d m "QRDY" n;
  let s = Milo_sim.Simulator.create env d in
  Milo_sim.Simulator.set_state s m 1;
  Alcotest.(check bool) "R follows state && GO" true
    (List.assoc "R" (Milo_sim.Simulator.outputs s [ ("GO", true) ]));
  Alcotest.(check bool) "R low when GO low" false
    (List.assoc "R" (Milo_sim.Simulator.outputs s [ ("GO", false) ]))

(* Regression: an exhaustive bound at or above the word size must not
   overflow [1 lsl n].  64 input ports with [max_exhaustive = 64]
   made the old code size its vector list with [1 lsl 64]; the clamp
   routes wide interfaces to the random sweep, which must still find
   the planted difference. *)
let test_exhaustive_clamp () =
  let mk flip =
    let d = D.create "wide" in
    for i = 0 to 63 do
      let a = D.add_port d (Printf.sprintf "A%d" i) T.Input in
      let y = D.add_port d (Printf.sprintf "Y%d" i) T.Output in
      let g =
        D.add_comp d (T.Macro (if flip && i = 0 then "INV" else "BUF"))
      in
      D.connect d g "A0" a;
      D.connect d g "Y" y
    done;
    d
  in
  let env = Util.env_gen () in
  Alcotest.(check bool) "wide self-equivalence" true
    (Milo_sim.Equiv.is_equivalent
       (Milo_sim.Equiv.combinational ~max_exhaustive:64 env (mk false) env
          (mk false)));
  Alcotest.(check bool) "wide planted difference found" false
    (Milo_sim.Equiv.is_equivalent
       (Milo_sim.Equiv.combinational ~max_exhaustive:64 env (mk false) env
          (mk true)))

let test_muxff_macro () =
  (* E_MUXFF2 behaves as mux-then-dff *)
  let d = D.create "mf" in
  let d0 = D.add_port d "D0" T.Input in
  let d1 = D.add_port d "D1" T.Input in
  let sel = D.add_port d "S" T.Input in
  let clk = D.add_port d "CLK" T.Input in
  let q = D.add_port d "Q" T.Output in
  let m = D.add_comp d (T.Macro "E_MUXFF2") in
  D.connect d m "D0" d0;
  D.connect d m "D1" d1;
  D.connect d m "S0" sel;
  D.connect d m "CLK" clk;
  D.connect d m "Q" q;
  let s = Milo_sim.Simulator.create (Util.env_ecl ()) d in
  Milo_sim.Simulator.step s [ ("D0", false); ("D1", true); ("S", true) ];
  Alcotest.(check bool) "selected d1" true
    (List.assoc "Q" (Milo_sim.Simulator.outputs s []));
  Milo_sim.Simulator.step s [ ("D0", false); ("D1", true); ("S", false) ];
  Alcotest.(check bool) "selected d0" false
    (List.assoc "Q" (Milo_sim.Simulator.outputs s []))

let () =
  Alcotest.run "sim"
    [
      ( "combinational",
        [
          Alcotest.test_case "settle" `Quick test_comb_settle;
          Alcotest.test_case "loop detection" `Quick test_comb_loop_detected;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "dff" `Quick test_dff_step;
          Alcotest.test_case "muxff macro" `Quick test_muxff_macro;
        ] );
      ( "micro-semantics",
        [
          Alcotest.test_case "arith unit" `Quick test_micro_arith_semantics;
          Alcotest.test_case "counter" `Quick test_micro_counter_semantics;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "detects difference" `Quick
            test_equiv_detects_difference;
          Alcotest.test_case "output port validation" `Quick
            test_equiv_output_port_validation;
          Alcotest.test_case "exhaustive bound clamp" `Quick
            test_exhaustive_clamp;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "state-only metadata, not pin names" `Quick
            test_state_output_metadata_not_name;
        ] );
    ]
