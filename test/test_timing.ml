(* Static timing analysis tests: arrivals, critical paths, slack,
   point-of-optimization selection, load dependence. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Sta = Milo_timing.Sta

let env name = Milo_library.Technology.find (Util.ecl ()) name

(* A 3-gate chain: A -> INV -> OR2(B) -> AND2(C) -> Y *)
let chain () =
  let d = D.create "chain" in
  let a = D.add_port d "A" T.Input in
  let b = D.add_port d "B" T.Input in
  let c = D.add_port d "C" T.Input in
  let y = D.add_port d "Y" T.Output in
  let inv = D.add_comp d ~name:"inv" (T.Macro "E_INV") in
  let org = D.add_comp d ~name:"org" (T.Macro "E_OR2") in
  let andg = D.add_comp d ~name:"andg" (T.Macro "E_AND2") in
  let n1 = D.new_net d and n2 = D.new_net d in
  D.connect d inv "A0" a;
  D.connect d inv "Y" n1;
  D.connect d org "A0" n1;
  D.connect d org "A1" b;
  D.connect d org "Y" n2;
  D.connect d andg "A0" n2;
  D.connect d andg "A1" c;
  D.connect d andg "Y" y;
  d

let test_chain_arrivals () =
  let d = chain () in
  let sta = Sta.analyze env d in
  let worst = Sta.worst_delay sta in
  Alcotest.(check bool) "positive" true (worst > 0.0);
  (* worst path goes through all three gates *)
  match Sta.critical_path sta with
  | Some p ->
      Alcotest.(check int) "three hops" 3 (List.length p.Sta.hops);
      Alcotest.(check bool) "delay matches worst" true
        (Float.abs (p.Sta.path_delay -. worst) < 1e-9)
  | None -> Alcotest.fail "no critical path"

let test_input_arrival_shifts_path () =
  let d = chain () in
  let sta = Sta.analyze ~input_arrivals:[ ("C", 10.0) ] env d in
  (* now the critical path is through C: one hop *)
  match Sta.critical_path sta with
  | Some p ->
      Alcotest.(check int) "one hop via C" 1 (List.length p.Sta.hops);
      Alcotest.(check bool) "worst > 10" true (Sta.worst_delay sta > 10.0)
  | None -> Alcotest.fail "no critical path"

let test_monotone_under_load () =
  (* Adding a sink to a net increases the driver's delay (load model). *)
  let d = chain () in
  let before = Sta.worst_delay (Sta.analyze env d) in
  let n1 = (D.find_comp d "inv").D.conns |> fun t -> Hashtbl.find t "Y" in
  let extra = D.add_comp d (T.Macro "E_BUF") in
  D.connect d extra "A0" n1;
  let sink = D.new_net d in
  D.connect d extra "Y" sink;
  let after = Sta.worst_delay (Sta.analyze env d) in
  Alcotest.(check bool) "load increases delay" true (after > before)

let test_sequential_breaks_path () =
  let d = D.create "seqbrk" in
  let a = D.add_port d "A" T.Input in
  let clk = D.add_port d "CLK" T.Input in
  let y = D.add_port d "Y" T.Output in
  let g1 = D.add_comp d (T.Macro "E_INV") in
  let ff = D.add_comp d (T.Macro "E_DFF") in
  let g2 = D.add_comp d (T.Macro "E_INV") in
  let n1 = D.new_net d and n2 = D.new_net d in
  D.connect d g1 "A0" a;
  D.connect d g1 "Y" n1;
  D.connect d ff "D" n1;
  D.connect d ff "CLK" clk;
  D.connect d ff "Q" n2;
  D.connect d g2 "A0" n2;
  D.connect d g2 "Y" y;
  let sta = Sta.analyze env d in
  (* two endpoints: ff.D and port Y, neither accumulating both invs *)
  let eps = Sta.endpoints sta in
  Alcotest.(check bool) "two endpoints" true (List.length eps >= 2);
  List.iter
    (fun (ep, arr) ->
      Alcotest.(check bool)
        (Printf.sprintf "endpoint %s short" (Sta.endpoint_name sta ep))
        true
        (* each segment has exactly one inverter plus clk-q/load *)
        (arr < 3.0))
    eps

let test_slacks () =
  let d = chain () in
  let sta = Sta.analyze env d in
  let slacks = Sta.slacks ~required:100.0 sta in
  List.iter
    (fun (_, s) -> Alcotest.(check bool) "all positive" true (s > 0.0))
    slacks;
  let slacks = Sta.slacks ~required:0.0 sta in
  Alcotest.(check bool) "some negative" true
    (List.exists (fun (_, s) -> s < 0.0) slacks)

let test_select_point () =
  (* Two critical paths sharing the AND gate: the shared gate is the
     point of optimization (criterion 1). *)
  let d = chain () in
  let sta = Sta.analyze env d in
  let ctx = Util.ctx_for (Util.ecl ()) d in
  ignore ctx;
  match Milo_timing.Paths.select_point sta with
  | Some cid ->
      (* The chain's single path passes through all gates: select the
         one closest to the input among max-count (all count 1). *)
      let c = D.comp d cid in
      Alcotest.(check string) "closest to input" "inv" c.D.cname
  | None -> Alcotest.fail "no point selected"

let test_critical_set_with_requirement () =
  let d = chain () in
  let sta = Sta.analyze env d in
  let all = Milo_timing.Paths.critical_set ~required:0.1 sta in
  Alcotest.(check bool) "violating paths found" true (List.length all >= 1);
  let none = Milo_timing.Paths.critical_set ~required:1000.0 sta in
  Alcotest.(check int) "no violations" 0 (List.length none)

let test_high_power_is_faster_in_sta () =
  let d = chain () in
  let before = Sta.worst_delay (Sta.analyze env d) in
  let inv = D.find_comp d "inv" in
  D.set_kind d inv.D.id (T.Macro "E_INVH");
  let org = D.find_comp d "org" in
  D.set_kind d org.D.id (T.Macro "E_OR2H");
  let andg = D.find_comp d "andg" in
  D.set_kind d andg.D.id (T.Macro "E_AND2H");
  let after = Sta.worst_delay (Sta.analyze env d) in
  Alcotest.(check bool) "H variants faster" true (after < before)

(* --- Incremental update ------------------------------------------------ *)

let assert_same_timing what got want =
  Alcotest.(check bool)
    (what ^ ": worst delay")
    true
    (Float.abs (Sta.worst_delay got -. Sta.worst_delay want) < 1e-9);
  let norm s =
    List.sort compare
      (List.map (fun (ep, t) -> (Sta.endpoint_name s ep, t)) (Sta.endpoints s))
  in
  let g = norm got and w = norm want in
  Alcotest.(check int) (what ^ ": endpoint count") (List.length w)
    (List.length g);
  List.iter2
    (fun (gn, gt) (wn, wt) ->
      Alcotest.(check string) (what ^ ": endpoint") wn gn;
      Alcotest.(check bool)
        (what ^ ": arrival at " ^ wn)
        true
        (Float.abs (gt -. wt) < 1e-9))
    g w

let test_update_set_kind () =
  (* Re-kinding components and updating incrementally matches a fresh
     analyze after every edit; rolling the tokens back (newest first)
     restores the original state exactly. *)
  let d = Util.mapped_workload ~gates:40 ~seed:9 in
  let sta = Sta.analyze env d in
  let original = Sta.analyze env d in
  let swaps =
    [
      ("E_OR2", "E_NOR2"); ("E_NOR2", "E_OR2"); ("E_AND2", "E_NAND2");
      ("E_NAND2", "E_AND2"); ("E_INV", "E_BUF"); ("E_BUF", "E_INV");
    ]
  in
  let candidates =
    List.filter_map
      (fun (c : D.comp) ->
        match c.D.kind with
        | T.Macro m -> (
            match List.assoc_opt m swaps with
            | Some m'
              when Milo_library.Technology.find_opt (Util.ecl ()) m' <> None ->
                Some (c.D.id, c.D.kind, T.Macro m')
            | _ -> None)
        | _ -> None)
      (D.comps d)
  in
  let picked = List.filteri (fun i _ -> i < 5) candidates in
  Alcotest.(check bool) "found swappable comps" true (picked <> []);
  let tokens =
    List.map
      (fun (cid, _, kind') ->
        D.set_kind d cid kind';
        let tok = Sta.update sta ~touched_nets:[] ~touched_comps:[ cid ] in
        assert_same_timing
          (Printf.sprintf "after set_kind %d" cid)
          sta (Sta.analyze env d);
        tok)
      picked
  in
  List.iter2
    (fun (cid, kind, _) tok ->
      D.set_kind d cid kind;
      Sta.rollback sta tok)
    (List.rev picked) (List.rev tokens);
  assert_same_timing "after rollback" sta original

let test_update_rewire () =
  (* Re-connecting a pin: the update over the touched comp and both
     nets matches a fresh analyze; rollback restores the original. *)
  let d = chain () in
  let sta = Sta.analyze env d in
  let original = Sta.analyze env d in
  let org = D.find_comp d "org" in
  let old_net = Hashtbl.find org.D.conns "A1" in
  let inv_out = Hashtbl.find (D.find_comp d "inv").D.conns "Y" in
  D.connect d org.D.id "A1" inv_out;
  let tok =
    Sta.update sta ~touched_nets:[ old_net; inv_out ]
      ~touched_comps:[ org.D.id ]
  in
  assert_same_timing "after rewire" sta (Sta.analyze env d);
  D.connect d org.D.id "A1" old_net;
  Sta.rollback sta tok;
  assert_same_timing "after rewire rollback" sta original

let () =
  Alcotest.run "timing"
    [
      ( "sta",
        [
          Alcotest.test_case "chain arrivals" `Quick test_chain_arrivals;
          Alcotest.test_case "input arrivals" `Quick test_input_arrival_shifts_path;
          Alcotest.test_case "load monotone" `Quick test_monotone_under_load;
          Alcotest.test_case "sequential breaks paths" `Quick
            test_sequential_breaks_path;
          Alcotest.test_case "slack" `Quick test_slacks;
          Alcotest.test_case "high power faster" `Quick
            test_high_power_is_faster_in_sta;
        ] );
      ( "paths",
        [
          Alcotest.test_case "select point" `Quick test_select_point;
          Alcotest.test_case "incremental set_kind" `Quick
            test_update_set_kind;
          Alcotest.test_case "incremental rewire" `Quick test_update_rewire;
          Alcotest.test_case "critical set" `Quick test_critical_set_with_requirement;
        ] );
    ]
