(* Provenance suite — attribution tier-1 gate.

   - conservation fuzz: for every Figure 19 suite design, a flow run
     with the recorder installed yields per-stage cost attribution that
     telescopes bitwise (each kept application's [after] is exactly the
     next one's [before]) and sums to the stage's end-to-end cost
     change;
   - object lineage: committed applications tag the objects they touch
     with the committing stage/rule/step; rolled-back and miscompiled
     applications leave no tags (only debit markers);
   - pending-note hygiene: attribution detail deposited for one design
     can never attach to a commit on a different design;
   - trajectory round-trip: a journaled run's live trajectory, its
     save/load image and its offline [of_journal] reconstruction all
     cross-check against the journal with zero mismatches — including
     a journal stitched across a kill + resume. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module P = Milo_provenance.Provenance
module Traj = Milo_provenance.Trajectory
module Flow = Milo.Flow
module Guard = Milo_guard.Guard
module Engine = Milo_rules.Engine
module Rule = Milo_rules.Rule
module Suite = Milo_designs.Suite
module Faults = Milo_faults
module Trace = Milo_trace.Trace

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

let temp_journal tag =
  Filename.temp_file ("milo_prov_" ^ tag ^ "_") ".mjl"

let cleanup path =
  if Sys.file_exists path then Sys.remove path;
  if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp")

(* --- Conservation fuzz --------------------------------------------------- *)

let near a b = abs_float (a -. b) <= 1e-9 *. (1.0 +. abs_float b)

let check_conservation name p =
  List.iter
    (fun (co : P.conservation) ->
      if co.P.co_breaks <> 0 then
        fail "%s/%s: %d telescoping break(s) across %d measured step(s)" name
          co.P.co_stage co.P.co_breaks co.P.co_measured;
      let r = co.P.co_residual in
      if
        not
          (near r.Trace.delay 0.0 && near r.Trace.area 0.0
         && near r.Trace.power 0.0)
      then
        fail "%s/%s: attribution residual %g/%g/%g (sum %g/%g/%g vs end %g/%g/%g)"
          name co.P.co_stage r.Trace.delay r.Trace.area r.Trace.power
          co.P.co_sum.Trace.delay co.P.co_sum.Trace.area
          co.P.co_sum.Trace.power co.P.co_end.Trace.delay
          co.P.co_end.Trace.area co.P.co_end.Trace.power)
    (P.conservation p)

let conservation_fuzz (case : Suite.case) =
  let name = case.Suite.case_name in
  let p = P.create () in
  match
    Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
      ~guard:Guard.Sampled ~provenance:p case.Suite.case_design
  with
  | Flow.Complete res ->
      check_conservation name p;
      let steps =
        List.length
          (List.filter (function P.Step _ -> true | _ -> false) (P.events p))
      in
      let measured =
        List.fold_left
          (fun acc (co : P.conservation) -> acc + co.P.co_measured)
          0 (P.conservation p)
      in
      (* The budget probe was installed, so every step snapshots it. *)
      List.iter
        (function
          | P.Step s when s.P.st_budget = None ->
              fail "%s: step %d lacks a budget snapshot" name s.P.st_step
          | _ -> ())
        (P.events p);
      (* Ledger applies must account for every step record. *)
      let ledger_applies =
        List.fold_left (fun acc (r : P.row) -> acc + r.P.row_applies) 0
          (P.ledger p)
      in
      if ledger_applies <> steps then
        fail "%s: ledger books %d applies for %d step records" name
          ledger_applies steps;
      (* Critical-path blame covers every hop of the final design. *)
      let env n =
        Milo_library.Technology.find
          (Flow.target_of Flow.Ecl).Milo_techmap.Table_map.tech n
      in
      (match
         Milo_timing.Sta.critical_path
           (Milo_timing.Sta.analyze
              ~input_arrivals:case.Suite.constraints.Milo.Constraints.input_arrivals
              env res.Flow.optimized)
       with
      | None -> ()
      | Some path ->
          let blamed = P.blame p path in
          if List.length blamed <> List.length path.Milo_timing.Sta.hops then
            fail "%s: blame covers %d of %d hops" name (List.length blamed)
              (List.length path.Milo_timing.Sta.hops);
          List.iter
            (fun ((_ : Milo_timing.Sta.hop), tag) ->
              match tag with
              | Some tg when tg.P.tag_stage <> "optimize" ->
                  fail "%s: final-design object tagged from stage %s" name
                    tg.P.tag_stage
              | Some _ | None -> ())
            blamed);
      Printf.printf "ok   conservation %-8s (%d steps, %d measured)\n" name
        steps measured
  | Flow.Partial p ->
      fail "%s: flow degraded at %s" name (Flow.stage_name p.Flow.failed_stage)
  | exception e -> fail "%s: flow raised %s" name (Printexc.to_string e)

(* --- Object lineage ------------------------------------------------------ *)

(* Committed entries tag objects; undone logs leave none; removal drops
   the tag.  Driven directly through a commit hook wired the way the
   flow wires it. *)
let lineage_mechanics () =
  let p = P.create () in
  let d = D.create "lineage" in
  D.set_commit_hook d
    (Some (fun label entries -> P.observe_commit p ~stage:"test" ~label d entries));
  (* A committed add tags the component and its nets. *)
  let log = D.new_log () in
  let n = D.new_net ~log d in
  let g = D.add_comp ~log d (T.Gate (T.And, 2)) in
  D.connect ~log d g "Y" n;
  D.commit ~label:"build" ~design:d log;
  (match P.comp_tag p g with
  | Some tg ->
      if tg.P.tag_stage <> "test" || tg.P.tag_label <> Some "build" then
        fail "lineage: wrong tag %s/%s" tg.P.tag_stage
          (Option.value ~default:"-" tg.P.tag_label)
  | None -> fail "lineage: committed component carries no tag");
  (match P.net_tag p n with
  | Some _ -> ()
  | None -> fail "lineage: committed net carries no tag");
  (* An undone log must leave no fingerprints (rollback immunity). *)
  let log2 = D.new_log () in
  let g2 = D.add_comp ~log:log2 d (T.Gate (T.Inv, 1)) in
  D.undo d log2;
  (match P.comp_tag p g2 with
  | None -> ()
  | Some _ -> fail "lineage: rolled-back component got a tag");
  (* A committed removal drops the tag. *)
  let log3 = D.new_log () in
  D.remove_comp ~log:log3 d g;
  D.commit ~label:"drop" ~design:d log3;
  (match P.comp_tag p g with
  | None -> ()
  | Some _ -> fail "lineage: removed component kept its tag");
  if !failures = 0 then Printf.printf "ok   lineage mechanics\n"

(* Pending notes are keyed by physical design identity: detail
   deposited for one design can never attach to a commit on another
   (the engine evaluates candidates on scratch copies). *)
let pending_hygiene () =
  let p = P.create () in
  let d = D.create "real" in
  let scratch = D.create "scratch" in
  D.set_commit_hook d
    (Some (fun label entries -> P.observe_commit p ~stage:"test" ~label d entries));
  P.with_recorder p (fun () ->
      (* A stale note for the scratch design... *)
      P.pending ~design:scratch ~label:"opt" ~site:"stale" ();
      let log = D.new_log () in
      ignore (D.add_comp ~log d (T.Gate (T.And, 2)));
      D.commit ~label:"opt" ~design:d log;
      (* ...must not attach to the real design's commit. *)
      (match P.events p with
      | [ P.Step s ] ->
          if s.P.st_site <> None then
            fail "pending: stale note attached across designs"
      | evs -> fail "pending: expected 1 step, got %d events" (List.length evs));
      (* A matching note is consumed exactly once. *)
      P.pending ~design:d ~label:"opt" ~site:"fresh" ();
      let log = D.new_log () in
      ignore (D.add_comp ~log d (T.Gate (T.Inv, 1)));
      D.commit ~label:"opt" ~design:d log;
      let log = D.new_log () in
      ignore (D.add_comp ~log d (T.Gate (T.Inv, 1)));
      D.commit ~label:"opt" ~design:d log;
      match P.events p with
      | [ P.Step _; P.Step s2; P.Step s3 ] ->
          if s2.P.st_site <> Some "fresh" then
            fail "pending: matching note not consumed";
          if s3.P.st_site <> None then
            fail "pending: note consumed twice"
      | evs -> fail "pending: expected 3 steps, got %d events" (List.length evs));
  if !failures = 0 then Printf.printf "ok   pending-note hygiene\n"

(* A fully-guarded miscompiling rule rewarded by the cost function:
   nothing commits, no tags appear, and the reverted work surfaces as
   debit markers — netting to zero by construction. *)
let miscompile_nets_to_zero () =
  Engine.quarantine_reset ();
  let p = P.create () in
  let d = D.create "inv2" in
  let a = D.add_port d "A" T.Input in
  let y = D.add_port d "Y" T.Output in
  let t = D.new_net ~name:"t" d in
  let i1 = D.add_comp ~name:"i1" d (T.Macro "INV") in
  let i2 = D.add_comp ~name:"i2" d (T.Macro "INV") in
  D.connect d i1 "A0" a;
  D.connect d i1 "Y" t;
  D.connect d i2 "A0" t;
  D.connect d i2 "Y" y;
  let before = D.copy d in
  let lib = Milo_library.Generic.get () in
  let ctx = Rule.make_context lib (Milo_compilers.Gate_comp.generic_set lib) d in
  D.set_commit_hook d
    (Some (fun label entries -> P.observe_commit p ~stage:"test" ~label d entries));
  Engine.set_rule_guard Guard.Full;
  P.with_recorder p (fun () ->
      let cost () =
        List.fold_left
          (fun acc (c : D.comp) ->
            acc +. (match c.D.kind with T.Macro "INV" -> 2.0 | _ -> 1.0))
          0.0 (D.comps d)
      in
      let apps =
        Engine.greedy_pass ctx ~cost ~cleanups:[] [ Faults.polarity_rule () ]
      in
      if apps <> [] then fail "netting: miscompiling rule committed");
  Engine.clear_rule_guard ();
  Engine.quarantine_reset ();
  if not (D.equal_structure before d) then
    fail "netting: design not restored exactly";
  if P.tag_count p <> (0, 0) then begin
    let c, n = P.tag_count p in
    fail "netting: reverted work left %d comp / %d net tags" c n
  end;
  let steps, debits =
    List.fold_left
      (fun (s, db') ev ->
        match ev with
        | P.Step _ -> (s + 1, db')
        | P.Debit de when de.P.de_kind = "miscompile" -> (s, db' + 1)
        | _ -> (s, db'))
      (0, 0) (P.events p)
  in
  if steps <> 0 then fail "netting: %d step record(s) for reverted work" steps;
  if debits = 0 then fail "netting: no miscompile debit recorded";
  check_conservation "netting" p;
  if !failures = 0 then
    Printf.printf "ok   miscompile nets to zero (%d debit(s))\n" debits

(* --- Trajectory round-trip ----------------------------------------------- *)

let crosscheck_empty what ~journal events =
  match Traj.crosscheck ~journal events with
  | [] -> ()
  | ms ->
      fail "%s: %d cross-check mismatch(es)" what (List.length ms);
      List.iter
        (fun (m : Traj.mismatch) ->
          Printf.printf "     record %d: %s\n" m.Traj.mis_index m.Traj.mis_detail)
        ms

let trajectory_roundtrip (case : Suite.case) =
  let name = case.Suite.case_name in
  let path = temp_journal ("traj_" ^ name) in
  let tfile = Filename.temp_file "milo_traj_" ".jsonl" in
  let p = P.create () in
  (match
     Flow.run ~technology:Flow.Ecl ~constraints:case.Suite.constraints
       ~guard:Guard.Sampled ~journal:path ~provenance:p case.Suite.case_design
   with
  | Flow.Complete _ ->
      (* Live events vs the journal they were recorded beside. *)
      crosscheck_empty (name ^ " live") ~journal:path (P.events p);
      (* Through the serialized form: save, load, cross-check again —
         and the loaded stream must equal the live one exactly (floats
         round-trip bit-exactly). *)
      Traj.save tfile (P.events p);
      let loaded = Traj.load tfile in
      if loaded <> P.events p then
        fail "%s: trajectory save/load not an identity" name;
      crosscheck_empty (name ^ " loaded") ~journal:path loaded;
      (* Offline reconstruction from the journal alone. *)
      let off = Traj.of_journal path in
      crosscheck_empty (name ^ " of_journal") ~journal:path (P.events off);
      Printf.printf "ok   trajectory %-8s round-trips (%d events)\n" name
        (List.length (P.events p))
  | Flow.Partial pp ->
      fail "%s: flow degraded at %s" name (Flow.stage_name pp.Flow.failed_stage)
  | exception e -> fail "%s: flow raised %s" name (Printexc.to_string e));
  cleanup path;
  if Sys.file_exists tfile then Sys.remove tfile

(* Kill + resume: the rewritten journal is one coherent stream, so its
   offline trajectory is the stitched record of the whole run and must
   cross-check (and replay) with zero divergences. *)
let trajectory_stitched () =
  let case = List.hd (Suite.all ()) in
  let path = temp_journal "stitch" in
  let mid n =
    cleanup path;
    match
      Faults.run_journaled_killed ~technology:Flow.Ecl
        ~constraints:case.Suite.constraints ~guard:Guard.Sampled ~journal:path
        n case.Suite.case_design
    with
    | None -> true (* crashed: a resumable journal is on disk *)
    | Some _ -> false
  in
  (* Kill late (mid-optimize if possible), then resume to completion
     with a fresh recorder. *)
  let killed = List.exists mid [ 12; 9; 6; 4; 3; 2 ] in
  if not killed then fail "stitch: no kill point produced a crash"
  else begin
    let p = P.create () in
    match Flow.resume ~provenance:p path with
    | Flow.Complete _ ->
        (* The resumed run's live stream mirrors the rewritten journal. *)
        crosscheck_empty "stitch live" ~journal:path (P.events p);
        (* The stitched offline trajectory covers the whole run. *)
        let off = Traj.of_journal path in
        crosscheck_empty "stitch of_journal" ~journal:path (P.events off);
        (match List.rev (P.events off) with
        | P.Finish { fin_outcome; _ } :: _ ->
            if fin_outcome <> "complete" then
              fail "stitch: stitched trajectory ends %S" fin_outcome
        | _ -> fail "stitch: stitched trajectory lacks a finish record");
        (* And the same journal replays divergence-free. *)
        (match Flow.replay path with
        | rep ->
            if rep.Flow.rep_divergences <> [] then
              fail "stitch: replay found %d divergence(s)"
                (List.length rep.Flow.rep_divergences)
        | exception e ->
            fail "stitch: replay raised %s" (Printexc.to_string e));
        Printf.printf "ok   stitched trajectory across kill+resume (%d events)\n"
          (List.length (P.events off))
    | Flow.Partial pp ->
        fail "stitch: resume degraded at %s"
          (Flow.stage_name pp.Flow.failed_stage)
    | exception e -> fail "stitch: resume raised %s" (Printexc.to_string e)
  end;
  cleanup path

let () =
  let cases = Suite.all () in
  List.iter conservation_fuzz cases;
  lineage_mechanics ();
  pending_hygiene ();
  miscompile_nets_to_zero ();
  List.iter trajectory_roundtrip cases;
  trajectory_stitched ();
  if !failures > 0 then begin
    Printf.printf "provenance_suite: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "provenance_suite: all clean"
