(* PLA and boolean-equation front-end tests. *)

module D = Milo_netlist.Design
open Milo_boolfunc

(* a full adder in PLA form *)
let full_adder_pla =
  {|
.i 3
.o 2
.ilb a b cin
.ob sum cout
001 10
010 10
100 10
111 10
11- 01
1-1 01
-11 01
.e
|}

let test_parse () =
  let pla = Milo_pla.Pla.of_string full_adder_pla in
  Alcotest.(check (list string)) "inputs" [ "a"; "b"; "cin" ] pla.Milo_pla.Pla.inputs;
  Alcotest.(check (list string)) "outputs" [ "sum"; "cout" ] pla.Milo_pla.Pla.outputs;
  (match pla.Milo_pla.Pla.covers with
  | [ sum; cout ] ->
      Alcotest.(check int) "sum cubes" 4 (Cover.size sum);
      Alcotest.(check int) "cout cubes" 3 (Cover.size cout)
  | _ -> Alcotest.fail "expected two covers")

let test_design_behaviour () =
  let pla = Milo_pla.Pla.of_string full_adder_pla in
  let d = Milo_pla.Pla.to_design ~name:"fa" pla in
  let s = Milo_sim.Simulator.create (Util.env_gen ()) d in
  for m = 0 to 7 do
    let a = m land 1 <> 0 and b = m land 2 <> 0 and cin = m land 4 <> 0 in
    let outs =
      Milo_sim.Simulator.outputs s [ ("a", a); ("b", b); ("cin", cin) ]
    in
    let total = (if a then 1 else 0) + (if b then 1 else 0) + if cin then 1 else 0 in
    Alcotest.(check bool) "sum" (total land 1 = 1) (List.assoc "sum" outs);
    Alcotest.(check bool) "cout" (total >= 2) (List.assoc "cout" outs)
  done

let test_roundtrip () =
  let pla = Milo_pla.Pla.of_string full_adder_pla in
  let pla2 = Milo_pla.Pla.of_string (Milo_pla.Pla.to_string pla) in
  List.iter2
    (fun c1 c2 ->
      Alcotest.(check bool) "equivalent covers" true (Cover.equivalent c1 c2))
    pla.Milo_pla.Pla.covers pla2.Milo_pla.Pla.covers

let test_pla_errors () =
  let bad src =
    match Milo_pla.Pla.of_string src with
    | _ -> false
    | exception Milo_pla.Pla.Pla_error (_, _) -> true
  in
  Alcotest.(check bool) "missing .i" true (bad "10 1\n");
  Alcotest.(check bool) "bad width" true (bad ".i 2\n.o 1\n101 1\n");
  Alcotest.(check bool) "bad char" true (bad ".i 2\n.o 1\n1z 1\n");
  Alcotest.(check bool) "bad directive" true (bad ".i 2\n.o 1\n.frob\n11 1\n")

let test_pla_through_flow () =
  (* PLA in, optimized ECL out, function preserved. *)
  let pla = Milo_pla.Pla.of_string full_adder_pla in
  let design = Milo_pla.Pla.to_design ~name:"fa_flow" pla in
  let baseline, _ = Milo.Flow.human_baseline ~technology:Milo.Flow.Ecl design in
  let res =
    Milo.Flow.run_exn ~technology:Milo.Flow.Ecl
      ~constraints:(Milo.Constraints.delay 3.0) design
  in
  Util.check_equiv (Util.env_ecl ()) baseline (Util.env_ecl ())
    res.Milo.Flow.optimized

(* --- boolean equations ------------------------------------------------ *)

let test_equations_behaviour () =
  let src =
    {|
# a 2:1 mux plus parity
pick   = s & b | !s & a;
parity = a ^ b ^ s;
both   = pick & parity;
|}
  in
  let d = Milo_pla.Equations.to_design src in
  let s = Milo_sim.Simulator.create (Util.env_gen ()) d in
  for m = 0 to 7 do
    let a = m land 1 <> 0 and b = m land 2 <> 0 and sel = m land 4 <> 0 in
    let outs = Milo_sim.Simulator.outputs s [ ("a", a); ("b", b); ("s", sel) ] in
    let pick = if sel then b else a in
    let parity = a <> b <> sel in
    Alcotest.(check bool) "pick" pick (List.assoc "pick" outs);
    Alcotest.(check bool) "parity" parity (List.assoc "parity" outs);
    Alcotest.(check bool) "both" (pick && parity) (List.assoc "both" outs)
  done

let test_equation_precedence () =
  (* or < xor < and: a | b ^ c & d parses as a | (b ^ (c & d)) *)
  let d = Milo_pla.Equations.to_design "y = a | b ^ c & d;" in
  let s = Milo_sim.Simulator.create (Util.env_gen ()) d in
  for m = 0 to 15 do
    let v i = m land (1 lsl i) <> 0 in
    let expect = v 0 || v 1 <> (v 2 && v 3) in
    let outs =
      Milo_sim.Simulator.outputs s
        [ ("a", v 0); ("b", v 1); ("c", v 2); ("d", v 3) ]
    in
    Alcotest.(check bool) (Printf.sprintf "m=%d" m) expect (List.assoc "y" outs)
  done

let test_equation_errors () =
  let bad src =
    match Milo_pla.Equations.to_design src with
    | _ -> false
    | exception Milo_pla.Equations.Equation_error (_, _) -> true
  in
  Alcotest.(check bool) "missing semi" true (bad "y = a & b");
  Alcotest.(check bool) "missing operand" true (bad "y = a &;");
  Alcotest.(check bool) "unbalanced paren" true (bad "y = (a & b;");
  Alcotest.(check bool) "double definition" true (bad "y = a; y = b;");
  Alcotest.(check bool) "empty" true (bad "  # nothing\n")

(* Property: a random expression tree, printed to equation text and
   elaborated, simulates exactly like direct evaluation of the tree. *)
let prop_random_equations =
  let gen = QCheck2.Gen.(pair (int_bound 10000) (int_range 1 12)) in
  Util.qtest ~count:60 "random equations behave" gen (fun (seed, size) ->
      let rng = Random.State.make [| seed |] in
      let vars = [| "a"; "b"; "c"; "d" |] in
      let module E = struct
        type t = V of int | N of t | A of t * t | O of t * t | X of t * t
      end in
      let rec gen_ast depth =
        if depth >= size || Random.State.int rng 3 = 0 then
          E.V (Random.State.int rng 4)
        else
          match Random.State.int rng 4 with
          | 0 -> E.N (gen_ast (depth + 1))
          | 1 -> E.A (gen_ast (depth + 1), gen_ast (depth + 1))
          | 2 -> E.O (gen_ast (depth + 1), gen_ast (depth + 1))
          | _ -> E.X (gen_ast (depth + 1), gen_ast (depth + 1))
      in
      let ast = gen_ast 0 in
      let rec print = function
        | E.V i -> vars.(i)
        | E.N e -> "!(" ^ print e ^ ")"
        | E.A (x, y) -> "(" ^ print x ^ " & " ^ print y ^ ")"
        | E.O (x, y) -> "(" ^ print x ^ " | " ^ print y ^ ")"
        | E.X (x, y) -> "(" ^ print x ^ " ^ " ^ print y ^ ")"
      in
      let rec eval env = function
        | E.V i -> env.(i)
        | E.N e -> not (eval env e)
        | E.A (x, y) -> eval env x && eval env y
        | E.O (x, y) -> eval env x || eval env y
        | E.X (x, y) -> eval env x <> eval env y
      in
      let d = Milo_pla.Equations.to_design (Printf.sprintf "y = %s;" (print ast)) in
      let s = Milo_sim.Simulator.create (Util.env_gen ()) d in
      let ok = ref true in
      for m = 0 to 15 do
        let env = Array.init 4 (fun i -> m land (1 lsl i) <> 0) in
        let ins = List.init 4 (fun i -> (vars.(i), env.(i))) in
        let got =
          Option.value ~default:false
            (List.assoc_opt "y" (Milo_sim.Simulator.outputs s ins))
        in
        if got <> eval env ast then ok := false
      done;
      !ok)

let () =
  Alcotest.run "pla"
    [
      ( "pla",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "behaviour" `Quick test_design_behaviour;
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "errors" `Quick test_pla_errors;
          Alcotest.test_case "through the flow" `Quick test_pla_through_flow;
        ] );
      ( "equations",
        [
          Alcotest.test_case "behaviour" `Quick test_equations_behaviour;
          Alcotest.test_case "precedence" `Quick test_equation_precedence;
          Alcotest.test_case "errors" `Quick test_equation_errors;
          prop_random_equations;
        ] );
    ]
