(* Abstract-interpretation and certification suite — tier-1 gate for
   lib/absint.

   - soundness fuzz: every net the analysis proves constant holds that
     value in the simulator under random input vectors (and across
     clock steps), on every mapped suite design;
   - the facts stay sound on the optimized output of a Full-guarded
     flow (invariance under guard-approved rewrites);
   - incremental oracle: feeding committed change-log entries to
     [advance] yields exactly the facts of a from-scratch analysis;
   - certification: every built-in critic rule obtains a Certified or
     Probabilistic certificate over the witness corpus, and every
     planted miscompiling rule from [Milo_faults] is Refused;
   - certificates are digest-signed: a tampered one fails [valid] and
     is not served from the cache;
   - JSON regression: lint reports and analysis summaries stay
     well-formed JSON when design/net names contain quotes. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Rule = Milo_rules.Rule
module Absint = Milo_absint.Absint
module Certify = Milo_absint.Certify
module Lint_facts = Milo_absint.Lint_facts
module Simulator = Milo_sim.Simulator
module Gate_comp = Milo_compilers.Gate_comp
module Table_map = Milo_techmap.Table_map
module Flow = Milo.Flow
module Suite = Milo_designs.Suite
module Lint = Milo_lint.Lint
module Diagnostic = Milo_lint.Diagnostic

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.printf "FAIL %s\n%!" name
  end

let target () = Table_map.ecl_target ()

let sim_env () =
  Simulator.env_of_techs
    [ (target ()).Table_map.tech; Milo_library.Generic.get () ]

let absint_env () =
  Absint.env_of_techs
    [ (target ()).Table_map.tech; Milo_library.Generic.get () ]

(* --- Soundness fuzz ----------------------------------------------------- *)

let random_vector rng inputs =
  List.map (fun p -> (p, Random.State.bool rng)) inputs

(* Assert every proved-constant net settles to its constant under
   [vectors] random input assignments, stepping the clock every few
   vectors so sequential state moves off reset. *)
let fuzz_soundness name design vectors =
  let env = sim_env () in
  let st = Absint.analyze (absint_env ()) design in
  let consts = Absint.const_nets st in
  match Simulator.create env design with
  | exception _ -> () (* unsimulable designs prove nothing either way *)
  | sim ->
      let inputs =
        List.filter_map
          (fun (p, dir, _) -> if dir = T.Input then Some p else None)
          (D.ports design)
      in
      let rng = Random.State.make [| 0xab51; Hashtbl.hash name |] in
      (try
         for i = 1 to vectors do
           let vec = random_vector rng inputs in
           let values = Simulator.settle sim vec in
           List.iter
             (fun (nid, v) ->
               let simulated =
                 match Hashtbl.find_opt values nid with
                 | Some b -> b
                 | None -> false
               in
               if simulated <> v then begin
                 check
                   (Printf.sprintf "%s: net %d proved %b but simulates %b"
                      name nid v simulated)
                   false;
                 raise Exit
               end)
             consts;
           if i mod 7 = 0 then Simulator.step sim vec
         done
       with
      | Exit -> ()
      | Simulator.Combinational_loop _ -> ());
      ()

let mapped_suite () =
  List.filter_map
    (fun (case : Suite.case) ->
      match Flow.human_baseline case.Suite.case_design with
      | mapped, _ -> Some (case.Suite.case_name, mapped)
      | exception _ -> None)
    (Suite.all ())

let test_soundness () =
  List.iter
    (fun (name, mapped) -> fuzz_soundness name mapped 60)
    (mapped_suite ());
  (* and on the certification corpus itself *)
  List.iteri
    (fun i d -> fuzz_soundness (Printf.sprintf "corpus%d" i) d 60)
    (Certify.default_corpus (target ()))

(* --- Invariance under guard-approved rewrites --------------------------- *)

let test_guarded_flow_soundness () =
  List.iter
    (fun mk ->
      let case = mk () in
      match
        Flow.run ~guard:Milo_guard.Guard.Full
          ~constraints:case.Suite.constraints case.Suite.case_design
      with
      | Flow.Complete res ->
          fuzz_soundness
            (case.Suite.case_name ^ ":optimized")
            res.Flow.optimized 60
      | Flow.Partial _ ->
          check (case.Suite.case_name ^ ": full-guard flow completes") false)
    [ Suite.design1; Suite.design3 ]

(* --- Incremental oracle -------------------------------------------------- *)

let facts_signature st =
  ( List.sort compare (Absint.const_nets st),
    List.sort compare (Absint.dead_comps st),
    List.sort compare (Absint.unobservable_comps st),
    List.sort compare (Absint.stuck_pins st) )

let test_incremental () =
  let tgt = target () in
  let case = Suite.design1 () in
  let mapped, _ = Flow.human_baseline case.Suite.case_design in
  let env = absint_env () in
  let st = Absint.analyze env mapped in
  ignore (facts_signature st);
  (* grow the design: a constant-fed gate chain and a dead inverter *)
  let set = tgt.Table_map.set in
  let log = D.new_log () in
  let some_input =
    match
      List.find_opt (fun (_, dir, _) -> dir = T.Input) (D.ports mapped)
    with
    | Some (_, _, nid) -> nid
    | None -> D.new_net ~log mapped
  in
  let vss = Gate_comp.add_const ~log mapped set T.Vss in
  let tied = Gate_comp.add_gate ~log mapped set T.And [ some_input; vss ] in
  ignore (Gate_comp.add_gate ~log mapped set T.Inv [ tied ]);
  let entries = D.entries log in
  D.commit log;
  Absint.advance st entries;
  let incr_facts = facts_signature st in
  let fresh_facts = facts_signature (Absint.analyze env mapped) in
  check "incremental advance matches from-scratch analysis"
    (incr_facts = fresh_facts);
  check "advance ran incrementally, not a full re-run"
    ((Absint.stats st).Absint.full_runs = 1
    && (Absint.stats st).Absint.incremental_runs = 1);
  (* the tied gate's output must be proved constant low *)
  check "constant chain proved" (Absint.net_const st tied = Some false)

(* --- Certification ------------------------------------------------------- *)

let test_certification () =
  let tgt = target () in
  let cache = Certify.create_cache () in
  let certs =
    Certify.certify_rules ~cache tgt Milo_critic.Critic.all_logic_level
  in
  check "every built-in rule yields a certificate"
    (List.length certs = List.length Milo_critic.Critic.all_logic_level);
  List.iter
    (fun (c : Certify.certificate) ->
      check
        (Printf.sprintf "rule %s certified or probabilistic (got %s%s)"
           c.Certify.cert_rule
           (Certify.verdict_name c.Certify.cert_verdict)
           (if c.Certify.cert_detail = "" then ""
            else ": " ^ c.Certify.cert_detail))
        (match c.Certify.cert_verdict with
        | Certify.Certified | Certify.Probabilistic -> true
        | Certify.Uncertified | Certify.Refused -> false);
      check
        (Printf.sprintf "certificate for %s is signed" c.Certify.cert_rule)
        (Certify.valid c))
    certs;
  check "a solid majority of rules is fully certified"
    (List.length (Certify.certified_names certs) * 2
    > List.length certs);
  (* cache round-trip *)
  List.iter
    (fun (c : Certify.certificate) ->
      check "cache serves the certificate"
        (Certify.lookup ~cache
           ~tech:(Milo_library.Technology.name tgt.Table_map.tech)
           c.Certify.cert_rule
        = Some c))
    certs;
  (* a tampered certificate fails validation *)
  (match certs with
  | c :: _ ->
      let forged = { c with Certify.cert_verdict = Certify.Certified } in
      check "tampered certificate rejected"
        (c.Certify.cert_verdict = Certify.Certified || not (Certify.valid forged))
  | [] -> ());
  (* planted miscompiling rules are refused *)
  List.iter
    (fun (rule : Rule.t) ->
      let fcache = Certify.create_cache () in
      match Certify.certify_rules ~cache:fcache tgt [ rule ] with
      | [ c ] ->
          check
            (Printf.sprintf "fault rule %s refused (got %s)"
               rule.Rule.rule_name
               (Certify.verdict_name c.Certify.cert_verdict))
            (c.Certify.cert_verdict = Certify.Refused);
          check "refused rule is not in the certified set"
            (Certify.certified_names [ c ] = [])
      | _ -> check ("certify " ^ rule.Rule.rule_name) false)
    (Milo_faults.miscompiling_rules ())

(* --- Analysis-powered lint ----------------------------------------------- *)

let test_lint_facts () =
  let tgt = target () in
  let set = tgt.Table_map.set in
  let d = D.create "lintfacts" in
  let a = D.add_port d "A" T.Input in
  let b = D.add_port d "B" T.Input in
  let vdd = Gate_comp.add_const d set T.Vdd in
  (* constant output port *)
  ignore (D.add_port ~net:(Gate_comp.add_gate d set T.Or [ a; vdd ]) d "YC"
            T.Output);
  (* dead gate *)
  ignore (Gate_comp.add_gate d set T.And [ a; b ]);
  (* masked (unobservable) cone *)
  let u = Gate_comp.add_gate d set T.Xor [ a; b ] in
  ignore (D.add_port ~net:(Gate_comp.add_gate d set T.Or [ u; vdd ]) d "YM"
            T.Output);
  (* floating input on a live gate *)
  let fl = D.add_comp d (T.Macro "E_AND2") in
  D.connect d fl "A0" a;
  let fln = D.new_net d in
  D.connect d fl "Y" fln;
  ignore (D.add_port ~net:fln d "YF" T.Output);
  let st = Absint.analyze (absint_env ()) d in
  let diags = Lint_facts.all st in
  let has rule =
    List.exists (fun (g : Diagnostic.t) -> g.Diagnostic.rule = rule) diags
  in
  check "constant-output reported" (has "absint-constant-output");
  check "dead-macro reported" (has "absint-dead-macro");
  check "unobservable-cone reported" (has "absint-unobservable-cone");
  check "stuck-input reported" (has "absint-stuck-input");
  check "floating-input reported" (has "absint-floating-input")

(* --- JSON escaping regression -------------------------------------------- *)

(* Minimal JSON well-formedness scanner: strings with escapes, nesting
   balance.  Enough to catch a raw quote leaking into output. *)
let json_well_formed s =
  let n = String.length s in
  let rec skip_string i =
    if i >= n then None
    else
      match s.[i] with
      | '"' -> Some (i + 1)
      | '\\' -> if i + 1 < n then skip_string (i + 2) else None
      | _ -> skip_string (i + 1)
  in
  let rec go i depth in_obj =
    if i >= n then depth = 0 && in_obj = 0
    else
      match s.[i] with
      | '"' -> (
          match skip_string (i + 1) with
          | Some j -> go j depth in_obj
          | None -> false)
      | '{' | '[' -> go (i + 1) (depth + 1) in_obj
      | '}' | ']' -> depth > 0 && go (i + 1) (depth - 1) in_obj
      | _ -> go (i + 1) depth in_obj
  in
  go 0 0 0

let test_json_escaping () =
  let d = D.create "bad \"quoted\" design" in
  let a = D.add_port d "A" T.Input in
  let net = D.new_net ~name:"wire \"x\"\n" d in
  let c = D.add_comp d ~name:"comp \"q\"" (T.Macro "E_INV") in
  D.connect d c "A0" a;
  D.connect d c "Y" net;
  ignore (D.add_port ~net d "Y" T.Output);
  let resolve =
    Milo_library.Technology.resolver (target ()).Table_map.tech
  in
  let diags = Lint.run ~resolve d in
  let report =
    Lint.report_to_json
      { Lint.design_name = D.name d; stage = Some "analysis"; diags }
  in
  check "lint JSON report with quoted names is well-formed"
    (json_well_formed report);
  let st = Absint.analyze (absint_env ()) d in
  check "analysis summary JSON with quoted name is well-formed"
    (json_well_formed (Absint.summary_to_json (D.name d) (Absint.summary st)));
  List.iter
    (fun g ->
      check "diagnostic JSON is well-formed"
        (json_well_formed (Diagnostic.to_json g)))
    (Lint_facts.all st);
  check "json_escape escapes quotes"
    (Diagnostic.json_escape "a\"b" = "a\\\"b")

(* --- Driver -------------------------------------------------------------- *)

let () =
  test_soundness ();
  test_guarded_flow_soundness ();
  test_incremental ();
  test_certification ();
  test_lint_facts ();
  test_json_escaping ();
  if !failures > 0 then begin
    Printf.printf "%d absint suite failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "absint suite: all checks passed"
