type node = {
  span : Trace.span;
  children : node list;
  total : float;
  self : float;
}

let tree tr =
  let spans = Trace.spans tr in
  let kids = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace.span) ->
      match s.parent with
      | None -> ()
      | Some p ->
          Hashtbl.replace kids p (s :: (Option.value ~default:[] (Hashtbl.find_opt kids p))))
    spans;
  let rec build (s : Trace.span) =
    let children =
      Hashtbl.find_opt kids s.id |> Option.value ~default:[] |> List.rev
      |> List.map build
    in
    let total = Trace.span_dur s in
    let child_total = List.fold_left (fun a n -> a +. n.total) 0.0 children in
    { span = s; children; total; self = Float.max 0.0 (total -. child_total) }
  in
  List.filter (fun (s : Trace.span) -> s.parent = None) spans |> List.map build

let hot_stages tr =
  let acc = Hashtbl.create 16 in
  let rec visit n =
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt acc n.span.Trace.name) in
    Hashtbl.replace acc n.span.Trace.name (prev +. n.self);
    List.iter visit n.children
  in
  List.iter visit (tree tr);
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (_, a) (_, b) -> compare (b : float) a)

let hot_rules_by_time = Trace.rule_stats

let gain_per_ms (s : Trace.rule_stat) =
  if s.time_s <= 0.0 then 0.0 else s.gain /. (s.time_s *. 1e3)

let hot_rules_by_gain_rate tr =
  Trace.rule_stats tr
  |> List.filter (fun (_, (s : Trace.rule_stat)) -> s.applies > 0 && s.gain > 0.0)
  |> List.sort (fun (_, a) (_, b) -> compare (gain_per_ms b) (gain_per_ms a))

let ms s = Printf.sprintf "%.2f" (s *. 1e3)

let render tr =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "span tree (total ms / self ms)\n";
  let rec dump indent n =
    pf "%s%-*s %8s %8s\n" indent
      (max 1 (36 - String.length indent))
      n.span.Trace.name (ms n.total) (ms n.self);
    List.iter (dump (indent ^ "  ")) n.children
  in
  List.iter (dump "  ") (tree tr);
  let rules = Trace.rule_stats tr in
  if rules <> [] then begin
    pf "\nrule attribution (by time)\n";
    pf "  %-28s %6s %6s %6s %5s %9s %9s %8s\n" "rule" "evals" "apply" "refuse"
      "undo" "time(ms)" "gain" "gain/ms";
    List.iter
      (fun (name, (s : Trace.rule_stat)) ->
        pf "  %-28s %6d %6d %6d %5d %9s %9.3f %8.3f\n" name s.evals s.applies
          s.refusals s.rollbacks (ms s.time_s) s.gain (gain_per_ms s))
      rules
  end;
  let events = Trace.events tr in
  let by_kind = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      let k = Trace.kind_label e.kind in
      Hashtbl.replace by_kind k (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k)))
    events;
  pf "\nevents: %d" (Trace.event_count tr);
  let kinds =
    Hashtbl.fold (fun k v l -> (k, v) :: l) by_kind []
    |> List.sort (fun (_, a) (_, b) -> compare (b : int) a)
  in
  List.iter (fun (k, n) -> pf "\n  %-20s %6d" k n) kinds;
  pf "\n";
  let m = Trace.metrics tr in
  let hists = Metrics.histograms m in
  if hists <> [] then begin
    pf "\nhistograms (count / mean)\n";
    List.iter
      (fun (name, h) -> pf "  %-28s %6d %10.2f\n" name h.Metrics.count (Metrics.mean h))
      hists
  end;
  let gauges = Metrics.gauges m in
  if gauges <> [] then begin
    pf "\ngauges\n";
    List.iter (fun (name, v) -> pf "  %-28s %10.2f\n" name v) gauges
  end;
  Buffer.contents b

let take k l =
  let rec go k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go k l

let hot_summary ?(top = 5) tr =
  let stages =
    hot_stages tr |> List.filter (fun (_, t) -> t > 0.0) |> take top
  in
  let by_time = take top (hot_rules_by_time tr) in
  let by_rate = take top (hot_rules_by_gain_rate tr) in
  if stages = [] && by_time = [] then ""
  else begin
    let b = Buffer.create 256 in
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    if stages <> [] then
      pf "hot stages:  %s\n"
        (String.concat ", "
           (List.map (fun (n, t) -> Printf.sprintf "%s %sms" n (ms t)) stages));
    if by_time <> [] then
      pf "hot rules:   %s\n"
        (String.concat ", "
           (List.map
              (fun (n, (s : Trace.rule_stat)) ->
                Printf.sprintf "%s %sms" n (ms s.time_s))
              by_time));
    if by_rate <> [] then
      pf "best gain/ms: %s\n"
        (String.concat ", "
           (List.map
              (fun (n, s) -> Printf.sprintf "%s %.3f" n (gain_per_ms s))
              by_rate));
    Buffer.contents b
  end
