(** Post-run analysis of a trace: the span tree with self-times, and
    the "hot rules / hot stages" attributions used by [Report.summary]
    and the [milo profile] subcommand.

    Self-time is a span's duration minus the duration of its direct
    children — the time the code at that level spent itself. *)

type node = {
  span : Trace.span;
  children : node list;  (** in start order *)
  total : float;  (** span duration, seconds *)
  self : float;  (** total minus children's totals, clamped at 0 *)
}

val tree : Trace.t -> node list
(** Root spans (in start order) with their subtrees. *)

val hot_stages : Trace.t -> (string * float) list
(** Aggregate self-time by span name, descending — stages, optimizer
    phases and per-level spans all attribute here. *)

val hot_rules_by_time : Trace.t -> (string * Trace.rule_stat) list
(** Rules by descending total attributed wall time. *)

val hot_rules_by_gain_rate : Trace.t -> (string * Trace.rule_stat) list
(** Rules with at least one kept application, by descending cost
    improvement per millisecond of attributed time. *)

val render : Trace.t -> string
(** The [milo profile] report: the span tree with total/self times,
    then per-rule attribution (applies, refusals, time, gain,
    gain/ms), then event and metric headlines. *)

val hot_summary : ?top:int -> Trace.t -> string
(** The compact "hot stages / hot rules" section appended to
    [Report.summary] ([top] defaults to 5 each).  Empty string when
    the trace recorded nothing. *)
