type value = Int of int | Float of float | Str of string | Bool of bool

type cost = { delay : float; area : float; power : float }

type span = {
  id : int;
  parent : int option;
  name : string;
  start : float;
  mutable stop : float;
  mutable attrs : (string * value) list;
}

let span_closed s = s.stop >= 0.0
let span_dur s = if span_closed s then s.stop -. s.start else 0.0

type event_kind =
  | Rule_applied of { rule : string; site : string; gain : float }
  | Rule_refused of { rule : string; site : string; reason : string }
  | Rule_rolled_back of { rule : string; site : string }
  | Rule_quarantined of { rule : string; failures : int; message : string }
  | Rule_miscompiled of { rule : string; site : string; detail : string }
  | Search_decision of { rule : string; site : string; depth : int; gain : float }
  | Strategy_step of {
      strategy : string;
      detail : string;
      kept : bool;
      delay_before : float;
      delay_after : float;
    }
  | Budget_exhausted of { steps : int; evals : int; elapsed : float }
  | Checkpoint of { stage : string; comps : int; nets : int }
  | Measure_advance of { cone_nets : int; cone_comps : int }
  | Measure_retreat
  | Measure_resync of { reason : string }
  | Note of string

type event = {
  seq : int;
  at : float;
  stage : string;
  in_span : int option;
  before : cost option;
  after : cost option;
  kind : event_kind;
}

let kind_label = function
  | Rule_applied _ -> "rule-applied"
  | Rule_refused _ -> "rule-refused"
  | Rule_rolled_back _ -> "rule-rolled-back"
  | Rule_quarantined _ -> "rule-quarantined"
  | Rule_miscompiled _ -> "rule-miscompiled"
  | Search_decision _ -> "search-decision"
  | Strategy_step _ -> "strategy-step"
  | Budget_exhausted _ -> "budget-exhausted"
  | Checkpoint _ -> "checkpoint"
  | Measure_advance _ -> "measure-advance"
  | Measure_retreat -> "measure-retreat"
  | Measure_resync _ -> "measure-resync"
  | Note _ -> "note"

type rule_stat = {
  mutable applies : int;
  mutable refusals : int;
  mutable rollbacks : int;
  mutable evals : int;
  mutable time_s : float;
  mutable gain : float;
}

type t = {
  epoch : float;
  mutable last_now : float;
  mutable next_span : int;
  mutable stack : span list;  (* innermost first *)
  mutable all_spans : span list;  (* most recent first *)
  ring : event option array;
  mutable seq : int;
  mutable stage : string;
  m : Metrics.t;
  rules : (string, rule_stat) Hashtbl.t;
  mutable sinks : sink list;
}

and sink = {
  sink_span : span -> unit;
  sink_event : event -> unit;
  sink_flush : t -> unit;
}

let create ?(ring_size = 65536) () =
  let ring_size = max 1 ring_size in
  {
    epoch = Unix.gettimeofday ();
    last_now = 0.0;
    next_span = 0;
    stack = [];
    all_spans = [];
    ring = Array.make ring_size None;
    seq = 0;
    stage = "";
    m = Metrics.create ();
    rules = Hashtbl.create 32;
    sinks = [];
  }

(* Wall time relative to [epoch], clamped monotone non-decreasing so a
   clock step never yields a negative span duration. *)
let now t =
  let v = Unix.gettimeofday () -. t.epoch in
  if v > t.last_now then t.last_now <- v;
  t.last_now

let add_sink t s = t.sinks <- s :: t.sinks

(* --- the ambient tracer ------------------------------------------- *)

(* Domain-local: each domain has its own ambient tracer slot.  The
   flow installs the run's tracer on the coordinating domain only;
   worker domains spawned by the parallel runtime start with an empty
   slot, so their scratch evaluations are untraced by construction —
   the merged event stream is exactly the coordinator's, ordered by
   its per-tracer clock, and stays bit-identical across domain
   counts. *)
let cur_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let cur () = Domain.DLS.get cur_key

let set_current o = cur () := o
let current () = !(cur ())
let enabled () = !(cur ()) != None

let with_tracer t f =
  let cur = cur () in
  let saved = !cur in
  cur := Some t;
  Fun.protect ~finally:(fun () -> cur := saved) f

(* Run [f] with tracing suppressed on this domain: the oracle-worker
   discipline for inline (single-domain) parallel execution, so a
   worker task behaves identically whether it runs on the coordinator
   or on a pool domain. *)
let without f =
  let cur = cur () in
  let saved = !cur in
  cur := None;
  Fun.protect ~finally:(fun () -> cur := saved) f

(* --- spans --------------------------------------------------------- *)

let begin_span_in t ?(attrs = []) name =
  let s =
    {
      id = t.next_span;
      parent = (match t.stack with [] -> None | p :: _ -> Some p.id);
      name;
      start = now t;
      stop = -1.0;
      attrs;
    }
  in
  t.next_span <- t.next_span + 1;
  t.stack <- s :: t.stack;
  t.all_spans <- s :: t.all_spans;
  s

let close_one t at s =
  if not (span_closed s) then begin
    s.stop <- at;
    List.iter (fun snk -> snk.sink_span s) t.sinks
  end

(* Pop the stack down to and including [s], closing everything popped:
   ending an ancestor force-closes descendants a fault left open, so
   traces stay balanced even when a stage unwinds with an exception. *)
let end_span_in t s =
  if List.memq s t.stack then begin
    let at = now t in
    let rec pop = function
      | [] -> []
      | x :: rest ->
          close_one t at x;
          if x == s then rest else pop rest
    in
    t.stack <- pop t.stack
  end

let with_span ?attrs name f =
  match !(cur ()) with
  | None -> f ()
  | Some t ->
      let s = begin_span_in t ?attrs name in
      Fun.protect ~finally:(fun () -> end_span_in t s) f

let open_span ?attrs name =
  match !(cur ()) with
  | None -> ()
  | Some t -> ignore (begin_span_in t ?attrs name)

let close_span name =
  match !(cur ()) with
  | None -> ()
  | Some t -> (
      match List.find_opt (fun s -> s.name = name) t.stack with
      | None -> ()
      | Some s -> end_span_in t s)

let attr key v =
  match !(cur ()) with
  | None -> ()
  | Some t -> (
      match t.stack with
      | [] -> ()
      | s :: _ -> s.attrs <- (key, v) :: s.attrs)

(* --- events -------------------------------------------------------- *)

let emit_in t ?before ?after kind =
  let e =
    {
      seq = t.seq;
      at = now t;
      stage = t.stage;
      in_span = (match t.stack with [] -> None | s :: _ -> Some s.id);
      before;
      after;
      kind;
    }
  in
  t.seq <- t.seq + 1;
  t.ring.(e.seq mod Array.length t.ring) <- Some e;
  List.iter (fun snk -> snk.sink_event e) t.sinks

let emit ?before ?after kind =
  match !(cur ()) with None -> () | Some t -> emit_in t ?before ?after kind

let set_stage name =
  match !(cur ()) with None -> () | Some t -> t.stage <- name

(* --- metrics ------------------------------------------------------- *)

let count name by =
  match !(cur ()) with None -> () | Some t -> Metrics.incr t.m name by

let set_gauge name v =
  match !(cur ()) with None -> () | Some t -> Metrics.set_gauge t.m name v

let sample name v =
  match !(cur ()) with None -> () | Some t -> Metrics.observe t.m name v

let stat_of t rule =
  match Hashtbl.find_opt t.rules rule with
  | Some s -> s
  | None ->
      let s =
        { applies = 0; refusals = 0; rollbacks = 0; evals = 0; time_s = 0.0; gain = 0.0 }
      in
      Hashtbl.replace t.rules rule s;
      s

let note_rule ~rule ~dt ~gain ~outcome =
  match !(cur ()) with
  | None -> ()
  | Some t ->
      let s = stat_of t rule in
      s.time_s <- s.time_s +. dt;
      (match outcome with
      | `Eval -> s.evals <- s.evals + 1
      | `Applied ->
          s.applies <- s.applies + 1;
          s.gain <- s.gain +. gain
      | `Refused -> s.refusals <- s.refusals + 1
      | `Rolled_back -> s.rollbacks <- s.rollbacks + 1)

(* --- queries ------------------------------------------------------- *)

let events t =
  let n = Array.length t.ring in
  let live = min t.seq n in
  let first = t.seq - live in
  let rec go i acc =
    if i < first then acc
    else
      match t.ring.(i mod n) with
      | Some e -> go (i - 1) (e :: acc)
      | None -> go (i - 1) acc
  in
  go (t.seq - 1) []

let event_count t = t.seq

(* Resume re-arm: a journaled run records [event_count] at every
   checkpoint, and a resumed run's fresh tracer continues the sequence
   from there, so journal deltas and trajectory records stay aligned
   across a kill.  The ring stays empty below the restored position —
   [events] skips the holes. *)
let restore_seq t n = if n > t.seq then t.seq <- n

let spans t = List.rev t.all_spans
let stage_of t = t.stage
let metrics t = t.m

let rule_stats t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.rules []
  |> List.sort (fun (_, a) (_, b) -> compare b.time_s a.time_s)

let flush t =
  let at = now t in
  List.iter (close_one t at) t.stack;
  t.stack <- [];
  let evals = Hashtbl.fold (fun _ s acc -> acc + s.evals) t.rules 0 in
  if evals > 0 && at > 0.0 then
    Metrics.set_gauge t.m "engine.evals_per_sec" (float_of_int evals /. at);
  List.iter (fun snk -> snk.sink_flush t) t.sinks
