let bucket_count = 32

type histogram = { count : int; sum : float; buckets : int array }

type hist = { mutable h_count : int; mutable h_sum : float; h_buckets : int array }

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let incr t name by =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

(* Bucket 0: v < 1 (including nan).  Bucket i >= 1: 2^(i-1) <= v <
   2^i.  The last bucket is unbounded above — infinity included, which
   must be caught before the float-to-int conversion (undefined on
   non-finite values). *)
let bucket_of v =
  if not (v >= 1.0) then 0
  else if v = infinity then bucket_count - 1
  else
    let i = 1 + int_of_float (floor (log v /. log 2.)) in
    if i < 1 then 1 else if i > bucket_count - 1 then bucket_count - 1 else i

let bucket_lo i = if i <= 0 then 0.0 else ldexp 1.0 (i - 1)

let observe t name v =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h = { h_count = 0; h_sum = 0.0; h_buckets = Array.make bucket_count 0 } in
        Hashtbl.replace t.hists name h;
        h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = sorted_bindings t.counters ( ! )
let gauges t = sorted_bindings t.gauges ( ! )

let histograms t =
  sorted_bindings t.hists (fun h ->
      { count = h.h_count; sum = h.h_sum; buckets = Array.copy h.h_buckets })

let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count
