(** Flow telemetry: hierarchical spans, a typed event log, and a
    metrics registry, with pluggable sinks.

    The tracer is ambient, mirroring the engine's existing global
    switches ([Engine.set_debug_lint], [Measure.set_debug_check]): the
    flow installs a tracer with {!with_tracer} and instrumented code
    reports through the module-level helpers, which are no-ops when no
    tracer is installed.  Hot paths guard payload construction behind
    {!enabled} so the disabled default costs one ref read per probe.

    Timestamps come from a per-tracer clock that is clamped to be
    monotone non-decreasing, in seconds since {!create}. *)

(** {1 Attribute values and costs} *)

type value = Int of int | Float of float | Str of string | Bool of bool

type cost = { delay : float; area : float; power : float }
(** A design cost snapshot, as reported by the measurement layer. *)

(** {1 Spans} *)

type span = {
  id : int;
  parent : int option;
  name : string;
  start : float;
  mutable stop : float;  (** negative while the span is open *)
  mutable attrs : (string * value) list;
}

val span_closed : span -> bool
val span_dur : span -> float
(** Duration in seconds; 0 for a span that never closed. *)

(** {1 Events} *)

type event_kind =
  | Rule_applied of { rule : string; site : string; gain : float }
  | Rule_refused of { rule : string; site : string; reason : string }
  | Rule_rolled_back of { rule : string; site : string }
  | Rule_quarantined of { rule : string; failures : int; message : string }
  | Rule_miscompiled of { rule : string; site : string; detail : string }
      (** a semantic-guard cone check caught a miscompile; the
          application was reverted and the rule quarantined *)
  | Search_decision of { rule : string; site : string; depth : int; gain : float }
  | Strategy_step of {
      strategy : string;
      detail : string;
      kept : bool;
      delay_before : float;
      delay_after : float;
    }
  | Budget_exhausted of { steps : int; evals : int; elapsed : float }
  | Checkpoint of { stage : string; comps : int; nets : int }
  | Measure_advance of { cone_nets : int; cone_comps : int }
  | Measure_retreat
  | Measure_resync of { reason : string }
  | Note of string

type event = {
  seq : int;  (** global step index, monotonically increasing *)
  at : float;
  stage : string;  (** flow stage current when the event fired *)
  in_span : int option;  (** innermost open span *)
  before : cost option;
  after : cost option;
  kind : event_kind;
}

val kind_label : event_kind -> string
(** Short stable label ("rule-applied", "checkpoint", ...). *)

(** {1 Per-rule attribution} *)

type rule_stat = {
  mutable applies : int;
  mutable refusals : int;
  mutable rollbacks : int;
  mutable evals : int;
  mutable time_s : float;  (** total wall time spent evaluating/applying *)
  mutable gain : float;  (** total cost improvement from kept applies *)
}

(** {1 Sinks} *)

type t

type sink = {
  sink_span : span -> unit;  (** called when a span closes *)
  sink_event : event -> unit;
  sink_flush : t -> unit;  (** called once by {!flush} *)
}

(** {1 Tracer lifecycle} *)

val create : ?ring_size:int -> unit -> t
(** A fresh tracer.  [ring_size] bounds the in-memory event ring
    (default 65536); older events are overwritten but still reach
    streaming sinks and the metrics registry. *)

val add_sink : t -> sink -> unit

val flush : t -> unit
(** Force-close any spans still open (a faulted run unwinds through
    here), derive end-of-run gauges, then run every sink's flush.
    Idempotent per sink list. *)

(** {1 The ambient tracer} *)

val set_current : t option -> unit
val current : unit -> t option

val enabled : unit -> bool
(** True when a tracer is installed.  Guard event-payload allocation
    on hot paths with this. *)

val with_tracer : t -> (unit -> 'a) -> 'a
(** Install [t] for the duration of the callback (restoring the
    previous tracer even on exceptions).  Does not flush.

    The ambient slot is domain-local: a tracer installed on the
    coordinating domain is invisible to worker domains, so parallel
    scratch evaluations are untraced by construction. *)

val without : (unit -> 'a) -> 'a
(** Run the callback with tracing suppressed on this domain (restoring
    the previous tracer even on exceptions).  Used by the parallel
    runtime's inline execution mode so a worker task observes the same
    (absent) tracer whether it runs on the coordinator or on a pool
    domain. *)

(** {1 Recording (all no-ops without an installed tracer)} *)

val with_span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** Run the callback inside a fresh child span of the innermost open
    span.  The span closes when the callback returns or raises. *)

val open_span : ?attrs:(string * value) list -> string -> unit
(** Open a span without scoping it to a callback — for stages whose
    end is a later program point.  Pair with {!close_span}. *)

val close_span : string -> unit
(** Close the innermost open span with the given name, force-closing
    any descendants still open below it.  No-op if no such span. *)

val attr : string -> value -> unit
(** Attach an attribute to the innermost open span. *)

val emit : ?before:cost -> ?after:cost -> event_kind -> unit

val set_stage : string -> unit
(** Set the stage recorded on subsequent events. *)

val count : string -> int -> unit
val set_gauge : string -> float -> unit
val sample : string -> float -> unit

val note_rule :
  rule:string ->
  dt:float ->
  gain:float ->
  outcome:[ `Eval | `Applied | `Refused | `Rolled_back ] ->
  unit
(** Update the per-rule attribution table: [`Eval] charges time only;
    [`Applied] also books [gain]; the others bump their counters. *)

(** {1 Queries} *)

val now : t -> float
val events : t -> event list
(** Events surviving in the ring, oldest first. *)

val event_count : t -> int
(** Total events ever emitted (>= [List.length (events t)]). *)

val restore_seq : t -> int -> unit
(** Re-arm the event sequence counter at a recorded position (journal
    resume): subsequent events are numbered from [n], so sequence
    numbers stay aligned with the journal of the interrupted run they
    continue.  Never moves the counter backwards. *)

val spans : t -> span list
(** All spans, in creation (start) order. *)

val stage_of : t -> string
val rule_stats : t -> (string * rule_stat) list
(** Sorted by descending total time. *)

val metrics : t -> Metrics.t
