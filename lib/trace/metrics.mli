(** Metrics registry: named counters, gauges and histograms.

    Histograms use fixed log-scale buckets (powers of two): bucket 0
    counts observations below 1.0, bucket [i >= 1] counts observations
    in [[2^(i-1), 2^i)], and the last bucket absorbs everything above.
    That makes them cheap (an array bump), mergeable, and adequate for
    the quantities we track — rule-apply latencies in microseconds,
    STA update cone sizes, memo hit counts. *)

type t

type histogram = {
  count : int;  (** number of observations *)
  sum : float;  (** running sum, for means *)
  buckets : int array;  (** {!bucket_count} log-scale buckets *)
}

val bucket_count : int
(** Number of histogram buckets (32). *)

val bucket_lo : int -> float
(** [bucket_lo i] is the inclusive lower bound of bucket [i]
    (0.0 for bucket 0, [2^(i-1)] otherwise). *)

val create : unit -> t

val incr : t -> string -> int -> unit
(** Add to a counter, creating it at zero first if needed. *)

val set_gauge : t -> string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : t -> string -> float -> unit
(** Record one observation into a histogram. *)

val counter : t -> string -> int
(** Current value of a counter, 0 if never incremented. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val gauges : t -> (string * float) list
(** All gauges, sorted by name. *)

val histograms : t -> (string * histogram) list
(** All histograms (snapshots), sorted by name. *)

val mean : histogram -> float
(** [sum /. count], 0 when empty. *)
