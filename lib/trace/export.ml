let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ json_escape s ^ "\""

(* JSON has no inf/nan literals; clamp to representable extremes. *)
let num f =
  if Float.is_nan f then "0"
  else if f = infinity then "1e308"
  else if f = neg_infinity then "-1e308"
  else Printf.sprintf "%.9g" f

let value_json = function
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> num f
  | Trace.Str s -> quote s
  | Trace.Bool b -> if b then "true" else "false"

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> quote k ^ ":" ^ v) fields) ^ "}"

let cost_fields prefix (c : Trace.cost) =
  [
    (prefix ^ "delay", num c.delay);
    (prefix ^ "area", num c.area);
    (prefix ^ "power", num c.power);
  ]

let kind_fields (k : Trace.event_kind) =
  match k with
  | Rule_applied { rule; site; gain } ->
      [ ("rule", quote rule); ("site", quote site); ("gain", num gain) ]
  | Rule_refused { rule; site; reason } ->
      [ ("rule", quote rule); ("site", quote site); ("reason", quote reason) ]
  | Rule_rolled_back { rule; site } -> [ ("rule", quote rule); ("site", quote site) ]
  | Rule_quarantined { rule; failures; message } ->
      [
        ("rule", quote rule);
        ("failures", string_of_int failures);
        ("message", quote message);
      ]
  | Rule_miscompiled { rule; site; detail } ->
      [ ("rule", quote rule); ("site", quote site); ("detail", quote detail) ]
  | Search_decision { rule; site; depth; gain } ->
      [
        ("rule", quote rule);
        ("site", quote site);
        ("depth", string_of_int depth);
        ("gain", num gain);
      ]
  | Strategy_step { strategy; detail; kept; delay_before; delay_after } ->
      [
        ("strategy", quote strategy);
        ("detail", quote detail);
        ("kept", (if kept then "true" else "false"));
        ("delay_before", num delay_before);
        ("delay_after", num delay_after);
      ]
  | Budget_exhausted { steps; evals; elapsed } ->
      [
        ("steps", string_of_int steps);
        ("evals", string_of_int evals);
        ("elapsed", num elapsed);
      ]
  | Checkpoint { stage; comps; nets } ->
      [
        ("stage", quote stage);
        ("comps", string_of_int comps);
        ("nets", string_of_int nets);
      ]
  | Measure_advance { cone_nets; cone_comps } ->
      [ ("cone_nets", string_of_int cone_nets); ("cone_comps", string_of_int cone_comps) ]
  | Measure_retreat -> []
  | Measure_resync { reason } -> [ ("reason", quote reason) ]
  | Note s -> [ ("text", quote s) ]

let span_line (s : Trace.span) =
  obj
    ([
       ("t", quote "span");
       ("id", string_of_int s.id);
       ("parent", (match s.parent with None -> "null" | Some p -> string_of_int p));
       ("name", quote s.name);
       ("start", num s.start);
       ("dur", num (Trace.span_dur s));
     ]
    @ match s.attrs with
      | [] -> []
      | attrs -> [ ("attrs", obj (List.map (fun (k, v) -> (k, value_json v)) attrs)) ])

let event_line (e : Trace.event) =
  obj
    ([
       ("t", quote "event");
       ("kind", quote (Trace.kind_label e.kind));
       ("seq", string_of_int e.seq);
       ("at", num e.at);
       ("stage", quote e.stage);
       ("span", (match e.in_span with None -> "null" | Some i -> string_of_int i));
     ]
    @ (match e.before with None -> [] | Some c -> cost_fields "before_" c)
    @ (match e.after with None -> [] | Some c -> cost_fields "after_" c)
    @ kind_fields e.kind)

let metric_lines tr =
  let m = Trace.metrics tr in
  List.map
    (fun (name, v) ->
      obj [ ("t", quote "counter"); ("name", quote name); ("value", string_of_int v) ])
    (Metrics.counters m)
  @ List.map
      (fun (name, v) ->
        obj [ ("t", quote "gauge"); ("name", quote name); ("value", num v) ])
      (Metrics.gauges m)
  @ List.map
      (fun (name, (h : Metrics.histogram)) ->
        obj
          [
            ("t", quote "hist");
            ("name", quote name);
            ("count", string_of_int h.count);
            ("sum", num h.sum);
            ( "buckets",
              "["
              ^ String.concat "," (Array.to_list (Array.map string_of_int h.buckets))
              ^ "]" );
          ])
      (Metrics.histograms m)

let jsonl_sink oc =
  let line s =
    output_string oc s;
    output_char oc '\n'
  in
  {
    Trace.sink_span = (fun s -> line (span_line s));
    sink_event = (fun e -> line (event_line e));
    sink_flush =
      (fun tr ->
        List.iter line (metric_lines tr);
        flush oc);
  }

let write_jsonl oc tr =
  let line s =
    output_string oc s;
    output_char oc '\n'
  in
  List.iter (fun s -> line (span_line s)) (Trace.spans tr);
  List.iter (fun e -> line (event_line e)) (Trace.events tr);
  List.iter line (metric_lines tr);
  flush oc

(* --- Chrome trace_event ------------------------------------------- *)

let usec s = num (s *. 1e6)

let chrome_to_string tr =
  let b = Buffer.create 4096 in
  let first = ref true in
  let item s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n";
    Buffer.add_string b s
  in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iter
    (fun (s : Trace.span) ->
      item
        (obj
           [
             ("name", quote s.name);
             ("cat", quote "span");
             ("ph", quote "X");
             ("ts", usec s.start);
             ("dur", usec (Trace.span_dur s));
             ("pid", "1");
             ("tid", "1");
             ("args", obj (List.map (fun (k, v) -> (k, value_json v)) s.attrs));
           ]))
    (Trace.spans tr);
  List.iter
    (fun (e : Trace.event) ->
      item
        (obj
           [
             ("name", quote (Trace.kind_label e.kind));
             ("cat", quote "event");
             ("ph", quote "i");
             ("ts", usec e.at);
             ("s", quote "t");
             ("pid", "1");
             ("tid", "1");
             ( "args",
               obj
                 ([ ("seq", string_of_int e.seq); ("stage", quote e.stage) ]
                 @ (match e.before with None -> [] | Some c -> cost_fields "before_" c)
                 @ (match e.after with None -> [] | Some c -> cost_fields "after_" c)
                 @ kind_fields e.kind) );
           ]))
    (Trace.events tr);
  let m = Trace.metrics tr in
  List.iter
    (fun (name, v) ->
      item
        (obj
           [
             ("name", quote name);
             ("ph", quote "C");
             ("ts", usec (Trace.now tr));
             ("pid", "1");
             ("args", obj [ ("value", string_of_int v) ]);
           ]))
    (Metrics.counters m);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_chrome oc tr =
  output_string oc (chrome_to_string tr);
  flush oc

(* --- Atomic file export ------------------------------------------- *)

(* Whole-file exports commit with the tmp + fsync + rename discipline:
   readers only ever see the previous complete file or the new one,
   never a torn export.  The streaming [jsonl_sink] is the opposite
   trade — it survives crashes by leaving a valid line prefix. *)
let save_atomic path write_body =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let oc = Unix.out_channel_of_descr fd in
  (try
     write_body oc;
     flush oc;
     Unix.fsync fd
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Unix.rename tmp path

let save_jsonl path tr = save_atomic path (fun oc -> write_jsonl oc tr)
let save_chrome path tr = save_atomic path (fun oc -> write_chrome oc tr)
