(** Trace serialization: a streaming JSONL sink, a whole-trace JSONL
    dump, and a Chrome [trace_event] exporter loadable in Perfetto
    ({:https://ui.perfetto.dev}) or [chrome://tracing].

    All JSON is emitted by hand — the telemetry core stays
    zero-dependency. *)

val json_escape : string -> string
(** Escape for inclusion between double quotes in JSON. *)

val jsonl_sink : out_channel -> Trace.sink
(** A streaming sink: one JSON object per line — [{"t":"span",...}]
    as each span closes, [{"t":"event",...}] as each event fires, and
    on flush one [{"t":"counter"|"gauge"|"hist",...}] line per metric
    followed by a channel flush.  Because lines stream as they happen,
    a run that dies mid-flight still leaves a well-formed prefix. *)

val write_jsonl : out_channel -> Trace.t -> unit
(** Dump a finished tracer in the same line format as {!jsonl_sink}
    (spans in start order, surviving events, then metrics). *)

val chrome_to_string : Trace.t -> string
(** The whole trace as one Chrome [trace_event] JSON document:
    spans become ["X"] complete events (timestamps/durations in
    microseconds), log events become ["i"] instants, counters become a
    trailing ["C"] sample. *)

val write_chrome : out_channel -> Trace.t -> unit

val save_jsonl : string -> Trace.t -> unit
(** Atomically dump the trace in JSONL form to a file: written to
    [path.tmp], flushed, fsynced and renamed over [path], so a crash
    mid-export leaves either the previous complete file or the new one
    — never a torn export.  For crash-survivable streaming instead,
    attach {!jsonl_sink}. *)

val save_chrome : string -> Trace.t -> unit
(** Atomically write the Chrome [trace_event] document to a file, with
    the same tmp + fsync + rename commit as {!save_jsonl}. *)
