(** Durable write-ahead journal for flow state.

    A journal is a single append-only file of CRC-framed, typed
    records: one {!header} describing the run's inputs, then [Stage],
    [Delta] (committed change-log batches) and [Checkpoint] (full
    id-preserving design snapshots plus the counters needed to re-arm
    budgets and the semantic guard) records as the flow progresses,
    closed by a [Finish] record.

    Durability discipline: ordinary records are appended and flushed
    immediately; checkpoint records are committed by rewriting the
    whole journal to [FILE.tmp], fsync-ing and renaming over [FILE], so
    a crash anywhere leaves either the previous committed journal or
    the new one — never a torn snapshot.  {!recover} scans the longest
    valid prefix: a record with a short, missing or corrupt payload
    ends the scan and the tail is reported as truncated.  Recovery
    never refuses a journal.

    The module depends only on the netlist layer; flow-level state
    (guard counters, budget consumption, report fragments) crosses the
    boundary as plain strings, ints and floats. *)

module D = Milo_netlist.Design

(** {1 Records} *)

type header = {
  h_design : string;  (** design name *)
  h_hash : string;  (** {!design_hash} of the input design *)
  h_tech : string;  (** technology name, e.g. ["ecl"] *)
  h_required : float;  (** required delay; [infinity] if unconstrained *)
  h_arrivals : (string * float) list;  (** input-port arrival times *)
  h_lint : string;  (** lint level name *)
  h_incremental : bool;
  h_guard : string;  (** guard policy name *)
  h_certify : bool;
  h_timeout : float option;  (** original budget limits, if any *)
  h_max_steps : int option;
  h_max_evals : int option;
  h_domains : int option;
      (** parallel domain count the run was started with; [None] for
          sequential runs and for journals written before the field
          existed *)
}

type timing = {
  t_met : bool;
  t_final : float;
  t_steps : (string * string * float * float) list;
      (** strategy, detail, delay before, delay after *)
}
(** Serialized timing outcome (mirrors [Time_opt.outcome]). *)

type checkpoint = {
  ck_stage : string;
  ck_steps : int;  (** budget consumption at the snapshot *)
  ck_evals : int;
  ck_elapsed : float;
  ck_guard : int array;
      (** the six guard counters: stage checks/mismatches, rule
          checks/mismatches/skipped/certified *)
  ck_tick : int;  (** rule-guard sampling position *)
  ck_seen : string list;  (** rules the sampler has already seen *)
  ck_trace : int;
      (** tracer event count at the snapshot — a resumed run re-arms
          its tracer's sequence counter here so event numbering (and
          trajectory alignment) continues across the kill; 0 when the
          interrupted run was untraced (or the journal predates the
          field) *)
  ck_quarantine : (string * int * string * string) list;
      (** rule, failure count, first error, reason name *)
  ck_micro : (string * string) list;  (** critic applications so far *)
  ck_levels : (string * int * float * float) list;
      (** optimizer level report: design, applications, area
          before/after *)
  ck_timing : timing option;
  ck_design : D.t;  (** the snapshot (id-exact on recovery) *)
}

type record =
  | Header of header
  | Stage of string  (** the flow entered this stage *)
  | Delta of {
      d_stage : string;
      d_label : string option;  (** rule/strategy that committed it *)
      d_hash : string option;
          (** {!design_hash} after the commit, when the journaling
              flow could attribute the delta to a tracked design *)
      d_entries : D.entry list;
    }
  | Checkpoint of checkpoint
  | Finish of {
      f_outcome : string;  (** ["complete"] or ["partial"] *)
      f_delay : float;
      f_area : float;
      f_power : float;
      f_gates : int;
      f_comps : int;
    }

exception Crash of int
(** The canonical simulated-kill exception for the fault harness: a
    crash-injection hook (see {!create}) raises [Crash n] after the
    [n]-th record reaches the file, and the flow treats it like a
    process death — no [Finish] record, no degradation to a partial
    outcome, the journal file left exactly as the kill found it.  The
    journal itself never raises it. *)

val design_hash : D.t -> string
(** Hex digest of a design's canonical serialized form (ids, names,
    kinds, connectivity, ports): equal iff [D.equal_structure]. *)

(** {1 Writing} *)

type writer

val create :
  ?sync:[ `Always | `Commit ] -> ?fault:(int -> unit) -> string ->
  header -> writer
(** [create path header] truncates [path] (atomically, via the
    tmp+rename commit) and writes the header record.  [sync] selects
    fsync per record ([`Always]) or only at checkpoint commits and
    close ([`Commit], the default — appended records still reach the
    OS immediately).  [fault] is the crash-injection hook: called with
    the running record count after each record is written; raising
    from it simulates a kill at that point. *)

val append : writer -> record -> unit
(** Append one framed record. *)

val commit : writer -> record -> unit
(** Append one framed record with the snapshot-commit discipline:
    the whole journal is rewritten to [path.tmp], fsynced and renamed
    over [path].  Used for [Checkpoint] and [Finish] records. *)

val close : writer -> unit
(** Flush, fsync and close.  The writer is unusable afterwards. *)

val path : writer -> string
val records_written : writer -> int
val set_fault_hook : writer -> (int -> unit) option -> unit

(** {1 Recovery} *)

type recovered = {
  r_records : record list;  (** the longest valid prefix, in order *)
  r_truncated_bytes : int;  (** torn tail dropped by the scan *)
  r_total_bytes : int;
}

val recover : string -> recovered
(** Scan [path] for its longest valid prefix of records.  Corrupt or
    torn data only ends the scan — recovery never raises on content
    (I/O errors such as a missing file still raise [Sys_error]). *)

val header : recovered -> header option
(** The run header, when the prefix contains one. *)

val checkpoints : recovered -> checkpoint list
(** All recovered checkpoint records, in journal order. *)

val last_checkpoint : recovered -> checkpoint option
val finished : recovered -> bool
(** True when the prefix ends with a [Finish] record (clean run). *)
