(* Durable write-ahead journal: CRC-framed typed records over a plain
   text encoding, with an append + tmp/rename-commit durability
   discipline and longest-valid-prefix recovery. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Writer = Milo_netlist.Writer
module Parser = Milo_netlist.Parser

type header = {
  h_design : string;
  h_hash : string;
  h_tech : string;
  h_required : float;
  h_arrivals : (string * float) list;
  h_lint : string;
  h_incremental : bool;
  h_guard : string;
  h_certify : bool;
  h_timeout : float option;
  h_max_steps : int option;
  h_max_evals : int option;
  h_domains : int option;
      (* parallel domain count the run was started with; [None] for
         sequential runs (and journals from before the field existed,
         which decode to [None] by default) *)
}

type timing = {
  t_met : bool;
  t_final : float;
  t_steps : (string * string * float * float) list;
}

type checkpoint = {
  ck_stage : string;
  ck_steps : int;
  ck_evals : int;
  ck_elapsed : float;
  ck_guard : int array;
  ck_tick : int;
  ck_seen : string list;
  ck_trace : int;
  ck_quarantine : (string * int * string * string) list;
  ck_micro : (string * string) list;
  ck_levels : (string * int * float * float) list;
  ck_timing : timing option;
  ck_design : D.t;
}

exception Crash of int

type record =
  | Header of header
  | Stage of string
  | Delta of {
      d_stage : string;
      d_label : string option;
      d_hash : string option;
      d_entries : D.entry list;
    }
  | Checkpoint of checkpoint
  | Finish of {
      f_outcome : string;
      f_delay : float;
      f_area : float;
      f_power : float;
      f_gates : int;
      f_comps : int;
    }

(* --- CRC-32 (IEEE 802.3, table-driven) -------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* --- Token encoding ---------------------------------------------------- *)

(* Payload lines are space-separated tokens; strings that may contain
   anything (names, rule labels, kind specs) are OCaml-%S-quoted. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let q = Printf.sprintf "%S"
let fl = Printf.sprintf "%h"

(* Tokenizer recognizing %S-quoted strings: backslash escapes for the
   backslash, the double quote, n/t/r/b, and decimal ddd — everything
   Printf %S emits. *)
let lex line =
  let n = String.length line in
  let rec skip i = if i < n && line.[i] = ' ' then skip (i + 1) else i in
  let rec go i acc =
    let i = skip i in
    if i >= n then List.rev acc
    else if line.[i] = '"' then begin
      let buf = Buffer.create 16 in
      let rec scan j =
        if j >= n then corrupt "unterminated string"
        else
          match line.[j] with
          | '"' -> j + 1
          | '\\' ->
              if j + 1 >= n then corrupt "dangling escape"
              else begin
                (match line.[j + 1] with
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | 'r' -> Buffer.add_char buf '\r'
                | 'b' -> Buffer.add_char buf '\b'
                | '0' .. '9' ->
                    if j + 3 >= n then corrupt "short decimal escape"
                    else begin
                      match int_of_string_opt (String.sub line (j + 1) 3) with
                      | Some code when code >= 0 && code <= 255 ->
                          Buffer.add_char buf (Char.chr code)
                      | Some _ | None -> corrupt "bad decimal escape"
                    end
                | c -> Buffer.add_char buf c);
                match line.[j + 1] with
                | '0' .. '9' -> scan (j + 4)
                | _ -> scan (j + 2)
              end
          | c ->
              Buffer.add_char buf c;
              scan (j + 1)
      in
      let next = scan (i + 1) in
      go next (Buffer.contents buf :: acc)
    end
    else begin
      let j = match String.index_from_opt line i ' ' with
        | Some j -> j
        | None -> n
      in
      go j (String.sub line i (j - i) :: acc)
    end
  in
  go 0 []

let int_tok s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> corrupt "expected integer, got %s" s

let float_tok s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> corrupt "expected float, got %s" s

let bool_tok s = int_tok s <> 0

let opt_tok of_tok = function "-" -> None | s -> Some (of_tok s)
let opt_str f = function None -> "-" | Some v -> f v

let kind_tok s =
  match Parser.kind_of_string s with
  | k -> k
  | exception Parser.Parse_error (_, msg) -> corrupt "bad kind: %s" msg

(* --- Design snapshots --------------------------------------------------- *)

(* Id-exact, deterministic serialization: components and nets in id
   order, connections in pin order, ports in declaration order.  The
   id counters are recorded only in stored snapshots ([counters:true]):
   the design hash must depend on structure alone, because candidate
   evaluations (apply + undo) burn ids without changing the design, so
   two structurally equal states of one run can carry different
   counters. *)
let snapshot_to_buffer ?(counters = true) b d =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  (if counters then
     let next_comp, next_net = D.counters d in
     line "d %s %d %d" (q (D.name d)) next_comp next_net
   else line "d %s" (q (D.name d)));
  List.iter (fun (n : D.net) -> line "n %d %s" n.D.nid (q n.D.nname)) (D.nets d);
  List.iter
    (fun (p, dir, nid) ->
      line "p %s %s %d" (q p)
        (match dir with T.Input -> "i" | T.Output -> "o")
        nid)
    (D.ports d);
  List.iter
    (fun (c : D.comp) ->
      line "c %d %s %s" c.D.id (q c.D.cname) (q (Writer.kind_spec c.D.kind)))
    (D.comps d);
  List.iter
    (fun (c : D.comp) ->
      List.iter
        (fun (pin, nid) -> line "j %d %s %d" c.D.id (q pin) nid)
        (D.connections d c.D.id))
    (D.comps d)

(* Hash-consed: memoized per design and invalidated by its generation
   counter, so the repeated hashing the journal does (header, every
   checkpoint, replay verification) is O(1) on an unchanged design. *)
let design_hash = Milo_netlist.Hashcons.design_digest

(* Rebuild a design from snapshot lines (already lexed).  Order within
   the snapshot is the serialization order: the "d" line first, nets
   before ports and connections. *)
let design_of_lines lines =
  let d = ref None in
  let design () =
    match !d with Some d -> d | None -> corrupt "snapshot line before 'd'"
  in
  List.iter
    (fun toks ->
      match toks with
      | [ "d"; name; nc; nn ] ->
          let dsn = D.create name in
          D.set_counters dsn ~next_comp:(int_tok nc) ~next_net:(int_tok nn);
          d := Some dsn
      | [ "n"; nid; name ] -> D.restore_net (design ()) ~id:(int_tok nid) ~name
      | [ "p"; pname; dir; nid ] ->
          let dir =
            match dir with
            | "i" -> T.Input
            | "o" -> T.Output
            | s -> corrupt "bad port direction %s" s
          in
          ignore (D.add_port ~net:(int_tok nid) (design ()) pname dir)
      | [ "c"; cid; name; spec ] ->
          D.restore_comp (design ()) ~id:(int_tok cid) ~name (kind_tok spec)
      | [ "j"; cid; pin; nid ] ->
          D.connect (design ()) (int_tok cid) pin (int_tok nid)
      | t -> corrupt "bad snapshot line: %s" (String.concat " " t))
    lines;
  design ()

(* --- Change-log entries ------------------------------------------------- *)

let entry_to_line (e : D.entry) =
  match e with
  | D.E_add_comp (cid, name, kind) ->
      Printf.sprintf "addc %d %s %s" cid (q name) (q (Writer.kind_spec kind))
  | D.E_remove_comp (cid, name, kind, saved) ->
      Printf.sprintf "remc %d %s %s%s" cid (q name)
        (q (Writer.kind_spec kind))
        (String.concat ""
           (List.map
              (fun (pin, nid) -> Printf.sprintf " %s %d" (q pin) nid)
              saved))
  | D.E_connect (cid, pin, prev, now) ->
      Printf.sprintf "conn %d %s %s %s" cid (q pin)
        (opt_str string_of_int prev)
        (opt_str string_of_int now)
  | D.E_add_net (nid, name) -> Printf.sprintf "addn %d %s" nid (q name)
  | D.E_remove_net (nid, name, port) -> (
      match port with
      | None -> Printf.sprintf "remn %d %s -" nid (q name)
      | Some (p, dir) ->
          Printf.sprintf "remn %d %s %s %s" nid (q name)
            (match dir with T.Input -> "i" | T.Output -> "o")
            (q p))
  | D.E_set_kind (cid, old_k, new_k) ->
      Printf.sprintf "setk %d %s %s" cid
        (q (Writer.kind_spec old_k))
        (q (Writer.kind_spec new_k))

let entry_of_tokens toks : D.entry =
  match toks with
  | [ "addc"; cid; name; spec ] ->
      D.E_add_comp (int_tok cid, name, kind_tok spec)
  | "remc" :: cid :: name :: spec :: saved ->
      let rec pairs = function
        | [] -> []
        | pin :: nid :: rest -> (pin, int_tok nid) :: pairs rest
        | [ _ ] -> corrupt "odd saved-connection list"
      in
      D.E_remove_comp (int_tok cid, name, kind_tok spec, pairs saved)
  | [ "conn"; cid; pin; prev; now ] ->
      D.E_connect (int_tok cid, pin, opt_tok int_tok prev, opt_tok int_tok now)
  | [ "addn"; nid; name ] -> D.E_add_net (int_tok nid, name)
  | [ "remn"; nid; name; "-" ] -> D.E_remove_net (int_tok nid, name, None)
  | [ "remn"; nid; name; dir; p ] ->
      let dir =
        match dir with
        | "i" -> T.Input
        | "o" -> T.Output
        | s -> corrupt "bad port direction %s" s
      in
      D.E_remove_net (int_tok nid, name, Some (p, dir))
  | [ "setk"; cid; old_k; new_k ] ->
      D.E_set_kind (int_tok cid, kind_tok old_k, kind_tok new_k)
  | t -> corrupt "bad entry line: %s" (String.concat " " t)

(* --- Record payloads ---------------------------------------------------- *)

let header_payload h =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "version 1";
  line "design %s" (q h.h_design);
  line "hash %s" h.h_hash;
  line "tech %s" (q h.h_tech);
  line "required %s" (fl h.h_required);
  List.iter (fun (p, a) -> line "arrival %s %s" (q p) (fl a)) h.h_arrivals;
  line "lint %s" (q h.h_lint);
  line "incremental %d" (if h.h_incremental then 1 else 0);
  line "guard %s" (q h.h_guard);
  line "certify %d" (if h.h_certify then 1 else 0);
  line "timeout %s" (opt_str fl h.h_timeout);
  line "max_steps %s" (opt_str string_of_int h.h_max_steps);
  line "max_evals %s" (opt_str string_of_int h.h_max_evals);
  (* Written only when present, so sequential runs produce headers
     byte-identical to pre-parallel builds (and replayable by them). *)
  (match h.h_domains with
  | Some d -> line "domains %d" d
  | None -> ());
  Buffer.contents b

let header_of_lines lines =
  let h =
    ref
      {
        h_design = "";
        h_hash = "";
        h_tech = "";
        h_required = infinity;
        h_arrivals = [];
        h_lint = "off";
        h_incremental = true;
        h_guard = "off";
        h_certify = true;
        h_timeout = None;
        h_max_steps = None;
        h_max_evals = None;
        h_domains = None;
      }
  in
  List.iter
    (fun toks ->
      match toks with
      | [ "version"; v ] ->
          if int_tok v <> 1 then corrupt "unsupported journal version %s" v
      | [ "design"; s ] -> h := { !h with h_design = s }
      | [ "hash"; s ] -> h := { !h with h_hash = s }
      | [ "tech"; s ] -> h := { !h with h_tech = s }
      | [ "required"; s ] -> h := { !h with h_required = float_tok s }
      | [ "arrival"; p; a ] ->
          h := { !h with h_arrivals = !h.h_arrivals @ [ (p, float_tok a) ] }
      | [ "lint"; s ] -> h := { !h with h_lint = s }
      | [ "incremental"; s ] -> h := { !h with h_incremental = bool_tok s }
      | [ "guard"; s ] -> h := { !h with h_guard = s }
      | [ "certify"; s ] -> h := { !h with h_certify = bool_tok s }
      | [ "timeout"; s ] -> h := { !h with h_timeout = opt_tok float_tok s }
      | [ "max_steps"; s ] -> h := { !h with h_max_steps = opt_tok int_tok s }
      | [ "max_evals"; s ] -> h := { !h with h_max_evals = opt_tok int_tok s }
      | [ "domains"; s ] -> h := { !h with h_domains = Some (int_tok s) }
      | t -> corrupt "bad header line: %s" (String.concat " " t))
    lines;
  !h

let delta_payload ~stage ~label ~hash entries =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "stage %s\n" stage);
  (match label with
  | Some l -> Buffer.add_string b (Printf.sprintf "label %s\n" (q l))
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "hash %s\n" (match hash with Some h -> h | None -> "-"));
  List.iter (fun e -> Buffer.add_string b (entry_to_line e ^ "\n")) entries;
  Buffer.contents b

let delta_of_lines lines =
  let stage = ref "" and label = ref None and hash = ref None in
  let entries = ref [] in
  List.iter
    (fun toks ->
      match toks with
      | [ "stage"; s ] -> stage := s
      | [ "label"; l ] -> label := Some l
      | [ "hash"; h ] -> hash := (match h with "-" -> None | h -> Some h)
      | t -> entries := entry_of_tokens t :: !entries)
    lines;
  Delta
    {
      d_stage = !stage;
      d_label = !label;
      d_hash = !hash;
      d_entries = List.rev !entries;
    }

let checkpoint_payload ck =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "stage %s" ck.ck_stage;
  line "budget %d %d %s" ck.ck_steps ck.ck_evals (fl ck.ck_elapsed);
  line "guard %s"
    (String.concat " " (Array.to_list (Array.map string_of_int ck.ck_guard)));
  line "tick %d" ck.ck_tick;
  if ck.ck_trace <> 0 then line "trace %d" ck.ck_trace;
  List.iter (fun r -> line "seen %s" (q r)) ck.ck_seen;
  List.iter
    (fun (rule, count, msg, reason) ->
      line "quar %s %d %s %s" (q rule) count (q msg) (q reason))
    ck.ck_quarantine;
  List.iter (fun (r, descr) -> line "micro %s %s" (q r) (q descr)) ck.ck_micro;
  List.iter
    (fun (name, apps, before, after) ->
      line "level %s %d %s %s" (q name) apps (fl before) (fl after))
    ck.ck_levels;
  (match ck.ck_timing with
  | None -> ()
  | Some t ->
      line "timing %d %s" (if t.t_met then 1 else 0) (fl t.t_final);
      List.iter
        (fun (strat, detail, before, after) ->
          line "tstep %s %s %s %s" (q strat) (q detail) (fl before) (fl after))
        t.t_steps);
  snapshot_to_buffer b ck.ck_design;
  Buffer.contents b

let checkpoint_of_lines lines =
  let stage = ref "" in
  let steps = ref 0 and evals = ref 0 and elapsed = ref 0.0 in
  let guard = ref (Array.make 6 0) in
  let tick = ref 0 and seen = ref [] and trace = ref 0 in
  let quarantine = ref [] and micro = ref [] and levels = ref [] in
  let timing = ref None and tsteps = ref [] in
  let snapshot = ref [] in
  List.iter
    (fun toks ->
      match toks with
      | [ "stage"; s ] -> stage := s
      | [ "budget"; s; e; el ] ->
          steps := int_tok s;
          evals := int_tok e;
          elapsed := float_tok el
      | "guard" :: counters ->
          guard := Array.of_list (List.map int_tok counters)
      | [ "tick"; t ] -> tick := int_tok t
      (* Absent in journals written before the tracer re-arm existed:
         default 0 keeps them recoverable. *)
      | [ "trace"; t ] -> trace := int_tok t
      | [ "seen"; r ] -> seen := r :: !seen
      | [ "quar"; rule; count; msg; reason ] ->
          quarantine := (rule, int_tok count, msg, reason) :: !quarantine
      | [ "micro"; r; descr ] -> micro := (r, descr) :: !micro
      | [ "level"; name; apps; before; after ] ->
          levels :=
            (name, int_tok apps, float_tok before, float_tok after) :: !levels
      | [ "timing"; met; final ] ->
          timing := Some (bool_tok met, float_tok final)
      | [ "tstep"; strat; detail; before; after ] ->
          tsteps := (strat, detail, float_tok before, float_tok after) :: !tsteps
      | ("d" | "n" | "p" | "c" | "j") :: _ -> snapshot := toks :: !snapshot
      | t -> corrupt "bad checkpoint line: %s" (String.concat " " t))
    lines;
  Checkpoint
    {
      ck_stage = !stage;
      ck_steps = !steps;
      ck_evals = !evals;
      ck_elapsed = !elapsed;
      ck_guard = !guard;
      ck_tick = !tick;
      ck_seen = List.rev !seen;
      ck_trace = !trace;
      ck_quarantine = List.rev !quarantine;
      ck_micro = List.rev !micro;
      ck_levels = List.rev !levels;
      ck_timing =
        (match !timing with
        | None -> None
        | Some (t_met, t_final) ->
            Some { t_met; t_final; t_steps = List.rev !tsteps });
      ck_design = design_of_lines (List.rev !snapshot);
    }

let record_type = function
  | Header _ -> "header"
  | Stage _ -> "stage"
  | Delta _ -> "delta"
  | Checkpoint _ -> "ckpt"
  | Finish _ -> "finish"

let record_payload = function
  | Header h -> header_payload h
  | Stage s -> Printf.sprintf "stage %s\n" s
  | Delta { d_stage; d_label; d_hash; d_entries } ->
      delta_payload ~stage:d_stage ~label:d_label ~hash:d_hash d_entries
  | Checkpoint ck -> checkpoint_payload ck
  | Finish { f_outcome; f_delay; f_area; f_power; f_gates; f_comps } ->
      Printf.sprintf "outcome %s\nstats %s %s %s %d %d\n" f_outcome
        (fl f_delay) (fl f_area) (fl f_power) f_gates f_comps

let record_of_payload rtype payload =
  let lines =
    String.split_on_char '\n' payload
    |> List.filter (fun l -> l <> "")
    |> List.map lex
  in
  match rtype with
  | "header" -> Header (header_of_lines lines)
  | "stage" -> (
      match lines with
      | [ [ "stage"; s ] ] -> Stage s
      | _ -> corrupt "bad stage payload")
  | "delta" -> delta_of_lines lines
  | "ckpt" -> checkpoint_of_lines lines
  | "finish" ->
      let outcome = ref "" in
      let stats = ref None in
      List.iter
        (fun toks ->
          match toks with
          | [ "outcome"; o ] -> outcome := o
          | [ "stats"; d; a; p; g; c ] ->
              stats :=
                Some (float_tok d, float_tok a, float_tok p, int_tok g,
                      int_tok c)
          | t -> corrupt "bad finish line: %s" (String.concat " " t))
        lines;
      let f_delay, f_area, f_power, f_gates, f_comps =
        match !stats with
        | Some s -> s
        | None -> corrupt "finish record without stats"
      in
      Finish { f_outcome = !outcome; f_delay; f_area; f_power; f_gates;
               f_comps }
  | t -> corrupt "unknown record type %s" t

(* --- Framing ------------------------------------------------------------ *)

let magic = "MILOJ1"

let frame r =
  let payload = record_payload r in
  Printf.sprintf "%s %s %d %08lx\n%s\n" magic (record_type r)
    (String.length payload) (crc32 payload) payload

(* --- Writer ------------------------------------------------------------- *)

type writer = {
  w_path : string;
  w_sync : [ `Always | `Commit ];
  w_buf : Buffer.t;  (* every framed byte committed or appended so far *)
  mutable w_oc : out_channel option;
  mutable w_count : int;
  mutable w_fault : (int -> unit) option;
}

let path w = w.w_path
let records_written w = w.w_count
let set_fault_hook w f = w.w_fault <- f

let fsync_oc oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Rewrite the whole journal through FILE.tmp + fsync + rename: after
   the rename the file holds either the previous committed image or
   this one, never a torn in-between. *)
let commit_image w =
  (match w.w_oc with
  | Some oc ->
      close_out oc;
      w.w_oc <- None
  | None -> ());
  let tmp = w.w_path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Buffer.output_buffer oc w.w_buf;
  fsync_oc oc;
  close_out oc;
  Sys.rename tmp w.w_path;
  w.w_oc <- Some (open_out_gen [ Open_append; Open_binary ] 0o644 w.w_path)

let fire w =
  match w.w_fault with Some f -> f w.w_count | None -> ()

let append w r =
  let s = frame r in
  Buffer.add_string w.w_buf s;
  (match w.w_oc with
  | Some oc -> (
      output_string oc s;
      match w.w_sync with `Always -> fsync_oc oc | `Commit -> flush oc)
  | None -> ());
  w.w_count <- w.w_count + 1;
  fire w

let commit w r =
  Buffer.add_string w.w_buf (frame r);
  commit_image w;
  w.w_count <- w.w_count + 1;
  fire w

let close w =
  match w.w_oc with
  | Some oc ->
      fsync_oc oc;
      close_out oc;
      w.w_oc <- None
  | None -> ()

let create ?(sync = `Commit) ?fault path header =
  let w =
    {
      w_path = path;
      w_sync = sync;
      w_buf = Buffer.create 4096;
      w_oc = None;
      w_count = 0;
      w_fault = fault;
    }
  in
  Buffer.add_string w.w_buf (frame (Header header));
  commit_image w;
  w.w_count <- 1;
  fire w;
  w

(* --- Recovery ----------------------------------------------------------- *)

type recovered = {
  r_records : record list;
  r_truncated_bytes : int;
  r_total_bytes : int;
}

let recover path =
  let ic = open_in_bin path in
  let total = in_channel_length ic in
  let text = really_input_string ic total in
  close_in ic;
  let records = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok do
    match String.index_from_opt text !pos '\n' with
    | None -> ok := false
    | Some nl -> (
        let parsed =
          match lex (String.sub text !pos (nl - !pos)) with
          | [ m; rtype; len; crc ] when m = magic -> (
              match (int_of_string_opt len, Int32.of_string_opt ("0x" ^ crc))
              with
              | Some len, Some crc when len >= 0 -> Some (rtype, len, crc)
              | _ -> None)
          | _ | (exception Corrupt _) -> None
        in
        match parsed with
        | None -> ok := false
        | Some (rtype, len, crc) ->
            let start = nl + 1 in
            if start + len >= total || text.[start + len] <> '\n' then
              ok := false
            else begin
              let payload = String.sub text start len in
              if crc32 payload <> crc then ok := false
              else
                match record_of_payload rtype payload with
                | r ->
                    records := r :: !records;
                    pos := start + len + 1
                | exception _ -> ok := false
            end)
  done;
  {
    r_records = List.rev !records;
    r_truncated_bytes = total - !pos;
    r_total_bytes = total;
  }

let header r =
  List.find_map
    (function Header h -> Some h | _ -> None)
    r.r_records

let checkpoints r =
  List.filter_map
    (function Checkpoint ck -> Some ck | _ -> None)
    r.r_records

let last_checkpoint r =
  match List.rev (checkpoints r) with [] -> None | ck :: _ -> Some ck

let finished r =
  match List.rev r.r_records with Finish _ :: _ -> true | _ -> false
