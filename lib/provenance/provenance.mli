(** Optimization provenance: object lineage tags, exact per-rule cost
    attribution, and a trajectory event stream mirroring the journal.

    Like the tracer, the recorder is ambient: the flow installs one
    with {!with_recorder}, the engine deposits a {!pending} note just
    before each design commit, and the flow's commit observer consumes
    it into a {!step} record.  Every hook is a no-op when no recorder
    is installed, so the disabled default costs one ref read per probe.

    {2 The three ledgers}

    {b Object provenance.}  Every component and net carries a compact
    {!tag} — the stage, rule label and step ordinal of the commit that
    last touched it.  Tags are folded from {e committed} change-log
    entries only, so a rolled-back application leaves no fingerprints,
    and the same fold applied to recovered journal deltas rebuilds the
    identical tags offline ({!Trajectory.of_journal}).

    {b Cost attribution.}  Steps that fall inside a measured window
    carry the measurer's exact before/after totals.  Because each kept
    application advances the same incremental measurer whose totals
    are snapshotted here, attribution {e conserves}: within a stage
    the records telescope ([after]{_ k} is bitwise [before]{_ k+1})
    and the attributed deltas sum to the stage's end-to-end cost
    change ({!conservation}).  Rollbacks and quarantines revert the
    design before any commit, so they net to zero by construction and
    appear only as {!type-event}[.Debit] markers.

    {b Trajectory.}  The event stream mirrors the journal record for
    record — [Run]/[Header], [Stage]/[Stage], [Step]/[Delta],
    [Check]/[Checkpoint], [Finish]/[Finish] — with [Debit] as the only
    extra, which is what makes the offline cross-check
    ({!Trajectory.crosscheck}) a plain zip. *)

module D = Milo_netlist.Design

type cost = Milo_trace.Trace.cost

(** Semantic-guard verdict for one kept application. *)
type verdict =
  | Certified  (** rule statically certified; cone check skipped *)
  | Checked  (** cone check ran and passed *)
  | Skipped  (** sampled out or unverifiable site *)
  | Unguarded  (** guard off for this stage *)

val verdict_name : verdict -> string
val verdict_of_name : string -> verdict option

type tag = {
  tag_stage : string;  (** flow stage of the commit *)
  tag_label : string option;  (** rule/strategy label, when attributed *)
  tag_step : int;  (** step ordinal of the commit ({!step}[.st_step]) *)
}

type step = {
  st_step : int;  (** ordinal; equals the journal delta ordinal *)
  st_stage : string;
  st_label : string option;  (** mirrors the journal delta's label *)
  st_site : string option;  (** site digest, engine commits only *)
  st_verdict : verdict option;
  st_entries : int;  (** change-log entries in the commit *)
  st_hash : string;  (** design digest after the commit *)
  st_before : cost option;  (** measurer totals around the commit; *)
  st_after : cost option;  (** [None] outside a measured window *)
  st_comps : int;  (** design features after the commit *)
  st_nets : int;
  st_budget : (int * int * float) option;  (** steps, evals, elapsed *)
}

type debit = {
  de_stage : string;
  de_kind : string;  (** ["rollback"], ["miscompile"], ["quarantine"] *)
  de_rule : string;
}
(** A reverted application: the design was restored exactly, so the
    cost impact is zero — recorded so the trajectory still shows the
    work (and {!conservation} can assert the zero). *)

type event =
  | Run of { run_design : string; run_tech : string; run_hash : string }
  | Stage of string
  | Step of step
  | Debit of debit
  | Check of { ck_stage : string; ck_hash : string; ck_comps : int; ck_nets : int }
  | Finish of { fin_outcome : string; fin_cost : cost }

(** {1 Recorder lifecycle} *)

type t

val create : unit -> t
val set_current : t option -> unit
val current : unit -> t option
val enabled : unit -> bool

val with_recorder : t -> (unit -> 'a) -> 'a
(** Install [t] for the duration of the callback, restoring the
    previous recorder even on exceptions.  The ambient slot is
    domain-local: a recorder installed on the coordinating domain is
    invisible to worker domains. *)

val without : (unit -> 'a) -> 'a
(** Run the callback with recording suppressed on this domain,
    restoring the previous recorder even on exceptions.  Used by the
    parallel runtime's inline execution mode so a worker task leaves
    no provenance whether it runs on the coordinator or on a pool
    domain. *)

val add_sink : t -> (event -> unit) -> unit
(** Streaming sink, called once per recorded event in order. *)

(** {1 Engine-side probes (ambient; no-ops when disabled)} *)

val pending :
  design:D.t ->
  label:string ->
  ?site:string ->
  ?verdict:verdict ->
  ?before:cost ->
  ?after:cost ->
  unit ->
  unit
(** Deposit attribution detail for the commit the engine is about to
    make on [design].  Consumed by the next {!observe_commit} whose
    design is physically the same object and whose label matches;
    a commit on any other design (scratch copies, sub-designs) leaves
    the note in place, and a second [pending] overwrites the first, so
    stale notes can never attach to the wrong step. *)

val debit : kind:string -> rule:string -> unit
(** Record a reverted application (rollback/miscompile/quarantine). *)

(** {1 Flow-side observers (explicit recorder)} *)

val set_run : t -> design:string -> tech:string -> hash:string -> unit
val set_budget_probe : t -> (unit -> int * int * float) option -> unit
(** Budget consumption snapshot attached to each step; a closure so
    this library needs no dependency on the budget's home. *)

val observe_stage : t -> string -> unit

val observe_commit :
  t -> stage:string -> label:string option -> ?hash:string ->
  D.t -> D.entry list -> unit
(** Record one committed change-log batch: assign the step ordinal,
    fold the entries into the tag tables, consume a matching pending
    note, and emit a [Step] event.  [hash] is the post-commit design
    digest when the caller already computed one (the journaling flow
    does); otherwise it is derived here. *)

val observe_checkpoint : t -> stage:string -> D.t -> unit
val observe_finish : t -> outcome:string -> cost -> unit

val retarget : t -> unit
(** Forget all object tags: the flow switched the tracked design to a
    different id space (micro netlist vs. flattened mapped design).
    Step numbering and the event stream continue. *)

(** {1 Queries} *)

val events : t -> event list
(** All recorded events, in order. *)

val comp_tag : t -> int -> tag option
val net_tag : t -> int -> tag option
val tag_count : t -> int * int
(** Live (component, net) tag counts. *)

(** {1 Attribution ledger} *)

type row = {
  row_stage : string;
  row_label : string;  (** ["(unlabeled)"] for anonymous commits *)
  row_applies : int;  (** commits attributed to this row *)
  row_measured : int;  (** of which carried measurer totals *)
  row_delay : float;  (** summed after−before deltas (negative = gain) *)
  row_area : float;
  row_power : float;
}

val ledger : t -> row list
(** One row per (stage, label), in order of first appearance. *)

type conservation = {
  co_stage : string;
  co_commits : int;
  co_measured : int;
  co_breaks : int;
      (** telescoping violations: measured step k's [after] was not
          bitwise-equal to measured step k+1's [before].  0 on any
          healthy run — the invariant the fuzz suite asserts. *)
  co_sum : cost;  (** sum of attributed deltas *)
  co_end : cost;  (** last [after] − first [before] *)
  co_residual : cost;  (** [co_sum − co_end]; ~0 up to float re-association *)
}

val conservation : t -> conservation list
(** Per-stage conservation check over the recorded steps, in stage
    order of first appearance.  Stages with no measured steps report
    zero sums and trivially conserve. *)

(** {1 Critical-path blame} *)

val blame :
  t -> Milo_timing.Sta.path -> (Milo_timing.Sta.hop * tag option) list
(** Map each hop of a timing path to the tag of the commit that last
    touched its component; [None] means no recorded commit touched it
    (it survives unchanged from technology mapping). *)
