module P = Provenance
module J = Milo_journal.Journal
module D = Milo_netlist.Design
module E = Milo_trace.Export

let quote s = "\"" ^ E.json_escape s ^ "\""

(* Floats must survive save→load bit-exactly or the loaded stream
   would show telescoping breaks the live one did not have.  %.12g
   round-trips almost always and reads well; fall back to %.17g. *)
let num f =
  if Float.is_nan f then "0"
  else if f = infinity then "1e308"
  else if f = neg_infinity then "-1e308"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let obj fields =
  let fields = List.sort (fun (a, _) (b, _) -> compare a b) fields in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> quote k ^ ":" ^ v) fields)
  ^ "}"

let cost_fields prefix (c : P.cost) =
  [
    (prefix ^ "delay", num c.Milo_trace.Trace.delay);
    (prefix ^ "area", num c.Milo_trace.Trace.area);
    (prefix ^ "power", num c.Milo_trace.Trace.power);
  ]

let line_of_event (ev : P.event) =
  match ev with
  | P.Run r ->
      obj
        [
          ("t", quote "run");
          ("design", quote r.run_design);
          ("tech", quote r.run_tech);
          ("hash", quote r.run_hash);
        ]
  | P.Stage s -> obj [ ("t", quote "stage"); ("stage", quote s) ]
  | P.Step s ->
      let opt fs = function Some v -> fs v | None -> [] in
      obj
        ([
           ("t", quote "step");
           ("step", string_of_int s.P.st_step);
           ("stage", quote s.P.st_stage);
           ("entries", string_of_int s.P.st_entries);
           ("hash", quote s.P.st_hash);
           ("comps", string_of_int s.P.st_comps);
           ("nets", string_of_int s.P.st_nets);
         ]
        @ opt (fun l -> [ ("label", quote l) ]) s.P.st_label
        @ opt (fun d -> [ ("site", quote d) ]) s.P.st_site
        @ opt
            (fun v -> [ ("verdict", quote (P.verdict_name v)) ])
            s.P.st_verdict
        @ opt (cost_fields "before_") s.P.st_before
        @ opt (cost_fields "after_") s.P.st_after
        @ opt
            (fun (steps, evals, elapsed) ->
              [
                ("budget_steps", string_of_int steps);
                ("budget_evals", string_of_int evals);
                ("budget_elapsed", num elapsed);
              ])
            s.P.st_budget)
  | P.Debit d ->
      obj
        [
          ("t", quote "debit");
          ("stage", quote d.P.de_stage);
          ("kind", quote d.P.de_kind);
          ("rule", quote d.P.de_rule);
        ]
  | P.Check c ->
      obj
        [
          ("t", quote "checkpoint");
          ("stage", quote c.ck_stage);
          ("hash", quote c.ck_hash);
          ("comps", string_of_int c.ck_comps);
          ("nets", string_of_int c.ck_nets);
        ]
  | P.Finish f ->
      obj
        ([ ("t", quote "finish"); ("outcome", quote f.fin_outcome) ]
        @ cost_fields "" f.fin_cost)

let sink oc ev =
  output_string oc (line_of_event ev);
  output_char oc '\n';
  match ev with P.Finish _ -> flush oc | _ -> ()

let save path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun ev ->
          output_string oc (line_of_event ev);
          output_char oc '\n')
        events)

(* --- parsing ------------------------------------------------------- *)

type jfield = S of string | N of float

(* Minimal JSON-object-of-scalars parser — the exact inverse of [obj]
   above (string and number values only, no nesting). *)
let parse_obj ln =
  let n = String.length ln in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "%s at column %d" msg (!pos + 1)) in
  let peek () = if !pos < n then ln.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let v =
                (hex ln.[!pos + 1] lsl 12)
                lor (hex ln.[!pos + 2] lsl 8)
                lor (hex ln.[!pos + 3] lsl 4)
                lor hex ln.[!pos + 4]
              in
              pos := !pos + 4;
              if v > 0xff then fail "non-latin \\u escape";
              Buffer.add_char b (Char.chr v)
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number_lit () =
    let start = !pos in
    let numeric c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numeric ln.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected value";
    match float_of_string_opt (String.sub ln start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  expect '{';
  let fields = ref [] in
  if peek () = '}' then advance ()
  else begin
    let rec members () =
      let key = string_lit () in
      expect ':';
      let v = if peek () = '"' then S (string_lit ()) else N (number_lit ()) in
      fields := (key, v) :: !fields;
      match peek () with
      | ',' ->
          advance ();
          members ()
      | '}' -> advance ()
      | _ -> fail "expected ',' or '}'"
    in
    members ()
  end;
  if !pos <> n then fail "trailing garbage";
  List.rev !fields

let event_of_line ln =
  let fields = parse_obj ln in
  let str k =
    match List.assoc_opt k fields with
    | Some (S s) -> s
    | Some (N _) -> failwith (k ^ ": expected string")
    | None -> failwith ("missing key " ^ k)
  in
  let str_opt k =
    match List.assoc_opt k fields with
    | Some (S s) -> Some s
    | Some (N _) -> failwith (k ^ ": expected string")
    | None -> None
  in
  let fnum k =
    match List.assoc_opt k fields with
    | Some (N f) -> f
    | Some (S _) -> failwith (k ^ ": expected number")
    | None -> failwith ("missing key " ^ k)
  in
  let int k = int_of_float (fnum k) in
  let cost_opt prefix : P.cost option =
    match List.assoc_opt (prefix ^ "delay") fields with
    | None -> None
    | Some _ ->
        Some
          {
            Milo_trace.Trace.delay = fnum (prefix ^ "delay");
            area = fnum (prefix ^ "area");
            power = fnum (prefix ^ "power");
          }
  in
  match str "t" with
  | "run" ->
      P.Run
        { run_design = str "design"; run_tech = str "tech"; run_hash = str "hash" }
  | "stage" -> P.Stage (str "stage")
  | "step" ->
      P.Step
        {
          st_step = int "step";
          st_stage = str "stage";
          st_label = str_opt "label";
          st_site = str_opt "site";
          st_verdict =
            (match str_opt "verdict" with
            | Some v -> (
                match P.verdict_of_name v with
                | Some _ as r -> r
                | None -> failwith ("unknown verdict " ^ v))
            | None -> None);
          st_entries = int "entries";
          st_hash = str "hash";
          st_before = cost_opt "before_";
          st_after = cost_opt "after_";
          st_comps = int "comps";
          st_nets = int "nets";
          st_budget =
            (match List.assoc_opt "budget_steps" fields with
            | None -> None
            | Some _ ->
                Some
                  (int "budget_steps", int "budget_evals", fnum "budget_elapsed"));
        }
  | "debit" ->
      P.Debit
        { de_stage = str "stage"; de_kind = str "kind"; de_rule = str "rule" }
  | "checkpoint" ->
      P.Check
        {
          ck_stage = str "stage";
          ck_hash = str "hash";
          ck_comps = int "comps";
          ck_nets = int "nets";
        }
  | "finish" ->
      P.Finish
        {
          fin_outcome = str "outcome";
          fin_cost =
            {
              Milo_trace.Trace.delay = fnum "delay";
              area = fnum "area";
              power = fnum "power";
            };
        }
  | t -> failwith ("unknown record type " ^ t)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> go (lineno + 1) acc
        | ln -> (
            match event_of_line ln with
            | ev -> go (lineno + 1) (ev :: acc)
            | exception Failure msg ->
                failwith (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      go 1 [])

(* --- offline reconstruction from a journal ------------------------- *)

let in_place stage = stage = "micro" || stage = "optimize"

let of_journal path =
  let rc = J.recover path in
  let t = P.create () in
  (match J.header rc with
  | None -> failwith (path ^ ": no run header survived recovery")
  | Some h -> P.set_run t ~design:h.J.h_design ~tech:h.J.h_tech ~hash:h.J.h_hash);
  let cur = ref None in
  List.iter
    (fun record ->
      match record with
      | J.Header _ -> ()
      | J.Stage s ->
          (* Stage boundaries are where the live flow re-tracks (and so
             re-targets) a different design; mirroring that here keeps
             the final-stage tags identical to the live recording. *)
          P.retarget t;
          P.observe_stage t s
      | J.Delta { d_stage; d_label; d_hash; d_entries } ->
          (match !cur with
          | Some d when in_place d_stage -> (
              try D.redo d d_entries
              with (Out_of_memory | Stack_overflow) as e -> raise e | _ -> ())
          | Some _ | None -> ());
          let d, hash =
            match !cur with
            | Some d when in_place d_stage ->
                (d, match d_hash with Some h -> Some h | None -> None)
            | _ -> (D.create "offline", Some (Option.value d_hash ~default:""))
          in
          P.observe_commit t ~stage:d_stage ~label:d_label ?hash d d_entries
      | J.Checkpoint ck ->
          P.observe_checkpoint t ~stage:ck.J.ck_stage ck.J.ck_design;
          cur := Some (D.copy ck.J.ck_design)
      | J.Finish f ->
          P.observe_finish t ~outcome:f.f_outcome
            {
              Milo_trace.Trace.delay = f.f_delay;
              area = f.f_area;
              power = f.f_power;
            })
    rc.J.r_records;
  t

(* --- cross-check --------------------------------------------------- *)

type mismatch = { mis_index : int; mis_detail : string }

let crosscheck ~journal events =
  let rc = J.recover journal in
  let events =
    List.filter (function P.Debit _ -> false | _ -> true) events
  in
  let mismatches = ref [] in
  let bad idx fmt =
    Printf.ksprintf
      (fun detail -> mismatches := { mis_index = idx; mis_detail = detail } :: !mismatches)
      fmt
  in
  let near a b = a = b || abs_float (a -. b) <= 1e-9 *. (1.0 +. abs_float b) in
  let rec zip idx records events =
    match (records, events) with
    | [], [] -> ()
    | [], ev :: _ ->
        bad idx "journal exhausted before trajectory (next: %s)"
          (match ev with
          | P.Run _ -> "run"
          | P.Stage _ -> "stage"
          | P.Step _ -> "step"
          | P.Debit _ -> "debit"
          | P.Check _ -> "checkpoint"
          | P.Finish _ -> "finish")
    | _ :: _, [] -> bad idx "trajectory exhausted before journal"
    | record :: records, ev :: events ->
        (match (record, ev) with
        | J.Header h, P.Run r ->
            if h.J.h_design <> r.run_design then
              bad idx "design %S vs journal %S" r.run_design h.J.h_design;
            if h.J.h_tech <> r.run_tech then
              bad idx "technology %S vs journal %S" r.run_tech h.J.h_tech;
            if h.J.h_hash <> r.run_hash then
              bad idx "input hash %s vs journal %s" r.run_hash h.J.h_hash
        | J.Stage s, P.Stage s' ->
            if s <> s' then bad idx "stage %S vs journal %S" s' s
        | J.Delta d, P.Step s ->
            if d.d_stage <> s.P.st_stage then
              bad idx "step %d stage %S vs journal %S" s.P.st_step s.P.st_stage
                d.d_stage;
            if d.d_label <> s.P.st_label then
              bad idx "step %d label %S vs journal %S" s.P.st_step
                (Option.value s.P.st_label ~default:"")
                (Option.value d.d_label ~default:"");
            if List.length d.d_entries <> s.P.st_entries then
              bad idx "step %d has %d entries vs journal %d" s.P.st_step
                s.P.st_entries
                (List.length d.d_entries);
            (match d.d_hash with
            | Some h when h <> s.P.st_hash ->
                bad idx "step %d hash %s vs journal %s" s.P.st_step s.P.st_hash h
            | Some _ | None -> ())
        | J.Checkpoint ck, P.Check c ->
            if ck.J.ck_stage <> c.ck_stage then
              bad idx "checkpoint stage %S vs journal %S" c.ck_stage
                ck.J.ck_stage;
            if J.design_hash ck.J.ck_design <> c.ck_hash then
              bad idx "checkpoint hash %s vs journal snapshot" c.ck_hash;
            if D.num_comps ck.J.ck_design <> c.ck_comps
               || D.num_nets ck.J.ck_design <> c.ck_nets
            then
              bad idx "checkpoint features %d/%d vs journal %d/%d" c.ck_comps
                c.ck_nets
                (D.num_comps ck.J.ck_design)
                (D.num_nets ck.J.ck_design)
        | J.Finish f, P.Finish e ->
            if f.f_outcome <> e.fin_outcome then
              bad idx "outcome %S vs journal %S" e.fin_outcome f.f_outcome;
            if
              not
                (near e.fin_cost.Milo_trace.Trace.delay f.f_delay
                && near e.fin_cost.Milo_trace.Trace.area f.f_area
                && near e.fin_cost.Milo_trace.Trace.power f.f_power)
            then
              bad idx "final cost %.6g/%.6g/%.6g vs journal %.6g/%.6g/%.6g"
                e.fin_cost.Milo_trace.Trace.delay e.fin_cost.Milo_trace.Trace.area
                e.fin_cost.Milo_trace.Trace.power f.f_delay f.f_area f.f_power
        | _, _ ->
            bad idx "record kind mismatch (trajectory %s)"
              (match ev with
              | P.Run _ -> "run"
              | P.Stage _ -> "stage"
              | P.Step _ -> "step"
              | P.Debit _ -> "debit"
              | P.Check _ -> "checkpoint"
              | P.Finish _ -> "finish"));
        zip (idx + 1) records events
  in
  zip 0 rc.J.r_records events;
  List.rev !mismatches
