module D = Milo_netlist.Design
module H = Milo_netlist.Hashcons
module Sta = Milo_timing.Sta

type cost = Milo_trace.Trace.cost

type verdict = Certified | Checked | Skipped | Unguarded

let verdict_name = function
  | Certified -> "certified"
  | Checked -> "checked"
  | Skipped -> "skipped"
  | Unguarded -> "unguarded"

let verdict_of_name = function
  | "certified" -> Some Certified
  | "checked" -> Some Checked
  | "skipped" -> Some Skipped
  | "unguarded" -> Some Unguarded
  | _ -> None

type tag = { tag_stage : string; tag_label : string option; tag_step : int }

type step = {
  st_step : int;
  st_stage : string;
  st_label : string option;
  st_site : string option;
  st_verdict : verdict option;
  st_entries : int;
  st_hash : string;
  st_before : cost option;
  st_after : cost option;
  st_comps : int;
  st_nets : int;
  st_budget : (int * int * float) option;
}

type debit = { de_stage : string; de_kind : string; de_rule : string }

type event =
  | Run of { run_design : string; run_tech : string; run_hash : string }
  | Stage of string
  | Step of step
  | Debit of debit
  | Check of { ck_stage : string; ck_hash : string; ck_comps : int; ck_nets : int }
  | Finish of { fin_outcome : string; fin_cost : cost }

(* The engine's deposit: attribution detail for the commit about to
   happen on [p_design].  Matching is by physical design identity plus
   label, so a commit on any other design object cannot consume it. *)
type note = {
  p_design : D.t;
  p_label : string;
  p_site : string option;
  p_verdict : verdict option;
  p_before : cost option;
  p_after : cost option;
}

type t = {
  mutable events_rev : event list;
  mutable n_events : int;
  mutable next_step : int;
  mutable stage : string;
  mutable note : note option;
  comp_tags : (int, tag) Hashtbl.t;
  net_tags : (int, tag) Hashtbl.t;
  mutable budget_probe : (unit -> int * int * float) option;
  mutable sinks : (event -> unit) list;  (* reverse install order *)
}

let create () =
  {
    events_rev = [];
    n_events = 0;
    next_step = 0;
    stage = "";
    note = None;
    comp_tags = Hashtbl.create 256;
    net_tags = Hashtbl.create 256;
    budget_probe = None;
    sinks = [];
  }

(* Domain-local, mirroring [Trace]: the recorder lives on the
   coordinating domain only, so worker-domain scratch evaluations
   leave no provenance and the merged ledger is exactly the
   coordinator's — bit-identical across domain counts. *)
let cur_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let cur () = Domain.DLS.get cur_key

let set_current o = cur () := o
let current () = !(cur ())
let enabled () = !(cur ()) != None

let with_recorder t f =
  let cur = cur () in
  let saved = !cur in
  cur := Some t;
  Fun.protect ~finally:(fun () -> cur := saved) f

(* Suppress recording on this domain for the callback: the inline
   execution mode's oracle-worker discipline. *)
let without f =
  let cur = cur () in
  let saved = !cur in
  cur := None;
  Fun.protect ~finally:(fun () -> cur := saved) f

let add_sink t f = t.sinks <- f :: t.sinks

let record t ev =
  t.events_rev <- ev :: t.events_rev;
  t.n_events <- t.n_events + 1;
  List.iter (fun f -> f ev) (List.rev t.sinks)

(* --- engine-side probes -------------------------------------------- *)

let pending ~design ~label ?site ?verdict ?before ?after () =
  match !(cur ()) with
  | None -> ()
  | Some t ->
      t.note <-
        Some
          {
            p_design = design;
            p_label = label;
            p_site = site;
            p_verdict = verdict;
            p_before = before;
            p_after = after;
          }

let debit ~kind ~rule =
  match !(cur ()) with
  | None -> ()
  | Some t ->
      record t (Debit { de_stage = t.stage; de_kind = kind; de_rule = rule })

(* --- flow-side observers ------------------------------------------- *)

let set_run t ~design ~tech ~hash =
  record t (Run { run_design = design; run_tech = tech; run_hash = hash })

let set_budget_probe t p = t.budget_probe <- p

let observe_stage t stage =
  t.stage <- stage;
  record t (Stage stage)

let fold_entry tags comp_tags net_tags = function
  | D.E_add_comp (cid, _, _) | D.E_set_kind (cid, _, _) ->
      Hashtbl.replace comp_tags cid tags
  | D.E_connect (cid, _, prev, next) ->
      Hashtbl.replace comp_tags cid tags;
      let touch = function
        | Some nid -> Hashtbl.replace net_tags nid tags
        | None -> ()
      in
      touch prev;
      touch next
  | D.E_remove_comp (cid, _, _, saved) ->
      Hashtbl.remove comp_tags cid;
      List.iter (fun (_, nid) -> Hashtbl.replace net_tags nid tags) saved
  | D.E_add_net (nid, _) -> Hashtbl.replace net_tags nid tags
  | D.E_remove_net (nid, _, _) -> Hashtbl.remove net_tags nid

let observe_commit t ~stage ~label ?hash d entries =
  let step = t.next_step in
  t.next_step <- step + 1;
  t.stage <- stage;
  let note =
    match (t.note, label) with
    | Some n, Some l when n.p_design == d && n.p_label = l ->
        t.note <- None;
        Some n
    | _ -> None
  in
  let tag = { tag_stage = stage; tag_label = label; tag_step = step } in
  List.iter (fold_entry tag t.comp_tags t.net_tags) entries;
  let hash = match hash with Some h -> h | None -> H.design_digest d in
  record t
    (Step
       {
         st_step = step;
         st_stage = stage;
         st_label = label;
         st_site = (match note with Some n -> n.p_site | None -> None);
         st_verdict = (match note with Some n -> n.p_verdict | None -> None);
         st_entries = List.length entries;
         st_hash = hash;
         st_before = (match note with Some n -> n.p_before | None -> None);
         st_after = (match note with Some n -> n.p_after | None -> None);
         st_comps = D.num_comps d;
         st_nets = D.num_nets d;
         st_budget =
           (match t.budget_probe with Some p -> Some (p ()) | None -> None);
       })

let observe_checkpoint t ~stage d =
  t.stage <- stage;
  record t
    (Check
       {
         ck_stage = stage;
         ck_hash = H.design_digest d;
         ck_comps = D.num_comps d;
         ck_nets = D.num_nets d;
       })

let observe_finish t ~outcome cost =
  record t (Finish { fin_outcome = outcome; fin_cost = cost })

let retarget t =
  Hashtbl.reset t.comp_tags;
  Hashtbl.reset t.net_tags;
  t.note <- None

(* --- queries ------------------------------------------------------- *)

let events t = List.rev t.events_rev

let comp_tag t id = Hashtbl.find_opt t.comp_tags id
let net_tag t id = Hashtbl.find_opt t.net_tags id
let tag_count t = (Hashtbl.length t.comp_tags, Hashtbl.length t.net_tags)

(* --- attribution ledger -------------------------------------------- *)

type row = {
  row_stage : string;
  row_label : string;
  row_applies : int;
  row_measured : int;
  row_delay : float;
  row_area : float;
  row_power : float;
}

let unlabeled = "(unlabeled)"

let ledger t =
  let order = ref [] and rows = Hashtbl.create 32 in
  List.iter
    (function
      | Step s ->
          let label = Option.value s.st_label ~default:unlabeled in
          let key = (s.st_stage, label) in
          let r =
            match Hashtbl.find_opt rows key with
            | Some r -> r
            | None ->
                let r =
                  ref
                    {
                      row_stage = s.st_stage;
                      row_label = label;
                      row_applies = 0;
                      row_measured = 0;
                      row_delay = 0.0;
                      row_area = 0.0;
                      row_power = 0.0;
                    }
                in
                Hashtbl.replace rows key r;
                order := key :: !order;
                r
          in
          let v = !r in
          let v = { v with row_applies = v.row_applies + 1 } in
          let v =
            match (s.st_before, s.st_after) with
            | Some b, Some a ->
                {
                  v with
                  row_measured = v.row_measured + 1;
                  row_delay = v.row_delay +. (a.delay -. b.delay);
                  row_area = v.row_area +. (a.area -. b.area);
                  row_power = v.row_power +. (a.power -. b.power);
                }
            | _ -> v
          in
          r := v
      | _ -> ())
    (events t);
  List.rev_map (fun key -> !(Hashtbl.find rows key)) !order

(* --- conservation -------------------------------------------------- *)

type conservation = {
  co_stage : string;
  co_commits : int;
  co_measured : int;
  co_breaks : int;
  co_sum : cost;
  co_end : cost;
  co_residual : cost;
}

let zero_cost : cost = { delay = 0.0; area = 0.0; power = 0.0 }

let cost_sub (a : cost) (b : cost) : cost =
  { delay = a.delay -. b.delay; area = a.area -. b.area; power = a.power -. b.power }

let cost_add (a : cost) (b : cost) : cost =
  { delay = a.delay +. b.delay; area = a.area +. b.area; power = a.power +. b.power }

(* Bitwise equality: conservation is about the measurer handing the
   exact same totals to consecutive steps, not about float tolerance. *)
let cost_identical (a : cost) (b : cost) =
  Int64.equal (Int64.bits_of_float a.delay) (Int64.bits_of_float b.delay)
  && Int64.equal (Int64.bits_of_float a.area) (Int64.bits_of_float b.area)
  && Int64.equal (Int64.bits_of_float a.power) (Int64.bits_of_float b.power)

type co_acc = {
  mutable a_commits : int;
  mutable a_measured : int;
  mutable a_breaks : int;
  mutable a_sum : cost;
  mutable a_first : cost option;
  mutable a_last : cost option;  (* previous measured step's [after] *)
}

let conservation t =
  let order = ref [] and accs = Hashtbl.create 8 in
  let acc stage =
    match Hashtbl.find_opt accs stage with
    | Some a -> a
    | None ->
        let a =
          {
            a_commits = 0;
            a_measured = 0;
            a_breaks = 0;
            a_sum = zero_cost;
            a_first = None;
            a_last = None;
          }
        in
        Hashtbl.replace accs stage a;
        order := stage :: !order;
        a
  in
  List.iter
    (function
      | Step s -> (
          let a = acc s.st_stage in
          a.a_commits <- a.a_commits + 1;
          match (s.st_before, s.st_after) with
          | Some b, Some af ->
              a.a_measured <- a.a_measured + 1;
              a.a_sum <- cost_add a.a_sum (cost_sub af b);
              (match a.a_first with None -> a.a_first <- Some b | Some _ -> ());
              (match a.a_last with
              | Some prev when not (cost_identical prev b) ->
                  a.a_breaks <- a.a_breaks + 1
              | _ -> ());
              a.a_last <- Some af
          | _ -> ())
      | _ -> ())
    (events t);
  List.rev_map
    (fun stage ->
      let a = Hashtbl.find accs stage in
      let co_end =
        match (a.a_first, a.a_last) with
        | Some first, Some last -> cost_sub last first
        | _ -> zero_cost
      in
      {
        co_stage = stage;
        co_commits = a.a_commits;
        co_measured = a.a_measured;
        co_breaks = a.a_breaks;
        co_sum = a.a_sum;
        co_end;
        co_residual = cost_sub a.a_sum co_end;
      })
    !order

(* --- critical-path blame ------------------------------------------- *)

let blame t (path : Sta.path) =
  List.map (fun (h : Sta.hop) -> (h, comp_tag t h.Sta.comp)) path.Sta.hops
