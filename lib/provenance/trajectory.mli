(** Trajectory serialization: one JSON object per {!Provenance.event},
    one event per line (JSONL), keys sorted, floats printed so they
    round-trip bit-exactly through {!load}.

    Record types ([t] key): ["run"], ["stage"], ["step"], ["debit"],
    ["checkpoint"], ["finish"] — mirroring the journal's record stream
    one-for-one (debit excepted), which is what lets {!crosscheck}
    verify a recorded trajectory against the journal of the same run
    by a plain zip.

    A trajectory can be captured two ways, producing alignable
    streams: live, by installing {!sink} on the run's recorder; or
    offline, by {!of_journal} over the run's journal — including a
    journal stitched across kill/resume cycles, since {!Flow.resume}
    rewrites one coherent record stream.  Offline steps lack the
    live-only detail (measured costs, guard verdicts, site digests,
    budget snapshots), and construction-stage steps (compile, techmap)
    report zero feature counts — their deltas describe a design the
    offline fold does not rebuild. *)

val line_of_event : Provenance.event -> string
(** One JSON object, no trailing newline. *)

val sink : out_channel -> Provenance.event -> unit
(** Streaming sink for {!Provenance.add_sink}: writes each event as a
    line, flushing on [Finish] (the journal is the durable record; the
    trajectory file is regenerable from it). *)

val save : string -> Provenance.event list -> unit
(** Write a complete trajectory file. *)

val load : string -> Provenance.event list
(** Parse a trajectory file.  Raises [Failure] (with a line number) on
    malformed input. *)

val of_journal : string -> Provenance.t
(** Rebuild a trajectory offline from a journal: fold the recovered
    records through a fresh recorder, replaying deltas onto checkpoint
    snapshots for the in-place stages (micro, optimize) exactly like
    [Flow.replay], so step ordinals, hashes and object tags match the
    live recording.  Raises [Failure] when no run header survived
    recovery. *)

type mismatch = {
  mis_index : int;  (** journal record index *)
  mis_detail : string;
}

val crosscheck : journal:string -> Provenance.event list -> mismatch list
(** Verify a trajectory against the journal of the same run: zip the
    recovered records with the events (debits skipped) and compare
    stage names, labels, design hashes, features and final stats.
    Empty list = zero divergences. *)
