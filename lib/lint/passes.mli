(** The individual lint/DRC analysis passes.  Use {!Lint.run} unless you
    need to invoke a single pass directly. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type ctx = {
  design : D.t;
  resolve : D.resolver option;
  is_sequential : T.kind -> bool;
}

type pass = {
  pass_name : string;  (** rule id carried by the diagnostics it emits *)
  pass_doc : string;
  pass_run : ctx -> Diagnostic.t list;
}

val all : pass list
val find : string -> pass option
