(** Lint driver: run the DRC passes over a design, build reports, and
    enforce stage invariants in the flow.

    Loading this module installs the one true implementation of
    [Milo_netlist.Design.check]. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

(** Strictness of a stage invariant: [Off] skips linting entirely,
    [Warn] reports errors/warnings on stderr and continues, [Strict]
    raises {!Lint_error} on any Error-severity finding. *)
type level = Off | Warn | Strict

val level_name : level -> string
val level_of_string : string -> level option

val rule_names : string list
(** All registered pass names. *)

val structural_rules : string list
(** The invariant subset a rewrite engine must preserve after every rule
    application (connectivity consistency, single drivers, valid
    references, no combinational loops). *)

val compat_rules : string list
(** The subset [Design.check] historically enforced. *)

val run :
  ?resolve:D.resolver ->
  ?is_sequential:(T.kind -> bool) ->
  ?rules:string list ->
  D.t ->
  Diagnostic.t list
(** Run the selected passes (default: all) and return the findings
    sorted most severe first.  [resolve] supplies Macro/Instance pin
    interfaces; [is_sequential] classifies kinds the netlist layer
    cannot (mapped flip-flop macros), defaulting to
    [Types.is_sequential_kind].
    @raise Invalid_argument on an unknown rule name. *)

val severity_count : Diagnostic.severity -> Diagnostic.t list -> int
val errors : Diagnostic.t list -> Diagnostic.t list

type report = {
  design_name : string;
  stage : string option;
  diags : Diagnostic.t list;
}

val report_summary : report -> string
val report_to_string : report -> string
val report_to_json : report -> string

exception Lint_error of report

val check_stage :
  ?resolve:D.resolver ->
  ?is_sequential:(T.kind -> bool) ->
  level:level ->
  stage:string ->
  D.t ->
  Diagnostic.t list
(** Lint one flow stage at the given strictness; see {!level}. *)

val check : ?resolve:D.resolver -> D.t -> (unit, string list) result
(** The [Design.check] semantics, rebased on {!compat_rules}. *)
