(* Structured lint diagnostics.

   Every finding carries the rule that produced it, a severity, a
   location inside the design (or a source file position for parser
   diagnostics) and a human-readable message.  The flow, the CLI and
   [Design.check] all speak this one type. *)

type severity = Error | Warning | Info

type location =
  | Comp of { cname : string; ckind : string }
  | Net of { nname : string }
  | Pin of { cname : string; ckind : string; pin : string }
  | Port of string
  | File of { file : string; line : int option }
  | Design

type t = {
  rule : string;
  severity : severity;
  loc : location;
  message : string;
}

let make ~rule ~severity ~loc fmt =
  Printf.ksprintf (fun message -> { rule; severity; loc; message }) fmt

let parse_error ~file ?line fmt =
  Printf.ksprintf
    (fun message ->
      { rule = "parse"; severity = Error; loc = File { file; line }; message })
    fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let loc_to_string = function
  | Comp { cname; ckind } -> Printf.sprintf "comp %s (%s)" cname ckind
  | Net { nname } -> Printf.sprintf "net %s" nname
  | Pin { cname; ckind; pin } ->
      Printf.sprintf "pin %s.%s (%s)" cname pin ckind
  | Port p -> Printf.sprintf "port %s" p
  | File { file; line = Some l } -> Printf.sprintf "%s:%d" file l
  | File { file; line = None } -> file
  | Design -> "design"

(* File locations use the compiler-style "file:line: severity: message"
   shape so editors can jump to them; design locations lead with the
   severity and rule id. *)
let to_string d =
  match d.loc with
  | File _ ->
      Printf.sprintf "%s: %s: %s" (loc_to_string d.loc)
        (severity_name d.severity) d.message
  | Comp _ | Net _ | Pin _ | Port _ | Design ->
      Printf.sprintf "%s: [%s] %s: %s" (severity_name d.severity) d.rule
        (loc_to_string d.loc) d.message

let order d =
  (severity_rank d.severity, d.rule, loc_to_string d.loc, d.message)

let compare_diag a b = compare (order a) (order b)

(* --- JSON ------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)

let loc_to_json = function
  | Comp { cname; ckind } ->
      Printf.sprintf "{\"kind\":\"comp\",\"comp\":%s,\"type\":%s}"
        (json_str cname) (json_str ckind)
  | Net { nname } ->
      Printf.sprintf "{\"kind\":\"net\",\"net\":%s}" (json_str nname)
  | Pin { cname; ckind; pin } ->
      Printf.sprintf "{\"kind\":\"pin\",\"comp\":%s,\"type\":%s,\"pin\":%s}"
        (json_str cname) (json_str ckind) (json_str pin)
  | Port p -> Printf.sprintf "{\"kind\":\"port\",\"port\":%s}" (json_str p)
  | File { file; line } ->
      Printf.sprintf "{\"kind\":\"file\",\"file\":%s%s}" (json_str file)
        (match line with
        | Some l -> Printf.sprintf ",\"line\":%d" l
        | None -> "")
  | Design -> "{\"kind\":\"design\"}"

let to_json d =
  Printf.sprintf "{\"rule\":%s,\"severity\":%s,\"loc\":%s,\"message\":%s}"
    (json_str d.rule)
    (json_str (severity_name d.severity))
    (loc_to_json d.loc) (json_str d.message)
