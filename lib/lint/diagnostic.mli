(** Structured lint diagnostics: rule id, severity, design (or source
    file) location, message.  The common currency of the lint passes,
    the flow's stage invariants, [Design.check] and the CLI. *)

type severity = Error | Warning | Info

type location =
  | Comp of { cname : string; ckind : string }
  | Net of { nname : string }
  | Pin of { cname : string; ckind : string; pin : string }
  | Port of string
  | File of { file : string; line : int option }
  | Design

type t = {
  rule : string;
  severity : severity;
  loc : location;
  message : string;
}

val make :
  rule:string ->
  severity:severity ->
  loc:location ->
  ('a, unit, string, t) format4 ->
  'a

val parse_error :
  file:string -> ?line:int -> ('a, unit, string, t) format4 -> 'a
(** An [Error] diagnostic at a source-file position (rule ["parse"]);
    renders as "file:line: error: message". *)

val severity_name : severity -> string
val severity_rank : severity -> int
(** [Error] ranks lowest (most severe first when sorting). *)

val loc_to_string : location -> string

val to_string : t -> string
(** One-line human-readable rendering. *)

val compare_diag : t -> t -> int
(** Orders by severity, then rule id, then location. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val to_json : t -> string
