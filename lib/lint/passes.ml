(* The lint/DRC analysis passes over the netlist IR.

   Each pass is a pure query over [Design.t] producing diagnostics; none
   mutates the design.  Passes degrade gracefully on partial
   information: a component whose Macro/Instance reference cannot be
   resolved is reported once by [unknown-ref] and skipped by the
   pin-level passes instead of raising. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type ctx = {
  design : D.t;
  resolve : D.resolver option;
  is_sequential : T.kind -> bool;
      (* classifies Macro/Instance kinds too; [Types.is_sequential_kind]
         only knows the micro components *)
}

type pass = { pass_name : string; pass_doc : string; pass_run : ctx -> Diagnostic.t list }

(* --- shared helpers --------------------------------------------------- *)

let ckind (c : D.comp) = T.kind_name c.D.kind
let comp_loc c = Diagnostic.Comp { cname = c.D.cname; ckind = ckind c }
let pin_loc c pin = Diagnostic.Pin { cname = c.D.cname; ckind = ckind c; pin }
let net_loc (n : D.net) = Diagnostic.Net { nname = n.D.nname }

(* The resolved pin interface of a component; [None] when the
   Macro/Instance reference is unknown. *)
let pins_of ctx (c : D.comp) =
  match c.D.kind with
  | T.Macro name | T.Instance name -> (
      match ctx.resolve with
      | None -> None
      | Some f -> (
          try Some (f c.D.kind name)
          with Invalid_argument _ | Not_found -> None))
  | k -> Some (T.pins_of_kind k)

let resolved ctx c = pins_of ctx c <> None

let pin_dir ctx c pin =
  match pins_of ctx c with
  | None -> None
  | Some pins -> List.assoc_opt pin pins

(* Pins of a net grouped by direction, skipping unresolved components
   (those are reported by [unknown-ref], and guessing their pin
   directions would only produce noise). *)
let net_endpoints ctx (n : D.net) =
  List.fold_left
    (fun (drivers, sinks, unresolved) (cid, pin) ->
      match D.comp_opt ctx.design cid with
      | None -> (drivers, sinks, unresolved)
      | Some c -> (
          match pin_dir ctx c pin with
          | Some T.Output -> ((c, pin) :: drivers, sinks, unresolved)
          | Some T.Input -> (drivers, (c, pin) :: sinks, unresolved)
          | None -> (drivers, sinks, true)))
    ([], [], false) n.D.npins

let collect f =
  let acc = ref [] in
  f (fun d -> acc := d :: !acc);
  List.rev !acc

(* --- structural graph consistency ------------------------------------ *)

(* Connections reference live nets, and the comp-pin / net-pin indexes
   agree in both directions (the invariants the undo log relies on). *)
let run_net_consistency ctx =
  let d = ctx.design in
  collect (fun add ->
      List.iter
        (fun (c : D.comp) ->
          List.iter
            (fun (pin, nid) ->
              match D.net_opt d nid with
              | None ->
                  add
                    (Diagnostic.make ~rule:"net-consistency"
                       ~severity:Diagnostic.Error ~loc:(pin_loc c pin)
                       "connected to dangling net %d" nid)
              | Some n ->
                  if not (List.mem (c.D.id, pin) n.D.npins) then
                    add
                      (Diagnostic.make ~rule:"net-consistency"
                         ~severity:Diagnostic.Error ~loc:(net_loc n)
                         "missing back-reference to %s.%s" c.D.cname pin))
            (D.connections d c.D.id))
        (D.comps d);
      List.iter
        (fun (n : D.net) ->
          List.iter
            (fun (cid, pin) ->
              match D.comp_opt d cid with
              | None ->
                  add
                    (Diagnostic.make ~rule:"net-consistency"
                       ~severity:Diagnostic.Error ~loc:(net_loc n)
                       "pin of removed comp %d.%s" cid pin)
              | Some c ->
                  if D.connection d cid pin <> Some n.D.nid then
                    add
                      (Diagnostic.make ~rule:"net-consistency"
                         ~severity:Diagnostic.Error ~loc:(net_loc n)
                         "stale pin %s.%s" c.D.cname pin))
            n.D.npins)
        (D.nets d))

(* Port list and net port-bindings agree. *)
let run_port_consistency ctx =
  let d = ctx.design in
  collect (fun add ->
      List.iter
        (fun (p, dir, nid) ->
          match D.net_opt d nid with
          | None ->
              add
                (Diagnostic.make ~rule:"port-consistency"
                   ~severity:Diagnostic.Error ~loc:(Diagnostic.Port p)
                   "bound to nonexistent net %d" nid)
          | Some n ->
              if n.D.nport <> Some (p, dir) then
                add
                  (Diagnostic.make ~rule:"port-consistency"
                     ~severity:Diagnostic.Error ~loc:(Diagnostic.Port p)
                     "net %s does not carry the port binding back" n.D.nname))
        (D.ports d);
      List.iter
        (fun (n : D.net) ->
          match n.D.nport with
          | Some (p, dir) ->
              if
                not
                  (List.exists
                     (fun (p', dir', nid') ->
                       p' = p && dir' = dir && nid' = n.D.nid)
                     (D.ports d))
              then
                add
                  (Diagnostic.make ~rule:"port-consistency"
                     ~severity:Diagnostic.Error ~loc:(net_loc n)
                     "claims port %s absent from the port list" p)
          | None -> ())
        (D.nets d))

(* --- reference and pin-interface validity ----------------------------- *)

let run_unknown_ref ctx =
  collect (fun add ->
      List.iter
        (fun (c : D.comp) ->
          match c.D.kind with
          | (T.Macro name | T.Instance name) when not (resolved ctx c) ->
              add
                (Diagnostic.make ~rule:"unknown-ref"
                   ~severity:Diagnostic.Error ~loc:(comp_loc c)
                   "unresolved %s reference %s"
                   (match c.D.kind with
                   | T.Macro _ -> "macro"
                   | _ -> "instance")
                   name)
          | _ -> ())
        (D.comps ctx.design))

let run_unknown_pin ctx =
  collect (fun add ->
      List.iter
        (fun (c : D.comp) ->
          match pins_of ctx c with
          | None -> ()
          | Some pins ->
              List.iter
                (fun (pin, _) ->
                  if not (List.mem_assoc pin pins) then
                    add
                      (Diagnostic.make ~rule:"unknown-pin"
                         ~severity:Diagnostic.Error ~loc:(pin_loc c pin)
                         "connection on a pin absent from the %s interface"
                         (ckind c)))
                (D.connections ctx.design c.D.id))
        (D.comps ctx.design))

(* --- drivers ---------------------------------------------------------- *)

let run_multiple_drivers ctx =
  collect (fun add ->
      List.iter
        (fun (n : D.net) ->
          let drivers, _, _ = net_endpoints ctx n in
          let names =
            List.rev_map
              (fun ((c : D.comp), pin) -> c.D.cname ^ "." ^ pin)
              drivers
          in
          let names =
            match n.D.nport with
            | Some (p, T.Input) -> ("port " ^ p) :: names
            | Some (_, T.Output) | None -> names
          in
          if List.length names > 1 then
            add
              (Diagnostic.make ~rule:"multiple-drivers"
                 ~severity:Diagnostic.Error ~loc:(net_loc n)
                 "multiple drivers: %s" (String.concat ", " names)))
        (D.nets ctx.design))

let run_undriven_net ctx =
  collect (fun add ->
      List.iter
        (fun (n : D.net) ->
          let drivers, sinks, unresolved = net_endpoints ctx n in
          let port_drives =
            match n.D.nport with
            | Some (_, T.Input) -> true
            | Some (_, T.Output) | None -> false
          in
          if drivers = [] && (not port_drives) && (not unresolved)
             && sinks <> []
          then
            add
              (Diagnostic.make ~rule:"undriven-net"
                 ~severity:Diagnostic.Warning ~loc:(net_loc n)
                 "feeds %d input pin%s but has no driver" (List.length sinks)
                 (if List.length sinks = 1 then "" else "s")))
        (D.nets ctx.design))

let run_undriven_port ctx =
  collect (fun add ->
      List.iter
        (fun (p, dir, nid) ->
          match (dir, D.net_opt ctx.design nid) with
          | T.Output, Some n ->
              let drivers, _, unresolved = net_endpoints ctx n in
              if drivers = [] && not unresolved then
                add
                  (Diagnostic.make ~rule:"undriven-port"
                     ~severity:Diagnostic.Warning ~loc:(Diagnostic.Port p)
                     "output port is not driven by any component")
          | _ -> ())
        (D.ports ctx.design))

let run_dangling_output ctx =
  collect (fun add ->
      List.iter
        (fun (n : D.net) ->
          let drivers, sinks, unresolved = net_endpoints ctx n in
          let port_reads =
            match n.D.nport with
            | Some (_, T.Output) -> true
            | Some (_, T.Input) | None -> false
          in
          if
            drivers <> [] && sinks = [] && (not port_reads)
            && (not unresolved)
            && n.D.nport = None
          then
            let (c : D.comp), pin = List.hd drivers in
            add
              (Diagnostic.make ~rule:"dangling-output"
                 ~severity:Diagnostic.Warning ~loc:(net_loc n)
                 "driven by %s.%s but read by nothing" c.D.cname pin))
        (D.nets ctx.design))

(* --- floating pins and clocks ----------------------------------------- *)

let is_clock_pin pin = pin = "CLK"

let run_floating_input ctx =
  collect (fun add ->
      List.iter
        (fun (c : D.comp) ->
          match pins_of ctx c with
          | None -> ()
          | Some pins ->
              let seq = ctx.is_sequential c.D.kind in
              List.iter
                (fun (pin, dir) ->
                  match dir with
                  | T.Input
                    when D.connection ctx.design c.D.id pin = None
                         && not (seq && is_clock_pin pin) ->
                      (* unconnected CLK has its own, sharper rule *)
                      add
                        (Diagnostic.make ~rule:"floating-input"
                           ~severity:Diagnostic.Error ~loc:(pin_loc c pin)
                           "input pin is unconnected")
                  | T.Input | T.Output -> ())
                pins)
        (D.comps ctx.design))

let run_unconnected_clock ctx =
  collect (fun add ->
      List.iter
        (fun (c : D.comp) ->
          if ctx.is_sequential c.D.kind then
            match pins_of ctx c with
            | Some pins
              when List.mem_assoc "CLK" pins
                   && D.connection ctx.design c.D.id "CLK" = None ->
                add
                  (Diagnostic.make ~rule:"unconnected-clock"
                     ~severity:Diagnostic.Error ~loc:(pin_loc c "CLK")
                     "sequential component has no clock")
            | Some _ | None -> ())
        (D.comps ctx.design))

(* --- combinational loops ---------------------------------------------- *)

(* DFS over the combinational component graph; sequential components
   (per [ctx.is_sequential], so mapped flip-flop/counter macros count)
   and unresolved references break paths.  Each distinct cycle is
   reported once. *)
let run_comb_loop ctx =
  let d = ctx.design in
  let comb (c : D.comp) = resolved ctx c && not (ctx.is_sequential c.D.kind) in
  (* successor comp ids through each output pin's net *)
  let succs (c : D.comp) =
    List.concat_map
      (fun (pin, nid) ->
        match (pin_dir ctx c pin, D.net_opt d nid) with
        | Some T.Output, Some n ->
            List.filter_map
              (fun (cid', pin') ->
                match D.comp_opt d cid' with
                | Some c'
                  when comb c' && pin_dir ctx c' pin' = Some T.Input ->
                    Some cid'
                | Some _ | None -> None)
              n.D.npins
        | _ -> [])
      (D.connections d c.D.id)
  in
  let color = Hashtbl.create 64 in
  (* 1 = on stack, 2 = done *)
  let reported = Hashtbl.create 4 in
  let diags = ref [] in
  let rec visit path cid =
    match Hashtbl.find_opt color cid with
    | Some 2 -> ()
    | Some _ ->
        (* back edge: the cycle is the path suffix from [cid] *)
        let rec cycle = function
          | [] -> []
          | x :: rest -> if x = cid then [ x ] else x :: cycle rest
        in
        let members = List.rev (cycle path) in
        let key = List.sort compare members in
        if not (Hashtbl.mem reported key) then begin
          Hashtbl.replace reported key ();
          let names =
            List.map (fun id -> (D.comp d id).D.cname) (members @ [ cid ])
          in
          let c = D.comp d cid in
          diags :=
            Diagnostic.make ~rule:"comb-loop" ~severity:Diagnostic.Error
              ~loc:(comp_loc c) "combinational loop: %s"
              (String.concat " -> " names)
            :: !diags
        end
    | None ->
        Hashtbl.replace color cid 1;
        List.iter (visit (cid :: path)) (succs (D.comp d cid));
        Hashtbl.replace color cid 2
  in
  List.iter
    (fun (c : D.comp) -> if comb c then visit [] c.D.id)
    (D.comps d);
  List.rev !diags

(* --- dead logic ------------------------------------------------------- *)

(* Backward reachability from the output ports: a component none of
   whose outputs (transitively) reaches an output port is dead.  Designs
   without output ports are skipped — there is nothing to be live for. *)
let run_dead_logic ctx =
  let d = ctx.design in
  let out_ports =
    List.filter (fun (_, dir, _) -> dir = T.Output) (D.ports d)
  in
  if out_ports = [] then []
  else begin
    let live_comp = Hashtbl.create 64 in
    let live_net = Hashtbl.create 64 in
    let rec mark_net nid =
      if not (Hashtbl.mem live_net nid) then begin
        Hashtbl.replace live_net nid ();
        match D.net_opt d nid with
        | None -> ()
        | Some n ->
            List.iter
              (fun (cid, pin) ->
                match D.comp_opt d cid with
                | Some c -> (
                    match pin_dir ctx c pin with
                    | Some T.Output | None -> mark_comp cid
                    | Some T.Input -> ())
                | None -> ())
              n.D.npins
      end
    and mark_comp cid =
      if not (Hashtbl.mem live_comp cid) then begin
        Hashtbl.replace live_comp cid ();
        let c = D.comp d cid in
        List.iter
          (fun (pin, nid) ->
            match pin_dir ctx c pin with
            | Some T.Input | None -> mark_net nid
            | Some T.Output -> ())
          (D.connections d cid)
      end
    in
    List.iter (fun (_, _, nid) -> mark_net nid) out_ports;
    collect (fun add ->
        List.iter
          (fun (c : D.comp) ->
            if not (Hashtbl.mem live_comp c.D.id) then
              add
                (Diagnostic.make ~rule:"dead-logic"
                   ~severity:Diagnostic.Info ~loc:(comp_loc c)
                   "not reachable from any output port"))
          (D.comps d))
  end

(* --- constant inputs -------------------------------------------------- *)

let constant_macro name =
  name = "VDD" || name = "VSS"
  || (String.length name > 4
      && let suffix = String.sub name (String.length name - 4) 4 in
         suffix = "_VDD" || suffix = "_VSS")

let run_const_input ctx =
  let d = ctx.design in
  let const_driver (n : D.net) =
    let drivers, _, _ = net_endpoints ctx n in
    List.exists
      (fun ((c : D.comp), _) ->
        match c.D.kind with
        | T.Constant _ -> true
        | T.Macro m -> constant_macro m
        | _ -> false)
      drivers
  in
  collect (fun add ->
      List.iter
        (fun (c : D.comp) ->
          let skip =
            match c.D.kind with
            | T.Constant _ -> true
            | T.Macro m -> constant_macro m
            | _ -> false
          in
          if not skip then
            List.iter
              (fun (pin, nid) ->
                match (pin_dir ctx c pin, D.net_opt d nid) with
                | Some T.Input, Some n when const_driver n ->
                    add
                      (Diagnostic.make ~rule:"const-input"
                         ~severity:Diagnostic.Info ~loc:(pin_loc c pin)
                         "tied to a constant; candidate for constant \
                          propagation")
                | _ -> ())
              (D.connections d c.D.id))
        (D.comps d))

(* --- registry --------------------------------------------------------- *)

let all : pass list =
  [
    { pass_name = "net-consistency";
      pass_doc = "comp/net connectivity indexes agree; no dangling references";
      pass_run = run_net_consistency };
    { pass_name = "port-consistency";
      pass_doc = "port list and net port-bindings agree";
      pass_run = run_port_consistency };
    { pass_name = "unknown-ref";
      pass_doc = "every Macro/Instance reference resolves";
      pass_run = run_unknown_ref };
    { pass_name = "unknown-pin";
      pass_doc = "connections only on pins the component interface declares";
      pass_run = run_unknown_pin };
    { pass_name = "multiple-drivers";
      pass_doc = "at most one driver per net";
      pass_run = run_multiple_drivers };
    { pass_name = "comb-loop";
      pass_doc = "no combinational feedback loops";
      pass_run = run_comb_loop };
    { pass_name = "floating-input";
      pass_doc = "every input pin is connected";
      pass_run = run_floating_input };
    { pass_name = "unconnected-clock";
      pass_doc = "sequential components have their CLK connected";
      pass_run = run_unconnected_clock };
    { pass_name = "undriven-net";
      pass_doc = "nets feeding inputs have a driver";
      pass_run = run_undriven_net };
    { pass_name = "undriven-port";
      pass_doc = "output ports are driven";
      pass_run = run_undriven_port };
    { pass_name = "dangling-output";
      pass_doc = "driven nets are read by something";
      pass_run = run_dangling_output };
    { pass_name = "dead-logic";
      pass_doc = "components reach an output port";
      pass_run = run_dead_logic };
    { pass_name = "const-input";
      pass_doc = "inputs tied to constants (simplification opportunities)";
      pass_run = run_const_input };
  ]

let find name = List.find_opt (fun p -> p.pass_name = name) all
