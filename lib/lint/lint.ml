(* Lint driver: pass selection, severity accounting, reports, and the
   stage-invariant entry point used by the flow.

   Also installs itself as the implementation of [Design.check] (the
   historical structural validator) so there is exactly one source of
   truth for structural validity. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type level = Off | Warn | Strict

let level_name = function Off -> "off" | Warn -> "warn" | Strict -> "strict"

let level_of_string = function
  | "off" -> Some Off
  | "warn" -> Some Warn
  | "strict" -> Some Strict
  | _ -> None

let rule_names = List.map (fun p -> p.Passes.pass_name) Passes.all

(* The purely structural invariants a rewrite engine must preserve at
   every step.  Floating pins and undriven nets are legitimately
   transient mid-rewrite (e.g. [Rule.replace_macro] leaves unmapped pins
   open for a later connect), so they are excluded here. *)
let structural_rules =
  [
    "net-consistency"; "port-consistency"; "unknown-ref"; "unknown-pin";
    "multiple-drivers"; "comb-loop";
  ]

(* The rule set [Design.check] has always enforced. *)
let compat_rules =
  [
    "net-consistency"; "port-consistency"; "unknown-ref"; "unknown-pin";
    "multiple-drivers"; "floating-input"; "unconnected-clock";
  ]

let run ?resolve ?(is_sequential = T.is_sequential_kind) ?rules design =
  let passes =
    match rules with
    | None -> Passes.all
    | Some ids ->
        List.filter_map
          (fun id ->
            match Passes.find id with
            | Some p -> Some p
            | None -> invalid_arg (Printf.sprintf "Lint.run: unknown rule %s" id))
          ids
  in
  let ctx = { Passes.design; resolve; is_sequential } in
  List.concat_map (fun p -> p.Passes.pass_run ctx) passes
  |> List.sort Diagnostic.compare_diag

let severity_count sev diags =
  List.length (List.filter (fun d -> d.Diagnostic.severity = sev) diags)

let errors diags =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags

(* --- reports ---------------------------------------------------------- *)

type report = {
  design_name : string;
  stage : string option;
  diags : Diagnostic.t list;
}

let report_header r =
  match r.stage with
  | Some s -> Printf.sprintf "lint %s [%s]" r.design_name s
  | None -> Printf.sprintf "lint %s" r.design_name

let report_summary r =
  Printf.sprintf "%d error%s, %d warning%s, %d info"
    (severity_count Diagnostic.Error r.diags)
    (if severity_count Diagnostic.Error r.diags = 1 then "" else "s")
    (severity_count Diagnostic.Warning r.diags)
    (if severity_count Diagnostic.Warning r.diags = 1 then "" else "s")
    (severity_count Diagnostic.Info r.diags)

let report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b (report_header r);
  Buffer.add_string b (": " ^ report_summary r ^ "\n");
  List.iter
    (fun d -> Buffer.add_string b ("  " ^ Diagnostic.to_string d ^ "\n"))
    r.diags;
  Buffer.contents b

let report_to_json r =
  Printf.sprintf
    "{\"design\":%s,%s\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"diagnostics\":[%s]}"
    (Printf.sprintf "\"%s\"" (Diagnostic.json_escape r.design_name))
    (match r.stage with
    | Some s ->
        Printf.sprintf "\"stage\":\"%s\"," (Diagnostic.json_escape s)
    | None -> "")
    (severity_count Diagnostic.Error r.diags)
    (severity_count Diagnostic.Warning r.diags)
    (severity_count Diagnostic.Info r.diags)
    (String.concat "," (List.map Diagnostic.to_json r.diags))

exception Lint_error of report

let () =
  Printexc.register_printer (function
    | Lint_error r -> Some ("Lint_error:\n" ^ report_to_string r)
    | _ -> None)

(* --- stage invariants ------------------------------------------------- *)

(* Lint one flow stage at the configured strictness.  [Off] does
   nothing; [Warn] reports errors and warnings on stderr and carries on;
   [Strict] additionally raises {!Lint_error} when any Error-severity
   finding exists.  Returns the diagnostics (always empty under [Off])
   so the flow can attach them to its result. *)
let check_stage ?resolve ?is_sequential ~level ~stage design =
  match level with
  | Off -> []
  | Warn | Strict ->
      let diags = run ?resolve ?is_sequential design in
      let r = { design_name = D.name design; stage = Some stage; diags } in
      if level = Strict && errors diags <> [] then raise (Lint_error r);
      let visible =
        List.filter
          (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
          diags
      in
      if level = Warn && visible <> [] then
        prerr_string (report_to_string { r with diags = visible });
      diags

(* --- Design.check ----------------------------------------------------- *)

let check ?resolve design =
  match run ?resolve ~rules:compat_rules design with
  | [] -> Ok ()
  | diags -> Error (List.map Diagnostic.to_string diags)

let () = D.set_check_hook (fun resolve design -> check ?resolve design)
