(* Supervised domain pool.

   Supervision protocol, per task:

   - a fresh token (deadline, heartbeat, cancel flag, abandoned flag)
     is installed in the running domain's local storage before the
     task body starts;
   - [poll] — called from the engine's evaluation hot path — stamps
     the heartbeat and raises [Cancelled] once the deadline passes or
     the coordinator set the cancel flag;
   - the wrapper converts [Cancelled] into [Task_failed Deadline] and
     any other exception into [Task_failed (Raised _)]; nothing a task
     raises ever escapes the pool;
   - the coordinator (the domain that called [run]) doubles as the
     watchdog while it waits: a running task whose heartbeat is older
     than the stall window is abandoned as [Task_failed Stalled], its
     worker is written off (a domain cannot be killed, only replaced)
     and a replacement is spawned so the queue keeps draining.  If
     replacement spawning fails too, the coordinator drains the
     remaining queue inline — [run] terminates as long as the
     coordinator itself is alive, which is the same guarantee the
     sequential path offers.

   Determinism: result slot [i] always holds task [i]'s outcome, so a
   reduction over the array in index order is independent of which
   domain ran what when. *)

type fault =
  | Raised of { exn : string; backtrace : string }
  | Deadline
  | Stalled

let fault_message = function
  | Raised { exn; _ } -> "raised: " ^ exn
  | Deadline -> "deadline exceeded"
  | Stalled -> "stalled: no heartbeat within the watchdog window"

type 'a outcome = Done of 'a | Task_failed of fault

exception Cancelled

(* Raised by a job wrapper to make the worker running it exit its
   loop: the watchdog already wrote the worker off and spawned a
   replacement, so a worker that wakes up from a stall must not keep
   competing for the queue. *)
exception Retired

type token = {
  tk_deadline : float option;
  tk_heartbeat : float Atomic.t;  (* last poll; neg_infinity = not started *)
  tk_cancel : bool Atomic.t;
  tk_abandoned : bool Atomic.t;
  (* [lost] flag of the worker running this task, so the watchdog can
     write off exactly the wedged domain.  [None] while queued or when
     running on the coordinator. *)
  tk_runner : bool ref option Atomic.t;
}

let fresh_token ?deadline () =
  {
    tk_deadline = deadline;
    tk_heartbeat = Atomic.make neg_infinity;
    tk_cancel = Atomic.make false;
    tk_abandoned = Atomic.make false;
    tk_runner = Atomic.make None;
  }

let token_key : token option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let poll () =
  match Domain.DLS.get token_key with
  | None -> ()
  | Some tk ->
      let now = Unix.gettimeofday () in
      Atomic.set tk.tk_heartbeat now;
      if Atomic.get tk.tk_cancel then raise Cancelled;
      (match tk.tk_deadline with
      | Some dl when now > dl -> raise Cancelled
      | Some _ | None -> ())

(* Execute one task body under its token on the current domain.  Total:
   every exception except the genuinely unrecoverable ones becomes a
   typed fault. *)
let supervised (tk : token) (f : unit -> 'a) : 'a outcome =
  Atomic.set tk.tk_heartbeat (Unix.gettimeofday ());
  Domain.DLS.set token_key (Some tk);
  let result =
    match
      (* A task dequeued after the deadline fails without running. *)
      (match tk.tk_deadline with
      | Some dl when Unix.gettimeofday () > dl -> raise Cancelled
      | Some _ | None -> ());
      f ()
    with
    | v -> Done v
    | exception Cancelled -> Task_failed Deadline
    | exception ((Out_of_memory | Stack_overflow) as e) ->
        Domain.DLS.set token_key None;
        raise e
    | exception e ->
        Task_failed
          (Raised
             {
               exn = Printexc.to_string e;
               backtrace = Printexc.get_backtrace ();
             })
  in
  Domain.DLS.set token_key None;
  result

(* --- The pool ----------------------------------------------------------- *)

type worker = { w_domain : unit Domain.t; w_lost : bool ref }

type t = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  p_queue : (unit -> unit) Queue.t;
  mutable p_stop : bool;
  mutable p_workers : worker list;
  p_size : int;
  p_stall : float;
}

let fail_spawn_for_testing = ref false

(* The [lost] flag of the worker domain currently executing jobs, so a
   job can register itself as running there. *)
let lost_key : bool ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let worker_loop p lost =
  Domain.DLS.set lost_key (Some lost);
  let continue = ref true in
  while !continue do
    Mutex.lock p.p_mutex;
    while Queue.is_empty p.p_queue && not p.p_stop do
      Condition.wait p.p_cond p.p_mutex
    done;
    if Queue.is_empty p.p_queue && p.p_stop then begin
      Mutex.unlock p.p_mutex;
      continue := false
    end
    else begin
      let job = Queue.pop p.p_queue in
      Mutex.unlock p.p_mutex;
      match job () with () -> () | exception Retired -> continue := false
    end
  done

let spawn_worker p =
  if !fail_spawn_for_testing then failwith "injected domain-spawn failure";
  let lost = ref false in
  { w_domain = Domain.spawn (fun () -> worker_loop p lost); w_lost = lost }

let size p = p.p_size

let shutdown p =
  Mutex.lock p.p_mutex;
  p.p_stop <- true;
  Condition.broadcast p.p_cond;
  Mutex.unlock p.p_mutex;
  List.iter
    (fun w ->
      (* A lost worker may be wedged forever: joining it would turn a
         contained task fault back into a hung flow. *)
      if not !(w.w_lost) then
        match Domain.join w.w_domain with () -> () | exception _ -> ())
    p.p_workers;
  p.p_workers <- []

let default_stall = 5.0

let create ?(stall_timeout = default_stall) ?(force = false) ~domains () =
  if domains < 2 then None
  else if (not force) && Domain.recommended_domain_count () < 2 then
    (* A single-core host gains nothing from timesliced domains; the
       caller's sequential path is strictly better. *)
    None
  else begin
    let p =
      {
        p_mutex = Mutex.create ();
        p_cond = Condition.create ();
        p_queue = Queue.create ();
        p_stop = false;
        p_workers = [];
        p_size = domains;
        p_stall = stall_timeout;
      }
    in
    match
      for _ = 1 to domains do
        p.p_workers <- spawn_worker p :: p.p_workers
      done
    with
    | () -> Some p
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception _ ->
        (* Partial construction: tear down whatever did spawn and let
           the caller degrade. *)
        shutdown p;
        None
  end

let run_inline ?deadline tasks =
  let run_one f = supervised (fresh_token ?deadline ()) f in
  Array.map run_one (Array.of_list tasks)

let run p ?deadline tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let tokens = Array.init n (fun _ -> fresh_token ?deadline ()) in
    let results = Array.make n None in
    let remaining = ref n in
    (* Result publication is mutex-protected: the watchdog and the
       worker that wakes from an abandoned task may both try to settle
       the same slot; first writer wins, and the abandoned worker
       retires itself. *)
    let settle i r =
      Mutex.lock p.p_mutex;
      let fresh = results.(i) = None in
      if fresh then begin
        results.(i) <- Some r;
        decr remaining
      end;
      Mutex.unlock p.p_mutex
    in
    let job i () =
      let tk = tokens.(i) in
      Atomic.set tk.tk_runner (Domain.DLS.get lost_key);
      let r = supervised tk tasks.(i) in
      if Atomic.get tk.tk_abandoned then raise Retired
      else settle i r
    in
    Mutex.lock p.p_mutex;
    Array.iteri (fun i _ -> Queue.add (job i) p.p_queue) tasks;
    Condition.broadcast p.p_cond;
    Mutex.unlock p.p_mutex;
    (* The coordinator is the watchdog: scan heartbeats while waiting,
       cancel stragglers past the deadline, abandon wedged tasks, and
       keep the worker population at strength. *)
    let drain_inline = ref false in
    let finished () =
      Mutex.lock p.p_mutex;
      let d = !remaining = 0 in
      Mutex.unlock p.p_mutex;
      d
    in
    while not (finished ()) do
      if !drain_inline then begin
        (* Replacement spawning failed: the pool cannot be trusted to
           drain the queue, so the coordinator does — same termination
           guarantee as the sequential path. *)
        Mutex.lock p.p_mutex;
        let job =
          if Queue.is_empty p.p_queue then None else Some (Queue.pop p.p_queue)
        in
        Mutex.unlock p.p_mutex;
        match job with
        | Some j -> ( try j () with Retired -> ())
        | None -> Unix.sleepf 0.002
      end
      else Unix.sleepf 0.002;
      let now = Unix.gettimeofday () in
      for i = 0 to n - 1 do
        let tk = tokens.(i) in
        let unsettled =
          Mutex.lock p.p_mutex;
          let u = results.(i) = None in
          Mutex.unlock p.p_mutex;
          u
        in
        if unsettled then begin
          (match deadline with
          | Some dl when now > dl -> Atomic.set tk.tk_cancel true
          | Some _ | None -> ());
          let hb = Atomic.get tk.tk_heartbeat in
          if
            hb > neg_infinity
            && now -. hb > p.p_stall
            && not (Atomic.get tk.tk_abandoned)
          then begin
            Atomic.set tk.tk_abandoned true;
            (match Atomic.get tk.tk_runner with
            | Some lost -> lost := true
            | None -> ());
            (match spawn_worker p with
            | w ->
                Mutex.lock p.p_mutex;
                p.p_workers <- w :: p.p_workers;
                Mutex.unlock p.p_mutex
            | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
            | exception _ -> drain_inline := true);
            settle i (Task_failed Stalled)
          end
        end
      done
    done;
    Array.map (function Some r -> r | None -> assert false) results
  end
