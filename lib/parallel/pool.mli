(** A supervised domain pool for fault-isolated parallel candidate
    evaluation.

    Tasks are closures over immutable design snapshots; the pool never
    lets one misbehaving task poison a run: an exception becomes a
    typed [Task_failed (Raised _)], a task past its deadline is
    cancelled cooperatively through {!poll} and becomes
    [Task_failed Deadline], and a task that stops heartbeating is
    abandoned by the watchdog as [Task_failed Stalled] — the wedged
    worker domain is written off and replaced so the pool keeps
    draining the queue.  Results come back indexed by submission
    order, so reductions over them are deterministic regardless of
    scheduling. *)

(** Why a supervised task did not produce a value. *)
type fault =
  | Raised of { exn : string; backtrace : string }
      (** the task body raised; captured, never escapes the pool *)
  | Deadline  (** cancelled cooperatively after its deadline passed *)
  | Stalled  (** the watchdog saw no heartbeat for the stall window *)

val fault_message : fault -> string

type 'a outcome = Done of 'a | Task_failed of fault

exception Cancelled
(** Raised by {!poll} inside a task whose deadline passed or whose
    token was cancelled.  The task wrapper converts it into
    [Task_failed Deadline]; it never escapes a supervised task. *)

val poll : unit -> unit
(** Heartbeat + cooperative cancellation point.  Cheap; called from
    [Engine.evaluate] and [Engine.guarded_apply] so every candidate
    evaluation is a cancellation opportunity.  A no-op outside a
    supervised task. *)

type t

val create :
  ?stall_timeout:float -> ?force:bool -> domains:int -> unit -> t option
(** [create ~domains:n ()] spawns [n] worker domains.  Returns [None]
    — the caller degrades to its sequential path — when [n < 2], when
    the host has fewer than two cores (unless [force] is set: tests
    exercise real multi-domain supervision on single-core hosts with
    [~force:true]), or when domain spawning fails.  [stall_timeout]
    (default 5s) is the no-heartbeat window after which a running task
    is declared wedged. *)

val size : t -> int
(** Number of worker domains. *)

val run : t -> ?deadline:float -> (unit -> 'a) list -> 'a outcome array
(** Run every task to an outcome; slot [i] of the result is task [i]'s.
    [deadline] is absolute ([Unix.gettimeofday] scale).  Never raises
    from a task and never hangs on a wedged one: the calling domain
    acts as the watchdog while it waits. *)

val run_inline : ?deadline:float -> (unit -> 'a) list -> 'a outcome array
(** The same supervision semantics executed sequentially on the
    calling domain — the [--domains 1] and degraded paths.  Exceptions
    and deadlines are supervised identically to {!run}; stall
    detection is impossible (the watchdog would be the wedged domain). *)

val shutdown : t -> unit
(** Stop and join the healthy workers.  Workers written off by the
    watchdog are not joined (joining a wedged domain would hang);
    they exit on their own if their task ever finishes. *)

val fail_spawn_for_testing : bool ref
(** Fault injection: when set, {!create} (and watchdog replacement
    spawns) fail as if the system refused a new domain, exercising the
    graceful-degradation path deterministically. *)
