(* Execution plans for the optimizer's fan-out sites.

   [Sequential] is the legacy path: no task wrappers, no supervision,
   byte-identical behaviour to the pre-parallel engine — the default
   everywhere so existing callers are untouched.

   [Inline] and [Pooled] are the two faces of the parallel semantics:
   the same task lists, the same deterministic index-ordered merge,
   the same supervision (exception capture, deadline cancellation) —
   only the scheduling differs.  That is what makes [--domains 1] and
   [--domains N] bit-identical, and what makes graceful degradation
   (a pool that failed to construct falls back to [Inline]) free of
   observable divergence. *)

type t =
  | Sequential
  | Inline of { deadline : float option }
  | Pooled of { pool : Pool.t; deadline : float option }

let sequential = Sequential
let inline ?deadline () = Inline { deadline }
let pooled ?deadline pool = Pooled { pool; deadline }

let is_parallel = function Sequential -> false | Inline _ | Pooled _ -> true

(* Deterministic indexed map: slot [i] of the result is task [i]'s
   outcome, whatever domain ran it. *)
let map t (tasks : (unit -> 'a) list) : 'a Pool.outcome array =
  match t with
  | Sequential -> invalid_arg "Exec.map: sequential plan has no task runner"
  | Inline { deadline } -> Pool.run_inline ?deadline tasks
  | Pooled { pool; deadline } -> Pool.run pool ?deadline tasks
