(** Levelized logic simulation of mixed microarchitecture / macro
    designs with an implicit global clock.

    Two engines share one evaluation schedule, computed once per
    design at [create]:

    - the scalar path ([settle]/[outputs]/[step]) evaluates one input
      vector per pass through the reference semantics in {!Eval};
    - the packed path ([settle_packed]/[outputs_packed]/[step_packed])
      evaluates [lanes] vectors per pass, one per bit position of a
      native [int] word, through the word-level semantics in
      {!Eval.Packed}. *)

module D = Milo_netlist.Design

type env = { find_macro : string -> Milo_library.Macro.t }

val env_of_techs : Milo_library.Technology.t list -> env
(** Macro lookup across several libraries (first match wins). *)

val resolver_of_env : env -> D.resolver

type t

val create : env -> D.t -> t
(** All sequential state starts at zero. *)

val reset : t -> unit

val set_state : t -> int -> int -> unit
(** Set a sequential component's state, broadcast to every packed
    lane, so scalar and packed runs observe the same initial state. *)

val get_state : t -> int -> int option
(** State as seen by the scalar engine (packed lane 0). *)

exception Combinational_loop of string list
(** Component names that never settled. *)

val settle : t -> (string * bool) list -> (int, bool) Hashtbl.t
(** Evaluate all combinational logic under the given input-port
    assignment; returns net values.  Undriven nets read as [false]. *)

val outputs : t -> (string * bool) list -> (string * bool) list
(** Output-port values under the given inputs (no clock edge). *)

val step : t -> (string * bool) list -> unit
(** Apply one synchronous clock edge. *)

val net_value : t -> int -> bool option
(** Value of a net in the most recent scalar [settle]. *)

(** {2 Packed (bit-parallel) engine}

    Ports carry one word each; bit [l] of a word is input vector [l]'s
    value, for [l < lanes].  A packed pass evaluates all lanes at
    once. *)

val lanes : int
(** Vectors evaluated per packed pass ([Sys.int_size]: 63 on 64-bit). *)

val settle_packed : t -> (string * int) list -> unit
(** Packed combinational settle; absent input ports read as all-zero.
    Results are read with [outputs_packed] / [packed_net_value]. *)

val outputs_packed : t -> (string * int) list -> (string * int) list
(** Output-port words under the given packed inputs (no clock edge). *)

val step_packed : t -> (string * int) list -> unit
(** One synchronous clock edge on all lanes at once. *)

val packed_net_value : t -> int -> int option
(** Word value of a net after the most recent packed settle. *)

val get_state_planes : t -> int -> int array option
(** Raw per-lane state bit-planes of a sequential component: word [b]
    holds bit [b] of every lane's state. *)

val set_state_planes : t -> int -> int array -> unit
