(** Behavioural semantics of the microarchitecture component kinds and of
    library macros — the reference against which compiled designs and
    rule applications are checked. *)

module T = Milo_netlist.Types

type pin_values = (string * bool) list
(** Pin assignment; absent pins read as [false]. *)

val get : pin_values -> string -> bool
val bus : pin_values -> string -> int -> int
(** Read pins [prefix0..prefix(bits-1)] as a little-endian integer. *)

val bus_out : string -> int -> int -> pin_values
val mask : int -> int

val comb_outputs : T.kind -> pin_values -> pin_values
(** Outputs of a combinational micro component.  Raises on sequential
    kinds, macros and instances. *)

val next_state : T.kind -> state:int -> pin_values -> int
(** Next register contents of a sequential micro component after a clock
    edge.  Priority: SET > RST > not-EN (hold) > function. *)

val seq_outputs : T.kind -> state:int -> pin_values -> pin_values
(** Present outputs of a sequential micro component. *)

val macro_comb_outputs : Milo_library.Macro.t -> pin_values -> pin_values
val macro_next_state : Milo_library.Macro.t -> state:int -> pin_values -> int
val macro_seq_outputs :
  Milo_library.Macro.t -> state:int -> pin_values -> pin_values

val state_only_outputs : T.kind -> string list
(** Outputs of a sequential micro component that depend on the stored
    state alone (safe to seed before the inputs are known); empty for
    combinational kinds.  Replaces the old "pin starts with Q"
    heuristic. *)

val macro_state_only_outputs : Milo_library.Macro.t -> string list
val state_bits : T.kind -> int

(** Bit-parallel mirror of the scalar semantics: every pin carries one
    native int word, bit [l] of which is the value of simulation lane
    [l].  Sequential state is stored as bit-planes (plane [b] = bit [b]
    of every lane's register). *)
module Packed : sig
  val lanes : int
  (** Lanes per word = [Sys.int_size] (63 on 64-bit). *)

  val zero : int
  val ones : int

  type pin_words = (string * int) list

  val getw : pin_words -> string -> int
  val mux2 : int -> int -> int -> int
  (** [mux2 c a b] is per-lane [if c then a else b]. *)

  val eval_tt : Milo_boolfunc.Truth_table.t -> int array -> int
  (** Evaluate a truth table over word literals (variable [i] =
      [ws.(i)]); compiled once per table into a sum of products and
      cached. *)

  val lane_of_words : int array -> int -> bool array
  val state_of_planes : int array -> int -> int
  val planes_of_state : int -> int -> int array

  val comb_outputs : T.kind -> pin_words -> pin_words
  val seq_outputs : T.kind -> planes:int array -> pin_words -> pin_words
  val next_planes : T.kind -> planes:int array -> pin_words -> int array

  val macro_comb_outputs : Milo_library.Macro.t -> pin_words -> pin_words
  val macro_seq_outputs :
    Milo_library.Macro.t -> planes:int array -> pin_words -> pin_words
  val macro_next_planes :
    Milo_library.Macro.t -> planes:int array -> pin_words -> int array
end
