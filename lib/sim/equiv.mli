(** Equivalence checking by simulation: exhaustive for small input
    counts, random-vector otherwise; lock-step state simulation for
    sequential designs.

    Both checks run bit-parallel on {!Simulator}'s packed engine
    ([Simulator.lanes] vectors per settle) and stream their vectors —
    no sweep materializes anything proportional to [2^n].  Input and
    output port sets are validated symmetrically on both designs
    before any simulation; [Invalid_argument] is raised on any
    drop/rename. *)

module D = Milo_netlist.Design

type result =
  | Equivalent
  | Mismatch of {
      inputs : (string * bool) list;  (** the failing input vector *)
      ports : string list;  (** every output port that diverges under it *)
      cycle : int option;  (** cycle number for sequential runs *)
    }

val combinational :
  ?max_exhaustive:int ->
  ?vectors:int ->
  ?seed:int ->
  Simulator.env ->
  D.t ->
  Simulator.env ->
  D.t ->
  result
(** Compare two designs with identical port interfaces.  Exhaustive up
    to [max_exhaustive] inputs (default 12, clamped below the native
    word size), then [vectors] random vectors. *)

val sequential :
  ?cycles:int ->
  ?runs:int ->
  ?seed:int ->
  Simulator.env ->
  D.t ->
  Simulator.env ->
  D.t ->
  result
(** Lock-step comparison from reset over random stimulus. *)

val is_equivalent : result -> bool
val pp_result : Format.formatter -> result -> unit
