(* Behavioural semantics of the microarchitecture component kinds.

   These definitions are the reference the compiled (gate-level) designs
   are checked against: an Arith_unit *means* add/subtract/increment/
   decrement, independent of how the logic compilers expand it. *)

module T = Milo_netlist.Types

type pin_values = (string * bool) list

let get pins pin =
  match List.assoc_opt pin pins with Some v -> v | None -> false

let bus pins prefix bits =
  let v = ref 0 in
  for b = 0 to bits - 1 do
    if get pins (Printf.sprintf "%s%d" prefix b) then v := !v lor (1 lsl b)
  done;
  !v

let bus_out prefix bits v =
  List.init bits (fun b -> (Printf.sprintf "%s%d" prefix b, v land (1 lsl b) <> 0))

let mask bits = (1 lsl bits) - 1

let select pins prefix count =
  (* Decode a one-of-n select field of clog2 count bits. *)
  let s = T.clog2 count in
  let v = ref 0 in
  for i = 0 to s - 1 do
    if get pins (Printf.sprintf "%s%d" prefix i) then v := !v lor (1 lsl i)
  done;
  !v

let gate_inputs pins n = Array.init n (fun i -> get pins (Printf.sprintf "A%d" (i + 1)))

(* Outputs of a combinational micro component given its input pins. *)
let comb_outputs (kind : T.kind) (pins : pin_values) : pin_values =
  match kind with
  | T.Gate (fn, n) ->
      let n = T.gate_arity fn n in
      [ ("Y", Milo_library.Defs.gate_semantics fn (gate_inputs pins n)) ]
  | T.Constant T.Vdd -> [ ("Y", true) ]
  | T.Constant T.Vss -> [ ("Y", false) ]
  | T.Multiplexor { bits; inputs; enable } ->
      let en = (not enable) || get pins "EN" in
      let sel = select pins "S" inputs in
      List.init bits (fun b ->
          let v =
            en && sel < inputs && get pins (Printf.sprintf "D%d_%d" sel b)
          in
          (Printf.sprintf "Y%d" b, v))
  | T.Decoder { bits; enable } ->
      let en = (not enable) || get pins "EN" in
      let a = bus pins "A" bits in
      List.init (1 lsl bits) (fun j -> (Printf.sprintf "Y%d" j, en && a = j))
  | T.Comparator { bits; fns } ->
      let a = bus pins "A" bits and b = bus pins "B" bits in
      List.map
        (fun fn ->
          let v =
            match fn with
            | T.Eq -> a = b
            | T.Ne -> a <> b
            | T.Lt -> a < b
            | T.Gt -> a > b
            | T.Le -> a <= b
            | T.Ge -> a >= b
          in
          (T.cmp_fn_name fn, v))
        fns
  | T.Logic_unit { bits; fn; inputs } ->
      List.init bits (fun b ->
          let arr =
            Array.init inputs (fun i -> get pins (Printf.sprintf "D%d_%d" i b))
          in
          (Printf.sprintf "Y%d" b, Milo_library.Defs.gate_semantics fn arr))
  | T.Arith_unit { bits; fns; mode = _ } ->
      let a = bus pins "A" bits and b = bus pins "B" bits in
      let cin = if get pins "CIN" then 1 else 0 in
      let fi = select pins "F" (List.length fns) in
      let fn = List.nth fns (min fi (List.length fns - 1)) in
      let raw =
        match fn with
        | T.Add -> a + b + cin
        | T.Sub -> a + (lnot b land mask bits) + cin
        | T.Inc -> a + 1
        | T.Dec -> a + mask bits
      in
      bus_out "S" bits raw @ [ ("COUT", raw land (1 lsl bits) <> 0) ]
  | T.Register _ | T.Counter _ | T.Macro _ | T.Instance _ ->
      invalid_arg "Eval.comb_outputs: not a combinational micro component"

(* Next state of a sequential micro component.  [state] is the register
   contents as an integer; the implicit global clock has just risen. *)
let next_state (kind : T.kind) ~(state : int) (pins : pin_values) : int =
  match kind with
  | T.Register { bits; kind = _; fns; controls; inverting = _ } ->
      let ctl c = List.mem c controls in
      if ctl T.Set && get pins "SET" then mask bits
      else if ctl T.Reset && get pins "RST" then 0
      else if ctl T.Enable && not (get pins "EN") then state
      else
        let mi = select pins "M" (List.length fns) in
        let fn = List.nth fns (min mi (List.length fns - 1)) in
        (match fn with
        | T.Load -> bus pins "D" bits
        | T.Shift_right ->
            (state lsr 1)
            lor (if get pins "SIR" then 1 lsl (bits - 1) else 0)
        | T.Shift_left ->
            ((state lsl 1) land mask bits) lor (if get pins "SIL" then 1 else 0))
  | T.Counter { bits; fns; controls } ->
      let has f = List.mem f fns and ctl c = List.mem c controls in
      if ctl T.Set && get pins "SET" then mask bits
      else if ctl T.Reset && get pins "RST" then 0
      else if ctl T.Enable && not (get pins "EN") then state
      else if has T.Count_load && get pins "LD" then bus pins "D" bits
      else
        let up =
          if has T.Count_up && has T.Count_down then get pins "UP"
          else has T.Count_up
        in
        if up then (state + 1) land mask bits
        else (state - 1) land mask bits
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Constant _ | T.Macro _ | T.Instance _ ->
      invalid_arg "Eval.next_state: not a sequential micro component"

(* Present outputs of a sequential micro component from its state. *)
let seq_outputs (kind : T.kind) ~(state : int) (pins : pin_values) : pin_values
    =
  match kind with
  | T.Register { bits; inverting; _ } ->
      let v = if inverting then lnot state land mask bits else state in
      bus_out "Q" bits v
  | T.Counter { bits; fns; _ } ->
      let has f = List.mem f fns in
      let up =
        if has T.Count_up && has T.Count_down then get pins "UP"
        else has T.Count_up
      in
      let terminal = if up then state = mask bits else state = 0 in
      bus_out "Q" bits state @ [ ("COUT", terminal) ]
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Constant _ | T.Macro _ | T.Instance _ ->
      invalid_arg "Eval.seq_outputs: not a sequential micro component"

(* Macro semantics. *)

let macro_comb_outputs (m : Milo_library.Macro.t) (pins : pin_values) :
    pin_values =
  let input = Array.of_list (List.map (get pins) m.Milo_library.Macro.inputs) in
  let out = Milo_library.Macro.eval_comb m input in
  List.mapi (fun i o -> (o, out.(i))) m.Milo_library.Macro.outputs

let macro_next_state (m : Milo_library.Macro.t) ~(state : int)
    (pins : pin_values) : int =
  match m.Milo_library.Macro.behavior with
  | Milo_library.Macro.Seq_dff
      { data; latch = _; has_set; has_reset; has_enable; inverting = _ } ->
      if has_set && get pins "SET" then 1
      else if has_reset && get pins "RST" then 0
      else if has_enable && not (get pins "EN") then state
      else
        let d =
          match data with
          | Milo_library.Macro.Direct -> get pins "D"
          | Milo_library.Macro.Muxed n ->
              let sel = select pins "S" n in
              sel < n && get pins (Printf.sprintf "D%d" sel)
        in
        if d then 1 else 0
  | Milo_library.Macro.Seq_counter
      { bits; has_load; has_updown; has_reset; has_enable } ->
      if has_reset && get pins "RST" then 0
      else if has_enable && not (get pins "EN") then state
      else if has_load && get pins "LD" then bus pins "D" bits
      else
        let up = (not has_updown) || get pins "UP" in
        if up then (state + 1) land mask bits else (state - 1) land mask bits
  | Milo_library.Macro.Seq_custom { custom_next; _ } -> custom_next ~state pins
  | Milo_library.Macro.Combinational _ | Milo_library.Macro.Comb_eval _ ->
      invalid_arg "Eval.macro_next_state: combinational macro"

let macro_seq_outputs (m : Milo_library.Macro.t) ~(state : int)
    (pins : pin_values) : pin_values =
  match m.Milo_library.Macro.behavior with
  | Milo_library.Macro.Seq_dff { inverting; _ } ->
      [ ("Q", if inverting then state = 0 else state = 1) ]
  | Milo_library.Macro.Seq_counter { bits; has_updown; _ } ->
      let up = (not has_updown) || get pins "UP" in
      let terminal = if up then state = mask bits else state = 0 in
      bus_out "Q" bits state @ [ ("COUT", terminal) ]
  | Milo_library.Macro.Seq_custom { custom_outputs; _ } ->
      custom_outputs ~state pins
  | Milo_library.Macro.Combinational _ | Milo_library.Macro.Comb_eval _ ->
      invalid_arg "Eval.macro_seq_outputs: combinational macro"

(* --- State-only-output metadata ----------------------------------------- *)

(* The outputs of a sequential component that depend on the stored
   state alone.  The simulator seeds exactly these before the inputs
   are known; anything else (a bidirectional counter's COUT reads its
   UP pin) must wait for the levelized schedule.  This replaces the
   old "pin starts with Q" naming heuristic. *)
let state_only_outputs (kind : T.kind) : string list =
  match kind with
  | T.Register { bits; _ } -> List.init bits (fun b -> Printf.sprintf "Q%d" b)
  | T.Counter { bits; fns; _ } ->
      let has f = List.mem f fns in
      List.init bits (fun b -> Printf.sprintf "Q%d" b)
      @ (if has T.Count_up && has T.Count_down then [] else [ "COUT" ])
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Constant _ | T.Macro _ | T.Instance _ ->
      []

let macro_state_only_outputs = Milo_library.Macro.state_only_outputs

let state_bits (kind : T.kind) : int =
  match kind with
  | T.Register { bits; _ } | T.Counter { bits; _ } -> bits
  | _ -> 0

(* --- Bit-parallel (packed) semantics ------------------------------------ *)

(* Word-level mirror of the scalar evaluators above: every pin carries
   one native int word whose bit [l] is the value of simulation lane
   [l], so one evaluation pass settles [Packed.lanes] input vectors.
   Gates become single bitwise operations; truth-table macros are
   compiled once into a sum-of-products over the word literals (cached
   per table); arithmetic and comparison kinds ripple over bit-planes
   with word-wide carry/borrow.  Sequential state is stored as
   bit-planes: plane [b] holds bit [b] of every lane's register.

   The scalar functions remain the reference semantics; the
   differential fuzz suite (test/sim_suite.ml) holds the two in
   lock-step. *)

module Packed = struct
  module Macro = Milo_library.Macro

  let lanes = Sys.int_size
  let zero = 0
  let ones = -1

  type pin_words = (string * int) list

  let getw pins pin =
    match List.assoc_opt pin pins with Some w -> w | None -> 0

  (* (c & a) | (~c & b): per-lane if-then-else. *)
  let mux2 c a b = c land a lor (lnot c land b)

  let busw pins prefix bits =
    Array.init bits (fun b -> getw pins (Printf.sprintf "%s%d" prefix b))

  let bus_outw prefix (planes : int array) =
    Array.to_list
      (Array.mapi (fun b w -> (Printf.sprintf "%s%d" prefix b, w)) planes)

  (* Word where the [s]-bit select field [prefix0..] equals [v]. *)
  let field_match pins prefix s v =
    let w = ref ones in
    for i = 0 to s - 1 do
      let bit = getw pins (Printf.sprintf "%s%d" prefix i) in
      w := !w land (if v land (1 lsl i) <> 0 then bit else lnot bit)
    done;
    !w

  (* Per-function select words for a clamped function list (scalar
     semantics: [List.nth fns (min sel (len-1))]). *)
  let clamped_variants pins prefix fns =
    let nf = List.length fns in
    let s = T.clog2 nf in
    let acc = Array.make nf 0 in
    for v = 0 to (1 lsl s) - 1 do
      let k = min v (nf - 1) in
      acc.(k) <- acc.(k) lor field_match pins prefix s v
    done;
    List.mapi (fun k fn -> (fn, acc.(k))) fns

  let gate_fn_words (fn : T.gate_fn) (ws : int array) =
    let fold op init = Array.fold_left op init ws in
    match fn with
    | T.And -> fold ( land ) ones
    | T.Or -> fold ( lor ) zero
    | T.Nand -> lnot (fold ( land ) ones)
    | T.Nor -> lnot (fold ( lor ) zero)
    | T.Xor -> fold ( lxor ) zero
    | T.Xnor -> lnot (fold ( lxor ) zero)
    | T.Inv -> lnot ws.(0)
    | T.Buf -> ws.(0)

  (* Word-wide ripple adder over bit-planes: [d] is the effective
     addend per bit, [c0] the incoming carry word. *)
  let add_planes bits (a : int array) (d : int -> int) c0 =
    let s = Array.make bits 0 in
    let c = ref c0 in
    for b = 0 to bits - 1 do
      let ab = a.(b) and db = d b in
      s.(b) <- ab lxor db lxor !c;
      c := ab land db lor (!c land (ab lxor db))
    done;
    (s, !c)

  (* eq / lt words for two little-endian bus arrays. *)
  let compare_planes bits (a : int array) (b : int array) =
    let eq = ref ones and lt = ref 0 in
    for i = bits - 1 downto 0 do
      lt := !lt lor (!eq land lnot a.(i) land b.(i));
      eq := !eq land lnot (a.(i) lxor b.(i))
    done;
    (!eq, !lt)

  (* --- Truth-table compilation ------------------------------------------ *)

  (* A table compiles to a sum of minterm products over the word
     literals; when the on-set covers more than half the space the
     complement is compiled and the result negated.  Cached per table:
     a design evaluates the same macros every pass. *)
  type tt_plan = { neg : bool; terms : int list; tt_vars : int }

  let tt_plans : (Milo_boolfunc.Truth_table.t, tt_plan) Hashtbl.t =
    Hashtbl.create 256

  let compile_tt tt =
    match Hashtbl.find_opt tt_plans tt with
    | Some p -> p
    | None ->
        let module TT = Milo_boolfunc.Truth_table in
        let n = TT.vars tt in
        let size = 1 lsl n in
        let on = ref [] and off = ref [] in
        for m = size - 1 downto 0 do
          if TT.eval_index tt m then on := m :: !on else off := m :: !off
        done;
        let p =
          if List.length !on * 2 > size then
            { neg = true; terms = !off; tt_vars = n }
          else { neg = false; terms = !on; tt_vars = n }
        in
        Hashtbl.replace tt_plans tt p;
        p

  let eval_tt tt (ws : int array) =
    let { neg; terms; tt_vars } = compile_tt tt in
    let acc = ref 0 in
    List.iter
      (fun m ->
        let term = ref ones in
        for i = 0 to tt_vars - 1 do
          term :=
            !term land (if m land (1 lsl i) <> 0 then ws.(i) else lnot ws.(i))
        done;
        acc := !acc lor !term)
      terms;
    if neg then lnot !acc else !acc

  (* --- Lane plumbing ----------------------------------------------------- *)

  let lane_of_words (ws : int array) l =
    Array.map (fun w -> (w lsr l) land 1 = 1) ws

  let state_of_planes (planes : int array) l =
    let v = ref 0 in
    Array.iteri (fun b w -> if (w lsr l) land 1 = 1 then v := !v lor (1 lsl b)) planes;
    !v

  let planes_of_state bits v =
    Array.init bits (fun b -> if v land (1 lsl b) <> 0 then ones else zero)

  (* Per-lane fallback for behaviours with no word-level form
     ([Comb_eval], [Seq_custom]): still amortizes the netlist
     traversal over the whole word. *)
  let lanewise n_out eval_lane =
    let outw = Array.make n_out 0 in
    for l = 0 to lanes - 1 do
      let o = eval_lane l in
      for j = 0 to n_out - 1 do
        if o.(j) then outw.(j) <- outw.(j) lor (1 lsl l)
      done
    done;
    outw

  (* --- Combinational kinds ----------------------------------------------- *)

  let comb_outputs (kind : T.kind) (pins : pin_words) : pin_words =
    match kind with
    | T.Gate (fn, n) ->
        let n = T.gate_arity fn n in
        let ws =
          Array.init n (fun i -> getw pins (Printf.sprintf "A%d" (i + 1)))
        in
        [ ("Y", gate_fn_words fn ws) ]
    | T.Constant T.Vdd -> [ ("Y", ones) ]
    | T.Constant T.Vss -> [ ("Y", zero) ]
    | T.Multiplexor { bits; inputs; enable } ->
        let en = if enable then getw pins "EN" else ones in
        let s = T.clog2 inputs in
        let sel = Array.init inputs (fun j -> field_match pins "S" s j) in
        List.init bits (fun b ->
            let v = ref 0 in
            for j = 0 to inputs - 1 do
              v := !v lor (sel.(j) land getw pins (Printf.sprintf "D%d_%d" j b))
            done;
            (Printf.sprintf "Y%d" b, en land !v))
    | T.Decoder { bits; enable } ->
        let en = if enable then getw pins "EN" else ones in
        List.init (1 lsl bits) (fun j ->
            (Printf.sprintf "Y%d" j, en land field_match pins "A" bits j))
    | T.Comparator { bits; fns } ->
        let a = busw pins "A" bits and b = busw pins "B" bits in
        let eq, lt = compare_planes bits a b in
        List.map
          (fun fn ->
            let v =
              match fn with
              | T.Eq -> eq
              | T.Ne -> lnot eq
              | T.Lt -> lt
              | T.Gt -> lnot (lt lor eq)
              | T.Le -> lt lor eq
              | T.Ge -> lnot lt
            in
            (T.cmp_fn_name fn, v))
          fns
    | T.Logic_unit { bits; fn; inputs } ->
        List.init bits (fun b ->
            let ws =
              Array.init inputs (fun i ->
                  getw pins (Printf.sprintf "D%d_%d" i b))
            in
            (Printf.sprintf "Y%d" b, gate_fn_words fn ws))
    | T.Arith_unit { bits; fns; mode = _ } ->
        let a = busw pins "A" bits and bw = busw pins "B" bits in
        let cin = getw pins "CIN" in
        let sums = Array.make bits 0 and cout = ref 0 in
        List.iter
          (fun (fn, selw) ->
            if selw <> 0 then begin
              let d, c0 =
                match fn with
                | T.Add -> ((fun b -> bw.(b)), cin)
                | T.Sub -> ((fun b -> lnot bw.(b)), cin)
                | T.Inc -> ((fun _ -> zero), ones)
                | T.Dec -> ((fun _ -> ones), zero)
              in
              let s, c = add_planes bits a d c0 in
              Array.iteri
                (fun b w -> sums.(b) <- sums.(b) lor (selw land w))
                s;
              cout := !cout lor (selw land c)
            end)
          (clamped_variants pins "F" fns);
        bus_outw "S" sums @ [ ("COUT", !cout) ]
    | T.Register _ | T.Counter _ | T.Macro _ | T.Instance _ ->
        invalid_arg "Eval.Packed.comb_outputs: not a combinational micro \
                     component"

  (* --- Sequential kinds (state as bit-planes) ----------------------------- *)

  let seq_outputs (kind : T.kind) ~(planes : int array) (pins : pin_words) :
      pin_words =
    match kind with
    | T.Register { bits; inverting; _ } ->
        bus_outw "Q" (Array.init bits (fun b ->
            if inverting then lnot planes.(b) else planes.(b)))
    | T.Counter { bits = _; fns; _ } ->
        let has f = List.mem f fns in
        let up =
          if has T.Count_up && has T.Count_down then getw pins "UP"
          else if has T.Count_up then ones
          else zero
        in
        let all_one = Array.fold_left ( land ) ones planes in
        let all_zero =
          Array.fold_left (fun acc w -> acc land lnot w) ones planes
        in
        bus_outw "Q" (Array.copy planes)
        @ [ ("COUT", mux2 up all_one all_zero) ]
    | _ -> invalid_arg "Eval.Packed.seq_outputs: not a sequential micro \
                        component"

  let next_planes (kind : T.kind) ~(planes : int array) (pins : pin_words) :
      int array =
    match kind with
    | T.Register { bits; kind = _; fns; controls; inverting = _ } ->
        let ctl c = List.mem c controls in
        let set = if ctl T.Set then getw pins "SET" else zero in
        let rst = if ctl T.Reset then getw pins "RST" else zero in
        let hold = if ctl T.Enable then lnot (getw pins "EN") else zero in
        let variants = clamped_variants pins "M" fns in
        Array.init bits (fun b ->
            let fnv = ref 0 in
            List.iter
              (fun (fn, selw) ->
                let v =
                  match fn with
                  | T.Load -> getw pins (Printf.sprintf "D%d" b)
                  | T.Shift_right ->
                      if b = bits - 1 then getw pins "SIR" else planes.(b + 1)
                  | T.Shift_left ->
                      if b = 0 then getw pins "SIL" else planes.(b - 1)
                in
                fnv := !fnv lor (selw land v))
              variants;
            mux2 set ones (mux2 rst zero (mux2 hold planes.(b) !fnv)))
    | T.Counter { bits; fns; controls } ->
        let has f = List.mem f fns and ctl c = List.mem c controls in
        let set = if ctl T.Set then getw pins "SET" else zero in
        let rst = if ctl T.Reset then getw pins "RST" else zero in
        let hold = if ctl T.Enable then lnot (getw pins "EN") else zero in
        let ld = if has T.Count_load then getw pins "LD" else zero in
        let up =
          if has T.Count_up && has T.Count_down then getw pins "UP"
          else if has T.Count_up then ones
          else zero
        in
        let inc, _ =
          add_planes bits planes (fun _ -> zero) ones
        in
        let dec, _ = add_planes bits planes (fun _ -> ones) zero in
        Array.init bits (fun b ->
            let count = mux2 up inc.(b) dec.(b) in
            let loaded = mux2 ld (getw pins (Printf.sprintf "D%d" b)) count in
            mux2 set ones (mux2 rst zero (mux2 hold planes.(b) loaded)))
    | _ ->
        invalid_arg "Eval.Packed.next_planes: not a sequential micro \
                     component"

  (* --- Macro semantics ---------------------------------------------------- *)

  let macro_comb_outputs (m : Macro.t) (pins : pin_words) : pin_words =
    match m.Macro.behavior with
    | Macro.Combinational outs ->
        let ws = Array.of_list (List.map (getw pins) m.Macro.inputs) in
        List.map (fun (pin, tt) -> (pin, eval_tt tt ws)) outs
    | Macro.Comb_eval f ->
        let ws = Array.of_list (List.map (getw pins) m.Macro.inputs) in
        let outw = lanewise (List.length m.Macro.outputs)
            (fun l -> f (lane_of_words ws l)) in
        List.mapi (fun j o -> (o, outw.(j))) m.Macro.outputs
    | Macro.Seq_dff _ | Macro.Seq_counter _ | Macro.Seq_custom _ ->
        invalid_arg "Eval.Packed.macro_comb_outputs: sequential macro"

  let macro_seq_outputs (m : Macro.t) ~(planes : int array)
      (pins : pin_words) : pin_words =
    match m.Macro.behavior with
    | Macro.Seq_dff { inverting; _ } ->
        [ ("Q", if inverting then lnot planes.(0) else planes.(0)) ]
    | Macro.Seq_counter { bits; has_updown; _ } ->
        let up = if has_updown then getw pins "UP" else ones in
        let all_one = Array.fold_left ( land ) ones planes in
        let all_zero =
          Array.fold_left (fun acc w -> acc land lnot w) ones planes
        in
        bus_outw "Q" (Array.init bits (fun b -> planes.(b)))
        @ [ ("COUT", mux2 up all_one all_zero) ]
    | Macro.Seq_custom { custom_outputs; _ } ->
        let pin_names = List.map fst pins in
        let words = Array.of_list (List.map snd pins) in
        let outw =
          lanewise (List.length m.Macro.outputs) (fun l ->
              let lane_pins =
                List.mapi
                  (fun i p -> (p, (words.(i) lsr l) land 1 = 1))
                  pin_names
              in
              let outs =
                custom_outputs ~state:(state_of_planes planes l) lane_pins
              in
              Array.of_list
                (List.map
                   (fun o ->
                     match List.assoc_opt o outs with
                     | Some v -> v
                     | None -> false)
                   m.Macro.outputs))
        in
        List.mapi (fun j o -> (o, outw.(j))) m.Macro.outputs
    | Macro.Combinational _ | Macro.Comb_eval _ ->
        invalid_arg "Eval.Packed.macro_seq_outputs: combinational macro"

  let macro_next_planes (m : Macro.t) ~(planes : int array)
      (pins : pin_words) : int array =
    match m.Macro.behavior with
    | Macro.Seq_dff { data; latch = _; has_set; has_reset; has_enable;
                      inverting = _ } ->
        let set = if has_set then getw pins "SET" else zero in
        let rst = if has_reset then getw pins "RST" else zero in
        let hold = if has_enable then lnot (getw pins "EN") else zero in
        let d =
          match data with
          | Macro.Direct -> getw pins "D"
          | Macro.Muxed n ->
              let s = T.clog2 n in
              let v = ref 0 in
              for j = 0 to n - 1 do
                v :=
                  !v
                  lor (field_match pins "S" s j
                       land getw pins (Printf.sprintf "D%d" j))
              done;
              !v
        in
        [| mux2 set ones (mux2 rst zero (mux2 hold planes.(0) d)) |]
    | Macro.Seq_counter { bits; has_load; has_updown; has_reset; has_enable }
      ->
        let rst = if has_reset then getw pins "RST" else zero in
        let hold = if has_enable then lnot (getw pins "EN") else zero in
        let ld = if has_load then getw pins "LD" else zero in
        let up = if has_updown then getw pins "UP" else ones in
        let inc, _ = add_planes bits planes (fun _ -> zero) ones in
        let dec, _ = add_planes bits planes (fun _ -> ones) zero in
        Array.init bits (fun b ->
            let count = mux2 up inc.(b) dec.(b) in
            let loaded = mux2 ld (getw pins (Printf.sprintf "D%d" b)) count in
            mux2 rst zero (mux2 hold planes.(b) loaded))
    | Macro.Seq_custom { state_bits; custom_next; _ } ->
        let pin_names = List.map fst pins in
        let words = Array.of_list (List.map snd pins) in
        let next = Array.make state_bits 0 in
        for l = 0 to lanes - 1 do
          let lane_pins =
            List.mapi (fun i p -> (p, (words.(i) lsr l) land 1 = 1)) pin_names
          in
          let v = custom_next ~state:(state_of_planes planes l) lane_pins in
          for b = 0 to state_bits - 1 do
            if v land (1 lsl b) <> 0 then next.(b) <- next.(b) lor (1 lsl l)
          done
        done;
        next
    | Macro.Combinational _ | Macro.Comb_eval _ ->
        invalid_arg "Eval.Packed.macro_next_planes: combinational macro"
end
