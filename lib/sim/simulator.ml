(* Levelized logic simulation of mixed microarchitecture / macro designs.

   The clock is implicit and global: every sequential component updates
   on [step].  Undriven nets read as [false].

   A simulator observes a static design, so all structural analysis is
   done once in [create]: pin directions, macro lookups, a dense
   net-slot numbering, and — the heart of the engine — a levelized
   evaluation schedule (Kahn's topological order over the
   driver-to-sink edges).  Sequential state-only outputs and input
   ports are the order's sources; components that never become ready
   form a combinational loop, reported from [settle] (not [create]) so
   a simulator over a cyclic design can still be constructed and
   probed.

   Two engines share the schedule:

   - the scalar path ([settle]/[outputs]/[step]) evaluates one vector
     per pass through the reference semantics in [Eval];
   - the packed path ([settle_packed]/[outputs_packed]/[step_packed])
     evaluates [lanes] (= [Sys.int_size]) vectors per pass through the
     word-level semantics in [Eval.Packed], with each node compiled
     once at [create] into a closure over the dense value array.

   Sequential state is stored as bit-planes (one word per state bit,
   lanes in bit positions); the scalar API reads and writes lane 0,
   with [set_state] broadcasting to every lane so the two views stay
   consistent after a scalar initialization. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types
module Macro = Milo_library.Macro

type env = { find_macro : string -> Macro.t }

let env_of_techs techs =
  let find_macro name =
    let rec go = function
      | [] ->
          invalid_arg (Printf.sprintf "Simulator: unknown macro %s" name)
      | t :: rest -> (
          match Milo_library.Technology.find_opt t name with
          | Some m -> m
          | None -> go rest)
    in
    go techs
  in
  { find_macro }

let resolver_of_env env : D.resolver =
 fun kind nm ->
  match kind with
  | T.Macro _ -> (env.find_macro nm).Macro.pins
  | T.Instance _ ->
      invalid_arg
        (Printf.sprintf
           "Simulator: hierarchical instance %s must be flattened first" nm)
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Constant _ ->
      T.pins_of_kind kind

let lanes = Eval.Packed.lanes

(* Per-component structure resolved once at [create].  Connections are
   expressed in dense net slots, not net ids. *)
type node = {
  comp : D.comp;
  node_seq : bool;
  node_macro : Macro.t option;  (* for [T.Macro] kinds *)
  conns : (string * int) list;  (* every pin -> slot *)
  out_conns : (string * int) list;  (* output pins -> slot *)
  state_only_conns : (string * int) list;
      (* output pins whose value is a function of the stored state
         alone (explicit [Eval.state_only_outputs] metadata): exactly
         the set seeded before the schedule runs *)
  wait_nids : int list;
      (* deduplicated driven input nets: the node is ready once all of
         them are solved (undriven inputs read as [false]) *)
}

type t = {
  design : D.t;
  env : env;
  nodes : node array;
  schedule : int array;  (* node indices in dependency order *)
  cyclic : string list;  (* names of unschedulable components *)
  slot_of_net : (int, int) Hashtbl.t;
  net_of_slot : int array;
  n_slots : int;
  state : (int, int array) Hashtbl.t;  (* seq comp id -> state bit-planes *)
  mutable last_vals : bool array option;  (* last scalar settle, by slot *)
  in_ports : (string * int) list;  (* port -> slot *)
  out_ports : (string * int) list;
  packed_vals : int array;  (* packed net values, by slot; scratch *)
  packed_ops : (unit -> unit) array;  (* per node, aligned with [nodes] *)
  packed_seed : (unit -> unit) array;  (* state-only seeding, seq nodes *)
  packed_next : (unit -> int array) array;  (* per seq node: next planes *)
  packed_next_ids : int array;  (* comp ids aligned with [packed_next] *)
}

let is_seq env (c : D.comp) =
  match c.D.kind with
  | T.Register _ | T.Counter _ -> true
  | T.Macro m -> Macro.is_sequential (env.find_macro m)
  | T.Instance i ->
      invalid_arg
        (Printf.sprintf "Simulator: hierarchical instance %s in design" i)
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Constant _ ->
      false

exception Combinational_loop of string list

(* --- Packed node compilation ------------------------------------------- *)

(* Compile one node into a closure over the packed value array.
   Combinational macros — the bulk of a mapped design — get a direct
   slot-array fast path around the cached sum-of-products truth-table
   plans; everything else goes through the generic word-level
   evaluators on a pin association list. *)
let compile_packed_op (vals : int array) planes_of (n : node) =
  let read slot = vals.(slot) in
  let write outs =
    List.iter
      (fun (pin, w) ->
        match List.assoc_opt pin n.out_conns with
        | Some slot -> vals.(slot) <- w
        | None -> ())
      outs
  in
  let pvs () = List.map (fun (pin, slot) -> (pin, read slot)) n.conns in
  match (n.node_macro, n.comp.D.kind) with
  | Some m, _ when not n.node_seq -> (
      match m.Macro.behavior with
      | Macro.Combinational outs ->
          let in_slots =
            Array.of_list
              (List.map
                 (fun pin ->
                   match List.assoc_opt pin n.conns with
                   | Some slot -> slot
                   | None -> -1)
                 m.Macro.inputs)
          in
          let ws = Array.make (Array.length in_slots) 0 in
          let plans =
            List.filter_map
              (fun (pin, tt) ->
                Option.map (fun slot -> (slot, tt))
                  (List.assoc_opt pin n.out_conns))
              outs
          in
          fun () ->
            Array.iteri
              (fun i slot -> ws.(i) <- (if slot >= 0 then vals.(slot) else 0))
              in_slots;
            List.iter
              (fun (slot, tt) -> vals.(slot) <- Eval.Packed.eval_tt tt ws)
              plans
      | _ -> fun () -> write (Eval.Packed.macro_comb_outputs m (pvs ())))
  | Some m, _ ->
      let planes = planes_of n.comp.D.id in
      fun () -> write (Eval.Packed.macro_seq_outputs m ~planes (pvs ()))
  | None, ((T.Register _ | T.Counter _) as kind) ->
      let planes = planes_of n.comp.D.id in
      fun () -> write (Eval.Packed.seq_outputs kind ~planes (pvs ()))
  | None, kind -> fun () -> write (Eval.Packed.comb_outputs kind (pvs ()))

let compile_packed_seed (vals : int array) planes_of (n : node) =
  let pvs () = List.map (fun (pin, slot) -> (pin, vals.(slot))) n.conns in
  let planes = planes_of n.comp.D.id in
  let outs () =
    match (n.node_macro, n.comp.D.kind) with
    | Some m, _ -> Eval.Packed.macro_seq_outputs m ~planes (pvs ())
    | None, ((T.Register _ | T.Counter _) as kind) ->
        Eval.Packed.seq_outputs kind ~planes (pvs ())
    | None, _ -> assert false
  in
  fun () ->
    let outs = outs () in
    List.iter
      (fun (pin, slot) ->
        vals.(slot) <-
          (match List.assoc_opt pin outs with Some w -> w | None -> 0))
      n.state_only_conns

let compile_packed_next (vals : int array) planes_of (n : node) =
  let pvs () = List.map (fun (pin, slot) -> (pin, vals.(slot))) n.conns in
  let planes = planes_of n.comp.D.id in
  match (n.node_macro, n.comp.D.kind) with
  | Some m, _ -> fun () -> Eval.Packed.macro_next_planes m ~planes (pvs ())
  | None, ((T.Register _ | T.Counter _) as kind) ->
      fun () -> Eval.Packed.next_planes kind ~planes (pvs ())
  | None, _ -> assert false

(* --- Construction ------------------------------------------------------ *)

let create env design =
  let resolve = resolver_of_env env in
  (* Nets with a driver: an input port, or some component output pin. *)
  let driven : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (_, dir, nid) -> if dir = T.Input then Hashtbl.replace driven nid ())
    (D.ports design);
  let with_dirs =
    List.map
      (fun (c : D.comp) ->
        ( c,
          List.map
            (fun (pin, nid) ->
              (pin, nid, D.pin_dir ~resolve design c.D.id pin))
            (D.connections design c.D.id) ))
      (D.comps design)
  in
  List.iter
    (fun (_, ds) ->
      List.iter
        (fun (_, nid, dir) ->
          if dir = T.Output then Hashtbl.replace driven nid ())
        ds)
    with_dirs;
  (* Dense net numbering. *)
  let all_nets = D.nets design in
  let n_slots = List.length all_nets in
  let slot_of_net = Hashtbl.create (max 16 n_slots) in
  let net_of_slot = Array.make (max 1 n_slots) (-1) in
  List.iteri
    (fun i (n : D.net) ->
      Hashtbl.replace slot_of_net n.D.nid i;
      net_of_slot.(i) <- n.D.nid)
    all_nets;
  let slot nid = Hashtbl.find slot_of_net nid in
  let nodes =
    Array.of_list
      (List.map
         (fun ((c : D.comp), ds) ->
           let node_seq = is_seq env c in
           let node_macro =
             match c.D.kind with
             | T.Macro m -> Some (env.find_macro m)
             | _ -> None
           in
           let state_only =
             if not node_seq then []
             else
               match node_macro with
               | Some m -> Macro.state_only_outputs m
               | None -> Eval.state_only_outputs c.D.kind
           in
           {
             comp = c;
             node_seq;
             node_macro;
             conns = List.map (fun (pin, nid, _) -> (pin, slot nid)) ds;
             out_conns =
               List.filter_map
                 (fun (pin, nid, dir) ->
                   if dir = T.Output then Some (pin, slot nid) else None)
                 ds;
             state_only_conns =
               List.filter_map
                 (fun (pin, nid, dir) ->
                   if dir = T.Output && List.mem pin state_only then
                     Some (pin, slot nid)
                   else None)
                 ds;
             wait_nids =
               List.sort_uniq compare
                 (List.filter_map
                    (fun (_, nid, dir) ->
                      if dir = T.Input && Hashtbl.mem driven nid then Some nid
                      else None)
                    ds);
           })
         with_dirs)
  in
  (* Levelized schedule: Kahn's order with input ports and sequential
     state-only outputs as sources. *)
  let resolved : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (_, dir, nid) ->
      if dir = T.Input then Hashtbl.replace resolved nid ())
    (D.ports design);
  Array.iter
    (fun n ->
      List.iter
        (fun (pin, s) ->
          ignore pin;
          Hashtbl.replace resolved net_of_slot.(s) ())
        n.state_only_conns)
    nodes;
  let waiters : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i n ->
      List.iter
        (fun nid ->
          if not (Hashtbl.mem resolved nid) then
            Hashtbl.replace waiters nid
              (i :: Option.value ~default:[] (Hashtbl.find_opt waiters nid)))
        n.wait_nids)
    nodes;
  let remaining =
    Array.map
      (fun n ->
        List.length
          (List.filter (fun nid -> not (Hashtbl.mem resolved nid)) n.wait_nids))
      nodes
  in
  let queue = Queue.create () in
  Array.iteri (fun i r -> if r = 0 then Queue.add i queue) remaining;
  let schedule = ref [] in
  let scheduled = Array.make (Array.length nodes) false in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    if not scheduled.(i) then begin
      scheduled.(i) <- true;
      schedule := i :: !schedule;
      List.iter
        (fun (_, s) ->
          let nid = net_of_slot.(s) in
          if not (Hashtbl.mem resolved nid) then begin
            Hashtbl.replace resolved nid ();
            List.iter
              (fun j ->
                remaining.(j) <- remaining.(j) - 1;
                if remaining.(j) = 0 then Queue.add j queue)
              (Option.value ~default:[] (Hashtbl.find_opt waiters nid))
          end)
        nodes.(i).out_conns
    end
  done;
  let schedule = Array.of_list (List.rev !schedule) in
  let cyclic =
    Array.to_list
      (Array.of_seq
         (Seq.filter_map
            (fun i ->
              if scheduled.(i) then None else Some nodes.(i).comp.D.cname)
            (Seq.init (Array.length nodes) Fun.id)))
  in
  let port_slots dir =
    List.filter_map
      (fun (p, d, nid) -> if d = dir then Some (p, slot nid) else None)
      (D.ports design)
  in
  let state = Hashtbl.create 16 in
  Array.iter
    (fun n ->
      if n.node_seq then
        let bits =
          match n.node_macro with
          | Some m -> Macro.state_bits m
          | None -> Eval.state_bits n.comp.D.kind
        in
        Hashtbl.replace state n.comp.D.id (Array.make (max 1 bits) 0))
    nodes;
  let packed_vals = Array.make (max 1 n_slots) 0 in
  let planes_of cid = Hashtbl.find state cid in
  let packed_ops =
    Array.map (fun n -> compile_packed_op packed_vals planes_of n) nodes
  in
  let seq_nodes =
    Array.of_list (List.filter (fun n -> n.node_seq) (Array.to_list nodes))
  in
  let packed_seed =
    Array.map (fun n -> compile_packed_seed packed_vals planes_of n) seq_nodes
  in
  let packed_next =
    Array.map (fun n -> compile_packed_next packed_vals planes_of n) seq_nodes
  in
  let packed_next_ids = Array.map (fun n -> n.comp.D.id) seq_nodes in
  {
    design;
    env;
    nodes;
    schedule;
    cyclic;
    slot_of_net;
    net_of_slot;
    n_slots;
    state;
    last_vals = None;
    in_ports = port_slots T.Input;
    out_ports = port_slots T.Output;
    packed_vals;
    packed_ops;
    packed_seed;
    packed_next;
    packed_next_ids;
  }

(* --- State access ------------------------------------------------------ *)

let reset t = Hashtbl.iter (fun _ planes -> Array.fill planes 0 (Array.length planes) 0) t.state

(* Broadcast [v] to every lane, so a scalar initialization is seen
   identically by scalar (lane 0) and packed runs. *)
let set_state t cid v =
  match Hashtbl.find_opt t.state cid with
  | None -> Hashtbl.replace t.state cid (Eval.Packed.planes_of_state 1 v)
  | Some planes ->
      Array.iteri
        (fun b _ ->
          planes.(b) <-
            (if v land (1 lsl b) <> 0 then Eval.Packed.ones else 0))
        planes

let get_state t cid =
  Option.map
    (fun planes -> Eval.Packed.state_of_planes planes 0)
    (Hashtbl.find_opt t.state cid)

let set_state_planes t cid planes =
  match Hashtbl.find_opt t.state cid with
  | None -> ()
  | Some dst -> Array.blit planes 0 dst 0 (min (Array.length planes) (Array.length dst))

let get_state_planes t cid = Hashtbl.find_opt t.state cid

(* --- Scalar engine ----------------------------------------------------- *)

let scalar_state t cid =
  Eval.Packed.state_of_planes (Hashtbl.find t.state cid) 0

let seq_outputs t (n : node) pvs =
  let state = scalar_state t n.comp.D.id in
  match (n.node_macro, n.comp.D.kind) with
  | Some m, _ -> Eval.macro_seq_outputs m ~state pvs
  | None, ((T.Register _ | T.Counter _) as kind) ->
      Eval.seq_outputs kind ~state pvs
  | None, _ -> assert false

let comb_outputs (n : node) pvs =
  match (n.node_macro, n.comp.D.kind) with
  | Some m, _ -> Eval.macro_comb_outputs m pvs
  | None, kind -> Eval.comb_outputs kind pvs

(* One scalar pass over the levelized schedule; returns the per-slot
   value array. *)
let settle_values t (inputs : (string * bool) list) =
  if t.cyclic <> [] then raise (Combinational_loop t.cyclic);
  let vals = Array.make (max 1 t.n_slots) false in
  List.iter
    (fun (p, s) ->
      vals.(s) <- Option.value ~default:false (List.assoc_opt p inputs))
    t.in_ports;
  (* Sequential state is known up front: seed exactly the state-only
     outputs ([Eval.state_only_outputs] metadata).  Input-dependent
     outputs (a bidirectional counter's COUT reads its UP pin) are
     computed in schedule order once their inputs are known. *)
  Array.iter
    (fun n ->
      if n.node_seq && n.state_only_conns <> [] then begin
        let pvs = List.map (fun (pin, s) -> (pin, vals.(s))) n.conns in
        let outs = seq_outputs t n pvs in
        List.iter
          (fun (pin, s) ->
            vals.(s) <-
              (match List.assoc_opt pin outs with
              | Some v -> v
              | None -> false))
          n.state_only_conns
      end)
    t.nodes;
  Array.iter
    (fun i ->
      let n = t.nodes.(i) in
      let pvs = List.map (fun (pin, s) -> (pin, vals.(s))) n.conns in
      let outs = if n.node_seq then seq_outputs t n pvs else comb_outputs n pvs in
      List.iter
        (fun (pin, v) ->
          match List.assoc_opt pin n.out_conns with
          | Some s -> vals.(s) <- v
          | None -> ())
        outs)
    t.schedule;
  t.last_vals <- Some vals;
  vals

let settle t inputs =
  let vals = settle_values t inputs in
  let nets : (int, bool) Hashtbl.t = Hashtbl.create (max 16 t.n_slots) in
  Array.iteri (fun s v -> Hashtbl.replace nets t.net_of_slot.(s) v) vals;
  nets

let outputs t inputs =
  let vals = settle_values t inputs in
  List.map (fun (p, s) -> (p, vals.(s))) t.out_ports

(* One clock edge: settle combinational logic, then update every
   sequential component synchronously (on lane 0; the packed lanes of
   the state planes are untouched by the scalar path). *)
let step t inputs =
  let vals = settle_values t inputs in
  let updates =
    List.filter_map
      (fun n ->
        if n.node_seq then begin
          let state = scalar_state t n.comp.D.id in
          let pvs = List.map (fun (pin, s) -> (pin, vals.(s))) n.conns in
          let next =
            match (n.node_macro, n.comp.D.kind) with
            | Some m, _ -> Eval.macro_next_state m ~state pvs
            | None, ((T.Register _ | T.Counter _) as kind) ->
                Eval.next_state kind ~state pvs
            | None, _ -> assert false
          in
          Some (n.comp.D.id, next)
        end
        else None)
      (Array.to_list t.nodes)
  in
  List.iter
    (fun (cid, v) ->
      let planes = Hashtbl.find t.state cid in
      Array.iteri
        (fun b w ->
          planes.(b) <-
            (w land lnot 1) lor (if v land (1 lsl b) <> 0 then 1 else 0))
        planes)
    updates

let net_value t nid =
  match t.last_vals with
  | None -> None
  | Some vals -> (
      match Hashtbl.find_opt t.slot_of_net nid with
      | Some s -> Some vals.(s)
      | None -> None)

(* --- Packed engine ----------------------------------------------------- *)

let settle_packed t (inputs : (string * int) list) =
  if t.cyclic <> [] then raise (Combinational_loop t.cyclic);
  Array.fill t.packed_vals 0 (Array.length t.packed_vals) 0;
  List.iter
    (fun (p, s) ->
      t.packed_vals.(s) <-
        Option.value ~default:0 (List.assoc_opt p inputs))
    t.in_ports;
  Array.iter (fun seed -> seed ()) t.packed_seed;
  Array.iter (fun i -> t.packed_ops.(i) ()) t.schedule

let outputs_packed t inputs =
  settle_packed t inputs;
  List.map (fun (p, s) -> (p, t.packed_vals.(s))) t.out_ports

let packed_net_value t nid =
  Option.map (fun s -> t.packed_vals.(s)) (Hashtbl.find_opt t.slot_of_net nid)

let step_packed t inputs =
  settle_packed t inputs;
  let nexts = Array.map (fun f -> f ()) t.packed_next in
  Array.iteri
    (fun i planes ->
      let dst = Hashtbl.find t.state t.packed_next_ids.(i) in
      Array.blit planes 0 dst 0 (min (Array.length planes) (Array.length dst)))
    nexts
