(* Levelized logic simulation of mixed microarchitecture / macro designs.

   The clock is implicit and global: every sequential component updates
   on [step].  Combinational evaluation uses a worklist until fixpoint;
   lack of progress with unresolved nets indicates a combinational loop.
   Undriven nets read as [false].

   A simulator observes a static design, so the structural analysis —
   pin directions, which input nets have a driver at all, macro lookups
   — is done once in [create]; the per-vector [settle] loop then only
   consults the cached tables.  This is what makes vector-heavy clients
   (the equivalence checker, the semantic guard) cheap. *)

module D = Milo_netlist.Design
module T = Milo_netlist.Types

type env = { find_macro : string -> Milo_library.Macro.t }

let env_of_techs techs =
  let find_macro name =
    let rec go = function
      | [] ->
          invalid_arg (Printf.sprintf "Simulator: unknown macro %s" name)
      | t :: rest -> (
          match Milo_library.Technology.find_opt t name with
          | Some m -> m
          | None -> go rest)
    in
    go techs
  in
  { find_macro }

let resolver_of_env env : D.resolver =
 fun kind nm ->
  match kind with
  | T.Macro _ -> (env.find_macro nm).Milo_library.Macro.pins
  | T.Instance _ ->
      invalid_arg
        (Printf.sprintf
           "Simulator: hierarchical instance %s must be flattened first" nm)
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Register _ | T.Counter _ | T.Constant _ ->
      T.pins_of_kind kind

(* Per-component structure resolved once at [create]. *)
type node = {
  comp : D.comp;
  node_seq : bool;
  node_macro : Milo_library.Macro.t option;  (* for [T.Macro] kinds *)
  conns : (string * int) list;  (* every pin -> net *)
  wait_nets : int list;
      (* nets of input pins that have a driver: the node is ready once
         all of them are solved (undriven inputs read as [false]) *)
}

type t = {
  design : D.t;
  env : env;
  state : (int, int) Hashtbl.t;  (* sequential comp id -> register contents *)
  mutable nets : (int, bool) Hashtbl.t;  (* last solved net values *)
  nodes : node list;
  in_ports : (string * int) list;
  out_ports : (string * int) list;
}

let is_seq env (c : D.comp) =
  match c.D.kind with
  | T.Register _ | T.Counter _ -> true
  | T.Macro m -> Milo_library.Macro.is_sequential (env.find_macro m)
  | T.Instance i ->
      invalid_arg
        (Printf.sprintf "Simulator: hierarchical instance %s in design" i)
  | T.Gate _ | T.Multiplexor _ | T.Decoder _ | T.Comparator _ | T.Logic_unit _
  | T.Arith_unit _ | T.Constant _ ->
      false

let create env design =
  let resolve = resolver_of_env env in
  (* Nets with a driver: an input port, or some component output pin
     (the same predicate as [D.driver <> Src_none], computed in one
     sweep instead of per query). *)
  let driven : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (_, dir, nid) -> if dir = T.Input then Hashtbl.replace driven nid ())
    (D.ports design);
  let with_dirs =
    List.map
      (fun (c : D.comp) ->
        ( c,
          List.map
            (fun (pin, nid) ->
              (pin, nid, D.pin_dir ~resolve design c.D.id pin))
            (D.connections design c.D.id) ))
      (D.comps design)
  in
  List.iter
    (fun (_, ds) ->
      List.iter
        (fun (_, nid, dir) ->
          if dir = T.Output then Hashtbl.replace driven nid ())
        ds)
    with_dirs;
  let nodes =
    List.map
      (fun ((c : D.comp), ds) ->
        {
          comp = c;
          node_seq = is_seq env c;
          node_macro =
            (match c.D.kind with
            | T.Macro m -> Some (env.find_macro m)
            | _ -> None);
          conns = List.map (fun (pin, nid, _) -> (pin, nid)) ds;
          wait_nets =
            List.filter_map
              (fun (_, nid, dir) ->
                if dir = T.Input && Hashtbl.mem driven nid then Some nid
                else None)
              ds;
        })
      with_dirs
  in
  let port_nets dir =
    List.filter_map
      (fun (p, d, nid) -> if d = dir then Some (p, nid) else None)
      (D.ports design)
  in
  let t =
    {
      design;
      env;
      state = Hashtbl.create 16;
      nets = Hashtbl.create 64;
      nodes;
      in_ports = port_nets T.Input;
      out_ports = port_nets T.Output;
    }
  in
  List.iter
    (fun n -> if n.node_seq then Hashtbl.replace t.state n.comp.D.id 0)
    t.nodes;
  t

let reset t = Hashtbl.iter (fun k _ -> Hashtbl.replace t.state k 0) t.state
let set_state t cid v = Hashtbl.replace t.state cid v
let get_state t cid = Hashtbl.find_opt t.state cid

exception Combinational_loop of string list

let pin_values nets (n : node) =
  List.map
    (fun (pin, nid) ->
      (pin, Option.value ~default:false (Hashtbl.find_opt nets nid)))
    n.conns

let seq_outputs t (n : node) pvs =
  let state = Hashtbl.find t.state n.comp.D.id in
  match (n.node_macro, n.comp.D.kind) with
  | Some m, _ -> Eval.macro_seq_outputs m ~state pvs
  | None, ((T.Register _ | T.Counter _) as kind) ->
      Eval.seq_outputs kind ~state pvs
  | None, _ -> assert false

let comb_outputs (n : node) pvs =
  match (n.node_macro, n.comp.D.kind) with
  | Some m, _ -> Eval.macro_comb_outputs m pvs
  | None, kind -> Eval.comb_outputs kind pvs

let drive nets (n : node) outs =
  List.iter
    (fun (pin, v) ->
      match List.assoc_opt pin n.conns with
      | Some nid -> Hashtbl.replace nets nid v
      | None -> ())
    outs

(* Evaluate all combinational logic given the input-port assignment and
   the current sequential state; returns the net-value table. *)
let settle t (inputs : (string * bool) list) =
  let nets : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  (* Input ports drive their nets. *)
  List.iter
    (fun (p, nid) ->
      Hashtbl.replace nets nid
        (Option.value ~default:false (List.assoc_opt p inputs)))
    t.in_ports;
  (* Sequential state is known up front.  Seed only the state-only
     outputs (Q).  Input-dependent outputs (a counter's COUT depends on
     its UP pin) are computed in the worklist below once the inputs are
     known — seeding them here would expose stale values to
     consumers. *)
  List.iter
    (fun n ->
      if n.node_seq then
        let outs = seq_outputs t n (pin_values nets n) in
        List.iter
          (fun (pin, v) ->
            if String.length pin > 0 && pin.[0] = 'Q' then
              match List.assoc_opt pin n.conns with
              | Some nid -> Hashtbl.replace nets nid v
              | None -> ())
          outs)
    t.nodes;
  (* Worklist evaluation.  Sequential components are re-visited too so
     that their input-dependent outputs settle once the inputs are
     known. *)
  let pending = ref t.nodes in
  let progress = ref true in
  while !progress && !pending <> [] do
    progress := false;
    let still = ref [] in
    List.iter
      (fun n ->
        if List.for_all (fun nid -> Hashtbl.mem nets nid) n.wait_nets then begin
          progress := true;
          let pvs = pin_values nets n in
          drive nets n
            (if n.node_seq then seq_outputs t n pvs else comb_outputs n pvs)
        end
        else still := n :: !still)
      !pending;
    pending := !still
  done;
  if !pending <> [] then
    raise
      (Combinational_loop (List.map (fun n -> n.comp.D.cname) !pending));
  t.nets <- nets;
  nets

let outputs t inputs =
  let nets = settle t inputs in
  List.map
    (fun (p, nid) ->
      (p, Option.value ~default:false (Hashtbl.find_opt nets nid)))
    t.out_ports

(* One clock edge: settle combinational logic, then update every
   sequential component synchronously. *)
let step t inputs =
  let nets = settle t inputs in
  let updates =
    List.filter_map
      (fun n ->
        if n.node_seq then
          let state = Hashtbl.find t.state n.comp.D.id in
          let pvs = pin_values nets n in
          let next =
            match (n.node_macro, n.comp.D.kind) with
            | Some m, _ -> Eval.macro_next_state m ~state pvs
            | None, ((T.Register _ | T.Counter _) as kind) ->
                Eval.next_state kind ~state pvs
            | None, _ -> assert false
          in
          Some (n.comp.D.id, next)
        else None)
      t.nodes
  in
  List.iter (fun (cid, v) -> Hashtbl.replace t.state cid v) updates

let net_value t nid = Hashtbl.find_opt t.nets nid
